// Convnet: the paper's §8.4 convolutional setting — a frozen,
// exactly-evaluated convolutional feature extractor (standing in for the
// ResNet-18 backbone) in front of a two-layer fully connected classifier
// trained with each sampling method. Only the classifier is approximated;
// the convolutional operations stay exact.
//
//	go run ./examples/convnet
package main

import (
	"fmt"
	"log"

	"samplednn/internal/conv"
	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

func main() {
	ds, err := dataset.Generate("cifar10", dataset.Options{Seed: 31, MaxTrain: 600, MaxTest: 200, MaxVal: 50})
	if err != nil {
		log.Fatal(err)
	}

	fe, err := conv.NewFeatureExtractor(32, 3, []int{8, 16}, rng.New(33))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CIFAR-10: %d train / %d test; conv features: %d dims (from %d pixels)\n\n",
		ds.Train.Len(), ds.Test.Len(), fe.OutDim(), ds.Spec.Dim())

	featDS := &dataset.Dataset{
		Spec: dataset.Spec{Name: "cifar10-features", Width: fe.OutDim(), Height: 1, Channels: 1,
			Classes: ds.Spec.Classes},
		Train: &dataset.Split{X: fe.ExtractBatch(ds.Train.X), Y: ds.Train.Y},
		Test:  &dataset.Split{X: fe.ExtractBatch(ds.Test.X), Y: ds.Test.Y},
	}

	fmt.Printf("%-12s %-16s %-16s\n", "classifier", "pixels acc", "conv-features acc")
	for _, name := range []string{"standard", "mc", "alsh"} {
		pixAcc := trainClassifier(name, ds, ds.Spec.Dim())
		featAcc := trainClassifier(name, featDS, fe.OutDim())
		fmt.Printf("%-12s %13.2f%%  %13.2f%%\n", name, 100*pixAcc, 100*featAcc)
	}
	fmt.Println("\nthe sampling methods see only the classifier; conv stays exact (§8.4).")
	fmt.Println("(random frozen features stand in for the paper's pretrained ResNet-18, so")
	fmt.Println("absolute feature-space accuracy is lower; the structure under test — exact")
	fmt.Println("conv, approximated classifier — is the same.)")
}

func trainClassifier(name string, ds *dataset.Dataset, inDim int) float64 {
	net, err := nn.NewNetwork(nn.Uniform(inDim, 64, 2, ds.Spec.Classes), rng.New(35))
	if err != nil {
		log.Fatal(err)
	}
	batch := 20
	var optim opt.Optimizer = opt.NewSGD(0.05)
	if name == "alsh" {
		batch = 1
		optim = opt.NewAdam(0.002)
	}
	opts := core.DefaultOptions(37)
	opts.MC.K = 16
	opts.ALSH = core.ALSHConfig{Params: lsh.Params{K: 5, L: 12, M: 3, U: 0.83}, MinActive: 10}
	m, err := core.New(name, net, optim, opts)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := train.New(m, ds, train.Config{
		Epochs: 4, BatchSize: batch, Seed: 39, MaxEvalSamples: 200,
		RebuildPerEpoch: name == "alsh",
	})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		log.Fatal(err)
	}
	return hist.Final().TestAccuracy
}
