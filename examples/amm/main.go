// AMM: approximate matrix multiplication on its own — the §6.1 substrate
// of MC-approx. Compares the Drineas CR estimator, the Adelman Bernoulli
// estimator (Eq. 7), deterministic top-k, and uniform sampling on
// matrices with skewed magnitudes, at several sample budgets.
//
//	go run ./examples/amm
package main

import (
	"fmt"
	"time"

	"samplednn/internal/approxmm"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func main() {
	g := rng.New(42)
	const m, n, p = 64, 512, 64

	// Skewed data: a handful of heavy column-row pairs dominate the
	// product, the regime where magnitude-aware sampling wins (§6.1).
	a := tensor.New(m, n)
	b := tensor.New(n, p)
	g.GaussianSlice(a.Data, 0, 1)
	g.GaussianSlice(b.Data, 0, 1)
	for j := 0; j < 8; j++ {
		for i := 0; i < m; i++ {
			a.Data[i*n+j] *= 12
		}
		for i := 0; i < p; i++ {
			b.Data[j*p+i] *= 12
		}
	}

	exactStart := time.Now()
	exact := tensor.MatMul(a, b)
	exactTime := time.Since(exactStart)
	fmt.Printf("exact %dx%dx%d product: %s\n\n", m, n, p, exactTime)

	fmt.Printf("%-18s %-10s %-12s %-10s\n", "estimator", "samples", "rel-error", "time")
	for _, c := range []int{16, 64, 128} {
		ests := []approxmm.Approximator{
			approxmm.NewCRSampler(c, g),
			approxmm.NewBernoulliSampler(c, g),
			approxmm.NewTopKSampler(c),
			approxmm.NewUniformSampler(c, g),
		}
		for _, est := range ests {
			const trials = 5
			var errSum float64
			start := time.Now()
			for t := 0; t < trials; t++ {
				errSum += approxmm.RelativeError(est.Multiply(a, b), exact)
			}
			elapsed := time.Since(start) / trials
			fmt.Printf("%-18s %-10d %-12.4f %-10s\n", est.Name(), c, errSum/trials, elapsed)
		}
		fmt.Println()
	}

	fmt.Printf("analytic E||AB−CR||²_F at c=64: %.1f (Drineas et al. bound)\n",
		approxmm.ExpectedErrorCR(a, b, 64))
	fmt.Println("\nnonuniform (cr/bernoulli/topk) beats uniform under skew — the Eq. 6/7 claim.")
}
