// Sampledconv: the CNN extension the paper defers to its technical
// report (§1) — once convolution is lowered to matrix products (im2col),
// the Monte-Carlo row-sampling estimator of MC-approx applies to the
// convolutional weight gradients. Trains a small ConvNet on a spatial
// two-class task with exact and sampled gradients and compares accuracy
// and backward cost.
//
//	go run ./examples/sampledconv
package main

import (
	"fmt"
	"log"
	"time"

	"samplednn/internal/conv"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func main() {
	const side, n = 12, 80
	g := rng.New(3)

	// Two classes distinguished by where a bright 3x3 block sits.
	x := tensor.New(n, side*side)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.1 * g.Float64()
		}
		c := i % 2
		y[i] = c
		off := 0
		if c == 1 {
			off = (side - 3) * (side + 1)
		}
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				row[off+dy*side+dx] = 1
			}
		}
	}

	fmt.Printf("%-22s %-10s %-12s\n", "gradient estimator", "accuracy", "step time")
	for _, sampleK := range []int{0, 16, 64} {
		cn, err := conv.NewConvNet(side, 1, []int{6}, []int{16}, 2, rng.New(5))
		if err != nil {
			log.Fatal(err)
		}
		label := "exact"
		if sampleK > 0 {
			cn.SetSampleK(sampleK, rng.New(7))
			label = fmt.Sprintf("sampled (k=%d)", sampleK)
		}
		optim := opt.NewSGD(0.1)
		start := time.Now()
		const iters = 120
		for iter := 0; iter < iters; iter++ {
			cn.Step(x, y, optim)
		}
		per := time.Since(start) / iters
		fmt.Printf("%-22s %8.1f%%  %-12s\n", label, 100*cn.Accuracy(x, y), per)
	}
	fmt.Println("\nEq. 7 sampling over the batch·pixels dimension keeps the conv gradient")
	fmt.Println("unbiased while cutting its cost — the same trade MC-approx makes for MLPs.")
}
