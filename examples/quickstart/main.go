// Quickstart: train one MLP on the synthetic MNIST benchmark with each
// of the paper's five methods and compare accuracy and time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

func main() {
	// A scaled-down MNIST: same 784-dimensional geometry and 10 classes
	// as the paper, fewer samples so this demo finishes in seconds.
	ds, err := dataset.Generate("mnist", dataset.Options{
		Seed: 1, MaxTrain: 1000, MaxTest: 300, MaxVal: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MNIST (synthetic): %d train / %d test, dim %d\n\n", ds.Train.Len(), ds.Test.Len(), ds.Spec.Dim())

	fmt.Printf("%-18s %-6s %-10s %-10s %-9s\n", "method", "batch", "accuracy", "time", "axis")
	for _, name := range core.MethodNames() {
		// The paper's default architecture shape: 3 hidden layers
		// (width scaled down from 1000 to 96 for the demo).
		net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 96, 3, ds.Spec.Classes), rng.New(7))
		if err != nil {
			log.Fatal(err)
		}

		// ALSH-approx trains stochastically with Adam (§8.4); the others
		// use mini-batch SGD here.
		batch := 20
		var optim opt.Optimizer = opt.NewSGD(0.05)
		if name == "alsh" {
			batch = 1
			optim = opt.NewAdam(0.002)
		}

		opts := core.DefaultOptions(7)
		opts.DropoutKeep = 0.05 // the paper's rate, matched to ALSH's ~5% active sets
		opts.MC.K = 16          // the paper's k=10 is tuned for 1000-unit layers; scale with width
		opts.ALSH = core.ALSHConfig{Params: lsh.Params{K: 5, L: 12, M: 3, U: 0.83}, MinActive: 10}

		m, err := core.New(name, net, optim, opts)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := train.New(m, ds, train.Config{
			Epochs: 3, BatchSize: batch, Seed: 7, MaxEvalSamples: 300,
			RebuildPerEpoch: name == "alsh",
		})
		if err != nil {
			log.Fatal(err)
		}
		hist, err := tr.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %-6d %8.2f%%  %-10s %-9s\n",
			name, batch, 100*hist.Final().TestAccuracy,
			fmt.Sprintf("%.2fs", hist.TotalTiming().Total().Seconds()),
			m.Axis())
	}

	fmt.Println("\nThe §4.2 taxonomy: Dropout/Adaptive/ALSH sample weight-matrix columns")
	fmt.Println("(current-layer nodes); MC-approx samples rows (previous-layer nodes).")
	rec := core.Recommend(20, 3, false)
	fmt.Printf("§10.4 recommendation for batch 20, 3 layers, no parallelism: %s\n", rec.Method)
}
