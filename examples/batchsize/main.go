// Batchsize: MC-approx's batch-size sensitivity (§9.3, Figures 10-11).
// Sweeps the batch size at a fixed learning rate and reports accuracy and
// the per-epoch time ratio against exact training — showing both the
// accuracy drop for small batches and the time crossover where per-step
// sampling overhead exceeds the savings.
//
//	go run ./examples/batchsize
package main

import (
	"fmt"
	"log"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

func main() {
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 9, MaxTrain: 1000, MaxTest: 300, MaxVal: 100})
	if err != nil {
		log.Fatal(err)
	}

	runOne := func(method string, batch int) (acc float64, secs float64) {
		net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 96, 3, ds.Spec.Classes), rng.New(21))
		if err != nil {
			log.Fatal(err)
		}
		opts := core.DefaultOptions(23)
		opts.MC.K = 16 // scale the paper's k=10 (tuned for 1000-unit layers) to 96 units
		m, err := core.New(method, net, opt.NewSGD(0.05), opts)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := train.New(m, ds, train.Config{Epochs: 3, BatchSize: batch, Seed: 25, MaxEvalSamples: 300})
		if err != nil {
			log.Fatal(err)
		}
		hist, err := tr.Run()
		if err != nil {
			log.Fatal(err)
		}
		perEpoch := hist.TotalTiming().Total().Seconds() / float64(len(hist.Epochs))
		return hist.Final().TestAccuracy, perEpoch
	}

	fmt.Println("MC-approx vs Standard across batch sizes (fixed LR, 3 hidden layers)")
	fmt.Printf("%-7s %-12s %-12s %-12s %-12s\n", "batch", "mc-acc", "mc-epoch", "std-epoch", "mc/std")
	for _, batch := range []int{1, 2, 5, 10, 20} {
		mcAcc, mcT := runOne("mc", batch)
		_, stdT := runOne("standard", batch)
		fmt.Printf("%-7d %10.2f%%  %-12.3f %-12.3f %-12.2f\n", batch, 100*mcAcc, mcT, stdT, mcT/stdT)
	}
	fmt.Println("\nsmall batches: unreliable Eq. 7 estimates and per-step overhead (MC slower than")
	fmt.Println("Standard, §9.3); large batches: the overhead amortizes and MC wins — Figure 11.")
}
