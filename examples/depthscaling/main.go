// Depthscaling: the paper's negative result (§7) end to end. First the
// theory — Lemma 7.1 / Theorem 7.2 error propagation in linear networks,
// reproducing the in-text table — then the practice: ALSH-approx trained
// on networks of growing depth, showing the accuracy collapse and the
// §10.3 prediction-distribution collapse.
//
//	go run ./examples/depthscaling
package main

import (
	"fmt"
	"log"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/lsh"
	"samplednn/internal/metrics"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/theory"
	"samplednn/internal/train"
)

func main() {
	fmt.Println("— Theorem 7.2: error/estimate ratio ((c+1)/c)^k − 1 at c = 5 —")
	fmt.Printf("%-4s %-14s %-18s %-14s\n", "k", "closed form", "exact-c simulation", "random top-k sim")
	uniform := theory.SimulateUniform(60, 50, 6) // m/(n−m) = 5
	topk := theory.SimulateTopK(1, 64, 16, 6)
	for k := 1; k <= 6; k++ {
		fmt.Printf("%-4d %-14.4f %-18.4f %-14.4f\n",
			k, theory.ErrorRatio(5, k), uniform.Ratios[k-1], topk.Ratios[k-1])
	}
	fmt.Printf("error exceeds the estimate beyond depth %d (paper: 3)\n", theory.DepthLimit(5, 1))
	fmt.Printf("random-weights sim realized mean c = %.2f\n\n", topk.MeanC)

	fmt.Println("— ALSH-approx in practice: accuracy and prediction coverage vs depth —")
	ds, err := dataset.Generate("mnist", dataset.Options{Seed: 5, MaxTrain: 800, MaxTest: 300, MaxVal: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-10s %-14s %-13s %-12s\n", "depth", "accuracy", "pred-coverage", "pred-entropy", "active-frac")
	for _, depth := range []int{1, 3, 5, 7} {
		net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 96, depth, ds.Spec.Classes), rng.New(11))
		if err != nil {
			log.Fatal(err)
		}
		m, err := core.NewALSHApprox(net, opt.NewAdam(0.002), core.ALSHConfig{
			Params: lsh.Params{K: 5, L: 12, M: 3, U: 0.83}, MinActive: 10,
		}, rng.New(13))
		if err != nil {
			log.Fatal(err)
		}
		tr, err := train.New(m, ds, train.Config{
			Epochs: 3, BatchSize: 1, Seed: 17, MaxEvalSamples: 300, RebuildPerEpoch: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			log.Fatal(err)
		}
		cm := metrics.NewConfusionMatrix(ds.Spec.Classes)
		cm.AddBatch(ds.Test.Y, m.Net().Predict(ds.Test.X))
		fmt.Printf("%-6d %8.2f%%  %-14.2f %-13.2f %-12.3f\n",
			depth, 100*cm.Accuracy(), cm.PredictionCoverage(), cm.PredictionEntropy(), m.ActiveFraction())
	}
	fmt.Println("\naccuracy falls and predictions concentrate as depth grows — §7 + §10.3.")
}
