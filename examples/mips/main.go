// MIPS: use the asymmetric-LSH engine the way ALSH-approx does during
// training (§5.2) — index the columns of a layer's weight matrix, query
// with an activation vector, and compare the hash-selected active set
// against the exact top inner products. Also demonstrates incremental
// column re-hashing after a simulated gradient update.
//
//	go run ./examples/mips
package main

import (
	"fmt"
	"log"

	"samplednn/internal/lsh"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func main() {
	g := rng.New(3)
	const fanIn, width = 64, 500

	// A hidden layer's weight matrix: one column per node (Figure 2).
	w := tensor.New(fanIn, width)
	g.GaussianSlice(w.Data, 0, 0.2)

	idx, err := lsh.NewMIPSIndex(fanIn, width, lsh.Params{K: 6, L: 8, M: 3, U: 0.83}, g)
	if err != nil {
		log.Fatal(err)
	}
	idx.Rebuild(w)

	// An incoming activation vector plays the query role.
	act := make([]float64, fanIn)
	g.GaussianSlice(act, 0, 1)

	cands := idx.Query(act, nil)
	truth := lsh.BruteForceTopK(w, act, 10)
	fmt.Printf("layer: %d nodes, query = activation vector of %d dims\n", width, fanIn)
	fmt.Printf("active set: %d nodes (%.1f%% of the layer)\n", len(cands), 100*float64(len(cands))/width)
	fmt.Printf("recall of true top-10 inner products: %.2f\n", lsh.Recall(cands, truth))
	fmt.Printf("exact top-5 nodes: %v\n\n", truth[:5])

	// Collision theory: per-bit probability is 1 − θ/π; a (K, L) index
	// retrieves with probability 1 − (1−p^K)^L.
	col := make([]float64, fanIn)
	w.Col(truth[0], col)
	pBit := lsh.CollisionProbability(act, col)
	fmt.Printf("top node: per-bit collision p = %.3f → retrieval prob %.3f at K=6, L=8\n",
		pBit, lsh.RetrievalProbability(pBit, 6, 8))

	// Simulate a sparse gradient update touching 20 nodes, then re-hash
	// only those columns — the maintenance path ALSH-approx runs during
	// training (§9.2).
	touched := g.SampleWithoutReplacement(width, 20)
	colBuf := make([]float64, fanIn)
	for _, j := range touched {
		w.Col(j, colBuf)
		for i := range colBuf {
			colBuf[i] += 0.1 * g.NormFloat64()
		}
		w.SetCol(j, colBuf)
	}
	idx.UpdateColumns(w, touched)
	rebuilds, queries := idx.Stats()
	fmt.Printf("\nafter sparse update of %d columns: %d full rebuilds, %d queries served\n",
		len(touched), rebuilds, queries)
	fmt.Printf("index memory: %.1f KB (the §9.4 'table setup' cost)\n", float64(idx.MemoryFootprint())/1024)
}
