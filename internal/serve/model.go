package serve

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/train"
)

// Model is one immutable, servable snapshot: a network loaded from an
// SNCK checkpoint plus (optionally) an LSH MIPS index over the output
// layer for fast top-k scoring. A Model is never mutated after
// NewModel returns, which is what makes the server's hot swap safe: the
// atomic pointer flips between fully built snapshots and in-flight
// requests keep serving from whichever one they loaded.
type Model struct {
	// Net is the loaded network. Only the read-only inference forward
	// (nn.InferForward and friends) may be used on it.
	Net *nn.Network

	// Info describes the model for /healthz and journal events.
	Info ModelInfo

	// aug is the output layer's weight matrix augmented with the bias as
	// an extra row, so a MIPS query with the last hidden activation
	// extended by 1.0 ranks columns by the exact logit z_j = a·w_j + b_j,
	// bias included. nil when top-k indexing is disabled.
	aug *tensor.Matrix
	// index hashes aug's columns; queried via per-request scratch.
	index *lsh.MIPSIndex
	// scratch pools per-request LSH query workspaces.
	scratch sync.Pool
}

// ModelInfo is the serializable description of a loaded model.
type ModelInfo struct {
	// Checkpoint is the SNCK path the model was loaded from.
	Checkpoint string `json:"checkpoint"`
	// CRC fingerprints the network blob (CRC-32/IEEE of the nn.Save
	// bytes): two models serve identical predictions iff their CRCs and
	// architectures match, which is how the hot-swap tests assert
	// "same weights" without shipping the weights.
	CRC uint32 `json:"crc"`
	// Epoch and Method come from the checkpoint's training provenance.
	Epoch  int    `json:"epoch"`
	Method string `json:"method"`
	// Fallback reports that the primary checkpoint failed validation and
	// the .prev backup was served instead.
	Fallback bool `json:"fallback"`
	// Inputs/Outputs/Layers/Params describe the architecture.
	Inputs  int `json:"inputs"`
	Outputs int `json:"outputs"`
	Layers  int `json:"layers"`
	Params  int `json:"params"`
	// TopK reports whether the LSH top-k index is built.
	TopK bool `json:"topk"`
}

// ModelOptions configures model loading.
type ModelOptions struct {
	// TopK builds the LSH MIPS index over the output layer.
	TopK bool
	// LSH overrides the index hyperparameters (lsh.DefaultParams when
	// zero).
	LSH lsh.Params
	// Seed seeds the index's hash draws; fixed per process so a reload
	// of the same checkpoint rebuilds the identical index.
	Seed uint64
}

// LoadModel reads the SNCK checkpoint at path — falling back to the
// .prev backup when the primary is corrupt, exactly like training
// resume does — and builds a servable model from its network blob.
func LoadModel(path string, opts ModelOptions) (*Model, error) {
	ck, primaryErr, err := train.ReadCheckpointFileFallback(path)
	if err != nil {
		return nil, fmt.Errorf("serve: loading checkpoint: %w", err)
	}
	if len(ck.NetBlob) == 0 {
		return nil, fmt.Errorf("serve: checkpoint %s carries no network blob", path)
	}
	net, err := nn.Load(bytes.NewReader(ck.NetBlob))
	if err != nil {
		return nil, fmt.Errorf("serve: decoding network from %s: %w", path, err)
	}
	m := &Model{
		Net: net,
		Info: ModelInfo{
			Checkpoint: path,
			CRC:        crc32.ChecksumIEEE(ck.NetBlob),
			Epoch:      ck.Epoch,
			Method:     ck.MethodName,
			Fallback:   primaryErr != nil,
			Inputs:     net.Layers[0].FanIn(),
			Outputs:    net.Layers[len(net.Layers)-1].FanOut(),
			Layers:     len(net.Layers),
			Params:     net.NumParams(),
		},
	}
	if opts.TopK {
		if err := m.buildTopKIndex(opts); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// buildTopKIndex augments the output layer with its bias row and hashes
// the columns into a MIPS index — the paper's training-time trick
// (§5.2) turned into an inference one: the last hidden activation is
// the query, the index retrieves the columns with the largest inner
// products, and exact reranking of that small candidate set yields the
// top-k logits without scoring every output node.
func (m *Model) buildTopKIndex(opts ModelOptions) error {
	out := m.Net.Layers[len(m.Net.Layers)-1]
	dim, n := out.FanIn()+1, out.FanOut()
	aug := tensor.New(dim, n)
	for i := 0; i < out.FanIn(); i++ {
		copy(aug.RowView(i), out.W.RowView(i))
	}
	copy(aug.RowView(dim-1), out.B)

	p := opts.LSH
	if p == (lsh.Params{}) {
		p = lsh.DefaultParams()
	}
	idx, err := lsh.NewMIPSIndex(dim, n, p, rng.New(opts.Seed))
	if err != nil {
		return fmt.Errorf("serve: building top-k index: %w", err)
	}
	idx.Rebuild(aug)
	m.aug = aug
	m.index = idx
	m.scratch.New = func() any { return idx.NewQueryScratch() }
	m.Info.TopK = true
	return nil
}

// TopK returns the ids of the k highest-logit output nodes for the
// single-row input x, and whether the LSH path answered. With an index
// the answer is the LSH candidate set exactly reranked (bias included
// via the augmented row); without one it falls back to brute force over
// the logits. Safe for any number of concurrent callers.
func (m *Model) TopK(x *tensor.Matrix, k int) (ids []int, lshPath bool) {
	if m.index == nil {
		logits := m.Net.InferForward(x).RowView(0)
		ids := make([]int, len(logits))
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(a, b int) bool { return logits[ids[a]] > logits[ids[b]] })
		if k > len(ids) {
			k = len(ids)
		}
		if k < 0 {
			k = 0
		}
		return ids[:k:k], false
	}
	// Run the read-only forward through the hidden stack only; the
	// output layer is what the index scores.
	a := x
	for _, l := range m.Net.Layers[:len(m.Net.Layers)-1] {
		a = l.Infer(a)
	}
	q := make([]float64, len(a.RowView(0))+1)
	copy(q, a.RowView(0))
	q[len(q)-1] = 1 // picks up the bias row of the augmented matrix
	sc := m.scratch.Get().(*lsh.QueryScratch)
	ids = m.index.QueryTopKWith(sc, m.aug, q, k)
	m.scratch.Put(sc)
	return ids, true
}
