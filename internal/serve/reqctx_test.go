package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"samplednn/internal/obs"
)

// newTracedServer builds a journaling server with one model installed,
// returning the server, its journal buffer, and the registry.
func newTracedServer(t *testing.T) (*Server, *bytes.Buffer, *obs.Registry) {
	t.Helper()
	net := testNet(t, 60)
	path := filepath.Join(t.TempDir(), "a.snck")
	writeTestCheckpoint(t, path, net, 1)
	var buf bytes.Buffer
	reg := newTestRegistry()
	s := NewServer(Options{Journal: obs.New(&buf), Registry: reg, Run: obs.RunID(7)})
	m, err := LoadModel(path, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Install(m)
	return s, &buf, reg
}

// TestRequestIDAdopted pins the client side of correlation: a request
// carrying X-Request-Id gets that exact trace echoed back and stamped
// on the journal records its handling produces.
func TestRequestIDAdopted(t *testing.T) {
	s, buf, _ := newTracedServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clientID = "00000000deadbeef"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/predict", strings.NewReader(`{"rows":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", clientID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != clientID {
		t.Fatalf("response X-Request-Id = %q, want %q", got, clientID)
	}

	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Event() == "request-fault" {
			found = true
			if r["trace"] != clientID {
				t.Fatalf("request-fault trace %v, want %s", r["trace"], clientID)
			}
			if r["run"] != obs.FormatID(obs.RunID(7)) {
				t.Fatalf("request-fault run %v, want %s", r["run"], obs.FormatID(obs.RunID(7)))
			}
		}
	}
	if !found {
		t.Fatal("no request-fault record journaled")
	}
}

// TestRequestIDMinted pins the server side: requests without a client
// ID get distinct deterministic per-request trace IDs.
func TestRequestIDMinted(t *testing.T) {
	s, _, _ := newTracedServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := testBatch(61, 2)
	ids := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/predict", rowsPayload(x))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d %s", resp.StatusCode, body)
		}
		id := resp.Header.Get("X-Request-Id")
		if _, ok := obs.ParseID(id); !ok {
			t.Fatalf("minted X-Request-Id %q is not a valid ID", id)
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Fatalf("two requests shared a minted trace ID: %v", ids)
	}
	// Minted IDs are a pure function of (run, sequence): the i'th
	// header must be RequestTrace(run, i+1).
	want := obs.FormatID(obs.RequestTrace(obs.RunID(7), 1))
	if !ids[want] {
		t.Fatalf("first minted ID should be %s, got %v", want, ids)
	}
}

// TestDrain pins the shutdown satellite: Drain returns with no
// in-flight requests, journals serve-drain, and the registry exports
// serve_inflight and serve_drain_seconds.
func TestDrain(t *testing.T) {
	s, buf, reg := newTracedServer(t)
	ts := httptest.NewServer(s.Handler())
	x := testBatch(62, 2)
	if resp, body := postJSON(t, ts.URL+"/predict", rowsPayload(x)); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	ts.Close() // waits for outstanding handlers

	s.Drain()

	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Event() != "serve-drain" {
		t.Fatalf("last journal event %s, want serve-drain", last.Event())
	}
	if n, ok := last["inflight"].(float64); !ok || n != 0 {
		t.Fatalf("serve-drain inflight = %v, want 0", last["inflight"])
	}

	snap := reg.Snapshot()
	if v, ok := snap.Gauges["serve.inflight"]; !ok || v != 0 {
		t.Fatalf("serve.inflight gauge = %v (present=%v), want 0", v, ok)
	}
	if snap.Timers["serve.drain"].Count != 1 {
		t.Fatalf("serve.drain timer count = %d, want 1", snap.Timers["serve.drain"].Count)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"serve_inflight", "serve_drain_seconds_count"} {
		if !strings.Contains(prom.String(), fam) {
			t.Fatalf("/metrics missing %s family:\n%s", fam, prom.String())
		}
	}
}
