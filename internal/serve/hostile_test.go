package serve

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestHostileRequests drives the serve boundary with the bodies a
// public endpoint actually receives — empty, ragged, oversized,
// trailing-garbage, wrong-shape — and pins that every one dies with a
// 4xx at the validation layer instead of reaching a tensor kernel
// (whose dimension checks panic, which for a server means a crashed
// connection, not a 400).
func TestHostileRequests(t *testing.T) {
	net := testNet(t, 30)
	path := filepath.Join(t.TempDir(), "model.snck")
	writeTestCheckpoint(t, path, net, 1)

	s := NewServer(Options{
		MaxBatchRows: 4,
		MaxBodyBytes: 512,
		Registry:     newTestRegistry(),
	})
	if _, err := s.LoadAndSwap(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	row := strings.TrimSuffix(strings.Repeat("0.5,", testInputs), ",")
	oversized := `{"rows":[` + strings.TrimSuffix(strings.Repeat("["+row+"],", 20), ",") + `]}`
	cases := []struct {
		name, endpoint, body string
		want                 int
	}{
		{"empty body", "/predict", ``, http.StatusBadRequest},
		{"not json", "/predict", `{{{{`, http.StatusBadRequest},
		{"wrong top-level type", "/predict", `[1,2,3]`, http.StatusBadRequest},
		{"unknown field", "/predict", `{"rows":[[` + row + `]],"admin":true}`, http.StatusBadRequest},
		{"trailing garbage", "/predict", `{"rows":[[` + row + `]]} {"again":1}`, http.StatusBadRequest},
		{"zero rows", "/predict", `{"rows":[]}`, http.StatusBadRequest},
		{"null rows", "/predict", `{"rows":null}`, http.StatusBadRequest},
		{"empty row", "/predict", `{"rows":[[]]}`, http.StatusBadRequest},
		{"short row", "/predict", `{"rows":[[1,2,3]]}`, http.StatusBadRequest},
		{"ragged rows", "/predict", `{"rows":[[` + row + `],[1,2]]}`, http.StatusBadRequest},
		{"huge number", "/predict", `{"rows":[[1e999,` + row[2:] + `]]}`, http.StatusBadRequest},
		{"too many rows", "/predict", `{"rows":[[` + row + `],[` + row + `],[` + row + `],[` + row + `],[` + row + `]]}`, http.StatusBadRequest},
		{"oversized body", "/predict", oversized, http.StatusRequestEntityTooLarge},
		{"topk empty row", "/topk", `{"row":[]}`, http.StatusBadRequest},
		{"topk short row", "/topk", `{"row":[1,2]}`, http.StatusBadRequest},
		{"topk k too large", "/topk", `{"row":[` + row + `],"k":99}`, http.StatusBadRequest},
		{"topk k negative", "/topk", `{"row":[` + row + `],"k":-1}`, http.StatusBadRequest},
		{"swap no checkpoint", "/admin/swap", `{}`, http.StatusBadRequest},
		{"swap unknown field", "/admin/swap", `{"checkpoint":"x","force":true}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.endpoint, []byte(tc.body))
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d (%s), want %d", tc.endpoint, tc.name, resp.StatusCode, body, tc.want)
			}
		})
	}

	// Same row-count rejection with a different limit, pinning that the
	// reason names the configured cap.
	t.Run("too many rows names the limit", func(t *testing.T) {
		wide := NewServer(Options{MaxBatchRows: 2, Registry: newTestRegistry()})
		if _, err := wide.LoadAndSwap(path); err != nil {
			t.Fatal(err)
		}
		wts := httptest.NewServer(wide.Handler())
		defer wts.Close()
		body := `{"rows":[[` + row + `],[` + row + `],[` + row + `]]}`
		resp, out := postJSON(t, wts.URL+"/predict", []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d (%s), want 400", resp.StatusCode, out)
		}
		if !strings.Contains(string(out), "limit is 2") {
			t.Fatalf("unexpected reason: %s", out)
		}
	})

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/predict")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /predict status %d, want 405", resp.StatusCode)
		}
	})

	t.Run("no model installed", func(t *testing.T) {
		bare := NewServer(Options{Registry: newTestRegistry()})
		bts := httptest.NewServer(bare.Handler())
		defer bts.Close()
		for _, ep := range []string{"/predict", "/topk"} {
			resp, _ := postJSON(t, bts.URL+ep, []byte(`{}`))
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("%s without model: status %d, want 503", ep, resp.StatusCode)
			}
		}
		resp, err := http.Get(bts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/healthz without model: status %d, want 503", resp.StatusCode)
		}
	})

	t.Run("swap to missing checkpoint keeps serving", func(t *testing.T) {
		before := s.Model().Info.CRC
		resp, _ := postJSON(t, ts.URL+"/admin/swap", []byte(`{"checkpoint":"/nonexistent/x.snck"}`))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("swap to missing path: status %d, want 500", resp.StatusCode)
		}
		if s.Model() == nil || s.Model().Info.CRC != before {
			t.Fatal("failed swap must leave the old model serving")
		}
	})

	// Every hostile case above must have been counted and none may have
	// reached the batcher.
	if s.faults.Value() == 0 {
		t.Fatal("hostile requests did not increment the fault counter")
	}
	if s.batchRows.Snapshot().Count != 0 {
		t.Fatal("a hostile request reached the batcher")
	}
}
