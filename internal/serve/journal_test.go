package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samplednn/internal/obs"
)

// journalSchema reduces a journal to "event: key,key,..." lines — the
// same schema-not-values reduction the trainer's golden test uses, so
// the serving journal's event sequence and field sets are pinned as a
// contract for offline tooling.
func journalSchema(t *testing.T, buf *bytes.Buffer) string {
	t.Helper()
	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal does not round-trip: %v", err)
	}
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%s: %s\n", r.Event(), strings.Join(r.Keys(), ","))
	}
	return b.String()
}

// TestServeJournalGoldenSchema exercises the full serving lifecycle —
// install, good request, hostile request, hot swap, failed swap — and
// pins the resulting journal schema against a golden file. Regenerate
// with JOURNAL_GOLDEN_UPDATE=1.
func TestServeJournalGoldenSchema(t *testing.T) {
	net := testNet(t, 50)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.snck")
	pathB := filepath.Join(dir, "b.snck")
	writeTestCheckpoint(t, pathA, net, 1)
	writeTestCheckpoint(t, pathB, net, 2)

	var buf bytes.Buffer
	j := obs.New(&buf)
	s := NewServer(Options{Journal: j, Registry: newTestRegistry()})

	m, err := LoadModel(pathA, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Install(m)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := testBatch(51, 2)
	if resp, body := postJSON(t, ts.URL+"/predict", rowsPayload(x)); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/predict", []byte(`{"rows":[]}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hostile predict status %d, want 400", resp.StatusCode)
	}
	if _, err := s.LoadAndSwap(pathB); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts.URL+"/admin/swap", []byte(`{"checkpoint":"/nope.snck"}`)); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed swap status %d, want 500", resp.StatusCode)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	got := journalSchema(t, &buf)
	goldenPath := filepath.Join("testdata", "journal_schema.golden")
	if os.Getenv("JOURNAL_GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with JOURNAL_GOLDEN_UPDATE=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("serve journal schema drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestJournalSwapRecordsProvenance checks swap event values (the golden
// test pins only the schema): crc chain and fallback flag.
func TestJournalSwapRecordsProvenance(t *testing.T) {
	net := testNet(t, 52)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.snck")
	pathB := filepath.Join(dir, "b.snck")
	writeTestCheckpoint(t, pathA, net, 1)
	writeTestCheckpoint(t, pathB, net, 2)

	var buf bytes.Buffer
	s := NewServer(Options{Journal: obs.New(&buf), Registry: newTestRegistry()})
	infoA, err := s.LoadAndSwap(pathA)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := s.LoadAndSwap(pathB)
	if err != nil {
		t.Fatal(err)
	}

	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 swap records, got %d", len(recs))
	}
	first, second := recs[0], recs[1]
	if first.Event() != "swap" || second.Event() != "swap" {
		t.Fatalf("events = %s, %s", first.Event(), second.Event())
	}
	if first["prev_crc"].(float64) != 0 {
		t.Fatalf("first swap prev_crc = %v, want 0", first["prev_crc"])
	}
	if uint32(second["prev_crc"].(float64)) != infoA.CRC {
		t.Fatalf("second swap prev_crc = %v, want %d", second["prev_crc"], infoA.CRC)
	}
	if uint32(second["crc"].(float64)) != infoB.CRC {
		t.Fatalf("second swap crc = %v, want %d", second["crc"], infoB.CRC)
	}
	if second["fallback"] != false {
		t.Fatalf("swap fallback = %v", second["fallback"])
	}
}
