package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/train"
)

const (
	testInputs  = 12
	testOutputs = 5
)

// newTestRegistry isolates each test server's metrics so counter
// assertions cannot bleed across tests through obs.Default.
func newTestRegistry() *obs.Registry { return obs.NewRegistry() }

func testNet(t *testing.T, seed uint64) *nn.Network {
	t.Helper()
	net, err := nn.NewNetwork(nn.Uniform(testInputs, 16, 2, testOutputs), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// writeTestCheckpoint wraps net in a minimal SNCK checkpoint at path.
func writeTestCheckpoint(t *testing.T, path string, net *nn.Network, epoch int) {
	t.Helper()
	var blob bytes.Buffer
	if err := net.Save(&blob); err != nil {
		t.Fatal(err)
	}
	ck := &train.Checkpoint{Epoch: epoch, MethodName: "standard", NetBlob: blob.Bytes()}
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func testBatch(seed uint64, rows int) *tensor.Matrix {
	x := tensor.New(rows, testInputs)
	rng.New(seed).GaussianSlice(x.Data, 0, 1)
	return x
}

func rowsPayload(x *tensor.Matrix) []byte {
	rows := make([][]float64, x.Rows)
	for i := range rows {
		rows[i] = x.RowView(i)
	}
	b, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		panic(err)
	}
	return b
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestLoadModelInfo(t *testing.T) {
	net := testNet(t, 11)
	path := filepath.Join(t.TempDir(), "model.snck")
	writeTestCheckpoint(t, path, net, 7)

	m, err := LoadModel(path, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	info := m.Info
	if info.Inputs != testInputs || info.Outputs != testOutputs {
		t.Fatalf("info dims %d/%d, want %d/%d", info.Inputs, info.Outputs, testInputs, testOutputs)
	}
	if info.Epoch != 7 || info.Method != "standard" || info.Fallback || info.TopK {
		t.Fatalf("info = %+v", info)
	}
	if info.Params != net.NumParams() || info.Layers != len(net.Layers) {
		t.Fatalf("info params/layers = %d/%d", info.Params, info.Layers)
	}
	if info.CRC == 0 {
		t.Fatal("zero CRC fingerprint")
	}

	// Same weights at a different path must fingerprint identically.
	path2 := filepath.Join(t.TempDir(), "model2.snck")
	writeTestCheckpoint(t, path2, net, 9)
	m2, err := LoadModel(path2, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Info.CRC != info.CRC {
		t.Fatalf("same weights fingerprint differently: %08x vs %08x", m2.Info.CRC, info.CRC)
	}
}

func TestLoadModelFallsBackToBackup(t *testing.T) {
	net := testNet(t, 12)
	path := filepath.Join(t.TempDir(), "model.snck")
	writeTestCheckpoint(t, path, net, 3)
	backup := train.CheckpointBackupPath(path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(backup, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("garbage, not SNCK"), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := LoadModel(path, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Info.Fallback {
		t.Fatal("corrupt primary with valid .prev should report Fallback")
	}
}

func TestPredictEndpointMatchesLocal(t *testing.T) {
	net := testNet(t, 13)
	path := filepath.Join(t.TempDir(), "model.snck")
	writeTestCheckpoint(t, path, net, 1)

	s := NewServer(Options{Registry: newTestRegistry()})
	if _, err := s.LoadAndSwap(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	x := testBatch(14, 6)
	want := net.Predict(x)

	resp, body := postJSON(t, ts.URL+"/predict", rowsPayload(x))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(pr.Predictions), len(want))
	}
	for i := range want {
		if pr.Predictions[i] != want[i] {
			t.Fatalf("prediction[%d] = %d, want %d", i, pr.Predictions[i], want[i])
		}
	}
	if pr.CRC != s.Model().Info.CRC {
		t.Fatalf("response CRC %08x, want %08x", pr.CRC, s.Model().Info.CRC)
	}
}

// exactTopK is the serial reference: output ids sorted by logit
// descending, truncated to k.
func exactTopK(net *nn.Network, x *tensor.Matrix, k int) []int {
	logits := net.InferForward(x).RowView(0)
	ids := make([]int, len(logits))
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < len(ids); i++ { // tiny n: selection sort is fine and stable
		best := i
		for j := i + 1; j < len(ids); j++ {
			if logits[ids[j]] > logits[ids[best]] {
				best = j
			}
		}
		ids[i], ids[best] = ids[best], ids[i]
	}
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

func TestTopKEndpoint(t *testing.T) {
	net := testNet(t, 15)
	path := filepath.Join(t.TempDir(), "model.snck")
	writeTestCheckpoint(t, path, net, 1)

	for _, lshOn := range []bool{false, true} {
		s := NewServer(Options{TopK: 3, Model: ModelOptions{TopK: lshOn, Seed: 16}, Registry: newTestRegistry()})
		if _, err := s.LoadAndSwap(path); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())

		x := testBatch(17, 1)
		body, _ := json.Marshal(map[string]any{"row": x.RowView(0), "k": testOutputs})
		resp, out := postJSON(t, ts.URL+"/topk", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lsh=%v status %d: %s", lshOn, resp.StatusCode, out)
		}
		var tr topkResponse
		if err := json.Unmarshal(out, &tr); err != nil {
			t.Fatal(err)
		}
		if tr.LSH != lshOn {
			t.Fatalf("lsh=%v but response reports %v", lshOn, tr.LSH)
		}
		// k equals the full output width, so even the LSH path must
		// return its candidates in exact descending-logit order; any ids
		// it retrieved must form a prefix-consistent subsequence of the
		// exact ranking. For the brute-force path the match is total.
		want := exactTopK(net, x, testOutputs)
		if !lshOn {
			if fmt.Sprint(tr.IDs) != fmt.Sprint(want) {
				t.Fatalf("brute-force top-k %v, want %v", tr.IDs, want)
			}
		} else {
			rank := make(map[int]int, len(want))
			for r, id := range want {
				rank[id] = r
			}
			for i := 1; i < len(tr.IDs); i++ {
				if rank[tr.IDs[i-1]] > rank[tr.IDs[i]] {
					t.Fatalf("lsh top-k %v not in exact logit order %v", tr.IDs, want)
				}
			}
		}
		ts.Close()
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	net := testNet(t, 18)
	path := filepath.Join(t.TempDir(), "model.snck")
	writeTestCheckpoint(t, path, net, 2)

	s := NewServer(Options{Registry: newTestRegistry()})
	if _, err := s.LoadAndSwap(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.CRC != s.Model().Info.CRC || info.Epoch != 2 {
		t.Fatalf("healthz info = %+v", info)
	}

	// Drive one request so the counters are non-zero, then scrape.
	x := testBatch(19, 2)
	if resp, body := postJSON(t, ts.URL+"/predict", rowsPayload(x)); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict failed: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{"serve_requests_total 1", "serve_swaps_total 1", "serve_batch_rows_count 1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out.String())
		}
	}
}

// TestHotSwapSameWeightsIsByteIdentical pins the swap correctness
// contract: after swapping to a checkpoint holding the same weights,
// the /predict response bytes are identical to before.
func TestHotSwapSameWeightsIsByteIdentical(t *testing.T) {
	net := testNet(t, 20)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.snck")
	pathB := filepath.Join(dir, "b.snck")
	writeTestCheckpoint(t, pathA, net, 4)
	writeTestCheckpoint(t, pathB, net, 4)

	s := NewServer(Options{Registry: newTestRegistry()})
	if _, err := s.LoadAndSwap(pathA); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	payload := rowsPayload(testBatch(21, 5))
	_, before := postJSON(t, ts.URL+"/predict", payload)

	swapBody, _ := json.Marshal(map[string]string{"checkpoint": pathB})
	resp, out := postJSON(t, ts.URL+"/admin/swap", swapBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap failed: %d %s", resp.StatusCode, out)
	}

	_, after := postJSON(t, ts.URL+"/predict", payload)
	if !bytes.Equal(before, after) {
		t.Fatalf("responses differ across same-weights swap:\nbefore: %s\nafter:  %s", before, after)
	}
	if s.Model().Info.Checkpoint != pathB {
		t.Fatal("swap did not install the new checkpoint path")
	}
}

func TestBatcherCoalesces(t *testing.T) {
	net := testNet(t, 22)
	path := filepath.Join(t.TempDir(), "model.snck")
	writeTestCheckpoint(t, path, net, 1)
	s := NewServer(Options{MaxBatchRows: 8, Registry: newTestRegistry()})
	if _, err := s.LoadAndSwap(path); err != nil {
		t.Fatal(err)
	}

	// Stuff the queue directly, then run one batch by predicting: the
	// leader must drain the whole prefix in a single GEMM.
	queued := make([]*batchCall, 3)
	for i := range queued {
		queued[i] = &batchCall{x: testBatch(uint64(23+i), 2), done: make(chan struct{})}
	}
	s.batch.mu.Lock()
	s.batch.queue = append(s.batch.queue, queued...)
	s.batch.mu.Unlock()

	x := testBatch(26, 2)
	preds, _, err := s.batch.predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range queued {
		select {
		case <-c.done:
		default:
			t.Fatal("leader left a queued call unserved")
		}
		want := net.Predict(c.x)
		for i := range want {
			if c.preds[i] != want[i] {
				t.Fatalf("coalesced call diverged from serial reference")
			}
		}
	}
	want := net.Predict(x)
	for i := range want {
		if preds[i] != want[i] {
			t.Fatal("leader's own call diverged from serial reference")
		}
	}
	if got := s.batchCalls.Snapshot().Max; got != 4 {
		t.Fatalf("batch coalesced %d calls, want 4", got)
	}
}
