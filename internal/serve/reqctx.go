package serve

import (
	"context"
	"net/http"

	"samplednn/internal/obs"
)

// Request correlation and drain accounting. Every request through
// Handler() gets an obs.Ctx — either adopted from the client's
// X-Request-Id header (so a caller's own logs stitch to the server's
// journal) or minted deterministically from (run, request sequence) —
// and is counted in the serve.inflight gauge that Drain waits on at
// shutdown. The context rides the request's context.Context, never a
// global, so concurrent requests cannot observe each other's IDs.

// ctxKeyType keys the correlation context in a request context.
type ctxKeyType struct{}

// requestCtx derives the correlation context for one incoming request.
func (s *Server) requestCtx(r *http.Request) obs.Ctx {
	seq := s.reqSeq.Add(1)
	traceID, ok := obs.ParseID(r.Header.Get("X-Request-Id"))
	if !ok {
		traceID = obs.RequestTrace(s.run, seq)
	}
	return obs.RequestCtx(s.run, traceID)
}

// withObs is the observability middleware: it installs the request's
// correlation context, echoes the trace ID back as X-Request-Id (set
// before the handler runs, so error responses carry it too), and
// brackets the handler between in-flight enter/leave for Drain.
func (s *Server) withObs(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cx := s.requestCtx(r)
		w.Header().Set("X-Request-Id", obs.FormatID(cx.Trace))
		s.enterRequest()
		defer s.leaveRequest()
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyType{}, cx)))
	})
}

// reqCtx recovers the context withObs installed. Handlers invoked
// outside the middleware (direct unit-test calls) get the zero Ctx,
// which is valid everywhere.
func reqCtx(r *http.Request) obs.Ctx {
	cx, _ := r.Context().Value(ctxKeyType{}).(obs.Ctx)
	return cx
}

func (s *Server) enterRequest() {
	s.mu.Lock()
	s.inflightN++
	s.mu.Unlock()
	s.inflight.Add(1)
}

func (s *Server) leaveRequest() {
	s.inflight.Add(-1)
	s.mu.Lock()
	s.inflightN--
	if s.inflightN == 0 {
		s.drained.Broadcast()
	}
	s.mu.Unlock()
}

// Drain blocks until every in-flight request has completed, recording
// the wait in the serve.drain timer (exported as serve_drain_seconds)
// and journaling serve-drain with how many requests it waited on.
// mlpserve calls it on SIGTERM after the listener stops accepting, so
// the journal's final record documents the shutdown. It carries no
// timeout of its own — the caller bounds the whole shutdown (e.g. via
// http.Server.Shutdown's context) and every request is already
// body-capped, so waits are short.
func (s *Server) Drain() {
	stop := s.drainT.Start()
	s.mu.Lock()
	waited := s.inflightN
	for s.inflightN > 0 {
		s.drained.Wait()
	}
	s.mu.Unlock()
	stop()
	s.emit(s.root(), "serve-drain", map[string]any{"inflight": waited})
}
