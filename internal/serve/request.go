package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"samplednn/internal/tensor"
)

// This file is the hostile-input boundary: everything arriving over
// HTTP is validated here, before any value can reach a tensor kernel.
// The kernels enforce their invariants by panicking (the right contract
// for internal callers, fatal for a server), so zero-row bodies, ragged
// rows, non-finite floats, oversized payloads, and trailing garbage
// must all die here with a 4xx instead.

// predictRequest is the POST /predict body.
type predictRequest struct {
	// Rows are the input feature rows, all of the model's input width.
	Rows [][]float64 `json:"rows"`
}

// topkRequest is the POST /topk body.
type topkRequest struct {
	// Row is one input feature row.
	Row []float64 `json:"row"`
	// K is the number of top output nodes wanted (the server default
	// when omitted).
	K int `json:"k"`
}

// swapRequest is the POST /admin/swap body.
type swapRequest struct {
	// Checkpoint is the SNCK path to load and swap in.
	Checkpoint string `json:"checkpoint"`
}

// badRequestError marks a validation failure that should surface as
// HTTP 400 (or 413 for oversized bodies) rather than 500.
type badRequestError struct {
	status int
	reason string
}

func (e *badRequestError) Error() string { return e.reason }

func badRequest(format string, args ...any) error {
	return &badRequestError{status: http.StatusBadRequest, reason: fmt.Sprintf(format, args...)}
}

// decodeJSON reads the request body (capped at maxBody bytes) into v,
// rejecting unknown fields and trailing garbage.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBody int64, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &badRequestError{
				status: http.StatusRequestEntityTooLarge,
				reason: fmt.Sprintf("body exceeds %d bytes", maxErr.Limit),
			}
		}
		return badRequest("malformed JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	if _, err := dec.Token(); err != io.EOF {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// validateRow rejects empty, wrong-width, and non-finite feature rows.
func validateRow(row []float64, i, want int) error {
	if len(row) == 0 {
		return badRequest("row %d is empty", i)
	}
	if len(row) != want {
		return badRequest("row %d has %d features, model expects %d", i, len(row), want)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequest("row %d feature %d is not finite", i, j)
		}
	}
	return nil
}

// matrixFromRows validates rows against the model's input width and
// packs them into a matrix. maxRows bounds the per-request row count so
// one caller cannot monopolize the batcher.
func matrixFromRows(rows [][]float64, want, maxRows int) (*tensor.Matrix, error) {
	if len(rows) == 0 {
		return nil, badRequest("request carries no rows")
	}
	if len(rows) > maxRows {
		return nil, badRequest("request carries %d rows, limit is %d", len(rows), maxRows)
	}
	for i, row := range rows {
		if err := validateRow(row, i, want); err != nil {
			return nil, err
		}
	}
	x := tensor.New(len(rows), want)
	for i, row := range rows {
		copy(x.RowView(i), row)
	}
	return x, nil
}
