// Package serve is samplednn's inference layer: a stdlib net/http
// prediction service over SNCK checkpoints. It exists because the
// paper's training-side story (sample the expensive GEMMs) has an
// inference-side mirror — once a model is trained, the serving path
// wants the same disciplines the trainer already has: checkpoint
// provenance, observability, and the LSH machinery reused for top-k
// scoring instead of active-set selection.
//
// The design centers on two pieces:
//
//   - an atomic model pointer (the span tracer's hot-swap idiom):
//     models are immutable snapshots, LoadAndSwap flips the pointer,
//     and in-flight requests finish on whichever snapshot they loaded —
//     zero-downtime swaps with no locks on the request path, and
//   - a convoy micro-batcher (batch.go): concurrent predict calls
//     coalesce so one GEMM serves many callers, built from mutexes only
//     so it honors the repo's no-timers / no-raw-goroutines invariants.
//
// Correctness of the whole arrangement leans on the read-only inference
// forward (nn.InferForward): the caching nn.Forward writes layer state
// and made concurrent prediction a data race, which is exactly the bug
// this package's tests pin.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"samplednn/internal/obs"
	"samplednn/internal/obs/trace"
	"samplednn/internal/tensor"
)

// Options configures a Server.
type Options struct {
	// MaxBatchRows caps both the rows one micro-batch GEMM may carry
	// and the rows a single request may post (default 256).
	MaxBatchRows int
	// MaxBodyBytes caps request body size (default 1 MiB).
	MaxBodyBytes int64
	// TopK is the default k for /topk requests that omit it (default 5).
	TopK int
	// Model configures checkpoint loading for LoadAndSwap.
	Model ModelOptions
	// Journal receives serve-start/swap/request-fault/serve-drain
	// events; nil disables journaling. A journal without a Lamport
	// clock gets one attached, so serving journals merge causally with
	// training journals (obs.MergeJournals).
	Journal *obs.Journal
	// Registry receives serve metrics and backs /metrics
	// (obs.Default when nil).
	Registry *obs.Registry
	// Run identifies the serving run in every journal record and
	// X-Request-Id the server mints (default obs.RunID(0)). mlpserve
	// derives it from the checkpoint CRC so restarts on the same model
	// correlate.
	Run uint64
}

// Server is the prediction service: an atomically swappable model, a
// convoy micro-batcher, and the HTTP handlers around them.
type Server struct {
	opts    Options
	model   atomic.Pointer[Model]
	batch   *batcher
	journal *obs.Journal
	run     uint64
	reqSeq  atomic.Uint64

	// mu guards the in-flight request count; drained is broadcast when
	// it returns to zero, which is what Drain waits on.
	mu        sync.Mutex
	inflightN int
	drained   *sync.Cond

	registry   *obs.Registry
	requests   *obs.Counter
	faults     *obs.Counter
	swaps      *obs.Counter
	inflight   *obs.Gauge
	drainT     *obs.Timer
	batchRows  *obs.Distribution
	batchCalls *obs.Distribution
	latency    *obs.Distribution
}

// NewServer builds a server with no model installed; requests fail
// with 503 until Install or LoadAndSwap succeeds.
func NewServer(opts Options) *Server {
	if opts.MaxBatchRows <= 0 {
		opts.MaxBatchRows = 256
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.TopK <= 0 {
		opts.TopK = 5
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	if opts.Run == 0 {
		opts.Run = obs.RunID(0)
	}
	if opts.Journal != nil && opts.Journal.Lamport() == nil {
		opts.Journal.SetLamport(obs.NewClock())
	}
	s := &Server{
		opts:       opts,
		journal:    opts.Journal,
		run:        opts.Run,
		registry:   reg,
		requests:   reg.Counter("serve.requests"),
		faults:     reg.Counter("serve.faults"),
		swaps:      reg.Counter("serve.swaps"),
		inflight:   reg.Gauge("serve.inflight"),
		drainT:     reg.Timer("serve.drain"),
		batchRows:  reg.Distribution("serve.batch.rows"),
		batchCalls: reg.Distribution("serve.batch.calls"),
		latency:    reg.Distribution("serve.latency.us"),
	}
	s.drained = sync.NewCond(&s.mu)
	s.batch = &batcher{
		model:   s.model.Load,
		maxRows: opts.MaxBatchRows,
		onBatch: func(rows, calls int) {
			s.batchRows.Observe(int64(rows))
			s.batchCalls.Observe(int64(calls))
		},
	}
	return s
}

// Model returns the currently installed snapshot (nil before the first
// Install/LoadAndSwap).
func (s *Server) Model() *Model { return s.model.Load() }

// BatchStats summarizes the convoy batcher's activity so far.
type BatchStats struct {
	// Batches counts executed leader GEMMs.
	Batches int64 `json:"batches"`
	// MaxCoalesced is the most calls one GEMM served.
	MaxCoalesced int64 `json:"max_coalesced"`
}

// BatchStats reads the batcher's counters from the registry.
func (s *Server) BatchStats() BatchStats {
	snap := s.batchCalls.Snapshot()
	return BatchStats{Batches: snap.Count, MaxCoalesced: snap.Max}
}

// emit journals one event under a correlation context (EmitCtx is
// nil-safe, so a disabled journal costs one nil check).
func (s *Server) emit(cx obs.Ctx, event string, fields map[string]any) {
	s.journal.EmitCtx(cx, event, fields)
}

// root is the run-scoped context for lifecycle events (install, boot
// swap, drain) that belong to no particular request.
func (s *Server) root() obs.Ctx { return obs.RootCtx(s.run) }

// Install makes m the serving model and journals serve-start. It is
// meant for boot; use LoadAndSwap for live replacement.
func (s *Server) Install(m *Model) {
	s.model.Store(m)
	s.emit(s.root(), "serve-start", map[string]any{
		"checkpoint": m.Info.Checkpoint,
		"crc":        m.Info.CRC,
		"epoch":      m.Info.Epoch,
		"method":     m.Info.Method,
		"layers":     m.Info.Layers,
		"params":     m.Info.Params,
		"inputs":     m.Info.Inputs,
		"outputs":    m.Info.Outputs,
		"topk":       m.Info.TopK,
	})
}

// LoadAndSwap loads the checkpoint at path and atomically replaces the
// serving model. In-flight requests finish on the old snapshot; the
// swap never blocks the request path. On load failure the old model
// keeps serving.
func (s *Server) LoadAndSwap(path string) (ModelInfo, error) {
	return s.loadAndSwap(s.root(), path)
}

// loadAndSwap is LoadAndSwap under a caller-chosen context, so a swap
// driven by POST /admin/swap journals under that request's trace.
func (s *Server) loadAndSwap(cx obs.Ctx, path string) (ModelInfo, error) {
	m, err := LoadModel(path, s.opts.Model)
	if err != nil {
		return ModelInfo{}, err
	}
	prev := s.model.Swap(m)
	var prevCRC uint32
	if prev != nil {
		prevCRC = prev.Info.CRC
	}
	s.swaps.Inc()
	s.emit(cx, "swap", map[string]any{
		"checkpoint": m.Info.Checkpoint,
		"crc":        m.Info.CRC,
		"epoch":      m.Info.Epoch,
		"prev_crc":   prevCRC,
		"fallback":   m.Info.Fallback,
	})
	return m.Info, nil
}

// Handler returns the service mux:
//
//	POST /predict     batch prediction
//	POST /topk        LSH-accelerated top-k logits for one row
//	GET  /healthz     current model info
//	GET  /metrics     Prometheus text exposition of the registry
//	POST /admin/swap  hot-swap to another checkpoint
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /topk", s.handleTopK)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.registry)
	mux.HandleFunc("POST /admin/swap", s.handleSwap)
	return s.withObs(mux)
}

// fault records a request failure — counter, journal, HTTP status —
// with a fixed journal key set so the schema test can pin it.
func (s *Server) fault(w http.ResponseWriter, cx obs.Ctx, endpoint string, status int, reason string) {
	s.faults.Inc()
	s.emit(cx, "request-fault", map[string]any{
		"endpoint": endpoint,
		"status":   status,
		"reason":   reason,
	})
	http.Error(w, reason, status)
}

// failErr maps an error to fault: validation errors keep their status,
// ErrNoModel is 503, anything else is a 500.
func (s *Server) failErr(w http.ResponseWriter, cx obs.Ctx, endpoint string, err error) {
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		s.fault(w, cx, endpoint, bad.status, bad.reason)
	case errors.Is(err, ErrNoModel):
		s.fault(w, cx, endpoint, http.StatusServiceUnavailable, err.Error())
	default:
		s.fault(w, cx, endpoint, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// predictResponse is the POST /predict reply. CRC identifies the model
// snapshot that served the whole request — every row in one request is
// answered by a single snapshot even across a concurrent hot swap.
type predictResponse struct {
	Predictions []int  `json:"predictions"`
	CRC         uint32 `json:"crc"`
	Epoch       int    `json:"epoch"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	defer s.latency.TimeMicros()()
	cx := reqCtx(r)
	// The request span wraps the batcher's GEMM spans on the timeline
	// and carries the trace ID the client saw as X-Request-Id, so a
	// slow request in the journal can be found in the Perfetto view.
	sp := trace.Active().BeginCtx("serve", "predict", cx)
	defer sp.End()
	s.requests.Inc()
	m := s.model.Load()
	if m == nil {
		s.failErr(w, cx, "/predict", ErrNoModel)
		return
	}
	var req predictRequest
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.failErr(w, cx, "/predict", err)
		return
	}
	x, err := matrixFromRows(req.Rows, m.Info.Inputs, s.opts.MaxBatchRows)
	if err != nil {
		s.failErr(w, cx, "/predict", err)
		return
	}
	preds, info, err := s.batch.predict(x)
	if err != nil {
		// The batcher re-validates against the snapshot that actually
		// served the batch; a mid-flight swap to a different
		// architecture surfaces here as a 400.
		var bad *badRequestError
		if !errors.As(err, &bad) && !errors.Is(err, ErrNoModel) {
			err = badRequest("%v", err)
		}
		s.failErr(w, cx, "/predict", err)
		return
	}
	writeJSON(w, predictResponse{Predictions: preds, CRC: info.CRC, Epoch: info.Epoch})
}

// topkResponse is the POST /topk reply. LSH reports whether the
// indexed path answered (false means brute-force fallback).
type topkResponse struct {
	IDs   []int  `json:"ids"`
	LSH   bool   `json:"lsh"`
	CRC   uint32 `json:"crc"`
	Epoch int    `json:"epoch"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	defer s.latency.TimeMicros()()
	cx := reqCtx(r)
	sp := trace.Active().BeginCtx("serve", "topk", cx)
	defer sp.End()
	s.requests.Inc()
	m := s.model.Load()
	if m == nil {
		s.failErr(w, cx, "/topk", ErrNoModel)
		return
	}
	var req topkRequest
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.failErr(w, cx, "/topk", err)
		return
	}
	if err := validateRow(req.Row, 0, m.Info.Inputs); err != nil {
		s.failErr(w, cx, "/topk", err)
		return
	}
	k := req.K
	if k == 0 {
		k = s.opts.TopK
	}
	if k < 1 || k > m.Info.Outputs {
		s.failErr(w, cx, "/topk", badRequest("k=%d out of range (1..%d)", k, m.Info.Outputs))
		return
	}
	x := tensor.New(1, m.Info.Inputs)
	copy(x.RowView(0), req.Row)
	ids, lshPath := m.TopK(x, k)
	writeJSON(w, topkResponse{IDs: ids, LSH: lshPath, CRC: m.Info.CRC, Epoch: m.Info.Epoch})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.model.Load()
	if m == nil {
		s.fault(w, reqCtx(r), "/healthz", http.StatusServiceUnavailable, ErrNoModel.Error())
		return
	}
	writeJSON(w, m.Info)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	cx := reqCtx(r)
	s.requests.Inc()
	var req swapRequest
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.failErr(w, cx, "/admin/swap", err)
		return
	}
	if req.Checkpoint == "" {
		s.failErr(w, cx, "/admin/swap", badRequest("checkpoint path is required"))
		return
	}
	info, err := s.loadAndSwap(cx, req.Checkpoint)
	if err != nil {
		s.failErr(w, cx, "/admin/swap", fmt.Errorf("swap failed: %w", err))
		return
	}
	writeJSON(w, info)
}
