// Package serve is samplednn's inference layer: a stdlib net/http
// prediction service over SNCK checkpoints. It exists because the
// paper's training-side story (sample the expensive GEMMs) has an
// inference-side mirror — once a model is trained, the serving path
// wants the same disciplines the trainer already has: checkpoint
// provenance, observability, and the LSH machinery reused for top-k
// scoring instead of active-set selection.
//
// The design centers on two pieces:
//
//   - an atomic model pointer (the span tracer's hot-swap idiom):
//     models are immutable snapshots, LoadAndSwap flips the pointer,
//     and in-flight requests finish on whichever snapshot they loaded —
//     zero-downtime swaps with no locks on the request path, and
//   - a convoy micro-batcher (batch.go): concurrent predict calls
//     coalesce so one GEMM serves many callers, built from mutexes only
//     so it honors the repo's no-timers / no-raw-goroutines invariants.
//
// Correctness of the whole arrangement leans on the read-only inference
// forward (nn.InferForward): the caching nn.Forward writes layer state
// and made concurrent prediction a data race, which is exactly the bug
// this package's tests pin.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"samplednn/internal/obs"
	"samplednn/internal/tensor"
)

// Options configures a Server.
type Options struct {
	// MaxBatchRows caps both the rows one micro-batch GEMM may carry
	// and the rows a single request may post (default 256).
	MaxBatchRows int
	// MaxBodyBytes caps request body size (default 1 MiB).
	MaxBodyBytes int64
	// TopK is the default k for /topk requests that omit it (default 5).
	TopK int
	// Model configures checkpoint loading for LoadAndSwap.
	Model ModelOptions
	// Journal receives serve-start/swap/request-fault events; nil
	// disables journaling.
	Journal *obs.Journal
	// Registry receives serve metrics and backs /metrics
	// (obs.Default when nil).
	Registry *obs.Registry
}

// Server is the prediction service: an atomically swappable model, a
// convoy micro-batcher, and the HTTP handlers around them.
type Server struct {
	opts    Options
	model   atomic.Pointer[Model]
	batch   *batcher
	journal *obs.Journal

	registry   *obs.Registry
	requests   *obs.Counter
	faults     *obs.Counter
	swaps      *obs.Counter
	batchRows  *obs.Distribution
	batchCalls *obs.Distribution
	latency    *obs.Distribution
}

// NewServer builds a server with no model installed; requests fail
// with 503 until Install or LoadAndSwap succeeds.
func NewServer(opts Options) *Server {
	if opts.MaxBatchRows <= 0 {
		opts.MaxBatchRows = 256
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.TopK <= 0 {
		opts.TopK = 5
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	s := &Server{
		opts:       opts,
		journal:    opts.Journal,
		registry:   reg,
		requests:   reg.Counter("serve.requests"),
		faults:     reg.Counter("serve.faults"),
		swaps:      reg.Counter("serve.swaps"),
		batchRows:  reg.Distribution("serve.batch.rows"),
		batchCalls: reg.Distribution("serve.batch.calls"),
		latency:    reg.Distribution("serve.latency.us"),
	}
	s.batch = &batcher{
		model:   s.model.Load,
		maxRows: opts.MaxBatchRows,
		onBatch: func(rows, calls int) {
			s.batchRows.Observe(int64(rows))
			s.batchCalls.Observe(int64(calls))
		},
	}
	return s
}

// Model returns the currently installed snapshot (nil before the first
// Install/LoadAndSwap).
func (s *Server) Model() *Model { return s.model.Load() }

// BatchStats summarizes the convoy batcher's activity so far.
type BatchStats struct {
	// Batches counts executed leader GEMMs.
	Batches int64 `json:"batches"`
	// MaxCoalesced is the most calls one GEMM served.
	MaxCoalesced int64 `json:"max_coalesced"`
}

// BatchStats reads the batcher's counters from the registry.
func (s *Server) BatchStats() BatchStats {
	snap := s.batchCalls.Snapshot()
	return BatchStats{Batches: snap.Count, MaxCoalesced: snap.Max}
}

// emit journals one event; a nil journal drops it.
func (s *Server) emit(event string, fields map[string]any) {
	if s.journal != nil {
		s.journal.Emit(event, fields)
	}
}

// Install makes m the serving model and journals serve-start. It is
// meant for boot; use LoadAndSwap for live replacement.
func (s *Server) Install(m *Model) {
	s.model.Store(m)
	s.emit("serve-start", map[string]any{
		"checkpoint": m.Info.Checkpoint,
		"crc":        m.Info.CRC,
		"epoch":      m.Info.Epoch,
		"method":     m.Info.Method,
		"layers":     m.Info.Layers,
		"params":     m.Info.Params,
		"inputs":     m.Info.Inputs,
		"outputs":    m.Info.Outputs,
		"topk":       m.Info.TopK,
	})
}

// LoadAndSwap loads the checkpoint at path and atomically replaces the
// serving model. In-flight requests finish on the old snapshot; the
// swap never blocks the request path. On load failure the old model
// keeps serving.
func (s *Server) LoadAndSwap(path string) (ModelInfo, error) {
	m, err := LoadModel(path, s.opts.Model)
	if err != nil {
		return ModelInfo{}, err
	}
	prev := s.model.Swap(m)
	var prevCRC uint32
	if prev != nil {
		prevCRC = prev.Info.CRC
	}
	s.swaps.Inc()
	s.emit("swap", map[string]any{
		"checkpoint": m.Info.Checkpoint,
		"crc":        m.Info.CRC,
		"epoch":      m.Info.Epoch,
		"prev_crc":   prevCRC,
		"fallback":   m.Info.Fallback,
	})
	return m.Info, nil
}

// Handler returns the service mux:
//
//	POST /predict     batch prediction
//	POST /topk        LSH-accelerated top-k logits for one row
//	GET  /healthz     current model info
//	GET  /metrics     Prometheus text exposition of the registry
//	POST /admin/swap  hot-swap to another checkpoint
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /topk", s.handleTopK)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.registry)
	mux.HandleFunc("POST /admin/swap", s.handleSwap)
	return mux
}

// fault records a request failure — counter, journal, HTTP status —
// with a fixed journal key set so the schema test can pin it.
func (s *Server) fault(w http.ResponseWriter, endpoint string, status int, reason string) {
	s.faults.Inc()
	s.emit("request-fault", map[string]any{
		"endpoint": endpoint,
		"status":   status,
		"reason":   reason,
	})
	http.Error(w, reason, status)
}

// failErr maps an error to fault: validation errors keep their status,
// ErrNoModel is 503, anything else is a 500.
func (s *Server) failErr(w http.ResponseWriter, endpoint string, err error) {
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		s.fault(w, endpoint, bad.status, bad.reason)
	case errors.Is(err, ErrNoModel):
		s.fault(w, endpoint, http.StatusServiceUnavailable, err.Error())
	default:
		s.fault(w, endpoint, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// predictResponse is the POST /predict reply. CRC identifies the model
// snapshot that served the whole request — every row in one request is
// answered by a single snapshot even across a concurrent hot swap.
type predictResponse struct {
	Predictions []int  `json:"predictions"`
	CRC         uint32 `json:"crc"`
	Epoch       int    `json:"epoch"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	defer s.latency.TimeMicros()()
	s.requests.Inc()
	m := s.model.Load()
	if m == nil {
		s.failErr(w, "/predict", ErrNoModel)
		return
	}
	var req predictRequest
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.failErr(w, "/predict", err)
		return
	}
	x, err := matrixFromRows(req.Rows, m.Info.Inputs, s.opts.MaxBatchRows)
	if err != nil {
		s.failErr(w, "/predict", err)
		return
	}
	preds, info, err := s.batch.predict(x)
	if err != nil {
		// The batcher re-validates against the snapshot that actually
		// served the batch; a mid-flight swap to a different
		// architecture surfaces here as a 400.
		var bad *badRequestError
		if !errors.As(err, &bad) && !errors.Is(err, ErrNoModel) {
			err = badRequest("%v", err)
		}
		s.failErr(w, "/predict", err)
		return
	}
	writeJSON(w, predictResponse{Predictions: preds, CRC: info.CRC, Epoch: info.Epoch})
}

// topkResponse is the POST /topk reply. LSH reports whether the
// indexed path answered (false means brute-force fallback).
type topkResponse struct {
	IDs   []int  `json:"ids"`
	LSH   bool   `json:"lsh"`
	CRC   uint32 `json:"crc"`
	Epoch int    `json:"epoch"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	defer s.latency.TimeMicros()()
	s.requests.Inc()
	m := s.model.Load()
	if m == nil {
		s.failErr(w, "/topk", ErrNoModel)
		return
	}
	var req topkRequest
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.failErr(w, "/topk", err)
		return
	}
	if err := validateRow(req.Row, 0, m.Info.Inputs); err != nil {
		s.failErr(w, "/topk", err)
		return
	}
	k := req.K
	if k == 0 {
		k = s.opts.TopK
	}
	if k < 1 || k > m.Info.Outputs {
		s.failErr(w, "/topk", badRequest("k=%d out of range (1..%d)", k, m.Info.Outputs))
		return
	}
	x := tensor.New(1, m.Info.Inputs)
	copy(x.RowView(0), req.Row)
	ids, lshPath := m.TopK(x, k)
	writeJSON(w, topkResponse{IDs: ids, LSH: lshPath, CRC: m.Info.CRC, Epoch: m.Info.Epoch})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.model.Load()
	if m == nil {
		s.fault(w, "/healthz", http.StatusServiceUnavailable, ErrNoModel.Error())
		return
	}
	writeJSON(w, m.Info)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req swapRequest
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		s.failErr(w, "/admin/swap", err)
		return
	}
	if req.Checkpoint == "" {
		s.failErr(w, "/admin/swap", badRequest("checkpoint path is required"))
		return
	}
	info, err := s.LoadAndSwap(req.Checkpoint)
	if err != nil {
		s.failErr(w, "/admin/swap", fmt.Errorf("swap failed: %w", err))
		return
	}
	writeJSON(w, info)
}
