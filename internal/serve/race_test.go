package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentPredictDuringHotSwap is the PR's acceptance test: many
// goroutines hammer /predict over one shared server while checkpoint
// hot-swaps land mid-flight, and under -race every response must be
// byte-identical to the serial single-model evaluation of the same
// input. Both checkpoints hold the same weights, so the swap exercises
// the full pointer-flip machinery without changing any answer — which
// is exactly what makes "byte-identical" assertable while swaps race
// with requests. Before the read-only inference forward existed this
// test tripped the race detector on Layer.In/Z/A.
func TestConcurrentPredictDuringHotSwap(t *testing.T) {
	net := testNet(t, 40)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.snck")
	pathB := filepath.Join(dir, "b.snck")
	writeTestCheckpoint(t, pathA, net, 6)
	writeTestCheckpoint(t, pathB, net, 6)

	s := NewServer(Options{MaxBatchRows: 16, Registry: newTestRegistry()})
	if _, err := s.LoadAndSwap(pathA); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines = 8
	const repeats = 15

	// Serial references, computed once against the single model before
	// any concurrency starts.
	payloads := make([][]byte, goroutines)
	expected := make([][]byte, goroutines)
	for i := range payloads {
		x := testBatch(uint64(41+i), 3+i%4)
		payloads[i] = rowsPayload(x)
		resp, body := postJSON(t, ts.URL+"/predict", payloads[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference request %d failed: %d %s", i, resp.StatusCode, body)
		}
		expected[i] = body
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for r := 0; r < repeats; r++ {
				resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(payloads[i]))
				if err != nil {
					errs <- err
					return
				}
				var body bytes.Buffer
				_, err = body.ReadFrom(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(body.Bytes(), expected[i]) {
					errs <- &responseDivergedError{got: body.String(), want: string(expected[i])}
					return
				}
			}
		}(i)
	}
	// Swapper: flip between the two same-weight checkpoints while the
	// predictors run, through the same public path /admin/swap uses.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		paths := [2]string{pathB, pathA}
		for r := 0; r < 10; r++ {
			if _, err := s.LoadAndSwap(paths[r%2]); err != nil {
				errs <- err
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.swaps.Value(); got != 11 { // 1 initial + 10 mid-flight
		t.Fatalf("swap counter = %d, want 11", got)
	}
}

type responseDivergedError struct{ got, want string }

func (e *responseDivergedError) Error() string {
	return "concurrent response diverged from serial reference:\ngot:  " + e.got + "want: " + e.want
}
