package serve

import (
	"errors"
	"fmt"
	"sync"

	"samplednn/internal/tensor"
)

// ErrNoModel is returned when a request arrives before any model has
// been installed.
var ErrNoModel = errors.New("serve: no model loaded")

// batchCall is one caller's slot in the convoy: its input, and the
// fields the leader fills in before closing done.
type batchCall struct {
	x     *tensor.Matrix
	preds []int
	info  ModelInfo
	err   error
	done  chan struct{}
}

// batcher coalesces concurrent predict calls into micro-batches so one
// GEMM serves many callers. It is a convoy scheme built from nothing
// but mutexes — no timers (the wall-clock invariant bans time.Now in
// library code) and no owned goroutines (the raw-goroutine invariant
// bans them outside internal/pool):
//
//	caller: append my call to the queue under mu, then loop —
//	        if my done channel is closed, return;
//	        otherwise contend on runMu, and whoever wins becomes the
//	        leader, drains a prefix of the queue, runs ONE inference
//	        GEMM over the concatenated rows, distributes results, and
//	        releases runMu.
//
// Under load the queue fills while the current leader computes, so the
// next leader naturally picks up a multi-call batch; with a single
// caller the batch degenerates to that one call and adds only two
// uncontended lock acquisitions of overhead. Every call in a batch is
// served by the same model snapshot (the leader loads the atomic model
// pointer exactly once per batch), which is what keeps responses
// byte-identical across a concurrent hot swap: a request sees either
// the old model or the new one, never a mixture.
type batcher struct {
	// model returns the current snapshot; nil when none is installed.
	model func() *Model
	// maxRows caps the rows a single GEMM may carry. A call larger than
	// maxRows still runs — alone.
	maxRows int
	// onBatch observes (rows, calls) per executed batch; may be nil.
	onBatch func(rows, calls int)

	// mu guards queue.
	mu    sync.Mutex
	queue []*batchCall

	// runMu serializes batch execution; the holder is the leader.
	runMu sync.Mutex
}

// predict enqueues x and blocks until a leader (possibly this caller)
// has served it. The returned info identifies the model snapshot that
// produced the predictions.
func (b *batcher) predict(x *tensor.Matrix) ([]int, ModelInfo, error) {
	c := &batchCall{x: x, done: make(chan struct{})}
	b.mu.Lock()
	b.queue = append(b.queue, c)
	b.mu.Unlock()

	for {
		select {
		case <-c.done:
			return c.preds, c.info, c.err
		default:
		}
		b.runMu.Lock()
		select {
		case <-c.done:
			// A previous leader served us while we waited for runMu.
			b.runMu.Unlock()
			return c.preds, c.info, c.err
		default:
		}
		b.runBatch()
		b.runMu.Unlock()
	}
}

// runBatch — called with runMu held — drains the longest queue prefix
// whose rows fit maxRows (always at least one call), evaluates it with
// a single read-only forward pass, and completes every drained call.
func (b *batcher) runBatch() {
	b.mu.Lock()
	if len(b.queue) == 0 {
		b.mu.Unlock()
		return
	}
	n, rows := 0, 0
	for n < len(b.queue) {
		r := b.queue[n].x.Rows
		if n > 0 && rows+r > b.maxRows {
			break
		}
		rows += r
		n++
	}
	batch := b.queue[:n:n]
	b.queue = b.queue[n:]
	b.mu.Unlock()

	m := b.model()
	if m == nil {
		for _, c := range batch {
			c.err = ErrNoModel
			close(c.done)
		}
		return
	}

	// Re-validate dimensions against the snapshot actually serving this
	// batch: a hot swap to a different architecture may have landed
	// between the HTTP-boundary check and here, and a mismatched row
	// must fail this call, not panic inside the GEMM.
	valid := batch[:0:0]
	validRows := 0
	for _, c := range batch {
		if c.x.Cols != m.Info.Inputs {
			c.err = fmt.Errorf("serve: request has %d features, model %08x expects %d",
				c.x.Cols, m.Info.CRC, m.Info.Inputs)
			close(c.done)
			continue
		}
		valid = append(valid, c)
		validRows += c.x.Rows
	}
	if len(valid) == 0 {
		return
	}
	if b.onBatch != nil {
		b.onBatch(validRows, len(valid))
	}

	x := valid[0].x
	if len(valid) > 1 {
		// Concatenate row-major inputs back to back; predictions are
		// row-independent, so batching cannot change any caller's answer.
		x = tensor.New(validRows, m.Info.Inputs)
		off := 0
		for _, c := range valid {
			off += copy(x.Data[off:], c.x.Data)
		}
	}
	preds := m.Net.Predict(x)
	off := 0
	for _, c := range valid {
		c.preds = preds[off : off+c.x.Rows : off+c.x.Rows]
		c.info = m.Info
		off += c.x.Rows
		close(c.done)
	}
}
