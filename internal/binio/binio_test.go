package binio

import (
	"bytes"
	"io"
	"math"
	"testing"

	"samplednn/internal/rng"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteU8(&buf, 7); err != nil {
		t.Fatal(err)
	}
	if err := WriteBool(&buf, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteU32(&buf, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := WriteU64(&buf, 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := WriteI64(&buf, -42); err != nil {
		t.Fatal(err)
	}
	if err := WriteF64(&buf, math.Pi); err != nil {
		t.Fatal(err)
	}
	if err := WriteString(&buf, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFloats(&buf, []float64{1, -2.5, math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if err := WriteInts(&buf, []int{3, -1, 0}); err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(buf.Bytes())
	if v, err := ReadU8(r); err != nil || v != 7 {
		t.Fatalf("u8: %v %v", v, err)
	}
	if v, err := ReadBool(r); err != nil || !v {
		t.Fatalf("bool: %v %v", v, err)
	}
	if v, err := ReadU32(r); err != nil || v != 0xdeadbeef {
		t.Fatalf("u32: %#x %v", v, err)
	}
	if v, err := ReadU64(r); err != nil || v != 1<<40 {
		t.Fatalf("u64: %v %v", v, err)
	}
	if v, err := ReadI64(r); err != nil || v != -42 {
		t.Fatalf("i64: %v %v", v, err)
	}
	if v, err := ReadF64(r); err != nil || v != math.Pi {
		t.Fatalf("f64: %v %v", v, err)
	}
	if v, err := ReadString(r); err != nil || v != "hello" {
		t.Fatalf("string: %q %v", v, err)
	}
	if v, err := ReadFloats(r); err != nil || len(v) != 3 || v[1] != -2.5 {
		t.Fatalf("floats: %v %v", v, err)
	}
	if v, err := ReadInts(r); err != nil || len(v) != 3 || v[1] != -1 {
		t.Fatalf("ints: %v %v", v, err)
	}
}

// Readers must reject implausible length prefixes before allocating.
func TestReadersRejectImplausibleLengths(t *testing.T) {
	huge := func() *bytes.Reader {
		var buf bytes.Buffer
		if err := WriteU32(&buf, 0xffffffff); err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(buf.Bytes())
	}
	if _, err := ReadBytes(huge()); err == nil {
		t.Fatal("ReadBytes accepted implausible length")
	}
	if _, err := ReadFloats(huge()); err == nil {
		t.Fatal("ReadFloats accepted implausible length")
	}
	if _, err := ReadInts(huge()); err == nil {
		t.Fatal("ReadInts accepted implausible length")
	}
}

func TestReadBoolRejectsBadByte(t *testing.T) {
	if _, err := ReadBool(bytes.NewReader([]byte{2})); err == nil {
		t.Fatal("ReadBool accepted byte 2")
	}
}

// Truncating a valid multi-field stream at every byte boundary must
// produce an EOF-class error from whichever reader hits the cut, with
// no panics and no silent zero values.
func TestPrimitiveTruncation(t *testing.T) {
	g := rng.New(0x517)
	var buf bytes.Buffer
	vals := make([]float64, 9)
	g.GaussianSlice(vals, 0, 1)
	if err := WriteFloats(&buf, vals); err != nil {
		t.Fatal(err)
	}
	if err := WriteString(&buf, "tail-marker"); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		r := bytes.NewReader(enc[:cut])
		f, errF := ReadFloats(r)
		if errF == nil {
			if s, errS := ReadString(r); errS == nil {
				t.Fatalf("cut=%d: both reads passed (%d floats, %q)", cut, len(f), s)
			} else if errS != io.EOF && errS != io.ErrUnexpectedEOF {
				t.Fatalf("cut=%d: string err=%v, want EOF class", cut, errS)
			}
		} else if errF != io.EOF && errF != io.ErrUnexpectedEOF {
			t.Fatalf("cut=%d: floats err=%v, want EOF class", cut, errF)
		}
	}
}
