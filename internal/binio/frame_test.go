package binio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"samplednn/internal/obs"
	"samplednn/internal/rng"
)

func randFrame(g *rng.RNG) Frame {
	payload := make([]byte, g.IntN(256))
	for i := range payload {
		payload[i] = byte(g.IntN(256))
	}
	return Frame{
		Type: uint8(g.IntN(256)),
		Seq:  g.Uint64(),
		Ctx: obs.Ctx{
			Run:   g.Uint64(),
			Trace: g.Uint64(),
			Span:  g.Uint64(),
			Clock: g.Uint64(),
		},
		Payload: payload,
	}
}

func encodeFrame(t *testing.T, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	g := rng.New(0xf7a3e)
	for i := 0; i < 200; i++ {
		want := randFrame(g)
		got, err := ReadFrame(bytes.NewReader(encodeFrame(t, want)))
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Ctx != want.Ctx || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
	}
}

// Every strict prefix of an encoded frame must fail cleanly: io.EOF when
// nothing was read, io.ErrUnexpectedEOF otherwise, and never a decoded
// frame.
func TestFrameTruncation(t *testing.T) {
	g := rng.New(0x7c1)
	for i := 0; i < 50; i++ {
		enc := encodeFrame(t, randFrame(g))
		for cut := 0; cut < len(enc); cut++ {
			_, err := ReadFrame(bytes.NewReader(enc[:cut]))
			switch {
			case cut == 0 && err != io.EOF:
				t.Fatalf("cut=0: err=%v, want io.EOF", err)
			case cut > 0 && err != io.EOF && err != io.ErrUnexpectedEOF:
				t.Fatalf("cut=%d of %d: err=%v, want EOF class", cut, len(enc), err)
			}
		}
	}
}

// Any single bit flip must be detected — CRC-32 catches all single-bit
// errors, so there is no position where a flip yields a clean read.
func TestFrameBitFlips(t *testing.T) {
	g := rng.New(0xb17f)
	for i := 0; i < 20; i++ {
		f := randFrame(g)
		enc := encodeFrame(t, f)
		for bit := 0; bit < 8*len(enc); bit++ {
			mut := bytes.Clone(enc)
			mut[bit/8] ^= 1 << (bit % 8)
			_, err := ReadFrame(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("flip of bit %d (byte %d) read cleanly", bit, bit/8)
			}
		}
	}
}

// A payload bit flip is reported as ErrFrameCorrupt and leaves the
// stream aligned: the following frame still reads cleanly. This is the
// property the dist RPC retry depends on.
func TestFrameCorruptPayloadKeepsAlignment(t *testing.T) {
	g := rng.New(0xa119)
	for i := 0; i < 50; i++ {
		bad := randFrame(g)
		if len(bad.Payload) == 0 {
			bad.Payload = []byte{0x5a}
		}
		good := randFrame(g)
		encBad := encodeFrame(t, bad)
		encBad[frameHeaderLen+g.IntN(len(bad.Payload))] ^= 0x80
		stream := bytes.NewReader(append(encBad, encodeFrame(t, good)...))

		if _, err := ReadFrame(stream); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("corrupt payload: err=%v, want ErrFrameCorrupt", err)
		}
		got, err := ReadFrame(stream)
		if err != nil {
			t.Fatalf("frame after corrupt one: %v", err)
		}
		if got.Seq != good.Seq || !bytes.Equal(got.Payload, good.Payload) {
			t.Fatalf("frame after corrupt one mismatched")
		}
	}
}

// A header corruption (including an oversized length field) must be
// reported as a non-retryable error distinct from ErrFrameCorrupt, and
// an implausible length must fail before any allocation is attempted.
func TestFrameOversizedLength(t *testing.T) {
	enc := encodeFrame(t, Frame{Type: 1, Seq: 7, Payload: []byte("abc")})
	// Blow up the length field; the header CRC no longer matches, which
	// is exactly how a flipped length is caught in the wild.
	mut := bytes.Clone(enc)
	mut[frameOffLen], mut[frameOffLen+1], mut[frameOffLen+2], mut[frameOffLen+3] = 0xff, 0xff, 0xff, 0xff
	_, err := ReadFrame(bytes.NewReader(mut))
	if err == nil || errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized length: err=%v, want hard header error", err)
	}
	// A hostile peer can send an oversized length with a *valid* header
	// CRC; the cap check must reject it before the 4 GiB allocation.
	rewriteHeaderCRC(mut)
	_, err = ReadFrame(bytes.NewReader(mut))
	if err == nil || errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized length, valid CRC: err=%v, want hard header error", err)
	}
}

// rewriteHeaderCRC recomputes the header CRC after a test deliberately
// tampers with an earlier header field, so the field's own validation
// (not the CRC) is what rejects the frame.
func rewriteHeaderCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[frameOffHeaderCRC:], crc32.ChecksumIEEE(b[:frameOffHeaderCRC]))
}

// TestFrameZeroCtxIsValid pins backward behavior: a frame sent with no
// correlation context round-trips to the zero Ctx.
func TestFrameZeroCtxIsValid(t *testing.T) {
	enc := encodeFrame(t, Frame{Type: 2, Seq: 1, Payload: []byte("p")})
	got, err := ReadFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Ctx != (obs.Ctx{}) {
		t.Fatalf("zero ctx decoded as %+v", got.Ctx)
	}
}

func TestFrameWrongMagicAndVersion(t *testing.T) {
	enc := encodeFrame(t, Frame{Type: 3, Seq: 9, Payload: []byte("xyz")})
	// Recompute a valid header CRC after tampering so the magic/version
	// checks themselves are exercised.
	tamper := func(mutate func([]byte)) error {
		mut := bytes.Clone(enc)
		mutate(mut)
		rewriteHeaderCRC(mut)
		_, err := ReadFrame(bytes.NewReader(mut))
		return err
	}
	if err := tamper(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Fatal("wrong magic read cleanly")
	}
	if err := tamper(func(b []byte) { b[4] = FrameVersion + 1 }); err == nil {
		t.Fatal("wrong version read cleanly")
	}
}
