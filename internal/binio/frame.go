// Frame layer: the unit of exchange on a distributed-training
// connection (internal/dist). A frame wraps an opaque payload with
// enough metadata to detect every corruption mode the fault-injection
// harness can produce, plus the correlation context that ties the
// telemetry of both endpoints together:
//
//	magic   u32  "SNFR" — catches stream desync and foreign peers
//	version u8   format revision, currently 2
//	type    u8   message discriminator, opaque to this layer
//	seq     u64  per-direction sequence number, strictly increasing
//	ctx     32B  obs.Ctx wire form: run, trace, span, Lamport clock
//	len     u32  payload length, capped at MaxFrameLen
//	crc     u32  CRC-32 (IEEE) of the payload bytes
//	payload len bytes
//
// Version 2 widened the header by the 32-byte context block (v1 had no
// ctx field); peers negotiate nothing — both ends of a dist connection
// ship in the same binary, so a version mismatch is a deployment bug
// and is reported as one.
//
// The header fields are covered by their own CRC-32 so a bit flip in
// the length prefix is reported as header corruption rather than a
// misread of the following len bytes. Payload corruption
// (ErrFrameCorrupt) leaves the stream aligned on the next frame
// boundary, so the caller may retry the RPC; header corruption does
// not, and the caller must reset the connection.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"samplednn/internal/obs"
)

// FrameMagic starts every frame ("SNFR" little-endian).
const FrameMagic = 0x52464e53

// FrameVersion is the current frame format revision.
const FrameVersion = 2

// MaxFrameLen caps a frame payload. Gradient frames carry full weight
// matrices, so the cap matches MaxBlobLen.
const MaxFrameLen = MaxBlobLen

// Frame header layout offsets. frameHeaderLen is magic(4)+version(1)+
// type(1)+seq(8)+ctx(CtxWireLen)+len(4)+payloadCRC(4)+headerCRC(4).
const (
	frameOffSeq        = 6
	frameOffCtx        = 14
	frameOffLen        = frameOffCtx + obs.CtxWireLen
	frameOffPayloadCRC = frameOffLen + 4
	frameOffHeaderCRC  = frameOffPayloadCRC + 4
	frameHeaderLen     = frameOffHeaderCRC + 4
)

// ErrFrameCorrupt reports a frame whose payload failed its CRC. The
// full payload was consumed, so the stream remains aligned on the next
// frame boundary and the RPC may be retried on the same connection.
var ErrFrameCorrupt = errors.New("binio: frame payload failed CRC")

// Frame is one decoded message envelope.
type Frame struct {
	Type    uint8
	Seq     uint64
	Ctx     obs.Ctx
	Payload []byte
}

// WriteFrame writes one frame. The payload is not retained.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameLen {
		return fmt.Errorf("binio: frame payload of %d bytes exceeds cap", len(f.Payload))
	}
	hdr := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], FrameMagic)
	hdr[4] = FrameVersion
	hdr[5] = f.Type
	binary.LittleEndian.PutUint64(hdr[frameOffSeq:], f.Seq)
	f.Ctx.PutWire(hdr[frameOffCtx:])
	binary.LittleEndian.PutUint32(hdr[frameOffLen:], uint32(len(f.Payload)))
	binary.LittleEndian.PutUint32(hdr[frameOffPayloadCRC:], crc32.ChecksumIEEE(f.Payload))
	binary.LittleEndian.PutUint32(hdr[frameOffHeaderCRC:], crc32.ChecksumIEEE(hdr[:frameOffHeaderCRC]))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame. Errors:
//   - io.EOF: clean end of stream before any header byte
//   - io.ErrUnexpectedEOF: truncated mid-frame
//   - ErrFrameCorrupt: payload CRC mismatch; stream stays aligned
//   - other errors: header corruption or I/O failure; the connection
//     must be reset
func ReadFrame(r io.Reader) (Frame, error) {
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, err
	}
	if got := binary.LittleEndian.Uint32(hdr[frameOffHeaderCRC:]); got != crc32.ChecksumIEEE(hdr[:frameOffHeaderCRC]) {
		return Frame{}, errors.New("binio: frame header failed CRC")
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != FrameMagic {
		return Frame{}, fmt.Errorf("binio: frame magic %#08x, want %#08x", magic, FrameMagic)
	}
	if v := hdr[4]; v != FrameVersion {
		return Frame{}, fmt.Errorf("binio: frame version %d, want %d", v, FrameVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[frameOffLen:])
	if n > MaxFrameLen {
		return Frame{}, fmt.Errorf("binio: implausible frame length %d", n)
	}
	f := Frame{
		Type:    hdr[5],
		Seq:     binary.LittleEndian.Uint64(hdr[frameOffSeq:]),
		Ctx:     obs.CtxFromWire(hdr[frameOffCtx:]),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if crc32.ChecksumIEEE(f.Payload) != binary.LittleEndian.Uint32(hdr[frameOffPayloadCRC:]) {
		return f, ErrFrameCorrupt
	}
	return f, nil
}
