// Package binio provides the little-endian primitives shared by the
// repo's binary serialization layers: network snapshots (internal/nn),
// optimizer state blobs (internal/opt), method run-time state
// (internal/core), and the full training checkpoint (internal/train).
//
// Every value is written little-endian. Variable-length data is
// length-prefixed with a uint32, and the readers validate lengths against
// a hard cap so a corrupt prefix fails with an error instead of a
// multi-gigabyte allocation.
package binio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxBlobLen caps any single length-prefixed field. Checkpoints hold
// whole weight matrices, so the cap is generous (1 GiB) while still
// rejecting nonsense lengths from corrupt or truncated inputs.
const MaxBlobLen = 1 << 30

// WriteU8 writes one byte.
func WriteU8(w io.Writer, v uint8) error {
	_, err := w.Write([]byte{v})
	return err
}

// ReadU8 reads one byte.
func ReadU8(r io.Reader) (uint8, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteBool writes a bool as one byte (0 or 1).
func WriteBool(w io.Writer, v bool) error {
	if v {
		return WriteU8(w, 1)
	}
	return WriteU8(w, 0)
}

// ReadBool reads a bool written by WriteBool.
func ReadBool(r io.Reader) (bool, error) {
	b, err := ReadU8(r)
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("binio: bool byte %d", b)
	}
	return b == 1, nil
}

// WriteU32 writes a uint32.
func WriteU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// ReadU32 reads a uint32.
func ReadU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU64 writes a uint64.
func WriteU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// ReadU64 reads a uint64.
func ReadU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteI64 writes an int64 (two's complement).
func WriteI64(w io.Writer, v int64) error { return WriteU64(w, uint64(v)) }

// ReadI64 reads an int64.
func ReadI64(r io.Reader) (int64, error) {
	v, err := ReadU64(r)
	return int64(v), err
}

// WriteF64 writes a float64 by its IEEE-754 bits.
func WriteF64(w io.Writer, v float64) error { return WriteU64(w, math.Float64bits(v)) }

// ReadF64 reads a float64.
func ReadF64(r io.Reader) (float64, error) {
	v, err := ReadU64(r)
	return math.Float64frombits(v), err
}

// WriteBytes writes a uint32 length prefix followed by the bytes.
func WriteBytes(w io.Writer, b []byte) error {
	if len(b) > MaxBlobLen {
		return fmt.Errorf("binio: blob of %d bytes exceeds cap", len(b))
	}
	if err := WriteU32(w, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a blob written by WriteBytes.
func ReadBytes(r io.Reader) ([]byte, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > MaxBlobLen {
		return nil, fmt.Errorf("binio: implausible blob length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteString writes a length-prefixed UTF-8 string.
func WriteString(w io.Writer, s string) error { return WriteBytes(w, []byte(s)) }

// ReadString reads a string written by WriteString.
func ReadString(r io.Reader) (string, error) {
	b, err := ReadBytes(r)
	return string(b), err
}

// WriteFloats writes a uint32 count followed by the raw float64 bits.
func WriteFloats(w io.Writer, vals []float64) error {
	if 8*len(vals) > MaxBlobLen {
		return fmt.Errorf("binio: float slice of %d entries exceeds cap", len(vals))
	}
	if err := WriteU32(w, uint32(len(vals))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadFloats reads a slice written by WriteFloats.
func ReadFloats(r io.Reader) ([]float64, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if 8*int(n) > MaxBlobLen {
		return nil, fmt.Errorf("binio: implausible float count %d", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// WriteInts writes a uint32 count followed by the values as int64s.
func WriteInts(w io.Writer, vals []int) error {
	if err := WriteU32(w, uint32(len(vals))); err != nil {
		return err
	}
	for _, v := range vals {
		if err := WriteI64(w, int64(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadInts reads a slice written by WriteInts.
func ReadInts(r io.Reader) ([]int, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if 8*int(n) > MaxBlobLen {
		return nil, fmt.Errorf("binio: implausible int count %d", n)
	}
	out := make([]int, n)
	for i := range out {
		v, err := ReadI64(r)
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}
