package opt

import (
	"math"
	"testing"

	"samplednn/internal/nn"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func grad(w *tensor.Matrix, b []float64, v float64) nn.Grads {
	gw := tensor.New(w.Rows, w.Cols)
	gw.Fill(v)
	gb := make([]float64, len(b))
	for i := range gb {
		gb[i] = v
	}
	return nn.Grads{W: gw, B: gb}
}

func TestSGDStep(t *testing.T) {
	w := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	b := []float64{1, 1}
	s := NewSGD(0.5)
	s.Step(0, w, b, grad(w, b, 2))
	want := tensor.FromRows([][]float64{{0, 1}, {2, 3}})
	if !tensor.Equal(w, want) {
		t.Fatalf("w = %v", w)
	}
	if b[0] != 0 || b[1] != 0 {
		t.Fatalf("b = %v", b)
	}
}

func TestSGDStepCols(t *testing.T) {
	w := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	b := []float64{1, 1}
	s := NewSGD(1)
	s.StepCols(0, w, b, grad(w, b, 1), []int{1})
	if w.At(0, 0) != 1 || w.At(1, 0) != 3 {
		t.Fatal("untouched column changed")
	}
	if w.At(0, 1) != 1 || w.At(1, 1) != 3 {
		t.Fatal("selected column not updated")
	}
	if b[0] != 1 || b[1] != 0 {
		t.Fatalf("bias = %v", b)
	}
}

func TestShapeChecks(t *testing.T) {
	w := tensor.New(2, 2)
	b := []float64{0, 0}
	bad := nn.Grads{W: tensor.New(3, 2), B: []float64{0, 0}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewSGD(0.1).Step(0, w, b, bad)
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"sgd":        func() { NewSGD(0) },
		"momentumLR": func() { NewMomentum(0, 0.9) },
		"momentumMu": func() { NewMomentum(0.1, 1.0) },
		"adagrad":    func() { NewAdagrad(-1) },
		"adam":       func() { NewAdam(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMomentumAccumulates(t *testing.T) {
	w := tensor.New(1, 1)
	b := []float64{0}
	m := NewMomentum(1, 0.5)
	g := grad(w, b, 1)
	m.Step(0, w, b, g) // v=1, w=-1
	m.Step(0, w, b, g) // v=1.5, w=-2.5
	if math.Abs(w.At(0, 0)+2.5) > 1e-12 {
		t.Fatalf("w = %v, want -2.5", w.At(0, 0))
	}
	m.Reset()
	m.Step(0, w, b, g) // fresh v=1
	if math.Abs(w.At(0, 0)+3.5) > 1e-12 {
		t.Fatalf("after reset w = %v, want -3.5", w.At(0, 0))
	}
}

func TestAdagradShrinksSteps(t *testing.T) {
	w := tensor.New(1, 1)
	b := []float64{0}
	a := NewAdagrad(1)
	g := grad(w, b, 2)
	a.Step(0, w, b, g)
	first := -w.At(0, 0)
	before := w.At(0, 0)
	a.Step(0, w, b, g)
	second := before - w.At(0, 0)
	if second >= first {
		t.Fatalf("Adagrad steps must shrink: %v then %v", first, second)
	}
	// First step ≈ lr·g/√(g²) = 1.
	if math.Abs(first-1) > 1e-6 {
		t.Fatalf("first Adagrad step = %v, want ~1", first)
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, Adam's first step is ≈ lr regardless of
	// gradient scale.
	for _, scale := range []float64{0.001, 1, 1000} {
		w := tensor.New(1, 1)
		b := []float64{0}
		a := NewAdam(0.1)
		a.Step(0, w, b, grad(w, b, scale))
		if math.Abs(-w.At(0, 0)-0.1) > 1e-3 {
			t.Fatalf("scale %v: first step %v, want ~0.1", scale, -w.At(0, 0))
		}
	}
}

func TestAdamStepColsMatchesDenseOnActiveColumns(t *testing.T) {
	// Updating all columns via StepCols must equal a dense Step.
	g := rng.New(1)
	mkGrad := func(w *tensor.Matrix, b []float64) nn.Grads {
		gw := tensor.New(w.Rows, w.Cols)
		gg := rng.New(7)
		gg.GaussianSlice(gw.Data, 0, 1)
		gb := make([]float64, len(b))
		gg.GaussianSlice(gb, 0, 1)
		return nn.Grads{W: gw, B: gb}
	}
	wd := tensor.New(3, 4)
	g.GaussianSlice(wd.Data, 0, 1)
	ws := wd.Clone()
	bd := []float64{1, 2, 3, 4}
	bs := append([]float64(nil), bd...)

	dense := NewAdam(0.05)
	sparse := NewAdam(0.05)
	all := []int{0, 1, 2, 3}
	for iter := 0; iter < 5; iter++ {
		gr := mkGrad(wd, bd)
		dense.Step(0, wd, bd, gr)
		sparse.StepCols(0, ws, bs, gr, all)
	}
	if !tensor.EqualApprox(wd, ws, 1e-12) {
		t.Fatal("sparse all-columns Adam diverged from dense")
	}
	for i := range bd {
		if math.Abs(bd[i]-bs[i]) > 1e-12 {
			t.Fatal("sparse bias diverged from dense")
		}
	}
}

func TestAdamStepColsLeavesInactiveUntouched(t *testing.T) {
	w := tensor.New(2, 3)
	w.Fill(1)
	b := []float64{1, 1, 1}
	a := NewAdam(0.1)
	a.StepCols(0, w, b, grad(w, b, 1), []int{0, 2})
	if w.At(0, 1) != 1 || b[1] != 1 {
		t.Fatal("inactive column modified")
	}
	if w.At(0, 0) == 1 || w.At(0, 2) == 1 {
		t.Fatal("active columns not modified")
	}
}

func TestOptimizersDescendQuadratic(t *testing.T) {
	// All optimizers should minimize f(w) = ||w - target||² on repeated
	// full-gradient steps.
	target := tensor.FromRows([][]float64{{3, -2}, {1, 5}})
	for _, mk := range []func() Optimizer{
		func() Optimizer { return NewSGD(0.1) },
		func() Optimizer { return NewMomentum(0.05, 0.9) },
		func() Optimizer { return NewAdagrad(0.9) },
		func() Optimizer { return NewAdam(0.2) },
	} {
		o := mk()
		w := tensor.New(2, 2)
		b := []float64{0, 0}
		for iter := 0; iter < 300; iter++ {
			gw := tensor.Sub(w, target)
			gw.Scale(2)
			o.Step(0, w, b, nn.Grads{W: gw, B: []float64{0, 0}})
		}
		if d := tensor.Sub(w, target).FrobeniusNorm(); d > 0.05 {
			t.Fatalf("%s failed to converge: residual %v", o.Name(), d)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sgd", "momentum", "adagrad", "adam"} {
		o, err := ByName(name, 0.01)
		if err != nil || o.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, o, err)
		}
	}
	if _, err := ByName("rmsprop", 0.01); err == nil {
		t.Fatal("unknown optimizer must error")
	}
}

func TestMomentumStepColsMatchesDense(t *testing.T) {
	g := rng.New(2)
	wd := tensor.New(3, 4)
	g.GaussianSlice(wd.Data, 0, 1)
	ws := wd.Clone()
	bd := []float64{1, 2, 3, 4}
	bs := append([]float64(nil), bd...)
	dense := NewMomentum(0.1, 0.9)
	sparse := NewMomentum(0.1, 0.9)
	all := []int{0, 1, 2, 3}
	for iter := 0; iter < 4; iter++ {
		gr := grad(wd, bd, float64(iter+1))
		dense.Step(0, wd, bd, gr)
		sparse.StepCols(0, ws, bs, gr, all)
	}
	if !tensor.EqualApprox(wd, ws, 1e-12) {
		t.Fatal("sparse momentum diverged from dense")
	}
	for i := range bd {
		if math.Abs(bd[i]-bs[i]) > 1e-12 {
			t.Fatal("sparse momentum bias diverged")
		}
	}
}

func TestAdagradStepColsMatchesDense(t *testing.T) {
	g := rng.New(3)
	wd := tensor.New(2, 3)
	g.GaussianSlice(wd.Data, 0, 1)
	ws := wd.Clone()
	bd := []float64{1, 2, 3}
	bs := append([]float64(nil), bd...)
	dense := NewAdagrad(0.2)
	sparse := NewAdagrad(0.2)
	all := []int{0, 1, 2}
	for iter := 0; iter < 4; iter++ {
		gr := grad(wd, bd, float64(iter+1))
		dense.Step(0, wd, bd, gr)
		sparse.StepCols(0, ws, bs, gr, all)
	}
	if !tensor.EqualApprox(wd, ws, 1e-12) {
		t.Fatal("sparse adagrad diverged from dense")
	}
}

func TestMomentumAdagradStepColsLeaveInactive(t *testing.T) {
	for _, mk := range []func() Optimizer{
		func() Optimizer { return NewMomentum(0.1, 0.9) },
		func() Optimizer { return NewAdagrad(0.1) },
	} {
		o := mk()
		w := tensor.New(2, 3)
		w.Fill(1)
		b := []float64{1, 1, 1}
		o.StepCols(0, w, b, grad(w, b, 1), []int{1})
		if w.At(0, 0) != 1 || w.At(0, 2) != 1 || b[0] != 1 {
			t.Fatalf("%s modified inactive columns", o.Name())
		}
		if w.At(0, 1) == 1 || b[1] == 1 {
			t.Fatalf("%s did not modify active column", o.Name())
		}
	}
}

func TestAdamAndAdagradReset(t *testing.T) {
	w := tensor.New(1, 1)
	b := []float64{0}
	a := NewAdam(0.1)
	g := grad(w, b, 1)
	a.Step(0, w, b, g)
	before := w.At(0, 0)
	a.Reset()
	a.Step(0, w, b, g)
	// After reset the step magnitude matches a fresh first step.
	if math.Abs((w.At(0, 0)-before)-before) > 1e-9 {
		t.Fatalf("reset Adam step %v differs from first step %v", w.At(0, 0)-before, before)
	}

	ag := NewAdagrad(1)
	w2 := tensor.New(1, 1)
	ag.Step(0, w2, []float64{0}, grad(w2, []float64{0}, 2))
	first := -w2.At(0, 0)
	ag.Reset()
	prev := w2.At(0, 0)
	ag.Step(0, w2, []float64{0}, grad(w2, []float64{0}, 2))
	if math.Abs((prev-w2.At(0, 0))-first) > 1e-6 {
		t.Fatal("reset Adagrad should repeat the first-step magnitude")
	}
}

func TestSparseAdamAgesColumnsIndependently(t *testing.T) {
	// A column updated many times should have different bias correction
	// than a column updated once; verify the moments differ.
	w := tensor.New(1, 2)
	b := []float64{0, 0}
	a := NewAdam(0.1)
	g := grad(w, b, 1)
	for i := 0; i < 5; i++ {
		a.StepCols(0, w, b, g, []int{0})
	}
	a.StepCols(0, w, b, g, []int{1})
	if math.Abs(w.At(0, 0)) <= math.Abs(w.At(0, 1)) {
		t.Fatalf("column 0 (5 steps) should have moved further than column 1 (1 step): %v vs %v",
			w.At(0, 0), w.At(0, 1))
	}
	st := a.state[0]
	if st.tCol[0] != 5 || st.tCol[1] != 1 {
		t.Fatalf("per-column ages %v", st.tCol)
	}
}
