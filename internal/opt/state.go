package opt

import (
	"fmt"
	"io"
	"sort"

	"samplednn/internal/binio"
	"samplednn/internal/tensor"
)

// StateSaver is implemented by optimizers whose accumulated state
// (momentum velocities, squared-gradient sums, Adam moments and step
// counters) must survive a checkpoint/restore cycle. SGD implements it
// too, as an empty blob, so the trainer can treat every optimizer
// uniformly.
//
// Hyperparameters (learning rate, decay coefficients) are deliberately
// NOT part of the blob: they belong to the run configuration. That is
// what lets the divergence-recovery policy decay the learning rate and
// keep the decayed value across a state rollback.
type StateSaver interface {
	// SaveState serializes the accumulated state to w.
	SaveState(w io.Writer) error
	// LoadState replaces the accumulated state with one written by
	// SaveState on an optimizer of the same type.
	LoadState(r io.Reader) error
}

// LRAdjuster is implemented by optimizers whose learning rate can be
// changed mid-run — the trainer's divergence recovery multiplies it by a
// decay factor after each rollback.
type LRAdjuster interface {
	// LearningRate returns the current learning rate.
	LearningRate() float64
	// SetLearningRate replaces the learning rate.
	SetLearningRate(lr float64)
}

// LearningRate returns s.LR.
func (s *SGD) LearningRate() float64 { return s.LR }

// SetLearningRate replaces s.LR.
func (s *SGD) SetLearningRate(lr float64) { s.LR = lr }

// LearningRate returns m.LR.
func (m *Momentum) LearningRate() float64 { return m.LR }

// SetLearningRate replaces m.LR.
func (m *Momentum) SetLearningRate(lr float64) { m.LR = lr }

// LearningRate returns a.LR.
func (a *Adagrad) LearningRate() float64 { return a.LR }

// SetLearningRate replaces a.LR.
func (a *Adagrad) SetLearningRate(lr float64) { a.LR = lr }

// LearningRate returns a.LR.
func (a *Adam) LearningRate() float64 { return a.LR }

// SetLearningRate replaces a.LR.
func (a *Adam) SetLearningRate(lr float64) { a.LR = lr }

// sortedIDs returns the layer ids of a state map in ascending order so
// serialized blobs are byte-stable across runs.
func sortedIDs[T any](m map[int]*T) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func writeMatrix(w io.Writer, m *tensor.Matrix) error {
	if err := binio.WriteU32(w, uint32(m.Rows)); err != nil {
		return err
	}
	if err := binio.WriteU32(w, uint32(m.Cols)); err != nil {
		return err
	}
	return binio.WriteFloats(w, m.Data)
}

func readMatrix(r io.Reader) (*tensor.Matrix, error) {
	rows, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	cols, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	data, err := binio.ReadFloats(r)
	if err != nil {
		return nil, err
	}
	if int(rows)*int(cols) != len(data) {
		return nil, fmt.Errorf("opt: state matrix %dx%d with %d values", rows, cols, len(data))
	}
	return tensor.FromSlice(int(rows), int(cols), data), nil
}

// SaveState writes nothing: SGD is stateless.
func (s *SGD) SaveState(io.Writer) error { return nil }

// LoadState reads nothing: SGD is stateless.
func (s *SGD) LoadState(io.Reader) error { return nil }

// SaveState serializes the per-layer velocity buffers.
func (m *Momentum) SaveState(w io.Writer) error {
	if err := binio.WriteU32(w, uint32(len(m.state))); err != nil {
		return err
	}
	for _, id := range sortedIDs(m.state) {
		st := m.state[id]
		if err := binio.WriteU32(w, uint32(id)); err != nil {
			return err
		}
		if err := writeMatrix(w, st.vW); err != nil {
			return err
		}
		if err := binio.WriteFloats(w, st.vB); err != nil {
			return err
		}
	}
	return nil
}

// LoadState replaces the velocity buffers with a serialized snapshot.
func (m *Momentum) LoadState(r io.Reader) error {
	n, err := binio.ReadU32(r)
	if err != nil {
		return err
	}
	state := make(map[int]*momentState, n)
	for i := uint32(0); i < n; i++ {
		id, err := binio.ReadU32(r)
		if err != nil {
			return err
		}
		vW, err := readMatrix(r)
		if err != nil {
			return err
		}
		vB, err := binio.ReadFloats(r)
		if err != nil {
			return err
		}
		state[int(id)] = &momentState{vW: vW, vB: vB}
	}
	m.state = state
	return nil
}

// SaveState serializes the per-layer squared-gradient accumulators.
func (a *Adagrad) SaveState(w io.Writer) error {
	if err := binio.WriteU32(w, uint32(len(a.state))); err != nil {
		return err
	}
	for _, id := range sortedIDs(a.state) {
		st := a.state[id]
		if err := binio.WriteU32(w, uint32(id)); err != nil {
			return err
		}
		if err := writeMatrix(w, st.hW); err != nil {
			return err
		}
		if err := binio.WriteFloats(w, st.hB); err != nil {
			return err
		}
	}
	return nil
}

// LoadState replaces the accumulators with a serialized snapshot.
func (a *Adagrad) LoadState(r io.Reader) error {
	n, err := binio.ReadU32(r)
	if err != nil {
		return err
	}
	state := make(map[int]*adagradState, n)
	for i := uint32(0); i < n; i++ {
		id, err := binio.ReadU32(r)
		if err != nil {
			return err
		}
		hW, err := readMatrix(r)
		if err != nil {
			return err
		}
		hB, err := binio.ReadFloats(r)
		if err != nil {
			return err
		}
		state[int(id)] = &adagradState{hW: hW, hB: hB}
	}
	a.state = state
	return nil
}

// SaveState serializes the per-layer moments and bias-correction ages.
func (a *Adam) SaveState(w io.Writer) error {
	if err := binio.WriteU32(w, uint32(len(a.state))); err != nil {
		return err
	}
	for _, id := range sortedIDs(a.state) {
		st := a.state[id]
		if err := binio.WriteU32(w, uint32(id)); err != nil {
			return err
		}
		if err := writeMatrix(w, st.mW); err != nil {
			return err
		}
		if err := writeMatrix(w, st.vW); err != nil {
			return err
		}
		if err := binio.WriteFloats(w, st.mB); err != nil {
			return err
		}
		if err := binio.WriteFloats(w, st.vB); err != nil {
			return err
		}
		if err := binio.WriteI64(w, int64(st.t)); err != nil {
			return err
		}
		if err := binio.WriteInts(w, st.tCol); err != nil {
			return err
		}
	}
	return nil
}

// LoadState replaces the moment state with a serialized snapshot.
func (a *Adam) LoadState(r io.Reader) error {
	n, err := binio.ReadU32(r)
	if err != nil {
		return err
	}
	state := make(map[int]*adamState, n)
	for i := uint32(0); i < n; i++ {
		id, err := binio.ReadU32(r)
		if err != nil {
			return err
		}
		st := &adamState{}
		if st.mW, err = readMatrix(r); err != nil {
			return err
		}
		if st.vW, err = readMatrix(r); err != nil {
			return err
		}
		if st.mB, err = binio.ReadFloats(r); err != nil {
			return err
		}
		if st.vB, err = binio.ReadFloats(r); err != nil {
			return err
		}
		t, err := binio.ReadI64(r)
		if err != nil {
			return err
		}
		st.t = int(t)
		if st.tCol, err = binio.ReadInts(r); err != nil {
			return err
		}
		if st.mW.Rows != st.vW.Rows || st.mW.Cols != st.vW.Cols || len(st.mB) != len(st.vB) {
			return fmt.Errorf("opt: adam state for layer %d has mismatched moment shapes", id)
		}
		state[int(id)] = st
	}
	a.state = state
	return nil
}
