package opt

import (
	"bytes"
	"testing"

	"samplednn/internal/nn"
	"samplednn/internal/tensor"
)

// fakeLayer builds a parameter block plus a gradient for exercising
// optimizer state.
func fakeLayer(rows, cols int, scale float64) (*tensor.Matrix, []float64, nn.Grads) {
	w := tensor.New(rows, cols)
	b := make([]float64, cols)
	g := nn.Grads{W: tensor.New(rows, cols), B: make([]float64, cols)}
	for i := range w.Data {
		w.Data[i] = scale * float64(i+1)
		g.W.Data[i] = scale * 0.1 * float64(i%7)
	}
	for j := range b {
		b[j] = scale * float64(j)
		g.B[j] = scale * 0.01 * float64(j+1)
	}
	return w, b, g
}

// roundTrip saves o's state, loads it into fresh, and fails the test on
// any serialization error.
func roundTrip(t *testing.T, o, fresh Optimizer) {
	t.Helper()
	var buf bytes.Buffer
	if err := o.(StateSaver).SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.(StateSaver).LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// stepBoth applies the same update through two optimizers and fails if
// the resulting parameters differ — the state restore must make the
// restored optimizer bit-identical to the original.
func stepBoth(t *testing.T, a, b Optimizer) {
	t.Helper()
	w1, b1, g1 := fakeLayer(3, 5, 1.0)
	w2, b2, _ := fakeLayer(3, 5, 1.0)
	a.Step(0, w1, b1, g1)
	b.Step(0, w2, b2, g1)
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatalf("weight %d: %v vs %v", i, w1.Data[i], w2.Data[i])
		}
	}
	for j := range b1 {
		if b1[j] != b2[j] {
			t.Fatalf("bias %d: %v vs %v", j, b1[j], b2[j])
		}
	}
	// The sparse path must agree too.
	cols := []int{0, 2, 4}
	a.StepCols(0, w1, b1, g1, cols)
	b.StepCols(0, w2, b2, g1, cols)
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatalf("post-StepCols weight %d: %v vs %v", i, w1.Data[i], w2.Data[i])
		}
	}
}

func TestStateSaverRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		make  func() Optimizer
		fresh func() Optimizer
	}{
		{"sgd", func() Optimizer { return NewSGD(0.1) }, func() Optimizer { return NewSGD(0.1) }},
		{"momentum", func() Optimizer { return NewMomentum(0.1, 0.9) }, func() Optimizer { return NewMomentum(0.1, 0.9) }},
		{"adagrad", func() Optimizer { return NewAdagrad(0.1) }, func() Optimizer { return NewAdagrad(0.1) }},
		{"adam", func() Optimizer { return NewAdam(0.01) }, func() Optimizer { return NewAdam(0.01) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.make()
			// Accumulate non-trivial state on two layers, mixing the
			// dense and sparse update paths.
			for layer := 0; layer < 2; layer++ {
				w, b, g := fakeLayer(3, 5, float64(layer+1))
				o.Step(layer, w, b, g)
				o.StepCols(layer, w, b, g, []int{1, 3})
			}
			fresh := tc.fresh()
			roundTrip(t, o, fresh)
			stepBoth(t, o, fresh)
		})
	}
}

func TestLoadStateRejectsTruncation(t *testing.T) {
	o := NewAdam(0.01)
	w, b, g := fakeLayer(4, 4, 1)
	o.Step(0, w, b, g)
	var buf bytes.Buffer
	if err := o.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, buf.Len() / 2, buf.Len() - 1} {
		fresh := NewAdam(0.01)
		if err := fresh.LoadState(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestLRAdjusters(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.4), NewMomentum(0.4, 0.9), NewAdagrad(0.4), NewAdam(0.4)} {
		adj, ok := o.(LRAdjuster)
		if !ok {
			t.Fatalf("%s does not adjust LR", o.Name())
		}
		if adj.LearningRate() != 0.4 {
			t.Fatalf("%s lr %v", o.Name(), adj.LearningRate())
		}
		adj.SetLearningRate(0.2)
		if adj.LearningRate() != 0.2 {
			t.Fatalf("%s lr after set %v", o.Name(), adj.LearningRate())
		}
	}
}
