// Package opt implements the first-order optimizers the paper's
// experiments use: plain SGD (the default training algorithm of §8.4),
// SGD with momentum, Adagrad (the optimizer of the original ALSH-approx
// implementation), and Adam (which §8.4 found works better for
// ALSH-approx and adopts).
//
// Every optimizer supports two update paths: Step applies a dense update
// to a whole layer, while StepCols touches only the given columns of the
// weight matrix and their biases. The sparse path is what makes
// hash-based node sampling pay off — after ALSH-approx selects ~5% of a
// layer's nodes, both the gradient and the optimizer state update must be
// proportional to the active set, not the layer width.
package opt

import (
	"fmt"
	"math"

	"samplednn/internal/nn"
	"samplednn/internal/tensor"
)

// Optimizer updates layer parameters from gradients. Implementations
// keep per-layer state keyed by the caller-assigned layer id.
type Optimizer interface {
	// Name identifies the optimizer in experiment output.
	Name() string
	// Step applies a dense update: w -= f(grads.W), b -= f(grads.B).
	Step(layerID int, w *tensor.Matrix, b []float64, grads nn.Grads)
	// StepCols applies the update only to the listed columns of w and
	// entries of b. grads must be full-shaped; entries outside cols are
	// ignored.
	StepCols(layerID int, w *tensor.Matrix, b []float64, grads nn.Grads, cols []int)
	// Reset drops all accumulated state.
	Reset()
}

func checkShapes(w *tensor.Matrix, b []float64, grads nn.Grads) {
	if grads.W.Rows != w.Rows || grads.W.Cols != w.Cols {
		panic(fmt.Sprintf("opt: grad W %dx%d vs param %dx%d", grads.W.Rows, grads.W.Cols, w.Rows, w.Cols))
	}
	if len(grads.B) != len(b) {
		panic(fmt.Sprintf("opt: grad B len %d vs param %d", len(grads.B), len(b)))
	}
}

// SGD is plain stochastic gradient descent with learning rate LR.
type SGD struct {
	// LR is the learning rate (paper: 1e-3 or 1e-4 depending on setting).
	LR float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr float64) *SGD {
	if lr <= 0 {
		panic("opt: learning rate must be positive")
	}
	return &SGD{LR: lr}
}

// Name returns "sgd".
func (s *SGD) Name() string { return "sgd" }

// Step applies w -= lr·gw.
func (s *SGD) Step(_ int, w *tensor.Matrix, b []float64, grads nn.Grads) {
	checkShapes(w, b, grads)
	tensor.AxpyInPlace(w, -s.LR, grads.W)
	tensor.Axpy(-s.LR, grads.B, b)
}

// StepCols applies the SGD update to selected columns only.
func (s *SGD) StepCols(_ int, w *tensor.Matrix, b []float64, grads nn.Grads, cols []int) {
	checkShapes(w, b, grads)
	for _, j := range cols {
		for i := 0; i < w.Rows; i++ {
			w.Data[i*w.Cols+j] -= s.LR * grads.W.Data[i*w.Cols+j]
		}
		b[j] -= s.LR * grads.B[j]
	}
}

// Reset is a no-op: SGD is stateless.
func (s *SGD) Reset() {}

// Momentum is SGD with classical momentum.
type Momentum struct {
	// LR is the learning rate; Mu the momentum coefficient (e.g. 0.9).
	LR, Mu float64
	state  map[int]*momentState
}

type momentState struct {
	vW *tensor.Matrix
	vB []float64
}

// NewMomentum returns a momentum optimizer.
func NewMomentum(lr, mu float64) *Momentum {
	if lr <= 0 || mu < 0 || mu >= 1 {
		panic("opt: bad momentum parameters")
	}
	return &Momentum{LR: lr, Mu: mu, state: map[int]*momentState{}}
}

// Name returns "momentum".
func (m *Momentum) Name() string { return "momentum" }

func (m *Momentum) stateFor(id int, w *tensor.Matrix, b []float64) *momentState {
	st, ok := m.state[id]
	if !ok {
		st = &momentState{vW: tensor.New(w.Rows, w.Cols), vB: make([]float64, len(b))}
		m.state[id] = st
	}
	return st
}

// Step applies v = mu·v + g; w -= lr·v.
func (m *Momentum) Step(id int, w *tensor.Matrix, b []float64, grads nn.Grads) {
	checkShapes(w, b, grads)
	st := m.stateFor(id, w, b)
	for i := range st.vW.Data {
		st.vW.Data[i] = m.Mu*st.vW.Data[i] + grads.W.Data[i]
		w.Data[i] -= m.LR * st.vW.Data[i]
	}
	for i := range st.vB {
		st.vB[i] = m.Mu*st.vB[i] + grads.B[i]
		b[i] -= m.LR * st.vB[i]
	}
}

// StepCols applies the momentum update to selected columns only.
func (m *Momentum) StepCols(id int, w *tensor.Matrix, b []float64, grads nn.Grads, cols []int) {
	checkShapes(w, b, grads)
	st := m.stateFor(id, w, b)
	for _, j := range cols {
		for i := 0; i < w.Rows; i++ {
			k := i*w.Cols + j
			st.vW.Data[k] = m.Mu*st.vW.Data[k] + grads.W.Data[k]
			w.Data[k] -= m.LR * st.vW.Data[k]
		}
		st.vB[j] = m.Mu*st.vB[j] + grads.B[j]
		b[j] -= m.LR * st.vB[j]
	}
}

// Reset drops all velocity state.
func (m *Momentum) Reset() { m.state = map[int]*momentState{} }

// Adagrad accumulates squared gradients and scales updates by their
// inverse square root — the optimizer of the original Spring-Shrivastava
// ALSH-approx implementation.
type Adagrad struct {
	// LR is the learning rate; Eps the denominator floor (default 1e-8).
	LR, Eps float64
	state   map[int]*adagradState
}

type adagradState struct {
	hW *tensor.Matrix
	hB []float64
}

// NewAdagrad returns an Adagrad optimizer with eps = 1e-8.
func NewAdagrad(lr float64) *Adagrad {
	if lr <= 0 {
		panic("opt: learning rate must be positive")
	}
	return &Adagrad{LR: lr, Eps: 1e-8, state: map[int]*adagradState{}}
}

// Name returns "adagrad".
func (a *Adagrad) Name() string { return "adagrad" }

func (a *Adagrad) stateFor(id int, w *tensor.Matrix, b []float64) *adagradState {
	st, ok := a.state[id]
	if !ok {
		st = &adagradState{hW: tensor.New(w.Rows, w.Cols), hB: make([]float64, len(b))}
		a.state[id] = st
	}
	return st
}

// Step applies h += g²; w -= lr·g/(√h + eps).
func (a *Adagrad) Step(id int, w *tensor.Matrix, b []float64, grads nn.Grads) {
	checkShapes(w, b, grads)
	st := a.stateFor(id, w, b)
	for i := range w.Data {
		g := grads.W.Data[i]
		st.hW.Data[i] += g * g
		w.Data[i] -= a.LR * g / (math.Sqrt(st.hW.Data[i]) + a.Eps)
	}
	for i := range b {
		g := grads.B[i]
		st.hB[i] += g * g
		b[i] -= a.LR * g / (math.Sqrt(st.hB[i]) + a.Eps)
	}
}

// StepCols applies the Adagrad update to selected columns only.
func (a *Adagrad) StepCols(id int, w *tensor.Matrix, b []float64, grads nn.Grads, cols []int) {
	checkShapes(w, b, grads)
	st := a.stateFor(id, w, b)
	for _, j := range cols {
		for i := 0; i < w.Rows; i++ {
			k := i*w.Cols + j
			g := grads.W.Data[k]
			st.hW.Data[k] += g * g
			w.Data[k] -= a.LR * g / (math.Sqrt(st.hW.Data[k]) + a.Eps)
		}
		g := grads.B[j]
		st.hB[j] += g * g
		b[j] -= a.LR * g / (math.Sqrt(st.hB[j]) + a.Eps)
	}
}

// Reset drops all accumulator state.
func (a *Adagrad) Reset() { a.state = map[int]*adagradState{} }

// Adam is the adaptive-moment optimizer (Kingma-Ba), used by the paper's
// ALSH-approx experiments (§8.4). Bias correction uses a per-layer step
// counter; the sparse path advances per-column counters so rarely-active
// nodes are corrected by their own age, the standard "sparse Adam"
// semantics.
type Adam struct {
	// LR is the learning rate; Beta1/Beta2 the moment decays; Eps the
	// denominator floor.
	LR, Beta1, Beta2, Eps float64
	state                 map[int]*adamState
}

type adamState struct {
	mW, vW *tensor.Matrix
	mB, vB []float64
	t      int   // dense step counter
	tCol   []int // per-column counters for the sparse path
}

// NewAdam returns Adam with the standard defaults beta1=0.9, beta2=0.999,
// eps=1e-8.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic("opt: learning rate must be positive")
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, state: map[int]*adamState{}}
}

// Name returns "adam".
func (a *Adam) Name() string { return "adam" }

func (a *Adam) stateFor(id int, w *tensor.Matrix, b []float64) *adamState {
	st, ok := a.state[id]
	if !ok {
		st = &adamState{
			mW: tensor.New(w.Rows, w.Cols), vW: tensor.New(w.Rows, w.Cols),
			mB: make([]float64, len(b)), vB: make([]float64, len(b)),
			tCol: make([]int, w.Cols),
		}
		a.state[id] = st
	}
	return st
}

// Step applies the dense Adam update.
func (a *Adam) Step(id int, w *tensor.Matrix, b []float64, grads nn.Grads) {
	checkShapes(w, b, grads)
	st := a.stateFor(id, w, b)
	st.t++
	for j := range st.tCol {
		st.tCol[j] = st.t
	}
	c1 := 1 - math.Pow(a.Beta1, float64(st.t))
	c2 := 1 - math.Pow(a.Beta2, float64(st.t))
	for i := range w.Data {
		g := grads.W.Data[i]
		st.mW.Data[i] = a.Beta1*st.mW.Data[i] + (1-a.Beta1)*g
		st.vW.Data[i] = a.Beta2*st.vW.Data[i] + (1-a.Beta2)*g*g
		w.Data[i] -= a.LR * (st.mW.Data[i] / c1) / (math.Sqrt(st.vW.Data[i]/c2) + a.Eps)
	}
	for i := range b {
		g := grads.B[i]
		st.mB[i] = a.Beta1*st.mB[i] + (1-a.Beta1)*g
		st.vB[i] = a.Beta2*st.vB[i] + (1-a.Beta2)*g*g
		b[i] -= a.LR * (st.mB[i] / c1) / (math.Sqrt(st.vB[i]/c2) + a.Eps)
	}
}

// StepCols applies the Adam update to selected columns only, advancing
// each touched column's bias-correction age independently.
func (a *Adam) StepCols(id int, w *tensor.Matrix, b []float64, grads nn.Grads, cols []int) {
	checkShapes(w, b, grads)
	st := a.stateFor(id, w, b)
	for _, j := range cols {
		st.tCol[j]++
		t := float64(st.tCol[j])
		c1 := 1 - math.Pow(a.Beta1, t)
		c2 := 1 - math.Pow(a.Beta2, t)
		for i := 0; i < w.Rows; i++ {
			k := i*w.Cols + j
			g := grads.W.Data[k]
			st.mW.Data[k] = a.Beta1*st.mW.Data[k] + (1-a.Beta1)*g
			st.vW.Data[k] = a.Beta2*st.vW.Data[k] + (1-a.Beta2)*g*g
			w.Data[k] -= a.LR * (st.mW.Data[k] / c1) / (math.Sqrt(st.vW.Data[k]/c2) + a.Eps)
		}
		g := grads.B[j]
		st.mB[j] = a.Beta1*st.mB[j] + (1-a.Beta1)*g
		st.vB[j] = a.Beta2*st.vB[j] + (1-a.Beta2)*g*g
		b[j] -= a.LR * (st.mB[j] / c1) / (math.Sqrt(st.vB[j]/c2) + a.Eps)
	}
}

// Reset drops all moment state.
func (a *Adam) Reset() { a.state = map[int]*adamState{} }

// ByName constructs an optimizer from a config string. Supported:
// "sgd", "momentum", "adagrad", "adam".
func ByName(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(lr), nil
	case "momentum":
		return NewMomentum(lr, 0.9), nil
	case "adagrad":
		return NewAdagrad(lr), nil
	case "adam":
		return NewAdam(lr), nil
	}
	return nil, fmt.Errorf("opt: unknown optimizer %q", name)
}
