package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusionMatrix(3)
	c.AddBatch([]int{0, 0, 1, 2, 2}, []int{0, 1, 1, 2, 0})
	if c.Total() != 5 || c.Classes() != 3 {
		t.Fatal("size accessors wrong")
	}
	if c.At(0, 0) != 1 || c.At(0, 1) != 1 || c.At(2, 0) != 1 {
		t.Fatal("counts wrong")
	}
	if math.Abs(c.Accuracy()-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
}

func TestConfusionValidation(t *testing.T) {
	c := NewConfusionMatrix(2)
	t.Run("range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c.Add(0, 2)
	})
	t.Run("lengths", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c.AddBatch([]int{0}, []int{0, 1})
	})
	t.Run("classes", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewConfusionMatrix(0)
	})
}

func TestPrecisionRecallF1(t *testing.T) {
	c := NewConfusionMatrix(2)
	// class 0: TP=3, FP=1, FN=2
	c.AddBatch(
		[]int{0, 0, 0, 0, 0, 1, 1},
		[]int{0, 0, 0, 1, 1, 0, 1},
	)
	if math.Abs(c.Precision(0)-0.75) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision(0))
	}
	if math.Abs(c.Recall(0)-0.6) > 1e-12 {
		t.Fatalf("recall = %v", c.Recall(0))
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if math.Abs(c.F1(0)-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v", c.F1(0))
	}
	if c.MacroF1() <= 0 || c.MacroF1() > 1 {
		t.Fatalf("MacroF1 = %v", c.MacroF1())
	}
}

func TestMacroF1IgnoresAbsentClasses(t *testing.T) {
	// 4 declared classes, but the (subsampled) truth set only contains
	// classes 0 and 1. Class 2 is predicted once; class 3 never appears.
	c := NewConfusionMatrix(4)
	c.AddBatch(
		[]int{0, 0, 0, 1, 1},
		[]int{0, 0, 2, 1, 1},
	)
	// class 0: P=1 (2 of 2 predictions), R=2/3; class 1: P=R=1.
	f0 := 2 * 1.0 * (2.0 / 3.0) / (1.0 + 2.0/3.0)
	want := (f0 + 1.0) / 2
	if math.Abs(c.MacroF1()-want) > 1e-12 {
		t.Fatalf("MacroF1 = %v, want %v (mean over the 2 present classes)", c.MacroF1(), want)
	}
	// The buggy all-classes mean would have been (f0+1+0+0)/4.
	if bad := (f0 + 1.0) / 4; math.Abs(c.MacroF1()-bad) < 1e-12 {
		t.Fatal("MacroF1 still averages absent classes in")
	}
}

func TestMacroF1EmptyMatrix(t *testing.T) {
	if got := NewConfusionMatrix(3).MacroF1(); got != 0 {
		t.Fatalf("empty-matrix MacroF1 = %v, want 0", got)
	}
}

func TestDegenerateStats(t *testing.T) {
	c := NewConfusionMatrix(3)
	if c.Accuracy() != 0 || c.PredictionEntropy() != 0 {
		t.Fatal("empty matrix stats should be 0")
	}
	if c.Precision(0) != 0 || c.Recall(0) != 0 || c.F1(0) != 0 {
		t.Fatal("empty class stats should be 0")
	}
}

func TestPredictionHistogramEntropyCoverage(t *testing.T) {
	c := NewConfusionMatrix(4)
	// All predictions land on class 2 — the §10.3 collapse pattern.
	c.AddBatch([]int{0, 1, 2, 3}, []int{2, 2, 2, 2})
	h := c.PredictionHistogram()
	if h[2] != 4 || h[0] != 0 {
		t.Fatalf("histogram = %v", h)
	}
	if c.PredictionEntropy() != 0 {
		t.Fatalf("collapsed entropy = %v, want 0", c.PredictionEntropy())
	}
	if c.PredictionCoverage() != 0.25 {
		t.Fatalf("coverage = %v", c.PredictionCoverage())
	}

	// Uniform predictions maximize entropy at ln(4).
	u := NewConfusionMatrix(4)
	u.AddBatch([]int{0, 1, 2, 3}, []int{0, 1, 2, 3})
	if math.Abs(u.PredictionEntropy()-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform entropy = %v", u.PredictionEntropy())
	}
	if u.PredictionCoverage() != 1 {
		t.Fatal("uniform coverage should be 1")
	}
}

func TestRender(t *testing.T) {
	c := NewConfusionMatrix(2)
	c.Add(0, 0)
	c.Add(1, 0)
	s := c.Render()
	if !strings.Contains(s, "true\\pred") {
		t.Fatalf("render missing header: %s", s)
	}
	if strings.Count(s, "\n") < 3 {
		t.Fatalf("render too short: %s", s)
	}
}

func TestAccuracyHelper(t *testing.T) {
	if Accuracy([]int{1, 2, 3}, []int{1, 0, 3}) != 2.0/3 {
		t.Fatal("Accuracy wrong")
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestReport(t *testing.T) {
	c := NewConfusionMatrix(2)
	c.AddBatch([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	r := c.Report()
	for _, want := range []string{"precision", "recall", "f1", "support", "accuracy 0.7500", "macro-F1"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
	// Support column must reflect per-class truth counts.
	if !strings.Contains(r, "2") {
		t.Fatal("support missing")
	}
}
