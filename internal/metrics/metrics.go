// Package metrics implements the evaluation measurements of the paper:
// accuracy, the confusion matrices of Figure 3, per-class statistics, and
// the prediction-distribution diagnostics behind the §10.3 observation
// that ALSH-approx's predictions collapse onto a few classes as depth
// grows.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ConfusionMatrix counts (true label, predicted label) pairs.
type ConfusionMatrix struct {
	classes int
	counts  []int // row-major: counts[true*classes+pred]
	total   int
}

// NewConfusionMatrix returns an empty matrix over the given class count.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	if classes <= 0 {
		panic(fmt.Sprintf("metrics: classes %d must be positive", classes))
	}
	return &ConfusionMatrix{classes: classes, counts: make([]int, classes*classes)}
}

// Classes returns the class count.
func (c *ConfusionMatrix) Classes() int { return c.classes }

// Total returns the number of recorded observations.
func (c *ConfusionMatrix) Total() int { return c.total }

// Add records one observation.
func (c *ConfusionMatrix) Add(truth, pred int) {
	if truth < 0 || truth >= c.classes || pred < 0 || pred >= c.classes {
		panic(fmt.Sprintf("metrics: (truth=%d, pred=%d) out of range for %d classes", truth, pred, c.classes))
	}
	c.counts[truth*c.classes+pred]++
	c.total++
}

// AddBatch records aligned truth/prediction slices.
func (c *ConfusionMatrix) AddBatch(truth, pred []int) {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("metrics: %d truths vs %d predictions", len(truth), len(pred)))
	}
	for i := range truth {
		c.Add(truth[i], pred[i])
	}
}

// At returns the count of (truth, pred) observations.
func (c *ConfusionMatrix) At(truth, pred int) int {
	return c.counts[truth*c.classes+pred]
}

// Accuracy returns the fraction of diagonal observations (0 when empty).
func (c *ConfusionMatrix) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < c.classes; i++ {
		diag += c.counts[i*c.classes+i]
	}
	return float64(diag) / float64(c.total)
}

// Precision returns TP/(TP+FP) for a class (0 when the class is never
// predicted).
func (c *ConfusionMatrix) Precision(class int) float64 {
	var predicted int
	for t := 0; t < c.classes; t++ {
		predicted += c.counts[t*c.classes+class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(c.At(class, class)) / float64(predicted)
}

// Recall returns TP/(TP+FN) for a class (0 when the class never occurs).
func (c *ConfusionMatrix) Recall(class int) float64 {
	var actual int
	for p := 0; p < c.classes; p++ {
		actual += c.counts[class*c.classes+p]
	}
	if actual == 0 {
		return 0
	}
	return float64(c.At(class, class)) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (c *ConfusionMatrix) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 { //lint:ignore float-equality exact-zero precision+recall guard for the F1 division
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 returns the unweighted mean F1 over the classes that appear in
// the truth set (support > 0), and 0 when the matrix is empty.
//
// Convention: classes absent from the truth sample are excluded from the
// mean even when the model predicts them (their spurious predictions
// still hurt via the present classes' precision). Averaging over all
// classes would count every absent class as F1=0, which under subsampled
// evaluation (-test caps, MaxEvalSamples) biases macro-F1 downward for
// reasons that have nothing to do with the model.
func (c *ConfusionMatrix) MacroF1() float64 {
	var s float64
	present := 0
	for i := 0; i < c.classes; i++ {
		support := 0
		for p := 0; p < c.classes; p++ {
			support += c.counts[i*c.classes+p]
		}
		if support == 0 {
			continue
		}
		present++
		s += c.F1(i)
	}
	if present == 0 {
		return 0
	}
	return s / float64(present)
}

// PredictionHistogram returns how often each class was predicted.
func (c *ConfusionMatrix) PredictionHistogram() []int {
	h := make([]int, c.classes)
	for t := 0; t < c.classes; t++ {
		for p := 0; p < c.classes; p++ {
			h[p] += c.counts[t*c.classes+p]
		}
	}
	return h
}

// PredictionEntropy returns the Shannon entropy (nats) of the prediction
// distribution. §10.3 observes this collapsing toward 0 for ALSH-approx
// as depth grows: the same few nodes stay active regardless of input, so
// the same few classes get predicted.
func (c *ConfusionMatrix) PredictionEntropy() float64 {
	if c.total == 0 {
		return 0
	}
	var h float64
	for _, n := range c.PredictionHistogram() {
		if n == 0 {
			continue
		}
		p := float64(n) / float64(c.total)
		h -= p * math.Log(p)
	}
	return h
}

// PredictionCoverage returns the fraction of classes predicted at least
// once — the coarser §10.3 collapse signal.
func (c *ConfusionMatrix) PredictionCoverage() float64 {
	used := 0
	for _, n := range c.PredictionHistogram() {
		if n > 0 {
			used++
		}
	}
	return float64(used) / float64(c.classes)
}

// Render draws the matrix as an ASCII grid with truth on rows and
// predictions on columns, the textual equivalent of one cell of Figure 3.
func (c *ConfusionMatrix) Render() string {
	var b strings.Builder
	width := 1
	for _, n := range c.counts {
		if w := len(fmt.Sprint(n)); w > width {
			width = w
		}
	}
	fmt.Fprintf(&b, "%*s |", width+5, "true\\pred")
	for p := 0; p < c.classes; p++ {
		fmt.Fprintf(&b, " %*d", width, p)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", width+7+(width+1)*c.classes))
	b.WriteByte('\n')
	for t := 0; t < c.classes; t++ {
		fmt.Fprintf(&b, "%*d |", width+5, t)
		for p := 0; p < c.classes; p++ {
			fmt.Fprintf(&b, " %*d", width, c.At(t, p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Accuracy returns the fraction of positions where pred equals truth.
func Accuracy(truth, pred []int) float64 {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("metrics: %d truths vs %d predictions", len(truth), len(pred)))
	}
	if len(truth) == 0 {
		return 0
	}
	hits := 0
	for i := range truth {
		if truth[i] == pred[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// Report renders a per-class precision/recall/F1 table plus the overall
// accuracy and macro-F1 — the classification report the cmd tools print.
func (c *ConfusionMatrix) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-10s %-10s %-10s %-8s\n", "class", "precision", "recall", "f1", "support")
	for cls := 0; cls < c.classes; cls++ {
		support := 0
		for p := 0; p < c.classes; p++ {
			support += c.counts[cls*c.classes+p]
		}
		fmt.Fprintf(&b, "%-7d %-10.3f %-10.3f %-10.3f %-8d\n",
			cls, c.Precision(cls), c.Recall(cls), c.F1(cls), support)
	}
	fmt.Fprintf(&b, "accuracy %.4f, macro-F1 %.4f, %d samples\n", c.Accuracy(), c.MacroF1(), c.total)
	return b.String()
}
