package dist

import "time"

// A FaultPlan injects failures into a coordinator for robustness tests.
// Each fault fires at most once. The zero plan injects nothing.
type FaultPlan struct {
	// KillWorker arranges for one spawned worker to exit abruptly
	// mid-training: the first spawn of Rank receives the kill position
	// via the environment and calls os.Exit the moment it is asked for
	// that step's gradients. Respawns never re-arm the kill, so the
	// replacement worker survives.
	KillWorker *KillFault

	// DropFrame swallows one coordinator→worker frame: the frame is
	// never written, but its sequence number is consumed, so the worker
	// observes (and journals) a sequence gap once traffic resumes. The
	// coordinator sees a read timeout and retries.
	DropFrame *FrameFault

	// DelayFrame holds one coordinator→worker frame for Delay before
	// writing it, exercising the deadline/retry path without losing
	// data.
	DelayFrame *FrameFault

	// CorruptFrame flips one bit in the payload of one
	// coordinator→worker frame. The worker's binio CRC check rejects
	// the payload (stream stays aligned), the worker reports a
	// retryable error, and the coordinator resends.
	CorruptFrame *FrameFault
}

// KillFault names a worker rank and the training step at which the
// worker kills itself (before computing that step's gradients).
type KillFault struct {
	Rank  int
	Epoch int // 1-based epoch, matching train.StepPos
	Step  int // 0-based batch index within the epoch
}

// FrameFault selects the Nth frame (1-based) sent to Rank, counted
// across the connection's lifetime including handshake frames.
type FrameFault struct {
	Rank  int
	Nth   int
	Delay time.Duration // used by DelayFrame only
}

// matches reports whether this fault selects the n-th frame to rank r.
func (f *FrameFault) matches(r, n int) bool {
	return f != nil && f.Rank == r && f.Nth == n
}
