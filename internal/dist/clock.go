//lint:file-ignore wall-clock connection deadlines and backoff pacing are real-time by nature; no training decision reads these values, so determinism is unaffected

package dist

import "time"

// now is the single wall-clock entry point for the dist package. It
// exists so the wall-clock waiver is confined to this file: deadlines,
// timeouts, and reduce-latency measurement all flow through here, and
// none of them feed back into the training computation.
func now() time.Time { return time.Now() }

// deadlineFrom returns the absolute deadline d from now, for
// net.Conn.Set{Read,Write}Deadline calls.
func deadlineFrom(d time.Duration) time.Time { return now().Add(d) }
