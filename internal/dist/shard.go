package dist

import (
	"samplednn/internal/nn"
	"samplednn/internal/tensor"
)

// shardRange returns the row interval [lo, hi) of shard s when a batch
// of rows rows is split into shards contiguous shards. The split is a
// pure function of (rows, shards) — never of the worker count — which
// is the first pillar of the determinism argument: the same batch
// always decomposes into the same shards.
func shardRange(rows, shards, s int) (lo, hi int) {
	return s * rows / shards, (s + 1) * rows / shards
}

// workerShards returns the shard interval [lo, hi) that rank r of w
// workers is responsible for computing. Which worker computes a shard
// is irrelevant to the result (the reduction is keyed by shard index,
// not by rank); this split just balances load.
func workerShards(shards, w, r int) (lo, hi int) {
	return r * shards / w, (r + 1) * shards / w
}

// newReducer returns a reducer with zeroed accumulators shaped like the
// given layer gradients.
func newReducer(like []nn.Grads) *reducer {
	acc := make([]nn.Grads, len(like))
	for i, g := range like {
		acc[i] = nn.Grads{
			W: tensor.New(g.W.Rows, g.W.Cols),
			B: make([]float64, len(g.B)),
		}
	}
	return &reducer{acc: acc, pending: -1}
}

// reducer folds per-shard gradients into the global batch gradient.
// Shards MUST be offered in ascending shard index — Add enforces it —
// because float addition is not associative: a fixed fold order is the
// second pillar of the determinism argument. The weighting rows/total
// makes the result exactly the mean gradient over the full batch, so a
// single shard covering the whole batch reduces to scale 1.0 and the
// step degenerates bit-for-bit to the plain single-process step.
type reducer struct {
	acc     []nn.Grads
	loss    float64
	rows    int
	pending int // last shard index folded, -1 before the first
}

// Add folds one shard's gradient, scaled by its share of the total
// batch rows, into the accumulator.
func (r *reducer) Add(index, rows, total int, loss float64, grads []nn.Grads) {
	if index <= r.pending {
		panic("dist: reducer offered shards out of ascending order")
	}
	if len(grads) != len(r.acc) {
		panic("dist: reducer offered mismatched layer count")
	}
	r.pending = index
	scale := float64(rows) / float64(total)
	for i, g := range grads {
		aw, gw := r.acc[i].W.Data, g.W.Data
		for j := range aw {
			aw[j] += scale * gw[j]
		}
		ab := r.acc[i].B
		for j := range ab {
			ab[j] += scale * g.B[j]
		}
	}
	r.loss += scale * loss
	r.rows += rows
}

// Result returns the reduced gradient and batch loss. total is the
// expected row count; Result panics if the folded shards do not tile
// the batch exactly (a missing or duplicated shard would silently skew
// the gradient otherwise).
func (r *reducer) Result(total int) (float64, []nn.Grads) {
	if r.rows != total {
		panic("dist: reduced shards do not tile the batch")
	}
	return r.loss, r.acc
}
