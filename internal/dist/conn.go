package dist

import (
	"bytes"
	"fmt"
	"net"
	"time"

	"samplednn/internal/binio"
	"samplednn/internal/obs"
)

// frameConn wraps a net.Conn with binio framing, per-operation
// deadlines, and sequence-number bookkeeping. Every frame written
// consumes the next send sequence number; every frame read must carry a
// strictly increasing sequence number (a gap is tolerated and counted —
// it is the signature of a dropped frame — but a replayed or reordered
// frame is a hard protocol error).
//
// When a Lamport clock is attached, every send ticks it and stamps the
// value into the frame's context, and every receive witnesses the
// peer's value — the exchange that makes the two endpoints' journals
// causally mergeable (obs.MergeJournals).
type frameConn struct {
	c       net.Conn
	timeout time.Duration
	clock   *obs.Clock // nil = frames carry clock 0
	sendSeq uint64
	recvSeq uint64
	gaps    int
}

func newFrameConn(c net.Conn, timeout time.Duration) *frameConn {
	return &frameConn{c: c, timeout: timeout}
}

// encode renders one frame to wire bytes, consuming the next send
// sequence number and stamping the correlation context (with the
// freshly ticked clock). Split from write so the coordinator's fault
// injection can mutate (or swallow) the encoded bytes while still
// consuming the sequence number — exactly what a lossy link does.
func (fc *frameConn) encode(typ uint8, cx obs.Ctx, payload []byte) []byte {
	fc.sendSeq++
	cx.Clock = fc.clock.Tick()
	var b bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	_ = binio.WriteFrame(&b, binio.Frame{Type: typ, Seq: fc.sendSeq, Ctx: cx, Payload: payload})
	return b.Bytes()
}

// write sends pre-encoded frame bytes under the connection's write
// deadline.
func (fc *frameConn) write(b []byte) error {
	if err := fc.c.SetWriteDeadline(deadlineFrom(fc.timeout)); err != nil {
		return err
	}
	_, err := fc.c.Write(b)
	return err
}

// send encodes and writes one frame.
func (fc *frameConn) send(typ uint8, cx obs.Ctx, payload []byte) error {
	return fc.write(fc.encode(typ, cx, payload))
}

// recv reads one frame under the given deadline, witnessing the peer's
// Lamport clock. A frame whose payload failed its CRC is returned
// together with binio.ErrFrameCorrupt — the stream is still aligned
// (and the header, context included, passed its own CRC) so the caller
// decides whether to retry.
func (fc *frameConn) recv(timeout time.Duration) (binio.Frame, error) {
	if err := fc.c.SetReadDeadline(deadlineFrom(timeout)); err != nil {
		return binio.Frame{}, err
	}
	f, err := binio.ReadFrame(fc.c)
	if err != nil && err != binio.ErrFrameCorrupt {
		return f, err
	}
	if f.Ctx.Clock != 0 {
		fc.clock.Witness(f.Ctx.Clock)
	}
	if f.Seq <= fc.recvSeq {
		return f, fmt.Errorf("dist: frame seq %d replayed (last %d)", f.Seq, fc.recvSeq)
	}
	if f.Seq > fc.recvSeq+1 {
		fc.gaps++
	}
	fc.recvSeq = f.Seq
	return f, err
}

// sendErr reports a worker-side failure; best-effort (the peer may be
// gone).
func (fc *frameConn) sendErr(cx obs.Ctx, epoch, step int, code uint8, text string) {
	e := errMsg{Epoch: epoch, Step: step, Code: code, Text: text}
	_ = fc.send(msgError, cx, e.encode())
}

func (fc *frameConn) Close() error { return fc.c.Close() }

// isTimeout reports whether err is a connection deadline expiry, the
// retryable kind of I/O failure.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}
