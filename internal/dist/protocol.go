// Package dist implements fault-tolerant sharded data-parallel training:
// a coordinator embedded in the training process plus N worker processes
// connected over TCP, exchanging binio frames (CRC-guarded, sequence-
// numbered) and performing synchronous SGD with a deterministic
// all-reduce.
//
// Determinism is structural, not incidental. Every step's global batch
// is split into S contiguous row shards — S is a run constant,
// independent of the worker count — and each shard's gradient is an
// exact forward/backward over just those rows. The coordinator reduces
// the per-shard gradients sequentially in ascending shard index with a
// fixed rows/batch weighting, so the reduced gradient is bit-identical
// no matter how many workers computed the shards, which worker computed
// which shard, or in what order replies arrived. Coordinator and
// workers all apply the identical reduced gradient to identical
// replicas (verified by weight CRC on every commit), so a run with
// workers=4 produces byte-for-byte the weights of a workers=0 run on
// the same seed — the property the fault-injection integration test
// pins.
//
// Robustness: every connection read and write carries a deadline, RPCs
// retry with capped exponential backoff plus seeded jitter, a corrupt
// frame (caught by the binio payload CRC) is retried rather than
// trusted, and a worker crash or timeout aborts the step, respawns the
// worker, and rejoins it from an SNCK checkpoint carrying the in-flight
// epoch's batch permutation. The FaultPlan hook injects exactly these
// failures for tests.
package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"samplednn/internal/binio"
	"samplednn/internal/dataset"
	"samplednn/internal/nn"
	"samplednn/internal/tensor"
)

// Frame types. Worker→coordinator reply payloads all begin with
// epoch (u32) then step (u32) so the coordinator can order frames
// without fully decoding them.
const (
	msgHello uint8 = iota + 1
	msgWelcome
	msgSync
	msgSyncAck
	msgGradRequest
	msgGradReply
	msgCommit
	msgCommitAck
	msgShutdown
	msgError
)

// Error codes carried by msgError.
const (
	// errRetryable marks a transient failure (corrupt frame received);
	// the sender kept its state and the RPC may be resent.
	errRetryable uint8 = 1
	// errDesync marks a position disagreement; the worker needs a Sync.
	errDesync uint8 = 2
	// errFatal marks an unrecoverable worker-side failure.
	errFatal uint8 = 3
)

// hello is the worker's opening message.
type hello struct {
	// Rank is the rank assigned at spawn time (from the environment);
	// the coordinator validates it against its table.
	Rank int
	// PID is the worker's process id, journaled on join.
	PID int
}

func (h *hello) encode() []byte {
	var b bytes.Buffer
	binio.WriteU32(&b, uint32(h.Rank))
	binio.WriteU64(&b, uint64(h.PID))
	return b.Bytes()
}

func decodeHello(p []byte) (*hello, error) {
	r := bytes.NewReader(p)
	rank, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	pid, err := binio.ReadU64(r)
	if err != nil {
		return nil, err
	}
	return &hello{Rank: int(rank), PID: int(pid)}, nil
}

// welcome carries everything a worker needs to reconstruct the
// coordinator's dataset and method skeleton locally. The mutable state
// (weights, optimizer accumulators, RNG position, batch permutation)
// arrives separately in the first sync.
type welcome struct {
	Rank      int
	Spec      dataset.Spec
	DataSeed  uint64
	MaxTrain  int
	MaxTest   int
	MaxVal    int
	BatchSize int
	Shards    int
	Method    string
	Optimizer string
	LR        float64
	// Run is the run identifier (obs.RunID) every process in the run
	// stamps on its journal records, so merged journals correlate.
	Run uint64
	// SnapEvery is the commit-ack cadence (every Nth) at which the
	// worker piggybacks its metrics-registry snapshot; sync acks always
	// carry one. Zero disables piggybacking.
	SnapEvery int
}

func (w *welcome) encode() []byte {
	var b bytes.Buffer
	binio.WriteU32(&b, uint32(w.Rank))
	binio.WriteString(&b, w.Spec.Name)
	for _, v := range []int{w.Spec.Width, w.Spec.Height, w.Spec.Channels, w.Spec.Classes, w.Spec.Train, w.Spec.Test, w.Spec.Val} {
		binio.WriteU32(&b, uint32(v))
	}
	binio.WriteF64(&b, w.Spec.Difficulty)
	binio.WriteU64(&b, w.DataSeed)
	for _, v := range []int{w.MaxTrain, w.MaxTest, w.MaxVal, w.BatchSize, w.Shards} {
		binio.WriteU32(&b, uint32(v))
	}
	binio.WriteString(&b, w.Method)
	binio.WriteString(&b, w.Optimizer)
	binio.WriteF64(&b, w.LR)
	binio.WriteU64(&b, w.Run)
	binio.WriteU32(&b, uint32(w.SnapEvery))
	return b.Bytes()
}

func decodeWelcome(p []byte) (*welcome, error) {
	r := bytes.NewReader(p)
	w := &welcome{}
	var err error
	readInt := func(dst *int) {
		if err != nil {
			return
		}
		var v uint32
		if v, err = binio.ReadU32(r); err == nil {
			*dst = int(v)
		}
	}
	readInt(&w.Rank)
	if err == nil {
		w.Spec.Name, err = binio.ReadString(r)
	}
	for _, dst := range []*int{&w.Spec.Width, &w.Spec.Height, &w.Spec.Channels, &w.Spec.Classes, &w.Spec.Train, &w.Spec.Test, &w.Spec.Val} {
		readInt(dst)
	}
	if err == nil {
		w.Spec.Difficulty, err = binio.ReadF64(r)
	}
	if err == nil {
		w.DataSeed, err = binio.ReadU64(r)
	}
	for _, dst := range []*int{&w.MaxTrain, &w.MaxTest, &w.MaxVal, &w.BatchSize, &w.Shards} {
		readInt(dst)
	}
	if err == nil {
		w.Method, err = binio.ReadString(r)
	}
	if err == nil {
		w.Optimizer, err = binio.ReadString(r)
	}
	if err == nil {
		w.LR, err = binio.ReadF64(r)
	}
	if err == nil {
		w.Run, err = binio.ReadU64(r)
	}
	readInt(&w.SnapEvery)
	if err != nil {
		return nil, fmt.Errorf("dist: decoding welcome: %w", err)
	}
	return w, nil
}

// syncMsg pushes the coordinator's full state to a worker: the position
// the worker must stand at (about to compute step Step of epoch Epoch)
// and an SNCK checkpoint blob carrying weights, optimizer state, the
// RNG stream, and the in-flight epoch's batch permutation.
type syncMsg struct {
	Epoch int
	Step  int
	Blob  []byte
}

func (s *syncMsg) encode() []byte {
	var b bytes.Buffer
	binio.WriteU32(&b, uint32(s.Epoch))
	binio.WriteU32(&b, uint32(s.Step))
	binio.WriteBytes(&b, s.Blob)
	return b.Bytes()
}

func decodeSync(p []byte) (*syncMsg, error) {
	r := bytes.NewReader(p)
	epoch, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	step, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	blob, err := binio.ReadBytes(r)
	if err != nil {
		return nil, err
	}
	return &syncMsg{Epoch: int(epoch), Step: int(step), Blob: blob}, nil
}

// posAck is the common shape of syncAck and commitAck: a position plus
// the worker's post-operation weight CRC, the per-commit replica-drift
// detector. Snap optionally piggybacks the worker's metrics-registry
// snapshot (obs.EncodeSnapshot) so the coordinator's /metrics can
// expose per-rank families without a second connection; empty means
// none this ack.
type posAck struct {
	Epoch     int
	Step      int
	WeightCRC uint32
	Snap      []byte
}

func (a *posAck) encode() []byte {
	var b bytes.Buffer
	binio.WriteU32(&b, uint32(a.Epoch))
	binio.WriteU32(&b, uint32(a.Step))
	binio.WriteU32(&b, a.WeightCRC)
	binio.WriteBytes(&b, a.Snap)
	return b.Bytes()
}

func decodePosAck(p []byte) (*posAck, error) {
	r := bytes.NewReader(p)
	epoch, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	step, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	crc, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	snap, err := binio.ReadBytes(r)
	if err != nil {
		return nil, err
	}
	return &posAck{Epoch: int(epoch), Step: int(step), WeightCRC: crc, Snap: snap}, nil
}

// gradRequest asks a worker for the gradients of shards [ShardLo,
// ShardHi) of the batch at (Epoch, Step).
type gradRequest struct {
	Epoch   int
	Step    int
	ShardLo int
	ShardHi int
}

func (g *gradRequest) encode() []byte {
	var b bytes.Buffer
	for _, v := range []int{g.Epoch, g.Step, g.ShardLo, g.ShardHi} {
		binio.WriteU32(&b, uint32(v))
	}
	return b.Bytes()
}

func decodeGradRequest(p []byte) (*gradRequest, error) {
	r := bytes.NewReader(p)
	g := &gradRequest{}
	for _, dst := range []*int{&g.Epoch, &g.Step, &g.ShardLo, &g.ShardHi} {
		v, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	return g, nil
}

// shardGrad is one shard's contribution: its index (the reduction key),
// row count (the reduction weight), observed loss, and per-layer
// gradients.
type shardGrad struct {
	Index int
	Rows  int
	Loss  float64
	Grads []nn.Grads
}

// gradReply carries every shard a worker was asked for.
type gradReply struct {
	Epoch  int
	Step   int
	Shards []shardGrad
}

func (g *gradReply) encode() []byte {
	var b bytes.Buffer
	binio.WriteU32(&b, uint32(g.Epoch))
	binio.WriteU32(&b, uint32(g.Step))
	binio.WriteU32(&b, uint32(len(g.Shards)))
	for i := range g.Shards {
		s := &g.Shards[i]
		binio.WriteU32(&b, uint32(s.Index))
		binio.WriteU32(&b, uint32(s.Rows))
		binio.WriteF64(&b, s.Loss)
		writeGrads(&b, s.Grads)
	}
	return b.Bytes()
}

func decodeGradReply(p []byte) (*gradReply, error) {
	r := bytes.NewReader(p)
	g := &gradReply{}
	epoch, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	step, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	g.Epoch, g.Step = int(epoch), int(step)
	n, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("dist: implausible shard count %d", n)
	}
	g.Shards = make([]shardGrad, n)
	for i := range g.Shards {
		s := &g.Shards[i]
		idx, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		rows, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		s.Index, s.Rows = int(idx), int(rows)
		if s.Loss, err = binio.ReadF64(r); err != nil {
			return nil, err
		}
		if s.Grads, err = readGrads(r); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// commit distributes the reduced gradient for (Epoch, Step); every
// replica (workers and coordinator alike) applies it through its
// optimizer.
type commit struct {
	Epoch int
	Step  int
	Loss  float64
	Grads []nn.Grads
}

func (c *commit) encode() []byte {
	var b bytes.Buffer
	binio.WriteU32(&b, uint32(c.Epoch))
	binio.WriteU32(&b, uint32(c.Step))
	binio.WriteF64(&b, c.Loss)
	writeGrads(&b, c.Grads)
	return b.Bytes()
}

func decodeCommit(p []byte) (*commit, error) {
	r := bytes.NewReader(p)
	c := &commit{}
	epoch, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	step, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	c.Epoch, c.Step = int(epoch), int(step)
	if c.Loss, err = binio.ReadF64(r); err != nil {
		return nil, err
	}
	if c.Grads, err = readGrads(r); err != nil {
		return nil, err
	}
	return c, nil
}

// errMsg reports a worker-side failure with a recovery hint.
type errMsg struct {
	Epoch int
	Step  int
	Code  uint8
	Text  string
}

func (e *errMsg) encode() []byte {
	var b bytes.Buffer
	binio.WriteU32(&b, uint32(e.Epoch))
	binio.WriteU32(&b, uint32(e.Step))
	binio.WriteU8(&b, e.Code)
	binio.WriteString(&b, e.Text)
	return b.Bytes()
}

func decodeErrMsg(p []byte) (*errMsg, error) {
	r := bytes.NewReader(p)
	e := &errMsg{}
	epoch, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	step, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	e.Epoch, e.Step = int(epoch), int(step)
	if e.Code, err = binio.ReadU8(r); err != nil {
		return nil, err
	}
	if e.Text, err = binio.ReadString(r); err != nil {
		return nil, err
	}
	return e, nil
}

// peekPos extracts the (epoch, step) header every worker→coordinator
// payload begins with, letting the coordinator order frames without a
// full decode.
func peekPos(p []byte) (epoch, step int, err error) {
	if len(p) < 8 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	return int(binary.LittleEndian.Uint32(p)), int(binary.LittleEndian.Uint32(p[4:])), nil
}

func writeGrads(w io.Writer, grads []nn.Grads) {
	binio.WriteU32(w, uint32(len(grads)))
	for _, g := range grads {
		binio.WriteU32(w, uint32(g.W.Rows))
		binio.WriteU32(w, uint32(g.W.Cols))
		binio.WriteFloats(w, g.W.Data)
		binio.WriteFloats(w, g.B)
	}
}

func readGrads(r io.Reader) ([]nn.Grads, error) {
	n, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<12 {
		return nil, fmt.Errorf("dist: implausible layer count %d", n)
	}
	grads := make([]nn.Grads, n)
	for i := range grads {
		rows, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		cols, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		data, err := binio.ReadFloats(r)
		if err != nil {
			return nil, err
		}
		if len(data) != int(rows)*int(cols) {
			return nil, fmt.Errorf("dist: gradient %dx%d carries %d values", rows, cols, len(data))
		}
		b, err := binio.ReadFloats(r)
		if err != nil {
			return nil, err
		}
		grads[i] = nn.Grads{W: &tensor.Matrix{Rows: int(rows), Cols: int(cols), Data: data}, B: b}
	}
	return grads, nil
}

// weightCRC hashes every layer's weights and biases (IEEE-754 bits,
// little-endian, layer order) — the cheap replica-equality certificate
// exchanged on every sync and commit.
func weightCRC(net *nn.Network) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, l := range net.Layers {
		for _, v := range l.W.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		for _, v := range l.B {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return h.Sum32()
}
