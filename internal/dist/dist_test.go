package dist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/train"
)

// TestMain is the worker re-exec hook: the coordinator spawns workers
// by re-running this test binary with the dist environment set, and
// those processes must serve the worker protocol instead of running
// tests.
func TestMain(m *testing.M) {
	if IsWorkerProcess() {
		os.Exit(WorkerMain())
	}
	os.Exit(m.Run())
}

// buildRun constructs a small deterministic training setup. Every call
// with the same seed builds bit-identical datasets and networks.
func buildRun(t *testing.T) (*core.Standard, *dataset.Dataset, dataset.Options) {
	t.Helper()
	spec := dataset.Spec{
		Name: "dist-tiny", Width: 6, Height: 6, Channels: 1,
		Classes: 3, Train: 90, Test: 30, Val: 15, Difficulty: 0.6,
	}
	dopts := dataset.Options{Seed: 42}
	ds := dataset.GenerateFromSpec(spec, dopts)
	net, err := nn.NewNetwork(nn.Uniform(spec.Dim(), 16, 2, spec.Classes), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	optim, err := opt.ByName("momentum", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewStandard(net, optim), ds, dopts
}

// trainWith runs epochs of training through a coordinator configured by
// opts and returns the final weights (nn.Save bytes) and the per-epoch
// losses.
func trainWith(t *testing.T, epochs int, opts Options) ([]byte, []float64) {
	t.Helper()
	m, ds, dopts := buildRun(t)
	opts.Data = dopts
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	co, err := NewCoordinator(m, ds, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	tr, err := train.New(m, ds, train.Config{
		Epochs: epochs, BatchSize: 10, Seed: 7,
		Stepper: co, Registry: opts.Registry, Journal: opts.Journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Net().Save(&buf); err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, len(hist.Epochs))
	for i, e := range hist.Epochs {
		losses[i] = e.TrainLoss
	}
	return buf.Bytes(), losses
}

// trainPlain runs the same schedule with no stepper at all — the
// pre-dist trainer path — for the shards=1 degeneracy check.
func trainPlain(t *testing.T, epochs int) []byte {
	t.Helper()
	m, ds, _ := buildRun(t)
	tr, err := train.New(m, ds, train.Config{
		Epochs: epochs, BatchSize: 10, Seed: 7, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Net().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestProtocolRoundTrips(t *testing.T) {
	g := rng.New(5)
	grads := []nn.Grads{
		{W: randMatrix(g, 4, 3), B: randSlice(g, 3)},
		{W: randMatrix(g, 3, 2), B: randSlice(g, 2)},
	}

	h := hello{Rank: 3, PID: 4242}
	h2, err := decodeHello(h.encode())
	if err != nil || *h2 != h {
		t.Fatalf("hello round trip: %+v, %v", h2, err)
	}

	w := welcome{
		Rank: 1,
		Spec: dataset.Spec{Name: "x", Width: 6, Height: 5, Channels: 2, Classes: 4,
			Train: 100, Test: 20, Val: 10, Difficulty: 0.7},
		DataSeed: 99, MaxTrain: 50, BatchSize: 10, Shards: 4,
		Method: "standard", Optimizer: "adam", LR: 0.01,
		Run: 0xfeedface12345678, SnapEvery: 5,
	}
	w2, err := decodeWelcome(w.encode())
	if err != nil || *w2 != w {
		t.Fatalf("welcome round trip: %+v, %v", w2, err)
	}

	s := syncMsg{Epoch: 2, Step: 5, Blob: []byte{1, 2, 3}}
	s2, err := decodeSync(s.encode())
	if err != nil || s2.Epoch != 2 || s2.Step != 5 || !bytes.Equal(s2.Blob, s.Blob) {
		t.Fatalf("sync round trip: %+v, %v", s2, err)
	}

	a := posAck{Epoch: 1, Step: 2, WeightCRC: 0xdeadbeef, Snap: []byte(`{"counters":{"x":1}}`)}
	a2, err := decodePosAck(a.encode())
	if err != nil || a2.Epoch != a.Epoch || a2.Step != a.Step || a2.WeightCRC != a.WeightCRC || !bytes.Equal(a2.Snap, a.Snap) {
		t.Fatalf("ack round trip: %+v, %v", a2, err)
	}
	aEmpty := posAck{Epoch: 1, Step: 2, WeightCRC: 7}
	aEmpty2, err := decodePosAck(aEmpty.encode())
	if err != nil || len(aEmpty2.Snap) != 0 {
		t.Fatalf("snapless ack round trip: %+v, %v", aEmpty2, err)
	}

	req := gradRequest{Epoch: 1, Step: 2, ShardLo: 3, ShardHi: 7}
	req2, err := decodeGradRequest(req.encode())
	if err != nil || *req2 != req {
		t.Fatalf("grad request round trip: %+v, %v", req2, err)
	}

	gr := gradReply{Epoch: 3, Step: 1, Shards: []shardGrad{
		{Index: 0, Rows: 5, Loss: 1.5, Grads: grads},
	}}
	gr2, err := decodeGradReply(gr.encode())
	if err != nil {
		t.Fatalf("grad reply decode: %v", err)
	}
	if gr2.Epoch != 3 || gr2.Step != 1 || len(gr2.Shards) != 1 || !sameGrads(gr2.Shards[0].Grads, grads) {
		t.Fatalf("grad reply round trip: %+v", gr2)
	}

	cm := commit{Epoch: 4, Step: 0, Loss: 0.25, Grads: grads}
	cm2, err := decodeCommit(cm.encode())
	if err != nil || cm2.Loss != 0.25 || !sameGrads(cm2.Grads, grads) {
		t.Fatalf("commit round trip: %+v, %v", cm2, err)
	}

	e := errMsg{Epoch: 9, Step: 8, Code: errDesync, Text: "position drift"}
	e2, err := decodeErrMsg(e.encode())
	if err != nil || *e2 != e {
		t.Fatalf("error round trip: %+v, %v", e2, err)
	}

	// Every reply payload must lead with (epoch, step) for peekPos.
	for _, p := range [][]byte{a.encode(), gr.encode(), e.encode()} {
		epoch, step, err := peekPos(p)
		if err != nil || epoch == 0 && step == 0 {
			t.Fatalf("peekPos failed on reply payload: %d/%d %v", epoch, step, err)
		}
	}
}

func TestShardMathTilesBatches(t *testing.T) {
	for _, rows := range []int{1, 7, 10, 33} {
		for shards := 1; shards <= 8; shards++ {
			covered := 0
			prevHi := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardRange(rows, shards, s)
				if lo != prevHi {
					t.Fatalf("rows=%d shards=%d: shard %d starts at %d, want %d", rows, shards, s, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != rows || prevHi != rows {
				t.Fatalf("rows=%d shards=%d: covered %d rows", rows, shards, covered)
			}
			for w := 1; w <= 4; w++ {
				total := 0
				for r := 0; r < w; r++ {
					lo, hi := workerShards(shards, w, r)
					total += hi - lo
				}
				if total != shards {
					t.Fatalf("shards=%d workers=%d: assigned %d", shards, w, total)
				}
			}
		}
	}
}

func TestReducerEnforcesOrderAndTiling(t *testing.T) {
	g := rng.New(11)
	grads := []nn.Grads{{W: randMatrix(g, 2, 2), B: randSlice(g, 2)}}
	r := newReducer(grads)
	r.Add(1, 5, 10, 1.0, grads)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order Add did not panic")
			}
		}()
		r.Add(0, 5, 10, 1.0, grads)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("incomplete tiling did not panic")
			}
		}()
		r.Result(10)
	}()
}

// TestSingleShardMatchesPlainStep pins the degeneracy contract: a
// workers=0 shards=1 coordinator is byte-identical to the plain
// trainer with no stepper at all.
func TestSingleShardMatchesPlainStep(t *testing.T) {
	sharded, _ := trainWith(t, 2, Options{Workers: 0, Shards: 1})
	plain := trainPlain(t, 2)
	if !bytes.Equal(sharded, plain) {
		t.Fatal("shards=1 local coordinator diverged from the plain trainer")
	}
}

// TestLocalShardingIsDeterministic pins that the workers=0 sharded
// reference is reproducible run to run.
func TestLocalShardingIsDeterministic(t *testing.T) {
	a, la := trainWith(t, 2, Options{Workers: 0, Shards: 4})
	b, lb := trainWith(t, 2, Options{Workers: 0, Shards: 4})
	if !bytes.Equal(a, b) {
		t.Fatal("two identical workers=0 shards=4 runs diverged")
	}
	for i := range la {
		if la[i] != lb[i] { //lint:ignore float-equality bitwise reproducibility is the contract under test
			t.Fatalf("epoch %d loss differs: %v vs %v", i, la[i], lb[i])
		}
	}
}

// TestDistributedMatchesLocal is the headline determinism claim: real
// worker processes over TCP produce exactly the single-process weights.
func TestDistributedMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	local, localLoss := trainWith(t, 2, Options{Workers: 0, Shards: 2})
	distr, distLoss := trainWith(t, 2, Options{Workers: 2, Shards: 2, Seed: 9})
	if !bytes.Equal(local, distr) {
		t.Fatal("workers=2 weights differ from the workers=0 reference")
	}
	for i := range localLoss {
		if localLoss[i] != distLoss[i] { //lint:ignore float-equality bitwise reproducibility is the contract under test
			t.Fatalf("epoch %d loss differs: %v vs %v", i, localLoss[i], distLoss[i])
		}
	}
}

// TestFaultInjectionRecovery is the acceptance test: a two-worker run
// survives one mid-epoch worker kill and one corrupted frame, recovers
// through checkpoint rejoin, and still produces weights byte-identical
// to the single-process run on the same seed.
func TestFaultInjectionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	local, _ := trainWith(t, 2, Options{Workers: 0, Shards: 2})

	var journal bytes.Buffer
	// Frame schedule per rank: 1 welcome, 2 sync, then per step a grad
	// request and a commit. Frame 5 is rank 0's step-1 grad request —
	// corrupting it forces a retryable-error resend. The kill fires
	// when rank 1 is asked for step 2's gradients, mid-epoch 1.
	distr, _ := trainWith(t, 2, Options{
		Workers: 2, Shards: 2, Seed: 9,
		RetryBase: 20 * time.Millisecond,
		Fault: FaultPlan{
			KillWorker:   &KillFault{Rank: 1, Epoch: 1, Step: 2},
			CorruptFrame: &FrameFault{Rank: 0, Nth: 5},
		},
		Journal: obs.New(&journal),
	})
	if !bytes.Equal(local, distr) {
		t.Fatal("faulted run diverged from the single-process reference")
	}

	recs, err := obs.Read(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	events := map[string]int{}
	respawned := false
	for _, r := range recs {
		events[r.Event()]++
		if r.Event() == "dist-join" {
			if spawn, ok := r["spawn"].(float64); ok && spawn > 1 {
				respawned = true
			}
		}
	}
	for _, ev := range []string{"dist-listen", "dist-join", "dist-sync", "dist-fault", "dist-retry", "dist-step-abort", "dist-leave"} {
		if events[ev] == 0 {
			t.Errorf("journal missing %s event; saw %v", ev, events)
		}
	}
	if !respawned {
		t.Error("journal shows no respawned worker join")
	}
	if events["dist-sync"] < 3 {
		t.Errorf("want ≥3 sync events (2 joins + ≥1 rejoin), got %d", events["dist-sync"])
	}
}

// TestMergedJournalCorrelation is the cross-process observability
// acceptance test: a worker is killed mid-epoch, every process journals
// locally, and merging the coordinator's journal with both worker
// journals yields ONE causally ordered stream in which the worker's
// step-fault, the coordinator's step-abort/retry, and the respawned
// worker's re-sync all carry the same trace ID — with the merge output
// byte-identical no matter how (or how often) it is performed.
func TestMergedJournalCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	local, _ := trainWith(t, 2, Options{Workers: 0, Shards: 2})

	dir := t.TempDir()
	coordPath := filepath.Join(dir, "coordinator.jsonl")
	prefix := filepath.Join(dir, "run")
	journal, err := obs.Open(coordPath)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	distr, _ := trainWith(t, 2, Options{
		Workers: 2, Shards: 2, Seed: 9,
		RetryBase: 20 * time.Millisecond,
		Fault: FaultPlan{
			KillWorker:   &KillFault{Rank: 1, Epoch: 1, Step: 2},
			CorruptFrame: &FrameFault{Rank: 0, Nth: 5},
		},
		Journal:             journal,
		Registry:            reg,
		WorkerJournalPrefix: prefix,
	})
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, distr) {
		t.Fatal("faulted run diverged from the single-process reference")
	}

	paths := []string{coordPath, WorkerJournalPath(prefix, 0), WorkerJournalPath(prefix, 1)}
	merged, err := obs.MergeJournalFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-reproducible: merging again — and with the inputs in a
	// different order — must produce the identical stream.
	again, err := obs.MergeJournalFiles(paths[2], paths[0], paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, again) {
		t.Fatal("merge output depends on input order / run")
	}

	recs, err := obs.Read(bytes.NewReader(merged))
	if err != nil {
		t.Fatal(err)
	}

	// The merged stream must be causally ordered: lc never decreases,
	// and every record carries one (all three processes had clocks).
	prevLC := -1.0
	for i, r := range recs {
		lc, ok := r["lc"].(float64)
		if !ok {
			t.Fatalf("record %d (%s) has no lc", i, r.Event())
		}
		if lc < prevLC {
			t.Fatalf("record %d (%s): lc %v < previous %v", i, r.Event(), lc, prevLC)
		}
		prevLC = lc
	}

	// The killed step's fault (worker journal), its abort (coordinator
	// journal), and the respawned worker's re-sync (both journals) must
	// share the step trace derived from (run, epoch 1, step 2).
	wantTrace := obs.FormatID(obs.StepTrace(obs.RunID(9), 1, 2))
	at := func(r obs.Record, key string) int {
		v, _ := r[key].(float64)
		return int(v)
	}
	faultIdx, abortIdx, resyncIdx, workerResyncIdx := -1, -1, -1, -1
	retries, workerStarts := 0, 0
	for i, r := range recs {
		switch r.Event() {
		case "dist-step-fault":
			faultIdx = i
			if r["trace"] != wantTrace {
				t.Errorf("dist-step-fault trace %v, want %s", r["trace"], wantTrace)
			}
			if at(r, "rank") != 1 || at(r, "epoch") != 1 || at(r, "step") != 2 {
				t.Errorf("dist-step-fault at rank=%v epoch=%v step=%v", r["rank"], r["epoch"], r["step"])
			}
		case "dist-step-abort":
			abortIdx = i
			if r["trace"] != wantTrace {
				t.Errorf("dist-step-abort trace %v, want %s", r["trace"], wantTrace)
			}
		case "dist-sync":
			if at(r, "epoch") == 1 && at(r, "step") == 2 {
				resyncIdx = i
				if r["trace"] != wantTrace {
					t.Errorf("re-sync dist-sync trace %v, want %s", r["trace"], wantTrace)
				}
			}
		case "dist-worker-sync":
			if at(r, "epoch") == 1 && at(r, "step") == 2 && at(r, "rank") == 1 {
				workerResyncIdx = i
			}
		case "dist-retry":
			retries++
		case "dist-worker-start":
			workerStarts++
		}
	}
	if faultIdx < 0 || abortIdx < 0 || resyncIdx < 0 || workerResyncIdx < 0 {
		t.Fatalf("missing correlated events: fault=%d abort=%d resync=%d workerResync=%d",
			faultIdx, abortIdx, resyncIdx, workerResyncIdx)
	}
	if retries == 0 {
		t.Error("no dist-retry event (corrupt-frame resend) in merged stream")
	}
	// The respawn appends to rank 1's journal, so the merged stream sees
	// at least three worker starts (two initial spawns + one respawn).
	if workerStarts < 3 {
		t.Errorf("want ≥3 dist-worker-start events (respawn), got %d", workerStarts)
	}
	// Causality across processes: the respawned worker's re-sync record
	// was emitted after witnessing the sync frame the coordinator sent
	// after its abort, so the merge must place it after the abort.
	if workerResyncIdx < abortIdx {
		t.Errorf("respawned worker re-sync (%d) merged before coordinator abort (%d)",
			workerResyncIdx, abortIdx)
	}

	// Worker metrics aggregation: the piggybacked snapshots must surface
	// both ranks' pool counters as labeled families on the coordinator
	// registry.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`worker_pool_tasks_submitted_total{rank="0"}`,
		`worker_pool_tasks_submitted_total{rank="1"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("/metrics missing %s\n%s", want, prom.String())
		}
	}
}

// TestDropFrameRecovery drops one grad request on the floor: the
// coordinator must time out, retry, and the worker must observe (and
// tolerate) the sequence gap — with no effect on the trained weights.
func TestDropFrameRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	local, _ := trainWith(t, 1, Options{Workers: 0, Shards: 2})

	var journal bytes.Buffer
	distr, _ := trainWith(t, 1, Options{
		Workers: 2, Shards: 2, Seed: 9,
		StepTimeout: 2 * time.Second,
		RetryBase:   20 * time.Millisecond,
		Fault: FaultPlan{
			DropFrame: &FrameFault{Rank: 0, Nth: 3}, // step 0's grad request
		},
		Journal: obs.New(&journal),
	})
	if !bytes.Equal(local, distr) {
		t.Fatal("dropped-frame run diverged from the reference")
	}
	out := journal.String()
	for _, ev := range []string{"dist-fault", "dist-timeout", "dist-retry"} {
		if !strings.Contains(out, fmt.Sprintf("%q", ev)) {
			t.Errorf("journal missing %s event", ev)
		}
	}
}

func randMatrix(g *rng.RNG, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = g.NormFloat64()
	}
	return m
}

func randSlice(g *rng.RNG, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = g.NormFloat64()
	}
	return s
}

func sameGrads(a, b []nn.Grads) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].W.Rows != b[i].W.Rows || a[i].W.Cols != b[i].W.Cols {
			return false
		}
		for j := range a[i].W.Data {
			if a[i].W.Data[j] != b[i].W.Data[j] { //lint:ignore float-equality serialization round trip must be bit-exact
				return false
			}
		}
		for j := range a[i].B {
			if a[i].B[j] != b[i].B[j] { //lint:ignore float-equality serialization round trip must be bit-exact
				return false
			}
		}
	}
	return true
}
