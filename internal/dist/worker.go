package dist

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"samplednn/internal/binio"
	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/train"
)

// Environment protocol between the coordinator's spawner and the worker
// process it re-executes. A binary that may host workers (mlptrain, the
// dist test binary) checks IsWorkerProcess early in main/TestMain and
// hands off to WorkerMain.
const (
	// EnvWorker marks the process as a dist worker ("1").
	EnvWorker = "SAMPLEDNN_DIST_WORKER"
	// EnvJoin is the coordinator address to dial.
	EnvJoin = "SAMPLEDNN_DIST_JOIN"
	// EnvRank is the worker's assigned rank.
	EnvRank = "SAMPLEDNN_DIST_RANK"
	// EnvKill, when set to "epoch:step", makes the worker exit abruptly
	// when asked for that step's gradients — the crash half of the
	// FaultPlan. The spawner sets it only on a first spawn, never on a
	// respawn, so the replacement worker survives.
	EnvKill = "SAMPLEDNN_DIST_KILL"
	// EnvJournal is a journal path prefix; the worker appends its events
	// to "<prefix>.rank<R>.jsonl". Append mode means a respawned rank
	// continues the same file, so the kill fault's final record and the
	// replacement's first record live in one stream.
	EnvJournal = "SAMPLEDNN_DIST_JOURNAL"
)

// IsWorkerProcess reports whether this process was spawned as a dist
// worker and should hand control to WorkerMain instead of running its
// normal main.
func IsWorkerProcess() bool { return os.Getenv(EnvWorker) == "1" }

// WorkerMain runs the worker protocol against the coordinator named by
// the environment and returns the process exit code. It never returns
// 0 unless the coordinator sent an orderly shutdown.
func WorkerMain() int {
	addr := os.Getenv(EnvJoin)
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if addr == "" || err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: bad environment: %s=%q %s=%q\n",
			EnvJoin, addr, EnvRank, os.Getenv(EnvRank))
		return 2
	}
	var journal *obs.Journal
	if prefix := os.Getenv(EnvJournal); prefix != "" {
		j, jerr := obs.Open(WorkerJournalPath(prefix, rank))
		if jerr != nil {
			// Telemetry must never keep a worker from serving.
			fmt.Fprintf(os.Stderr, "dist worker rank %d: journal: %v\n", rank, jerr)
		} else {
			journal = j
			defer j.Close()
		}
	}
	if err := runWorker(addr, rank, os.Getenv(EnvKill), journal); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker rank %d: %v\n", rank, err)
		return 1
	}
	return 0
}

// WorkerJournalPath is the journal file a worker of the given rank
// appends to under a WorkerJournalPrefix.
func WorkerJournalPath(prefix string, rank int) string {
	return prefix + ".rank" + strconv.Itoa(rank) + ".jsonl"
}

// RunWorker dials the coordinator at addr and serves as the worker with
// the given rank until an orderly shutdown or a fatal protocol error.
// It is the manual-join entry point (mlptrain -dist-join) for running a
// worker the coordinator did not spawn itself, e.g. on another machine
// against a -dist-nospawn coordinator.
func RunWorker(addr string, rank int) error { return runWorker(addr, rank, "", nil) }

// worker is one replica: it mirrors the coordinator's model, optimizer,
// RNG stream, and batch permutation in lockstep, computes gradient
// shards on request, and applies every committed reduced gradient
// exactly as the coordinator does.
type worker struct {
	fc   *frameConn
	rank int

	// Observability: the worker journals its own lifecycle (nil journal
	// = no-op emits), shares the connection's Lamport clock with it, and
	// piggybacks registry snapshots on acks at the welcome's cadence.
	journal   *obs.Journal
	registry  *obs.Registry
	run       uint64
	snapEvery int
	commits   int

	ds      *dataset.Dataset
	method  *core.Standard
	optim   opt.Optimizer
	g       *rng.RNG
	batcher *dataset.Batcher

	batchSize  int
	shards     int
	numBatches int

	// Position: the step the worker stands ready to compute. Valid only
	// after the first sync.
	synced bool
	epoch  int
	step   int

	// The current step's batch, copied out of the batcher (which reuses
	// its buffers) so duplicate gradient requests — retries after a
	// corrupt or dropped frame, or a step re-run after a peer died —
	// recompute from identical rows.
	haveBatch bool
	bx        *tensor.Matrix
	by        []int

	// lastAck replays the commit ack when a duplicate commit arrives
	// (the coordinator retried because our ack was lost).
	lastAck *posAck

	// Kill fault: exit abruptly when asked for this step.
	killEpoch, killStep int
	hasKill             bool

	seenGaps int
}

// workerIdleTimeout bounds how long a worker waits for the next
// coordinator frame. It must comfortably cover the coordinator's
// between-step work (evaluation, checkpointing at epoch boundaries);
// when it expires the worker assumes the coordinator died and exits, so
// orphaned workers never outlive a crashed training run for long.
const workerIdleTimeout = 2 * time.Minute

func runWorker(addr string, rank int, killSpec string, journal *obs.Journal) error {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("dialing coordinator: %w", err)
	}
	w := &worker{fc: newFrameConn(conn, 10*time.Second), rank: rank, journal: journal, registry: obs.Default}
	// A fresh clock that witnesses the coordinator's value on the very
	// first frame, so every worker journal record sorts causally after
	// the coordinator events that led to it.
	w.fc.clock = obs.NewClock()
	if journal != nil && journal.Lamport() == nil {
		journal.SetLamport(w.fc.clock)
	}
	defer w.fc.Close()
	if killSpec != "" {
		if _, err := fmt.Sscanf(killSpec, "%d:%d", &w.killEpoch, &w.killStep); err != nil {
			return fmt.Errorf("bad %s=%q: %w", EnvKill, killSpec, err)
		}
		w.hasKill = true
	}

	h := hello{Rank: rank, PID: os.Getpid()}
	if err := w.fc.send(msgHello, obs.Ctx{}, h.encode()); err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}
	f, err := w.fc.recv(w.fc.timeout)
	if err != nil {
		return fmt.Errorf("awaiting welcome: %w", err)
	}
	if f.Type == msgError {
		if e, derr := decodeErrMsg(f.Payload); derr == nil {
			return fmt.Errorf("coordinator rejected join: %s", e.Text)
		}
		return fmt.Errorf("coordinator rejected join")
	}
	if f.Type != msgWelcome {
		return fmt.Errorf("expected welcome, got frame type %d", f.Type)
	}
	wm, err := decodeWelcome(f.Payload)
	if err != nil {
		return err
	}
	if err := w.build(wm); err != nil {
		return err
	}
	w.run = wm.Run
	w.snapEvery = wm.SnapEvery
	w.journal.EmitCtx(obs.RootCtx(w.run), "dist-worker-start",
		map[string]any{"rank": w.rank, "pid": os.Getpid(), "addr": addr})
	err = w.serve()
	if err == nil {
		w.journal.EmitCtx(obs.RootCtx(w.run), "dist-worker-stop", map[string]any{"rank": w.rank})
	}
	return err
}

// build constructs the replica skeleton from the welcome: the dataset
// (regenerated bit-for-bit from spec + seed + caps) and the method. The
// mutable state arrives with the first sync.
func (w *worker) build(wm *welcome) error {
	if wm.Rank != w.rank {
		return fmt.Errorf("welcome assigns rank %d, spawned as %d", wm.Rank, w.rank)
	}
	if wm.Method != "standard" {
		return fmt.Errorf("method %q is not distributable (only standard exports gradients)", wm.Method)
	}
	if wm.Shards < 1 || wm.BatchSize < 1 {
		return fmt.Errorf("welcome carries shards=%d batch=%d", wm.Shards, wm.BatchSize)
	}
	w.ds = dataset.GenerateFromSpec(wm.Spec, dataset.Options{
		Seed: wm.DataSeed, MaxTrain: wm.MaxTrain, MaxTest: wm.MaxTest, MaxVal: wm.MaxVal,
	})
	optim, err := opt.ByName(wm.Optimizer, wm.LR)
	if err != nil {
		return fmt.Errorf("welcome optimizer: %w", err)
	}
	w.optim = optim
	w.batchSize = wm.BatchSize
	w.shards = wm.Shards
	// The RNG is a placeholder until the first sync restores the
	// coordinator's stream; NewBatcher's construction shuffle is
	// discarded by the sync's SetOrder.
	w.g = rng.New(0)
	w.batcher = dataset.NewBatcher(w.ds.Train, w.batchSize, w.g)
	w.numBatches = w.batcher.NumBatches()
	return nil
}

// serve is the worker's request loop. Corrupt inbound frames (payload
// CRC failures — the stream stays aligned) are answered with a
// retryable error so the coordinator resends; everything else fatal
// tears the process down and lets the coordinator's respawn path take
// over.
func (w *worker) serve() error {
	for {
		f, err := w.fc.recv(workerIdleTimeout)
		if err == binio.ErrFrameCorrupt {
			// The header (context included) passed its own CRC, so the
			// complaint can carry the faulted exchange's trace.
			w.fc.sendErr(f.Ctx.Child(1), w.epoch, w.step, errRetryable, "frame payload failed CRC")
			continue
		}
		if err != nil {
			return fmt.Errorf("reading frame: %w", err)
		}
		if g := w.fc.gaps; g != w.seenGaps {
			// A sequence gap is the signature of a dropped frame: the
			// coordinator consumed sequence numbers we never received.
			fmt.Fprintf(os.Stderr, "dist worker rank %d: frame sequence gap (total %d)\n", w.rank, g)
			w.seenGaps = g
		}
		// Replies and journal records adopt the inbound frame's context
		// as a child span: same run and trace, a span parented under the
		// frame that caused the work.
		cx := f.Ctx.Child(uint64(w.rank) + 1)
		switch f.Type {
		case msgSync:
			err = w.handleSync(cx, f.Payload)
		case msgGradRequest:
			err = w.handleGradRequest(cx, f.Payload)
		case msgCommit:
			err = w.handleCommit(cx, f.Payload)
		case msgShutdown:
			return nil
		default:
			err = fmt.Errorf("unexpected frame type %d", f.Type)
		}
		if err != nil {
			return err
		}
	}
}

// handleSync restores the coordinator's full state: weights, optimizer
// accumulators, RNG stream, and the in-flight epoch's batch permutation,
// fast-forwarded to the step the coordinator stands at. This is both
// the initial join and the crash-recovery rejoin path — a respawned
// worker replays its position from the carried permutation rather than
// re-living the epoch.
func (w *worker) handleSync(cx obs.Ctx, payload []byte) error {
	s, err := decodeSync(payload)
	if err != nil {
		return fmt.Errorf("decoding sync: %w", err)
	}
	ck, err := train.DecodeCheckpoint(s.Blob)
	if err != nil {
		return fmt.Errorf("sync checkpoint: %w", err)
	}
	net, err := nn.Load(bytes.NewReader(ck.NetBlob))
	if err != nil {
		return fmt.Errorf("sync network: %w", err)
	}
	if ck.OptimizerName != "" && ck.OptimizerName != w.optim.Name() {
		return fmt.Errorf("sync optimizer %q, worker built %q", ck.OptimizerName, w.optim.Name())
	}
	if ss, ok := w.optim.(opt.StateSaver); ok {
		if err := ss.LoadState(bytes.NewReader(ck.OptimizerState)); err != nil {
			return fmt.Errorf("sync optimizer state: %w", err)
		}
	}
	if ck.HasLR {
		if adj, ok := w.optim.(opt.LRAdjuster); ok {
			adj.SetLearningRate(ck.LR)
		}
	}
	if err := w.g.Restore(ck.RNGState); err != nil {
		return fmt.Errorf("sync rng: %w", err)
	}
	if err := w.batcher.SetOrder(ck.BatchOrder); err != nil {
		return fmt.Errorf("sync batch order: %w", err)
	}
	w.batcher.Skip(s.Step)
	w.method = core.NewStandard(net, w.optim)
	w.epoch, w.step = s.Epoch, s.Step
	w.synced = true
	w.haveBatch = false
	w.lastAck = nil
	w.journal.EmitCtx(cx, "dist-worker-sync",
		map[string]any{"rank": w.rank, "epoch": s.Epoch, "step": s.Step})
	// A sync ack always carries a registry snapshot: the worker may have
	// just respawned, and the coordinator's /metrics should reflect the
	// new process immediately.
	ack := posAck{Epoch: s.Epoch, Step: s.Step, WeightCRC: weightCRC(net), Snap: w.snapshotBlob()}
	return w.fc.send(msgSyncAck, cx, ack.encode())
}

// snapshotBlob encodes the worker's registry for ack piggybacking; any
// failure yields nil (no snapshot this ack) — telemetry never breaks
// the protocol.
func (w *worker) snapshotBlob() []byte {
	if w.registry == nil {
		return nil
	}
	b, err := obs.EncodeSnapshot(w.registry.Snapshot())
	if err != nil {
		return nil
	}
	return b
}

// handleGradRequest computes the requested shard gradients of the
// current step's batch. Duplicate requests for the in-flight step are
// served from the cached batch copy; weights have not moved (no commit
// intervened), so the recomputation is bit-identical — that is what
// makes coordinator retries idempotent.
func (w *worker) handleGradRequest(cx obs.Ctx, payload []byte) error {
	req, err := decodeGradRequest(payload)
	if err != nil {
		return fmt.Errorf("decoding grad request: %w", err)
	}
	if !w.synced || req.Epoch != w.epoch || req.Step != w.step {
		w.fc.sendErr(cx, w.epoch, w.step, errDesync,
			fmt.Sprintf("asked for step %d/%d, standing at %d/%d (synced=%v)",
				req.Epoch, req.Step, w.epoch, w.step, w.synced))
		return nil
	}
	if w.hasKill && req.Epoch == w.killEpoch && req.Step == w.killStep {
		// Injected crash: die exactly where a real worker fault would —
		// mid-step, after the coordinator committed to this step's
		// request fan-out. The final journal record carries the step's
		// trace (from the inbound frame), so the merged stream shows the
		// fault, the coordinator's retry, and the respawn's re-sync on
		// one trace ID; Sync makes it durable past the os.Exit.
		w.journal.EmitCtx(cx, "dist-step-fault",
			map[string]any{"rank": w.rank, "epoch": req.Epoch, "step": req.Step, "kind": "kill"})
		_ = w.journal.Sync()
		os.Exit(3)
	}
	if !w.haveBatch {
		x, y := w.batcher.Next()
		if x == nil {
			w.fc.sendErr(cx, w.epoch, w.step, errDesync, "batcher exhausted before epoch end")
			return nil
		}
		// Copy: the batcher reuses its buffers, and retries must see the
		// same rows.
		w.bx = x.Clone()
		w.by = append(w.by[:0], y...)
		w.haveBatch = true
	}
	if req.ShardLo < 0 || req.ShardHi > w.shards || req.ShardLo >= req.ShardHi {
		w.fc.sendErr(cx, w.epoch, w.step, errFatal,
			fmt.Sprintf("shard range [%d,%d) outside [0,%d)", req.ShardLo, req.ShardHi, w.shards))
		return fmt.Errorf("coordinator requested bad shard range [%d,%d)", req.ShardLo, req.ShardHi)
	}
	reply := gradReply{Epoch: req.Epoch, Step: req.Step}
	rows := w.bx.Rows
	for s := req.ShardLo; s < req.ShardHi; s++ {
		lo, hi := shardRange(rows, w.shards, s)
		if lo == hi {
			continue
		}
		loss, grads := w.method.ComputeGrads(w.bx.RowRange(lo, hi), w.by[lo:hi])
		reply.Shards = append(reply.Shards, shardGrad{Index: s, Rows: hi - lo, Loss: loss, Grads: grads})
	}
	return w.fc.send(msgGradReply, cx, reply.encode())
}

// handleCommit applies the reduced gradient — the identical bytes every
// replica applies — and advances the worker's position, rolling the
// batcher (and its RNG draw) over at epoch boundaries exactly when the
// coordinator's trainer does. The returned weight CRC lets the
// coordinator verify the replicas are still bit-identical.
func (w *worker) handleCommit(cx obs.Ctx, payload []byte) error {
	c, err := decodeCommit(payload)
	if err != nil {
		return fmt.Errorf("decoding commit: %w", err)
	}
	if a := w.lastAck; a != nil && c.Epoch == a.Epoch && c.Step == a.Step {
		// Duplicate commit: our ack was lost. Replay it without
		// re-applying the gradient.
		return w.fc.send(msgCommitAck, cx, a.encode())
	}
	if !w.synced || c.Epoch != w.epoch || c.Step != w.step {
		w.fc.sendErr(cx, w.epoch, w.step, errDesync,
			fmt.Sprintf("commit for step %d/%d, standing at %d/%d", c.Epoch, c.Step, w.epoch, w.step))
		return nil
	}
	if !w.haveBatch {
		// This worker was assigned no shards this step (more workers
		// than shards), so it never fetched the batch; advance the
		// batcher past it to stay aligned with the permutation.
		w.batcher.Skip(1)
	}
	w.method.ApplyGrads(c.Grads)
	w.haveBatch = false
	w.step++
	if w.step >= w.numBatches {
		w.epoch++
		w.step = 0
		// Consume the next epoch's shuffle now, mirroring the trainer's
		// top-of-epoch Reset, so the RNG streams stay in lockstep.
		w.batcher.Reset()
	}
	ack := posAck{Epoch: c.Epoch, Step: c.Step, WeightCRC: weightCRC(w.method.Net())}
	w.commits++
	if w.snapEvery > 0 && w.commits%w.snapEvery == 0 {
		ack.Snap = w.snapshotBlob()
	}
	// The replayable ack intentionally drops the snapshot: a replay
	// serves the protocol, not telemetry, and stale metrics are worse
	// than none.
	replay := ack
	replay.Snap = nil
	w.lastAck = &replay
	return w.fc.send(msgCommitAck, cx, ack.encode())
}

// killEnvValue renders a KillFault for EnvKill.
func killEnvValue(k *KillFault) string {
	return strconv.Itoa(k.Epoch) + ":" + strconv.Itoa(k.Step)
}

// parseHostPort validates a join address early with a useful error.
func parseHostPort(addr string) error {
	if !strings.Contains(addr, ":") {
		return fmt.Errorf("dist: address %q has no port", addr)
	}
	return nil
}
