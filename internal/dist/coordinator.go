package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"samplednn/internal/binio"
	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/obs"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
	"samplednn/internal/train"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the number of worker processes. Zero runs the sharded
	// step entirely in-process — the reference the distributed paths
	// must match byte-for-byte.
	Workers int
	// Shards is the number of logical gradient shards per step (default
	// max(Workers, 1)). The shard split — and therefore the reduced
	// gradient — is a function of Shards alone, so runs with different
	// worker counts but equal Shards produce identical weights.
	Shards int
	// ListenAddr is the coordinator's listen address (default
	// "127.0.0.1:0").
	ListenAddr string
	// Data is the provenance of the training dataset (seed and caps):
	// workers regenerate the dataset bit-for-bit from it.
	Data dataset.Options
	// IOTimeout bounds every single frame read/write (default 10s).
	IOTimeout time.Duration
	// StepTimeout bounds how long the coordinator waits for a worker's
	// gradient or commit reply, covering the worker's compute time
	// (default 60s).
	StepTimeout time.Duration
	// RetryBase is the first retry backoff; successive retries double
	// it, capped at 16x, plus seeded jitter (default 50ms).
	RetryBase time.Duration
	// Retries is the per-RPC retry budget (default 3).
	Retries int
	// StepRetries is how many times a whole step may be re-run after a
	// worker failure before the run faults (default 3).
	StepRetries int
	// RespawnLimit caps how many times one rank may be respawned
	// (default 3).
	RespawnLimit int
	// Seed drives retry jitter (and nothing else — jitter never touches
	// training state).
	Seed uint64
	// NoSpawn disables the built-in process spawner; workers are
	// expected to join on their own (tests drive this, and it is the
	// hook for running workers on other machines).
	NoSpawn bool
	// SpawnEnv appends extra environment entries to spawned workers.
	SpawnEnv []string
	// Fault injects failures for robustness tests. Zero injects none.
	Fault FaultPlan
	// Journal receives dist lifecycle events (dist-listen, dist-join,
	// dist-sync, dist-retry, dist-timeout, dist-step-abort, dist-leave,
	// dist-fault, dist-seq-gap, dist-shutdown), each stamped with the
	// correlation context: step-scoped events share one trace ID per
	// (epoch, step) across every process that touched the step.
	Journal *obs.Journal
	// Registry receives dist counters and the reduce-latency
	// distribution (default obs.Default), plus the per-rank worker
	// snapshot families piggybacked on acks.
	Registry *obs.Registry
	// Run is the run identifier shared by every process in the run
	// (default obs.RunID(Seed)).
	Run uint64
	// Clock is the coordinator's Lamport clock, ticked on every frame
	// send and journal record and witnessed on every receive (default a
	// fresh clock). It is attached to Journal when the journal has no
	// clock yet, so frames and journal records share one causal history.
	Clock *obs.Clock
	// WorkerJournalPrefix, when non-empty, makes every spawned worker
	// journal to "<prefix>.rank<R>.jsonl" (appending across respawns);
	// journalcat -merge folds those files and the coordinator's journal
	// into one causally ordered stream.
	WorkerJournalPrefix string
	// SnapshotEvery is the commit cadence at which workers piggyback
	// registry snapshots on their acks (default 5; sync acks always
	// carry one).
	SnapshotEvery int
}

func (o *Options) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = o.Workers
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 10 * time.Second
	}
	if o.StepTimeout <= 0 {
		o.StepTimeout = 60 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.StepRetries <= 0 {
		o.StepRetries = 3
	}
	if o.RespawnLimit <= 0 {
		o.RespawnLimit = 3
	}
	if o.Registry == nil {
		o.Registry = obs.Default
	}
	if o.Run == 0 {
		o.Run = obs.RunID(o.Seed)
	}
	if o.Clock == nil {
		o.Clock = obs.NewClock()
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 5
	}
}

// remoteWorker is the coordinator's view of one connected worker.
type remoteWorker struct {
	fc     *frameConn
	cmd    *exec.Cmd
	pid    int
	synced bool
}

// Coordinator drives synchronous data-parallel SGD across worker
// processes. It implements train.BatchStepper: the trainer hands it
// every batch, it fans gradient shards out to the workers, reduces them
// in fixed shard order, applies the result to the trainer's own replica,
// and commits the identical reduced gradient to every worker.
type Coordinator struct {
	opts    Options
	method  core.Method
	gc      core.GradComputer
	ds      *dataset.Dataset
	welcome welcome

	ln          *net.TCPListener
	workers     []*remoteWorker
	spawned     []int
	sent        []int // frames sent per rank, the FrameFault counter
	pendingCmds []pendingSpawn

	expected    train.StepPos
	hasExpected bool
	jitter      *rng.RNG
	root        obs.Ctx // run-scoped context for control-plane events

	faultDropDone, faultDelayDone, faultCorruptDone bool

	reduceNS *obs.Distribution
}

// NewCoordinator builds a coordinator for the given method (which must
// export gradients via core.GradComputer) over the dataset the trainer
// runs on. With opts.Workers > 0 it starts listening immediately;
// workers are spawned lazily on the first step.
func NewCoordinator(m core.Method, ds *dataset.Dataset, batchSize int, opts Options) (*Coordinator, error) {
	opts.setDefaults()
	gc, ok := m.(core.GradComputer)
	if !ok {
		return nil, fmt.Errorf("dist: method %q does not export gradients (core.GradComputer)", m.Name())
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("dist: batch size %d", batchSize)
	}
	c := &Coordinator{
		opts:   opts,
		method: m,
		gc:     gc,
		ds:     ds,
		jitter: rng.New(opts.Seed ^ 0xd1577ca7),
		root:   obs.RootCtx(opts.Run),
	}
	if opts.Journal != nil && opts.Journal.Lamport() == nil {
		// One clock for frames and journal records: the merge order of
		// multi-process journals is only causal if both share it.
		opts.Journal.SetLamport(opts.Clock)
	}
	c.reduceNS = opts.Registry.Distribution("dist.reduce_ns")
	c.welcome = welcome{
		Spec:      ds.Spec,
		DataSeed:  opts.Data.Seed,
		MaxTrain:  opts.Data.MaxTrain,
		MaxTest:   opts.Data.MaxTest,
		MaxVal:    opts.Data.MaxVal,
		BatchSize: batchSize,
		Shards:    opts.Shards,
		Method:    m.Name(),
		Run:       opts.Run,
		SnapEvery: opts.SnapshotEvery,
	}
	if oh, ok := m.(core.OptimizerHolder); ok {
		o := oh.Optimizer()
		c.welcome.Optimizer = o.Name()
		if adj, ok := o.(opt.LRAdjuster); ok {
			c.welcome.LR = adj.LearningRate()
		}
	}
	if opts.Workers > 0 {
		if err := parseHostPort(opts.ListenAddr); err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", opts.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("dist: listen: %w", err)
		}
		c.ln = ln.(*net.TCPListener)
		c.workers = make([]*remoteWorker, opts.Workers)
		c.spawned = make([]int, opts.Workers)
		c.sent = make([]int, opts.Workers)
		c.emit(c.root, "dist-listen", map[string]any{"addr": c.Addr(), "workers": opts.Workers, "shards": opts.Shards})
	}
	return c, nil
}

// Addr returns the coordinator's listen address ("" when workers=0).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// batchCount returns batches per epoch.
func (c *Coordinator) batchCount() int {
	size := c.welcome.BatchSize
	return (c.ds.Train.Len() + size - 1) / size
}

func (c *Coordinator) nextPos(pos train.StepPos) train.StepPos {
	if pos.Step+1 < c.batchCount() {
		return train.StepPos{Epoch: pos.Epoch, Step: pos.Step + 1}
	}
	return train.StepPos{Epoch: pos.Epoch + 1, Step: 0}
}

// emit journals one dist event under the given correlation context.
// EmitCtx is nil-safe, so a journal-less coordinator pays only the call.
func (c *Coordinator) emit(cx obs.Ctx, ev string, fields map[string]any) {
	c.opts.Journal.EmitCtx(cx, ev, fields)
}

// stepCtx is the context every frame and event of one step's exchange
// carries; retries, re-syncs, and respawns of the same step — in any
// process — share its trace ID.
func (c *Coordinator) stepCtx(pos train.StepPos) obs.Ctx {
	return obs.StepCtx(c.opts.Run, pos.Epoch, pos.Step)
}

// StepBatch implements train.BatchStepper. It leaves the trainer's
// replica exactly as a local sharded step would; on return every live
// worker holds bit-identical weights (verified by CRC).
func (c *Coordinator) StepBatch(pos train.StepPos, x *tensor.Matrix, y []int, state train.StateFunc) (float64, error) {
	if c.opts.Workers == 0 {
		start := now()
		loss := c.localStep(x, y)
		c.reduceNS.Observe(now().Sub(start).Nanoseconds())
		return loss, nil
	}
	if !c.hasExpected || pos != c.expected {
		// The trainer jumped (first step, resume, or divergence
		// rollback): every worker's replica is stale.
		for _, w := range c.workers {
			if w != nil {
				w.synced = false
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.StepRetries; attempt++ {
		if err := c.ensureWorkers(pos, state); err != nil {
			return 0, err
		}
		start := now()
		loss, err := c.tryStep(pos, x, y)
		if err == nil {
			c.reduceNS.Observe(now().Sub(start).Nanoseconds())
			c.expected = c.nextPos(pos)
			c.hasExpected = true
			return loss, nil
		}
		lastErr = err
		c.opts.Registry.Counter("dist.step_aborts").Inc()
		c.emit(c.stepCtx(pos), "dist-step-abort", map[string]any{
			"epoch": pos.Epoch, "step": pos.Step, "attempt": attempt, "error": err.Error(),
		})
	}
	return 0, fmt.Errorf("dist: step %d/%d failed after %d attempts: %w",
		pos.Epoch, pos.Step, c.opts.StepRetries+1, lastErr)
}

// localStep is the workers=0 reference: the same shard split, the same
// fixed-order reduce, the same single apply — just computed in-process.
func (c *Coordinator) localStep(x *tensor.Matrix, y []int) float64 {
	rows := x.Rows
	var red *reducer
	for s := 0; s < c.opts.Shards; s++ {
		lo, hi := shardRange(rows, c.opts.Shards, s)
		if lo == hi {
			continue
		}
		loss, grads := c.gc.ComputeGrads(x.RowRange(lo, hi), y[lo:hi])
		if red == nil {
			red = newReducer(grads)
		}
		red.Add(s, hi-lo, rows, loss, grads)
	}
	loss, grads := red.Result(rows)
	c.gc.ApplyGrads(grads)
	return loss
}

// Close shuts the cluster down: an orderly shutdown frame to every live
// worker, then the listener and any remaining processes.
func (c *Coordinator) Close() error {
	for r, w := range c.workers {
		if w == nil {
			continue
		}
		_ = c.sendTo(r, c.root, msgShutdown, nil)
		_ = w.fc.Close()
		if w.cmd != nil {
			_ = w.cmd.Wait()
		}
		c.workers[r] = nil
	}
	for _, p := range c.pendingCmds {
		_ = p.cmd.Process.Kill()
		_ = p.cmd.Wait()
	}
	c.pendingCmds = nil
	if c.ln != nil {
		c.emit(c.root, "dist-shutdown", nil)
		return c.ln.Close()
	}
	return nil
}

// failWorker drops rank r's connection and process; the next
// ensureWorkers respawns and resyncs it.
func (c *Coordinator) failWorker(r int, reason string) {
	w := c.workers[r]
	if w == nil {
		return
	}
	c.emit(c.root, "dist-leave", map[string]any{"rank": r, "reason": reason})
	_ = w.fc.Close()
	if w.cmd != nil {
		// The process may be alive but wedged (a timeout, not a crash);
		// kill it so the respawn does not race a zombie peer.
		_ = w.cmd.Process.Kill()
		_ = w.cmd.Wait()
	}
	c.workers[r] = nil
}

// ensureWorkers brings every rank to a live, synced connection standing
// at pos: spawning missing processes, accepting their joins, and
// pushing a full-state sync (the SNCK checkpoint the trainer's
// StateFunc captures, carrying the in-flight epoch's batch permutation)
// to every worker whose replica is stale.
func (c *Coordinator) ensureWorkers(pos train.StepPos, state train.StateFunc) error {
	missing := 0
	for r, w := range c.workers {
		if w == nil {
			missing++
			if c.opts.NoSpawn {
				continue
			}
			if c.spawned[r] > c.opts.RespawnLimit {
				return fmt.Errorf("dist: rank %d exceeded respawn limit %d", r, c.opts.RespawnLimit)
			}
			if err := c.spawnWorker(r); err != nil {
				return err
			}
		}
	}
	for missing > 0 {
		if err := c.acceptWorker(); err != nil {
			return err
		}
		missing--
	}

	var blob []byte
	for r, w := range c.workers {
		if w.synced {
			continue
		}
		if blob == nil {
			ck, err := state()
			if err != nil {
				return fmt.Errorf("dist: capturing sync state: %w", err)
			}
			if blob, err = ck.Encode(); err != nil {
				return fmt.Errorf("dist: encoding sync state: %w", err)
			}
		}
		if err := c.syncWorker(r, pos, blob); err != nil {
			return err
		}
		c.emit(c.stepCtx(pos), "dist-sync", map[string]any{"rank": r, "epoch": pos.Epoch, "step": pos.Step, "pid": w.pid})
	}
	return nil
}

// spawnWorker re-executes this binary as a worker for rank r. The kill
// fault is armed only on the rank's first spawn, so the respawned
// replacement survives.
func (c *Coordinator) spawnWorker(r int) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("dist: locating executable: %w", err)
	}
	cmd := exec.Command(exe)
	env := make([]string, 0, len(os.Environ())+4)
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, EnvWorker+"=") || strings.HasPrefix(kv, EnvJoin+"=") ||
			strings.HasPrefix(kv, EnvRank+"=") || strings.HasPrefix(kv, EnvKill+"=") ||
			strings.HasPrefix(kv, EnvJournal+"=") {
			continue
		}
		env = append(env, kv)
	}
	env = append(env,
		EnvWorker+"=1",
		EnvJoin+"="+c.Addr(),
		fmt.Sprintf("%s=%d", EnvRank, r))
	if p := c.opts.WorkerJournalPrefix; p != "" {
		env = append(env, EnvJournal+"="+p)
	}
	if k := c.opts.Fault.KillWorker; k != nil && k.Rank == r && c.spawned[r] == 0 {
		env = append(env, EnvKill+"="+killEnvValue(k))
	}
	env = append(env, c.opts.SpawnEnv...)
	cmd.Env = env
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dist: spawning rank %d: %w", r, err)
	}
	c.spawned[r]++
	if c.spawned[r] > 1 {
		c.opts.Registry.Counter("dist.respawns").Inc()
	}
	// Remember the process so accept can attach it to the rank's slot.
	c.pendingCmds = append(c.pendingCmds, pendingSpawn{rank: r, cmd: cmd})
	return nil
}

type pendingSpawn struct {
	rank int
	cmd  *exec.Cmd
}

// acceptWorker accepts one join, validates its hello, and installs it
// in the rank table. Junk connections (bad rank, occupied slot) are
// rejected and do not consume the accept; the loop is bounded by the
// accept deadline.
func (c *Coordinator) acceptWorker() error {
	deadline := deadlineFrom(c.opts.StepTimeout)
	for {
		if err := c.ln.SetDeadline(deadline); err != nil {
			return err
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: accepting worker: %w", err)
		}
		fc := newFrameConn(conn, c.opts.IOTimeout)
		fc.clock = c.opts.Clock
		f, err := fc.recv(c.opts.IOTimeout)
		if err != nil || f.Type != msgHello {
			_ = fc.Close()
			continue
		}
		h, err := decodeHello(f.Payload)
		if err != nil {
			_ = fc.Close()
			continue
		}
		if h.Rank < 0 || h.Rank >= len(c.workers) || c.workers[h.Rank] != nil {
			fc.sendErr(c.root, 0, 0, errFatal, fmt.Sprintf("rank %d not joinable", h.Rank))
			_ = fc.Close()
			continue
		}
		w := &remoteWorker{fc: fc, pid: h.PID}
		for i, p := range c.pendingCmds {
			if p.rank == h.Rank {
				w.cmd = p.cmd
				c.pendingCmds = append(c.pendingCmds[:i], c.pendingCmds[i+1:]...)
				break
			}
		}
		c.workers[h.Rank] = w
		wm := c.welcome
		wm.Rank = h.Rank
		if err := c.sendTo(h.Rank, c.root, msgWelcome, wm.encode()); err != nil {
			c.failWorker(h.Rank, "welcome: "+err.Error())
			return fmt.Errorf("dist: welcoming rank %d: %w", h.Rank, err)
		}
		c.emit(c.root, "dist-join", map[string]any{"rank": h.Rank, "pid": h.PID, "spawn": c.spawned[h.Rank]})
		return nil
	}
}

// syncWorker pushes the full state to rank r and verifies the restored
// replica's weight CRC against the local one.
func (c *Coordinator) syncWorker(r int, pos train.StepPos, blob []byte) error {
	cx := c.stepCtx(pos)
	sm := syncMsg{Epoch: pos.Epoch, Step: pos.Step, Blob: blob}
	if err := c.sendTo(r, cx, msgSync, sm.encode()); err != nil {
		c.failWorker(r, "sync send: "+err.Error())
		return fmt.Errorf("dist: sending sync to rank %d: %w", r, err)
	}
	payload, err := c.rpc(r, cx, msgSync, sm.encode(), msgSyncAck, pos)
	if err != nil {
		c.failWorker(r, "sync: "+err.Error())
		return fmt.Errorf("dist: syncing rank %d: %w", r, err)
	}
	ack, err := decodePosAck(payload)
	if err != nil {
		c.failWorker(r, "sync ack: "+err.Error())
		return fmt.Errorf("dist: rank %d sync ack: %w", r, err)
	}
	c.attachWorkerSnapshot(r, ack.Snap)
	if want := weightCRC(c.method.Net()); ack.WeightCRC != want {
		c.failWorker(r, "sync weight CRC mismatch")
		return fmt.Errorf("dist: rank %d restored weights CRC %08x, coordinator has %08x", r, ack.WeightCRC, want)
	}
	c.workers[r].synced = true
	return nil
}

// attachWorkerSnapshot merges a piggybacked worker registry snapshot
// into the coordinator's registry as rank-labeled families. Telemetry
// must never fail a step, so a corrupt snapshot is counted and dropped.
func (c *Coordinator) attachWorkerSnapshot(r int, snap []byte) {
	if len(snap) == 0 {
		return
	}
	s, err := obs.DecodeSnapshot(snap)
	if err != nil {
		c.opts.Registry.Counter("dist.snapshot_decode_errors").Inc()
		return
	}
	c.opts.Registry.AttachSnapshot("worker", "rank", strconv.Itoa(r), s)
}

// stepError wraps a mid-step worker failure. abort=true means the step
// must be re-run (the failure happened before the reduced gradient was
// applied); abort=false failures (post-apply commit problems) only cost
// the worker.
type stepError struct {
	rank  int
	abort bool
	err   error
}

func (e *stepError) Error() string { return fmt.Sprintf("rank %d: %v", e.rank, e.err) }
func (e *stepError) Unwrap() error { return e.err }

// tryStep runs one complete exchange: gradient requests fan out, shard
// gradients are reduced in ascending shard order, the coordinator
// applies the result, and the commit fans out. Any pre-apply failure
// aborts the step (weights untouched anywhere: workers only move on
// commit, and a worker that already computed gradients recomputes them
// identically on the re-run).
func (c *Coordinator) tryStep(pos train.StepPos, x *tensor.Matrix, y []int) (float64, error) {
	cx := c.stepCtx(pos)
	rows := x.Rows
	type span struct{ lo, hi int }
	spans := make([]span, len(c.workers))
	for r := range c.workers {
		lo, hi := workerShards(c.opts.Shards, len(c.workers), r)
		spans[r] = span{lo, hi}
		if lo == hi {
			continue
		}
		req := gradRequest{Epoch: pos.Epoch, Step: pos.Step, ShardLo: lo, ShardHi: hi}
		if err := c.sendTo(r, cx, msgGradRequest, req.encode()); err != nil {
			c.failWorker(r, "grad request: "+err.Error())
			return 0, &stepError{rank: r, abort: true, err: err}
		}
	}

	var red *reducer
	for r := range c.workers {
		if spans[r].lo == spans[r].hi {
			continue
		}
		req := gradRequest{Epoch: pos.Epoch, Step: pos.Step, ShardLo: spans[r].lo, ShardHi: spans[r].hi}
		payload, err := c.rpc(r, cx, msgGradRequest, req.encode(), msgGradReply, pos)
		if err != nil {
			c.failWorker(r, "grad reply: "+err.Error())
			return 0, &stepError{rank: r, abort: true, err: err}
		}
		reply, err := decodeGradReply(payload)
		if err != nil {
			c.failWorker(r, "grad reply decode: "+err.Error())
			return 0, &stepError{rank: r, abort: true, err: err}
		}
		for i := range reply.Shards {
			s := &reply.Shards[i]
			lo, hi := shardRange(rows, c.opts.Shards, s.Index)
			if s.Index < spans[r].lo || s.Index >= spans[r].hi || s.Rows != hi-lo {
				c.failWorker(r, "shard mismatch")
				return 0, &stepError{rank: r, abort: true,
					err: fmt.Errorf("shard %d (%d rows) outside assignment [%d,%d)", s.Index, s.Rows, spans[r].lo, spans[r].hi)}
			}
			if red == nil {
				red = newReducer(s.Grads)
			}
			red.Add(s.Index, s.Rows, rows, s.Loss, s.Grads)
		}
	}
	if red == nil {
		return 0, &stepError{rank: -1, abort: true, err: errors.New("no shards reduced")}
	}
	loss, grads := red.Result(rows)
	c.gc.ApplyGrads(grads)
	want := weightCRC(c.method.Net())

	cm := commit{Epoch: pos.Epoch, Step: pos.Step, Loss: loss, Grads: grads}
	payloadBytes := cm.encode()
	for r := range c.workers {
		if c.workers[r] == nil {
			continue
		}
		if err := c.sendTo(r, cx, msgCommit, payloadBytes); err != nil {
			c.failWorker(r, "commit: "+err.Error())
			continue
		}
	}
	for r := range c.workers {
		w := c.workers[r]
		if w == nil {
			continue
		}
		payload, err := c.rpc(r, cx, msgCommit, payloadBytes, msgCommitAck, pos)
		if err != nil {
			// The step is already applied locally; a commit failure only
			// costs the worker, which rejoins by checkpoint next step.
			c.failWorker(r, "commit ack: "+err.Error())
			continue
		}
		ack, err := decodePosAck(payload)
		if err != nil {
			c.failWorker(r, "commit ack decode: "+err.Error())
			continue
		}
		c.attachWorkerSnapshot(r, ack.Snap)
		if ack.WeightCRC != want {
			c.opts.Registry.Counter("dist.replica_divergence").Inc()
			c.failWorker(r, fmt.Sprintf("replica diverged: CRC %08x, want %08x", ack.WeightCRC, want))
		}
	}
	return loss, nil
}

// rpc awaits the reply to an already-sent request, resending the
// request on retryable failures (timeout, corrupt frame in either
// direction) with capped exponential backoff plus seeded jitter. Stale
// frames — replies to earlier exchanges still buffered on the
// connection — are skipped, not errors.
func (c *Coordinator) rpc(r int, cx obs.Ctx, reqType uint8, reqPayload []byte, wantType uint8, pos train.StepPos) ([]byte, error) {
	w := c.workers[r]
	retries := 0
	for {
		f, err := w.fc.recv(c.opts.StepTimeout)
		switch {
		case err == binio.ErrFrameCorrupt:
			// The worker's reply arrived corrupted; ask again.
		case isTimeout(err):
			c.opts.Registry.Counter("dist.timeouts").Inc()
			c.emit(cx, "dist-timeout", map[string]any{"rank": r, "epoch": pos.Epoch, "step": pos.Step})
		case err != nil:
			return nil, err
		default:
			if f.Type == msgError {
				e, derr := decodeErrMsg(f.Payload)
				if derr != nil {
					return nil, fmt.Errorf("undecodable error frame: %w", derr)
				}
				if cmpPos(e.Epoch, e.Step, pos) < 0 {
					continue // stale complaint from an aborted exchange
				}
				if e.Code == errRetryable {
					// Our request reached the worker corrupted; resend it.
					break
				}
				return nil, fmt.Errorf("worker error (code %d): %s", e.Code, e.Text)
			}
			epoch, step, perr := peekPos(f.Payload)
			if perr != nil {
				return nil, fmt.Errorf("reply frame too short: %w", perr)
			}
			if d := cmpPos(epoch, step, pos); d < 0 || (d == 0 && typePhase(f.Type) < typePhase(wantType)) {
				continue // stale reply from an earlier exchange at this conn
			} else if d > 0 || f.Type != wantType {
				return nil, fmt.Errorf("expected frame %d for %d/%d, got %d for %d/%d",
					wantType, pos.Epoch, pos.Step, f.Type, epoch, step)
			}
			return f.Payload, nil
		}
		if retries >= c.opts.Retries {
			return nil, fmt.Errorf("rpc gave up after %d retries (last: %v)", retries, err)
		}
		delay := c.backoff(retries)
		retries++
		c.opts.Registry.Counter("dist.retries").Inc()
		c.emit(cx, "dist-retry", map[string]any{
			"rank": r, "epoch": pos.Epoch, "step": pos.Step, "attempt": retries,
			"delay_ms": delay.Milliseconds(),
		})
		time.Sleep(delay)
		if err := c.sendTo(r, cx, reqType, reqPayload); err != nil {
			return nil, fmt.Errorf("resending request: %w", err)
		}
	}
}

// backoff returns the nth retry delay: base·2ⁿ capped at 16·base, plus
// up to one base of seeded jitter.
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.opts.RetryBase << n
	if max := c.opts.RetryBase << 4; d > max {
		d = max
	}
	return d + time.Duration(c.jitter.Float64()*float64(c.opts.RetryBase))
}

// cmpPos orders (epoch, step) against pos: -1 earlier, 0 equal, +1 later.
func cmpPos(epoch, step int, pos train.StepPos) int {
	if epoch != pos.Epoch {
		if epoch < pos.Epoch {
			return -1
		}
		return 1
	}
	if step != pos.Step {
		if step < pos.Step {
			return -1
		}
		return 1
	}
	return 0
}

// typePhase orders reply types within one step's exchange; a same-pos
// reply from an earlier phase (a duplicate grad reply arriving while we
// await the commit ack) is stale, not a protocol error.
func typePhase(t uint8) int {
	switch t {
	case msgSyncAck:
		return 0
	case msgGradReply:
		return 1
	case msgCommitAck:
		return 2
	}
	return 3
}

// sendTo writes one frame to rank r, applying any armed frame fault:
// drop (bytes discarded, sequence number consumed), delay, or a
// payload bit-flip the receiver's CRC check will catch.
func (c *Coordinator) sendTo(r int, cx obs.Ctx, typ uint8, payload []byte) error {
	w := c.workers[r]
	if w == nil {
		return fmt.Errorf("dist: rank %d has no connection", r)
	}
	b := w.fc.encode(typ, cx, payload)
	c.sent[r]++
	n := c.sent[r]
	if f := c.opts.Fault.DropFrame; !c.faultDropDone && f.matches(r, n) {
		c.faultDropDone = true
		c.emit(cx, "dist-fault", map[string]any{"kind": "drop", "rank": r, "frame": n})
		return nil
	}
	if f := c.opts.Fault.DelayFrame; !c.faultDelayDone && f.matches(r, n) {
		c.faultDelayDone = true
		c.emit(cx, "dist-fault", map[string]any{"kind": "delay", "rank": r, "frame": n, "delay_ms": f.Delay.Milliseconds()})
		time.Sleep(f.Delay)
	}
	if f := c.opts.Fault.CorruptFrame; !c.faultCorruptDone && f.matches(r, n) && len(payload) > 0 {
		c.faultCorruptDone = true
		c.emit(cx, "dist-fault", map[string]any{"kind": "corrupt", "rank": r, "frame": n})
		b[len(b)-1] ^= 0x01 // flip a payload bit; the worker's CRC check rejects it
	}
	return w.fc.write(b)
}
