// Package theory implements the paper's §7 analysis of feedforward
// approximation error: the Lemma 7.1 recursion for the per-node
// activation estimation error of ALSH-approx, the Theorem 7.2 closed form
// showing the error-to-estimate ratio grows as ((c+1)/c)^k − 1, and
// linear-network simulators that validate both results empirically —
// including the exact-c construction in which the simulation must match
// the closed form to machine precision.
package theory

import (
	"fmt"
	"math"
	"sort"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// AmplificationFactor returns (c+1)/c, the per-layer growth factor of the
// true activation relative to its estimate under the Theorem 7.2
// assumption that active nodes carry c times the inactive nodes' mass.
func AmplificationFactor(c float64) float64 {
	if c <= 0 {
		panic(fmt.Sprintf("theory: mass ratio c=%v must be positive", c))
	}
	return (c + 1) / c
}

// ErrorRatio returns Theorem 7.2's error-to-estimate ratio
// ε_j^k / â_j^k = ((c+1)/c)^k − 1 after k hidden layers.
func ErrorRatio(c float64, k int) float64 {
	if k < 0 {
		panic(fmt.Sprintf("theory: depth k=%d must be non-negative", k))
	}
	return math.Pow(AmplificationFactor(c), float64(k)) - 1
}

// PaperTable reproduces the §7 in-text table: the error-to-estimate
// ratios for c = 5 and k = 1..6 (0.2, 0.44, 0.73, 1.07, 1.49, 1.99).
func PaperTable() []float64 {
	out := make([]float64, 6)
	for k := 1; k <= 6; k++ {
		out[k-1] = ErrorRatio(5, k)
	}
	return out
}

// DepthLimit returns the largest depth at which the error-to-estimate
// ratio stays at or below threshold; the paper observes the estimate is
// dominated by its error (ratio ≥ 1) beyond 3 hidden layers at c = 5.
func DepthLimit(c, threshold float64) int {
	k := 0
	for ErrorRatio(c, k+1) <= threshold {
		k++
		if k > 1<<20 {
			break // threshold unreachable growth guard
		}
	}
	return k
}

// SimResult reports a depth sweep of a feedforward-approximation
// simulation: per-layer mean error-to-estimate ratios alongside the
// Theorem 7.2 prediction for the observed mass ratio.
type SimResult struct {
	// Depth is the number of hidden layers simulated.
	Depth int
	// Ratios[k] is mean_j ε_j^(k+1) / â_j^(k+1), measured.
	Ratios []float64
	// Theory[k] is ErrorRatio(MeanC, k+1).
	Theory []float64
	// MeanC is the mass ratio c realized by the active sets (exact in
	// SimulateUniform; averaged in SimulateTopK).
	MeanC float64
}

// SimulateUniform runs the exact construction of Theorem 7.2: a linear
// network with all-equal positive weights and inputs, so every node's
// contribution is identical and an active set of m of n previous nodes
// realizes mass ratio c = m/(n−m) exactly. The measured ratios must equal
// the closed form to floating-point accuracy.
func SimulateUniform(n, m, depth int) SimResult {
	if n <= 1 || m <= 0 || m >= n {
		panic(fmt.Sprintf("theory: need 0 < m < n, n > 1; got n=%d m=%d", n, m))
	}
	if depth <= 0 {
		panic("theory: depth must be positive")
	}
	c := float64(m) / float64(n-m)
	w := 1 / float64(n) // any positive constant; 1/n keeps values bounded

	res := SimResult{Depth: depth, MeanC: c}
	trueAct := 1.0 // all nodes share the same activation value
	estAct := 1.0
	for k := 1; k <= depth; k++ {
		// The full sum takes all n previous true activations; the
		// estimate sums only the m active previous estimates.
		trueAct = float64(n) * trueAct * w
		estAct = float64(m) * estAct * w
		res.Ratios = append(res.Ratios, (trueAct-estAct)/estAct)
		res.Theory = append(res.Theory, ErrorRatio(c, k))
	}
	return res
}

// SimulateTopK runs the empirical variant on random positive weights: a
// linear network where each node's active set is the exact top-m
// contributors from the previous layer (the "active nodes are detected
// exactly" premise of Lemma 7.1). It returns measured ratios and the
// Theorem 7.2 prediction at the realized mean mass ratio.
func SimulateTopK(seed uint64, n, m, depth int) SimResult {
	if n <= 1 || m <= 0 || m >= n {
		panic(fmt.Sprintf("theory: need 0 < m < n; got n=%d m=%d", n, m))
	}
	g := rng.New(seed)
	layers := make([]*tensor.Matrix, depth)
	for k := range layers {
		wm := tensor.New(n, n)
		for i := range wm.Data {
			wm.Data[i] = g.Float64() // positive weights keep masses positive
		}
		wm.Scale(1 / float64(n)) // bound activations
		layers[k] = wm
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 + 0.5*g.Float64()
	}

	trueAct := append([]float64(nil), x...)
	estAct := append([]float64(nil), x...)
	res := SimResult{Depth: depth}
	var cSum float64
	var cCount int

	contrib := make([]float64, n)
	order := make([]int, n)
	for k := 0; k < depth; k++ {
		w := layers[k]
		newTrue := make([]float64, n)
		newEst := make([]float64, n)
		var ratioSum float64
		for j := 0; j < n; j++ {
			var full float64
			for i := 0; i < n; i++ {
				v := estAct[i] * w.Data[i*n+j]
				contrib[i] = v
				full += trueAct[i] * w.Data[i*n+j]
			}
			newTrue[j] = full
			// Exact top-m detection over the estimated contributions.
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return contrib[order[a]] > contrib[order[b]] })
			var active, inactive float64
			for r, i := range order {
				if r < m {
					active += contrib[i]
				} else {
					inactive += contrib[i]
				}
			}
			newEst[j] = active
			if inactive > 0 {
				cSum += active / inactive
				cCount++
			}
			if newEst[j] != 0 { //lint:ignore float-equality exact-zero estimate guard for the relative-error division
				ratioSum += (newTrue[j] - newEst[j]) / newEst[j]
			}
		}
		res.Ratios = append(res.Ratios, ratioSum/float64(n))
		trueAct, estAct = newTrue, newEst
	}
	if cCount > 0 {
		res.MeanC = cSum / float64(cCount)
	}
	for k := 1; k <= depth; k++ {
		res.Theory = append(res.Theory, ErrorRatio(res.MeanC, k))
	}
	return res
}

// LemmaError computes the Lemma 7.1 recursion for a single chain: given
// the previous layer's per-node errors ePrev, estimated activations
// estPrev, the layer weight matrix w (n x n), and each node's active set
// (active[j] lists the previous-layer nodes feeding node j), it returns
// the per-node errors of this layer:
//
//	e_j = Σ_i ePrev_i·w_ij  +  Σ_{i ∉ active_j} estPrev_i·w_ij
func LemmaError(ePrev, estPrev []float64, w *tensor.Matrix, active [][]int) []float64 {
	n := w.Cols
	if len(ePrev) != w.Rows || len(estPrev) != w.Rows || len(active) != n {
		panic("theory: LemmaError shape mismatch")
	}
	out := make([]float64, n)
	inActive := make([]bool, w.Rows)
	for j := 0; j < n; j++ {
		for i := range inActive {
			inActive[i] = false
		}
		for _, i := range active[j] {
			inActive[i] = true
		}
		var e float64
		for i := 0; i < w.Rows; i++ {
			wij := w.Data[i*w.Cols+j]
			e += ePrev[i] * wij
			if !inActive[i] {
				e += estPrev[i] * wij
			}
		}
		out[j] = e
	}
	return out
}
