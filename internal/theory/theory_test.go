package theory

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestErrorRatioClosedForm(t *testing.T) {
	if ErrorRatio(5, 0) != 0 {
		t.Fatal("depth 0 must have zero error")
	}
	if math.Abs(ErrorRatio(5, 1)-0.2) > 1e-12 {
		t.Fatalf("k=1: %v", ErrorRatio(5, 1))
	}
	if math.Abs(ErrorRatio(5, 2)-0.44) > 1e-12 {
		t.Fatalf("k=2: %v", ErrorRatio(5, 2))
	}
}

func TestPaperTable(t *testing.T) {
	// §7 in-text table: k = 1..6 at c = 5 → 0.2, 0.44, 0.72, 1.07, 1.48, 1.98
	// (paper rounds to two decimals).
	got := PaperTable()
	want := []float64{0.2, 0.44, 0.728, 1.0736, 1.48832, 1.985984}
	paperRounded := []float64{0.2, 0.44, 0.72, 1.07, 1.48, 1.98}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("k=%d: got %v, want %v", i+1, got[i], want[i])
		}
		if math.Abs(got[i]-paperRounded[i]) > 0.01 {
			t.Fatalf("k=%d: %v does not round to the paper's %v", i+1, got[i], paperRounded[i])
		}
	}
}

func TestErrorDominatesBeyondThreeLayers(t *testing.T) {
	// The paper's headline: at c=5 the error exceeds the estimate once
	// depth passes 3.
	if DepthLimit(5, 1) != 3 {
		t.Fatalf("DepthLimit(5, 1) = %d, want 3", DepthLimit(5, 1))
	}
	if ErrorRatio(5, 4) <= 1 {
		t.Fatal("4 layers at c=5 must have error > estimate")
	}
	if ErrorRatio(5, 3) >= 1 {
		t.Fatal("3 layers at c=5 must still have error < estimate")
	}
}

func TestErrorRatioMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		c := 0.5 + 10*g.Float64()
		k := 1 + g.IntN(10)
		// Strictly increasing in depth, decreasing in c.
		if ErrorRatio(c, k+1) <= ErrorRatio(c, k) {
			return false
		}
		return ErrorRatio(c+1, k) < ErrorRatio(c, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAmplificationFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AmplificationFactor(0)
}

// The uniform construction realizes the theorem's premise exactly, so
// the measured ratios must match the closed form to machine precision.
func TestSimulateUniformMatchesTheoremExactly(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{12, 10}, {60, 50}, {100, 5}} {
		res := SimulateUniform(tc.n, tc.m, 6)
		for k := 0; k < 6; k++ {
			if math.Abs(res.Ratios[k]-res.Theory[k]) > 1e-9*(1+res.Theory[k]) {
				t.Fatalf("n=%d m=%d k=%d: simulated %v vs theory %v",
					tc.n, tc.m, k+1, res.Ratios[k], res.Theory[k])
			}
		}
	}
}

func TestSimulateUniformPaperSetting(t *testing.T) {
	// m/(n−m) = 5 with n = 60, m = 50 reproduces the §7 table.
	res := SimulateUniform(60, 50, 6)
	if math.Abs(res.MeanC-5) > 1e-12 {
		t.Fatalf("c = %v, want 5", res.MeanC)
	}
	want := []float64{0.2, 0.44, 0.728, 1.0736, 1.48832, 1.985984}
	for k := range want {
		if math.Abs(res.Ratios[k]-want[k]) > 1e-9 {
			t.Fatalf("k=%d: %v, want %v", k+1, res.Ratios[k], want[k])
		}
	}
}

func TestSimulateUniformValidation(t *testing.T) {
	for _, f := range []func(){
		func() { SimulateUniform(1, 1, 3) },
		func() { SimulateUniform(10, 0, 3) },
		func() { SimulateUniform(10, 10, 3) },
		func() { SimulateUniform(10, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// The random-weights simulation must show the qualitative §7 result:
// error ratios grow with depth and roughly track the closed form at the
// realized mean c.
func TestSimulateTopKGrowsExponentially(t *testing.T) {
	res := SimulateTopK(1, 64, 16, 6)
	for k := 1; k < res.Depth; k++ {
		if res.Ratios[k] <= res.Ratios[k-1] {
			t.Fatalf("ratio not increasing at layer %d: %v", k+1, res.Ratios)
		}
	}
	// Growth factor between consecutive (1+ratio) values should approach
	// (c+1)/c for the realized c.
	amp := AmplificationFactor(res.MeanC)
	for k := 1; k < res.Depth; k++ {
		growth := (1 + res.Ratios[k]) / (1 + res.Ratios[k-1])
		if math.Abs(growth-amp)/amp > 0.25 {
			t.Fatalf("layer %d growth %v far from theory %v", k+1, growth, amp)
		}
	}
}

func TestSimulateTopKDeterministic(t *testing.T) {
	a := SimulateTopK(7, 32, 8, 4)
	b := SimulateTopK(7, 32, 8, 4)
	for i := range a.Ratios {
		if a.Ratios[i] != b.Ratios[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

// Lemma 7.1: the recursion must equal the directly computed error at
// every layer of a simulated linear network.
func TestLemmaRecursionMatchesDirectError(t *testing.T) {
	g := rng.New(3)
	n, m, depth := 20, 6, 4
	w := make([]*tensor.Matrix, depth)
	for k := range w {
		wm := tensor.New(n, n)
		for i := range wm.Data {
			wm.Data[i] = g.Float64() / float64(n)
		}
		w[k] = wm
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = g.Float64()
	}

	trueAct := append([]float64(nil), x...)
	estAct := append([]float64(nil), x...)
	errs := make([]float64, n) // e^0 = 0

	contrib := make([]float64, n)
	for k := 0; k < depth; k++ {
		// Active sets: exact top-m of estimated contributions.
		active := make([][]int, n)
		newEst := make([]float64, n)
		newTrue := make([]float64, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				contrib[i] = estAct[i] * w[k].Data[i*n+j]
				newTrue[j] += trueAct[i] * w[k].Data[i*n+j]
			}
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return contrib[order[a]] > contrib[order[b]] })
			active[j] = append([]int(nil), order[:m]...)
			for _, i := range active[j] {
				newEst[j] += contrib[i]
			}
		}
		lemma := LemmaError(errs, estAct, w[k], active)
		for j := 0; j < n; j++ {
			direct := newTrue[j] - newEst[j]
			if math.Abs(lemma[j]-direct) > 1e-10*(1+math.Abs(direct)) {
				t.Fatalf("layer %d node %d: lemma %v vs direct %v", k+1, j, lemma[j], direct)
			}
		}
		trueAct, estAct = newTrue, newEst
		errs = lemma
	}
}

func TestLemmaErrorShapeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LemmaError([]float64{1}, []float64{1, 2}, tensor.New(2, 2), make([][]int, 2))
}
