package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFileBytes(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content %q", got)
	}
}

func TestWriteFileFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileBytes(path, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("torn")) // partial write, then failure
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("old content lost: %q", got)
	}
	// The staging file must not be left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stale temp file %s", e.Name())
		}
	}
}

func TestWriteFileBadDirectory(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), []byte("x"))
	if err == nil {
		t.Fatal("missing directory must error")
	}
}
