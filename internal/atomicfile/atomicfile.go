// Package atomicfile writes files so that a crash — process kill, power
// loss, disk-full — at any instant leaves either the complete old file or
// the complete new file on disk, never a torn mix. Model checkpoints and
// the trainer's full-state snapshots both route through it: a snapshot
// that can be corrupted by the very crash it exists to survive is
// worthless.
package atomicfile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The data is staged in a temp file in the same directory (so the final
// rename cannot cross filesystems), flushed and fsynced, then renamed
// over path. The containing directory is fsynced afterwards on a
// best-effort basis so the rename itself survives a power cut.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: staging %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicfile: flushing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: closing %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: replacing %s: %w", path, err)
	}
	// Persist the rename. Some filesystems don't support fsync on
	// directories; that only weakens durability, not atomicity.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileBytes is WriteFile for callers that already hold the full
// content in memory.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// BackupThenReplace preserves path's current content at backup, then
// atomically replaces path with data. Both writes are atomic and the
// primary is copied — not renamed — into the backup, so a crash at any
// instant leaves a complete file at path: either the old content (crash
// before the final replace) or the new one. Callers use it to keep a
// last-known-good generation next to a file whose fresh copy could be
// corrupted after the write (bit rot, torn disks): checkpoint loaders
// fall back to the backup when the primary fails its checksum.
//
// A missing primary is not an error — the backup is left untouched and
// data becomes the first generation.
func BackupThenReplace(path, backup string, data []byte) error {
	old, err := os.ReadFile(path)
	switch {
	case err == nil:
		if berr := WriteFileBytes(backup, old); berr != nil {
			return fmt.Errorf("atomicfile: preserving %s at %s: %w", path, backup, berr)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("atomicfile: reading %s for backup: %w", path, err)
	}
	return WriteFileBytes(path, data)
}
