// Package atomicfile writes files so that a crash — process kill, power
// loss, disk-full — at any instant leaves either the complete old file or
// the complete new file on disk, never a torn mix. Model checkpoints and
// the trainer's full-state snapshots both route through it: a snapshot
// that can be corrupted by the very crash it exists to survive is
// worthless.
package atomicfile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The data is staged in a temp file in the same directory (so the final
// rename cannot cross filesystems), flushed and fsynced, then renamed
// over path. The containing directory is fsynced afterwards on a
// best-effort basis so the rename itself survives a power cut.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: staging %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicfile: flushing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: closing %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: replacing %s: %w", path, err)
	}
	// Persist the rename. Some filesystems don't support fsync on
	// directories; that only weakens durability, not atomicity.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileBytes is WriteFile for callers that already hold the full
// content in memory.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
