package core

import (
	"fmt"
	"math"
	"time"

	"samplednn/internal/nn"
	"samplednn/internal/obs/trace"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Dropout implements the Srivastava et al. method (§5.1): each hidden
// layer keeps every node independently with probability P per step, and
// only the kept nodes participate in the forward pass, backpropagation,
// and weight update. Kept activations are scaled by 1/P ("inverted
// dropout") so inference uses the unmodified network.
//
// The paper's experiments set P = 0.05 to match the ~5% active sets of
// ALSH-approx (§8.4), which is why DropoutS accuracy collapses on harder
// datasets in Table 2 — at that rate the kept set is random and tiny.
type Dropout struct {
	net   *nn.Network
	optim opt.Optimizer
	// P is the keep probability of each hidden node.
	P float64
	// MinKeep is the floor on the kept-set size per layer (at least 1).
	MinKeep int

	g      *rng.RNG
	states []*activeState
	grads  []nn.Grads
	timing Timing
}

// NewDropout wraps net in uniform node dropout with keep probability p.
func NewDropout(net *nn.Network, optim opt.Optimizer, p float64, g *rng.RNG) *Dropout {
	if net == nil || optim == nil || g == nil {
		panic("core: Dropout needs a network, optimizer, and RNG")
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("core: dropout keep probability %v must be in (0,1]", p))
	}
	return &Dropout{
		net: net, optim: optim, P: p, MinKeep: 1, g: g,
		states: make([]*activeState, len(net.Layers)),
		grads:  make([]nn.Grads, len(net.Layers)),
	}
}

// Name returns "dropout".
func (d *Dropout) Name() string { return "dropout" }

// Axis returns AxisColumns: dropout samples nodes of the current layer.
func (d *Dropout) Axis() Axis { return AxisColumns }

// Net returns the wrapped network.
func (d *Dropout) Net() *nn.Network { return d.net }

// Timing returns the cumulative phase timings.
func (d *Dropout) Timing() Timing { return d.timing }

// ResetTiming zeroes the timings.
func (d *Dropout) ResetTiming() { d.timing = Timing{} }

// sampleCols draws the kept-node set for a layer of width n from the
// method's own RNG stream.
func (d *Dropout) sampleCols(n int) []int { return d.sampleColsWith(n, d.g) }

// sampleColsWith is sampleCols over an explicit RNG, so diagnostic
// passes (the error-compounding probe) can draw kept sets without
// perturbing the training stream.
func (d *Dropout) sampleColsWith(n int, g *rng.RNG) []int {
	cols := make([]int, 0, int(float64(n)*d.P)+4)
	for j := 0; j < n; j++ {
		if g.Bernoulli(d.P) {
			cols = append(cols, j)
		}
	}
	min := d.MinKeep
	if min < 1 {
		min = 1
	}
	for len(cols) < min {
		j := g.IntN(n)
		dup := false
		for _, c := range cols {
			if c == j {
				dup = true
				break
			}
		}
		if !dup {
			cols = append(cols, j)
		}
	}
	return cols
}

// ApproxForward replays the dropout-sampled feedforward on x: fresh kept
// sets are drawn from g (not the training stream) per hidden layer, with
// the same 1/P inverted scaling a Step applies. Buffers are local, so
// training state is untouched.
func (d *Dropout) ApproxForward(x *tensor.Matrix, g *rng.RNG) []*tensor.Matrix {
	layers := d.net.Layers
	last := len(layers) - 1
	out := make([]*tensor.Matrix, len(layers))
	scale := 1 / d.P
	act := x
	for i, l := range layers {
		if i == last {
			z := tensor.MatMul(act, l.W)
			z.AddRowVector(l.B)
			act = l.Act.Forward(z)
			out[i] = act
			continue
		}
		st := &activeState{cols: d.sampleColsWith(l.FanOut(), g)}
		act = forwardActive(l, act, st, scale)
		out[i] = act
	}
	return out
}

// Step performs one dropout-sampled training pass.
func (d *Dropout) Step(x *tensor.Matrix, y []int) float64 {
	tr := trace.Active()
	layers := d.net.Layers
	last := len(layers) - 1
	scale := 1 / d.P

	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	a := x
	for i, l := range layers {
		if i == last {
			sp := tr.BeginLayer("forward", "layer", i)
			a = l.Forward(a) // output layer is always exact
			sp.End()
			continue
		}
		if d.states[i] == nil {
			d.states[i] = &activeState{}
		}
		d.states[i].cols = d.sampleCols(l.FanOut())
		sp := tr.BeginLayer("forward", "sampled", i)
		a = forwardActive(l, a, d.states[i], scale)
		sp.End()
	}
	logits := a
	loss := d.net.Head.Loss(logits, y)
	t1 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	// Backward: output layer dense, hidden layers through active sets.
	delta := d.net.Head.Delta(logits, y)
	spOut := tr.BeginLayer("backward", "layer", last)
	gOut, dA := layers[last].Backward(delta)
	d.optim.Step(last, layers[last].W, layers[last].B, gOut)
	spOut.End()
	for i := last - 1; i >= 0; i-- {
		sp := tr.BeginLayer("backward", "sampled", i)
		l := layers[i]
		st := d.states[i]
		gw, gb, dPrev := backwardActive(l, dA, st, scale)
		d.grads[i] = scatterGrads(l, gw, gb, st.cols, d.grads[i])
		d.optim.StepCols(i, l.W, l.B, d.grads[i], st.cols)
		clearGradCols(d.grads[i], st.cols)
		dA = dPrev
		sp.End()
	}
	t2 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	d.timing.Forward += t1.Sub(t0)
	d.timing.Backward += t2.Sub(t1)
	return loss
}

// AdaptiveDropout implements the Ba-Frey "standout" sampler (§5.1): the
// keep probability of node j is a sigmoid of its own pre-activation,
// π_j = σ(Alpha·z_j + Beta), so nodes that would fire strongly are kept
// with high probability — a data-dependent approximation of the Bayesian
// posterior over architectures. This is what lets it avoid "randomly
// dropping significant nodes": useful nodes raise their own keep rate.
//
// Following Ba and Frey, training multiplies activations by the raw 0/1
// mask (no 1/π rescaling — at the paper's 5% base rate an inverted mask
// would amplify survivors 20x and drown the signal in noise), and
// inference uses the expectation network a = π(z) ⊙ f(z), exposed via
// PredictBatch.
//
// Computing π requires the full pre-activation vector, so unlike Dropout
// and ALSH-approx this method does all the forward work before discarding
// nodes — the computational overhead the paper measures in Table 4
// (Adaptive-Dropout slower per epoch than Standard).
type AdaptiveDropout struct {
	net   *nn.Network
	optim opt.Optimizer
	// Alpha scales and Beta shifts the standout sigmoid. Beta controls
	// the base keep rate: σ(Beta) is the keep probability of a neutral
	// node. The paper matches the 5% rate of ALSH-approx.
	Alpha, Beta float64

	g      *rng.RNG
	masks  []*tensor.Matrix
	timing Timing
}

// NewAdaptiveDropout wraps net in standout sampling. baseKeep sets Beta =
// logit(baseKeep), so a node with zero pre-activation is kept with
// probability baseKeep.
func NewAdaptiveDropout(net *nn.Network, optim opt.Optimizer, alpha, baseKeep float64, g *rng.RNG) *AdaptiveDropout {
	if net == nil || optim == nil || g == nil {
		panic("core: AdaptiveDropout needs a network, optimizer, and RNG")
	}
	if baseKeep <= 0 || baseKeep >= 1 {
		panic(fmt.Sprintf("core: baseKeep %v must be in (0,1)", baseKeep))
	}
	return &AdaptiveDropout{
		net: net, optim: optim,
		Alpha: alpha, Beta: math.Log(baseKeep / (1 - baseKeep)),
		g:     g,
		masks: make([]*tensor.Matrix, len(net.Layers)),
	}
}

// Name returns "adaptive-dropout".
func (a *AdaptiveDropout) Name() string { return "adaptive-dropout" }

// Axis returns AxisColumns.
func (a *AdaptiveDropout) Axis() Axis { return AxisColumns }

// Net returns the wrapped network.
func (a *AdaptiveDropout) Net() *nn.Network { return a.net }

// Timing returns the cumulative phase timings.
func (a *AdaptiveDropout) Timing() Timing { return a.timing }

// ResetTiming zeroes the timings.
func (a *AdaptiveDropout) ResetTiming() { a.timing = Timing{} }

// keepProb returns π = σ(Alpha·z + Beta).
func (a *AdaptiveDropout) keepProb(z float64) float64 {
	v := a.Alpha*z + a.Beta
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Step performs one standout-sampled training pass with 0/1 masks.
func (a *AdaptiveDropout) Step(x *tensor.Matrix, y []int) float64 {
	tr := trace.Active()
	layers := a.net.Layers
	last := len(layers) - 1

	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	act := x
	for i, l := range layers {
		sp := tr.BeginLayer("forward", "layer", i)
		act = l.Forward(act) // full pre-activations needed for π
		sp.End()
		if i == last {
			continue
		}
		if a.masks[i] == nil || a.masks[i].Rows != act.Rows || a.masks[i].Cols != act.Cols {
			a.masks[i] = tensor.New(act.Rows, act.Cols)
		}
		mask := a.masks[i]
		for k, z := range l.Z.Data {
			if a.g.Bernoulli(a.keepProb(z)) {
				mask.Data[k] = 1
			} else {
				mask.Data[k] = 0
			}
		}
		// The masked activation feeds the next layer; l.A itself stays
		// unmasked so the activation derivative in the backward pass is
		// computed from the true f(z).
		act = tensor.Hadamard(l.A, mask)
	}
	logits := act
	loss := a.net.Head.Loss(logits, y)
	t1 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	delta := a.net.Head.Delta(logits, y)
	for i := last; i >= 0; i-- {
		sp := tr.BeginLayer("backward", "layer", i)
		l := layers[i]
		grads, dPrev := l.Backward(delta)
		a.optim.Step(i, l.W, l.B, grads)
		if i > 0 {
			below := layers[i-1]
			// Gradient flows only through kept nodes, with the same
			// inverted scaling the forward applied.
			tensor.HadamardInPlace(dPrev, a.masks[i-1])
			dPrev = applyDerivative(below, dPrev)
			delta = dPrev
		}
		sp.End()
	}
	t2 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	a.timing.Forward += t1.Sub(t0)
	a.timing.Backward += t2.Sub(t1)
	return loss
}

// ApproxForward replays the standout-sampled feedforward on x: each
// hidden node is kept with its data-dependent probability π = σ(αz+β),
// drawn from g, and survivors pass through unscaled (the Ba-Frey
// training rule). All state is local.
func (a *AdaptiveDropout) ApproxForward(x *tensor.Matrix, g *rng.RNG) []*tensor.Matrix {
	layers := a.net.Layers
	last := len(layers) - 1
	out := make([]*tensor.Matrix, len(layers))
	act := x
	for i, l := range layers {
		z := tensor.MatMul(act, l.W)
		z.AddRowVector(l.B)
		h := l.Act.Forward(z)
		if i != last {
			for k, zv := range z.Data {
				if !g.Bernoulli(a.keepProb(zv)) {
					h.Data[k] = 0
				}
			}
		}
		out[i] = h
		act = h
	}
	return out
}

// PredictBatch runs the standout expectation network: each hidden
// activation is scaled by its keep probability, a = π(z) ⊙ f(z), the
// Ba-Frey test-time rule. Trainers and evaluators should prefer this
// over the plain network forward.
func (a *AdaptiveDropout) PredictBatch(x *tensor.Matrix) []int {
	layers := a.net.Layers
	last := len(layers) - 1
	act := x
	for i, l := range layers {
		z := tensor.MatMul(act, l.W)
		z.AddRowVector(l.B)
		out := l.Act.Forward(z)
		if i != last {
			for k, zv := range z.Data {
				out.Data[k] *= a.keepProb(zv)
			}
		}
		act = out
	}
	return a.net.Head.Predictions(act)
}
