package core

import (
	"math"
	"testing"

	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// With K at least as large as every sampled dimension, the Eq. 7
// probabilities are all 1 and MC-approx must take exactly the same step
// as Standard on an identical network.
func TestMCWithLargeKEqualsStandard(t *testing.T) {
	x, y := separableTask(1, 12, 6, 3)
	netA := mlp(t, 2, 6, 10, 3)
	netB := netA.Clone()

	std := NewStandard(netA, opt.NewSGD(0.1))
	mc := NewMCApprox(netB, opt.NewSGD(0.1), MCConfig{K: 100, Where: MCBackward}, rng.New(3))

	lossA := std.Step(x, y)
	lossB := mc.Step(x, y)
	if math.Abs(lossA-lossB) > 1e-12 {
		t.Fatalf("losses differ: %v vs %v", lossA, lossB)
	}
	for i := range netA.Layers {
		if !tensor.EqualApprox(netA.Layers[i].W, netB.Layers[i].W, 1e-10) {
			t.Fatalf("layer %d weights diverged", i)
		}
		for j := range netA.Layers[i].B {
			if math.Abs(netA.Layers[i].B[j]-netB.Layers[i].B[j]) > 1e-10 {
				t.Fatalf("layer %d biases diverged", i)
			}
		}
	}
}

// The backward-only estimator must be unbiased: averaging the gradW
// estimate over many trials approaches the exact gradient.
func TestMCGradientUnbiased(t *testing.T) {
	x, y := separableTask(4, 16, 6, 3)
	net := mlp(t, 5, 6, 12, 3)
	logits := net.Forward(x)
	exact := net.Backward(logits, y)

	mc := NewMCApprox(net.Clone(), opt.NewSGD(1), MCConfig{K: 4, Where: MCBackward}, rng.New(6))
	mc.net = net // share caches with the forwarded network

	layer := net.Layers[len(net.Layers)-1]
	delta := net.Head.Delta(logits, y)
	mean := tensor.New(layer.FanIn(), layer.FanOut())
	const trials = 2000
	for i := 0; i < trials; i++ {
		g := mc.estimateGradW(layer, delta)
		tensor.AddInPlace(mean, g.W)
	}
	mean.Scale(1.0 / trials)
	exactW := exact[len(exact)-1].W
	diff := tensor.Sub(mean, exactW)
	rel := diff.FrobeniusNorm() / exactW.FrobeniusNorm()
	if rel > 0.1 {
		t.Fatalf("gradW estimator biased: rel error of mean %v", rel)
	}
}

func TestMCDeltaPrevUnbiased(t *testing.T) {
	x, y := separableTask(7, 10, 6, 3)
	net := mlp(t, 8, 6, 20, 3)
	logits := net.Forward(x)
	delta := net.Head.Delta(logits, y)
	layer := net.Layers[len(net.Layers)-1]

	exact := tensor.MatMulTransB(delta, layer.W)
	mc := NewMCApprox(net, opt.NewSGD(1), MCConfig{K: 5, Where: MCBackward}, rng.New(9))
	mean := tensor.New(delta.Rows, layer.FanIn())
	const trials = 3000
	for i := 0; i < trials; i++ {
		tensor.AddInPlace(mean, mc.estimateDeltaPrev(layer, delta))
	}
	mean.Scale(1.0 / trials)
	rel := tensor.Sub(mean, exact).FrobeniusNorm() / exact.FrobeniusNorm()
	if rel > 0.1 {
		t.Fatalf("deltaPrev estimator biased: rel error of mean %v", rel)
	}
}

func TestMCLearnsMiniBatch(t *testing.T) {
	x, y := separableTask(10, 60, 8, 4)
	net := mlp(t, 11, 8, 48, 4)
	m := NewMCApprox(net, opt.NewSGD(0.2), MCConfig{K: 10, Where: MCBackward}, rng.New(12))
	if acc := trainAndEval(t, m, x, y, 400, 20); acc < 0.9 {
		t.Fatalf("mc minibatch accuracy %v", acc)
	}
	if m.Name() != "mc" || m.Axis() != AxisRows {
		t.Fatal("identity accessors wrong")
	}
}

func TestMCForwardApproxPopulatesCaches(t *testing.T) {
	x, _ := separableTask(13, 6, 6, 3)
	net := mlp(t, 14, 6, 10, 3)
	m := NewMCApprox(net, opt.NewSGD(0.1), MCConfig{K: 3, Where: MCForward}, rng.New(15))
	logits := m.forwardApprox(x)
	if logits.Rows != 6 || logits.Cols != 3 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
	for _, l := range net.Layers {
		if l.In == nil || l.Z == nil || l.A == nil {
			t.Fatal("forwardApprox must populate caches for backprop")
		}
	}
	// With K >= width the approximate forward equals the exact forward.
	mExact := NewMCApprox(net, opt.NewSGD(0.1), MCConfig{K: 1000, Where: MCForward}, rng.New(16))
	approx := mExact.forwardApprox(x)
	if !tensor.EqualApprox(approx, net.Forward(x), 1e-10) {
		t.Fatal("forwardApprox with huge K must equal exact forward")
	}
}

func TestMCAllPlacementsTrainWithoutDivergence(t *testing.T) {
	x, y := separableTask(17, 40, 8, 4)
	for _, where := range []MCWhere{MCBackward, MCForward, MCBoth} {
		net := mlp(t, 18, 8, 24, 4)
		m := NewMCApprox(net, opt.NewSGD(0.05), MCConfig{K: 8, Where: where}, rng.New(19))
		for s := 0; s < 50; s++ {
			loss := m.Step(x, y)
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				t.Fatalf("placement %v diverged", where)
			}
		}
	}
}

func TestMCWhereString(t *testing.T) {
	if MCBackward.String() != "backward" || MCForward.String() != "forward" || MCBoth.String() != "both" {
		t.Fatal("MCWhere names wrong")
	}
	if MCWhere(9).String() == "" {
		t.Fatal("unknown placement should still render")
	}
}

func TestMCStochasticGradWIsExact(t *testing.T) {
	// Batch size 1: the batch dimension has a single pair, so the gradW
	// "estimate" must be exact — the paper's no-benefit case.
	x, y := separableTask(20, 1, 6, 3)
	net := mlp(t, 21, 6, 10, 3)
	logits := net.Forward(x)
	exact := net.Backward(logits, y)
	m := NewMCApprox(net, opt.NewSGD(1), MCConfig{K: 10, Where: MCBackward}, rng.New(22))
	delta := net.Head.Delta(logits, y)
	layer := net.Layers[len(net.Layers)-1]
	got := m.estimateGradW(layer, delta)
	if !tensor.EqualApprox(got.W, exact[len(exact)-1].W, 1e-12) {
		t.Fatal("batch-1 gradW must be exact")
	}
}

func TestMCEstimatorString(t *testing.T) {
	if MCBernoulli.String() != "bernoulli" || MCCR.String() != "cr" || MCTopK.String() != "topk" {
		t.Fatal("estimator names wrong")
	}
	if MCEstimator(9).String() == "" {
		t.Fatal("unknown estimator should render")
	}
}

// The CR estimator must also be unbiased for the backward products.
func TestMCCREstimatorUnbiased(t *testing.T) {
	x, y := separableTask(30, 10, 6, 3)
	net := mlp(t, 31, 6, 20, 3)
	logits := net.Forward(x)
	delta := net.Head.Delta(logits, y)
	layer := net.Layers[len(net.Layers)-1]
	exact := tensor.MatMulTransB(delta, layer.W)

	m := NewMCApprox(net, opt.NewSGD(1), MCConfig{K: 5, Where: MCBackward, Estimator: MCCR}, rng.New(32))
	mean := tensor.New(delta.Rows, layer.FanIn())
	const trials = 3000
	for i := 0; i < trials; i++ {
		tensor.AddInPlace(mean, m.estimateDeltaPrev(layer, delta))
	}
	mean.Scale(1.0 / trials)
	rel := tensor.Sub(mean, exact).FrobeniusNorm() / exact.FrobeniusNorm()
	if rel > 0.1 {
		t.Fatalf("CR deltaPrev estimator biased: %v", rel)
	}
}

// Top-k is deterministic: identical draws every step.
func TestMCTopKDeterministic(t *testing.T) {
	x, y := separableTask(33, 8, 6, 3)
	net := mlp(t, 34, 6, 20, 3)
	logits := net.Forward(x)
	delta := net.Head.Delta(logits, y)
	layer := net.Layers[len(net.Layers)-1]
	m := NewMCApprox(net, opt.NewSGD(1), MCConfig{K: 5, Estimator: MCTopK}, rng.New(35))
	a := m.estimateDeltaPrev(layer, delta)
	b := m.estimateDeltaPrev(layer, delta)
	if !tensor.Equal(a, b) {
		t.Fatal("top-k estimator must be deterministic")
	}
}

// All estimators train a separable task without divergence.
func TestMCAllEstimatorsTrain(t *testing.T) {
	x, y := separableTask(36, 40, 8, 4)
	for _, est := range []MCEstimator{MCBernoulli, MCCR, MCTopK} {
		net := mlp(t, 37, 8, 32, 4)
		m := NewMCApprox(net, opt.NewSGD(0.1), MCConfig{K: 8, Estimator: est}, rng.New(38))
		if acc := trainAndEval(t, m, x, y, 300, 10); acc < 0.8 {
			t.Fatalf("estimator %v: accuracy %v", est, acc)
		}
	}
}
