package core

import (
	"math"
	"testing"

	"samplednn/internal/nn"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func randInput(seed uint64, rows, cols int) *tensor.Matrix {
	g := rng.New(seed)
	m := tensor.New(rows, cols)
	g.GaussianSlice(m.Data, 0, 1)
	return m
}

func allCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// With every column active and scale 1, the sparse kernels must agree
// exactly with the dense layer forward/backward.
func TestActiveKernelsMatchDenseOnFullSet(t *testing.T) {
	g := rng.New(1)
	l := nn.NewLayer(6, 5, nn.Tanh{}, nn.InitHe, g)
	x := randInput(2, 4, 6)

	st := &activeState{cols: allCols(5)}
	aSparse := forwardActive(l, x, st, 1)
	aDense := l.Forward(x)
	if !tensor.EqualApprox(aSparse, aDense, 1e-12) {
		t.Fatal("sparse forward != dense forward on full active set")
	}

	dA := randInput(3, 4, 5)
	gw, gb, dPrev := backwardActive(l, dA.Clone(), st, 1)

	// Dense reference: delta = dA ⊙ f'(z), grads from layer.Backward.
	deriv := l.Act.Derivative(l.Z, l.A)
	delta := tensor.Hadamard(dA, deriv)
	denseGrads, densePrev := l.Backward(delta)

	if !tensor.EqualApprox(gw, denseGrads.W, 1e-12) {
		t.Fatal("sparse gradW != dense gradW")
	}
	for i := range gb {
		if math.Abs(gb[i]-denseGrads.B[i]) > 1e-12 {
			t.Fatal("sparse gradB != dense gradB")
		}
	}
	if !tensor.EqualApprox(dPrev, densePrev, 1e-12) {
		t.Fatal("sparse deltaPrev != dense deltaPrev")
	}
}

func TestForwardActiveZeroesInactive(t *testing.T) {
	g := rng.New(3)
	l := nn.NewLayer(4, 6, nn.Sigmoid{}, nn.InitHe, g)
	x := randInput(4, 3, 4)
	st := &activeState{cols: []int{1, 4}}
	a := forwardActive(l, x, st, 1)
	dense := l.Forward(x)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if j == 1 || j == 4 {
				if math.Abs(a.At(i, j)-dense.At(i, j)) > 1e-12 {
					t.Fatalf("active col %d differs from dense", j)
				}
			} else if a.At(i, j) != 0 {
				t.Fatalf("inactive col %d is %v, want 0 (even for sigmoid)", j, a.At(i, j))
			}
		}
	}
}

func TestForwardActiveScale(t *testing.T) {
	g := rng.New(4)
	l := nn.NewLayer(3, 3, nn.Identity{}, nn.InitHe, g)
	x := randInput(5, 2, 3)
	st1 := &activeState{cols: allCols(3)}
	a1 := forwardActive(l, x, st1, 1).Clone()
	st2 := &activeState{cols: allCols(3)}
	a2 := forwardActive(l, x, st2, 2)
	a1.Scale(2)
	if !tensor.EqualApprox(a1, a2, 1e-12) {
		t.Fatal("scale not applied")
	}
}

func TestScatterGradsAndClear(t *testing.T) {
	g := rng.New(5)
	l := nn.NewLayer(3, 4, nn.ReLU{}, nn.InitHe, g)
	cols := []int{0, 2}
	gws := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	gbs := []float64{7, 8}
	grads := scatterGrads(l, gws, gbs, cols, nn.Grads{})
	if grads.W.At(0, 0) != 1 || grads.W.At(0, 2) != 2 || grads.W.At(2, 2) != 6 {
		t.Fatalf("scatter wrong: %v", grads.W)
	}
	if grads.W.At(0, 1) != 0 || grads.W.At(0, 3) != 0 {
		t.Fatal("inactive columns must stay zero")
	}
	if grads.B[0] != 7 || grads.B[2] != 8 || grads.B[1] != 0 {
		t.Fatalf("bias scatter wrong: %v", grads.B)
	}
	clearGradCols(grads, cols)
	if grads.W.FrobeniusNorm() != 0 || grads.B[0] != 0 || grads.B[2] != 0 {
		t.Fatal("clear failed")
	}
}

func TestGatherHelpers(t *testing.T) {
	w := tensor.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	sub := gatherColsT(w, []int{2, 0}, nil)
	if sub.Rows != 2 || sub.Cols != 2 {
		t.Fatal("gather shape")
	}
	if sub.At(0, 0) != 3 || sub.At(0, 1) != 6 || sub.At(1, 0) != 1 {
		t.Fatalf("gather values: %v", sub)
	}
	v := gatherVec([]float64{10, 20, 30}, []int{1, 2}, nil)
	if v[0] != 20 || v[1] != 30 {
		t.Fatalf("gatherVec: %v", v)
	}
}

func TestScatterColsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	scatterCols(tensor.New(2, 4), tensor.New(2, 3), []int{0, 1})
}
