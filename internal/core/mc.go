package core

import (
	"fmt"
	"sort"
	"time"

	"samplednn/internal/approxmm"
	"samplednn/internal/nn"
	"samplednn/internal/obs/trace"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// MCWhere selects which passes MC-approx approximates. The paper's
// evaluated configuration is backward-only (§10.1): Adelman et al. found
// feedforward approximation fails in practice for MLPs, so approximation
// is applied to the two backpropagation products per layer.
type MCWhere int

// Approximation placements.
const (
	// MCBackward approximates only backpropagation (the paper's MC-approx).
	MCBackward MCWhere = iota
	// MCForward approximates only the feedforward pass — the variant the
	// §7/§10.1 analysis predicts will fail; kept for the ablation.
	MCForward
	// MCBoth approximates both passes — biased per Adelman et al.
	MCBoth
)

// String names the placement.
func (w MCWhere) String() string {
	switch w {
	case MCBackward:
		return "backward"
	case MCForward:
		return "forward"
	case MCBoth:
		return "both"
	}
	return fmt.Sprintf("MCWhere(%d)", int(w))
}

// MCEstimator selects how column-row pairs are drawn, mirroring the
// approxmm estimators: the paper's MC-approx uses the Adelman Bernoulli
// scheme (§6.2), the Drineas CR scheme (§6.1) is its predecessor, and
// deterministic top-k is the biased low-variance alternative.
type MCEstimator int

// Supported estimators.
const (
	// MCBernoulli keeps pair i with probability p_i = min(k·w_i/Σw, 1),
	// scaled by 1/p_i (Eq. 7) — the paper's configuration.
	MCBernoulli MCEstimator = iota
	// MCCR draws k pairs i.i.d. with probability w_i/Σw, each scaled by
	// 1/(k·p_i) (Eq. 6).
	MCCR
	// MCTopK keeps the k heaviest pairs unscaled (biased).
	MCTopK
)

// String names the estimator.
func (e MCEstimator) String() string {
	switch e {
	case MCBernoulli:
		return "bernoulli"
	case MCCR:
		return "cr"
	case MCTopK:
		return "topk"
	}
	return fmt.Sprintf("MCEstimator(%d)", int(e))
}

// MCConfig tunes the Monte-Carlo trainer.
type MCConfig struct {
	// K is the column-row sample count per approximated product
	// (paper default: 10, with batch size 20).
	K int
	// Where selects the approximated passes; default MCBackward.
	Where MCWhere
	// Estimator selects the sampling scheme; default MCBernoulli.
	Estimator MCEstimator
}

// MCApprox is the Adelman et al. trainer (§6.2, MC-approx in the paper):
// matrix products are estimated by sampling column-row pairs with the
// Eq. 7 probabilities p_i ∝ ||A[:,i]||·||B[i,:]|| and rescaling survivors
// by 1/p_i, which keeps the gradient estimate unbiased.
//
// In the default backward-only placement each layer approximates
//
//	∂L/∂a_prev = delta · Wᵀ   — sampling over the layer's nodes, and
//	∂L/∂W      = aᵀ · delta   — sampling over the batch dimension,
//
// which is why the method needs a real mini-batch: with batch size 1 the
// second product has a single column-row pair, so sampling degenerates
// while the probability computation still pays a full pass over W — the
// §9.3 finding that MC-approxS is slower than StandardS.
type MCApprox struct {
	net    *nn.Network
	optim  opt.Optimizer
	cfg    MCConfig
	g      *rng.RNG
	timing Timing
}

// NewMCApprox wraps net in Monte-Carlo approximate training.
func NewMCApprox(net *nn.Network, optim opt.Optimizer, cfg MCConfig, g *rng.RNG) *MCApprox {
	if net == nil || optim == nil || g == nil {
		panic("core: MCApprox needs a network, optimizer, and RNG")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	return &MCApprox{net: net, optim: optim, cfg: cfg, g: g}
}

// Name returns "mc".
func (m *MCApprox) Name() string { return "mc" }

// Axis returns AxisRows: MC-approx samples nodes of the previous layer.
func (m *MCApprox) Axis() Axis { return AxisRows }

// Net returns the wrapped network.
func (m *MCApprox) Net() *nn.Network { return m.net }

// Timing returns the cumulative phase timings.
func (m *MCApprox) Timing() Timing { return m.timing }

// ResetTiming zeroes the timings.
func (m *MCApprox) ResetTiming() { m.timing = Timing{} }

// Step performs one MC-approximated training pass.
func (m *MCApprox) Step(x *tensor.Matrix, y []int) float64 {
	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	var logits *tensor.Matrix
	if m.cfg.Where == MCForward || m.cfg.Where == MCBoth {
		logits = m.forwardApprox(x)
	} else {
		logits = m.net.Forward(x)
	}
	loss := m.net.Head.Loss(logits, y)
	t1 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	if m.cfg.Where == MCForward {
		// Exact backpropagation through the approximate forward caches.
		grads := m.net.Backward(logits, y)
		for i, l := range m.net.Layers {
			m.optim.Step(i, l.W, l.B, grads[i])
		}
	} else {
		m.backwardApprox(logits, y)
	}
	t2 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	m.timing.Forward += t1.Sub(t0)
	m.timing.Backward += t2.Sub(t1)
	return loss
}

// forwardApprox estimates each layer's z = a·W + b by sampling the inner
// dimension (the previous layer's nodes), then applies the activation
// exactly. Layer caches are populated with the approximate values, which
// is precisely the error-compounding mechanism Theorem 7.2 analyzes.
func (m *MCApprox) forwardApprox(x *tensor.Matrix) *tensor.Matrix {
	a := x
	for _, l := range m.net.Layers {
		l.In = a
		l.Z = m.estimateProduct(a, l.W, m.g)
		l.Z.AddRowVector(l.B)
		l.A = l.Act.Forward(l.Z)
		a = l.A
	}
	return a
}

// ApproxForward estimates every layer's product by column-row sampling
// drawn from g, without writing the layer caches. For the paper's
// backward-only MC-approx this is a counterfactual: the probe uses it to
// show what feedforward error the estimator *would* compound (the §10.1
// rationale for keeping the forward pass exact), while the MCForward and
// MCBoth ablations actually train through it.
func (m *MCApprox) ApproxForward(x *tensor.Matrix, g *rng.RNG) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(m.net.Layers))
	act := x
	for i, l := range m.net.Layers {
		z := m.estimateProduct(act, l.W, g)
		z.AddRowVector(l.B)
		act = l.Act.Forward(z)
		out[i] = act
	}
	return out
}

// samplePairs draws shared-dimension indices and their rescaling factors
// according to the configured estimator, using g for randomness. Indices
// may repeat only in the scales (duplicate CR draws are merged). The RNG
// is an explicit parameter so diagnostic passes (the error-compounding
// probe) can sample without perturbing the training stream.
func (m *MCApprox) samplePairs(w []float64, k int, g *rng.RNG) (idx []int, scales []float64) {
	switch m.cfg.Estimator {
	case MCCR:
		table, err := rng.NewAlias(w)
		if err != nil {
			return nil, nil // all-zero signal: the product is zero
		}
		agg := make(map[int]float64, k)
		inv := 1 / float64(k)
		for t := 0; t < k; t++ {
			i := table.Draw(g)
			agg[i] += inv / table.Prob(i)
		}
		for i, s := range agg {
			idx = append(idx, i)
			scales = append(scales, s)
		}
		return idx, scales
	case MCTopK:
		order := make([]int, len(w))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool { return w[order[x]] > w[order[y]] })
		if k > len(order) {
			k = len(order)
		}
		idx = order[:k]
		scales = make([]float64, k)
		for i := range scales {
			scales[i] = 1
		}
		return idx, scales
	default: // MCBernoulli
		p := approxmm.KeepProbabilities(w, k)
		for i, pi := range p {
			if pi <= 0 {
				continue
			}
			if pi >= 1 || g.Bernoulli(pi) {
				idx = append(idx, i)
				scales = append(scales, 1/pi)
			}
		}
		return idx, scales
	}
}

// estimateProduct returns the sampled estimate of a·b over their shared
// dimension, drawing the sample from g.
func (m *MCApprox) estimateProduct(a, b *tensor.Matrix, g *rng.RNG) *tensor.Matrix {
	defer trace.Active().Begin("amm", "product").WithArg("k", int64(m.cfg.K)).End()
	// Pair weights over the shared dimension.
	ca := a.ColNorms()
	rb := b.RowNorms()
	w := make([]float64, len(ca))
	for i := range w {
		w[i] = ca[i] * rb[i]
	}
	idx, scales := m.samplePairs(w, m.cfg.K, g)
	out := tensor.New(a.Rows, b.Cols)
	for s, i := range idx {
		scale := scales[s]
		brow := b.RowView(i)
		for r := 0; r < a.Rows; r++ {
			av := a.Data[r*a.Cols+i] * scale
			if av != 0 { //lint:ignore float-equality structural-zero skip pinned by estimator semantics; compares exact zeros, not rounded values
				tensor.Axpy(av, brow, out.RowView(r))
			}
		}
	}
	return out
}

// backwardApprox runs backpropagation with both per-layer products
// estimated by column-row sampling.
func (m *MCApprox) backwardApprox(logits *tensor.Matrix, y []int) {
	layers := m.net.Layers
	delta := m.net.Head.Delta(logits, y)
	for i := len(layers) - 1; i >= 0; i-- {
		l := layers[i]
		grads := m.estimateGradW(l, delta)
		var dPrev *tensor.Matrix
		if i > 0 {
			dPrev = m.estimateDeltaPrev(l, delta)
		}
		m.optim.Step(i, l.W, l.B, grads)
		if i > 0 {
			below := layers[i-1]
			delta = applyDerivative(below, dPrev)
		}
	}
}

// estimateGradW estimates ∂L/∂W = Inᵀ·delta by sampling the batch
// dimension: pair weights are ||In_row_i||·||delta_row_i||. With batch
// size ≤ K the estimate is exact (every pair kept), reproducing the
// paper's observation that the stochastic setting gets no benefit here.
func (m *MCApprox) estimateGradW(l *nn.Layer, delta *tensor.Matrix) nn.Grads {
	defer trace.Active().Begin("amm", "grad-w").WithArg("k", int64(m.cfg.K)).End()
	batch := delta.Rows
	w := make([]float64, batch)
	for i := 0; i < batch; i++ {
		w[i] = tensor.Norm(l.In.RowView(i)) * tensor.Norm(delta.RowView(i))
	}
	idx, scales := m.samplePairs(w, m.cfg.K, m.g)
	gw := tensor.New(l.FanIn(), l.FanOut())
	gb := make([]float64, l.FanOut())
	for s, i := range idx {
		scale := scales[s]
		inRow := l.In.RowView(i)
		dRow := delta.RowView(i)
		for r, av := range inRow {
			if av != 0 { //lint:ignore float-equality structural-zero skip pinned by estimator semantics; compares exact zeros, not rounded values
				tensor.Axpy(av*scale, dRow, gw.RowView(r))
			}
		}
		tensor.Axpy(scale, dRow, gb)
	}
	return nn.Grads{W: gw, B: gb}
}

// estimateDeltaPrev estimates ∂L/∂a_prev = delta·Wᵀ by sampling this
// layer's nodes: pair weights are ||delta[:,j]||·||W[:,j]||. Computing
// the W column norms costs a full pass over W per step — the fixed
// overhead that dominates when the batch is small (§9.3).
func (m *MCApprox) estimateDeltaPrev(l *nn.Layer, delta *tensor.Matrix) *tensor.Matrix {
	defer trace.Active().Begin("amm", "grad-prev").WithArg("k", int64(m.cfg.K)).End()
	cd := delta.ColNorms()
	cw := l.W.ColNorms()
	w := make([]float64, len(cd))
	for j := range w {
		w[j] = cd[j] * cw[j]
	}
	idx, scales := m.samplePairs(w, m.cfg.K, m.g)
	out := tensor.New(delta.Rows, l.FanIn())
	col := make([]float64, l.FanIn())
	for s, j := range idx {
		scale := scales[s]
		// col = W[:,j]; out_row_i += delta[i][j]·scale · col.
		for i := 0; i < l.FanIn(); i++ {
			col[i] = l.W.Data[i*l.W.Cols+j]
		}
		for i := 0; i < delta.Rows; i++ {
			dv := delta.Data[i*delta.Cols+j] * scale
			if dv != 0 { //lint:ignore float-equality structural-zero skip pinned by estimator semantics; compares exact zeros, not rounded values
				tensor.Axpy(dv, col, out.RowView(i))
			}
		}
	}
	return out
}
