package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestParallelALSHValidation(t *testing.T) {
	net := mlp(t, 1, 6, 16, 3)
	if _, err := NewParallelALSH(net, opt.NewAdam(0.01), ALSHConfig{Params: lshParamsForTest()}, 0, rng.New(2)); err == nil {
		t.Fatal("zero workers must error")
	}
}

func TestParallelALSHLearns(t *testing.T) {
	x, y := separableTask(3, 60, 8, 4)
	net := mlp(t, 4, 8, 64, 4)
	m, err := NewParallelALSH(net, opt.NewAdam(0.01), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 8,
	}, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "alsh-parallel" || m.Axis() != AxisColumns {
		t.Fatal("identity accessors wrong")
	}
	if acc := trainAndEval(t, m, x, y, 300, 4); acc < 0.75 {
		t.Fatalf("parallel alsh accuracy %v", acc)
	}
}

func TestParallelALSHMatchesSequentialStructure(t *testing.T) {
	// With one worker and batch rows processed sequentially, the
	// parallel trainer must produce finite losses and touch only active
	// columns, like the sequential trainer.
	x, y := separableTask(6, 12, 6, 3)
	net := mlp(t, 7, 6, 20, 3)
	before := net.Layers[0].W.Clone()
	m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 3,
	}, 1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	loss := m.Step(x, y)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss %v", loss)
	}
	// Some columns changed; count them.
	changed := 0
	for j := 0; j < 20; j++ {
		c0 := before.Col(j, nil)
		c1 := net.Layers[0].W.Col(j, nil)
		for i := range c0 {
			if c0[i] != c1[i] {
				changed++
				break
			}
		}
	}
	if changed == 0 || changed == 20 {
		t.Fatalf("expected sparse column updates, got %d/20 changed", changed)
	}
}

func TestParallelALSHWorkerCountInvariance(t *testing.T) {
	// The merge is order-independent (sum of per-sample gradients), so
	// 1 worker vs 4 workers must give identical updates when the workers'
	// active sets are identical. Force identical active sets by using a
	// MinActive equal to the layer width (every node active).
	x, y := separableTask(9, 8, 6, 3)
	mk := func(workers int) *tensor.Matrix {
		net := mlp(t, 10, 6, 12, 3)
		m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
			Params: lshParamsForTest(), MinActive: 12,
		}, workers, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		m.Step(x, y)
		return net.Layers[0].W.Clone()
	}
	w1 := mk(1)
	w4 := mk(4)
	if !tensor.EqualApprox(w1, w4, 1e-9) {
		t.Fatal("full-active parallel step must be worker-count invariant")
	}
}

func TestPadActive(t *testing.T) {
	g := rng.New(12)
	// Pads to the floor with distinct nodes.
	out := padActive([]int{2}, 10, 4, 0, g)
	if len(out) < 4 {
		t.Fatalf("floor violated: %v", out)
	}
	seen := map[int]bool{}
	for _, c := range out {
		if seen[c] {
			t.Fatalf("duplicates: %v", out)
		}
		seen[c] = true
	}
	// Caps at maxFrac.
	many := make([]int, 10)
	for i := range many {
		many[i] = i
	}
	out = padActive(many, 10, 2, 0.3, g)
	if len(out) != 3 {
		t.Fatalf("cap violated: %v", out)
	}
	// Does not mutate the input.
	if many[0] != 0 || many[9] != 9 {
		t.Fatal("padActive must not mutate its input")
	}
}

func TestParallelALSHWorkerPanicSurfacesAsError(t *testing.T) {
	x, y := separableTask(13, 12, 6, 3)
	net := mlp(t, 14, 6, 20, 3)
	m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 3,
	}, 3, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	before := net.Layers[0].W.Clone()
	m.sampleHook = func(i int) {
		if i == 7 {
			panic("injected worker fault")
		}
	}
	_, err = m.TryStep(x, y)
	if err == nil {
		t.Fatal("worker panic must surface as an error")
	}
	if !strings.Contains(err.Error(), "injected worker fault") || !strings.Contains(err.Error(), "sample 7") {
		t.Fatalf("error lacks panic context: %v", err)
	}
	// The failed batch must not have been applied.
	if !tensor.EqualApprox(before, net.Layers[0].W, 0) {
		t.Fatal("weights changed despite failed batch")
	}
	// The pool must not deadlock or stay poisoned: clearing the hook and
	// stepping again succeeds.
	m.sampleHook = nil
	loss, err := m.TryStep(x, y)
	if err != nil {
		t.Fatalf("pool poisoned after recovered panic: %v", err)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss %v after recovery", loss)
	}
	if m.LastErr() != nil {
		t.Fatalf("stale error: %v", m.LastErr())
	}
}

func TestParallelALSHStepReportsPanicAsNaN(t *testing.T) {
	x, y := separableTask(16, 6, 6, 3)
	net := mlp(t, 17, 6, 16, 3)
	m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 3,
	}, 2, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	m.sampleHook = func(int) { panic("boom") }
	if loss := m.Step(x, y); !math.IsNaN(loss) {
		t.Fatalf("Step after worker panic returned %v, want NaN", loss)
	}
	if m.LastErr() == nil {
		t.Fatal("LastErr must report the recovered panic")
	}
}

func TestParallelALSHEveryWorkerPanics(t *testing.T) {
	// All samples panic: the pool must still drain and terminate.
	x, y := separableTask(19, 16, 6, 3)
	net := mlp(t, 20, 6, 16, 3)
	m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 3,
	}, 4, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	m.sampleHook = func(int) { panic("total failure") }
	done := make(chan struct{})
	go func() {
		_, err := m.TryStep(x, y)
		if err == nil {
			t.Error("expected error")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool deadlocked")
	}
}

func TestParallelALSHMergeScratchIsReset(t *testing.T) {
	// The reused seen/outW/outB merge scratch must leave no residue
	// between batches: two fresh trainers stepping the same data must
	// stay bit-identical across many steps, and a single trainer's
	// repeated steps must keep producing finite losses.
	x, y := separableTask(22, 10, 6, 3)
	mk := func() (*ParallelALSH, *nn.Network) {
		net := mlp(t, 23, 6, 18, 3)
		// One worker: the sample-to-worker assignment (and thus every
		// RNG draw and float summation order) is fully deterministic.
		m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
			Params: lshParamsForTest(), MinActive: 18,
		}, 1, rng.New(24))
		if err != nil {
			t.Fatal(err)
		}
		return m, net
	}
	m1, net1 := mk()
	m2, net2 := mk()
	for s := 0; s < 5; s++ {
		l1 := m1.Step(x, y)
		l2 := m2.Step(x, y)
		if l1 != l2 {
			t.Fatalf("step %d: losses diverged %v vs %v", s, l1, l2)
		}
		if math.IsNaN(l1) || math.IsInf(l1, 0) {
			t.Fatalf("step %d: loss %v", s, l1)
		}
	}
	for i := range net1.Layers {
		if !tensor.EqualApprox(net1.Layers[i].W, net2.Layers[i].W, 0) {
			t.Fatalf("layer %d weights diverged", i)
		}
	}
	// Seen flags were all cleared back to false.
	for li, seen := range m1.seenBuf {
		for c, v := range seen {
			if v {
				t.Fatalf("layer %d column %d left marked in seen scratch", li, c)
			}
		}
	}
}

func TestParallelALSHStateRoundTrip(t *testing.T) {
	x, y := separableTask(25, 8, 6, 3)
	net := mlp(t, 26, 6, 16, 3)
	m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 4,
	}, 2, rng.New(27))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(x, y)
	var buf bytes.Buffer
	if err := m.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// A twin constructed identically accepts the state.
	net2 := mlp(t, 26, 6, 16, 3)
	m2, err := NewParallelALSH(net2, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 4,
	}, 2, rng.New(27))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m2.samples != m.samples || m2.lastUpd != m.lastUpd {
		t.Fatalf("counters not restored: %d/%d vs %d/%d", m2.samples, m2.lastUpd, m.samples, m.lastUpd)
	}
	// A worker-count mismatch is rejected.
	m3, err := NewParallelALSH(mlp(t, 26, 6, 16, 3), opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 4,
	}, 3, rng.New(27))
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("worker-count mismatch must be rejected")
	}
}
