package core

import (
	"math"
	"testing"

	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestParallelALSHValidation(t *testing.T) {
	net := mlp(t, 1, 6, 16, 3)
	if _, err := NewParallelALSH(net, opt.NewAdam(0.01), ALSHConfig{Params: lshParamsForTest()}, 0, rng.New(2)); err == nil {
		t.Fatal("zero workers must error")
	}
}

func TestParallelALSHLearns(t *testing.T) {
	x, y := separableTask(3, 60, 8, 4)
	net := mlp(t, 4, 8, 64, 4)
	m, err := NewParallelALSH(net, opt.NewAdam(0.01), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 8,
	}, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "alsh-parallel" || m.Axis() != AxisColumns {
		t.Fatal("identity accessors wrong")
	}
	if acc := trainAndEval(t, m, x, y, 300, 4); acc < 0.75 {
		t.Fatalf("parallel alsh accuracy %v", acc)
	}
}

func TestParallelALSHMatchesSequentialStructure(t *testing.T) {
	// With one worker and batch rows processed sequentially, the
	// parallel trainer must produce finite losses and touch only active
	// columns, like the sequential trainer.
	x, y := separableTask(6, 12, 6, 3)
	net := mlp(t, 7, 6, 20, 3)
	before := net.Layers[0].W.Clone()
	m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 3,
	}, 1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	loss := m.Step(x, y)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss %v", loss)
	}
	// Some columns changed; count them.
	changed := 0
	for j := 0; j < 20; j++ {
		c0 := before.Col(j, nil)
		c1 := net.Layers[0].W.Col(j, nil)
		for i := range c0 {
			if c0[i] != c1[i] {
				changed++
				break
			}
		}
	}
	if changed == 0 || changed == 20 {
		t.Fatalf("expected sparse column updates, got %d/20 changed", changed)
	}
}

func TestParallelALSHWorkerCountInvariance(t *testing.T) {
	// The merge is order-independent (sum of per-sample gradients), so
	// 1 worker vs 4 workers must give identical updates when the workers'
	// active sets are identical. Force identical active sets by using a
	// MinActive equal to the layer width (every node active).
	x, y := separableTask(9, 8, 6, 3)
	mk := func(workers int) *tensor.Matrix {
		net := mlp(t, 10, 6, 12, 3)
		m, err := NewParallelALSH(net, opt.NewSGD(0.1), ALSHConfig{
			Params: lshParamsForTest(), MinActive: 12,
		}, workers, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		m.Step(x, y)
		return net.Layers[0].W.Clone()
	}
	w1 := mk(1)
	w4 := mk(4)
	if !tensor.EqualApprox(w1, w4, 1e-9) {
		t.Fatal("full-active parallel step must be worker-count invariant")
	}
}

func TestPadActive(t *testing.T) {
	g := rng.New(12)
	// Pads to the floor with distinct nodes.
	out := padActive([]int{2}, 10, 4, 0, g)
	if len(out) < 4 {
		t.Fatalf("floor violated: %v", out)
	}
	seen := map[int]bool{}
	for _, c := range out {
		if seen[c] {
			t.Fatalf("duplicates: %v", out)
		}
		seen[c] = true
	}
	// Caps at maxFrac.
	many := make([]int, 10)
	for i := range many {
		many[i] = i
	}
	out = padActive(many, 10, 2, 0.3, g)
	if len(out) != 3 {
		t.Fatalf("cap violated: %v", out)
	}
	// Does not mutate the input.
	if many[0] != 0 || many[9] != 9 {
		t.Fatal("padActive must not mutate its input")
	}
}
