package core

import (
	"fmt"
	"runtime"

	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
)

// Options collects the per-method hyperparameters with the paper's
// defaults (§8.4).
type Options struct {
	// Seed drives every method-internal random choice.
	Seed uint64
	// DropoutKeep is the keep probability for Dropout and the base keep
	// rate for Adaptive-Dropout (paper: 0.05 to match ALSH's active
	// fraction).
	DropoutKeep float64
	// StandoutAlpha scales the standout sigmoid (default 4: strong
	// pre-activations must be able to raise their keep probability well
	// above the 5% base rate, which is what separates Adaptive-Dropout
	// from plain Dropout in Table 2).
	StandoutAlpha float64
	// ALSH configures the hash-based sampler.
	ALSH ALSHConfig
	// MC configures the Monte-Carlo sampler.
	MC MCConfig
	// Workers sets the goroutine count for "alsh-parallel"
	// (default: one per CPU).
	Workers int
}

// DefaultOptions returns the paper's §8.4 configuration.
func DefaultOptions(seed uint64) Options {
	return Options{
		Seed:          seed,
		DropoutKeep:   0.05,
		StandoutAlpha: 4,
		MC:            MCConfig{K: 10, Where: MCBackward},
	}
}

// MethodNames lists the five methods in the paper's presentation order.
func MethodNames() []string {
	return []string{"standard", "dropout", "adaptive-dropout", "alsh", "mc"}
}

// New constructs a training method by name over the given network and
// optimizer.
func New(name string, net *nn.Network, optim opt.Optimizer, o Options) (Method, error) {
	if o.DropoutKeep == 0 { //lint:ignore float-equality zero value marks an unset option; exact sentinel, never a computed result
		o.DropoutKeep = 0.05
	}
	if o.StandoutAlpha == 0 { //lint:ignore float-equality zero value marks an unset option; exact sentinel, never a computed result
		o.StandoutAlpha = 4
	}
	g := rng.New(o.Seed ^ 0xa5a5a5a5)
	switch name {
	case "standard":
		return NewStandard(net, optim), nil
	case "dropout":
		return NewDropout(net, optim, o.DropoutKeep, g), nil
	case "adaptive-dropout":
		return NewAdaptiveDropout(net, optim, o.StandoutAlpha, o.DropoutKeep, g), nil
	case "alsh":
		return NewALSHApprox(net, optim, o.ALSH, g)
	case "alsh-parallel":
		workers := o.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		return NewParallelALSH(net, optim, o.ALSH, workers, g)
	case "mc":
		return NewMCApprox(net, optim, o.MC, g), nil
	}
	return nil, fmt.Errorf("core: unknown method %q (want one of %v)", name, MethodNames())
}
