package core

import (
	"testing"
	"time"

	"samplednn/internal/opt"
)

func TestFactoryBuildsEveryMethod(t *testing.T) {
	for _, name := range MethodNames() {
		net := mlp(t, 1, 6, 16, 3)
		m, err := New(name, net, opt.NewSGD(0.01), DefaultOptions(42))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, m.Name())
		}
		if m.Net() != net {
			t.Fatalf("%s does not wrap the given network", name)
		}
	}
	if _, err := New("magic", mlp(t, 2, 4, 4, 2), opt.NewSGD(0.01), DefaultOptions(1)); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestFactoryAxesMatchTaxonomy(t *testing.T) {
	want := map[string]Axis{
		"standard":         AxisNone,
		"dropout":          AxisColumns,
		"adaptive-dropout": AxisColumns,
		"alsh":             AxisColumns,
		"mc":               AxisRows,
	}
	for name, axis := range want {
		m, err := New(name, mlp(t, 3, 6, 16, 3), opt.NewSGD(0.01), DefaultOptions(7))
		if err != nil {
			t.Fatal(err)
		}
		if m.Axis() != axis {
			t.Fatalf("%s axis = %v, want %v", name, m.Axis(), axis)
		}
	}
}

func TestAxisString(t *testing.T) {
	if AxisNone.String() != "none" || AxisColumns.String() != "columns" || AxisRows.String() != "rows" {
		t.Fatal("axis names wrong")
	}
	if Axis(9).String() == "" {
		t.Fatal("unknown axis should render")
	}
}

func TestTimingAccumulatesAndResets(t *testing.T) {
	x, y := separableTask(4, 10, 6, 3)
	m, err := New("standard", mlp(t, 5, 6, 16, 3), opt.NewSGD(0.01), DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(x, y)
	tm := m.Timing()
	if tm.Forward <= 0 || tm.Backward <= 0 {
		t.Fatalf("timings not recorded: %+v", tm)
	}
	if tm.Total() != tm.Forward+tm.Backward+tm.Maintain {
		t.Fatal("Total inconsistent")
	}
	m.ResetTiming()
	if m.Timing().Total() != time.Duration(0) {
		t.Fatal("ResetTiming failed")
	}
}

func TestRecommendDecisionTree(t *testing.T) {
	cases := []struct {
		batch, depth int
		parallel     bool
		want         string
	}{
		{20, 3, false, "mc"},
		{20, 7, true, "mc"},
		{2, 1, false, "mc"},
		{1, 3, true, "alsh"},
		{1, 4, true, "alsh"},
		{1, 5, true, "standard"},
		{1, 3, false, "standard"},
		{1, 7, false, "standard"},
	}
	for _, c := range cases {
		got := Recommend(c.batch, c.depth, c.parallel)
		if got.Method != c.want {
			t.Fatalf("Recommend(%d, %d, %v) = %q, want %q", c.batch, c.depth, c.parallel, got.Method, c.want)
		}
		if got.Reason == "" {
			t.Fatal("recommendation must cite a reason")
		}
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions(1)
	if o.DropoutKeep != 0.05 {
		t.Fatalf("dropout keep %v, want the paper's 0.05", o.DropoutKeep)
	}
	if o.MC.K != 10 || o.MC.Where != MCBackward {
		t.Fatalf("MC defaults %+v", o.MC)
	}
}

func TestDropoutConstructorValidation(t *testing.T) {
	net := mlp(t, 6, 4, 8, 2)
	for _, p := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("keep=%v should panic", p)
				}
			}()
			NewDropout(net, opt.NewSGD(0.1), p, nil)
		}()
	}
}

func TestFactoryBuildsParallelALSH(t *testing.T) {
	net := mlp(t, 7, 6, 16, 3)
	opts := DefaultOptions(9)
	opts.ALSH.Params = lshParamsForTest()
	opts.Workers = 2
	m, err := New("alsh-parallel", net, opt.NewAdam(0.01), opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "alsh-parallel" || m.Axis() != AxisColumns {
		t.Fatal("identity accessors wrong")
	}
	x, y := separableTask(10, 6, 6, 3)
	if loss := m.Step(x, y); loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
}
