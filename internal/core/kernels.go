package core

import (
	"fmt"

	"samplednn/internal/nn"
	"samplednn/internal/tensor"
)

// This file holds the gather/compute/scatter kernels shared by every
// column-sampling method (Dropout, Adaptive-Dropout, ALSH-approx). The
// trick is standard in SLIDE-style systems: instead of running masked
// operations over the full weight matrix, the active columns are gathered
// into a compact submatrix, dense kernels run at Θ(batch·|S|·n) cost, and
// results are scattered back. That realizes the paper's claimed speedup:
// one factor of the Θ(batch·n²) layer cost drops from n to |S|.

// gatherColsT copies the selected columns of w into the rows of dst, so
// dst is |cols| x w.Rows (the transposed submatrix). dst is grown as
// needed and returned. Destination rows are sharded over the shared
// worker pool (each is an independent column copy).
func gatherColsT(w *tensor.Matrix, cols []int, dst *tensor.Matrix) *tensor.Matrix {
	if dst == nil || dst.Rows != len(cols) || dst.Cols != w.Rows {
		dst = tensor.New(len(cols), w.Rows)
	}
	// Pure copy: cost is all bandwidth (one strided read + one write per
	// element), which the Cost model weighs instead of a flop count.
	tensor.ParallelRowsCost(len(cols), tensor.Cost{Bytes: 16 * w.Rows}, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			j := cols[r]
			row := dst.RowView(r)
			for i := 0; i < w.Rows; i++ {
				row[i] = w.Data[i*w.Cols+j]
			}
		}
	})
	return dst
}

// gatherVec copies v[j] for each j in cols into dst.
func gatherVec(v []float64, cols []int, dst []float64) []float64 {
	if len(dst) != len(cols) {
		dst = make([]float64, len(cols))
	}
	for r, j := range cols {
		dst[r] = v[j]
	}
	return dst
}

// scatterCols writes the columns of compact (batch x |cols|) into the
// listed columns of full (batch x width), leaving others untouched.
func scatterCols(full, compact *tensor.Matrix, cols []int) {
	if full.Rows != compact.Rows || compact.Cols != len(cols) {
		panic(fmt.Sprintf("core: scatter %dx%d into %dx%d via %d cols",
			compact.Rows, compact.Cols, full.Rows, full.Cols, len(cols)))
	}
	tensor.ParallelRowsCost(full.Rows, tensor.Cost{Bytes: 16 * len(cols)}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := compact.RowView(i)
			frow := full.RowView(i)
			for r, j := range cols {
				frow[j] = crow[r]
			}
		}
	})
}

// activeState carries the per-layer forward caches of a column-sampled
// step, reused across steps to bound allocations.
type activeState struct {
	cols    []int          // active node set, ascending
	wsub    *tensor.Matrix // |S| x fanIn: gathered Wᵀ rows
	bsub    []float64      // |S| biases
	zsub    *tensor.Matrix // batch x |S| pre-activations
	asub    *tensor.Matrix // batch x |S| activations
	aFull   *tensor.Matrix // batch x fanOut activations, zero outside S
	in      *tensor.Matrix // cached layer input
	support []int          // scratch for the sparse-input kernel
}

// forwardActive runs the sampled feedforward of one layer: only the
// columns in st.cols are evaluated; all other activations are exactly
// zero (the sampled nodes are "active", the rest are dropped for this
// step). scale multiplies the surviving activations (inverted-dropout
// scaling; 1 for ALSH).
func forwardActive(l *nn.Layer, x *tensor.Matrix, st *activeState, scale float64) *tensor.Matrix {
	st.in = x
	st.wsub = gatherColsT(l.W, st.cols, st.wsub)
	st.bsub = gatherVec(l.B, st.cols, st.bsub)
	if st.zsub == nil || st.zsub.Rows != x.Rows || st.zsub.Cols != len(st.cols) {
		st.zsub = tensor.New(x.Rows, len(st.cols))
	}
	// The sparse-aware kernel exploits chained sampling: beyond the first
	// hidden layer, x is a previous layer's activation with every
	// inactive node exactly zero.
	st.support = tensor.MatMulTransBSparseInto(st.zsub, x, st.wsub, st.support)
	st.zsub.AddRowVector(st.bsub)
	st.asub = l.Act.Forward(st.zsub)
	if scale != 1 { //lint:ignore float-equality scale==1 is a bit-exact no-op skip; 1.0 is set literally, never computed
		st.asub.Scale(scale)
	}
	if st.aFull == nil || st.aFull.Rows != x.Rows || st.aFull.Cols != l.FanOut() {
		st.aFull = tensor.New(x.Rows, l.FanOut())
	} else {
		st.aFull.Zero()
	}
	scatterCols(st.aFull, st.asub, st.cols)
	return st.aFull
}

// backwardActive consumes dL/dA of this layer (full width; entries
// outside the active set are ignored) and produces:
//   - compact parameter gradients over the active columns (gradWsub is
//     fanIn x |S|, gradBsub is |S|),
//   - dL/dA of the previous layer (batch x fanIn, dense).
//
// scale must match the forward scaling so d(scale·f(z))/dz is applied.
func backwardActive(l *nn.Layer, dA *tensor.Matrix, st *activeState, scale float64) (gradWsub *tensor.Matrix, gradBsub []float64, dAPrev *tensor.Matrix) {
	batch := st.in.Rows
	s := len(st.cols)
	// delta_sub = dA[:, cols] ⊙ scale·f'(z_sub)
	deltaSub := tensor.New(batch, s)
	for i := 0; i < batch; i++ {
		daRow := dA.RowView(i)
		dRow := deltaSub.RowView(i)
		for r, j := range st.cols {
			dRow[r] = daRow[j]
		}
	}
	deriv := l.Act.Derivative(st.zsub, st.asub)
	if scale != 1 { //lint:ignore float-equality scale==1 is a bit-exact no-op skip; 1.0 is set literally, never computed
		deriv.Scale(scale)
	}
	tensor.HadamardInPlace(deltaSub, deriv)

	gradWsub = tensor.MatMulTransA(st.in, deltaSub) // fanIn x |S|
	gradBsub = make([]float64, s)
	tensor.ColSumsInto(gradBsub, deltaSub)
	dAPrev = tensor.MatMul(deltaSub, st.wsub) // batch x fanIn
	return gradWsub, gradBsub, dAPrev
}

// scatterGrads expands compact active-column gradients into a full-shape
// nn.Grads whose inactive columns are zero, writing into scratch (resized
// as needed) and returning it. The optimizer's StepCols then touches only
// the active columns, so the zero filler is never read.
func scatterGrads(l *nn.Layer, gradWsub *tensor.Matrix, gradBsub []float64, cols []int, scratch nn.Grads) nn.Grads {
	if scratch.W == nil || scratch.W.Rows != l.FanIn() || scratch.W.Cols != l.FanOut() {
		scratch = nn.Grads{W: tensor.New(l.FanIn(), l.FanOut()), B: make([]float64, l.FanOut())}
	}
	tensor.ParallelRowsCost(l.FanIn(), tensor.Cost{Bytes: 16 * len(cols)}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wrow := scratch.W.RowView(i)
			grow := gradWsub.RowView(i)
			for r, j := range cols {
				wrow[j] = grow[r]
			}
		}
	})
	for r, j := range cols {
		scratch.B[j] = gradBsub[r]
	}
	return scratch
}

// clearGradCols zeroes the previously written columns so the scratch can
// be reused next step.
func clearGradCols(g nn.Grads, cols []int) {
	tensor.ParallelRowsCost(g.W.Rows, tensor.Cost{Bytes: 8 * len(cols)}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := g.W.RowView(i)
			for _, j := range cols {
				row[j] = 0
			}
		}
	})
	for _, j := range cols {
		g.B[j] = 0
	}
}

// derivInto applies dL/dA ⊙ f'(z) for a dense (unsampled) layer.
func applyDerivative(l *nn.Layer, dA *tensor.Matrix) *tensor.Matrix {
	deriv := l.Act.Derivative(l.Z, l.A)
	tensor.HadamardInPlace(dA, deriv)
	return dA
}
