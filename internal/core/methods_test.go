package core

import (
	"math"
	"testing"

	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// separableTask builds a small, clearly separable classification problem.
func separableTask(seed uint64, n, dim, classes int) (*tensor.Matrix, []int) {
	g := rng.New(seed)
	x := tensor.New(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		row := x.RowView(i)
		g.GaussianSlice(row, 0, 0.25)
		row[c%dim] += 2.5
	}
	return x, y
}

// mlp builds a 2-hidden-layer test network.
func mlp(t *testing.T, seed uint64, inputs, units, outputs int) *nn.Network {
	t.Helper()
	net, err := nn.NewNetwork(nn.Uniform(inputs, units, 2, outputs), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func trainAndEval(t *testing.T, m Method, x *tensor.Matrix, y []int, steps int, batch int) float64 {
	t.Helper()
	g := rng.New(999)
	n := x.Rows
	bx := tensor.New(batch, x.Cols)
	by := make([]int, batch)
	for s := 0; s < steps; s++ {
		for i := 0; i < batch; i++ {
			j := g.IntN(n)
			copy(bx.RowView(i), x.RowView(j))
			by[i] = y[j]
		}
		loss := m.Step(bx, by)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("%s: loss diverged at step %d: %v", m.Name(), s, loss)
		}
	}
	return EvalAccuracy(m, x, y)
}

func TestStandardLearnsSeparableTask(t *testing.T) {
	x, y := separableTask(1, 60, 8, 4)
	net := mlp(t, 2, 8, 32, 4)
	m := NewStandard(net, opt.NewSGD(0.3))
	if acc := trainAndEval(t, m, x, y, 300, 10); acc < 0.95 {
		t.Fatalf("standard accuracy %v", acc)
	}
	if m.Axis() != AxisNone || m.Name() != "standard" {
		t.Fatal("identity accessors wrong")
	}
}

func TestDropoutLearnsWithModerateKeep(t *testing.T) {
	x, y := separableTask(3, 60, 8, 4)
	net := mlp(t, 4, 8, 64, 4)
	m := NewDropout(net, opt.NewSGD(0.2), 0.5, rng.New(5))
	if acc := trainAndEval(t, m, x, y, 400, 10); acc < 0.9 {
		t.Fatalf("dropout accuracy %v", acc)
	}
	if m.Axis() != AxisColumns {
		t.Fatal("dropout must sample columns")
	}
}

func TestDropoutOnlyUpdatesActiveColumns(t *testing.T) {
	net := mlp(t, 6, 8, 16, 3)
	m := NewDropout(net, opt.NewSGD(0.5), 0.3, rng.New(7))
	before := net.Layers[0].W.Clone()
	x, y := separableTask(8, 10, 8, 3)
	bx := tensor.FromSlice(1, 8, append([]float64(nil), x.RowView(0)...))
	m.Step(bx, y[:1])
	// Columns outside the last sampled active set must be untouched.
	active := map[int]bool{}
	for _, c := range m.states[0].cols {
		active[c] = true
	}
	changed := 0
	for j := 0; j < 16; j++ {
		col0 := before.Col(j, nil)
		col1 := net.Layers[0].W.Col(j, nil)
		diff := false
		for i := range col0 {
			if col0[i] != col1[i] {
				diff = true
				break
			}
		}
		if diff {
			changed++
			if !active[j] {
				t.Fatalf("inactive column %d was updated", j)
			}
		}
	}
	if changed == 0 {
		t.Fatal("no column was updated at all")
	}
}

func TestDropoutMinKeepFloor(t *testing.T) {
	net := mlp(t, 9, 4, 10, 2)
	m := NewDropout(net, opt.NewSGD(0.1), 0.0001, rng.New(10))
	m.MinKeep = 3
	cols := m.sampleCols(10)
	if len(cols) < 3 {
		t.Fatalf("MinKeep violated: %v", cols)
	}
	seen := map[int]bool{}
	for _, c := range cols {
		if seen[c] {
			t.Fatal("duplicate node in active set")
		}
		seen[c] = true
	}
}

func TestAdaptiveDropoutLearns(t *testing.T) {
	x, y := separableTask(11, 60, 8, 4)
	net := mlp(t, 12, 8, 48, 4)
	m := NewAdaptiveDropout(net, opt.NewSGD(0.2), 1, 0.5, rng.New(13))
	if acc := trainAndEval(t, m, x, y, 400, 10); acc < 0.9 {
		t.Fatalf("adaptive-dropout accuracy %v", acc)
	}
	if m.Name() != "adaptive-dropout" || m.Axis() != AxisColumns {
		t.Fatal("identity accessors wrong")
	}
}

func TestAdaptiveDropoutKeepProbTracksActivation(t *testing.T) {
	net := mlp(t, 14, 4, 8, 2)
	m := NewAdaptiveDropout(net, opt.NewSGD(0.1), 1, 0.2, rng.New(15))
	// π must be increasing in z and equal baseKeep at z = 0.
	if math.Abs(m.keepProb(0)-0.2) > 1e-9 {
		t.Fatalf("keepProb(0) = %v, want 0.2", m.keepProb(0))
	}
	if !(m.keepProb(2) > m.keepProb(0) && m.keepProb(0) > m.keepProb(-2)) {
		t.Fatal("keepProb must be monotone in z")
	}
}

func TestALSHLearnsShallow(t *testing.T) {
	x, y := separableTask(16, 60, 8, 4)
	net := mlp(t, 17, 8, 64, 4)
	m, err := NewALSHApprox(net, opt.NewAdam(0.01), ALSHConfig{
		Params:    lshParamsForTest(),
		MinActive: 8,
	}, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	if acc := trainAndEval(t, m, x, y, 400, 1); acc < 0.8 {
		t.Fatalf("alsh accuracy %v", acc)
	}
	if m.Name() != "alsh" || m.Axis() != AxisColumns {
		t.Fatal("identity accessors wrong")
	}
	if m.ActiveFraction() <= 0 || m.ActiveFraction() > 1 {
		t.Fatalf("active fraction %v", m.ActiveFraction())
	}
	if m.IndexMemory() <= 0 {
		t.Fatal("index memory should be positive")
	}
}

func TestALSHMaintainsIndexes(t *testing.T) {
	net := mlp(t, 19, 6, 32, 3)
	m, err := NewALSHApprox(net, opt.NewAdam(0.01), ALSHConfig{
		Params:            lshParamsForTest(),
		EarlyRebuildEvery: 2,
		LateRebuildEvery:  4,
		EarlyPhaseSamples: 10,
	}, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	x, y := separableTask(21, 12, 6, 3)
	bx := tensor.New(1, 6)
	for i := 0; i < 12; i++ {
		copy(bx.RowView(0), x.RowView(i))
		m.Step(bx, y[i:i+1])
	}
	if m.Timing().Maintain == 0 {
		t.Fatal("maintenance never ran")
	}
	// Touched sets should be flushed after maintenance cadence.
	total := 0
	for _, tm := range m.touched {
		if tm != nil {
			total += len(tm)
		}
	}
	if total > 3*32 {
		t.Fatalf("touched sets look unbounded: %d", total)
	}
	m.RebuildAll()
	rebuilds, _ := m.indexes[0].Stats()
	if rebuilds < 2 {
		t.Fatalf("RebuildAll did not rebuild (rebuilds=%d)", rebuilds)
	}
}

func TestALSHActiveSetRespectsFloorAndCap(t *testing.T) {
	net := mlp(t, 22, 6, 40, 3)
	m, err := NewALSHApprox(net, opt.NewAdam(0.01), ALSHConfig{
		Params:        lshParamsForTest(),
		MinActive:     5,
		MaxActiveFrac: 0.25,
	}, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(24, 1, 6)
	cols := m.activeSet(0, x)
	if len(cols) < 5 {
		t.Fatalf("floor violated: %d", len(cols))
	}
	if len(cols) > 10 { // 0.25*40
		t.Fatalf("cap violated: %d", len(cols))
	}
	seen := map[int]bool{}
	for _, c := range cols {
		if seen[c] {
			t.Fatal("duplicate in active set")
		}
		seen[c] = true
	}
}

func TestALSHBatchUnion(t *testing.T) {
	net := mlp(t, 25, 6, 40, 3)
	m, err := NewALSHApprox(net, opt.NewAdam(0.01), ALSHConfig{Params: lshParamsForTest(), MinActive: 4}, rng.New(26))
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(27, 5, 6)
	cols := m.activeSet(0, x)
	if len(cols) == 0 {
		t.Fatal("batch union empty")
	}
	seen := map[int]bool{}
	for _, c := range cols {
		if c < 0 || c >= 40 || seen[c] {
			t.Fatalf("bad active set %v", cols)
		}
		seen[c] = true
	}
}

// lshParamsForTest uses few hash bits so small test layers still get
// non-trivial buckets.
func lshParamsForTest() lsh.Params {
	return lsh.Params{K: 3, L: 4, M: 3, U: 0.83}
}

// With keep probability 1 every node is active and inverted scaling is
// 1/1, so a Dropout step must equal a Standard step exactly.
func TestDropoutKeepOneEqualsStandard(t *testing.T) {
	x, y := separableTask(30, 10, 6, 3)
	netA := mlp(t, 31, 6, 12, 3)
	netB := netA.Clone()
	std := NewStandard(netA, opt.NewSGD(0.1))
	drop := NewDropout(netB, opt.NewSGD(0.1), 1.0, rng.New(32))
	lossA := std.Step(x, y)
	lossB := drop.Step(x, y)
	if math.Abs(lossA-lossB) > 1e-12 {
		t.Fatalf("losses differ: %v vs %v", lossA, lossB)
	}
	for i := range netA.Layers {
		if !tensor.EqualApprox(netA.Layers[i].W, netB.Layers[i].W, 1e-10) {
			t.Fatalf("layer %d weights diverged", i)
		}
	}
}

// With MinActive equal to the layer width, ALSH pads every layer's
// active set to the full node set, so the step must equal Standard's
// up to summation order.
func TestALSHFullActiveEqualsStandard(t *testing.T) {
	x, y := separableTask(33, 6, 6, 3)
	netA := mlp(t, 34, 6, 10, 3)
	netB := netA.Clone()
	std := NewStandard(netA, opt.NewSGD(0.1))
	alsh, err := NewALSHApprox(netB, opt.NewSGD(0.1), ALSHConfig{
		Params: lshParamsForTest(), MinActive: 10,
	}, rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	lossA := std.Step(x, y)
	lossB := alsh.Step(x, y)
	if math.Abs(lossA-lossB) > 1e-9 {
		t.Fatalf("losses differ: %v vs %v", lossA, lossB)
	}
	for i := range netA.Layers {
		if !tensor.EqualApprox(netA.Layers[i].W, netB.Layers[i].W, 1e-9) {
			t.Fatalf("layer %d weights diverged", i)
		}
	}
}

// Column sampling preserves the gradient restricted to the active set:
// for a fixed active set, the sparse kernels' gradient must equal the
// dense gradient's values at those columns (already covered for the full
// set; spot-check a strict subset here).
func TestActiveSubsetGradientsMatchDense(t *testing.T) {
	g := rng.New(36)
	l := nn.NewLayer(5, 8, nn.Tanh{}, nn.InitHe, g)
	x := randInput(37, 3, 5)
	cols := []int{1, 4, 6}

	st := &activeState{cols: cols}
	forwardActive(l, x, st, 1)
	dA := randInput(38, 3, 8)
	gw, gb, _ := backwardActive(l, dA.Clone(), st, 1)

	// Dense reference with inactive columns of dA zeroed, activations
	// recomputed with inactive nodes clamped to zero.
	// Use a masked network: set columns outside cols to zero weight
	// influence by zeroing dA outside cols and recomputing the dense
	// backward on the same masked forward.
	dense := l.Forward(x)
	_ = dense
	deriv := l.Act.Derivative(l.Z, l.A)
	delta := tensor.Hadamard(dA, deriv)
	denseGrads, _ := l.Backward(delta)
	for r, j := range cols {
		for i := 0; i < 5; i++ {
			if math.Abs(gw.At(i, r)-denseGrads.W.At(i, j)) > 1e-10 {
				t.Fatalf("gradW col %d differs from dense", j)
			}
		}
		if math.Abs(gb[r]-denseGrads.B[j]) > 1e-10 {
			t.Fatalf("gradB col %d differs from dense", j)
		}
	}
}

func TestALSHSamplingSnapshot(t *testing.T) {
	net := mlp(t, 60, 8, 32, 4)
	m, err := NewALSHApprox(net, opt.NewAdam(0.01), ALSHConfig{
		Params:    lshParamsForTest(),
		MinActive: 6,
	}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	var _ SamplingReporter = m // ALSH must expose sampling diagnostics
	x, y := separableTask(62, 20, 8, 4)
	bx := tensor.New(1, 8)
	for i := 0; i < 20; i++ {
		copy(bx.RowView(0), x.RowView(i))
		m.Step(bx, y[i:i+1])
	}
	s := m.SamplingSnapshot()
	if s.ActiveFraction <= 0 || s.ActiveFraction > 1 {
		t.Fatalf("active fraction %v", s.ActiveFraction)
	}
	if len(s.ActiveSets) != 2 || len(s.Buckets) != 2 { // two hidden layers
		t.Fatalf("snapshot has %d active-set dists, %d bucket stats", len(s.ActiveSets), len(s.Buckets))
	}
	for i, d := range s.ActiveSets {
		if d.Count != 20 {
			t.Fatalf("layer %d recorded %d active sets, want 20", i, d.Count)
		}
		if d.Min < 6 || d.Max > 32 {
			t.Fatalf("layer %d active-set sizes [%d, %d] violate floor/width", i, d.Min, d.Max)
		}
	}
	for i, b := range s.Buckets {
		if b.Items == 0 || b.NonEmpty == 0 {
			t.Fatalf("layer %d bucket stats empty: %+v", i, b)
		}
	}
	// ResetTiming opens a fresh per-epoch window.
	m.ResetTiming()
	if s := m.SamplingSnapshot(); s.ActiveSets[0].Count != 0 {
		t.Fatal("ResetTiming did not reset the active-set distributions")
	}
}

func TestParallelALSHSamplingSnapshot(t *testing.T) {
	net := mlp(t, 63, 8, 32, 4)
	m, err := NewParallelALSH(net, opt.NewAdam(0.01), ALSHConfig{
		Params:    lshParamsForTest(),
		MinActive: 6,
	}, 3, rng.New(64))
	if err != nil {
		t.Fatal(err)
	}
	x, y := separableTask(65, 12, 8, 4)
	if _, err := m.TryStep(x, y); err != nil {
		t.Fatal(err)
	}
	s := m.SamplingSnapshot()
	if len(s.ActiveSets) != 2 {
		t.Fatalf("%d active-set dists", len(s.ActiveSets))
	}
	for i, d := range s.ActiveSets {
		if d.Count != 12 { // one observation per sample per layer
			t.Fatalf("layer %d recorded %d active sets, want 12", i, d.Count)
		}
	}
}
