package core

import (
	"math"
	"testing"

	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestAdaptiveDropoutPredictBatchUsesExpectation(t *testing.T) {
	net := mlp(t, 1, 6, 12, 3)
	m := NewAdaptiveDropout(net, opt.NewSGD(0.1), 4, 0.2, rng.New(2))
	x := randInput(3, 4, 6)

	// The expectation network scales hidden activations by π(z) < 1, so
	// its logits must differ from the plain forward's.
	plain := net.Predict(x)
	expct := m.PredictBatch(x)
	if len(plain) != len(expct) || len(expct) != 4 {
		t.Fatal("prediction lengths wrong")
	}
	// Verify the scaling analytically on a 1-hidden-layer case.
	single := mlp(t, 4, 3, 5, 2)
	ms := NewAdaptiveDropout(single, opt.NewSGD(0.1), 1, 0.5, rng.New(5))
	xi := randInput(6, 1, 3)
	// Manual expectation forward.
	act := xi
	layers := single.Layers
	for i, l := range layers {
		z := tensor.MatMul(act, l.W)
		z.AddRowVector(l.B)
		out := l.Act.Forward(z)
		if i != len(layers)-1 {
			for k, zv := range z.Data {
				out.Data[k] *= ms.keepProb(zv)
			}
		}
		act = out
	}
	want := act.ArgMaxRows()
	got := ms.PredictBatch(xi)
	if want[0] != got[0] {
		t.Fatalf("PredictBatch = %v, manual expectation = %v", got, want)
	}
}

func TestCorePredictPrefersBatchPredictor(t *testing.T) {
	net := mlp(t, 7, 6, 12, 3)
	m := NewAdaptiveDropout(net, opt.NewSGD(0.1), 4, 0.05, rng.New(8))
	x := randInput(9, 5, 6)
	viaHelper := Predict(m, x)
	direct := m.PredictBatch(x)
	for i := range direct {
		if viaHelper[i] != direct[i] {
			t.Fatal("core.Predict must route through PredictBatch")
		}
	}
	// Standard has no BatchPredictor: helper equals plain forward.
	std := NewStandard(mlp(t, 10, 6, 12, 3), opt.NewSGD(0.1))
	a := Predict(std, x)
	b := std.Net().Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("core.Predict must fall back to the network forward")
		}
	}
}

func TestEvalAccuracyHelper(t *testing.T) {
	std := NewStandard(mlp(t, 11, 6, 12, 3), opt.NewSGD(0.1))
	x := randInput(12, 4, 6)
	pred := Predict(std, x)
	if EvalAccuracy(std, x, pred) != 1 {
		t.Fatal("accuracy against own predictions must be 1")
	}
	wrong := make([]int, len(pred))
	for i, p := range pred {
		wrong[i] = (p + 1) % 3
	}
	if EvalAccuracy(std, x, wrong) != 0 {
		t.Fatal("accuracy against shifted labels must be 0")
	}
	if EvalAccuracy(std, tensor.New(0, 6), nil) != 0 {
		t.Fatal("empty input accuracy must be 0")
	}
}

func TestAdaptiveDropoutMaskIsBinary(t *testing.T) {
	net := mlp(t, 13, 6, 12, 3)
	m := NewAdaptiveDropout(net, opt.NewSGD(0.01), 4, 0.3, rng.New(14))
	x, y := separableTask(15, 8, 6, 3)
	m.Step(x, y)
	for li, mask := range m.masks {
		if mask == nil {
			continue
		}
		for _, v := range mask.Data {
			if v != 0 && v != 1 {
				t.Fatalf("layer %d mask value %v; standout masks are 0/1 (no inverted scaling)", li, v)
			}
		}
	}
}

func TestAdaptiveDropoutKeepProbHigherForStrongNodes(t *testing.T) {
	// The defining property vs plain Dropout: a node with a strong
	// pre-activation must be kept far more often than the base rate.
	net := mlp(t, 16, 6, 12, 3)
	m := NewAdaptiveDropout(net, opt.NewSGD(0.01), 4, 0.05, rng.New(17))
	base := m.keepProb(0)
	strong := m.keepProb(2)
	if math.Abs(base-0.05) > 1e-9 {
		t.Fatalf("base keep %v", base)
	}
	if strong < 0.9 {
		t.Fatalf("strong node keep %v; alpha=4 should push it near 1", strong)
	}
}

func TestAdaptiveDropoutConstructorValidation(t *testing.T) {
	net := mlp(t, 18, 4, 8, 2)
	for _, keep := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("baseKeep=%v should panic", keep)
				}
			}()
			NewAdaptiveDropout(net, opt.NewSGD(0.1), 1, keep, rng.New(19))
		}()
	}
}

func TestDropoutInferenceIsPlainNetwork(t *testing.T) {
	// Inverted dropout: no BatchPredictor, inference via Net().Predict.
	net := mlp(t, 20, 6, 12, 3)
	m := NewDropout(net, opt.NewSGD(0.1), 0.5, rng.New(21))
	if _, ok := interface{}(m).(BatchPredictor); ok {
		t.Fatal("Dropout must not override inference (inverted scaling already corrects it)")
	}
}
