package core

import (
	"time"

	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/tensor"
)

// Standard trains with exact feedforward and backpropagation — the
// paper's STANDARD baseline ("training the neural network without
// sampling").
type Standard struct {
	net    *nn.Network
	optim  opt.Optimizer
	timing Timing
}

// NewStandard wraps a network and optimizer in the exact training method.
func NewStandard(net *nn.Network, optim opt.Optimizer) *Standard {
	if net == nil || optim == nil {
		panic("core: Standard needs a network and an optimizer")
	}
	return &Standard{net: net, optim: optim}
}

// Name returns "standard".
func (s *Standard) Name() string { return "standard" }

// Axis returns AxisNone.
func (s *Standard) Axis() Axis { return AxisNone }

// Net returns the wrapped network.
func (s *Standard) Net() *nn.Network { return s.net }

// Timing returns the cumulative phase timings.
func (s *Standard) Timing() Timing { return s.timing }

// ResetTiming zeroes the timings.
func (s *Standard) ResetTiming() { s.timing = Timing{} }

// Step performs one exact forward/backward/update pass.
func (s *Standard) Step(x *tensor.Matrix, y []int) float64 {
	loss, grads := s.ComputeGrads(x, y)
	s.ApplyGrads(grads)
	return loss
}

// ComputeGrads runs the exact forward and backward pass on one batch,
// returning the loss and per-layer gradients without updating weights —
// the export half of the core.GradComputer seam distributed training
// uses.
func (s *Standard) ComputeGrads(x *tensor.Matrix, y []int) (float64, []nn.Grads) {
	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	logits := s.net.Forward(x)
	loss := s.net.Head.Loss(logits, y)
	t1 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	grads := s.net.Backward(logits, y)
	t2 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	s.timing.Forward += t1.Sub(t0)
	s.timing.Backward += t2.Sub(t1)
	return loss, grads
}

// ApplyGrads feeds one gradient per layer through the optimizer,
// updating the weights in place — the import half of core.GradComputer.
func (s *Standard) ApplyGrads(grads []nn.Grads) {
	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	for i, l := range s.net.Layers {
		s.optim.Step(i, l.W, l.B, grads[i])
	}
	s.timing.Backward += time.Since(t0) //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
}
