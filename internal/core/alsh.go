package core

import (
	"fmt"
	"sort"
	"time"

	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/obs/trace"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// SamplingSnapshot carries a sampling method's per-epoch diagnostics for
// the run journal: the paper's sparsity headline (ActiveFraction, ~5%)
// plus the §10.3 collapse signals — the distribution of active-set sizes
// per hidden layer and the hash-bucket occupancy behind them.
type SamplingSnapshot struct {
	ActiveFraction float64 `json:"active_fraction"`
	// ActiveSets[i] is hidden layer i's distribution of active-set sizes
	// since the last ResetTiming (one observation per processed sample or
	// batch union).
	ActiveSets []obs.DistSnapshot `json:"active_sets,omitempty"`
	// Buckets[i] is hidden layer i's current hash-table occupancy.
	Buckets []lsh.BucketStats `json:"buckets,omitempty"`
}

// SamplingReporter is implemented by methods that expose sampling
// diagnostics. The trainer includes the snapshot in each epoch's journal
// record.
type SamplingReporter interface {
	SamplingSnapshot() SamplingSnapshot
}

// ALSHConfig tunes the hash-based node sampler.
type ALSHConfig struct {
	// Params are the LSH index hyperparameters (paper: K=6, L=5, m=3).
	Params lsh.Params
	// MinActive floors the active-set size per layer; when the hash
	// lookup returns fewer candidates, random nodes pad the set (the
	// fallback of the original implementation). Zero means max(4, n/100).
	MinActive int
	// MaxActiveFrac caps the active set at this fraction of the layer,
	// keeping the cost bounded when buckets are crowded. Zero means no
	// cap.
	MaxActiveFrac float64
	// EarlyRebuildEvery and LateRebuildEvery give the hash-maintenance
	// cadence in samples: the paper re-hashes every 100 samples for the
	// first 10000 samples and every 1000 after (§9.2). Zero selects those
	// defaults.
	EarlyRebuildEvery, LateRebuildEvery, EarlyPhaseSamples int
}

func (c *ALSHConfig) setDefaults() {
	if c.Params == (lsh.Params{}) {
		c.Params = lsh.DefaultParams()
	}
	if c.EarlyRebuildEvery == 0 {
		c.EarlyRebuildEvery = 100
	}
	if c.LateRebuildEvery == 0 {
		c.LateRebuildEvery = 1000
	}
	if c.EarlyPhaseSamples == 0 {
		c.EarlyPhaseSamples = 10000
	}
}

// ALSHApprox is the Spring-Shrivastava hash-based trainer (§5.2,
// ALSH-approx in the paper): every hidden layer owns a MIPS index over
// the columns of its weight matrix; the incoming activation vector
// queries the index; the union of colliding columns across L tables
// becomes the layer's active node set; forward, backward, and the
// optimizer step run only on that set. Updated columns are re-hashed on
// the paper's growing cadence.
//
// Unlike Dropout there is no 1/p rescaling: the method treats the skipped
// inner products as exactly zero, which is the estimation-error source
// the §7 analysis bounds.
type ALSHApprox struct {
	net    *nn.Network
	optim  opt.Optimizer
	cfg    ALSHConfig
	g      *rng.RNG
	minAct []int

	indexes []*lsh.MIPSIndex
	states  []*activeState
	grads   []nn.Grads
	touched []map[int]struct{} // columns updated since last re-hash
	samples int                // training samples processed
	lastUpd int                // samples count at last re-hash
	timing  Timing
	// actDists[i] records hidden layer i's active-set sizes since the
	// last ResetTiming (nil for the exact output layer).
	actDists []*obs.Distribution

	queryBuf []int
}

// NewALSHApprox builds per-hidden-layer MIPS indexes over net's weights.
func NewALSHApprox(net *nn.Network, optim opt.Optimizer, cfg ALSHConfig, g *rng.RNG) (*ALSHApprox, error) {
	if net == nil || optim == nil || g == nil {
		panic("core: ALSHApprox needs a network, optimizer, and RNG")
	}
	cfg.setDefaults()
	a := &ALSHApprox{
		net: net, optim: optim, cfg: cfg, g: g,
		indexes:  make([]*lsh.MIPSIndex, len(net.Layers)),
		states:   make([]*activeState, len(net.Layers)),
		grads:    make([]nn.Grads, len(net.Layers)),
		touched:  make([]map[int]struct{}, len(net.Layers)),
		minAct:   make([]int, len(net.Layers)),
		actDists: make([]*obs.Distribution, len(net.Layers)),
	}
	last := len(net.Layers) - 1
	for i, l := range net.Layers {
		if i == last {
			continue // output layer stays exact
		}
		idx, err := lsh.NewMIPSIndex(l.FanIn(), l.FanOut(), cfg.Params, g.Split())
		if err != nil {
			return nil, fmt.Errorf("core: layer %d index: %w", i, err)
		}
		idx.Rebuild(l.W)
		a.indexes[i] = idx
		a.states[i] = &activeState{}
		a.touched[i] = make(map[int]struct{})
		a.minAct[i] = cfg.MinActive
		if a.minAct[i] <= 0 {
			a.minAct[i] = max(4, l.FanOut()/100)
		}
		a.actDists[i] = obs.NewDistribution()
	}
	return a, nil
}

// Name returns "alsh".
func (a *ALSHApprox) Name() string { return "alsh" }

// Axis returns AxisColumns.
func (a *ALSHApprox) Axis() Axis { return AxisColumns }

// Net returns the wrapped network.
func (a *ALSHApprox) Net() *nn.Network { return a.net }

// Timing returns the cumulative phase timings. Maintain covers the hash
// re-hashing work.
func (a *ALSHApprox) Timing() Timing { return a.timing }

// ResetTiming zeroes the timings and the per-layer active-set-size
// distributions, so both align with the trainer's per-epoch window.
func (a *ALSHApprox) ResetTiming() {
	a.timing = Timing{}
	for _, d := range a.actDists {
		if d != nil {
			d.Reset()
		}
	}
}

// SamplingSnapshot exports the current sampling diagnostics: mean active
// fraction, active-set-size distributions since the last ResetTiming,
// and hash-bucket occupancy per hidden layer.
func (a *ALSHApprox) SamplingSnapshot() SamplingSnapshot {
	s := SamplingSnapshot{ActiveFraction: a.ActiveFraction()}
	for i, idx := range a.indexes {
		if idx == nil {
			continue
		}
		s.ActiveSets = append(s.ActiveSets, a.actDists[i].Snapshot())
		s.Buckets = append(s.Buckets, idx.BucketStats())
	}
	return s
}

// ActiveFraction reports the mean fraction of nodes active in the most
// recent step, the paper's sparsity headline (~5%).
func (a *ALSHApprox) ActiveFraction() float64 {
	var frac float64
	n := 0
	for i, st := range a.states {
		if st == nil || a.indexes[i] == nil {
			continue
		}
		frac += float64(len(st.cols)) / float64(a.net.Layers[i].FanOut())
		n++
	}
	if n == 0 {
		return 0
	}
	return frac / float64(n)
}

// IndexMemory returns the summed footprint estimate of all hash indexes,
// the "table setup" cost of the §9.4 memory analysis.
func (a *ALSHApprox) IndexMemory() int {
	total := 0
	for _, idx := range a.indexes {
		if idx != nil {
			total += idx.MemoryFootprint()
		}
	}
	return total
}

// activeSet queries the layer's index with every row of x and unions the
// candidates, padding with random nodes up to the floor and truncating at
// the cap.
func (a *ALSHApprox) activeSet(layer int, x *tensor.Matrix) []int {
	idx := a.indexes[layer]
	n := a.net.Layers[layer].FanOut()
	if x.Rows == 1 {
		a.queryBuf = idx.Query(x.RowView(0), a.queryBuf)
	} else {
		set := map[int]struct{}{}
		for i := 0; i < x.Rows; i++ {
			a.queryBuf = idx.Query(x.RowView(i), a.queryBuf)
			for _, c := range a.queryBuf {
				set[c] = struct{}{}
			}
		}
		a.queryBuf = a.queryBuf[:0]
		for c := range set {
			a.queryBuf = append(a.queryBuf, c)
		}
	}
	return padActive(a.queryBuf, n, a.minAct[layer], a.cfg.MaxActiveFrac, a.g)
}

// ApproxForward replays the hash-sampled feedforward pass on x without
// touching training state: active sets come from the live indexes (the
// same lookups a Step would do) but padding randomness comes from g, all
// buffers are local, and no sample counters, touched sets, or active-set
// distributions are updated.
func (a *ALSHApprox) ApproxForward(x *tensor.Matrix, g *rng.RNG) []*tensor.Matrix {
	layers := a.net.Layers
	last := len(layers) - 1
	out := make([]*tensor.Matrix, len(layers))
	var buf []int
	act := x
	for i, l := range layers {
		if i == last {
			// Exact output layer, computed locally so the shared layer
			// caches stay whatever the last training step left there.
			z := tensor.MatMul(act, l.W)
			z.AddRowVector(l.B)
			act = l.Act.Forward(z)
			out[i] = act
			continue
		}
		idx := a.indexes[i]
		if x.Rows == 1 {
			buf = idx.Query(act.RowView(0), buf)
		} else {
			set := map[int]struct{}{}
			for r := 0; r < act.Rows; r++ {
				buf = idx.Query(act.RowView(r), buf)
				for _, c := range buf {
					set[c] = struct{}{}
				}
			}
			buf = buf[:0]
			for c := range set {
				buf = append(buf, c)
			}
			// Sorted union: map iteration order is random, and summation
			// order changes low-order bits, so sort to keep measurements
			// reproducible for a fixed probe RNG.
			sort.Ints(buf)
		}
		st := &activeState{cols: padActive(buf, l.FanOut(), a.minAct[i], a.cfg.MaxActiveFrac, g)}
		act = forwardActive(l, act, st, 1)
		out[i] = act
	}
	return out
}

// Step performs one hash-sampled training pass.
func (a *ALSHApprox) Step(x *tensor.Matrix, y []int) float64 {
	tr := trace.Active()
	layers := a.net.Layers
	last := len(layers) - 1

	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	act := x
	for i, l := range layers {
		if i == last {
			sp := tr.BeginLayer("forward", "layer", i)
			act = l.Forward(act)
			sp.End()
			continue
		}
		st := a.states[i]
		st.cols = a.activeSet(i, act)
		a.actDists[i].Observe(int64(len(st.cols)))
		sp := tr.BeginLayer("forward", "sampled", i)
		act = forwardActive(l, act, st, 1)
		sp.End()
	}
	logits := act
	loss := a.net.Head.Loss(logits, y)
	t1 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	delta := a.net.Head.Delta(logits, y)
	spOut := tr.BeginLayer("backward", "layer", last)
	gOut, dA := layers[last].Backward(delta)
	a.optim.Step(last, layers[last].W, layers[last].B, gOut)
	spOut.End()
	for i := last - 1; i >= 0; i-- {
		sp := tr.BeginLayer("backward", "sampled", i)
		l := layers[i]
		st := a.states[i]
		gw, gb, dPrev := backwardActive(l, dA, st, 1)
		a.grads[i] = scatterGrads(l, gw, gb, st.cols, a.grads[i])
		a.optim.StepCols(i, l.W, l.B, a.grads[i], st.cols)
		clearGradCols(a.grads[i], st.cols)
		for _, c := range st.cols {
			a.touched[i][c] = struct{}{}
		}
		dA = dPrev
		sp.End()
	}
	t2 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	a.samples += x.Rows
	a.maintain()
	t3 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	a.timing.Forward += t1.Sub(t0)
	a.timing.Backward += t2.Sub(t1)
	a.timing.Maintain += t3.Sub(t2)
	return loss
}

// maintain re-hashes updated columns on the paper's growing cadence:
// every EarlyRebuildEvery samples for the first EarlyPhaseSamples, then
// every LateRebuildEvery.
func (a *ALSHApprox) maintain() {
	every := a.cfg.EarlyRebuildEvery
	if a.samples > a.cfg.EarlyPhaseSamples {
		every = a.cfg.LateRebuildEvery
	}
	if a.samples-a.lastUpd < every {
		return
	}
	a.lastUpd = a.samples
	for i, idx := range a.indexes {
		if idx == nil || len(a.touched[i]) == 0 {
			continue
		}
		cols := make([]int, 0, len(a.touched[i]))
		for c := range a.touched[i] {
			cols = append(cols, c)
		}
		idx.UpdateColumns(a.net.Layers[i].W, cols)
		for c := range a.touched[i] {
			delete(a.touched[i], c)
		}
	}
}

// RebuildAll refits every index's transform scaling and re-hashes all
// columns — the full rebuild typically run between epochs.
func (a *ALSHApprox) RebuildAll() {
	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	for i, idx := range a.indexes {
		if idx != nil {
			idx.Rebuild(a.net.Layers[i].W)
		}
	}
	a.timing.Maintain += time.Since(t0) //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
}
