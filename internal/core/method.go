// Package core implements the five training methods the paper evaluates
// (§8.3) over a shared MLP substrate:
//
//   - Standard — exact feedforward and backpropagation (the baseline).
//   - Dropout — uniform node sampling in each hidden layer (§5.1).
//   - AdaptiveDropout — the Ba-Frey "standout" data-dependent sampler
//     (§5.1), whose keep probabilities track the current network.
//   - ALSHApprox — the Spring-Shrivastava hash-based node sampler
//     (§5.2): per-layer asymmetric-LSH MIPS indexes select the active
//     nodes before any inner product is computed.
//   - MCApprox — the Adelman et al. Monte-Carlo matrix-multiplication
//     approximation (§6.2), applied during backpropagation only (§10.1).
//
// The package makes the paper's central observation concrete in the type
// system: every method is a special case of sampled matrix
// multiplication, differing only in which Axis of each layer's weight
// matrix it samples — Columns (nodes of the current layer: Dropout,
// Adaptive-Dropout, ALSH) or Rows (nodes of the previous layer:
// MC-approx).
package core

import (
	"fmt"
	"io"
	"time"

	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Axis says which dimension of the weight matrix a method samples — the
// paper's §4.2 taxonomy.
type Axis int

// Sampling axes.
const (
	// AxisNone marks exact training.
	AxisNone Axis = iota
	// AxisColumns marks "sampling from the current layer": a subset of
	// W's columns (nodes) gets exact inner products; the rest are skipped.
	AxisColumns
	// AxisRows marks "sampling from the previous layer": every column is
	// kept but each inner product is estimated from a subset of W's rows.
	AxisRows
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case AxisNone:
		return "none"
	case AxisColumns:
		return "columns"
	case AxisRows:
		return "rows"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Timing splits a method's cumulative training time into the phases the
// paper reports (§9.2, §10.1): feedforward, backpropagation (including
// the optimizer step), and index maintenance (hash updates/rebuilds,
// ALSH-approx only).
type Timing struct {
	Forward  time.Duration
	Backward time.Duration
	Maintain time.Duration
}

// Total returns the sum of all phases.
func (t Timing) Total() time.Duration { return t.Forward + t.Backward + t.Maintain }

// Method is one training approach: it owns a network and knows how to
// perform a sampled (or exact) training step on a batch.
type Method interface {
	// Name identifies the method in experiment output ("standard",
	// "dropout", "adaptive-dropout", "alsh", "mc").
	Name() string
	// Axis reports which weight-matrix dimension the method samples.
	Axis() Axis
	// Step trains on one batch and returns the training loss the method
	// observed (computed from its own, possibly approximate, forward
	// pass).
	Step(x *tensor.Matrix, y []int) float64
	// Net returns the underlying network. Inference uses the exact
	// forward pass.
	Net() *nn.Network
	// Timing returns cumulative phase timings since the last reset.
	Timing() Timing
	// ResetTiming zeroes the phase timings.
	ResetTiming()
}

// FallibleStepper is implemented by methods whose Step can fail
// recoverably — today that is ParallelALSH, whose worker goroutines
// convert panics into errors instead of crashing the process. The
// trainer prefers TryStep when it is available so a contained worker
// fault surfaces as an error from Run rather than a corrupted update.
type FallibleStepper interface {
	// TryStep is Step with an error path. When it returns a non-nil
	// error the batch was not applied: the network weights are exactly
	// as they were before the call.
	TryStep(x *tensor.Matrix, y []int) (float64, error)
}

// Resumable is implemented by methods that carry mutable run-time state
// beyond the network weights — private RNG streams, sample counters,
// hash-maintenance cadence positions. Full-state checkpoints
// (internal/train) include this blob so a resumed run continues the
// method's random choices byte-for-byte where the original left off.
type Resumable interface {
	// SaveState serializes the method's run-time state.
	SaveState(w io.Writer) error
	// LoadState restores state written by SaveState on a method of the
	// same type over the same architecture. Implementations that derive
	// auxiliary structures from the weights (hash indexes) rebuild them,
	// so callers must restore the network weights first.
	LoadState(r io.Reader) error
}

// GradComputer splits a method's Step into its two halves: computing
// the batch gradient and applying an (arbitrary, possibly reduced)
// gradient through the optimizer. Distributed data-parallel training
// (internal/dist) is built on this seam — shard gradients are computed
// on workers with ComputeGrads, summed in a fixed order on the
// coordinator, and applied everywhere with ApplyGrads. A method that
// implements it must guarantee ComputeGrads followed by
// ApplyGrads(grads) on the same batch is byte-identical to Step.
type GradComputer interface {
	// ComputeGrads runs the forward and backward pass on one batch and
	// returns the observed loss and per-layer gradients without touching
	// the weights. The gradients are freshly allocated (not aliased to
	// method scratch).
	ComputeGrads(x *tensor.Matrix, y []int) (float64, []nn.Grads)
	// ApplyGrads feeds one gradient per layer through the optimizer,
	// updating the weights in place.
	ApplyGrads(grads []nn.Grads)
}

// OptimizerHolder exposes a method's optimizer. Every method in this
// package implements it; the trainer uses it to checkpoint optimizer
// state and to decay the learning rate during divergence recovery.
type OptimizerHolder interface {
	// Optimizer returns the optimizer the method applies updates with.
	Optimizer() opt.Optimizer
}

// ApproxForwarder is implemented by sampling methods that can replay
// their approximate feedforward pass on demand, outside the training
// loop. The error-compounding probe (internal/probe) runs it side by
// side with the exact forward on a fixed minibatch to measure the
// per-layer relative error Theorem 7.2 bounds.
//
// Implementations must be read-only with respect to training state: no
// layer caches, no method scratch that a Step depends on, and — most
// importantly — no draws from the method's own RNG stream. All sampling
// randomness comes from g, so interleaving probe calls with training
// leaves the trained weights byte-for-byte unchanged.
type ApproxForwarder interface {
	// ApproxForward returns each layer's activation under the method's
	// approximation, index-aligned with Net().Layers. For methods that
	// only approximate the backward pass (MC-approx), the result shows
	// what forward approximation *would* do — the §10.1 ablation.
	ApproxForward(x *tensor.Matrix, g *rng.RNG) []*tensor.Matrix
}

// BatchPredictor is implemented by methods whose inference pass differs
// from the plain network forward (Adaptive-Dropout's expectation
// network). Predict and the trainer prefer it when present.
type BatchPredictor interface {
	// PredictBatch returns the predicted class per row of x.
	PredictBatch(x *tensor.Matrix) []int
}

// Predict runs a method's inference pass: its own BatchPredictor if it
// has one, otherwise the exact network forward.
func Predict(m Method, x *tensor.Matrix) []int {
	if p, ok := m.(BatchPredictor); ok {
		return p.PredictBatch(x)
	}
	return m.Net().Predict(x)
}

// EvalAccuracy measures inference accuracy of a method on labelled data.
func EvalAccuracy(m Method, x *tensor.Matrix, y []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := Predict(m, x)
	hits := 0
	for i, p := range pred {
		if p == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(y))
}

// Recommendation is the outcome of the paper's §10.4 decision tree.
type Recommendation struct {
	// Method is the suggested training approach.
	Method string
	// Reason cites the paper evidence behind the choice.
	Reason string
}

// Recommend applies the §10.4 decision tree: mini-batch training →
// MC-approx; stochastic training on shallow networks with parallel
// hardware → ALSH-approx; otherwise standard training.
func Recommend(batchSize, hiddenLayers int, parallel bool) Recommendation {
	if batchSize > 1 {
		return Recommendation{
			Method: "mc",
			Reason: "mini-batch SGD: MC-approx dominates on speed and accuracy (§9.3, Table 4)",
		}
	}
	if hiddenLayers <= 4 && parallel {
		return Recommendation{
			Method: "alsh",
			Reason: "stochastic + shallow (≤4 layers) + parallel hardware: ALSH-approx scales with processors (§10.4)",
		}
	}
	return Recommendation{
		Method: "standard",
		Reason: "stochastic setting without parallel hardware (or deep network): sampling overhead exceeds savings (Table 3, §7)",
	}
}
