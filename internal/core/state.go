package core

import (
	"fmt"
	"io"

	"samplednn/internal/binio"
	"samplednn/internal/opt"
)

// This file implements the checkpoint hooks of every method: the
// OptimizerHolder accessor and, for methods with run-time state beyond
// the weights, the Resumable interface. Each state blob starts with a
// one-byte version so formats can evolve independently.

const methodStateV1 = 1

// Optimizer returns the wrapped optimizer.
func (s *Standard) Optimizer() opt.Optimizer { return s.optim }

// Optimizer returns the wrapped optimizer.
func (d *Dropout) Optimizer() opt.Optimizer { return d.optim }

// Optimizer returns the wrapped optimizer.
func (a *AdaptiveDropout) Optimizer() opt.Optimizer { return a.optim }

// Optimizer returns the wrapped optimizer.
func (a *ALSHApprox) Optimizer() opt.Optimizer { return a.optim }

// Optimizer returns the wrapped optimizer.
func (m *MCApprox) Optimizer() opt.Optimizer { return m.optim }

func writeVersion(w io.Writer) error { return binio.WriteU8(w, methodStateV1) }

func readVersion(r io.Reader, method string) error {
	v, err := binio.ReadU8(r)
	if err != nil {
		return fmt.Errorf("core: %s state header: %w", method, err)
	}
	if v != methodStateV1 {
		return fmt.Errorf("core: %s state version %d, this build reads %d", method, v, methodStateV1)
	}
	return nil
}

// SaveState serializes the dropout mask RNG position.
func (d *Dropout) SaveState(w io.Writer) error {
	if err := writeVersion(w); err != nil {
		return err
	}
	return binio.WriteBytes(w, d.g.Save())
}

// LoadState restores the dropout mask RNG position.
func (d *Dropout) LoadState(r io.Reader) error {
	if err := readVersion(r, "dropout"); err != nil {
		return err
	}
	blob, err := binio.ReadBytes(r)
	if err != nil {
		return err
	}
	return d.g.Restore(blob)
}

// SaveState serializes the standout mask RNG position.
func (a *AdaptiveDropout) SaveState(w io.Writer) error {
	if err := writeVersion(w); err != nil {
		return err
	}
	return binio.WriteBytes(w, a.g.Save())
}

// LoadState restores the standout mask RNG position.
func (a *AdaptiveDropout) LoadState(r io.Reader) error {
	if err := readVersion(r, "adaptive-dropout"); err != nil {
		return err
	}
	blob, err := binio.ReadBytes(r)
	if err != nil {
		return err
	}
	return a.g.Restore(blob)
}

// SaveState serializes the MC sampling RNG position.
func (m *MCApprox) SaveState(w io.Writer) error {
	if err := writeVersion(w); err != nil {
		return err
	}
	return binio.WriteBytes(w, m.g.Save())
}

// LoadState restores the MC sampling RNG position.
func (m *MCApprox) LoadState(r io.Reader) error {
	if err := readVersion(r, "mc"); err != nil {
		return err
	}
	blob, err := binio.ReadBytes(r)
	if err != nil {
		return err
	}
	return m.g.Restore(blob)
}

// SaveState serializes the active-set RNG position and the
// hash-maintenance counters.
func (a *ALSHApprox) SaveState(w io.Writer) error {
	if err := writeVersion(w); err != nil {
		return err
	}
	if err := binio.WriteBytes(w, a.g.Save()); err != nil {
		return err
	}
	if err := binio.WriteI64(w, int64(a.samples)); err != nil {
		return err
	}
	return binio.WriteI64(w, int64(a.lastUpd))
}

// LoadState restores the RNG position and maintenance counters, then
// rebuilds every hash index from the current weights. Callers restore
// the network weights before calling LoadState, so the rebuilt indexes
// match the checkpoint's weights; the hash functions themselves were
// fixed at construction and are reproduced by constructing the method
// with the same seed.
func (a *ALSHApprox) LoadState(r io.Reader) error {
	if err := readVersion(r, "alsh"); err != nil {
		return err
	}
	blob, err := binio.ReadBytes(r)
	if err != nil {
		return err
	}
	if err := a.g.Restore(blob); err != nil {
		return err
	}
	samples, err := binio.ReadI64(r)
	if err != nil {
		return err
	}
	lastUpd, err := binio.ReadI64(r)
	if err != nil {
		return err
	}
	a.samples = int(samples)
	a.lastUpd = int(lastUpd)
	a.RebuildAll()
	return nil
}

// SaveState serializes the base ALSH state plus every worker's private
// RNG position.
func (p *ParallelALSH) SaveState(w io.Writer) error {
	if err := p.ALSHApprox.SaveState(w); err != nil {
		return err
	}
	if err := binio.WriteU32(w, uint32(len(p.workers))); err != nil {
		return err
	}
	for _, aw := range p.workers {
		if err := binio.WriteBytes(w, aw.g.Save()); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores the base ALSH state and the worker RNG streams. The
// worker count must match the one the state was saved with.
func (p *ParallelALSH) LoadState(r io.Reader) error {
	if err := p.ALSHApprox.LoadState(r); err != nil {
		return err
	}
	n, err := binio.ReadU32(r)
	if err != nil {
		return err
	}
	if int(n) != len(p.workers) {
		return fmt.Errorf("core: checkpoint has %d worker streams, trainer has %d workers", n, len(p.workers))
	}
	for _, aw := range p.workers {
		blob, err := binio.ReadBytes(r)
		if err != nil {
			return err
		}
		if err := aw.g.Restore(blob); err != nil {
			return err
		}
	}
	return nil
}
