package core

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/obs/trace"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// ParallelALSH is the multi-worker variant of ALSH-approx the paper
// repeatedly credits for the method's practical speed (§5.2, §9.2,
// §10.4): each sample in a batch is processed independently — its own
// hash lookups, its own sparse forward/backward over its own active sets
// — across Workers goroutines, and the resulting sparse gradients are
// merged and applied once per layer.
//
// The weights are read-only during the parallel phase and updated in a
// single merge step, so the scheme is race-free (a deliberate departure
// from SLIDE's lock-free HOGWILD updates; the gradient merge preserves
// the same sparse-update structure while keeping results reproducible
// for a fixed worker count).
type ParallelALSH struct {
	*ALSHApprox
	// Workers is the goroutine count; on a w-core machine w workers give
	// near-linear speedup because per-sample work is independent.
	Workers int

	workers  []*alshWorker
	results  []workerResult
	unionBuf map[int][]int

	// Merge-phase scratch, reused across Steps so the per-batch merge
	// performs no allocations: seenBuf flags union membership per hidden
	// layer, outW/outB accumulate the dense output-layer gradient.
	seenBuf [][]bool
	outWBuf *tensor.Matrix
	outBBuf []float64

	// Fault containment: worker panics are recovered per sample and
	// recorded here instead of killing the process.
	errMu   sync.Mutex
	stepErr error

	// sampleHook, when set, runs inside the worker just before each
	// sample is processed. Tests use it to inject panics at a chosen
	// sample.
	sampleHook func(sample int)
}

// alshWorker holds one goroutine's private buffers.
type alshWorker struct {
	states    []*activeState
	scratches []*lsh.QueryScratch // one per hidden layer
	g         *rng.RNG
	buf       []int
}

// workerResult carries one sample's sparse gradients.
type workerResult struct {
	loss float64
	// Per hidden layer: active columns and compact gradients.
	cols  [][]int
	gradW []*tensor.Matrix // fanIn x |cols|
	gradB [][]float64
	outW  *tensor.Matrix // dense output-layer gradient
	outB  []float64
}

// NewParallelALSH builds the multi-worker trainer.
func NewParallelALSH(net *nn.Network, optim opt.Optimizer, cfg ALSHConfig, workers int, g *rng.RNG) (*ParallelALSH, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("core: worker count %d must be positive", workers)
	}
	base, err := NewALSHApprox(net, optim, cfg, g)
	if err != nil {
		return nil, err
	}
	p := &ParallelALSH{ALSHApprox: base, Workers: workers, unionBuf: map[int][]int{}}
	last := len(net.Layers) - 1
	p.seenBuf = make([][]bool, last)
	for i := 0; i < last; i++ {
		p.seenBuf[i] = make([]bool, net.Layers[i].FanOut())
	}
	p.outWBuf = tensor.New(net.Layers[last].FanIn(), net.Layers[last].FanOut())
	p.outBBuf = make([]float64, net.Layers[last].FanOut())
	for w := 0; w < workers; w++ {
		aw := &alshWorker{
			states:    make([]*activeState, len(net.Layers)),
			scratches: make([]*lsh.QueryScratch, len(net.Layers)),
			g:         g.Split(),
		}
		for i := range net.Layers {
			if base.indexes[i] != nil {
				aw.states[i] = &activeState{}
				aw.scratches[i] = base.indexes[i].NewQueryScratch()
			}
		}
		p.workers = append(p.workers, aw)
	}
	return p, nil
}

// Name returns "alsh-parallel".
func (p *ParallelALSH) Name() string { return "alsh-parallel" }

// Step processes every row of the batch in parallel, each with its own
// per-sample active sets, then merges and applies the sparse gradients.
//
// A panic in a worker goroutine is contained: Step returns NaN and the
// recovered panic is available from LastErr. Callers that can handle
// errors (the trainer) should use TryStep instead.
func (p *ParallelALSH) Step(x *tensor.Matrix, y []int) float64 {
	loss, err := p.TryStep(x, y)
	if err != nil {
		return math.NaN()
	}
	return loss
}

// LastErr returns the error recorded by the most recent Step/TryStep, or
// nil if it completed cleanly.
func (p *ParallelALSH) LastErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.stepErr
}

func (p *ParallelALSH) recordErr(err error) {
	p.errMu.Lock()
	if p.stepErr == nil {
		p.stepErr = err
	}
	p.errMu.Unlock()
}

// runSample processes one sample inside a worker, converting a panic
// anywhere below (hash lookup, kernel, optimizer shape check) into an
// error so one bad sample cannot take down the process or strand the
// other workers.
func (p *ParallelALSH) runSample(aw *alshWorker, x *tensor.Matrix, y []int, i int, results []workerResult) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: parallel worker: sample %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	if p.sampleHook != nil {
		p.sampleHook(i)
	}
	results[i] = p.processSample(aw, x.RowView(i), y[i])
	return nil
}

// TryStep is Step with fault containment surfaced as an error: if any
// worker panics, the whole batch is discarded — no gradient is applied,
// the weights are untouched — and the first recovered panic is returned.
func (p *ParallelALSH) TryStep(x *tensor.Matrix, y []int) (float64, error) {
	if x.Rows != len(y) {
		return 0, fmt.Errorf("core: %d rows vs %d labels", x.Rows, len(y))
	}
	layers := p.net.Layers
	last := len(layers) - 1

	t0 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training
	if cap(p.results) < x.Rows {
		p.results = make([]workerResult, x.Rows)
	}
	results := p.results[:x.Rows]
	p.errMu.Lock()
	p.stepErr = nil
	p.errMu.Unlock()

	var wg sync.WaitGroup
	rows := make(chan int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		rows <- i
	}
	close(rows)
	nw := p.Workers
	if nw > x.Rows {
		nw = x.Rows
	}
	tr := trace.Active()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		tid := trace.TIDALSHWorker + w
		if tr != nil {
			tr.NameThread(tid, fmt.Sprintf("alsh worker %d", w))
		}
		//lint:ignore raw-goroutine per-worker ALSH lanes pin worker-owned scratch and carry their own recover (runSample); pool tasks cannot guarantee worker affinity
		go func(aw *alshWorker) {
			defer wg.Done()
			// Keep draining the row queue even after a failure so the
			// pool always terminates; later samples still run (and may
			// fail independently), but the batch is already doomed.
			for i := range rows {
				sp := tr.BeginTID("alsh", "sample", tid)
				if err := p.runSample(aw, x, y, i, results); err != nil {
					p.recordErr(err)
				}
				sp.End()
			}
		}(p.workers[w])
	}
	wg.Wait()
	if err := p.LastErr(); err != nil {
		return 0, err
	}
	t1 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	// Merge: output layer densely, hidden layers by column union. All
	// merge scratch is owned by p and reused across batches.
	var loss float64
	outW, outB := p.outWBuf, p.outBBuf
	outW.Zero()
	for i := range outB {
		outB[i] = 0
	}
	for _, r := range results {
		loss += r.loss
		tensor.AddInPlace(outW, r.outW)
		tensor.Axpy(1, r.outB, outB)
	}
	inv := 1 / float64(x.Rows)
	outW.Scale(inv)
	tensor.ScaleVec(inv, outB)
	p.optim.Step(last, layers[last].W, layers[last].B, nn.Grads{W: outW, B: outB})

	for li := 0; li < last; li++ {
		l := layers[li]
		if p.grads[li].W == nil {
			p.grads[li] = l.ZeroGrads()
		}
		union := p.unionBuf[li][:0]
		seen := p.seenBuf[li]
		for ri := range results {
			r := &results[ri]
			// Record per-sample active-set sizes here in the merge phase:
			// it is single-threaded, so the observation order is stable.
			p.actDists[li].Observe(int64(len(r.cols[li])))
			for ci, col := range r.cols[li] {
				if !seen[col] {
					seen[col] = true
					union = append(union, col)
				}
				// Accumulate the compact gradient column into the
				// full-width scratch.
				for row := 0; row < l.FanIn(); row++ {
					p.grads[li].W.Data[row*l.FanOut()+col] += inv * r.gradW[li].Data[row*r.gradW[li].Cols+ci]
				}
				p.grads[li].B[col] += inv * r.gradB[li][ci]
			}
		}
		p.unionBuf[li] = union
		p.optim.StepCols(li, l.W, l.B, p.grads[li], union)
		clearGradCols(p.grads[li], union)
		for _, c := range union {
			p.touched[li][c] = struct{}{}
			seen[c] = false
		}
	}
	t2 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	p.samples += x.Rows
	p.maintain()
	t3 := time.Now() //lint:ignore wall-clock phase cost accounting (core.Timing); reported, never fed back into training

	p.timing.Forward += t1.Sub(t0) // parallel compute phase
	p.timing.Backward += t2.Sub(t1)
	p.timing.Maintain += t3.Sub(t2)
	return loss * inv, nil
}

// processSample runs one sample's sparse forward/backward on read-only
// weights and returns its sparse gradients.
func (p *ParallelALSH) processSample(aw *alshWorker, row []float64, label int) workerResult {
	layers := p.net.Layers
	last := len(layers) - 1
	x := tensor.FromSlice(1, len(row), row)

	res := workerResult{
		cols:  make([][]int, last),
		gradW: make([]*tensor.Matrix, last),
		gradB: make([][]float64, last),
	}

	// Forward through per-sample active sets.
	act := x
	for i := 0; i < last; i++ {
		st := aw.states[i]
		aw.buf = p.indexes[i].QueryWith(aw.scratches[i], act.RowView(0), aw.buf)
		st.cols = padActive(aw.buf, layers[i].FanOut(), p.minAct[i], p.cfg.MaxActiveFrac, aw.g)
		act = forwardActive(layers[i], act, st, 1)
		res.cols[i] = append([]int(nil), st.cols...)
	}
	// Output layer forward must not touch the shared layer caches, so
	// compute it locally.
	out := layers[last]
	logits := tensor.MatMul(act, out.W)
	logits.AddRowVector(out.B)
	res.loss = p.net.Head.Loss(logits, []int{label})

	// Backward.
	delta := p.net.Head.Delta(logits, []int{label})
	res.outW = tensor.MatMulTransA(act, delta)
	res.outB = append([]float64(nil), delta.RowView(0)...)
	dA := tensor.MatMulTransB(delta, out.W)
	for i := last - 1; i >= 0; i-- {
		st := aw.states[i]
		gw, gb, dPrev := backwardActive(layers[i], dA, st, 1)
		res.gradW[i] = gw
		res.gradB[i] = gb
		dA = dPrev
	}
	return res
}

// padActive copies cols, pads it with distinct random nodes up to the
// floor, and truncates at the cap — the shared active-set policy of the
// sequential and parallel ALSH trainers.
func padActive(cols []int, n, minActive int, maxFrac float64, g *rng.RNG) []int {
	out := append([]int(nil), cols...)
	if maxFrac > 0 {
		limit := int(maxFrac * float64(n))
		if limit < minActive {
			limit = minActive
		}
		if len(out) > limit {
			g.Shuffle(out)
			out = out[:limit]
		}
	}
	for len(out) < minActive {
		j := g.IntN(n)
		dup := false
		for _, c := range out {
			if c == j {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, j)
		}
	}
	return out
}
