package work

import (
	"math"
	"testing"
	"testing/quick"
)

func arch3x1000() Arch { return MLPArch(784, 1000, 3, 10) }

func TestArchBasics(t *testing.T) {
	a := MLPArch(784, 1000, 3, 10)
	if a.Layers() != 4 {
		t.Fatalf("Layers = %d", a.Layers())
	}
	want := 784*1000 + 1000*1000 + 1000*1000 + 1000*10
	if a.Params() != want {
		t.Fatalf("Params = %d, want %d", a.Params(), want)
	}
}

func TestArchValidation(t *testing.T) {
	for _, a := range []Arch{{Dims: []int{5}}, {Dims: []int{5, 0, 3}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Standard(a, 1)
		}()
	}
}

func TestStandardCountsMatchHandComputation(t *testing.T) {
	a := MLPArch(4, 8, 1, 2) // dims 4, 8, 2
	c := Standard(a, 3)
	// forward: 3*(4*8 + 8*2) = 144
	if c.Forward != 144 {
		t.Fatalf("forward = %d", c.Forward)
	}
	// backward: gradW both layers (144) + δWᵀ for layer 1 only (3*8*2=48)
	if c.Backward != 144+48 {
		t.Fatalf("backward = %d", c.Backward)
	}
	if c.Overhead != 0 {
		t.Fatal("standard has no overhead")
	}
	if c.Total() != c.Forward+c.Backward {
		t.Fatal("total inconsistent")
	}
}

func TestBackwardDominatesForward(t *testing.T) {
	// The paper observes backpropagation takes longer than feedforward
	// (§10.1); the model must reflect the 2x product count.
	c := Standard(arch3x1000(), 20)
	if c.Backward <= c.Forward {
		t.Fatalf("backward %d should exceed forward %d", c.Backward, c.Forward)
	}
	ratio := float64(c.Backward) / float64(c.Forward)
	if ratio < 1.5 || ratio > 2.0 {
		t.Fatalf("backward/forward ratio %v outside [1.5, 2]", ratio)
	}
}

func TestColumnSampledSpeedup(t *testing.T) {
	a := arch3x1000()
	exact := Standard(a, 1)
	// 5% active, no hashing: roughly linear saving in the hidden layers.
	dropout := ColumnSampled(a, 1, 0.05, 0, 0, 0)
	if s := Speedup(exact, dropout); s < 5 {
		t.Fatalf("5%% column sampling speedup %v, want substantial", s)
	}
	// Full active set equals the exact cost.
	full := ColumnSampled(a, 1, 1.0, 0, 0, 0)
	if full.Total() != exact.Total() {
		t.Fatalf("activeFrac=1 cost %d != exact %d", full.Total(), exact.Total())
	}
}

func TestColumnSampledHashOverhead(t *testing.T) {
	a := arch3x1000()
	noHash := ColumnSampled(a, 1, 0.05, 0, 0, 0)
	withHash := ColumnSampled(a, 1, 0.05, 6, 5, 3)
	if withHash.Overhead <= 0 {
		t.Fatal("hashing must add overhead")
	}
	if withHash.Forward != noHash.Forward || withHash.Backward != noHash.Backward {
		t.Fatal("hashing must not change compute phases")
	}
	// The query overhead should be small relative to even the sampled
	// compute at the paper's K=6, L=5 — otherwise ALSH could never win.
	if float64(withHash.Overhead) > 0.5*float64(withHash.Forward+withHash.Backward) {
		t.Fatalf("hash overhead %d disproportionate to compute %d",
			withHash.Overhead, withHash.Forward+withHash.Backward)
	}
}

func TestRowSampledMatchesPaperStory(t *testing.T) {
	a := arch3x1000()
	// Mini-batch 20, k=10: substantial total speedup (Table 4).
	exact := Standard(a, 20)
	mc := RowSampled(a, 20, 10)
	if s := Speedup(exact, mc); s < 1.5 {
		t.Fatalf("mini-batch MC speedup %v, want > 1.5", s)
	}
	// Forward is exact by construction.
	if mc.Forward != exact.Forward {
		t.Fatal("MC forward must equal exact forward")
	}

	// Stochastic setting: overhead + exact gradW means no win (§9.3) —
	// total cost within a few percent of exact or worse.
	exact1 := Standard(a, 1)
	mc1 := RowSampled(a, 1, 10)
	if float64(mc1.Total()) < 0.9*float64(exact1.Total()) {
		t.Fatalf("stochastic MC total %d should not be much below exact %d", mc1.Total(), exact1.Total())
	}
	if mc1.Overhead == 0 {
		t.Fatal("stochastic MC still pays probability-estimation overhead")
	}
}

func TestRowSampledGradWExactAtSmallBatch(t *testing.T) {
	a := MLPArch(10, 20, 2, 5)
	// batch 1 with k=10: the gradW sampling keeps min(k, batch) = 1 of
	// 1 pairs (exact); growing k cannot change the compute phases.
	c1 := RowSampled(a, 1, 10)
	c2 := RowSampled(a, 1, 1000)
	// deltaPrev sampling clamps at nOut, so both should agree at huge k
	// only if k >= nOut in both; compare forward instead.
	if c1.Forward != c2.Forward {
		t.Fatal("forward must not depend on k")
	}
	if c2.Backward < c1.Backward {
		t.Fatal("more samples cannot reduce backward cost")
	}
}

func TestSpeedupEdgeCases(t *testing.T) {
	// A method that performs zero work is infinitely faster than one
	// that performs any — not 0x, the worst possible speedup (that was a
	// real bug: a degenerate zero-cost config sorted as the slowest).
	if s := Speedup(Cost{Forward: 10}, Cost{}); !math.IsInf(s, 1) {
		t.Fatalf("zero-cost approx should yield +Inf, got %v", s)
	}
	if s := Speedup(Cost{}, Cost{}); s != 1 {
		t.Fatalf("two zero costs tie at 1, got %v", s)
	}
	if Speedup(Cost{Forward: 10}, Cost{Forward: 10}) != 1 {
		t.Fatal("equal costs should yield 1")
	}
	if s := Speedup(Cost{Forward: 10}, Cost{Overhead: 20}); s != 0.5 {
		t.Fatalf("overhead counts toward approx cost, want 0.5, got %v", s)
	}
}

// Property: column sampling cost is monotone in the active fraction, and
// never exceeds the exact cost.
func TestColumnSampledMonotone(t *testing.T) {
	a := MLPArch(50, 80, 3, 10)
	f := func(seed int64) bool {
		fr1 := 0.05 + 0.4*float64(((seed%7)+7)%7)/7
		fr2 := fr1 + 0.2
		if fr2 > 1 {
			fr2 = 1
		}
		c1 := ColumnSampled(a, 4, fr1, 0, 0, 0)
		c2 := ColumnSampled(a, 4, fr2, 0, 0, 0)
		exact := Standard(a, 4)
		return c1.Total() <= c2.Total() && c2.Total() <= exact.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: row-sampled backward cost grows with k but is capped by the
// exact backward cost plus overhead.
func TestRowSampledBounded(t *testing.T) {
	a := MLPArch(30, 60, 2, 5)
	exact := Standard(a, 8)
	prev := uint64(0)
	for _, k := range []int{1, 4, 16, 64, 1024} {
		c := RowSampled(a, 8, k)
		if c.Backward < prev {
			t.Fatalf("backward not monotone in k at %d", k)
		}
		prev = c.Backward
		if c.Backward > exact.Backward {
			t.Fatalf("sampled backward %d exceeds exact %d at k=%d", c.Backward, exact.Backward, k)
		}
	}
}

func TestModelAgreesWithMeasuredShapes(t *testing.T) {
	// The model should predict the orderings the wall-clock benches show
	// at the paper's architecture: dropout < mc-M < standard; and
	// adaptive-dropout == standard compute + mask overhead (not modeled
	// here, so just standard ordering checks).
	a := arch3x1000()
	std := Standard(a, 20).Total()
	mc := RowSampled(a, 20, 10).Total()
	drop := ColumnSampled(a, 20, 0.05, 0, 0, 0).Total()
	if !(drop < mc && mc < std) {
		t.Fatalf("ordering violated: dropout %d, mc %d, standard %d", drop, mc, std)
	}
}
