// Package work is an analytic cost model for the training methods: it
// counts the multiply-accumulate operations (MACs) each method performs
// per training step, realizing the complexity claims of §4 (exact
// training is Θ(n²) per layer; column sampling replaces one factor n by
// the active-set size; row sampling replaces the summation length) and
// providing the deterministic energy proxy the paper's §11 names as
// future work — skipped arithmetic is the first-order driver of energy
// per step on a CPU.
package work

import (
	"fmt"
	"math"
)

// Arch is the layer structure of an MLP: Dims[0] is the input width,
// Dims[len-1] the output width, everything between hidden widths.
type Arch struct {
	Dims []int
}

// MLPArch builds the uniform architecture used across the paper's
// experiments.
func MLPArch(inputs, units, depth, outputs int) Arch {
	dims := make([]int, 0, depth+2)
	dims = append(dims, inputs)
	for i := 0; i < depth; i++ {
		dims = append(dims, units)
	}
	dims = append(dims, outputs)
	return Arch{Dims: dims}
}

// Layers returns the number of weight matrices.
func (a Arch) Layers() int { return len(a.Dims) - 1 }

// Params returns the weight-parameter count (biases excluded; they are
// linear terms that never dominate).
func (a Arch) Params() int {
	total := 0
	for i := 0; i+1 < len(a.Dims); i++ {
		total += a.Dims[i] * a.Dims[i+1]
	}
	return total
}

func (a Arch) check() {
	if len(a.Dims) < 2 {
		panic(fmt.Sprintf("work: architecture needs at least 2 dims, has %d", len(a.Dims)))
	}
	for i, d := range a.Dims {
		if d <= 0 {
			panic(fmt.Sprintf("work: dim %d is %d", i, d))
		}
	}
}

// Cost is a per-step MAC count split by phase.
type Cost struct {
	Forward  uint64
	Backward uint64
	// Overhead counts auxiliary passes that are not part of the exact
	// computation: sampling-probability estimation (MC-approx norms over
	// W), hash signatures (ALSH).
	Overhead uint64
}

// Total sums the phases.
func (c Cost) Total() uint64 { return c.Forward + c.Backward + c.Overhead }

// Speedup returns the ratio of exact total cost to the approximate cost.
// A zero-cost approximation of nonzero exact work is infinitely faster
// (+Inf), not the worst possible speedup; two zero costs tie at 1.
func Speedup(exact, approx Cost) float64 {
	if approx.Total() == 0 {
		if exact.Total() == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(exact.Total()) / float64(approx.Total())
}

// Standard returns the exact per-step cost: each layer multiplies a
// (batch x nIn) activation block by an (nIn x nOut) weight matrix in the
// forward pass, and performs two products of the same size in the
// backward pass (weight gradient and propagated error).
func Standard(a Arch, batch int) Cost {
	a.check()
	var c Cost
	for i := 0; i+1 < len(a.Dims); i++ {
		layer := uint64(batch) * uint64(a.Dims[i]) * uint64(a.Dims[i+1])
		c.Forward += layer
		c.Backward += layer // gradW = aᵀ·δ
		if i > 0 {
			c.Backward += layer // δ·Wᵀ (not needed below the first layer)
		}
	}
	return c
}

// ColumnSampled returns the cost when each hidden layer evaluates only a
// fraction activeFrac of its nodes — Dropout (activeFrac = keep
// probability) and ALSH-approx (activeFrac = mean active fraction). The
// output layer stays exact, matching the implementations. hashOverhead
// adds the per-step ALSH query cost: L signature computations of K dot
// products in the expanded dimension per layer (zero for Dropout).
func ColumnSampled(a Arch, batch int, activeFrac float64, hashK, hashL, hashM int) Cost {
	a.check()
	if activeFrac <= 0 || activeFrac > 1 {
		panic(fmt.Sprintf("work: active fraction %v out of (0,1]", activeFrac))
	}
	var c Cost
	last := a.Layers() - 1
	for i := 0; i+1 < len(a.Dims); i++ {
		nIn, nOut := uint64(a.Dims[i]), uint64(a.Dims[i+1])
		frac := activeFrac
		if i == last {
			frac = 1 // exact output layer
		}
		active := uint64(float64(nOut) * frac)
		if active == 0 {
			active = 1
		}
		layer := uint64(batch) * nIn * active
		c.Forward += layer
		c.Backward += layer
		if i > 0 {
			c.Backward += layer
		}
		if hashL > 0 && i != last {
			// One query per batch row: L hash functions x K bits, each a
			// dot product over the expanded dimension nIn+m.
			c.Overhead += uint64(batch) * uint64(hashL) * uint64(hashK) * (nIn + uint64(hashM))
		}
	}
	return c
}

// RowSampled returns the cost of the paper's MC-approx (backward-only
// placement): the forward pass is exact; in the backward pass the
// propagated-error product sums k of nOut terms and the weight-gradient
// product sums min(k, batch) of batch terms; estimating the Eq. 7
// probabilities costs one pass over W per hidden layer (the column
// norms) plus one pass over the activation and error blocks.
func RowSampled(a Arch, batch, k int) Cost {
	a.check()
	if k <= 0 {
		panic("work: k must be positive")
	}
	var c Cost
	for i := 0; i+1 < len(a.Dims); i++ {
		nIn, nOut := uint64(a.Dims[i]), uint64(a.Dims[i+1])
		c.Forward += uint64(batch) * nIn * nOut

		// gradW: sample the batch dimension.
		kb := uint64(k)
		if uint64(batch) < kb {
			kb = uint64(batch)
		}
		c.Backward += kb * nIn * nOut

		if i > 0 {
			// δ·Wᵀ: sample the nOut dimension.
			kn := uint64(k)
			if nOut < kn {
				kn = nOut
			}
			c.Backward += uint64(batch) * nIn * kn
			// Probability estimation: column norms of W (a full pass
			// over the layer's weights) plus norms of δ's columns.
			c.Overhead += nIn*nOut + uint64(batch)*nOut
		}
		// gradW probabilities: row norms of the activation and error
		// blocks.
		c.Overhead += uint64(batch) * (nIn + nOut)
	}
	return c
}
