package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDotBasics(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if Dot(nil, nil) != 0 {
		t.Fatal("empty Dot should be 0")
	}
	// Length not a multiple of the unroll factor.
	if Dot([]float64{1, 1, 1, 1, 1}, []float64{1, 2, 3, 4, 5}) != 15 {
		t.Fatal("Dot tail handling wrong")
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Dot")
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1, 1, 1}
	Axpy(2, []float64{1, 2, 3, 4, 5}, y)
	want := []float64{3, 5, 7, 9, 11}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v", y)
		}
	}
	// alpha == 0 fast path must leave y untouched.
	Axpy(0, []float64{9, 9, 9, 9, 9}, y)
	for i := range want {
		if y[i] != want[i] {
			t.Fatal("Axpy with alpha=0 modified y")
		}
	}
}

func TestAxpyMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Axpy")
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestNormScaleSum(t *testing.T) {
	if Norm([]float64{3, 4}) != 5 {
		t.Fatal("Norm wrong")
	}
	x := []float64{2, 4}
	ScaleVec(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Fatal("ScaleVec wrong")
	}
	if SumVec([]float64{1, 2, 3}) != 6 {
		t.Fatal("SumVec wrong")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax empty should be -1")
	}
	if ArgMax([]float64{-2, -1, -3}) != 1 {
		t.Fatal("ArgMax negatives wrong")
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		n := 1 + r.IntN(40)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := range a {
			a[i], b[i], c[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-9 {
			return false
		}
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = a[i] + c[i]
		}
		return math.Abs(Dot(sum, b)-(Dot(a, b)+Dot(c, b))) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= ||a||*||b||.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		n := 1 + r.IntN(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = r.NormFloat64(), r.NormFloat64()
		}
		return math.Abs(Dot(a, b)) <= Norm(a)*Norm(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
