package tensor

import (
	"math"
	"testing"

	"samplednn/internal/rng"
)

// Property tests for the packed register-blocked GEMM core: every packed
// kernel is pinned against a naive triple-loop reference implementing
// the documented summation contract — exact (bit-for-bit) equality on
// float64, exact equality on float32 against the float32 reference, and
// a stated ULP bound against the float64 reference.

// naiveFMA is the float64 reference: an ascending-k fused-multiply-add
// chain per element, the exact contract of packed.go.
func naiveFMA(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s = math.FMA(a.Data[i*a.Cols+k], b.Data[k*b.Cols+j], s)
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// naive32 is the float32 reference: ascending-k multiply-then-add.
func naive32(a, b *Matrix32) *Matrix32 {
	out := New32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// packedShapes exercises degenerate sizes (0×N, 1×1, empty reduction),
// dimensions that are not multiples of the micro-tile or cache blocks,
// and sizes straddling the packed-dispatch threshold. Shapes at or above
// the threshold take the packed path; the rest pin the streaming
// kernels' equivalence on the same harness.
var packedShapes = [][3]int{
	{0, 8, 8},
	{8, 0, 8},
	{8, 8, 0},
	{1, 1, 1},
	{1, 100, 1},
	{4, 4, 4},
	{64, 64, 64},    // exactly the packed threshold
	{65, 67, 63},    // odd, above threshold, all edge tiles
	{130, 31, 520},  // wider than one NC panel, k below KC
	{257, 300, 129}, // k above KC: multi-panel accumulator round trip
}

func randDense(g *rng.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	g.GaussianSlice(m.Data, 0, 1)
	return m
}

// TestPackedMatMulExactVsNaiveFMA pins the strongest form of the f64
// contract: packed results equal the naive FMA triple loop bit-for-bit,
// with no tolerance, on every shape and at several worker counts.
func TestPackedMatMulExactVsNaiveFMA(t *testing.T) {
	g := rng.New(901)
	for _, sh := range packedShapes {
		m, k, n := sh[0], sh[1], sh[2]
		if !usePacked(m, k, n) {
			continue // streaming path has its own contract (axpy order)
		}
		a := randDense(g, m, k)
		b := randDense(g, k, n)
		want := naiveFMA(a, b)
		for _, workers := range []int{1, 3} {
			withWorkers(workers, func() {
				got := New(m, n)
				MatMulInto(got, a, b)
				if !bitsEqual(got, want) {
					t.Errorf("MatMulInto shape %v workers=%d: not bit-equal to naive FMA loop", sh, workers)
				}

				// transA: feed aᵀ so the product equals a·b.
				gotTA := New(m, n)
				MatMulTransAInto(gotTA, a.T(), b)
				if !bitsEqual(gotTA, want) {
					t.Errorf("MatMulTransAInto shape %v workers=%d: not bit-equal to naive FMA loop", sh, workers)
				}

				// transB: feed bᵀ so the product equals a·b.
				gotTB := New(m, n)
				MatMulTransBInto(gotTB, a, b.T())
				if !bitsEqual(gotTB, want) {
					t.Errorf("MatMulTransBInto shape %v workers=%d: not bit-equal to naive FMA loop", sh, workers)
				}
			})
		}
	}
}

// TestPackedMatMulColsExact pins the column-subset kernel: listed
// columns equal the naive FMA loop bit-for-bit, unlisted columns stay
// untouched — for empty, singleton, strided, and non-block-multiple
// subsets.
func TestPackedMatMulColsExact(t *testing.T) {
	g := rng.New(902)
	m, k, n := 65, 80, 200
	a := randDense(g, m, k)
	b := randDense(g, k, n)
	want := naiveFMA(a, b)
	colSets := [][]int{{}, {7}, stride(n, 3), stride(n, 1)[:129]}
	for _, cols := range colSets {
		for _, workers := range []int{1, 3} {
			withWorkers(workers, func() {
				out := New(m, n)
				out.Fill(-42)
				MatMulCols(out, a, b, cols)
				listed := make(map[int]bool, len(cols))
				for _, j := range cols {
					listed[j] = true
				}
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						got := out.At(i, j)
						if listed[j] {
							if usePacked(m, k, len(cols)) && math.Float64bits(got) != math.Float64bits(want.At(i, j)) {
								t.Fatalf("cols len %d workers=%d: out[%d,%d] = %v, want %v",
									len(cols), workers, i, j, got, want.At(i, j))
							}
						} else if got != -42 {
							t.Fatalf("cols len %d workers=%d: unlisted out[%d,%d] overwritten to %v",
								len(cols), workers, i, j, got)
						}
					}
				}
			})
		}
	}
}

// TestPackedBlockConfigInvariance pins the SetBlockConfig contract:
// block sizes change throughput only, never any element's value — even
// hostile configurations (blocks smaller than a micro-tile, KC=1) must
// reproduce the default result bit-for-bit.
func TestPackedBlockConfigInvariance(t *testing.T) {
	g := rng.New(903)
	a := randDense(g, 70, 90)
	b := randDense(g, 90, 110)
	want := MatMul(a, b)
	defer SetBlockConfig(BlockConfig{})
	for _, cfg := range []BlockConfig{
		{MC: 2, KC: 1, NC: 4},
		{MC: 6, KC: 7, NC: 10},
		{MC: 1024, KC: 1024, NC: 1024},
	} {
		SetBlockConfig(cfg)
		got := MatMul(a, b)
		if !bitsEqual(got, want) {
			t.Errorf("block config %+v changed MatMul values", cfg)
		}
	}
	SetBlockConfig(BlockConfig{})
	if GEMMBlockConfig() != defaultBlocks {
		t.Errorf("zero SetBlockConfig did not restore defaults: %+v", GEMMBlockConfig())
	}
}

// TestPackedNaNPropagation extends the zero-skip regression test to the
// packed path: above the dispatch threshold, 0·NaN must still reach the
// output.
func TestPackedNaNPropagation(t *testing.T) {
	m, k, n := 64, 64, 64 // exactly the packed threshold
	if !usePacked(m, k, n) {
		t.Fatal("test shape no longer dispatches to the packed path")
	}
	a := New(m, k) // all zeros
	b := New(k, n)
	b.Set(k/2, n/2, math.NaN())
	for _, workers := range []int{1, 4} {
		withWorkers(workers, func() {
			out := New(m, n)
			MatMulInto(out, a, b)
			if !math.IsNaN(out.At(0, n/2)) {
				t.Errorf("workers=%d: packed path masked 0*NaN as %v", workers, out.At(0, n/2))
			}
		})
	}
}

// TestMatMul32ExactVsNaive32 pins the float32 contract: packed float32
// results equal the naive float32 triple loop bit-for-bit, serial and
// parallel.
func TestMatMul32ExactVsNaive32(t *testing.T) {
	g := rng.New(904)
	for _, sh := range packedShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randDense(g, m, k).ToFloat32()
		b := randDense(g, k, n).ToFloat32()
		want := naive32(a, b)
		for _, workers := range []int{1, 3} {
			withWorkers(workers, func() {
				got := New32(m, n)
				MatMul32Into(got, a, b)
				if !Equal32(got, want) {
					t.Errorf("MatMul32Into shape %v workers=%d: not bit-equal to naive float32 loop", sh, workers)
				}
			})
		}
	}
}

// TestMatMul32AccuracyBoundVsFloat64 pins the stated accuracy contract
// of the float32 path (DESIGN.md §13): against the float64 product of
// the same (exactly representable) operands, every element satisfies
// the recursive-summation bound |err| ≤ k·eps32·Σ_k|a_ik·b_kj|. The
// bound is on the magnitude sum, not the result — cancellation can make
// the relative error of a small result arbitrarily large while the
// absolute bound still holds.
func TestMatMul32AccuracyBoundVsFloat64(t *testing.T) {
	const eps32 = 1.0 / (1 << 23)
	g := rng.New(905)
	for _, sh := range [][3]int{{64, 64, 64}, {65, 300, 63}} {
		m, k, n := sh[0], sh[1], sh[2]
		a32 := randDense(g, m, k).ToFloat32()
		b32 := randDense(g, k, n).ToFloat32()
		// Widen the float32 operands so both paths see identical inputs.
		a64, b64 := a32.ToFloat64(), b32.ToFloat64()
		ref := MatMul(a64, b64)
		got := MatMul32(a32, b32)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var magSum float64
				for q := 0; q < k; q++ {
					magSum += math.Abs(a64.At(i, q) * b64.At(q, j))
				}
				err := math.Abs(float64(got.At(i, j)) - ref.At(i, j))
				if bound := float64(k) * eps32 * magSum; err > bound {
					t.Fatalf("shape %v out[%d,%d]: |err| = %g exceeds k·eps32·Σ|a·b| = %g", sh, i, j, err, bound)
				}
			}
		}
	}
}

// TestMatMul32ULPBoundPositiveOperands pins the ULP form of the contract
// in the regime where it is valid: with positive operands there is no
// cancellation, the magnitude sum equals the result, and the bound
// collapses to ~2k ULPs of the reference.
func TestMatMul32ULPBoundPositiveOperands(t *testing.T) {
	g := rng.New(909)
	m, k, n := 64, 128, 64
	a := New(m, k)
	b := New(k, n)
	for i := range a.Data {
		a.Data[i] = g.Float64() + 0.5
	}
	for i := range b.Data {
		b.Data[i] = g.Float64() + 0.5
	}
	a32, b32 := a.ToFloat32(), b.ToFloat32()
	ref := MatMul(a32.ToFloat64(), b32.ToFloat64())
	got := MatMul32(a32, b32)
	if !EqualWithinULP32(got, ref, int64(2*k)) {
		worst := int64(0)
		for i := range got.Data {
			if d := ULPDistance32(got.Data[i], float32(ref.Data[i])); d > worst {
				worst = d
			}
		}
		t.Errorf("positive-operand float32 product exceeds %d ULP bound (worst %d)", 2*k, worst)
	}
}

// TestSharedSupportSegmentsMatchPerRow pins the sparse kernel's packed
// shared-support fast path against the per-row reference semantics: a
// batch whose rows share one support (the chained-sampling hot case)
// must produce, for every row, values within tolerance of the per-row
// gathered sum, and identical results serial vs parallel.
func TestSharedSupportSegmentsMatchPerRow(t *testing.T) {
	g := rng.New(906)
	m, k, p := 48, 400, 96  // 48·37·96 flops clears the usePacked gate
	active := stride(k, 11) // ~37 shared active columns
	a := New(m, k)
	for i := 0; i < m; i++ {
		row := a.RowView(i)
		for _, c := range active {
			row[c] = g.NormFloat64()
		}
	}
	b := randDense(g, p, k)
	segs, _ := sparseSegments(a, p, nil)
	if len(segs) != 1 || segs[0].kind != segShared {
		t.Fatalf("expected one shared-support segment, got %+v", segs)
	}
	// Per-row gathered reference (the pre-packing semantics).
	want := New(m, p)
	for i := 0; i < m; i++ {
		arow := a.RowView(i)
		for j := 0; j < p; j++ {
			brow := b.RowView(j)
			var s float64
			for _, c := range active {
				s += arow[c] * brow[c]
			}
			want.Set(i, j, s)
		}
	}
	var serial *Matrix
	withWorkers(1, func() {
		serial = New(m, p)
		MatMulTransBSparseInto(serial, a, b, nil)
	})
	if !EqualApprox(serial, want, 1e-9) {
		t.Fatal("shared-support packed path diverges from per-row gathered reference")
	}
	withWorkers(4, func() {
		par := New(m, p)
		MatMulTransBSparseInto(par, a, b, nil)
		if !bitsEqual(serial, par) {
			t.Fatal("shared-support path not bit-identical serial vs parallel")
		}
	})
}

// TestSparseSegmentsMixedRuns checks the prescan's grouping on a batch
// that interleaves dense rows, two different shared supports, and
// unique-support rows — and that the full kernel still matches the
// dense transB product within tolerance.
func TestSparseSegmentsMixedRuns(t *testing.T) {
	g := rng.New(907)
	k, p := 300, 96 // run sizes below chosen so each shared run clears usePacked
	var rows [][]float64
	denseRow := func() []float64 {
		r := make([]float64, k)
		g.GaussianSlice(r, 0, 1)
		return r
	}
	supRow := func(sup []int) []float64 {
		r := make([]float64, k)
		for _, c := range sup {
			r[c] = g.NormFloat64()
		}
		return r
	}
	supA, supB := stride(k, 7), stride(k, 13)
	for i := 0; i < 16; i++ {
		rows = append(rows, denseRow())
	}
	for i := 0; i < 64; i++ {
		rows = append(rows, supRow(supA))
	}
	for i := 0; i < 64; i++ {
		rows = append(rows, supRow(supB))
	}
	rows = append(rows, supRow([]int{3}), supRow([]int{5}))
	a := FromRows(rows)
	b := randDense(g, p, k)

	segs, _ := sparseSegments(a, p, nil)
	counts := map[uint8]int{}
	for _, s := range segs {
		counts[s.kind]++
	}
	if counts[segShared] != 2 {
		t.Errorf("expected 2 shared segments, got %d (segs %+v)", counts[segShared], segs)
	}

	want := MatMulTransB(a, b)
	got := New(a.Rows, p)
	MatMulTransBSparseInto(got, a, b, nil)
	if !EqualApprox(got, want, 1e-9) {
		t.Error("mixed-run sparse kernel diverges from dense transB")
	}
}

// TestMatMulValidationPrecedesWrites pins the bugfix satellite: a shape
// or index-range mismatch must panic with out untouched, so the
// divergence-rollback machinery never observes a half-written buffer.
func TestMatMulValidationPrecedesWrites(t *testing.T) {
	g := rng.New(908)
	a := randDense(g, 6, 5)
	b := randDense(g, 5, 7)
	cases := []struct {
		name string
		call func(out *Matrix)
	}{
		{"MatMulInto/shape", func(out *Matrix) { MatMulInto(out, a, randDense(g, 4, 7)) }},
		{"MatMulInto/out", func(out *Matrix) { MatMulInto(out.RowRange(0, 5), a, b) }},
		{"MatMulTransAInto/shape", func(out *Matrix) { MatMulTransAInto(out, randDense(g, 4, 6), b) }},
		{"MatMulTransBInto/shape", func(out *Matrix) { MatMulTransBInto(out, a, randDense(g, 7, 4)) }},
		{"MatMulCols/negative", func(out *Matrix) { MatMulCols(out, a, b, []int{0, -1}) }},
		{"MatMulCols/toolarge", func(out *Matrix) { MatMulCols(out, a, b, []int{0, 7}) }},
		{"Sparse/shape", func(out *Matrix) { MatMulTransBSparseInto(out, a, randDense(g, 7, 4), nil) }},
	}
	for _, tc := range cases {
		out := New(6, 7)
		out.Fill(1.5)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.call(out)
		}()
		for i, v := range out.Data {
			if v != 1.5 {
				t.Errorf("%s: out.Data[%d] written (%v) before validation panic", tc.name, i, v)
				break
			}
		}
	}
}
