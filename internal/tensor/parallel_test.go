package tensor

import (
	"math"
	"testing"

	"samplednn/internal/pool"
	"samplednn/internal/rng"
)

// withWorkers runs fn with the package's kernels pinned to a w-worker
// pool, restoring the shared default afterwards.
func withWorkers(w int, fn func()) {
	p := pool.New(w)
	SetPool(p)
	defer SetPool(nil)
	fn()
}

// bitsEqual compares matrices bit-for-bit (NaNs compare equal to
// themselves, +0 and -0 differ) — the determinism contract of the
// parallel kernels is bit-identity, not approximate closeness.
func bitsEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func bitsEqualVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sparseRandMatrix fills a matrix with Gaussian values, zeroing a fraction
// of entries so the kernels' zero handling is exercised.
func sparseRandMatrix(g *rng.RNG, rows, cols int, zeroFrac float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if g.Float64() < zeroFrac {
			continue
		}
		m.Data[i] = g.NormFloat64()
	}
	return m
}

// kernelShapes covers degenerate (1×n, n×1, empty), small-serial, and
// large-enough-to-parallelize shapes. (m, k, n) are the GEMM dims.
var kernelShapes = [][3]int{
	{1, 1, 1},
	{1, 64, 1},
	{64, 1, 64},
	{1, 1, 64},
	{0, 8, 8},
	{8, 0, 8},
	{8, 8, 0},
	{3, 5, 7},
	{40, 40, 40},   // above the parallel cutoff
	{100, 64, 100}, // well above, multiple chunks per worker
	{257, 33, 129}, // odd sizes: last chunk shorter than grain
}

// TestParallelKernelsBitIdenticalToSerial is the property test of the
// determinism contract: every parallel kernel must produce bit-identical
// results to its serial (1-worker) counterpart on rectangular and
// degenerate shapes, for several worker counts.
func TestParallelKernelsBitIdenticalToSerial(t *testing.T) {
	g := rng.New(77)
	for _, sh := range kernelShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := sparseRandMatrix(g, m, k, 0.3)
		b := sparseRandMatrix(g, k, n, 0.3)
		bt := sparseRandMatrix(g, n, k, 0.3)   // for a * btᵀ
		tall := sparseRandMatrix(g, m, n, 0.3) // for aᵀ · tall (shared leading dim m)
		// Column subsets for MatMulCols: empty, singleton, strided.
		colSets := [][]int{{}}
		if n > 0 {
			colSets = append(colSets, []int{0}, stride(n, 3))
		}
		rowVec := make([]float64, k)
		g.GaussianSlice(rowVec, 0, 1)

		type result struct {
			mm, ta, tb, sp *Matrix
			cols           []*Matrix
			colNorms       []float64
			rowNorms       []float64
			colSums        []float64
			had            *Matrix
			addRow         *Matrix
		}
		runAll := func() result {
			var r result
			r.mm = New(m, n)
			MatMulInto(r.mm, a, b)
			r.ta = New(k, n)
			MatMulTransAInto(r.ta, a, tall)
			r.tb = New(m, n)
			MatMulTransBInto(r.tb, a, bt)
			r.sp = New(m, n)
			MatMulTransBSparseInto(r.sp, a, bt, nil)
			for _, cs := range colSets {
				o := New(m, n)
				MatMulCols(o, a, b, cs)
				r.cols = append(r.cols, o)
			}
			r.colNorms = a.ColNorms()
			r.rowNorms = a.RowNorms()
			r.colSums = make([]float64, a.Cols)
			ColSumsInto(r.colSums, a)
			r.had = Hadamard(a, a)
			r.addRow = a.Clone()
			r.addRow.AddRowVector(rowVec)
			return r
		}

		var serial result
		withWorkers(1, func() { serial = runAll() })
		for _, workers := range []int{2, 4, 7} {
			var par result
			withWorkers(workers, func() { par = runAll() })
			check := func(name string, ok bool) {
				if !ok {
					t.Errorf("%s not bit-identical at shape %v, workers=%d", name, sh, workers)
				}
			}
			check("MatMulInto", bitsEqual(serial.mm, par.mm))
			check("MatMulTransAInto", bitsEqual(serial.ta, par.ta))
			check("MatMulTransBInto", bitsEqual(serial.tb, par.tb))
			check("MatMulTransBSparseInto", bitsEqual(serial.sp, par.sp))
			for ci := range serial.cols {
				check("MatMulCols", bitsEqual(serial.cols[ci], par.cols[ci]))
			}
			check("ColNorms", bitsEqualVec(serial.colNorms, par.colNorms))
			check("RowNorms", bitsEqualVec(serial.rowNorms, par.rowNorms))
			check("ColSumsInto", bitsEqualVec(serial.colSums, par.colSums))
			check("Hadamard", bitsEqual(serial.had, par.had))
			check("AddRowVector", bitsEqual(serial.addRow, par.addRow))
		}
	}
}

func stride(n, step int) []int {
	var out []int
	for j := 0; j < n; j += step {
		out = append(out, j)
	}
	return out
}

// TestParallelMatchesSerialAgainstReference anchors the parallel kernels
// to an independent implementation (the naive ijk product), so the
// bit-identity test above cannot be satisfied by a bug shared between
// serial and parallel paths.
func TestParallelMatchesSerialAgainstReference(t *testing.T) {
	g := rng.New(78)
	a := sparseRandMatrix(g, 50, 40, 0.2)
	b := sparseRandMatrix(g, 40, 60, 0.2)
	ref := MatMulNaive(a, b)
	withWorkers(4, func() {
		out := New(50, 60)
		MatMulInto(out, a, b)
		if !EqualApprox(out, ref, 1e-9) {
			t.Fatal("parallel MatMulInto disagrees with the naive reference")
		}
	})
}

// TestMatMulPropagatesNonFinite is the zero-skip regression test: an
// earlier version of MatMulInto/MatMulTransAInto skipped zero entries of
// a, turning 0·NaN and 0·Inf into 0 — a diverging operand could be
// masked, and the trainer's non-finite-loss rollback never fired.
func TestMatMulPropagatesNonFinite(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withWorkers(workers, func() {
			for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
				// NaN/Inf in b, zeros in a: out = 0·bad must be NaN.
				a := New(2, 3) // all zeros
				b := New(3, 2)
				b.Set(1, 1, bad)
				out := New(2, 2)
				MatMulInto(out, a, b)
				if !math.IsNaN(out.At(0, 1)) {
					t.Errorf("workers=%d: MatMulInto masked 0*%v as %v", workers, bad, out.At(0, 1))
				}

				ta := New(3, 2) // all zeros, used as aᵀ operand
				bb := New(3, 2)
				bb.Set(2, 0, bad)
				outTA := New(2, 2)
				MatMulTransAInto(outTA, ta, bb)
				if !math.IsNaN(outTA.At(1, 0)) {
					t.Errorf("workers=%d: MatMulTransAInto masked 0*%v as %v", workers, bad, outTA.At(1, 0))
				}

				// The mirror case: non-finite in a must reach out even when
				// multiplied by zeros in b.
				a2 := New(2, 3)
				a2.Set(0, 0, bad)
				b2 := New(3, 2) // all zeros
				out2 := New(2, 2)
				MatMulInto(out2, a2, b2)
				if !math.IsNaN(out2.At(0, 0)) {
					t.Errorf("workers=%d: MatMulInto dropped %v from a", workers, bad)
				}
			}
		})
	}
}

// TestSparseKernelScratchReuse pins the scratch-reuse contract of the
// sparse kernel across serial and parallel execution.
func TestSparseKernelScratchReuse(t *testing.T) {
	g := rng.New(79)
	a := sparseRandMatrix(g, 6, 50, 0.9)
	b := sparseRandMatrix(g, 4, 50, 0)
	out := New(6, 4)
	withWorkers(1, func() {
		sup := MatMulTransBSparseInto(out, a, b, nil)
		if sup == nil {
			t.Fatal("serial call should hand back grown scratch")
		}
		again := MatMulTransBSparseInto(out, a, b, sup)
		if cap(again) < cap(sup) {
			t.Fatal("scratch must be reused, not shrunk")
		}
	})
	// Parallel path: the passed-in scratch must come back unchanged (the
	// chunks use private scratch), and results must match serial.
	big := sparseRandMatrix(g, 120, 80, 0.8)
	wide := sparseRandMatrix(g, 64, 80, 0)
	serialOut, parOut := New(120, 64), New(120, 64)
	withWorkers(1, func() { MatMulTransBSparseInto(serialOut, big, wide, nil) })
	withWorkers(4, func() {
		scratch := make([]int, 0, 7)
		got := MatMulTransBSparseInto(parOut, big, wide, scratch)
		_ = got
	})
	if !bitsEqual(serialOut, parOut) {
		t.Fatal("sparse kernel parallel result differs from serial")
	}
}
