package tensor

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Packed, register-blocked GEMM core (classic BLIS structure, pure Go).
//
// The pre-packing kernels streamed their operands straight from the
// row-major matrices, so every large product was memory-bound (~3-4
// GFLOPS on the bench host) and the column-subset kernels walked b with
// a stride of b.Cols per element — at size 512 the cols25 kernel
// regressed *below* its 256-size throughput because every inner-product
// term was a fresh cache line. This file fixes that class of bug once,
// at the kernel layer:
//
//   - Operands are packed into contiguous, cache-sized tiles: a KC×NC
//     panel of B into column strips of width microNR, then per MC×KC
//     block of A into row strips of height microMR. Column-subset
//     products gather their columns exactly once per packed panel
//     instead of once per output element.
//   - A register-blocked micro-kernel (microMR×microNR accumulators held
//     in locals, k unrolled by four) does all the arithmetic over the
//     packed strips. The float64 kernel accumulates with math.FMA — a
//     single fused instruction under GOAMD64=v3, and a bit-identical
//     softfloat fallback everywhere else — so the value is
//     host-independent while the throughput scales with the ISA the
//     binary was compiled for.
//
// Numerics contract: for every output element the packed float64 path
// computes exactly
//
//	s = 0; for k ascending: s = math.FMA(a[i][k], b[k][j], s)
//
// i.e. one fused multiply-add chain in ascending-k order. KC panels
// store the running sum to out and reload it (a float64 round trip is
// exact), MC/NC boundaries touch only *which* elements a tile owns, and
// row chunks never split a k chain — so results are bit-identical for
// any worker count and any block configuration. The float32 kernel uses
// plain multiply-then-add (math.FMA is float64-only) and satisfies the
// same chain contract in float32 arithmetic.
//
// Zero entries are never skipped: 0·NaN and 0·Inf must propagate so the
// trainer's divergence rollback fires (same contract as axpy/dot).

const (
	// microMR × microNR is the micro-kernel tile: 8 accumulators live in
	// registers while two A values and four B values stream per k step.
	// 2×4 with k unrolled by four measured fastest of the pure-Go shapes
	// on the bench host (wider tiles spill accumulators to the stack).
	microMR = 2
	microNR = 4

	// packedMinFlops is the m·k·n product size (multiply-accumulates)
	// above which the packed path beats the streaming kernels; below it
	// packing overhead dominates and the original row-local loops run.
	// Dispatch depends only on the operand shape, never on worker count
	// or data, so it is deterministic.
	packedMinFlops = 1 << 17

	// packedMinDim gates degenerate shapes (single rows/columns, tiny k)
	// onto the streaming kernels, where edge padding would waste most of
	// every packed strip.
	packedMinDim = 4
)

// BlockConfig holds the cache-blocking parameters of the packed GEMM
// loop nest: B is packed in KC×NC panels, A in MC×KC blocks. The
// defaults suit a ~48 KiB L1d / ~2 MiB L2 host (the packed A block is
// MC·KC·8 = 256 KiB; one B strip of KC·microNR·8 = 8 KiB stays L1
// resident under the micro-kernel). The bench autotuner measures a
// small grid per host and installs the winner via SetBlockConfig.
type BlockConfig struct {
	MC int `json:"mc"`
	KC int `json:"kc"`
	NC int `json:"nc"`
}

var defaultBlocks = BlockConfig{MC: 128, KC: 256, NC: 512}

var gemmBlocks atomic.Pointer[BlockConfig]

// GEMMBlockConfig returns the active cache-blocking parameters.
func GEMMBlockConfig() BlockConfig {
	if c := gemmBlocks.Load(); c != nil {
		return *c
	}
	return defaultBlocks
}

// SetBlockConfig installs cache-blocking parameters for the packed GEMM
// kernels (MC is rounded up to a multiple of the micro-tile height, NC
// to the width). Block sizes change only which elements share a packed
// tile, never any element's summation chain, so results are identical
// under every configuration; only throughput moves. Pass the zero value
// to restore the defaults.
func SetBlockConfig(c BlockConfig) {
	if c == (BlockConfig{}) {
		gemmBlocks.Store(nil)
		return
	}
	if c.MC <= 0 || c.KC <= 0 || c.NC <= 0 {
		panic(fmt.Sprintf("tensor: SetBlockConfig %+v: all block sizes must be positive", c))
	}
	c.MC = roundUp(c.MC, microMR)
	c.NC = roundUp(c.NC, microNR)
	gemmBlocks.Store(&c)
}

func roundUp(v, to int) int {
	return (v + to - 1) / to * to
}

// Float is the element-type constraint of the packed kernels. Exact
// types only: the micro-kernel dispatch relies on the dynamic types
// []float64 / []float32.
type Float interface {
	float32 | float64
}

// gview is a strided read-only view of one GEMM operand: element (r, c)
// is data[r*rs + c*cs]. It expresses plain, transposed, and (together
// with a column gather in packB) column-subset operands without copies.
type gview[T Float] struct {
	data   []T
	rs, cs int
}

// usePacked reports whether the packed path should run for an m×k by
// k×n product. Purely shape-based (see packedMinFlops).
func usePacked(m, k, n int) bool {
	return m >= packedMinDim && k >= packedMinDim && n >= packedMinDim &&
		m*k*n >= packedMinFlops
}

// packBufs holds one goroutine's packed-panel scratch between pool
// trips; packedGEMM borrows a pair per call so parallel chunks never
// share buffers.
type packBufs[T Float] struct {
	a, b []T
}

var (
	packPool64 = sync.Pool{New: func() any { return new(packBufs[float64]) }}
	packPool32 = sync.Pool{New: func() any { return new(packBufs[float32]) }}
)

// getPackBufs borrows a scratch pair for T; release returns it.
func getPackBufs[T Float]() (bufs *packBufs[T], release func()) {
	switch any(T(0)).(type) {
	case float64:
		p := packPool64.Get().(*packBufs[float64])
		return any(p).(*packBufs[T]), func() { packPool64.Put(p) }
	default:
		p := packPool32.Get().(*packBufs[float32])
		return any(p).(*packBufs[T]), func() { packPool32.Put(p) }
	}
}

func growSlice[T Float](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// packA copies the mcb×kcb block of a starting at row ic, k offset pc,
// into dst as microMR-row strips: strip s holds rows ic+s·MR.., laid out
// k-major so the micro-kernel reads microMR values per k step. Rows past
// mcb are zero-padded; the padded lanes compute garbage that the masked
// store never reads.
func packA[T Float](dst []T, a gview[T], ic, mcb, pc, kcb int) {
	for s := 0; s < mcb; s += microMR {
		strip := dst[(s/microMR)*kcb*microMR:]
		rows := min(microMR, mcb-s)
		base0 := (ic + s) * a.rs
		off := pc * a.cs
		for k := 0; k < kcb; k++ {
			at := k * microMR
			src := base0 + off
			for r := 0; r < microMR; r++ {
				if r < rows {
					strip[at+r] = a.data[src]
				} else {
					strip[at+r] = 0
				}
				src += a.rs
			}
			off += a.cs
		}
	}
}

// packB copies the kcb×ncb panel of b starting at k offset pc, logical
// column jc, into dst as microNR-column strips, k-major. When cols is
// non-nil, logical column j reads physical column cols[j] — the single
// gather the column-subset kernels pay per panel. Columns past ncb are
// zero-padded.
func packB[T Float](dst []T, b gview[T], pc, kcb, jc, ncb int, cols []int) {
	for s := 0; s < ncb; s += microNR {
		strip := dst[(s/microNR)*kcb*microNR:]
		w := min(microNR, ncb-s)
		var colOff [microNR]int
		for c := 0; c < microNR; c++ {
			if c < w {
				j := jc + s + c
				if cols != nil {
					j = cols[j]
				}
				colOff[c] = j * b.cs
			} else {
				colOff[c] = -1
			}
		}
		rowOff := pc * b.rs
		for k := 0; k < kcb; k++ {
			at := k * microNR
			for c := 0; c < microNR; c++ {
				if colOff[c] >= 0 {
					strip[at+c] = b.data[rowOff+colOff[c]]
				} else {
					strip[at+c] = 0
				}
			}
			rowOff += b.rs
		}
	}
}

// microAcc is the micro-kernel accumulator tile, row-major microMR×microNR.
type microAcc[T Float] [microMR * microNR]T

// microKernel returns the register-blocked inner kernel for T.
func microKernel[T Float]() func(kc int, ap, bp []T, acc *microAcc[T]) {
	var f any
	switch any(T(0)).(type) {
	case float64:
		f = micro64
	default:
		f = micro32
	}
	return f.(func(int, []T, []T, *microAcc[T]))
}

// micro64 accumulates a microMR×microNR tile over kc packed steps with
// fused multiply-adds, k unrolled by four. Each accumulator's chain is
// strictly k-ascending — the numerics contract of the file header.
func micro64(kc int, ap, bp []float64, acc *microAcc[float64]) {
	c00, c01, c02, c03 := acc[0], acc[1], acc[2], acc[3]
	c10, c11, c12, c13 := acc[4], acc[5], acc[6], acc[7]
	p := 0
	for ; p+4 <= kc; p += 4 {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 = math.FMA(a0, b0, c00)
		c01 = math.FMA(a0, b1, c01)
		c02 = math.FMA(a0, b2, c02)
		c03 = math.FMA(a0, b3, c03)
		c10 = math.FMA(a1, b0, c10)
		c11 = math.FMA(a1, b1, c11)
		c12 = math.FMA(a1, b2, c12)
		c13 = math.FMA(a1, b3, c13)
		a0, a1 = ap[2], ap[3]
		b0, b1, b2, b3 = bp[4], bp[5], bp[6], bp[7]
		c00 = math.FMA(a0, b0, c00)
		c01 = math.FMA(a0, b1, c01)
		c02 = math.FMA(a0, b2, c02)
		c03 = math.FMA(a0, b3, c03)
		c10 = math.FMA(a1, b0, c10)
		c11 = math.FMA(a1, b1, c11)
		c12 = math.FMA(a1, b2, c12)
		c13 = math.FMA(a1, b3, c13)
		a0, a1 = ap[4], ap[5]
		b0, b1, b2, b3 = bp[8], bp[9], bp[10], bp[11]
		c00 = math.FMA(a0, b0, c00)
		c01 = math.FMA(a0, b1, c01)
		c02 = math.FMA(a0, b2, c02)
		c03 = math.FMA(a0, b3, c03)
		c10 = math.FMA(a1, b0, c10)
		c11 = math.FMA(a1, b1, c11)
		c12 = math.FMA(a1, b2, c12)
		c13 = math.FMA(a1, b3, c13)
		a0, a1 = ap[6], ap[7]
		b0, b1, b2, b3 = bp[12], bp[13], bp[14], bp[15]
		c00 = math.FMA(a0, b0, c00)
		c01 = math.FMA(a0, b1, c01)
		c02 = math.FMA(a0, b2, c02)
		c03 = math.FMA(a0, b3, c03)
		c10 = math.FMA(a1, b0, c10)
		c11 = math.FMA(a1, b1, c11)
		c12 = math.FMA(a1, b2, c12)
		c13 = math.FMA(a1, b3, c13)
		ap = ap[8:]
		bp = bp[16:]
	}
	for ; p < kc; p++ {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 = math.FMA(a0, b0, c00)
		c01 = math.FMA(a0, b1, c01)
		c02 = math.FMA(a0, b2, c02)
		c03 = math.FMA(a0, b3, c03)
		c10 = math.FMA(a1, b0, c10)
		c11 = math.FMA(a1, b1, c11)
		c12 = math.FMA(a1, b2, c12)
		c13 = math.FMA(a1, b3, c13)
		ap = ap[2:]
		bp = bp[4:]
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
}

// micro32 is the float32 tile kernel: plain multiply-then-add (math.FMA
// is float64-only), same k-ascending chains, same unrolling.
func micro32(kc int, ap, bp []float32, acc *microAcc[float32]) {
	c00, c01, c02, c03 := acc[0], acc[1], acc[2], acc[3]
	c10, c11, c12, c13 := acc[4], acc[5], acc[6], acc[7]
	p := 0
	for ; p+4 <= kc; p += 4 {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[2], ap[3]
		b0, b1, b2, b3 = bp[4], bp[5], bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[4], ap[5]
		b0, b1, b2, b3 = bp[8], bp[9], bp[10], bp[11]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[6], ap[7]
		b0, b1, b2, b3 = bp[12], bp[13], bp[14], bp[15]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[8:]
		bp = bp[16:]
	}
	for ; p < kc; p++ {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[2:]
		bp = bp[4:]
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
}

// loadTile fills acc from out for the valid (r, c) lanes of the tile at
// (i0, logical column j0), zeroing padded lanes. On the first KC panel
// the whole tile starts at zero. cols maps logical to physical output
// columns (nil = identity).
func loadTile[T Float](acc *microAcc[T], out []T, ldOut, i0, rows, j0, w int, cols []int, first bool) {
	for r := 0; r < microMR; r++ {
		for c := 0; c < microNR; c++ {
			var v T
			if !first && r < rows && c < w {
				j := j0 + c
				if cols != nil {
					j = cols[j]
				}
				v = out[(i0+r)*ldOut+j]
			}
			acc[r*microNR+c] = v
		}
	}
}

// storeTile writes the valid lanes of acc back to out; padded lanes are
// dropped.
func storeTile[T Float](acc *microAcc[T], out []T, ldOut, i0, rows, j0, w int, cols []int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < w; c++ {
			j := j0 + c
			if cols != nil {
				j = cols[j]
			}
			out[(i0+r)*ldOut+j] = acc[r*microNR+c]
		}
	}
}

// packedGEMM computes, for output rows i in [lo, hi) and logical columns
// j in [0, n):
//
//	out[i, J(j)] = Σ_k a(i, k) · b(k, J(j))   for k in [0, kdim)
//
// where J is the identity when cols is nil and J(j) = cols[j] otherwise
// (the column-subset kernels use the same mapping to gather b and to
// scatter out, leaving unlisted output columns untouched). out rows have
// stride ldOut. Callers validate shapes and index ranges; this core
// assumes them.
//
// Parallel sharding hands each chunk a [lo, hi) row range; every other
// loop bound is global, so per-element chains are chunk-independent (the
// bit-identity contract).
func packedGEMM[T Float](out []T, ldOut int, a, b gview[T], kdim, n, lo, hi int, cols []int) {
	if hi <= lo || n <= 0 {
		return
	}
	if kdim == 0 {
		// An empty reduction writes zeros (matching the streaming
		// kernels), touching only the listed columns.
		for i := lo; i < hi; i++ {
			row := out[i*ldOut:]
			if cols == nil {
				for j := 0; j < n; j++ {
					row[j] = 0
				}
			} else {
				for _, j := range cols[:n] {
					row[j] = 0
				}
			}
		}
		return
	}
	cfg := GEMMBlockConfig()
	micro := microKernel[T]()
	bufs, release := getPackBufs[T]()
	defer release()
	for jc := 0; jc < n; jc += cfg.NC {
		ncb := min(cfg.NC, n-jc)
		nStrips := (ncb + microNR - 1) / microNR
		for pc := 0; pc < kdim; pc += cfg.KC {
			kcb := min(cfg.KC, kdim-pc)
			bufs.b = growSlice(bufs.b, nStrips*kcb*microNR)
			packB(bufs.b, b, pc, kcb, jc, ncb, cols)
			first := pc == 0
			for ic := lo; ic < hi; ic += cfg.MC {
				mcb := min(cfg.MC, hi-ic)
				mStrips := (mcb + microMR - 1) / microMR
				bufs.a = growSlice(bufs.a, mStrips*kcb*microMR)
				packA(bufs.a, a, ic, mcb, pc, kcb)
				for jr := 0; jr < ncb; jr += microNR {
					bs := bufs.b[(jr/microNR)*kcb*microNR:][:kcb*microNR]
					w := min(microNR, ncb-jr)
					for ir := 0; ir < mcb; ir += microMR {
						as := bufs.a[(ir/microMR)*kcb*microMR:][:kcb*microMR]
						rows := min(microMR, mcb-ir)
						var acc microAcc[T]
						loadTile(&acc, out, ldOut, ic+ir, rows, jc+jr, w, cols, first)
						micro(kcb, as, bs, &acc)
						storeTile(&acc, out, ldOut, ic+ir, rows, jc+jr, w, cols)
					}
				}
			}
		}
	}
}
