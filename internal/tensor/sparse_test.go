package tensor

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSparseTransBMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		m, n, p := 1+r.IntN(6), 1+r.IntN(30), 1+r.IntN(8)
		a := New(m, n)
		b := randomMatrix(rng, p, n)
		// Random sparsity level per case, including fully dense and
		// fully zero rows.
		density := r.Float64()
		for i := range a.Data {
			if r.Float64() < density {
				a.Data[i] = rng.NormFloat64()
			}
		}
		return EqualApprox(MatMulTransBSparse(a, b), MatMulTransB(a, b), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseTransBZeroInput(t *testing.T) {
	a := New(3, 10)
	b := New(4, 10)
	b.Fill(1)
	out := MatMulTransBSparse(a, b)
	if out.FrobeniusNorm() != 0 {
		t.Fatal("zero input must give zero output")
	}
}

func TestSparseTransBSupportReuse(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}})
	b := FromRows([][]float64{{1, 1, 1}, {2, 2, 2}})
	out := New(1, 2)
	sup := MatMulTransBSparseInto(out, a, b, make([]int, 0, 8))
	if out.At(0, 0) != 3 || out.At(0, 1) != 6 {
		t.Fatalf("out = %v", out)
	}
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("support = %v", sup)
	}
}

func TestSparseTransBShapePanics(t *testing.T) {
	defer expectPanic(t, "MatMulTransBSparse")
	MatMulTransBSparse(New(2, 3), New(2, 4))
}

func TestNonzeroFraction(t *testing.T) {
	m := FromRows([][]float64{{0, 1}, {2, 0}})
	if m.NonzeroFraction() != 0.5 {
		t.Fatalf("NonzeroFraction = %v", m.NonzeroFraction())
	}
	if New(0, 0).NonzeroFraction() != 0 {
		t.Fatal("empty matrix fraction should be 0")
	}
}
