package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a*b. It dispatches to MatMulInto with a fresh output.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a*b. out must be preallocated with shape
// a.Rows x b.Cols and must not alias a or b. All validation happens
// before the first write to out, so a mismatch panics with out intact.
//
// Large products run the packed register-blocked core (see packed.go);
// below the packing threshold the kernel uses the cache-friendly i-k-j
// loop order, streaming a row of b and a row of out sequentially. The
// dispatch depends only on the operand shape. Output rows are sharded
// over the worker pool; each element's k-ascending reduction order is
// independent of the chunking, so results are bit-identical at any
// worker count.
//
// Zero entries of a are NOT skipped: 0·NaN and 0·Inf must yield NaN so
// a diverging operand propagates into the output, which the trainer's
// non-finite-loss rollback relies on. (An earlier version skipped them
// and silently masked divergence.)
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out is %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	k, n := a.Cols, b.Cols
	if usePacked(a.Rows, k, n) {
		av := gview[float64]{data: a.Data, rs: a.Cols, cs: 1}
		bv := gview[float64]{data: b.Data, rs: b.Cols, cs: 1}
		ParallelRowsCost(a.Rows, gemmRowCost(k, n), func(lo, hi int) {
			packedGEMM(out.Data, out.Cols, av, bv, k, n, lo, hi, nil)
		})
		return
	}
	ParallelRows(a.Rows, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)
			orow := out.RowView(i)
			for j := range orow {
				orow[j] = 0
			}
			for k, av := range arow {
				axpy(av, b.RowView(k), orow)
			}
		}
	})
}

// gemmRowCost is the per-output-row cost of an m×k by k×n float64
// product for the bandwidth-aware scheduler: k·n multiply-adds; traffic
// of one a row, one out row, and a per-row share of the packed b panel
// reloads.
func gemmRowCost(k, n int) Cost {
	return Cost{Flops: k * n, Bytes: 8 * (k + 2*n), MinRows: GEMMBlockConfig().MC}
}

// MatMulNaive computes a*b with the textbook i-j-k loop order. It exists
// only as a baseline for the GEMM ablation benchmark.
func MatMulNaive(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// MatMulTransB returns a * bᵀ without materializing the transpose:
// out[i][j] = <a row i, b row j>. Shapes: a is m x n, b is p x n, out m x p.
// Backpropagation uses this for delta * Wᵀ (Eq. 1).
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes out = a * bᵀ into a preallocated out. All
// validation happens before the first write to out. Large products run
// the packed core, which packs b's rows (bᵀ's columns) into contiguous
// strips once per panel; below the threshold each (i, j) entry is an
// independent dot product. Either way parallel results are
// bit-identical to serial.
func MatMulTransBInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB %dx%d by (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB out is %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if usePacked(a.Rows, a.Cols, b.Rows) {
		k, n := a.Cols, b.Rows
		av := gview[float64]{data: a.Data, rs: a.Cols, cs: 1}
		// bᵀ element (k, j) is b[j][k].
		bv := gview[float64]{data: b.Data, rs: 1, cs: b.Cols}
		ParallelRowsCost(a.Rows, gemmRowCost(k, n), func(lo, hi int) {
			packedGEMM(out.Data, out.Cols, av, bv, k, n, lo, hi, nil)
		})
		return
	}
	ParallelRows(a.Rows, a.Cols*b.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)
			orow := out.RowView(i)
			for j := 0; j < b.Rows; j++ {
				orow[j] = dot(arow, b.RowView(j))
			}
		}
	})
}

// MatMulTransA returns aᵀ * b without materializing the transpose.
// Shapes: a is n x m, b is n x p, out m x p. Backpropagation uses this for
// the weight gradient aᵀ * delta (Eq. 1).
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes out = aᵀ * b into a preallocated out. All
// validation happens before the first write to out.
//
// Large products run the packed core: packing aᵀ's rows (columns of a)
// into contiguous micro-strips converts the strided column reads into
// one sequential pass per block — the transpose is paid once per panel
// instead of once per inner product. Below the threshold,
// parallelization is by blocks of *output* rows (columns of a): every
// chunk owns out rows [lo, hi) and accumulates all k contributions into
// them itself, so no two goroutines ever write the same row (the serial
// loop instead iterated k outermost, which would make chunks over k race
// on the whole output). In both paths the contributions to one output
// element arrive in k-ascending order regardless of chunking, so
// results are bit-identical at any worker count.
//
// Like MatMulInto, zero entries of a are not skipped, so NaN/Inf in b
// propagate (see the zero-skip note there).
func MatMulTransAInto(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA (%dx%d)ᵀ by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA out is %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	if usePacked(a.Cols, a.Rows, b.Cols) {
		k, n := a.Rows, b.Cols
		// aᵀ element (i, k) is a[k][i].
		av := gview[float64]{data: a.Data, rs: 1, cs: a.Cols}
		bv := gview[float64]{data: b.Data, rs: b.Cols, cs: 1}
		ParallelRowsCost(a.Cols, gemmRowCost(k, n), func(lo, hi int) {
			packedGEMM(out.Data, out.Cols, av, bv, k, n, lo, hi, nil)
		})
		return
	}
	ParallelRows(a.Cols, a.Rows*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.RowView(i)
			for j := range orow {
				orow[j] = 0
			}
		}
		for k := 0; k < a.Rows; k++ {
			arow := a.RowView(k)
			brow := b.RowView(k)
			for i := lo; i < hi; i++ {
				axpy(arow[i], brow, out.RowView(i))
			}
		}
	})
}

// MatMulCols computes, for each requested column j of b, out column j =
// a * b[:,j], leaving the other columns of out untouched (typically zero).
// This is the "sampling from the current layer" kernel of §4.2: only the
// inner products for the active nodes (columns) are evaluated, so the cost
// is Θ(rows(a) * cols(a) * len(cols)) instead of Θ(rows(a) * cols(a) * cols(b)).
//
// Shapes AND every index in cols are validated before the first write
// to out, so a bad request panics with out intact. Large subsets run
// the packed core, which gathers the requested columns of b into
// contiguous strips exactly once per packed panel — the pre-packing
// kernel instead strode the full b matrix per output element, which is
// why its throughput *fell* with matrix size once b outgrew L2.
func MatMulCols(out, a, b *Matrix, cols []int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulCols %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulCols out is %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	for idx, j := range cols {
		if j < 0 || j >= b.Cols {
			panic(fmt.Sprintf("tensor: MatMulCols cols[%d] = %d out of range for %d columns", idx, j, b.Cols))
		}
	}
	if usePacked(a.Rows, a.Cols, len(cols)) {
		k, n := a.Cols, len(cols)
		av := gview[float64]{data: a.Data, rs: a.Cols, cs: 1}
		bv := gview[float64]{data: b.Data, rs: b.Cols, cs: 1}
		ParallelRowsCost(a.Rows, gemmRowCost(k, n), func(lo, hi int) {
			packedGEMM(out.Data, out.Cols, av, bv, k, n, lo, hi, cols)
		})
		return
	}
	ParallelRows(a.Rows, a.Cols*len(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)
			orow := out.RowView(i)
			for _, j := range cols {
				var s float64
				for k, av := range arow {
					s += av * b.Data[k*b.Cols+j]
				}
				orow[j] = s
			}
		}
	})
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	sameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	sameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// AddInPlace sets a += b.
func AddInPlace(a, b *Matrix) {
	sameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// SubInPlace sets a -= b.
func SubInPlace(a, b *Matrix) {
	sameShape("SubInPlace", a, b)
	for i := range a.Data {
		a.Data[i] -= b.Data[i]
	}
}

// AxpyInPlace sets a += alpha*b.
func AxpyInPlace(a *Matrix, alpha float64, b *Matrix) {
	sameShape("AxpyInPlace", a, b)
	axpy(alpha, b.Data, a.Data)
}

// Scale multiplies every element of m by alpha in place.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Hadamard returns the elementwise product a ⊙ b (used by Eq. 1 for
// f'(z) ⊙ backpropagated error). The flat element range is sharded over
// the worker pool; every element is independent, so results are
// bit-identical at any worker count.
func Hadamard(a, b *Matrix) *Matrix {
	sameShape("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	// One multiply per element but 24 bytes of traffic: bandwidth-bound,
	// so the cutoff is costed by bytes, not flops.
	ParallelRowsCost(len(a.Data), Cost{Flops: 1, Bytes: 24}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	return out
}

// HadamardInPlace sets a ⊙= b.
func HadamardInPlace(a, b *Matrix) {
	sameShape("HadamardInPlace", a, b)
	ParallelRowsCost(len(a.Data), Cost{Flops: 1, Bytes: 24}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Data[i] *= b.Data[i]
		}
	})
}

// AddRowVector adds the 1 x Cols row vector v to every row of m (bias
// broadcast in the feedforward step).
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d for %d cols", len(v), m.Cols))
	}
	ParallelRowsCost(m.Rows, Cost{Flops: m.Cols, Bytes: 16 * m.Cols}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.RowView(i)
			for j, bv := range v {
				row[j] += bv
			}
		}
	})
}

// ColNorms returns the l2 norm of every column (the Drineas sampling
// probabilities of Eq. 6 are proportional to these). Column blocks are
// sharded over the worker pool: each chunk owns columns [lo, hi) and
// accumulates their squares over all rows itself, in the same
// row-ascending order as the serial loop, so results are bit-identical.
func (m *Matrix) ColNorms() []float64 {
	out := make([]float64, m.Cols)
	ParallelRowsCost(m.Cols, Cost{Flops: 2 * m.Rows, Bytes: 8 * m.Rows}, func(lo, hi int) {
		for i := 0; i < m.Rows; i++ {
			row := m.RowView(i)
			for j := lo; j < hi; j++ {
				out[j] += row[j] * row[j]
			}
		}
		for j := lo; j < hi; j++ {
			out[j] = math.Sqrt(out[j])
		}
	})
	return out
}

// RowNorms returns the l2 norm of every row.
func (m *Matrix) RowNorms() []float64 {
	out := make([]float64, m.Rows)
	ParallelRowsCost(m.Rows, Cost{Flops: 2 * m.Cols, Bytes: 8 * m.Cols}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Norm(m.RowView(i))
		}
	})
	return out
}

// ColSumsInto accumulates the column sums of m into dst (len m.Cols),
// overwriting it — the bias-gradient reduction of Eq. 1 (gradB = column
// sums of delta). Column blocks are sharded over the worker pool; each
// column is summed in row-ascending order, matching the serial loop, so
// results are bit-identical at any worker count.
func ColSumsInto(dst []float64, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumsInto dst len %d for %d cols", len(dst), m.Cols))
	}
	ParallelRowsCost(m.Cols, Cost{Flops: m.Rows, Bytes: 8 * m.Rows}, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = 0
		}
		for i := 0; i < m.Rows; i++ {
			row := m.RowView(i)
			for j := lo; j < hi; j++ {
				dst[j] += row[j]
			}
		}
	})
}

// FrobeniusNorm returns ||m||_F.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// ArgMaxRows returns, for each row, the index of its maximum element.
// Classification predictions are the row-wise argmax of the output layer.
func (m *Matrix) ArgMaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

func sameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
