// Float32 storage path. A float32 matrix moves half the bytes of its
// float64 twin through every cache level, which is exactly the resource
// the packed GEMM core is built to conserve — on memory-bound shapes the
// f32 kernels buy bandwidth headroom at the cost of precision.
//
// Accuracy contract (DESIGN.md §13): MatMul32Into equals a naive
// float32 triple loop (multiply-then-add, ascending k) bit-for-bit, at
// any worker count and block configuration. Against a float64 reference
// of the same product the error is bounded by the usual recursive-sum
// bound — |err| ≤ k·eps32·Σ_k |a_ik·b_kj| — so comparisons against
// float64 results must use ULP or tolerance predicates, never equality;
// repolint's ulp-bound check keeps every such relaxed comparison
// annotated.

package tensor

import (
	"fmt"
	"math"
)

// Matrix32 is a dense, row-major matrix of float32 values, the
// reduced-precision twin of Matrix. Element (i, j) lives at
// Data[i*Cols+j].
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 returns a zeroed rows x cols float32 matrix.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice32 wraps data (len rows*cols, row-major) without copying.
func FromSlice32(rows, cols int, data []float32) *Matrix32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice32 got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Matrix32) Clone() *Matrix32 {
	c := New32(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, v float32) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i*m.Cols+j] = v
}

// RowView returns row i as a slice sharing m's backing storage.
func (m *Matrix32) RowView(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range for %dx%d", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// ToFloat32 returns m rounded to float32 storage.
func (m *Matrix) ToFloat32() *Matrix32 {
	o := New32(m.Rows, m.Cols)
	for i, v := range m.Data {
		o.Data[i] = float32(v)
	}
	return o
}

// ToFloat64 returns m widened to float64 storage (exact).
func (m *Matrix32) ToFloat64() *Matrix {
	o := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		o.Data[i] = float64(v)
	}
	return o
}

// MatMul32 returns a*b in float32.
func MatMul32(a, b *Matrix32) *Matrix32 {
	out := New32(a.Rows, b.Cols)
	MatMul32Into(out, a, b)
	return out
}

// MatMul32Into computes out = a*b in float32 arithmetic. Validation
// happens before the first write to out. Large products run the packed
// register-blocked core with float32 panels — half the memory traffic
// of the float64 path — and the bandwidth-aware scheduler accounts for
// the smaller element size when deciding to go parallel. Per-element
// summation is an ascending-k multiply-then-add chain independent of
// chunk and block boundaries, so results are bit-identical at any
// worker count.
func MatMul32Into(out, a, b *Matrix32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul32 %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul32 out is %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	k, n := a.Cols, b.Cols
	// Per-row cost: same flops as the float64 kernel, half the bytes.
	cost := Cost{Flops: k * n, Bytes: 4 * (k + 2*n), MinRows: GEMMBlockConfig().MC}
	if usePacked(a.Rows, k, n) {
		av := gview[float32]{data: a.Data, rs: a.Cols, cs: 1}
		bv := gview[float32]{data: b.Data, rs: b.Cols, cs: 1}
		ParallelRowsCost(a.Rows, cost, func(lo, hi int) {
			packedGEMM(out.Data, out.Cols, av, bv, k, n, lo, hi, nil)
		})
		return
	}
	cost.MinRows = 0
	ParallelRowsCost(a.Rows, cost, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)
			orow := out.RowView(i)
			for j := range orow {
				orow[j] = 0
			}
			for k, av := range arow {
				brow := b.RowView(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// ULPDistance32 returns the distance between a and b in float32 units
// in the last place: the number of representable float32 values you
// must step from a to reach b. Opposite-zero pairs are 0 apart; any NaN
// operand yields MaxInt64 (no finite bound holds).
func ULPDistance32(a, b float32) int64 {
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.MaxInt64
	}
	ia, ib := ulpIndex32(a), ulpIndex32(b)
	if ia > ib {
		return ia - ib
	}
	return ib - ia
}

// ulpIndex32 maps a float32 onto the integers so that consecutive
// representable values are consecutive integers (the standard
// sign-magnitude to two's-complement bit trick).
func ulpIndex32(f float32) int64 {
	b := math.Float32bits(f)
	if b&(1<<31) != 0 {
		return -int64(b &^ (1 << 31))
	}
	return int64(b)
}

// EqualWithinULP32 reports whether a and b have identical shape and
// every element of a is within ulps units in the last place of the
// corresponding element of b, rounded to float32. It is the relaxed
// comparison for float32 kernel results against a float64 reference;
// call sites outside tests must justify the relaxation with a
// //lint:ignore ulp-bound annotation.
func EqualWithinULP32(a *Matrix32, b *Matrix, ulps int64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if ULPDistance32(v, float32(b.Data[i])) > ulps {
			return false
		}
	}
	return true
}

// Equal32 reports whether a and b have identical shape and elements
// (the float32 bit-identity predicate of the parallel kernel tests).
func Equal32(a, b *Matrix32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}
