package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := randomMatrix(rng, 7, 7)
	if !EqualApprox(MatMul(a, Eye(7)), a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if !EqualApprox(MatMul(Eye(7), a), a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 1, 7}, {13, 17, 11}, {32, 64, 16}} {
		a := randomMatrix(rng, dims[0], dims[1])
		b := randomMatrix(rng, dims[1], dims[2])
		if !EqualApprox(MatMul(a, b), MatMulNaive(a, b), 1e-9) {
			t.Fatalf("ikj/ijk mismatch at %v", dims)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer expectPanic(t, "MatMul")
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulIntoShapePanics(t *testing.T) {
	defer expectPanic(t, "out")
	MatMulInto(New(2, 2), New(2, 3), New(3, 3))
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randomMatrix(rng, 4, 6)
	b := randomMatrix(rng, 5, 6)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.T())
	if !EqualApprox(got, want, 1e-10) {
		t.Fatal("MatMulTransB != a*bᵀ")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := randomMatrix(rng, 6, 4)
	b := randomMatrix(rng, 6, 5)
	got := MatMulTransA(a, b)
	want := MatMul(a.T(), b)
	if !EqualApprox(got, want, 1e-10) {
		t.Fatal("MatMulTransA != aᵀ*b")
	}
}

func TestMatMulTransShapePanics(t *testing.T) {
	t.Run("B", func(t *testing.T) {
		defer expectPanic(t, "MatMulTransB")
		MatMulTransB(New(2, 3), New(2, 4))
	})
	t.Run("A", func(t *testing.T) {
		defer expectPanic(t, "MatMulTransA")
		MatMulTransA(New(2, 3), New(3, 3))
	})
}

func TestMatMulColsSubset(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	a := randomMatrix(rng, 3, 8)
	b := randomMatrix(rng, 8, 10)
	full := MatMul(a, b)
	cols := []int{0, 3, 7, 9}
	out := New(3, 10)
	MatMulCols(out, a, b, cols)
	inSet := map[int]bool{}
	for _, c := range cols {
		inSet[c] = true
	}
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			if inSet[j] {
				if math.Abs(out.At(i, j)-full.At(i, j)) > 1e-10 {
					t.Fatalf("active col %d differs from full product", j)
				}
			} else if out.At(i, j) != 0 {
				t.Fatalf("inactive col %d was written", j)
			}
		}
	}
}

func TestMatMulColsAllEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	a := randomMatrix(rng, 4, 5)
	b := randomMatrix(rng, 5, 6)
	all := make([]int, b.Cols)
	for i := range all {
		all[i] = i
	}
	out := New(4, 6)
	MatMulCols(out, a, b, all)
	if !EqualApprox(out, MatMul(a, b), 1e-10) {
		t.Fatal("MatMulCols over all columns must equal MatMul")
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if !Equal(Add(a, b), FromRows([][]float64{{6, 8}, {10, 12}})) {
		t.Fatal("Add wrong")
	}
	if !Equal(Sub(b, a), FromRows([][]float64{{4, 4}, {4, 4}})) {
		t.Fatal("Sub wrong")
	}
	if !Equal(Hadamard(a, b), FromRows([][]float64{{5, 12}, {21, 32}})) {
		t.Fatal("Hadamard wrong")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	AddInPlace(a, b)
	if !Equal(a, FromRows([][]float64{{4, 6}})) {
		t.Fatal("AddInPlace wrong")
	}
	SubInPlace(a, b)
	if !Equal(a, FromRows([][]float64{{1, 2}})) {
		t.Fatal("SubInPlace wrong")
	}
	AxpyInPlace(a, 2, b)
	if !Equal(a, FromRows([][]float64{{7, 10}})) {
		t.Fatal("AxpyInPlace wrong")
	}
	HadamardInPlace(a, b)
	if !Equal(a, FromRows([][]float64{{21, 40}})) {
		t.Fatal("HadamardInPlace wrong")
	}
	a.Scale(0.5)
	if !Equal(a, FromRows([][]float64{{10.5, 20}})) {
		t.Fatal("Scale wrong")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	Add(New(1, 2), New(2, 1))
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 3)
	m.AddRowVector([]float64{1, 2, 3})
	m.AddRowVector([]float64{1, 2, 3})
	want := FromRows([][]float64{{2, 4, 6}, {2, 4, 6}})
	if !Equal(m, want) {
		t.Fatalf("AddRowVector = %v", m)
	}
	defer expectPanic(t, "AddRowVector")
	m.AddRowVector([]float64{1})
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {4, 2}})
	cn := m.ColNorms()
	if math.Abs(cn[0]-5) > 1e-12 || math.Abs(cn[1]-2) > 1e-12 {
		t.Fatalf("ColNorms = %v", cn)
	}
	rn := m.RowNorms()
	if math.Abs(rn[0]-3) > 1e-12 || math.Abs(rn[1]-math.Sqrt(20)) > 1e-12 {
		t.Fatalf("RowNorms = %v", rn)
	}
	if math.Abs(m.FrobeniusNorm()-math.Sqrt(29)) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

func TestSumMaxAbsArgMax(t *testing.T) {
	m := FromRows([][]float64{{1, -9, 2}, {0, 3, -1}})
	if m.Sum() != -4 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	am := m.ArgMaxRows()
	if am[0] != 2 || am[1] != 1 {
		t.Fatalf("ArgMaxRows = %v", am)
	}
}

// Property: (A*B)*C == A*(B*C) for random matrices (associativity within
// floating-point tolerance).
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		m, n, p, q := 1+r.IntN(8), 1+r.IntN(8), 1+r.IntN(8), 1+r.IntN(8)
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, p)
		c := randomMatrix(rng, p, q)
		return EqualApprox(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and (AB)ᵀ = BᵀAᵀ.
func TestTransposeProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		m, n, p := 1+r.IntN(8), 1+r.IntN(8), 1+r.IntN(8)
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, p)
		if !Equal(a.T().T(), a) {
			return false
		}
		return EqualApprox(MatMul(a, b).T(), MatMul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: distributivity A*(B+C) == A*B + A*C.
func TestMatMulDistributivityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 13))
		m, n, p := 1+r.IntN(8), 1+r.IntN(8), 1+r.IntN(8)
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, p)
		c := randomMatrix(rng, n, p)
		return EqualApprox(MatMul(a, Add(b, c)), Add(MatMul(a, b), MatMul(a, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
