// Package tensor implements the dense linear-algebra kernels used
// throughout samplednn: a row-major float64 matrix type with exact and
// structured (column-subset, transposed-operand) products, elementwise
// operations, norms, and reductions.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS: it implements exactly the operations the feedforward and
// backpropagation equations of the paper require (Eq. 1 of §4.1), plus the
// column/row-subset kernels the sampling-based methods are built on
// (§4.2).
//
// Dimension mismatches are programmer errors and panic with a descriptive
// message, mirroring the convention of established Go numeric libraries.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Data is laid out so that element
// (i, j) lives at Data[i*Cols+j]; RowView exposes rows as slices without
// copying.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols, row-major) in a Matrix without
// copying. The caller must not alias data afterwards unless it intends the
// matrix to observe the writes.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from equal-length row slices, copying them.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.RowView(i), r)
	}
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
}

// RowView returns row i as a slice sharing m's backing storage.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range for %dx%d", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// RowRange returns rows [lo, hi) as a matrix view sharing m's backing
// storage — no copy. Writes through either alias are visible in both.
// Distributed training uses it to address contiguous row shards of a
// batch without materializing them.
func (m *Matrix) RowRange(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: row range [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols : hi*m.Cols]}
}

// Col copies column j into dst (allocated if nil) and returns it.
func (m *Matrix) Col(j int, dst []float64) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: col %d out of range for %dx%d", j, m.Rows, m.Cols))
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	if len(dst) != m.Rows {
		panic("tensor: Col dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// SetCol overwrites column j with src.
func (m *Matrix) SetCol(j int, src []float64) {
	if len(src) != m.Rows {
		panic("tensor: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = src[i]
	}
}

// Zero sets every element to 0, retaining the backing array.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Apply replaces each element x with f(x).
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Map returns a new matrix whose elements are f applied to m's.
func (m *Matrix) Map(f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Equal reports whether a and b have identical shape and elements.
func Equal(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] { //lint:ignore float-equality Equal is the bit-identity predicate the serial-vs-parallel kernel tests pin; exactness is the point
			return false
		}
	}
	return true
}

// EqualApprox reports whether a and b have identical shape and elementwise
// absolute difference at most tol.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are
// summarized by shape.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}
