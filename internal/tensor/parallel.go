package tensor

import (
	"sync/atomic"

	"samplednn/internal/pool"
)

// The kernels in this package shard their output rows over the shared
// worker pool (internal/pool). Two knobs keep small operands from
// regressing: an operation must carry at least parallelCutoffFlops of
// work before the pool is consulted at all, and chunks are sized so each
// carries at least chunkTargetFlops. Below the cutoff the kernels run
// the exact serial loop on the caller.
//
// Determinism: a chunk owns a contiguous block of output rows, and the
// per-row reduction order inside every kernel is identical to the serial
// loop, so results are bit-identical for any worker count (including 1).
const (
	// parallelCutoffFlops is the minimum operation size (in
	// multiply-accumulates, roughly) worth distributing; below it the
	// fork/join overhead of even a warm pool exceeds the kernel time.
	parallelCutoffFlops = 32 << 10
	// chunkTargetFlops sizes chunks so the atomic-counter handout cost
	// is amortized over a meaningful amount of arithmetic.
	chunkTargetFlops = 16 << 10
)

// kernelPool, when non-nil, overrides the shared default pool for this
// package's kernels. Tests and benchmarks use it to pin a worker count.
var kernelPool atomic.Pointer[pool.Pool]

// SetPool overrides the worker pool used by the parallel kernels; nil
// restores the process-wide shared pool (pool.Default, sized by
// GOMAXPROCS or the -threads flag).
func SetPool(p *pool.Pool) {
	if p == nil {
		kernelPool.Store(nil)
		return
	}
	kernelPool.Store(p)
}

func currentPool() *pool.Pool {
	if p := kernelPool.Load(); p != nil {
		return p
	}
	return pool.Default()
}

// ParallelRows runs fn over a partition of [0, n) rows using the
// package's active worker pool, falling back to a single serial
// fn(0, n) call when the total work n*flopsPerRow is below the parallel
// cutoff or the pool has one worker. flopsPerRow is the approximate
// multiply-accumulate count per row and controls chunk granularity.
//
// It is exported because the sampled-training kernels outside this
// package (gather/scatter in internal/core, the outer-product
// accumulation in internal/approxmm) shard over the same pool with the
// same cutoff policy.
func ParallelRows(n, flopsPerRow int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if flopsPerRow < 1 {
		flopsPerRow = 1
	}
	p := currentPool()
	if p.Workers() <= 1 || n*flopsPerRow < parallelCutoffFlops {
		fn(0, n)
		return
	}
	grain := chunkTargetFlops / flopsPerRow
	if grain < 1 {
		grain = 1
	}
	p.ParallelRows(n, grain, fn)
}
