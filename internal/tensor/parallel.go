package tensor

import (
	"sync/atomic"

	"samplednn/internal/pool"
)

// The kernels in this package shard their output rows over the shared
// worker pool (internal/pool). Two knobs keep small operands from
// regressing: an operation must carry at least parallelCutoffWork of
// effective work before the pool is consulted at all, and chunks are
// sized so each carries at least chunkTargetWork. Below the cutoff the
// kernels run the exact serial loop on the caller.
//
// Work is measured in float64-multiply-accumulate equivalents, and it is
// bandwidth-aware: a byte of memory traffic counts as 1/flopsPerByte of
// a flop, so ops that are memory-bound (elementwise kernels, the float32
// path with half the bytes per element) are costed by whichever resource
// actually limits them. The original cutoff was flop-count-only and
// tuned for float64 compute-bound GEMM; it sent cheap bandwidth-bound
// float32 ops to the pool below profitability.
//
// Determinism: a chunk owns a contiguous block of output rows, and the
// per-row reduction order inside every kernel is identical to the serial
// loop, so results are bit-identical for any worker count (including 1).
const (
	// parallelCutoffWork is the minimum operation size (in effective
	// flops) worth distributing; below it the fork/join overhead of even
	// a warm pool exceeds the kernel time.
	parallelCutoffWork = 32 << 10
	// chunkTargetWork sizes chunks so the atomic-counter handout cost
	// is amortized over a meaningful amount of arithmetic.
	chunkTargetWork = 16 << 10
	// flopsPerByte converts memory traffic to effective flops: on the
	// bench host the scalar kernels retire ~2 multiply-adds per streamed
	// byte before going memory-bound, so 1 byte costs ~half a flop.
	flopsPerByte = 2
)

// Cost describes one parallel operation's per-row resource use, the
// input of the serial-cutoff and chunk-size decisions.
type Cost struct {
	// Flops is the multiply-accumulate count per output row.
	Flops int
	// Bytes is the memory traffic per output row (reads + writes,
	// element size included — a float32 row moves half a float64 row).
	Bytes int
	// MinRows, when positive, is the minimum rows per parallel chunk.
	// The packed GEMM kernels set it to the MC block height so a chunk
	// amortizes its operand packing over at least one full block.
	MinRows int
}

// effFlops is the bandwidth-aware effective work per row.
func (c Cost) effFlops() int {
	eff := c.Flops + c.Bytes/flopsPerByte
	if eff < 1 {
		eff = 1
	}
	return eff
}

// kernelPool, when non-nil, overrides the shared default pool for this
// package's kernels. Tests and benchmarks use it to pin a worker count.
var kernelPool atomic.Pointer[pool.Pool]

// SetPool overrides the worker pool used by the parallel kernels; nil
// restores the process-wide shared pool (pool.Default, sized by
// GOMAXPROCS or the -threads flag).
func SetPool(p *pool.Pool) {
	if p == nil {
		kernelPool.Store(nil)
		return
	}
	kernelPool.Store(p)
}

func currentPool() *pool.Pool {
	if p := kernelPool.Load(); p != nil {
		return p
	}
	return pool.Default()
}

// ParallelRows runs fn over a partition of [0, n) rows using the
// package's active worker pool, falling back to a single serial
// fn(0, n) call when the total work n*flopsPerRow is below the parallel
// cutoff or the pool has one worker. flopsPerRow is the approximate
// multiply-accumulate count per row and controls chunk granularity.
//
// It is exported because the sampled-training kernels outside this
// package (gather/scatter in internal/core, the outer-product
// accumulation in internal/approxmm) shard over the same pool with the
// same cutoff policy. Kernels that also move significant memory per row
// should use ParallelRowsCost, which weighs bandwidth as well.
func ParallelRows(n, flopsPerRow int, fn func(lo, hi int)) {
	ParallelRowsCost(n, Cost{Flops: flopsPerRow}, fn)
}

// ParallelRowsCost is ParallelRows with a bandwidth-aware cost model:
// the serial cutoff and chunk granularity are computed from effective
// work (flops plus memory traffic, see Cost), so memory-bound kernels
// and the float32 path do not go parallel below profitability. The
// row-range partition it produces depends only on (n, Cost, worker
// count), never on data, and every kernel's per-row math is
// chunk-boundary independent — results stay bit-identical.
func ParallelRowsCost(n int, c Cost, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	eff := c.effFlops()
	p := currentPool()
	if p.Workers() <= 1 || n*eff < parallelCutoffWork {
		fn(0, n)
		return
	}
	grain := chunkTargetWork / eff
	if grain < 1 {
		grain = 1
	}
	if grain < c.MinRows {
		grain = c.MinRows
	}
	p.ParallelRows(n, grain, fn)
}
