package tensor

import "fmt"

// Sparse-aware product for chained node sampling. When consecutive
// hidden layers are column-sampled (ALSH-approx, Dropout), each layer's
// input is the previous layer's activation vector with all inactive
// nodes exactly zero — typically ≥95% zeros at the paper's active rates.
// MatMulTransBSparse exploits that: it gathers each input row's nonzero
// support once and sums only those terms, so the per-layer cost drops
// from Θ(batch·|S|·n) to Θ(batch·|S|·nnz).
//
// Column-sampled batches share one active set, so in the hot path every
// row of a has the *same* support. A serial prescan detects maximal runs
// of rows with identical support (and runs of dense rows) and routes
// each run through the packed register-blocked core: the support columns
// of a and b are gathered into contiguous scratch once per run, instead
// of b being walked with strided loads once per output element. Rows
// outside such runs keep the original per-row gathered kernel. The
// prescan is global — segment boundaries never depend on how the row
// range is later chunked — so results stay bit-identical at any worker
// count.

// sparseThreshold is the nonzero fraction below which the gathered-
// support path wins over the dense dot-product path; above it the dense
// path's sequential access is faster. The crossover was measured with
// BenchmarkSparseTransB.
const sparseThreshold = 0.4

// Segment kinds of the sparse-product prescan.
const (
	segPerRow uint8 = iota // original per-row gather/dispatch kernel
	segDense               // run of dense rows: packed transB on the originals
	segShared              // run of identical-support sparse rows: gather + packed transB
)

// sparseSeg is one maximal row run [lo, hi) with a uniform execution
// strategy; sup is the shared support for segShared segments.
type sparseSeg struct {
	lo, hi int
	kind   uint8
	sup    []int
}

// MatMulTransBSparseInto computes out = a * bᵀ like MatMulTransBInto but
// exploits row sparsity of a (see the package comment above). Shapes are
// validated before the first write to out. support is reusable scratch:
// the call returns it (possibly grown) for the next invocation.
//
// Per output element the summation runs over the row's support in
// ascending order; terms outside the support are exact zeros and
// contribute nothing. Rows in packed runs accumulate with fused
// multiply-adds, per-row fallback rows with multiply-then-add — which
// path a row takes is decided by the global prescan, never by the
// parallel chunking, so results are bit-identical at any worker count.
func MatMulTransBSparseInto(out, a, b *Matrix, support []int) []int {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBSparse %dx%d by (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBSparse out is %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	m, p := a.Rows, b.Rows
	if m == 0 {
		return support
	}
	var segs []sparseSeg
	segs, support = sparseSegments(a, p, support)
	// MinRows = MC: a chunk that lands in a packed segment must be at
	// least one A-block tall, or every tiny chunk repacks the B panel.
	ParallelRowsCost(m, Cost{Flops: a.Cols * p, Bytes: 8 * (a.Cols + p), MinRows: GEMMBlockConfig().MC}, func(lo, hi int) {
		var sup []int // per-chunk scratch for the per-row fallback
		for _, sg := range segs {
			slo, shi := max(sg.lo, lo), min(sg.hi, hi)
			if slo >= shi {
				continue
			}
			switch sg.kind {
			case segDense:
				av := gview[float64]{data: a.Data, rs: a.Cols, cs: 1}
				bv := gview[float64]{data: b.Data, rs: 1, cs: b.Cols}
				packedGEMM(out.Data, out.Cols, av, bv, a.Cols, p, slo, shi, nil)
			case segShared:
				sharedSupportGEMM(out, a, b, sg.sup, slo, shi)
			default:
				sup = sparsePerRow(out, a, b, slo, shi, sup)
			}
		}
	})
	return support
}

// sparsePerRow is the original kernel: per row, gather the support and
// dispatch between the dense dot-product path and the gathered sum.
func sparsePerRow(out, a, b *Matrix, lo, hi int, sup []int) []int {
	for i := lo; i < hi; i++ {
		arow := a.RowView(i)
		orow := out.RowView(i)
		sup = supportOf(arow, sup)
		if float64(len(sup)) >= sparseThreshold*float64(len(arow)) {
			for j := 0; j < b.Rows; j++ {
				orow[j] = dot(arow, b.RowView(j))
			}
			continue
		}
		for j := 0; j < b.Rows; j++ {
			brow := b.RowView(j)
			var s float64
			for _, k := range sup {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return sup
}

// sharedSupportGEMM handles rows [lo, hi) of a run whose rows all have
// support sup: the sup columns of a's rows and of b's rows are gathered
// into contiguous scratch once, then the packed core runs a dense
// |rows|×|sup| by (p×|sup|)ᵀ product straight into out's rows.
func sharedSupportGEMM(out, a, b *Matrix, sup []int, lo, hi int) {
	rows, ks, p := hi-lo, len(sup), b.Rows
	bufs, release := getPackBufs[float64]()
	defer release()
	bufs.a = growSlice(bufs.a, rows*ks)
	for i := 0; i < rows; i++ {
		arow := a.RowView(lo + i)
		dst := bufs.a[i*ks : (i+1)*ks]
		for t, k := range sup {
			dst[t] = arow[k]
		}
	}
	bufs.b = growSlice(bufs.b, p*ks)
	for j := 0; j < p; j++ {
		brow := b.RowView(j)
		dst := bufs.b[j*ks : (j+1)*ks]
		for t, k := range sup {
			dst[t] = brow[k]
		}
	}
	av := gview[float64]{data: bufs.a, rs: ks, cs: 1}
	bv := gview[float64]{data: bufs.b, rs: 1, cs: ks} // gathered bᵀ
	packedGEMM(out.Data[lo*out.Cols:], out.Cols, av, bv, ks, p, 0, rows, nil)
}

// supportOf gathers the indices of row's nonzero entries into buf.
func supportOf(row []float64, buf []int) []int {
	buf = buf[:0]
	for k, v := range row {
		if v != 0 { //lint:ignore float-equality structural sparsity detection: exact zeros define the support set
			buf = append(buf, k)
		}
	}
	return buf
}

// sparseSegments is the serial prescan: it classifies every row of a
// (dense vs sparse by sparseThreshold), groups maximal runs of dense
// rows and of identical-support sparse rows, and keeps a run as a packed
// segment only when it clears the usePacked size gate — everything else
// collapses into merged per-row segments. It reuses scratch for the
// row-support walk and returns it grown, preserving the kernel's
// scratch-reuse contract.
func sparseSegments(a *Matrix, p int, scratch []int) ([]sparseSeg, []int) {
	m, k := a.Rows, a.Cols
	var segs []sparseSeg
	emit := func(lo, hi int, kind uint8, sup []int) {
		if hi <= lo {
			return
		}
		if kind == segPerRow && len(segs) > 0 {
			if last := &segs[len(segs)-1]; last.kind == segPerRow && last.hi == lo {
				last.hi = hi
				return
			}
		}
		segs = append(segs, sparseSeg{lo: lo, hi: hi, kind: kind, sup: sup})
	}
	if scratch == nil {
		scratch = make([]int, 0, 16)
	}
	cur := scratch
	var runSup []int // support of the active shared-sparse run (own copy)
	runStart := -1
	denseStart := -1
	flushShared := func(end int) {
		if runStart < 0 {
			return
		}
		if len(runSup) > 0 && usePacked(end-runStart, len(runSup), p) {
			emit(runStart, end, segShared, runSup)
			runSup = nil // owned by the segment now
		} else {
			emit(runStart, end, segPerRow, nil)
		}
		runStart = -1
	}
	flushDense := func(end int) {
		if denseStart < 0 {
			return
		}
		if usePacked(end-denseStart, k, p) {
			emit(denseStart, end, segDense, nil)
		} else {
			emit(denseStart, end, segPerRow, nil)
		}
		denseStart = -1
	}
	for i := 0; i < m; i++ {
		cur = supportOf(a.RowView(i), cur)
		if float64(len(cur)) >= sparseThreshold*float64(k) {
			flushShared(i)
			if denseStart < 0 {
				denseStart = i
			}
			continue
		}
		flushDense(i)
		if runStart >= 0 && intsEqual(runSup, cur) {
			continue
		}
		flushShared(i)
		runStart = i
		runSup = append(runSup[:0], cur...)
	}
	flushShared(m)
	flushDense(m)
	return segs, cur
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// MatMulTransBSparse is the allocating convenience form.
func MatMulTransBSparse(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBSparseInto(out, a, b, nil)
	return out
}

// NonzeroFraction returns the fraction of nonzero elements in m (0 for
// an empty matrix).
func (m *Matrix) NonzeroFraction() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	nnz := 0
	for _, v := range m.Data {
		if v != 0 { //lint:ignore float-equality structural sparsity detection: exact zeros define the support set
			nnz++
		}
	}
	return float64(nnz) / float64(len(m.Data))
}
