package tensor

import "fmt"

// Sparse-aware product for chained node sampling. When consecutive
// hidden layers are column-sampled (ALSH-approx, Dropout), each layer's
// input is the previous layer's activation vector with all inactive
// nodes exactly zero — typically ≥95% zeros at the paper's active rates.
// MatMulTransBSparse exploits that: it gathers each input row's nonzero
// support once and sums only those terms, so the per-layer cost drops
// from Θ(batch·|S|·n) to Θ(batch·|S|·nnz).

// sparseThreshold is the nonzero fraction below which the gathered-
// support path wins over the dense dot-product path; above it the dense
// path's sequential access is faster. The crossover was measured with
// BenchmarkSparseTransB.
const sparseThreshold = 0.4

// MatMulTransBSparseInto computes out = a * bᵀ like MatMulTransBInto but
// dispatches per row of a: rows whose nonzero fraction is below the
// sparsity threshold use a gathered-support kernel, dense rows use the
// standard dot-product kernel. Results are identical (same additions in
// the same order within each term group) up to floating-point
// commutativity of skipped zeros, which contribute exactly 0.
// Rows of a are sharded over the worker pool; the per-row support
// gather, dense/sparse dispatch, and summation order are identical to
// the serial loop, so results are bit-identical at any worker count.
// When the kernel runs parallel, each chunk gathers into its own scratch
// (the passed-in support is returned unchanged for later reuse).
func MatMulTransBSparseInto(out, a, b *Matrix, support []int) []int {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBSparse %dx%d by (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBSparse out is %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	ParallelRows(a.Rows, a.Cols*b.Rows, func(lo, hi int) {
		// A span of (0, a.Rows) is the single serial invocation, which may
		// reuse (and grow) the caller's scratch; parallel chunks are always
		// proper sub-ranges and gather into private scratch instead.
		serial := lo == 0 && hi == a.Rows
		var sup []int
		if serial {
			sup = support
		}
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)
			orow := out.RowView(i)
			sup = sup[:0]
			for k, v := range arow {
				if v != 0 { //lint:ignore float-equality structural sparsity detection: exact zeros define the support set
					sup = append(sup, k)
				}
			}
			if float64(len(sup)) >= sparseThreshold*float64(len(arow)) {
				for j := 0; j < b.Rows; j++ {
					orow[j] = dot(arow, b.RowView(j))
				}
				continue
			}
			for j := 0; j < b.Rows; j++ {
				brow := b.RowView(j)
				var s float64
				for _, k := range sup {
					s += arow[k] * brow[k]
				}
				orow[j] = s
			}
		}
		if serial {
			support = sup
		}
	})
	return support
}

// MatMulTransBSparse is the allocating convenience form.
func MatMulTransBSparse(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBSparseInto(out, a, b, nil)
	return out
}

// NonzeroFraction returns the fraction of nonzero elements in m (0 for
// an empty matrix).
func (m *Matrix) NonzeroFraction() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	nnz := 0
	for _, v := range m.Data {
		if v != 0 { //lint:ignore float-equality structural sparsity detection: exact zeros define the support set
			nnz++
		}
	}
	return float64(nnz) / float64(len(m.Data))
}
