package tensor

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer expectPanic(t, "negative dimension")
	New(-1, 2)
}

func TestFromSliceSharesBacking(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	d[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceBadLenPanics(t *testing.T) {
	defer expectPanic(t, "FromSlice")
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("bad FromRows result: %v", m)
	}
	if got := FromRows(nil); got.Rows != 0 || got.Cols != 0 {
		t.Fatal("empty FromRows should be 0x0")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer expectPanic(t, "FromRows")
	FromRows([][]float64{{1, 2}, {3}})
}

func TestEye(t *testing.T) {
	m := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye(3)[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestAtSetBounds(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	defer expectPanic(t, "out of range")
	m.At(2, 0)
}

func TestRowViewAliases(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.RowView(1)
	r[0] = 30
	if m.At(1, 0) != 30 {
		t.Fatal("RowView must alias")
	}
	defer expectPanic(t, "row")
	m.RowView(-1)
}

func TestColRoundtrip(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.Col(1, nil)
	want := []float64{2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Col = %v, want %v", got, want)
		}
	}
	m.SetCol(0, []float64{7, 8, 9})
	if m.At(2, 0) != 9 {
		t.Fatal("SetCol failed")
	}
}

func TestZeroFillApply(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.Sum() != 12 {
		t.Fatalf("Fill: sum = %v", m.Sum())
	}
	m.Apply(func(v float64) float64 { return v * v })
	if m.Sum() != 36 {
		t.Fatalf("Apply: sum = %v", m.Sum())
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMapAllocatesNew(t *testing.T) {
	m := FromRows([][]float64{{1, -2}})
	n := m.Map(math.Abs)
	if m.At(0, 1) != -2 || n.At(0, 1) != 2 {
		t.Fatal("Map must not modify receiver")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestEqualAndApprox(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.0000001}})
	if Equal(a, b) {
		t.Fatal("Equal should be exact")
	}
	if !EqualApprox(a, b, 1e-6) {
		t.Fatal("EqualApprox within tol should hold")
	}
	if EqualApprox(a, New(2, 1), 1) {
		t.Fatal("shape mismatch must not be approx-equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if !strings.Contains(small.String(), "1 2") {
		t.Fatalf("small String: %q", small.String())
	}
	large := New(20, 20)
	if !strings.Contains(large.String(), "20x20") {
		t.Fatalf("large String: %q", large.String())
	}
}

func expectPanic(t *testing.T, substr string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected panic containing %q", substr)
	}
	if msg, ok := r.(string); ok && !strings.Contains(msg, substr) {
		t.Fatalf("panic %q does not contain %q", msg, substr)
	}
}
