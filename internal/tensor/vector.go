package tensor

import (
	"fmt"
	"math"
)

// Dot returns the inner product <a, b>.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return dot(a, b)
}

// dot is the unchecked kernel, unrolled by four to help the compiler keep
// independent accumulation chains in flight.
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy sets y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	axpy(alpha, x, y)
}

// axpy never short-circuits on alpha == 0: 0·NaN and 0·Inf must reach y
// as NaN so non-finite operands propagate through the GEMM kernels (the
// divergence-rollback machinery detects them via the loss).
func axpy(alpha float64, x, y []float64) {
	n := len(x) &^ 3
	for i := 0; i < n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for i := n; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Norm returns the l2 norm of x.
func Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// ScaleVec multiplies every element of x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// SumVec returns the sum of x's elements.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// ArgMax returns the index of the largest element of x (-1 for empty).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}
