package approxmm

import (
	"math"
	"testing"
	"testing/quick"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func randMat(g *rng.RNG, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	g.GaussianSlice(m.Data, 0, 1)
	return m
}

func TestExact(t *testing.T) {
	g := rng.New(1)
	a, b := randMat(g, 4, 5), randMat(g, 5, 6)
	ex := Exact{}
	if !tensor.EqualApprox(ex.Multiply(a, b), tensor.MatMul(a, b), 0) {
		t.Fatal("Exact must equal MatMul")
	}
	if ex.Name() != "exact" {
		t.Fatal("name")
	}
}

// Every sampling estimator with sample count equal to the inner dimension
// and all-equal magnitudes should still produce a finite, roughly correct
// estimate; with c >> n the CR estimator should converge.
func TestCRSamplerUnbiased(t *testing.T) {
	g := rng.New(2)
	a, b := randMat(g, 6, 10), randMat(g, 10, 7)
	exact := tensor.MatMul(a, b)
	// Average many independent estimates: the mean should approach the
	// exact product (unbiasedness).
	mean := tensor.New(6, 7)
	const trials = 3000
	s := NewCRSampler(4, g)
	for i := 0; i < trials; i++ {
		tensor.AddInPlace(mean, s.Multiply(a, b))
	}
	mean.Scale(1.0 / trials)
	if RelativeError(mean, exact) > 0.08 {
		t.Fatalf("CR estimator biased: rel err of mean %v", RelativeError(mean, exact))
	}
}

func TestCRSamplerConvergence(t *testing.T) {
	g := rng.New(3)
	a, b := randMat(g, 8, 50), randMat(g, 50, 8)
	exact := tensor.MatMul(a, b)
	errSmall := RelativeError(NewCRSampler(5, g).Multiply(a, b), exact)
	var errLargeSum float64
	for i := 0; i < 5; i++ {
		errLargeSum += RelativeError(NewCRSampler(2000, g).Multiply(a, b), exact)
	}
	errLarge := errLargeSum / 5
	if errLarge >= errSmall {
		t.Fatalf("more samples should shrink error: c=5 → %v, c=2000 → %v", errSmall, errLarge)
	}
	if errLarge > 0.25 {
		t.Fatalf("c=2000 error too high: %v", errLarge)
	}
}

func TestCRSamplerZeroMatrix(t *testing.T) {
	g := rng.New(4)
	a := tensor.New(3, 4)
	b := randMat(g, 4, 5)
	out := NewCRSampler(3, g).Multiply(a, b)
	if out.FrobeniusNorm() != 0 {
		t.Fatal("zero A must give zero estimate")
	}
}

func TestBernoulliProbabilities(t *testing.T) {
	g := rng.New(5)
	a, b := randMat(g, 6, 12), randMat(g, 12, 6)
	s := NewBernoulliSampler(5, g)
	p := s.Probabilities(a, b)
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-5) > 1e-9 {
		t.Fatalf("expected sample count %v, want 5", sum)
	}
}

func TestBernoulliProbabilitiesClipping(t *testing.T) {
	// One dominant pair: its probability must clip at 1 and the rest of
	// the budget must be redistributed.
	a := tensor.FromRows([][]float64{{100, 1, 1, 1}})
	b := tensor.FromRows([][]float64{{100}, {1}, {1}, {1}})
	s := NewBernoulliSampler(2, rng.New(6))
	p := s.Probabilities(a, b)
	if p[0] != 1 {
		t.Fatalf("dominant pair should clip to 1, got %v", p[0])
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-2) > 1e-9 {
		t.Fatalf("after clipping, expected count %v, want 2", sum)
	}
}

func TestBernoulliKAtLeastN(t *testing.T) {
	g := rng.New(7)
	a, b := randMat(g, 3, 4), randMat(g, 4, 3)
	s := NewBernoulliSampler(10, g)
	p := s.Probabilities(a, b)
	for _, v := range p {
		if v != 1 {
			t.Fatal("k >= n must keep every pair")
		}
	}
	if !tensor.EqualApprox(s.Multiply(a, b), tensor.MatMul(a, b), 1e-9) {
		t.Fatal("k >= n must reproduce the exact product")
	}
}

func TestBernoulliUnbiased(t *testing.T) {
	g := rng.New(8)
	a, b := randMat(g, 5, 10), randMat(g, 10, 5)
	exact := tensor.MatMul(a, b)
	mean := tensor.New(5, 5)
	const trials = 3000
	s := NewBernoulliSampler(4, g)
	for i := 0; i < trials; i++ {
		tensor.AddInPlace(mean, s.Multiply(a, b))
	}
	mean.Scale(1.0 / trials)
	if RelativeError(mean, exact) > 0.08 {
		t.Fatalf("Bernoulli estimator biased: %v", RelativeError(mean, exact))
	}
}

func TestBernoulliZeroWeightsUniformFallback(t *testing.T) {
	a := tensor.New(2, 6)
	b := tensor.New(6, 2)
	s := NewBernoulliSampler(3, rng.New(9))
	p := s.Probabilities(a, b)
	for _, v := range p {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("zero-signal fallback should be uniform k/n, got %v", p)
		}
	}
}

func TestTopKDeterministicAndOrdered(t *testing.T) {
	g := rng.New(10)
	a, b := randMat(g, 6, 20), randMat(g, 20, 6)
	s := NewTopKSampler(8)
	x := s.Multiply(a, b)
	y := s.Multiply(a, b)
	if !tensor.Equal(x, y) {
		t.Fatal("TopK must be deterministic")
	}
	exact := tensor.MatMul(a, b)
	// Keeping all pairs reproduces the exact product.
	if !tensor.EqualApprox(NewTopKSampler(20).Multiply(a, b), exact, 1e-9) {
		t.Fatal("TopK with k=n must be exact")
	}
	// k beyond n also exact.
	if !tensor.EqualApprox(NewTopKSampler(100).Multiply(a, b), exact, 1e-9) {
		t.Fatal("TopK with k>n must be exact")
	}
	// More pairs, at most equal error.
	e8 := RelativeError(s.Multiply(a, b), exact)
	e16 := RelativeError(NewTopKSampler(16).Multiply(a, b), exact)
	if e16 > e8+1e-12 {
		t.Fatalf("TopK error should shrink with k: k=8 %v, k=16 %v", e8, e16)
	}
}

func TestUniformVsCROnSkewedData(t *testing.T) {
	// Skewed magnitudes are exactly where Drineas et al. predict uniform
	// sampling loses: one huge pair dominates.
	g := rng.New(11)
	n := 100
	a := randMat(g, 10, n)
	b := randMat(g, n, 10)
	for i := 0; i < 10; i++ { // inflate one column/row pair
		a.Set(i, 0, a.At(i, 0)*50)
		b.Set(0, i, b.At(0, i)*50)
	}
	exact := tensor.MatMul(a, b)
	var crErr, unifErr float64
	const trials = 30
	cr := NewCRSampler(10, g)
	unif := NewUniformSampler(10, g)
	for i := 0; i < trials; i++ {
		crErr += RelativeError(cr.Multiply(a, b), exact)
		unifErr += RelativeError(unif.Multiply(a, b), exact)
	}
	if crErr >= unifErr {
		t.Fatalf("nonuniform CR should beat uniform on skewed data: cr %v vs uniform %v", crErr/trials, unifErr/trials)
	}
}

func TestExpectedErrorCRMatchesEmpirical(t *testing.T) {
	g := rng.New(12)
	a, b := randMat(g, 6, 30), randMat(g, 30, 6)
	exact := tensor.MatMul(a, b)
	c := 8
	want := ExpectedErrorCR(a, b, c)
	var got float64
	const trials = 4000
	s := NewCRSampler(c, g)
	for i := 0; i < trials; i++ {
		d := tensor.Sub(s.Multiply(a, b), exact)
		f := d.FrobeniusNorm()
		got += f * f
	}
	got /= trials
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("analytic expected error %v vs empirical %v", want, got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"cr":        func() { NewCRSampler(0, rng.New(1)) },
		"bernoulli": func() { NewBernoulliSampler(0, rng.New(1)) },
		"topk":      func() { NewTopKSampler(-1) },
		"uniform":   func() { NewUniformSampler(0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	g := rng.New(13)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	NewCRSampler(2, g).Multiply(tensor.New(2, 3), tensor.New(4, 2))
}

func TestNames(t *testing.T) {
	g := rng.New(14)
	for _, tc := range []struct {
		ap   Approximator
		want string
	}{
		{NewCRSampler(3, g), "cr(c=3)"},
		{NewBernoulliSampler(4, g), "bernoulli(k=4)"},
		{NewTopKSampler(5), "topk(k=5)"},
		{NewUniformSampler(6, g), "uniform(c=6)"},
	} {
		if tc.ap.Name() != tc.want {
			t.Fatalf("Name() = %q, want %q", tc.ap.Name(), tc.want)
		}
	}
}

// Property: KeepProbabilities always returns values in [0,1] summing to
// min(k, n) (within tolerance), for arbitrary weights.
func TestKeepProbabilitiesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 1 + g.IntN(40)
		k := 1 + g.IntN(50)
		w := make([]float64, n)
		for i := range w {
			w[i] = g.Float64() * math.Pow(10, float64(g.IntN(4)))
		}
		p := KeepProbabilities(w, k)
		var sum float64
		for _, v := range p {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
			sum += v
		}
		want := float64(k)
		if k > n {
			want = float64(n)
		}
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeErrorZeroDenominator(t *testing.T) {
	z := tensor.New(2, 2)
	e := tensor.FromRows([][]float64{{1, 0}, {0, 0}})
	if v := RelativeError(e, z); math.IsNaN(v) || math.IsInf(v, 0) && v < 0 {
		t.Fatalf("RelativeError with zero exact should be finite-ish, got %v", v)
	}
	if RelativeError(z, z) != 0 {
		t.Fatal("identical matrices must have zero error")
	}
}
