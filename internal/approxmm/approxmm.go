// Package approxmm implements sampling-based approximate matrix
// multiplication (AMM), the substrate behind the "sampling from the
// previous layer" family of training methods (§6 of the paper).
//
// Given A (m x n) and B (n x p), the exact product is a sum of n outer
// products: AB = Σ_i A[:,i] · B[i,:]. Every estimator here replaces that
// sum with a sample of column-row pairs, rescaled so the estimate is
// unbiased:
//
//   - CRSampler: the Drineas-Kannan-Mahoney estimator (§6.1) — c i.i.d.
//     draws with probability p_i ∝ ||A[:,i]||·||B[i,:]|| (Eq. 6), each
//     scaled by 1/(c·p_i). This distribution minimizes E||AB − CR||²_F.
//   - BernoulliSampler: the Adelman et al. estimator (§6.2) — each pair i
//     kept independently with probability p_i = min(k·||A[:,i]||·||B[i,:]||
//     / Σ_j ||A[:,j]||·||B[j,:]||, 1) (Eq. 7) and scaled by 1/p_i, so on
//     average k pairs survive.
//   - TopKSampler: the deterministic variant that keeps the k largest
//     magnitude pairs, unscaled; biased but low-variance.
//   - UniformSampler: c uniform draws with replacement — the strawman
//     Drineas et al. argue against.
//
// Estimators share the Approximator interface so training code and the
// AMM benchmarks can swap them freely.
package approxmm

import (
	"fmt"
	"sort"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Approximator estimates the product of two matrices.
type Approximator interface {
	// Multiply returns an estimate of a*b.
	Multiply(a, b *tensor.Matrix) *tensor.Matrix
	// Name identifies the estimator in experiment output.
	Name() string
}

// Exact computes the product exactly; it anchors benchmarks and tests.
type Exact struct{}

// Multiply returns a*b.
func (Exact) Multiply(a, b *tensor.Matrix) *tensor.Matrix { return tensor.MatMul(a, b) }

// Name returns "exact".
func (Exact) Name() string { return "exact" }

// pairWeights returns w_i = ||A[:,i]|| * ||B[i,:]|| for every column-row
// pair, the magnitude signal both nonuniform estimators sample from.
func pairWeights(a, b *tensor.Matrix) []float64 {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("approxmm: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	ca := a.ColNorms()
	rb := b.RowNorms()
	w := make([]float64, a.Cols)
	for i := range w {
		w[i] = ca[i] * rb[i]
	}
	return w
}

// accumulateOuters computes out = Σ_t scale[t] · A[:,idx[t]] · B[idx[t],:],
// the sampled-outer-product sum every estimator reduces to. Output rows
// are sharded over the shared worker pool; within one row the terms are
// added in draw order (t ascending), the same reduction order as a
// serial draw-by-draw accumulation, so results are bit-identical at any
// worker count.
func accumulateOuters(out, a, b *tensor.Matrix, idx []int, scale []float64) {
	tensor.ParallelRows(out.Rows, len(idx)*b.Cols, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			arow := a.RowView(r)
			orow := out.RowView(r)
			for t, i := range idx {
				av := arow[i] * scale[t]
				if av == 0 { //lint:ignore float-equality structural-zero skip pinned by estimator semantics; compares exact zeros, not rounded values
					continue
				}
				tensor.Axpy(av, b.RowView(i), orow)
			}
		}
	})
}

// CRSampler implements the Drineas et al. nonuniform estimator.
type CRSampler struct {
	// C is the number of column-row pairs sampled per product.
	C int
	// Rand supplies the draws; it is mutated by Multiply.
	Rand *rng.RNG
}

// NewCRSampler returns a CR estimator drawing c pairs per product.
func NewCRSampler(c int, g *rng.RNG) *CRSampler {
	if c <= 0 {
		panic("approxmm: CRSampler needs c > 0")
	}
	return &CRSampler{C: c, Rand: g}
}

// Name returns a label including the sample count.
func (s *CRSampler) Name() string { return fmt.Sprintf("cr(c=%d)", s.C) }

// Multiply estimates a*b with c draws from the optimal distribution of
// Eq. 6. If the magnitude signal is entirely zero (a or b is a zero
// matrix) the exact product — a zero matrix — is returned directly.
func (s *CRSampler) Multiply(a, b *tensor.Matrix) *tensor.Matrix {
	w := pairWeights(a, b)
	out := tensor.New(a.Rows, b.Cols)
	table, err := rng.NewAlias(w)
	if err != nil {
		return out // all-zero weights: product is exactly zero
	}
	inv := 1 / float64(s.C)
	idx := make([]int, s.C)
	scale := make([]float64, s.C)
	for t := 0; t < s.C; t++ {
		i := table.Draw(s.Rand)
		idx[t] = i
		scale[t] = inv / table.Prob(i)
	}
	accumulateOuters(out, a, b, idx, scale)
	return out
}

// BernoulliSampler implements the Adelman et al. estimator of Eq. 7.
type BernoulliSampler struct {
	// K is the expected number of surviving column-row pairs.
	K int
	// Rand supplies the draws; it is mutated by Multiply.
	Rand *rng.RNG
}

// NewBernoulliSampler returns the Eq. 7 estimator keeping ~k pairs.
func NewBernoulliSampler(k int, g *rng.RNG) *BernoulliSampler {
	if k <= 0 {
		panic("approxmm: BernoulliSampler needs k > 0")
	}
	return &BernoulliSampler{K: k, Rand: g}
}

// Name returns a label including the expected sample count.
func (s *BernoulliSampler) Name() string { return fmt.Sprintf("bernoulli(k=%d)", s.K) }

// Probabilities returns the keep probability of every column-row pair,
// p_i = min(k·w_i/Σw, 1), renormalized after clipping so the expected
// sample count stays at min(k, n) even when some pairs saturate at 1.
func (s *BernoulliSampler) Probabilities(a, b *tensor.Matrix) []float64 {
	return KeepProbabilities(pairWeights(a, b), s.K)
}

// KeepProbabilities computes the Eq. 7 keep probabilities p_i =
// min(k·w_i/Σw, 1) for arbitrary pair weights with iterative mass redistribution:
// clipped pairs keep probability 1 and the residual budget is spread over
// the rest in proportion to their weights.
func KeepProbabilities(w []float64, k int) []float64 {
	n := len(w)
	p := make([]float64, n)
	if k >= n {
		for i := range p {
			p[i] = 1
		}
		return p
	}
	var total float64
	for _, v := range w {
		total += v
	}
	if total == 0 { //lint:ignore float-equality exact-zero weight total is the no-magnitude-signal sentinel for the uniform fallback
		// No magnitude signal; fall back to uniform k/n.
		for i := range p {
			p[i] = float64(k) / float64(n)
		}
		return p
	}
	saturated := make([]bool, n)
	budget := float64(k)
	for iter := 0; iter < n; iter++ {
		var free float64
		for i, v := range w {
			if !saturated[i] {
				free += v
			}
		}
		if free == 0 { //lint:ignore float-equality exact-zero residual capacity terminates redistribution; counts, not rounded sums
			break
		}
		clippedAny := false
		for i, v := range w {
			if saturated[i] {
				continue
			}
			pi := budget * v / free
			if pi >= 1 {
				saturated[i] = true
				p[i] = 1
				budget--
				clippedAny = true
			}
		}
		if !clippedAny {
			for i, v := range w {
				if !saturated[i] {
					p[i] = budget * v / free
				}
			}
			break
		}
	}
	for i := range p {
		if p[i] < 0 {
			p[i] = 0
		}
	}
	return p
}

// Multiply estimates a*b keeping each pair i with probability p_i and
// scaling survivors by 1/p_i, which makes the estimator unbiased.
func (s *BernoulliSampler) Multiply(a, b *tensor.Matrix) *tensor.Matrix {
	p := s.Probabilities(a, b)
	out := tensor.New(a.Rows, b.Cols)
	var idx []int
	var scale []float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		if s.Rand.Bernoulli(pi) {
			idx = append(idx, i)
			scale = append(scale, 1/pi)
		}
	}
	accumulateOuters(out, a, b, idx, scale)
	return out
}

// TopKSampler keeps the k column-row pairs with the largest magnitude
// product, unscaled. It is deterministic and biased; Adelman et al.
// discuss it as the low-variance alternative.
type TopKSampler struct {
	// K is the number of pairs retained.
	K int
}

// NewTopKSampler returns the deterministic top-k estimator.
func NewTopKSampler(k int) *TopKSampler {
	if k <= 0 {
		panic("approxmm: TopKSampler needs k > 0")
	}
	return &TopKSampler{K: k}
}

// Name returns a label including k.
func (s *TopKSampler) Name() string { return fmt.Sprintf("topk(k=%d)", s.K) }

// Multiply sums the k heaviest outer products.
func (s *TopKSampler) Multiply(a, b *tensor.Matrix) *tensor.Matrix {
	w := pairWeights(a, b)
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return w[idx[x]] > w[idx[y]] })
	k := s.K
	if k > len(idx) {
		k = len(idx)
	}
	out := tensor.New(a.Rows, b.Cols)
	scale := make([]float64, k)
	for t := range scale {
		scale[t] = 1
	}
	accumulateOuters(out, a, b, idx[:k], scale)
	return out
}

// UniformSampler draws c pairs uniformly with replacement, each scaled by
// n/c. Drineas et al. argue this adds high error when magnitudes are
// skewed; it is kept as the baseline their analysis beats.
type UniformSampler struct {
	// C is the number of draws per product.
	C int
	// Rand supplies the draws; it is mutated by Multiply.
	Rand *rng.RNG
}

// NewUniformSampler returns the uniform-with-replacement estimator.
func NewUniformSampler(c int, g *rng.RNG) *UniformSampler {
	if c <= 0 {
		panic("approxmm: UniformSampler needs c > 0")
	}
	return &UniformSampler{C: c, Rand: g}
}

// Name returns a label including the sample count.
func (s *UniformSampler) Name() string { return fmt.Sprintf("uniform(c=%d)", s.C) }

// Multiply estimates a*b from c uniform draws.
func (s *UniformSampler) Multiply(a, b *tensor.Matrix) *tensor.Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("approxmm: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := tensor.New(a.Rows, b.Cols)
	n := a.Cols
	if n == 0 {
		return out
	}
	scale := float64(n) / float64(s.C)
	idx := make([]int, s.C)
	scales := make([]float64, s.C)
	for t := range idx {
		idx[t] = s.Rand.IntN(n)
		scales[t] = scale
	}
	accumulateOuters(out, a, b, idx, scales)
	return out
}

// ExpectedErrorCR returns the expected squared Frobenius error of the CR
// estimator with the optimal distribution: (Σ_i w_i)²/c − ||AB||²_F/c,
// with w_i the pair weights. It is the analytic bound of Drineas et al.
func ExpectedErrorCR(a, b *tensor.Matrix, c int) float64 {
	w := pairWeights(a, b)
	var sum float64
	for _, v := range w {
		sum += v
	}
	ab := tensor.MatMul(a, b)
	f := ab.FrobeniusNorm()
	return (sum*sum - f*f) / float64(c)
}

// RelativeError returns ||est − exact||_F / max(||exact||_F, eps), the
// metric the AMM experiments report.
func RelativeError(est, exact *tensor.Matrix) float64 {
	diff := tensor.Sub(est, exact)
	d := exact.FrobeniusNorm()
	if d < 1e-300 {
		d = 1e-300
	}
	return diff.FrobeniusNorm() / d
}
