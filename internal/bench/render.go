package bench

import (
	"fmt"
	"strings"
)

// Render draws the result as an aligned ASCII table with its title,
// paper reference, and notes.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s [%s] ==\n", r.Title, r.ID)
	if r.PaperRef != "" {
		fmt.Fprintf(&b, "   %s\n", r.PaperRef)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as RFC-4180-ish CSV (quotes around cells
// containing commas or quotes).
func (r *Result) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(v, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(v, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(v)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}
