package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/dist"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

// Distributed data-parallel throughput sweep (BENCH_distributed.json).
// Every point trains the same model on the same data with the same
// fixed shard count, varying only the number of worker processes, and
// is checked byte-for-byte against the in-process reference before its
// timing is reported — the dist package's determinism contract makes
// worker count a pure throughput knob. Timings include process spawn
// and the initial state sync, i.e. the cost a user actually pays.

// DistPoint is one worker-count measurement.
type DistPoint struct {
	// Workers is the number of worker processes; 0 is the in-process
	// reference path every other point must match bit-for-bit.
	Workers int     `json:"workers"`
	Shards  int     `json:"shards"`
	Steps   int     `json:"steps"`
	Seconds float64 `json:"seconds"`
	// StepsPerSec counts optimizer steps (batches), not samples.
	StepsPerSec float64 `json:"steps_per_sec"`
	// SpeedupVsSingle is steps_per_sec relative to the workers=0 point.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
	// BitIdentical reports whether the final weights matched the
	// workers=0 run byte-for-byte.
	BitIdentical bool    `json:"bit_identical"`
	FinalLoss    float64 `json:"final_loss"`
}

// DistReport is the BENCH_distributed.json payload.
type DistReport struct {
	Host struct {
		CPUs       int `json:"cpus"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"host"`
	Epochs       int         `json:"epochs"`
	BatchSize    int         `json:"batch_size"`
	TrainSamples int         `json:"train_samples"`
	Shards       int         `json:"shards"`
	Points       []DistPoint `json:"points"`
	Notes        []string    `json:"notes,omitempty"`
}

// distBenchSetup builds the fixed benchmark workload: a synthetic
// dataset and a small MLP, bit-identical on every call.
func distBenchSetup(trainN int) (*core.Standard, *dataset.Dataset, dataset.Options, error) {
	spec := dataset.Spec{
		Name: "dist-bench", Width: 8, Height: 8, Channels: 1,
		Classes: 5, Train: trainN, Test: 50, Val: 25, Difficulty: 0.6,
	}
	dopts := dataset.Options{Seed: 42}
	ds := dataset.GenerateFromSpec(spec, dopts)
	net, err := nn.NewNetwork(nn.Uniform(spec.Dim(), 32, 2, spec.Classes), rng.New(43))
	if err != nil {
		return nil, nil, dataset.Options{}, err
	}
	optim, err := opt.ByName("momentum", 0.05)
	if err != nil {
		return nil, nil, dataset.Options{}, err
	}
	return core.NewStandard(net, optim), ds, dopts, nil
}

// runDistPoint trains the workload once with the given worker count and
// returns the final weight bytes plus the measured wall time.
func runDistPoint(workers, shards, epochs, trainN, batch int) (weights []byte, steps int, secs, loss float64, err error) {
	m, ds, dopts, err := distBenchSetup(trainN)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	reg := obs.NewRegistry()
	co, err := dist.NewCoordinator(m, ds, batch, dist.Options{
		Workers: workers, Shards: shards, Data: dopts, Seed: 7, Registry: reg,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer co.Close()
	tr, err := train.New(m, ds, train.Config{
		Epochs: epochs, BatchSize: batch, Seed: 7, Stepper: co, Registry: reg,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	start := time.Now()
	hist, err := tr.Run()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	secs = time.Since(start).Seconds()
	var buf bytes.Buffer
	if err := m.Net().Save(&buf); err != nil {
		return nil, 0, 0, 0, err
	}
	batches := (ds.Train.Len() + batch - 1) / batch
	return buf.Bytes(), epochs * batches, secs, hist.Epochs[len(hist.Epochs)-1].TrainLoss, nil
}

// RunDistBench measures training throughput at each worker count
// against the workers=0 in-process reference. Shards is fixed at the
// largest worker count so every point computes the identical reduced
// gradient; any point whose final weights differ from the reference
// fails the sweep.
func RunDistBench(workerCounts []int, epochs, trainN, batch int) (*DistReport, error) {
	shards := 1
	for _, w := range workerCounts {
		if w > shards {
			shards = w
		}
	}
	rep := &DistReport{Epochs: epochs, BatchSize: batch, TrainSamples: trainN, Shards: shards}
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Notes = append(rep.Notes,
		"timings include worker spawn and initial state sync",
		"the model is deliberately small, so per-step RPC cost dominates; speedups below 1x measure protocol overhead, not kernel scaling")

	refW, steps, refSecs, refLoss, err := runDistPoint(0, shards, epochs, trainN, batch)
	if err != nil {
		return nil, fmt.Errorf("reference run: %w", err)
	}
	refRate := float64(steps) / refSecs
	rep.Points = append(rep.Points, DistPoint{
		Workers: 0, Shards: shards, Steps: steps, Seconds: refSecs,
		StepsPerSec: refRate, SpeedupVsSingle: 1, BitIdentical: true, FinalLoss: refLoss,
	})
	for _, w := range workerCounts {
		weights, steps, secs, loss, err := runDistPoint(w, shards, epochs, trainN, batch)
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		rate := float64(steps) / secs
		rep.Points = append(rep.Points, DistPoint{
			Workers: w, Shards: shards, Steps: steps, Seconds: secs,
			StepsPerSec: rate, SpeedupVsSingle: rate / refRate,
			BitIdentical: bytes.Equal(weights, refW), FinalLoss: loss,
		})
	}
	return rep, nil
}

// JSON renders the report for BENCH_distributed.json.
func (r *DistReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
