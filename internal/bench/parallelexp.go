package bench

import (
	"fmt"
	"runtime"

	"samplednn/internal/core"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

func init() {
	register(Experiment{
		ID:    "parallel-alsh",
		Title: "§10.4: ALSH-approx scaling with parallel workers",
		Run:   runParallelALSH,
	})
}

// runParallelALSH sweeps the worker count of the data-parallel
// ALSH-approx trainer. Spring and Shrivastava report near-linear scaling
// up to 2^6 processors because per-sample work (hash lookups, sparse
// forward/backward) is independent; this regenerates that sweep on
// whatever cores the host has. Accuracy must be unaffected by the worker
// count — the paper stresses that parallelization changes only the
// runtime.
func runParallelALSH(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	ds, err := loadDataset("mnist", s, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:       "parallel-alsh",
		Title:    fmt.Sprintf("ALSH-approx epoch time and accuracy vs worker count (host has %d CPUs)", runtime.NumCPU()),
		PaperRef: "Spring-Shrivastava (cited §9.2): runtime drops near-linearly with processors; accuracy unchanged",
		Columns:  []string{"workers", "epoch time", "accuracy%"},
	}
	workerCounts := []int{1, 2, 4}
	if s == Tiny {
		workerCounts = []int{1, 2}
	}
	for _, workers := range workerCounts {
		net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), cfg.units, 3, ds.Spec.Classes), rng.New(9100))
		if err != nil {
			return nil, err
		}
		m, err := core.NewParallelALSH(net, opt.NewAdam(cfg.adamLR), core.ALSHConfig{
			Params:    lsh.Params{K: cfg.alshK, L: cfg.alshL, M: 3, U: 0.83},
			MinActive: cfg.minActive,
		}, workers, rng.New(9200))
		if err != nil {
			return nil, err
		}
		tr, err := train.New(m, ds, train.Config{
			Epochs: cfg.epochs, BatchSize: cfg.batch, Seed: 9300,
			MaxEvalSamples: cfg.evalCap, RebuildPerEpoch: true,
		})
		if err != nil {
			return nil, err
		}
		hist, err := tr.Run()
		if err != nil {
			return nil, err
		}
		perEpoch := hist.TotalTiming().Total().Seconds() / float64(len(hist.Epochs))
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(workers),
			fmt.Sprintf("%.3fs", perEpoch),
			fmtPct(hist.Final().TestAccuracy),
		})
	}
	if runtime.NumCPU() == 1 {
		res.Notes = append(res.Notes,
			"single-core host: worker sweep shows scheduling overhead only; multi-core hosts show near-linear speedup")
	}
	return res, nil
}
