package bench

import (
	"time"

	"samplednn/internal/pool"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Cache-block autotuner. The packed GEMM core's default block sizes
// (tensor.BlockConfig) assume a generic x86 cache hierarchy: an A block
// of MC·KC float64s sized for L2, a B strip of KC·NR for L1. Hosts with
// different cache geometry prefer different splits, so the bench binary
// can sweep a small grid and install the fastest configuration before
// measuring — the pick is recorded in BENCH_gemm.json, never persisted
// anywhere else, because block sizes change throughput only: the
// kernels' per-element summation is block-independent by contract
// (TestPackedBlockConfigInvariance pins this), so autotuning cannot
// change any result.

// autotuneGrid is the candidate configurations: MC and KC vary the
// L2-resident A block from 64KB to 1MB; NC is fixed — the B panel is
// streamed once per (jc, pc) and its width only matters once operands
// exceed L3, beyond this benchmark's sizes.
func autotuneGrid() []tensor.BlockConfig {
	var grid []tensor.BlockConfig
	for _, mc := range []int{64, 128, 256} {
		for _, kc := range []int{128, 256, 512} {
			grid = append(grid, tensor.BlockConfig{MC: mc, KC: kc, NC: 512})
		}
	}
	return grid
}

// AutotunePoint is one autotuner measurement.
type AutotunePoint struct {
	Config  tensor.BlockConfig `json:"config"`
	NsPerOp float64            `json:"ns_per_op"`
	GFLOPS  float64            `json:"gflops"`
	Runs    int                `json:"runs"`
}

// AutotuneResult is the grid sweep outcome recorded in GEMMReport.
type AutotuneResult struct {
	// Size is the square operand dimension the grid was timed at.
	Size int `json:"size"`
	// Best is the winning configuration, installed via SetBlockConfig.
	Best   tensor.BlockConfig `json:"best"`
	Points []AutotunePoint    `json:"points"`
}

// AutotuneGEMM times the serial packed matmul kernel at size n under
// each grid configuration (min-of-N within budget per candidate),
// installs the fastest via tensor.SetBlockConfig, and returns the full
// sweep for the report. The caller owns the installed configuration;
// pass the result's Best to SetBlockConfig(tensor.BlockConfig{}) paths
// to restore defaults when done.
func AutotuneGEMM(n int, budget time.Duration) *AutotuneResult {
	g := rng.New(uint64(7000 + n))
	a := tensor.New(n, n)
	b := tensor.New(n, n)
	g.GaussianSlice(a.Data, 0, 1)
	g.GaussianSlice(b.Data, 0, 1)
	out := tensor.New(n, n)

	res := &AutotuneResult{Size: n}
	tensor.SetPool(pool.New(1))
	defer tensor.SetPool(nil)
	best := -1.0
	for _, cfg := range autotuneGrid() {
		tensor.SetBlockConfig(cfg)
		ns, runs, _ := timeOp(func() { tensor.MatMulInto(out, a, b) }, budget)
		res.Points = append(res.Points, AutotunePoint{
			Config: cfg, NsPerOp: ns, GFLOPS: gflops(n, ns), Runs: runs,
		})
		if best < 0 || ns < best {
			best = ns
			res.Best = cfg
		}
	}
	tensor.SetBlockConfig(res.Best)
	return res
}
