package bench

import (
	"bytes"
	"fmt"
	"time"

	"samplednn/internal/binio"
	"samplednn/internal/obs"
)

// Observability-plane overhead microbenchmarks. The cross-process
// correlation layer (PR 9) touches two hot paths: every dist frame now
// carries a 32-byte context and two Lamport clock operations, and every
// served HTTP request derives a correlation context and formats an
// X-Request-Id header. Both claim to be cheap; this experiment pins
// the claim in ns/op next to the tracer numbers in BENCH_trace.json,
// where a regression is visible in review.

// ObsOverhead is the obs section of the BENCH_trace.json payload:
// per-operation costs of the correlation plane.
type ObsOverhead struct {
	// FrameBaselineNS is one binio frame encode+decode round trip with
	// a zero context and no clock — the pre-correlation cost.
	FrameBaselineNS float64 `json:"frame_baseline_ns"`
	// FrameCtxNS is the same round trip with a populated step context,
	// a sender clock tick, and a receiver witness — the full
	// correlation-stamped path dist connections take.
	FrameCtxNS float64 `json:"frame_ctx_ns"`
	// FrameOverheadNS = FrameCtxNS - FrameBaselineNS.
	FrameOverheadNS float64 `json:"frame_overhead_ns"`
	// RequestCtxNS is deriving one HTTP request's correlation context
	// plus formatting its X-Request-Id header value.
	RequestCtxNS float64 `json:"request_ctx_ns"`
	// DisabledEmitNS is the disabled path: EmitCtx on a nil journal
	// plus a nil clock tick; must stay within a few ns (and zero
	// allocations, pinned by internal/obs tests).
	DisabledEmitNS float64 `json:"disabled_emit_ns"`
	// Iters is the measurement loop count behind each number.
	Iters int `json:"iters"`
}

// nsPerOp times iters calls of f and returns mean ns per call.
func nsPerOp(iters int, f func(i int)) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		f(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// RunObsBench measures the correlation plane's per-operation overhead.
// iters <= 0 selects the default loop count.
func RunObsBench(iters int) (*ObsOverhead, error) {
	if iters <= 0 {
		iters = 200_000
	}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	var buf bytes.Buffer
	roundTrip := func(f binio.Frame) error {
		buf.Reset()
		if err := binio.WriteFrame(&buf, f); err != nil {
			return err
		}
		_, err := binio.ReadFrame(&buf)
		return err
	}
	// Fail fast outside the timed loops so a framing bug surfaces as an
	// error, not a nonsense measurement.
	if err := roundTrip(binio.Frame{Type: 1, Seq: 1, Payload: payload}); err != nil {
		return nil, fmt.Errorf("bench: obs frame round trip: %w", err)
	}
	// Warm the CRC tables, buffer, and branch predictors before the
	// timed loops; the first measured configuration must not also pay
	// the one-time costs.
	for i := 0; i < iters/10+1; i++ {
		_ = roundTrip(binio.Frame{Type: 1, Seq: uint64(i + 1), Payload: payload})
	}

	o := &ObsOverhead{Iters: iters}
	o.FrameBaselineNS = nsPerOp(iters, func(i int) {
		_ = roundTrip(binio.Frame{Type: 1, Seq: uint64(i + 1), Payload: payload})
	})

	run := obs.RunID(1)
	cx := obs.StepCtx(run, 3, 7)
	send, recv := obs.NewClock(), obs.NewClock()
	o.FrameCtxNS = nsPerOp(iters, func(i int) {
		c := cx
		c.Clock = send.Tick()
		buf.Reset()
		_ = binio.WriteFrame(&buf, binio.Frame{Type: 1, Seq: uint64(i + 1), Ctx: c, Payload: payload})
		f, err := binio.ReadFrame(&buf)
		if err == nil && f.Ctx.Clock != 0 {
			recv.Witness(f.Ctx.Clock)
		}
	})
	o.FrameOverheadNS = o.FrameCtxNS - o.FrameBaselineNS

	var sink string
	o.RequestCtxNS = nsPerOp(iters, func(i int) {
		rc := obs.RequestCtx(run, obs.RequestTrace(run, uint64(i+1)))
		sink = obs.FormatID(rc.Trace)
	})
	_ = sink

	var nilJournal *obs.Journal
	var nilClock *obs.Clock
	o.DisabledEmitNS = nsPerOp(iters, func(i int) {
		nilJournal.EmitCtx(cx, "bench", nil)
		_ = nilClock.Tick()
	})
	return o, nil
}
