package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"time"

	"samplednn/internal/pool"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// GEMM serial-vs-parallel benchmark. The paper's wall-clock baseline is
// multi-threaded PyTorch on one CPU socket; this sweep measures how far
// the worker-pool kernels close that gap on the host, and doubles as a
// determinism check — every parallel result is compared bit-for-bit
// against the 1-worker run before timing is reported.

// GEMMPoint is one (kernel, size, workers) measurement.
type GEMMPoint struct {
	Kernel  string  `json:"kernel"`
	Size    int     `json:"size"` // square operand dimension n (n×n by n×n)
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	GFLOPS  float64 `json:"gflops"` // 2·n³ multiply-adds per op
	// SpeedupVsSerial is ns_per_op(1 worker) / ns_per_op(this point).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// BitIdentical reports whether this run's output matched the serial
	// output bit-for-bit (the kernels' determinism contract).
	BitIdentical bool `json:"bit_identical"`
}

// GEMMReport is the BENCH_gemm.json payload.
type GEMMReport struct {
	Host struct {
		CPUs       int `json:"cpus"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"host"`
	Sizes   []int       `json:"sizes"`
	Workers []int       `json:"workers"`
	Points  []GEMMPoint `json:"points"`
	Notes   []string    `json:"notes,omitempty"`
}

// gemmKernel adapts one tensor kernel to the square benchmark harness.
type gemmKernel struct {
	name string
	run  func(out, a, b *tensor.Matrix)
}

func gemmKernels() []gemmKernel {
	return []gemmKernel{
		{"matmul", func(out, a, b *tensor.Matrix) { tensor.MatMulInto(out, a, b) }},
		{"transA", func(out, a, b *tensor.Matrix) { tensor.MatMulTransAInto(out, a, b) }},
		{"transB", func(out, a, b *tensor.Matrix) { tensor.MatMulTransBInto(out, a, b) }},
		{"cols25", func(out, a, b *tensor.Matrix) {
			cols := make([]int, b.Cols/4)
			for i := range cols {
				cols[i] = i * 4
			}
			tensor.MatMulCols(out, a, b, cols)
		}},
		{"sparseTransB", func(out, a, b *tensor.Matrix) { tensor.MatMulTransBSparseInto(out, a, b, nil) }},
	}
}

// timeOp measures ns/op of f, repeating until budget elapses (at least
// once).
func timeOp(f func(), budget time.Duration) float64 {
	// One warm-up call keeps first-touch page faults out of the timing.
	f()
	var reps int
	start := time.Now()
	for {
		f()
		reps++
		if time.Since(start) >= budget && reps >= 3 {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// RunGEMMBench sweeps the GEMM kernels over operand sizes and worker
// counts. Workers == 1 is the serial baseline each speedup is relative
// to. The per-point budget bounds total runtime.
func RunGEMMBench(sizes, workerCounts []int, budget time.Duration) *GEMMReport {
	rep := &GEMMReport{Sizes: sizes, Workers: workerCounts}
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if rep.Host.CPUs == 1 {
		rep.Notes = append(rep.Notes,
			"single-CPU host: worker sweeps measure scheduling overhead only; multi-core hosts show near-linear kernel speedup")
	}
	defer tensor.SetPool(nil)
	for _, n := range sizes {
		g := rng.New(uint64(4000 + n))
		a := tensor.New(n, n)
		b := tensor.New(n, n)
		g.GaussianSlice(a.Data, 0, 1)
		g.GaussianSlice(b.Data, 0, 1)
		// sparseTransB wants a sparse left operand; give a 90% zeros at
		// half the rows so both dispatch paths run.
		aSparse := tensor.New(n, n)
		for i := 0; i < n/2; i++ {
			row := aSparse.RowView(i)
			for j := range row {
				if g.Float64() < 0.1 {
					row[j] = g.NormFloat64()
				}
			}
		}
		for i := n / 2; i < n; i++ {
			copy(aSparse.RowView(i), a.RowView(i))
		}
		for _, k := range gemmKernels() {
			left := a
			if k.name == "sparseTransB" {
				left = aSparse
			}
			serialOut := tensor.New(n, n)
			tensor.SetPool(pool.New(1))
			serialNs := timeOp(func() { k.run(serialOut, left, b) }, budget)
			tensor.SetPool(nil)
			rep.Points = append(rep.Points, GEMMPoint{
				Kernel: k.name, Size: n, Workers: 1,
				NsPerOp: serialNs, GFLOPS: gflops(n, serialNs),
				SpeedupVsSerial: 1, BitIdentical: true,
			})
			for _, w := range workerCounts {
				if w <= 1 {
					continue
				}
				p := pool.New(w)
				out := tensor.New(n, n)
				tensor.SetPool(p)
				ns := timeOp(func() { k.run(out, left, b) }, budget)
				tensor.SetPool(nil)
				p.Close()
				rep.Points = append(rep.Points, GEMMPoint{
					Kernel: k.name, Size: n, Workers: w,
					NsPerOp: ns, GFLOPS: gflops(n, ns),
					SpeedupVsSerial: serialNs / ns,
					BitIdentical:    bitsSame(serialOut, out),
				})
			}
		}
	}
	return rep
}

func gflops(n int, nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return 2 * float64(n) * float64(n) * float64(n) / nsPerOp
}

func bitsSame(a, b *tensor.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// JSON renders the report for BENCH_gemm.json.
func (r *GEMMReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// gemmSizesFor picks operand sizes per scale; the acceptance target is
// the ≥512 point, present from Small up.
func gemmSizesFor(s Scale) []int {
	switch s {
	case Tiny:
		return []int{64, 128}
	case Small:
		return []int{128, 256, 512}
	default:
		return []int{256, 512, 1024}
	}
}

func init() {
	register(Experiment{
		ID:    "gemm-parallel",
		Title: "worker-pool GEMM: serial vs parallel kernels",
		Run:   runGEMMExperiment,
	})
}

// runGEMMExperiment adapts the sweep to the experiment-registry table
// format so `cmd/experiments -exp gemm-parallel` renders it.
func runGEMMExperiment(s Scale) (*Result, error) {
	budget := 50 * time.Millisecond
	if s == Paper {
		budget = 500 * time.Millisecond
	}
	rep := RunGEMMBench(gemmSizesFor(s), []int{1, 2, 4}, budget)
	res := &Result{
		ID:    "gemm-parallel",
		Title: fmt.Sprintf("GEMM kernels, serial vs worker pool (host: %d CPUs)", rep.Host.CPUs),
		PaperRef: "the paper's baseline is multi-threaded PyTorch (§8.4); parallel kernels are required " +
			"for wall-clock parity, cf. Adelman et al.'s tuned multi-threaded dense baselines",
		Columns: []string{"kernel", "size", "workers", "ms/op", "speedup", "bit-identical"},
		Notes:   rep.Notes,
	}
	for _, p := range rep.Points {
		res.Rows = append(res.Rows, []string{
			p.Kernel,
			fmt.Sprint(p.Size),
			fmt.Sprint(p.Workers),
			fmt.Sprintf("%.3f", p.NsPerOp/1e6),
			fmt.Sprintf("%.2fx", p.SpeedupVsSerial),
			fmt.Sprint(p.BitIdentical),
		})
	}
	return res, nil
}
