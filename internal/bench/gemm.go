package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"time"

	"samplednn/internal/pool"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// GEMM serial-vs-parallel benchmark. The paper's wall-clock baseline is
// multi-threaded PyTorch on one CPU socket; this sweep measures how far
// the worker-pool kernels close that gap on the host, and doubles as a
// determinism check — every parallel result is compared bit-for-bit
// against the 1-worker run before timing is reported.
//
// Timing is min-of-N: each point runs the kernel repeatedly until the
// budget elapses (at least three runs) and reports the fastest run.
// The minimum estimates the noise-free kernel time — scheduler
// preemption and frequency transitions only ever add time — while the
// run count and the sample standard deviation are recorded so a noisy
// measurement is visible in the report rather than silently averaged in.

// GEMMPoint is one (kernel, size, workers) measurement.
type GEMMPoint struct {
	Kernel  string  `json:"kernel"`
	Size    int     `json:"size"` // square operand dimension n (n×n by n×n)
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"` // fastest of Runs samples
	GFLOPS  float64 `json:"gflops"`    // 2·n³ multiply-adds per op
	// Runs is the number of timed samples behind NsPerOp.
	Runs int `json:"runs"`
	// StddevNs is the sample standard deviation across the Runs samples;
	// large values relative to NsPerOp flag a noisy measurement.
	StddevNs float64 `json:"stddev_ns"`
	// SpeedupVsSerial is ns_per_op(1 worker) / ns_per_op(this point).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// BitIdentical reports whether this run's output matched the serial
	// output bit-for-bit (the kernels' determinism contract).
	BitIdentical bool `json:"bit_identical"`
	// WorstULP is set on matmul32 serial points only: the largest ULP
	// distance between the float32 product and the float64 reference
	// product of the same operands, recorded as an accuracy diagnostic.
	WorstULP int64 `json:"worst_ulp,omitempty"`
}

// GEMMReport is the BENCH_gemm.json payload.
type GEMMReport struct {
	Host struct {
		CPUs       int `json:"cpus"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"host"`
	// BlockConfig is the packed-GEMM block configuration the sweep ran
	// under (the autotuner's pick when autotuning was requested).
	BlockConfig tensor.BlockConfig `json:"block_config"`
	// Autotune holds the per-configuration autotuner measurements when
	// the sweep was preceded by AutotuneGEMM.
	Autotune *AutotuneResult `json:"autotune,omitempty"`
	Sizes    []int           `json:"sizes"`
	Workers  []int           `json:"workers"`
	Points   []GEMMPoint     `json:"points"`
	Notes    []string        `json:"notes,omitempty"`
}

// gemmKernel adapts one tensor kernel to the square benchmark harness.
type gemmKernel struct {
	name string
	run  func(out, a, b *tensor.Matrix)
}

func gemmKernels() []gemmKernel {
	return []gemmKernel{
		{"matmul", func(out, a, b *tensor.Matrix) { tensor.MatMulInto(out, a, b) }},
		{"transA", func(out, a, b *tensor.Matrix) { tensor.MatMulTransAInto(out, a, b) }},
		{"transB", func(out, a, b *tensor.Matrix) { tensor.MatMulTransBInto(out, a, b) }},
		{"cols25", func(out, a, b *tensor.Matrix) {
			cols := make([]int, b.Cols/4)
			for i := range cols {
				cols[i] = i * 4
			}
			tensor.MatMulCols(out, a, b, cols)
		}},
		{"sparseTransB", func(out, a, b *tensor.Matrix) { tensor.MatMulTransBSparseInto(out, a, b, nil) }},
	}
}

// timeOp measures f by min-of-N: it repeats f until budget elapses (at
// least three timed runs after one warm-up) and returns the fastest
// single run in nanoseconds, the run count, and the sample standard
// deviation.
func timeOp(f func(), budget time.Duration) (minNs float64, runs int, stddevNs float64) {
	// One warm-up call keeps first-touch page faults out of the timing.
	f()
	var samples []float64
	deadline := time.Now().Add(budget)
	for {
		start := time.Now()
		f()
		samples = append(samples, float64(time.Since(start).Nanoseconds()))
		if len(samples) >= 3 && !time.Now().Before(deadline) {
			break
		}
	}
	minNs = samples[0]
	var mean float64
	for _, s := range samples {
		if s < minNs {
			minNs = s
		}
		mean += s
	}
	mean /= float64(len(samples))
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	if len(samples) > 1 {
		stddevNs = math.Sqrt(ss / float64(len(samples)-1))
	}
	return minNs, len(samples), stddevNs
}

// RunGEMMBench sweeps the GEMM kernels over operand sizes and worker
// counts; includeF32 adds the float32 matmul32 path to the sweep.
// Workers == 1 is the serial baseline each speedup is relative to. The
// per-point budget bounds total runtime. It returns an error when the
// float32 kernel's result violates its documented accuracy bound
// against the float64 reference.
func RunGEMMBench(sizes, workerCounts []int, budget time.Duration, includeF32 bool) (*GEMMReport, error) {
	rep := &GEMMReport{Sizes: sizes, Workers: workerCounts, BlockConfig: tensor.GEMMBlockConfig()}
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if rep.Host.CPUs == 1 {
		rep.Notes = append(rep.Notes,
			"single-CPU host: worker sweeps measure scheduling overhead only; multi-core hosts show near-linear kernel speedup")
	}
	defer tensor.SetPool(nil)
	for _, n := range sizes {
		g := rng.New(uint64(4000 + n))
		a := tensor.New(n, n)
		b := tensor.New(n, n)
		g.GaussianSlice(a.Data, 0, 1)
		g.GaussianSlice(b.Data, 0, 1)
		// sparseTransB wants a sparse left operand; give a 90% zeros at
		// half the rows so both dispatch paths run.
		aSparse := tensor.New(n, n)
		for i := 0; i < n/2; i++ {
			row := aSparse.RowView(i)
			for j := range row {
				if g.Float64() < 0.1 {
					row[j] = g.NormFloat64()
				}
			}
		}
		for i := n / 2; i < n; i++ {
			copy(aSparse.RowView(i), a.RowView(i))
		}
		for _, k := range gemmKernels() {
			left := a
			if k.name == "sparseTransB" {
				left = aSparse
			}
			serialOut := tensor.New(n, n)
			tensor.SetPool(pool.New(1))
			serialNs, serialRuns, serialSd := timeOp(func() { k.run(serialOut, left, b) }, budget)
			tensor.SetPool(nil)
			rep.Points = append(rep.Points, GEMMPoint{
				Kernel: k.name, Size: n, Workers: 1,
				NsPerOp: serialNs, GFLOPS: gflops(n, serialNs),
				Runs: serialRuns, StddevNs: serialSd,
				SpeedupVsSerial: 1, BitIdentical: true,
			})
			for _, w := range workerCounts {
				if w <= 1 {
					continue
				}
				p := pool.New(w)
				out := tensor.New(n, n)
				tensor.SetPool(p)
				ns, runs, sd := timeOp(func() { k.run(out, left, b) }, budget)
				tensor.SetPool(nil)
				p.Close()
				rep.Points = append(rep.Points, GEMMPoint{
					Kernel: k.name, Size: n, Workers: w,
					NsPerOp: ns, GFLOPS: gflops(n, ns),
					Runs: runs, StddevNs: sd,
					SpeedupVsSerial: serialNs / ns,
					BitIdentical:    bitsSame(serialOut, out),
				})
			}
		}
		if includeF32 {
			if err := runMatMul32Points(rep, a, b, workerCounts, budget); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// runMatMul32Points measures the float32 storage path at one size:
// serial baseline, worker sweep with bit-identity against serial, and a
// one-shot accuracy verification of the serial product against the
// float64 reference — the recursive-summation bound of DESIGN.md §13,
// |err| ≤ n·eps32·Σ|a·b|, with the magnitude sum computed by a second
// GEMM over |a| and |b|.
func runMatMul32Points(rep *GEMMReport, a, b *tensor.Matrix, workerCounts []int, budget time.Duration) error {
	const eps32 = 1.0 / (1 << 23)
	n := a.Rows
	a32, b32 := a.ToFloat32(), b.ToFloat32()
	serialOut := tensor.New32(n, n)
	tensor.SetPool(pool.New(1))
	serialNs, serialRuns, serialSd := timeOp(func() { tensor.MatMul32Into(serialOut, a32, b32) }, budget)
	tensor.SetPool(nil)

	// Accuracy check: widen the float32 operands so both paths see
	// identical inputs, then bound |f32 - f64| by n·eps32·(|a|·|b|).
	a64, b64 := a32.ToFloat64(), b32.ToFloat64()
	ref := tensor.MatMul(a64, b64)
	absA, absB := a64.Clone(), b64.Clone()
	for i := range absA.Data {
		absA.Data[i] = math.Abs(absA.Data[i])
	}
	for i := range absB.Data {
		absB.Data[i] = math.Abs(absB.Data[i])
	}
	magSum := tensor.MatMul(absA, absB)
	var worstULP int64
	for i := range serialOut.Data {
		err := math.Abs(float64(serialOut.Data[i]) - ref.Data[i])
		if bound := float64(n) * eps32 * magSum.Data[i]; err > bound {
			return fmt.Errorf("matmul32 n=%d element %d: |err| = %g exceeds accuracy bound n·eps32·Σ|a·b| = %g",
				n, i, err, bound)
		}
		// Record the worst ULP distance as a diagnostic; under
		// cancellation it can be large while the absolute bound holds,
		// which is exactly why the report carries it.
		//lint:ignore ulp-bound benchmark accuracy diagnostic: the binding check is the absolute bound above
		if d := tensor.ULPDistance32(serialOut.Data[i], float32(ref.Data[i])); d > worstULP {
			worstULP = d
		}
	}
	rep.Points = append(rep.Points, GEMMPoint{
		Kernel: "matmul32", Size: n, Workers: 1,
		NsPerOp: serialNs, GFLOPS: gflops(n, serialNs),
		Runs: serialRuns, StddevNs: serialSd,
		SpeedupVsSerial: 1, BitIdentical: true,
		WorstULP: worstULP,
	})
	for _, w := range workerCounts {
		if w <= 1 {
			continue
		}
		p := pool.New(w)
		out := tensor.New32(n, n)
		tensor.SetPool(p)
		ns, runs, sd := timeOp(func() { tensor.MatMul32Into(out, a32, b32) }, budget)
		tensor.SetPool(nil)
		p.Close()
		rep.Points = append(rep.Points, GEMMPoint{
			Kernel: "matmul32", Size: n, Workers: w,
			NsPerOp: ns, GFLOPS: gflops(n, ns),
			Runs: runs, StddevNs: sd,
			SpeedupVsSerial: serialNs / ns,
			BitIdentical:    tensor.Equal32(serialOut, out),
		})
	}
	return nil
}

func gflops(n int, nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return 2 * float64(n) * float64(n) * float64(n) / nsPerOp
}

func bitsSame(a, b *tensor.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// JSON renders the report for BENCH_gemm.json.
func (r *GEMMReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// gemmSizesFor picks operand sizes per scale; the acceptance target is
// the ≥512 point, present from Small up.
func gemmSizesFor(s Scale) []int {
	switch s {
	case Tiny:
		return []int{64, 128}
	case Small:
		return []int{128, 256, 512}
	default:
		return []int{256, 512, 1024}
	}
}

func init() {
	register(Experiment{
		ID:    "gemm-parallel",
		Title: "worker-pool GEMM: serial vs parallel kernels",
		Run:   runGEMMExperiment,
	})
}

// runGEMMExperiment adapts the sweep to the experiment-registry table
// format so `cmd/experiments -exp gemm-parallel` renders it.
func runGEMMExperiment(s Scale) (*Result, error) {
	budget := 50 * time.Millisecond
	if s == Paper {
		budget = 500 * time.Millisecond
	}
	rep, err := RunGEMMBench(gemmSizesFor(s), []int{1, 2, 4}, budget, true)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "gemm-parallel",
		Title: fmt.Sprintf("GEMM kernels, serial vs worker pool (host: %d CPUs)", rep.Host.CPUs),
		PaperRef: "the paper's baseline is multi-threaded PyTorch (§8.4); parallel kernels are required " +
			"for wall-clock parity, cf. Adelman et al.'s tuned multi-threaded dense baselines",
		Columns: []string{"kernel", "size", "workers", "ms/op", "speedup", "bit-identical"},
		Notes:   rep.Notes,
	}
	for _, p := range rep.Points {
		res.Rows = append(res.Rows, []string{
			p.Kernel,
			fmt.Sprint(p.Size),
			fmt.Sprint(p.Workers),
			fmt.Sprintf("%.3f", p.NsPerOp/1e6),
			fmt.Sprintf("%.2fx", p.SpeedupVsSerial),
			fmt.Sprint(p.BitIdentical),
		})
	}
	return res, nil
}
