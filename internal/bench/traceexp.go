package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"

	"samplednn/internal/core"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/obs/trace"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

// Tracer/probe overhead benchmark. The observability layer promises to
// be cheap enough to leave on during real measurements: the disabled
// path is one atomic pointer load per span site, and the enabled path
// must not distort the §10 timing tables. This experiment quantifies
// both by training the same ALSH-approx configuration with the
// instrumentation off (twice, to expose the host's noise floor), with
// the span tracer on, with the error-compounding probe on, and with
// both.

// TracePoint is one instrumented-training measurement.
type TracePoint struct {
	// Config names the instrumentation state: "baseline", "baseline-2",
	// "tracer", "probe", or "tracer+probe".
	Config          string  `json:"config"`
	SecondsPerEpoch float64 `json:"seconds_per_epoch"`
	// OverheadPct is the slowdown relative to the mean of the two
	// baseline runs, in percent (negative = faster, i.e. noise).
	OverheadPct float64 `json:"overhead_pct"`
	// Spans is the number of spans recorded (0 when the tracer is off).
	Spans int64 `json:"spans"`
	// Accuracy pins that instrumentation does not change the training
	// trajectory's outcome.
	Accuracy float64 `json:"accuracy"`
}

// TraceReport is the BENCH_trace.json payload.
type TraceReport struct {
	Host struct {
		CPUs       int `json:"cpus"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"host"`
	Scale string `json:"scale"`
	// NoiseFloorPct is the relative gap between the two baseline runs —
	// overheads below this are not distinguishable from host noise.
	NoiseFloorPct float64      `json:"noise_floor_pct"`
	Points        []TracePoint `json:"points"`
	// Obs holds the correlation-plane microbenchmarks (ns per frame,
	// per request, per disabled emit), appended by benchtrace -obs.
	Obs   *ObsOverhead `json:"obs,omitempty"`
	Notes []string     `json:"notes,omitempty"`
}

// JSON renders the report for BENCH_trace.json.
func (r *TraceReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func init() {
	register(Experiment{
		ID:    "trace-overhead",
		Title: "span tracer and error probe overhead on ALSH-approx training",
		Run:   runTraceOverheadResult,
	})
}

// traceRunConfig selects which instrumentation a measurement enables.
type traceRunConfig struct {
	name       string
	tracer     bool
	probeEvery int
}

// runTraceMeasurement trains one fresh ALSH-approx network and reports
// seconds per epoch, spans recorded, and final accuracy. Every call
// rebuilds the network from the same seeds so the workload is identical
// across configurations.
func runTraceMeasurement(s Scale, rc traceRunConfig) (TracePoint, error) {
	cfg := settingsFor(s)
	ds, err := loadDataset("mnist", s, cfg)
	if err != nil {
		return TracePoint{}, err
	}
	net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), cfg.units, 3, ds.Spec.Classes), rng.New(9400))
	if err != nil {
		return TracePoint{}, err
	}
	var trc *trace.Tracer
	if rc.tracer {
		trc = trace.New(0)
		trace.SetActive(trc)
		defer trace.SetActive(nil)
	}
	m, err := core.New("alsh", net, opt.NewAdam(cfg.adamLR), core.Options{
		Seed: 9500,
		ALSH: core.ALSHConfig{
			Params:    lsh.Params{K: cfg.alshK, L: cfg.alshL, M: 3, U: 0.83},
			MinActive: cfg.minActive,
		},
	})
	if err != nil {
		return TracePoint{}, err
	}
	tr, err := train.New(m, ds, train.Config{
		Epochs: cfg.epochs, BatchSize: cfg.batch, Seed: 9600,
		MaxEvalSamples: cfg.evalCap, RebuildPerEpoch: true,
		ProbeEvery: rc.probeEvery,
	})
	if err != nil {
		return TracePoint{}, err
	}
	hist, err := tr.Run()
	if err != nil {
		return TracePoint{}, err
	}
	p := TracePoint{
		Config:          rc.name,
		SecondsPerEpoch: hist.TotalTiming().Total().Seconds() / float64(len(hist.Epochs)),
		Accuracy:        hist.Final().TestAccuracy,
	}
	if trc != nil {
		p.Spans = int64(trc.Len()) + trc.Dropped()
	}
	return p, nil
}

// RunTraceBench measures tracer and probe overhead at the given scale.
func RunTraceBench(s Scale) (*TraceReport, error) {
	rep := &TraceReport{Scale: s.String()}
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)

	configs := []traceRunConfig{
		{name: "baseline"},
		{name: "baseline-2"},
		{name: "tracer", tracer: true},
		{name: "probe", probeEvery: 10},
		{name: "tracer+probe", tracer: true, probeEvery: 10},
	}
	for _, rc := range configs {
		p, err := runTraceMeasurement(s, rc)
		if err != nil {
			return nil, fmt.Errorf("bench: trace config %s: %w", rc.name, err)
		}
		rep.Points = append(rep.Points, p)
	}

	b1, b2 := rep.Points[0].SecondsPerEpoch, rep.Points[1].SecondsPerEpoch
	base := (b1 + b2) / 2
	if base > 0 {
		rep.NoiseFloorPct = 100 * math.Abs(b1-b2) / base
		for i := range rep.Points {
			rep.Points[i].OverheadPct = 100 * (rep.Points[i].SecondsPerEpoch - base) / base
		}
	}
	rep.Notes = append(rep.Notes,
		"overhead_pct is relative to the mean of the two baseline runs; values below noise_floor_pct are indistinguishable from host noise",
		"the probe adds one exact+approximate forward on a fixed minibatch every 10 batches; the tracer records every span into a 64Ki ring")
	return rep, nil
}

// runTraceOverheadResult adapts the report to the experiment registry's
// table form.
func runTraceOverheadResult(s Scale) (*Result, error) {
	rep, err := RunTraceBench(s)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:       "trace-overhead",
		Title:    fmt.Sprintf("tracer/probe overhead on ALSH-approx (noise floor %.1f%%)", rep.NoiseFloorPct),
		PaperRef: "§9.2 methodology: timing splits must reflect the methods, not the instrumentation measuring them",
		Columns:  []string{"config", "s/epoch", "overhead%", "spans", "accuracy%"},
		Notes:    rep.Notes,
	}
	for _, p := range rep.Points {
		res.Rows = append(res.Rows, []string{
			p.Config,
			fmt.Sprintf("%.3f", p.SecondsPerEpoch),
			fmt.Sprintf("%+.1f", p.OverheadPct),
			fmt.Sprint(p.Spans),
			fmtPct(p.Accuracy),
		})
	}
	return res, nil
}
