// Package bench is the experiment harness: every table and figure of the
// paper's evaluation (§8-§9) is a registered Experiment that regenerates
// the corresponding rows or series, at three scales.
//
// The Paper scale uses the published configuration (§8.4: 3 hidden layers
// of 1000 units, 50 epochs, full splits, batch 20 for the mini-batch
// setting, K=6/L=5/m=3 for ALSH-approx, k=10 for MC-approx). The Small
// and Tiny scales shrink sample counts, layer widths, and epochs so the
// sweep finishes on one CPU core — absolute numbers shrink with them, but
// the comparisons the paper draws (who wins, where ALSH-approx collapses,
// where the MC-approx batch-size crossover sits) are preserved, and
// learning rates are raised to keep the shortened runs in the same
// training regime. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"sort"
)

// Scale selects an experiment size.
type Scale int

// Available scales.
const (
	// Tiny finishes in seconds; used by unit tests.
	Tiny Scale = iota
	// Small finishes in minutes on one core; the bench_test.go default.
	Small
	// Paper uses the published configuration.
	Paper
)

// ParseScale converts a flag string.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q (want tiny, small, or paper)", s)
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// settings carries the scaled experiment parameters.
type settings struct {
	units       int // hidden-layer width
	epochs      int
	trainCap    int // per-dataset training-sample cap (0 = paper split)
	testCap     int
	bigTrainCap int // caps for the high-dimensional sets (NORB, CIFAR)
	bigTestCap  int
	evalCap     int     // per-epoch evaluation cap
	lr          float64 // SGD learning rate, mini-batch setting
	lrStoch     float64 // SGD learning rate, stochastic setting (batch 1)
	lrLow       float64 // the paper's "lowered" rate (1e-4 analogue)
	adamLR      float64 // ALSH-approx uses Adam (§8.4)
	batch       int     // mini-batch size (paper: 20)
	mcK         int     // MC-approx sample count (paper: 10)
	alshK       int     // hash bits; fewer at small widths so buckets stay occupied
	alshL       int
	minActive   int
}

func settingsFor(s Scale) settings {
	switch s {
	case Tiny:
		return settings{
			units: 32, epochs: 1,
			trainCap: 200, testCap: 100, bigTrainCap: 80, bigTestCap: 50,
			evalCap: 100,
			lr:      0.1, lrStoch: 0.05, lrLow: 0.01, adamLR: 0.01,
			batch: 20, mcK: 10, alshK: 3, alshL: 4, minActive: 4,
		}
	case Small:
		return settings{
			units: 96, epochs: 8,
			trainCap: 1200, testCap: 400, bigTrainCap: 350, bigTestCap: 150,
			evalCap: 400,
			lr:      0.05, lrStoch: 0.015, lrLow: 0.005, adamLR: 0.002,
			batch: 20, mcK: 32, alshK: 5, alshL: 12, minActive: 10,
		}
	default: // Paper
		return settings{
			units: 1000, epochs: 50,
			evalCap: 0,
			lr:      1e-3, lrStoch: 1e-3, lrLow: 1e-4, adamLR: 1e-3,
			batch: 20, mcK: 10, alshK: 6, alshL: 5, minActive: 10,
		}
	}
}

// Result is a regenerated table or figure in row form.
type Result struct {
	// ID matches the experiment id ("table2", "fig7", …).
	ID string
	// Title describes the artifact.
	Title string
	// PaperRef summarizes what the paper reports, for side-by-side
	// comparison.
	PaperRef string
	// Columns and Rows hold the regenerated data.
	Columns []string
	Rows    [][]string
	// Notes carries free-form observations (e.g. rendered confusion
	// matrices, shape checks).
	Notes []string
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the registry key.
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment at a scale.
	Run func(s Scale) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists every registered experiment sorted by id.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
