package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/pool"
	"samplednn/internal/rng"
	"samplednn/internal/serve"
	"samplednn/internal/tensor"
	"samplednn/internal/train"
)

// Serving-layer latency/throughput sweep (BENCH_serve.json). A real
// mlpserve instance — checkpoint load, HTTP stack, convoy batcher —
// serves on a loopback port while 1, 2, and 4 closed-loop workers
// hammer /predict. Every point first verifies that the served
// predictions match a local forward pass of the same checkpoint, so a
// throughput number can never mask a correctness regression, and
// per-request latency lands in an obs log2 Distribution, which is where
// the reported p50/p95/p99 come from.

// ServePoint is one worker-count measurement.
type ServePoint struct {
	// Workers is the number of concurrent closed-loop load workers.
	Workers  int `json:"workers"`
	Requests int `json:"requests"`
	// RowsPerRequest is the batch size each request carries.
	RowsPerRequest int     `json:"rows_per_request"`
	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	RowsPerSec     float64 `json:"rows_per_sec"`
	// P50/P95/P99 are per-request latency quantiles in microseconds,
	// reconstructed from the log2 histogram (±1 bucket width).
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
	// Identical reports that every response in this point matched the
	// local single-model reference predictions.
	Identical bool `json:"identical"`
	Errors    int  `json:"errors"`
	// BatchedCalls/BatchedRows summarize the convoy batcher's view of
	// this point: how many leader GEMMs ran and the rows they carried.
	BatchedCalls int64 `json:"batched_calls"`
	// MaxCoalesced is the largest number of requests one GEMM served.
	MaxCoalesced int64 `json:"max_coalesced"`
}

// ServeReport is the BENCH_serve.json payload.
type ServeReport struct {
	Host struct {
		CPUs       int `json:"cpus"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"host"`
	// Model describes the served checkpoint.
	Model serve.ModelInfo `json:"model"`
	// MaxBatchRows is the server's micro-batch cap.
	MaxBatchRows int          `json:"max_batch_rows"`
	Points       []ServePoint `json:"points"`
	Notes        []string     `json:"notes,omitempty"`
}

// JSON renders the report for BENCH_serve.json.
func (r *ServeReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// predictReply mirrors the serve /predict response shape.
type predictReply struct {
	Predictions []int  `json:"predictions"`
	CRC         uint32 `json:"crc"`
	Epoch       int    `json:"epoch"`
}

// serveBenchPayloads builds nPayloads seeded request bodies plus the
// local reference predictions each must come back with.
func serveBenchPayloads(m *serve.Model, nPayloads, rows int, seed uint64) (bodies [][]byte, refs [][]int) {
	g := rng.New(seed)
	for i := 0; i < nPayloads; i++ {
		x := make([][]float64, rows)
		flat := make([]float64, rows*m.Info.Inputs)
		g.GaussianSlice(flat, 0, 1)
		for r := range x {
			x[r] = flat[r*m.Info.Inputs : (r+1)*m.Info.Inputs]
		}
		body, err := json.Marshal(map[string]any{"rows": x})
		if err != nil {
			panic(err) // rows of finite float64 always marshal
		}
		bodies = append(bodies, body)

		xm := tensor.New(rows, m.Info.Inputs)
		copy(xm.Data, flat)
		refs = append(refs, m.Net.Predict(xm))
	}
	return bodies, refs
}

// RunServeBench stands up a real serving instance over a freshly
// written checkpoint and measures closed-loop /predict throughput and
// latency at each worker count.
func RunServeBench(workerCounts []int, requests, rows int) (*ServeReport, error) {
	dir, err := os.MkdirTemp("", "servebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ckPath := filepath.Join(dir, "model.snck")
	netw, err := nn.NewNetwork(nn.Uniform(64, 32, 2, 10), rng.New(43))
	if err != nil {
		return nil, err
	}
	var blob bytes.Buffer
	if err := netw.Save(&blob); err != nil {
		return nil, err
	}
	ck := &train.Checkpoint{Epoch: 1, MethodName: "standard", NetBlob: blob.Bytes()}
	if err := ck.WriteFile(ckPath); err != nil {
		return nil, err
	}

	reg := obs.NewRegistry()
	s := serve.NewServer(serve.Options{MaxBatchRows: 256, Registry: reg})
	if _, err := s.LoadAndSwap(ckPath); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	//lint:ignore raw-goroutine Serve blocks for the benchmark's lifetime; shut down via srv.Close below, so it cannot be a bounded pool task
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	url := "http://" + ln.Addr().String() + "/predict"
	bodies, refs := serveBenchPayloads(s.Model(), 16, rows, 44)

	rep := &ServeReport{Model: s.Model().Info, MaxBatchRows: 256}
	rep.Host.CPUs = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Notes = append(rep.Notes,
		"closed-loop workers over loopback HTTP; latency includes JSON encode/decode and the convoy batcher",
		"every point's responses are verified against a local forward pass of the same checkpoint before its timing is reported")

	client := &http.Client{Timeout: 30 * time.Second}
	for _, w := range workerCounts {
		pt, err := runServePoint(client, url, bodies, refs, s, w, requests, rows)
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		rep.Points = append(rep.Points, *pt)
	}
	return rep, nil
}

// runServePoint drives one worker count: requests requests split across
// w closed-loop workers, each verified against the reference.
func runServePoint(client *http.Client, url string, bodies [][]byte, refs [][]int, s *serve.Server, w, requests, rows int) (*ServePoint, error) {
	lat := obs.NewDistribution()
	var mismatches, errors atomic.Int64
	callsBefore := s.BatchStats()

	p := pool.New(w)
	defer p.Close()
	grain := (requests + w - 1) / w
	start := time.Now()
	p.ParallelRows(requests, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body := bodies[i%len(bodies)]
			t0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				errors.Add(1)
				continue
			}
			var reply predictReply
			decErr := json.NewDecoder(resp.Body).Decode(&reply)
			resp.Body.Close()
			lat.Observe(time.Since(t0).Microseconds())
			if resp.StatusCode != http.StatusOK || decErr != nil {
				errors.Add(1)
				continue
			}
			want := refs[i%len(refs)]
			if len(reply.Predictions) != len(want) {
				mismatches.Add(1)
				continue
			}
			for j := range want {
				if reply.Predictions[j] != want[j] {
					mismatches.Add(1)
					break
				}
			}
		}
	})
	secs := time.Since(start).Seconds()

	if n := mismatches.Load(); n > 0 {
		return nil, fmt.Errorf("%d responses diverged from the local reference", n)
	}
	snap := lat.Snapshot()
	callsAfter := s.BatchStats()
	pt := &ServePoint{
		Workers: w, Requests: requests, RowsPerRequest: rows,
		Seconds:        secs,
		RequestsPerSec: float64(requests) / secs,
		RowsPerSec:     float64(requests*rows) / secs,
		P50Micros:      snap.P50, P95Micros: snap.P95, P99Micros: snap.P99,
		Identical:    true,
		Errors:       int(errors.Load()),
		BatchedCalls: callsAfter.Batches - callsBefore.Batches,
		MaxCoalesced: callsAfter.MaxCoalesced,
	}
	if pt.Errors > 0 {
		return nil, fmt.Errorf("%d requests failed", pt.Errors)
	}
	return pt, nil
}
