package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestScaleParsing(t *testing.T) {
	for _, s := range []string{"tiny", "small", "paper"} {
		sc, err := ParseScale(s)
		if err != nil || sc.String() != s {
			t.Fatalf("ParseScale(%q) = %v, %v", s, sc, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"theory-table", "table2", "table3", "table4",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "conv-cifar", "work-model",
		"fig10", "fig11", "fig12", "pred-collapse", "mem", "parallel-alsh",
		"gemm-parallel", "trace-overhead",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
	if _, err := ByID("table9"); err == nil {
		t.Fatal("unknown id must error")
	}
	// Sorted output.
	exps := Experiments()
	for i := 1; i < len(exps); i++ {
		if exps[i].ID < exps[i-1].ID {
			t.Fatal("Experiments() not sorted")
		}
	}
}

func TestTheoryTableRunsAnywhere(t *testing.T) {
	e, _ := ByID("theory-table")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("theory table rows = %d", len(res.Rows))
	}
	// Closed form and exact-c simulation columns must agree.
	for _, row := range res.Rows {
		a, _ := strconv.ParseFloat(row[1], 64)
		b, _ := strconv.ParseFloat(row[2], 64)
		if a != b {
			t.Fatalf("closed form %v != simulation %v", a, b)
		}
	}
	if !strings.Contains(res.Render(), "0.2000") {
		t.Fatal("render missing first ratio")
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestTable2Tiny(t *testing.T) {
	e, _ := ByID("table2")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // tiny uses mnist + cifar10
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row) != 7 {
			t.Fatalf("row width = %d", len(row))
		}
		for _, cell := range row[1:] {
			v := parsePct(t, cell)
			if v < 0 || v > 100 {
				t.Fatalf("accuracy %v out of range", v)
			}
		}
	}
}

func TestFig7TinyShowsShapes(t *testing.T) {
	e, _ := ByID("fig7")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // tiny depths 1,3,5
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// MC column present and within range at every depth.
	for _, row := range res.Rows {
		if v := parsePct(t, row[3]); v < 0 || v > 100 {
			t.Fatalf("MC accuracy %v", v)
		}
	}
}

func TestFig10And11Tiny(t *testing.T) {
	e10, _ := ByID("fig10")
	res, err := e10.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("fig10 rows = %d", len(res.Rows))
	}
	e11, _ := ByID("fig11")
	res11, err := e11.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// The MC/Standard time ratio must shrink as the batch grows — the
	// fig11 crossover shape.
	first, errA := strconv.ParseFloat(res11.Rows[0][3], 64)
	last, errB := strconv.ParseFloat(res11.Rows[len(res11.Rows)-1][3], 64)
	if errA != nil || errB != nil {
		t.Fatalf("bad ratios in %v", res11.Rows)
	}
	if last >= first {
		t.Fatalf("MC/Standard ratio should shrink with batch: %v → %v", first, last)
	}
}

func TestMemTiny(t *testing.T) {
	e, _ := ByID("mem")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// ALSH row must report nonzero index memory; others zero.
	var alshIdx, stdIdx string
	for _, row := range res.Rows {
		if row[0] == "ALSH" {
			alshIdx = row[3]
		}
		if row[0] == "Standard-M" {
			stdIdx = row[3]
		}
	}
	if alshIdx == "0" || alshIdx == "" {
		t.Fatalf("ALSH index bytes = %q", alshIdx)
	}
	if stdIdx != "0" {
		t.Fatalf("Standard index bytes = %q, want 0", stdIdx)
	}
}

func TestPredCollapseTiny(t *testing.T) {
	e, _ := ByID("pred-collapse")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row) != 5 {
			t.Fatalf("row width %d", len(row))
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	r := &Result{
		ID: "x", Title: "T", PaperRef: "ref",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "va,l"}, {"2", `q"t`}},
		Notes:   []string{"n1"},
	}
	out := r.Render()
	for _, want := range []string{"== T [x] ==", "ref", "a", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, `"va,l"`) || !strings.Contains(csv, `"q""t"`) {
		t.Fatalf("CSV quoting broken:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("CSV header broken:\n%s", csv)
	}
}

func TestObsBenchMeasuresAllPaths(t *testing.T) {
	o, err := RunObsBench(2000)
	if err != nil {
		t.Fatal(err)
	}
	if o.Iters != 2000 {
		t.Fatalf("iters = %d", o.Iters)
	}
	if o.FrameBaselineNS <= 0 || o.FrameCtxNS <= 0 || o.RequestCtxNS <= 0 || o.DisabledEmitNS < 0 {
		t.Fatalf("non-positive measurements: %+v", o)
	}
	// The disabled path is a couple of nil checks; if it costs more
	// than a frame round trip something is deeply wrong.
	if o.DisabledEmitNS > o.FrameCtxNS {
		t.Fatalf("disabled emit (%.1f ns) slower than a full frame round trip (%.1f ns)", o.DisabledEmitNS, o.FrameCtxNS)
	}
}
