package bench

import (
	"fmt"

	"samplednn/internal/core"
	"samplednn/internal/work"
)

func init() {
	register(Experiment{
		ID:    "work-model",
		Title: "§4/§11: analytic MAC-count model vs measured step time per method",
		Run:   runWorkModel,
	})
}

// runWorkModel compares the analytic per-step cost model (the Θ-claims
// of §4, and a deterministic energy proxy per §11's future-work
// direction) against measured per-epoch wall-clock for each method at
// the experiment scale's architecture.
func runWorkModel(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "work-model",
		Title:    "Predicted MACs per step vs measured epoch time, MNIST, 3 hidden layers",
		PaperRef: "paper §4: exact training is Θ(n²)/layer; sampling replaces one factor n by the sample size",
		Columns:  []string{"method", "batch", "MACs/step", "predicted speedup", "epoch time", "measured speedup"},
	}

	arch := work.MLPArch(784, cfg.units, 3, 10)
	type row struct {
		label, name string
		batch       int
		cost        work.Cost
	}
	rows := []row{
		{"Standard-M", "standard", cfg.batch, work.Standard(arch, cfg.batch)},
		{"Dropout-S", "dropout", 1, work.ColumnSampled(arch, 1, 0.05, 0, 0, 0)},
		{"ALSH", "alsh", 1, work.ColumnSampled(arch, 1, 0.1, cfg.alshK, cfg.alshL, 3)},
		{"MC-M", "mc", cfg.batch, work.RowSampled(arch, cfg.batch, cfg.mcK)},
	}
	// Baselines for speedup: the exact method at the same batch size.
	exactAt := map[int]work.Cost{
		1:         work.Standard(arch, 1),
		cfg.batch: work.Standard(arch, cfg.batch),
	}

	var baseTime = map[int]float64{}
	for bi, batch := range []int{1, cfg.batch} {
		out, err := run(runSpec{dataset: "mnist", method: "standard", depth: 3, batch: batch, seed: uint64(8800 + bi)}, s)
		if err != nil {
			return nil, err
		}
		baseTime[batch] = out.hist.TotalTiming().Total().Seconds() / float64(len(out.hist.Epochs))
	}

	for ri, r := range rows {
		out, err := run(runSpec{dataset: "mnist", method: r.name, depth: 3, batch: r.batch, seed: uint64(8900 + ri)}, s)
		if err != nil {
			return nil, fmt.Errorf("work-model %s: %w", r.label, err)
		}
		// Normalize MACs per sample so batch sizes compare.
		perSample := float64(r.cost.Total()) / float64(r.batch)
		exactPerSample := float64(exactAt[r.batch].Total()) / float64(r.batch)
		epoch := out.hist.TotalTiming().Total().Seconds() / float64(len(out.hist.Epochs))
		measured := baseTime[r.batch] / epoch
		if a, ok := out.method.(*core.ALSHApprox); ok {
			// Re-evaluate the ALSH row's prediction at the realized
			// active fraction.
			frac := a.ActiveFraction()
			if frac > 0 {
				c := work.ColumnSampled(arch, 1, frac, cfg.alshK, cfg.alshL, 3)
				perSample = float64(c.Total())
			}
		}
		res.Rows = append(res.Rows, []string{
			r.label, fmt.Sprint(r.batch),
			fmt.Sprintf("%.0f", perSample),
			fmt.Sprintf("%.2f", exactPerSample/perSample),
			fmt.Sprintf("%.3fs", epoch),
			fmt.Sprintf("%.2f", measured),
		})
	}
	res.Notes = append(res.Notes,
		"predicted and measured speedups should agree in ordering; constants differ (memory traffic, §9.4)")
	return res, nil
}
