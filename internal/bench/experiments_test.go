package bench

import (
	"strconv"
	"strings"
	"testing"
)

// Tiny-scale smoke runs of the experiments added beyond the paper's core
// tables/figures.

func TestConvCIFARTiny(t *testing.T) {
	e, _ := ByID("conv-cifar")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row) != 4 {
			t.Fatalf("row width %d", len(row))
		}
		for _, cell := range row[2:] {
			v := parsePct(t, cell)
			if v < 0 || v > 100 {
				t.Fatalf("accuracy %v out of range", v)
			}
		}
	}
}

func TestWorkModelTiny(t *testing.T) {
	e, _ := ByID("work-model")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The Dropout row must predict a larger speedup than the MC row
	// (5% columns vs k-of-batch sampling).
	var dropPred, mcPred float64
	for _, row := range res.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad predicted speedup %q", row[3])
		}
		switch row[0] {
		case "Dropout-S":
			dropPred = v
		case "MC-M":
			mcPred = v
		}
	}
	if dropPred <= mcPred {
		t.Fatalf("predicted speedups: dropout %v should exceed mc %v", dropPred, mcPred)
	}
}

func TestParallelALSHTiny(t *testing.T) {
	e, _ := ByID("parallel-alsh")
	res, err := e.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // tiny sweeps workers 1, 2
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Accuracy must be reported for every worker count.
	for _, row := range res.Rows {
		v := parsePct(t, row[2])
		if v < 0 || v > 100 {
			t.Fatalf("accuracy %v", v)
		}
	}
}

func TestTable3And4Tiny(t *testing.T) {
	for _, id := range []string{"table3", "table4"} {
		e, _ := ByID(id)
		res, err := e.Run(Tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) < 4 {
			t.Fatalf("%s rows = %d", id, len(res.Rows))
		}
		for _, row := range res.Rows {
			// Every timing cell parses as seconds.
			for _, cell := range row[1:] {
				s := cell
				if s[len(s)-1] != 's' {
					t.Fatalf("%s: cell %q not a duration", id, cell)
				}
				if _, err := strconv.ParseFloat(s[:len(s)-1], 64); err != nil {
					t.Fatalf("%s: cell %q", id, cell)
				}
			}
		}
	}
}

func TestFig8And9Tiny(t *testing.T) {
	e8, _ := ByID("fig8")
	res8, err := e8.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res8.Rows) != 3 {
		t.Fatalf("fig8 rows = %d", len(res8.Rows))
	}
	e9, _ := ByID("fig9")
	res9, err := e9.Run(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res9.Rows) != 7 {
		t.Fatalf("fig9 rows = %d", len(res9.Rows))
	}
}

func TestFig5And6And12Tiny(t *testing.T) {
	for _, id := range []string{"fig5", "fig6", "fig12"} {
		e, _ := ByID(id)
		res, err := e.Run(Tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s has no rows", id)
		}
	}
}

func TestTraceOverheadTiny(t *testing.T) {
	rep, err := RunTraceBench(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(rep.Points))
	}
	byName := map[string]TracePoint{}
	for _, p := range rep.Points {
		byName[p.Config] = p
		if p.SecondsPerEpoch <= 0 {
			t.Errorf("%s: non-positive epoch time %v", p.Config, p.SecondsPerEpoch)
		}
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("%s: accuracy %v outside [0,1]", p.Config, p.Accuracy)
		}
	}
	if byName["tracer"].Spans == 0 || byName["tracer+probe"].Spans == 0 {
		t.Error("tracer-enabled configs recorded no spans")
	}
	if byName["baseline"].Spans != 0 || byName["probe"].Spans != 0 {
		t.Error("spans recorded with the tracer disabled")
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"noise_floor_pct"`, `"overhead_pct"`, `"seconds_per_epoch"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report JSON missing %s", want)
		}
	}
}
