package bench

import (
	"fmt"
	"math"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

// runSpec fully describes one training run of an experiment.
type runSpec struct {
	dataset string
	method  string // "standard", "dropout", "adaptive-dropout", "alsh", "mc"
	depth   int    // hidden layers
	batch   int    // 1 = stochastic
	lr      float64
	epochs  int
	seed    uint64
	mcWhere core.MCWhere
	mcK     int
	track   bool // memory tracking
}

// runOutcome couples the history with the objects the experiments probe.
type runOutcome struct {
	hist   *train.History
	method core.Method
	data   *dataset.Dataset
}

// loadDataset generates the scaled benchmark, caching per (name, scale)
// so sweeps over methods and depths reuse the same data.
var dsCache = map[string]*dataset.Dataset{}

func loadDataset(name string, s Scale, cfg settings) (*dataset.Dataset, error) {
	key := fmt.Sprintf("%s@%s", name, s)
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	trainCap, testCap := cfg.trainCap, cfg.testCap
	if name == "norb" || name == "cifar10" {
		trainCap, testCap = cfg.bigTrainCap, cfg.bigTestCap
	}
	valCap := testCap
	if valCap > 200 {
		valCap = 200
	}
	d, err := dataset.Generate(name, dataset.Options{
		Seed: 1234, MaxTrain: trainCap, MaxTest: testCap, MaxVal: valCap,
	})
	if err != nil {
		return nil, err
	}
	dsCache[key] = d
	return d, nil
}

// run executes one training run.
func run(spec runSpec, s Scale) (*runOutcome, error) {
	cfg := settingsFor(s)
	ds, err := loadDataset(spec.dataset, s, cfg)
	if err != nil {
		return nil, err
	}
	if spec.epochs == 0 {
		spec.epochs = cfg.epochs
		// The scaled-down high-dimensional sets have far fewer samples
		// per epoch; triple the epochs so every dataset sees a comparable
		// optimization-step count (no effect at Paper scale, which uses
		// the full splits).
		if s != Paper && (spec.dataset == "norb" || spec.dataset == "cifar10") {
			spec.epochs *= 3
		}
	}
	if spec.batch == 0 {
		spec.batch = 1
	}
	if spec.lr == 0 { //lint:ignore float-equality zero value marks an unset spec field; exact sentinel, never a computed result
		// The paper tunes the rate per setting (§8.4: 1e-3 or 1e-4); the
		// scaled settings do likewise, with a gentler rate for the
		// noisier stochastic updates.
		if spec.batch == 1 {
			spec.lr = cfg.lrStoch
		} else {
			spec.lr = cfg.lr
		}
		// First-layer gradient magnitudes grow with the input width, so
		// the high-dimensional sets (NORB 9216, CIFAR 3072) need a
		// proportionally gentler rate to stay in the same regime as the
		// 784-dimensional sets the defaults are tuned on.
		if dim := ds.Spec.Dim(); dim > 784 {
			spec.lr *= math.Sqrt(784 / float64(dim))
		}
	}
	if spec.depth == 0 {
		spec.depth = 3 // the paper's default architecture
	}
	if spec.mcK == 0 {
		spec.mcK = cfg.mcK
	}

	net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), cfg.units, spec.depth, ds.Spec.Classes), rng.New(spec.seed))
	if err != nil {
		return nil, err
	}

	// ALSH-approx uses Adam (§8.4); everything else plain SGD.
	var optim opt.Optimizer
	if spec.method == "alsh" {
		optim = opt.NewAdam(cfg.adamLR)
	} else {
		optim = opt.NewSGD(spec.lr)
	}

	opts := core.DefaultOptions(spec.seed)
	opts.MC = core.MCConfig{K: spec.mcK, Where: spec.mcWhere}
	opts.ALSH = core.ALSHConfig{
		Params:    lsh.Params{K: cfg.alshK, L: cfg.alshL, M: 3, U: 0.83},
		MinActive: cfg.minActive,
	}
	m, err := core.New(spec.method, net, optim, opts)
	if err != nil {
		return nil, err
	}

	tr, err := train.New(m, ds, train.Config{
		Epochs:          spec.epochs,
		BatchSize:       spec.batch,
		Seed:            spec.seed + 17,
		MaxEvalSamples:  cfg.evalCap,
		RebuildPerEpoch: spec.method == "alsh",
		TrackMemory:     spec.track,
	})
	if err != nil {
		return nil, err
	}
	hist, err := tr.Run()
	if err != nil {
		return nil, err
	}
	return &runOutcome{hist: hist, method: m, data: ds}, nil
}
