package bench

import (
	"fmt"
	"time"

	"samplednn/internal/core"
	"samplednn/internal/train"
)

func init() {
	register(Experiment{ID: "fig3", Title: "Figure 3: confusion matrices across methods × depths", Run: runFig3})
	register(Experiment{ID: "fig4", Title: "Figure 4: ALSH-approx accuracy collapse with depth", Run: func(s Scale) (*Result, error) {
		r, err := runPredCollapse(s)
		if r != nil {
			r.ID = "fig4"
		}
		return r, err
	}})
	register(Experiment{ID: "fig5", Title: "Figure 5: MC-M vs Standard-M accuracy across depths", Run: runFig5})
	register(Experiment{ID: "fig6", Title: "Figure 6: MC-S accuracy with the lowered learning rate", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "Figure 7: accuracy vs number of hidden layers (1..7)", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Figure 8: training time vs number of hidden layers", Run: runFig8})
	register(Experiment{ID: "fig9", Title: "Figure 9: time-vs-accuracy frontier", Run: runFig9})
	register(Experiment{ID: "fig10", Title: "Figure 10: MC-approx accuracy vs batch size (fixed LR)", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Figure 11: MC-approx epoch time vs batch size", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Figure 12: MC-S accuracy vs depth (stochastic scalability)", Run: runFig12})
	register(Experiment{ID: "pred-collapse", Title: "§10.3: ALSH prediction-distribution collapse with depth", Run: runPredCollapse})
	register(Experiment{ID: "mem", Title: "§9.4: memory footprint by method", Run: runMem})
}

func depthsFor(s Scale) []int {
	if s == Tiny {
		return []int{1, 3, 5}
	}
	return []int{1, 2, 3, 4, 5, 6, 7}
}

func runFig3(s Scale) (*Result, error) {
	res := &Result{
		ID:       "fig3",
		Title:    "Confusion-matrix summary: accuracy / prediction coverage per method × depth",
		PaperRef: "paper: Standard/Adaptive/MC stay diagonal at all depths; ALSH loses the diagonal beyond ~3 layers",
		Columns:  []string{"method", "depth", "accuracy%", "pred-coverage", "pred-entropy"},
	}
	depths := depthsFor(s)
	methods := []struct {
		label, name string
		batch       int
	}{
		{"Standard-S", "standard", 1},
		{"Dropout-S", "dropout", 1},
		{"AdaptiveDropout-S", "adaptive-dropout", 1},
		{"ALSH", "alsh", 1},
		{"MC-M", "mc", 0},
	}
	cfg := settingsFor(s)
	var collapsed, diagonal string
	for mi, m := range methods {
		for _, depth := range depths {
			batch := m.batch
			if batch == 0 {
				batch = cfg.batch
			}
			out, err := run(runSpec{
				dataset: "mnist", method: m.name, depth: depth, batch: batch,
				seed: uint64(4000 + 100*mi + depth),
			}, s)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s depth %d: %w", m.label, depth, err)
			}
			cm := train.Confusion(out.method, out.data.Test, out.data.Spec.Classes, cfg.evalCap)
			res.Rows = append(res.Rows, []string{
				m.label, fmt.Sprint(depth),
				fmtPct(cm.Accuracy()),
				fmt.Sprintf("%.2f", cm.PredictionCoverage()),
				fmt.Sprintf("%.2f", cm.PredictionEntropy()),
			})
			if m.name == "alsh" && depth == depths[len(depths)-1] {
				collapsed = cm.Render()
			}
			if m.name == "standard" && depth == depths[0] {
				diagonal = cm.Render()
			}
		}
	}
	if diagonal != "" {
		res.Notes = append(res.Notes, "Standard, depth "+fmt.Sprint(depths[0])+":\n"+diagonal)
	}
	if collapsed != "" {
		res.Notes = append(res.Notes, "ALSH, depth "+fmt.Sprint(depths[len(depths)-1])+":\n"+collapsed)
	}
	return res, nil
}

// accuracyVsDepth sweeps depth for a fixed method configuration.
func accuracyVsDepth(s Scale, name string, batch int, lr float64, seedBase uint64) (map[int]float64, error) {
	out := map[int]float64{}
	for _, depth := range depthsFor(s) {
		r, err := run(runSpec{
			dataset: "mnist", method: name, depth: depth, batch: batch, lr: lr,
			seed: seedBase + uint64(depth),
		}, s)
		if err != nil {
			return nil, err
		}
		out[depth] = r.hist.Final().TestAccuracy
	}
	return out, nil
}

func runFig7(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "fig7",
		Title:    "Accuracy vs hidden layers, MNIST",
		PaperRef: "paper: MC-M ≥92.7% at every depth; ALSH drops from 70.07% (5 layers) to 25.14% (7 layers)",
		Columns:  []string{"depth", "Standard-S", "ALSH", "MC-M"},
	}
	std, err := accuracyVsDepth(s, "standard", 1, 0, 5000)
	if err != nil {
		return nil, err
	}
	alsh, err := accuracyVsDepth(s, "alsh", 1, 0, 5100)
	if err != nil {
		return nil, err
	}
	mc, err := accuracyVsDepth(s, "mc", cfg.batch, 0, 5200)
	if err != nil {
		return nil, err
	}
	for _, d := range depthsFor(s) {
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(d), fmtPct(std[d]), fmtPct(alsh[d]), fmtPct(mc[d]),
		})
	}
	depths := depthsFor(s)
	first, last := depths[0], depths[len(depths)-1]
	res.Notes = append(res.Notes, fmt.Sprintf(
		"shape check: ALSH %s%% → %s%% from depth %d to %d (paper shows a collapse); MC stays flat",
		fmtPct(alsh[first]), fmtPct(alsh[last]), first, last))
	return res, nil
}

func runFig5(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "fig5",
		Title:    "MC-M vs Standard-M accuracy across depths, MNIST",
		PaperRef: "paper: MC-M matches or beats Standard-M by 2-4 points at most depths",
		Columns:  []string{"depth", "Standard-M", "MC-M"},
	}
	std, err := accuracyVsDepth(s, "standard", cfg.batch, 0, 5300)
	if err != nil {
		return nil, err
	}
	mc, err := accuracyVsDepth(s, "mc", cfg.batch, 0, 5400)
	if err != nil {
		return nil, err
	}
	for _, d := range depthsFor(s) {
		res.Rows = append(res.Rows, []string{fmt.Sprint(d), fmtPct(std[d]), fmtPct(mc[d])})
	}
	return res, nil
}

func runFig6(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "fig6",
		Title:    "MC-S accuracy: default vs lowered learning rate, MNIST, 3 hidden layers",
		PaperRef: "paper: lowering the LR (1e-3 → 1e-4) repairs MC-S overfitting; accuracy recovers to 98.38%",
		Columns:  []string{"learning rate", "final accuracy%", "best accuracy%"},
	}
	for _, lr := range []float64{cfg.lr, cfg.lrLow} {
		out, err := run(runSpec{
			dataset: "mnist", method: "mc", depth: 3, batch: 1, lr: lr, seed: 5500,
		}, s)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%g", lr),
			fmtPct(out.hist.Final().TestAccuracy),
			fmtPct(out.hist.BestAccuracy()),
		})
	}
	return res, nil
}

func runFig8(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "fig8",
		Title:    "Per-epoch training time vs hidden layers, MNIST",
		PaperRef: "paper: ALSH grows fastest with depth (single core); MC-M fastest up to ~3 layers",
		Columns:  []string{"depth", "Standard-S", "Standard-M", "ALSH", "MC-M"},
	}
	type cell struct {
		label string
		name  string
		batch int
	}
	cells := []cell{
		{"Standard-S", "standard", 1},
		{"Standard-M", "standard", cfg.batch},
		{"ALSH", "alsh", 1},
		{"MC-M", "mc", cfg.batch},
	}
	depths := depthsFor(s)
	times := make(map[string]map[int]time.Duration)
	for ci, c := range cells {
		times[c.label] = map[int]time.Duration{}
		for _, d := range depths {
			out, err := run(runSpec{
				dataset: "mnist", method: c.name, depth: d, batch: c.batch,
				seed: uint64(6000 + 100*ci + d),
			}, s)
			if err != nil {
				return nil, err
			}
			t := out.hist.TotalTiming()
			times[c.label][d] = time.Duration(float64(t.Total()) / float64(len(out.hist.Epochs)))
		}
	}
	for _, d := range depths {
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(d),
			fmtDur(times["Standard-S"][d]),
			fmtDur(times["Standard-M"][d]),
			fmtDur(times["ALSH"][d]),
			fmtDur(times["MC-M"][d]),
		})
	}
	return res, nil
}

func runFig9(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "fig9",
		Title:    "Training-time vs accuracy frontier, MNIST, 3 hidden layers",
		PaperRef: "paper: MC-approx dominates on both speed and accuracy",
		Columns:  []string{"method", "total time", "accuracy%"},
	}
	points := []struct {
		label string
		name  string
		batch int
		low   bool
	}{
		{"Standard-S", "standard", 1, false},
		{"Standard-M", "standard", cfg.batch, false},
		{"Dropout-S", "dropout", 1, false},
		{"AdaptiveDropout-S", "adaptive-dropout", 1, false},
		{"ALSH", "alsh", 1, false},
		{"MC-S", "mc", 1, true},
		{"MC-M", "mc", cfg.batch, false},
	}
	for pi, p := range points {
		spec := runSpec{dataset: "mnist", method: p.name, depth: 3, batch: p.batch, seed: uint64(7000 + pi)}
		if p.low {
			spec.lr = cfg.lrLow
		}
		out, err := run(spec, s)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			p.label,
			fmtDur(out.hist.TotalTiming().Total()),
			fmtPct(out.hist.Final().TestAccuracy),
		})
	}
	return res, nil
}

// batchesFor sweeps up to the paper's mini-batch size of 20; larger
// batches at fixed epochs would confound the figure with step-count
// underfitting at the scaled-down sample counts.
func batchesFor(s Scale) []int {
	if s == Tiny {
		return []int{1, 5, 20}
	}
	return []int{1, 2, 5, 10, 20}
}

func runFig10(s Scale) (*Result, error) {
	res := &Result{
		ID:       "fig10",
		Title:    "MC-approx accuracy vs batch size at a fixed learning rate, MNIST",
		PaperRef: "paper: accuracy drops from 98% to 64% as the batch shrinks at the same LR",
		Columns:  []string{"batch", "accuracy%"},
	}
	cfg := settingsFor(s)
	for _, b := range batchesFor(s) {
		out, err := run(runSpec{
			// The figure's premise is one fixed learning rate across
			// batch sizes; bypass the per-setting LR defaults.
			dataset: "mnist", method: "mc", depth: 3, batch: b, lr: cfg.lr,
			seed: uint64(7100 + b),
		}, s)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{fmt.Sprint(b), fmtPct(out.hist.Final().TestAccuracy)})
	}
	return res, nil
}

func runFig11(s Scale) (*Result, error) {
	res := &Result{
		ID:       "fig11",
		Title:    "Per-epoch time vs batch size: MC-approx against Standard, MNIST",
		PaperRef: "paper: MC-approx time blows up as the batch shrinks (per-step sampling overhead); crossover vs Standard near small batches",
		Columns:  []string{"batch", "MC epoch", "Standard epoch", "MC/Standard"},
	}
	for _, b := range batchesFor(s) {
		mcOut, err := run(runSpec{dataset: "mnist", method: "mc", depth: 3, batch: b, seed: uint64(7200 + b)}, s)
		if err != nil {
			return nil, err
		}
		stdOut, err := run(runSpec{dataset: "mnist", method: "standard", depth: 3, batch: b, seed: uint64(7300 + b)}, s)
		if err != nil {
			return nil, err
		}
		mcT := float64(mcOut.hist.TotalTiming().Total()) / float64(len(mcOut.hist.Epochs))
		stdT := float64(stdOut.hist.TotalTiming().Total()) / float64(len(stdOut.hist.Epochs))
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(b),
			fmtDur(time.Duration(mcT)),
			fmtDur(time.Duration(stdT)),
			fmt.Sprintf("%.2f", mcT/stdT),
		})
	}
	return res, nil
}

func runFig12(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "fig12",
		Title:    "MC-S accuracy vs depth (lowered LR), MNIST",
		PaperRef: "paper: MC-S degrades for deep networks — singleton batches make the Eq. 7 estimates unreliable",
		Columns:  []string{"depth", "MC-S accuracy%", "Standard-S accuracy%"},
	}
	mc, err := accuracyVsDepth(s, "mc", 1, cfg.lrLow, 7400)
	if err != nil {
		return nil, err
	}
	std, err := accuracyVsDepth(s, "standard", 1, 0, 7500)
	if err != nil {
		return nil, err
	}
	for _, d := range depthsFor(s) {
		res.Rows = append(res.Rows, []string{fmt.Sprint(d), fmtPct(mc[d]), fmtPct(std[d])})
	}
	return res, nil
}

func runPredCollapse(s Scale) (*Result, error) {
	res := &Result{
		ID:       "pred-collapse",
		Title:    "ALSH-approx prediction-distribution collapse with depth, MNIST",
		PaperRef: "paper §10.3: as depth grows the same few nodes stay active, so predictions concentrate on a few classes",
		Columns:  []string{"depth", "accuracy%", "pred-coverage", "pred-entropy", "active-frac"},
	}
	cfg := settingsFor(s)
	for _, d := range depthsFor(s) {
		out, err := run(runSpec{
			dataset: "mnist", method: "alsh", depth: d, batch: 1, seed: uint64(7600 + d),
		}, s)
		if err != nil {
			return nil, err
		}
		cm := train.Confusion(out.method, out.data.Test, out.data.Spec.Classes, cfg.evalCap)
		alsh := out.method.(*core.ALSHApprox)
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(d),
			fmtPct(cm.Accuracy()),
			fmt.Sprintf("%.2f", cm.PredictionCoverage()),
			fmt.Sprintf("%.2f", cm.PredictionEntropy()),
			fmt.Sprintf("%.3f", alsh.ActiveFraction()),
		})
	}
	return res, nil
}

func runMem(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "mem",
		Title:    "Memory footprint by method, MNIST, 3 hidden layers",
		PaperRef: "paper §9.4: ALSH needs 24 MB of table setup and grows; MC +45 MB; Dropout/Adaptive ~16 MB",
		Columns:  []string{"method", "batch", "model bytes", "index bytes", "alloc/epoch", "live heap"},
	}
	points := []struct {
		label string
		name  string
		batch int
	}{
		{"Standard-M", "standard", cfg.batch},
		{"Dropout-S", "dropout", 1},
		{"AdaptiveDropout-S", "adaptive-dropout", 1},
		{"ALSH", "alsh", 1},
		{"MC-M", "mc", cfg.batch},
	}
	for pi, p := range points {
		out, err := run(runSpec{
			dataset: "mnist", method: p.name, depth: 3, batch: p.batch,
			seed: uint64(7700 + pi), track: true,
		}, s)
		if err != nil {
			return nil, err
		}
		indexBytes := 0
		if a, ok := out.method.(*core.ALSHApprox); ok {
			indexBytes = a.IndexMemory()
		}
		final := out.hist.Final()
		res.Rows = append(res.Rows, []string{
			p.label, fmt.Sprint(p.batch),
			fmt.Sprint(out.method.Net().NumParams() * 8),
			fmt.Sprint(indexBytes),
			fmt.Sprint(final.AllocBytes),
			fmt.Sprint(final.HeapBytes),
		})
	}
	return res, nil
}
