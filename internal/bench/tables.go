package bench

import (
	"fmt"
	"time"

	"samplednn/internal/theory"
)

func fmtPct(v float64) string { return fmt.Sprintf("%.2f", 100*v) }

func fmtDur(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

func init() {
	register(Experiment{
		ID:    "theory-table",
		Title: "§7 in-text table: error-to-estimate ratio vs depth (c=5)",
		Run:   runTheoryTable,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: test accuracy (%), 3 hidden layers, all datasets × methods",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: training time per epoch, stochastic setting (batch 1)",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Table 4: training time per epoch, mini-batch setting (batch 20)",
		Run:   runTable4,
	})
}

func runTheoryTable(Scale) (*Result, error) {
	res := &Result{
		ID:       "theory-table",
		Title:    "Error-to-estimate ratio ε/â = ((c+1)/c)^k − 1 at c = 5",
		PaperRef: "paper: 0.2, 0.44, 0.72, 1.07, 1.48, 1.98 for k = 1..6",
		Columns:  []string{"k", "ratio (closed form)", "ratio (exact-c simulation)", "paper"},
	}
	paper := []string{"0.2", "0.44", "0.72", "1.07", "1.48", "1.98"}
	sim := theory.SimulateUniform(60, 50, 6) // m/(n−m) = 5
	for k := 1; k <= 6; k++ {
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.4f", theory.ErrorRatio(5, k)),
			fmt.Sprintf("%.4f", sim.Ratios[k-1]),
			paper[k-1],
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("error exceeds estimate beyond depth %d (paper: beyond 3)", theory.DepthLimit(5, 1)))
	return res, nil
}

// table2Methods lists the six method columns of Table 2:
// (name, batch, useLowLR).
var table2Methods = []struct {
	label string
	name  string
	batch int
	low   bool
}{
	{"ALSH", "alsh", 1, false},
	{"MC-M", "mc", 0, false}, // batch 0 → scale default (20)
	{"MC-S", "mc", 1, true},  // §9.3: stochastic MC uses the lowered LR
	{"Dropout-S", "dropout", 1, false},
	{"AdaptiveDropout-S", "adaptive-dropout", 1, false},
	{"Standard-S", "standard", 1, false},
}

func runTable2(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "table2",
		Title:    "Test accuracy (%) for a network with 3 hidden layers",
		PaperRef: "paper (MNIST row): ALSH 94.15, MC-M 98.10, MC-S 98.38, Dropout-S 90.21, Adaptive 98.06, Standard-S 96.46",
		Columns:  append([]string{"dataset"}, methodLabels(table2Methods)...),
	}
	datasets := []string{"mnist", "kmnist", "fashion", "emnist", "norb", "cifar10"}
	if s == Tiny {
		datasets = []string{"mnist", "cifar10"}
	}
	for di, dsName := range datasets {
		row := []string{dsName}
		for mi, m := range table2Methods {
			spec := runSpec{
				dataset: dsName, method: m.name, depth: 3,
				batch: m.batch, seed: uint64(1000 + 10*di + mi),
			}
			if m.batch == 0 {
				spec.batch = cfg.batch
			}
			if m.low {
				spec.lr = cfg.lrLow
			}
			out, err := run(spec, s)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", dsName, m.label, err)
			}
			row = append(row, fmtPct(out.hist.Final().TestAccuracy))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"shape check: MC variants should lead, Dropout-S (keep 5%) should trail, ALSH between")
	return res, nil
}

func methodLabels(ms []struct {
	label string
	name  string
	batch int
	low   bool
}) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.label
	}
	return out
}

func runTable3(s Scale) (*Result, error) {
	res := &Result{
		ID:       "table3",
		Title:    "Per-epoch training time, stochastic setting (batch 1), 3 hidden layers, MNIST",
		PaperRef: "paper: ALSH slowest without parallelism; MC-S slower than Standard-S (per-sample overhead); backprop ≫ feedforward",
		Columns:  []string{"method", "epoch", "feedforward", "backprop", "maintain"},
	}
	methods := []struct {
		label string
		name  string
		low   bool
	}{
		{"Standard-S", "standard", false},
		{"Dropout-S", "dropout", false},
		{"AdaptiveDropout-S", "adaptive-dropout", false},
		{"ALSH", "alsh", false},
		{"MC-S", "mc", true},
	}
	cfg := settingsFor(s)
	for mi, m := range methods {
		spec := runSpec{dataset: "mnist", method: m.name, depth: 3, batch: 1, seed: uint64(2000 + mi)}
		if m.low {
			spec.lr = cfg.lrLow
		}
		out, err := run(spec, s)
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", m.label, err)
		}
		t := out.hist.TotalTiming()
		n := float64(len(out.hist.Epochs))
		perEpoch := time.Duration(float64(t.Total()) / n)
		res.Rows = append(res.Rows, []string{
			m.label,
			fmtDur(perEpoch),
			fmtDur(time.Duration(float64(t.Forward) / n)),
			fmtDur(time.Duration(float64(t.Backward) / n)),
			fmtDur(time.Duration(float64(t.Maintain) / n)),
		})
	}
	return res, nil
}

func runTable4(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	res := &Result{
		ID:       "table4",
		Title:    fmt.Sprintf("Per-epoch training time, mini-batch setting (batch %d), 3 hidden layers, MNIST", cfg.batch),
		PaperRef: "paper: MC-M significantly fastest; Adaptive-Dropout slower than Standard (mask overhead)",
		Columns:  []string{"method", "epoch", "feedforward", "backprop"},
	}
	methods := []struct {
		label string
		name  string
	}{
		{"Standard-M", "standard"},
		{"Dropout-M", "dropout"},
		{"AdaptiveDropout-M", "adaptive-dropout"},
		{"MC-M", "mc"},
	}
	for mi, m := range methods {
		spec := runSpec{dataset: "mnist", method: m.name, depth: 3, batch: cfg.batch, seed: uint64(3000 + mi)}
		out, err := run(spec, s)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", m.label, err)
		}
		t := out.hist.TotalTiming()
		n := float64(len(out.hist.Epochs))
		res.Rows = append(res.Rows, []string{
			m.label,
			fmtDur(time.Duration(float64(t.Total()) / n)),
			fmtDur(time.Duration(float64(t.Forward) / n)),
			fmtDur(time.Duration(float64(t.Backward) / n)),
		})
	}
	return res, nil
}
