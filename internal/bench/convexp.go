package bench

import (
	"fmt"

	"samplednn/internal/conv"
	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/lsh"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/train"
)

func init() {
	register(Experiment{
		ID:    "conv-cifar",
		Title: "§8.4 convolutional setting: frozen conv features + sampled classifier on CIFAR-10",
		Run:   runConvCIFAR,
	})
}

// runConvCIFAR reproduces the structure of the paper's convolutional
// experiments: convolutional operations stay exact (a frozen feature
// extractor standing in for the ResNet-18 backbone) and only the fully
// connected classifier is trained with each sampling method. The paper's
// CIFAR-10 row of Table 2 comes from this setting, with pure SGD (§8.4).
func runConvCIFAR(s Scale) (*Result, error) {
	cfg := settingsFor(s)
	ds, err := loadDataset("cifar10", s, cfg)
	if err != nil {
		return nil, err
	}

	fe, err := conv.NewFeatureExtractor(32, 3, []int{8, 16}, rng.New(99))
	if err != nil {
		return nil, err
	}
	// Extract once; every method trains on the same feature table —
	// "keep the convolutional operations exact" (§8.4).
	featTrain := &dataset.Split{X: fe.ExtractBatch(ds.Train.X), Y: ds.Train.Y}
	featTest := &dataset.Split{X: fe.ExtractBatch(ds.Test.X), Y: ds.Test.Y}
	featDS := &dataset.Dataset{
		Spec: dataset.Spec{
			Name: "cifar10-features", Width: fe.OutDim(), Height: 1, Channels: 1,
			Classes: ds.Spec.Classes,
			Train:   featTrain.Len(), Test: featTest.Len(), Val: 0,
		},
		Train: featTrain, Test: featTest, Val: featTest,
	}

	res := &Result{
		ID:       "conv-cifar",
		Title:    "Sampled classifiers over exact convolutional features, CIFAR-10",
		PaperRef: "paper Table 2 CIFAR row (conv setting, pure SGD): Standard 93.02, Adaptive 75.55, MC-M 73.26, Dropout 67.85, MC-S 62.11, ALSH 10.31",
		Columns:  []string{"classifier", "batch", "pixels acc%", "features acc%"},
	}

	methods := []struct {
		label, name string
		batch       int
	}{
		{"Standard", "standard", cfg.batch},
		{"MC-M", "mc", cfg.batch},
		{"Dropout-S", "dropout", 1},
		{"ALSH", "alsh", 1},
	}
	for mi, m := range methods {
		// Raw-pixel baseline uses the shared runner.
		raw, err := run(runSpec{
			dataset: "cifar10", method: m.name, depth: 2, batch: m.batch,
			seed: uint64(8000 + mi),
		}, s)
		if err != nil {
			return nil, fmt.Errorf("conv-cifar %s pixels: %w", m.label, err)
		}

		// Feature-space classifier: 2 hidden layers, matching the
		// paper's "two fully-connected layers as a classifier".
		net, err := nn.NewNetwork(nn.Uniform(fe.OutDim(), cfg.units, 2, ds.Spec.Classes), rng.New(uint64(8100+mi)))
		if err != nil {
			return nil, err
		}
		var optim opt.Optimizer
		lr := cfg.lr
		if m.batch == 1 {
			lr = cfg.lrStoch
		}
		if m.name == "alsh" {
			optim = opt.NewAdam(cfg.adamLR)
		} else {
			optim = opt.NewSGD(lr)
		}
		opts := core.DefaultOptions(uint64(8200 + mi))
		opts.MC.K = cfg.mcK
		opts.ALSH = core.ALSHConfig{
			Params:    lsh.Params{K: cfg.alshK, L: cfg.alshL, M: 3, U: 0.83},
			MinActive: cfg.minActive,
		}
		method, err := core.New(m.name, net, optim, opts)
		if err != nil {
			return nil, err
		}
		tr, err := train.New(method, featDS, train.Config{
			Epochs: cfg.epochs, BatchSize: m.batch, Seed: uint64(8300 + mi),
			MaxEvalSamples: cfg.evalCap, RebuildPerEpoch: m.name == "alsh",
		})
		if err != nil {
			return nil, err
		}
		hist, err := tr.Run()
		if err != nil {
			return nil, fmt.Errorf("conv-cifar %s features: %w", m.label, err)
		}
		res.Rows = append(res.Rows, []string{
			m.label, fmt.Sprint(m.batch),
			fmtPct(raw.hist.Final().TestAccuracy),
			fmtPct(hist.Final().TestAccuracy),
		})
	}
	res.Notes = append(res.Notes,
		"conv features are exact for every method; only the classifier is sampled (§8.4)")
	return res, nil
}
