package lsh

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestTransformShapes(t *testing.T) {
	tr := NewTransform(3, 0.83)
	if tr.ExpandedDim(10) != 13 {
		t.Fatal("ExpandedDim wrong")
	}
	p := tr.P([]float64{1, 2}, nil)
	q := tr.Q([]float64{1, 2}, nil)
	if len(p) != 5 || len(q) != 5 {
		t.Fatal("expansion length wrong")
	}
}

func TestTransformBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewTransform(0, 0.8) },
		func() { NewTransform(3, 0) },
		func() { NewTransform(3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTransformFitCapsNorms(t *testing.T) {
	tr := NewTransform(3, 0.83)
	norms := []float64{1, 5, 2}
	tr.Fit(norms)
	// The largest vector must land exactly at U.
	w := make([]float64, 4)
	w[0] = 5
	p := tr.P(w, nil)
	if math.Abs(tensor.Norm(p[:4])-0.83) > 1e-12 {
		t.Fatalf("max-norm item scaled to %v, want 0.83", tensor.Norm(p[:4]))
	}
	tr.Fit([]float64{0, 0})
	if tr.Scale() != 1 {
		t.Fatal("all-zero fit should keep scale 1")
	}
}

func TestTransformPaddingValues(t *testing.T) {
	tr := NewTransform(3, 0.83)
	tr.Fit([]float64{2}) // scale = 0.415
	w := []float64{2, 0}
	p := tr.P(w, nil)
	n2 := 0.83 * 0.83
	if math.Abs(p[2]-n2) > 1e-12 {
		t.Fatalf("first padding term %v, want ||w||² = %v", p[2], n2)
	}
	if math.Abs(p[3]-n2*n2) > 1e-12 {
		t.Fatal("second padding term should be norm^4")
	}
	if math.Abs(p[4]-n2*n2*n2*n2) > 1e-12 {
		t.Fatal("third padding term should be norm^8")
	}

	q := tr.Q([]float64{3, 4}, nil)
	if math.Abs(tensor.Norm(q[:2])-1) > 1e-12 {
		t.Fatal("query must be normalized")
	}
	for _, v := range q[2:] {
		if v != 0.5 {
			t.Fatal("query padding must be 1/2")
		}
	}
}

func TestTransformQZeroVector(t *testing.T) {
	tr := NewTransform(2, 0.5)
	q := tr.Q([]float64{0, 0}, nil)
	if q[0] != 0 || q[1] != 0 || q[2] != 0.5 {
		t.Fatalf("zero query expansion wrong: %v", q)
	}
}

func TestTransformDstReuse(t *testing.T) {
	tr := NewTransform(2, 0.5)
	buf := make([]float64, 4)
	p := tr.P([]float64{1, 1}, buf)
	if &p[0] != &buf[0] {
		t.Fatal("P should reuse dst")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	tr.P([]float64{1, 1}, make([]float64, 3))
}

// The heart of ALSH (Eq. 3): argmax_w <a,w> == argmin_w ||Q(a) − P(w)||.
func TestMIPSEquivalence(t *testing.T) {
	g := rng.New(7)
	f := func(seed uint64) bool {
		gg := rng.New(seed)
		dim := 2 + gg.IntN(10)
		n := 2 + gg.IntN(30)
		w := tensor.New(dim, n)
		g.GaussianSlice(w.Data, 0, 1)
		a := make([]float64, dim)
		g.GaussianSlice(a, 0, 1)

		tr := NewTransform(6, 0.83) // large m so the tail term vanishes
		tr.Fit(w.ColNorms())

		col := make([]float64, dim)
		bestIP, bestIPj := math.Inf(-1), -1
		bestD, bestDj := math.Inf(1), -1
		for j := 0; j < n; j++ {
			w.Col(j, col)
			if ip := tensor.Dot(a, col); ip > bestIP {
				bestIP, bestIPj = ip, j
			}
			if d := tr.DistanceGap(a, col); d < bestD {
				bestD, bestDj = d, j
			}
		}
		return bestIPj == bestDj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTailTermVanishes(t *testing.T) {
	w := []float64{1, 1, 1}
	var last float64 = math.Inf(1)
	for m := 1; m <= 5; m++ {
		tr := NewTransform(m, 0.83)
		tr.Fit([]float64{tensor.Norm(w)})
		tt := tr.TailTerm(w)
		if tt >= last {
			t.Fatalf("tail term must shrink with m: m=%d gives %v (prev %v)", m, tt, last)
		}
		last = tt
	}
	if last > 1e-3 {
		t.Fatalf("tail term at m=5 still %v", last)
	}
}

// Distance ordering should track inner-product ordering across all
// columns, not just the argmax (rank correlation check on top half).
func TestDistanceOrderingTracksInnerProduct(t *testing.T) {
	g := rng.New(8)
	dim, n := 8, 40
	w := tensor.New(dim, n)
	g.GaussianSlice(w.Data, 0, 1)
	a := make([]float64, dim)
	g.GaussianSlice(a, 0, 1)
	tr := NewTransform(5, 0.83)
	tr.Fit(w.ColNorms())

	type pair struct {
		ip, d float64
	}
	pairs := make([]pair, n)
	col := make([]float64, dim)
	for j := 0; j < n; j++ {
		w.Col(j, col)
		pairs[j] = pair{tensor.Dot(a, col), tr.DistanceGap(a, col)}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].ip > pairs[y].ip })
	// Distances should be (weakly) increasing as inner product decreases.
	violations := 0
	for i := 1; i < n; i++ {
		if pairs[i].d < pairs[i-1].d-1e-9 {
			violations++
		}
	}
	if violations > 0 {
		t.Fatalf("%d ordering violations between IP and expanded distance", violations)
	}
}
