// Package lsh implements the hashing substrate of ALSH-approx (§5.2 of
// the paper): a signed-random-projection (SimHash) hash family, the
// asymmetric P/Q transformations of Shrivastava and Li that reduce
// maximum inner-product search (MIPS) to near-neighbor search (Eq. 2-3),
// multi-table hash indexes over the columns of a weight matrix, and a
// brute-force MIPS reference used for recall measurement.
//
// The index follows the construction of Spring and Shrivastava: L
// independent tables, each with 2^K buckets addressed by a K-bit
// signature; querying unions the buckets the query lands in across all
// tables, giving each item a retrieval probability of 1−(1−p^K)^L where p
// is its per-bit collision probability with the query.
package lsh

import (
	"fmt"
	"math"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// SRPHash is one K-bit signed-random-projection hash function: bit i of a
// signature is the sign of the projection onto hyperplane i.
type SRPHash struct {
	bits   int
	planes *tensor.Matrix // bits x dim, rows are hyperplane normals
}

// NewSRPHash draws a K-bit SRP function over dim-dimensional inputs.
func NewSRPHash(bits, dim int, g *rng.RNG) *SRPHash {
	if bits <= 0 || bits > 30 {
		panic(fmt.Sprintf("lsh: SRP bits %d out of range (1..30)", bits))
	}
	if dim <= 0 {
		panic("lsh: SRP dim must be positive")
	}
	p := tensor.New(bits, dim)
	g.GaussianSlice(p.Data, 0, 1)
	return &SRPHash{bits: bits, planes: p}
}

// Bits returns K, the signature width.
func (h *SRPHash) Bits() int { return h.bits }

// Dim returns the input dimensionality.
func (h *SRPHash) Dim() int { return h.planes.Cols }

// Signature hashes x to a K-bit bucket index.
func (h *SRPHash) Signature(x []float64) uint32 {
	if len(x) != h.planes.Cols {
		panic(fmt.Sprintf("lsh: Signature input dim %d, want %d", len(x), h.planes.Cols))
	}
	var sig uint32
	for i := 0; i < h.bits; i++ {
		if tensor.Dot(h.planes.RowView(i), x) >= 0 {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// CollisionProbability returns the per-bit SRP collision probability of
// two vectors, 1 − θ/π with θ the angle between them. Retrieval analysis
// (and tests) compare empirical bucket collisions against this.
func CollisionProbability(a, b []float64) float64 {
	na, nb := tensor.Norm(a), tensor.Norm(b)
	if na == 0 || nb == 0 { //lint:ignore float-equality exact-zero norm sentinel: the sign of a zero projection is arbitrary
		return 0.5 // sign of a zero projection is arbitrary
	}
	cos := tensor.Dot(a, b) / (na * nb)
	cos = math.Max(-1, math.Min(1, cos))
	return 1 - math.Acos(cos)/math.Pi
}

// RetrievalProbability returns the probability that an item whose per-bit
// collision probability with the query is p survives a (K, L) index:
// 1 − (1 − p^K)^L.
func RetrievalProbability(p float64, k, l int) float64 {
	return 1 - math.Pow(1-math.Pow(p, float64(k)), float64(l))
}
