package lsh

import (
	"fmt"
	"math/bits"
	"sort"

	"samplednn/internal/obs/trace"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Family selects the LSH hash family of an index.
type Family int

// Supported hash families.
const (
	// FamilySRP is signed random projections (SimHash) — the Sign-ALSH
	// construction and the default.
	FamilySRP Family = iota
	// FamilyL2 is p-stable Gaussian quantization — the original L2-ALSH
	// construction Definition 5.1 is stated for.
	FamilyL2
)

// Params are the tunable hyperparameters of a MIPS index. The paper's
// defaults (§8.4, following Spring and Shrivastava) are K=6, L=5, m=3.
type Params struct {
	// K is the signature width in bits (2^K buckets per table).
	K int
	// L is the number of independent tables.
	L int
	// M is the number of asymmetric padding terms.
	M int
	// U is the norm cap of the asymmetric transform, in (0,1).
	U float64
	// Family selects the hash family (default FamilySRP).
	Family Family
	// R is the L2 family's bucket width (default 2; ignored for SRP).
	R float64
	// Probes enables multi-probe querying: each table is additionally
	// probed at this many perturbed buckets (SRP family only; 0 probes
	// only the base bucket). More probes raise recall without extra
	// tables — trading query time for the table memory of §9.4.
	Probes int
}

// DefaultParams returns the paper's configuration: K=6, L=5, m=3, U=0.83.
func DefaultParams() Params { return Params{K: 6, L: 5, M: 3, U: 0.83} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K <= 0 || p.K > 30 {
		return fmt.Errorf("lsh: K=%d out of range (1..30)", p.K)
	}
	if p.L <= 0 {
		return fmt.Errorf("lsh: L=%d must be positive", p.L)
	}
	if p.M <= 0 {
		return fmt.Errorf("lsh: M=%d must be positive", p.M)
	}
	if p.U <= 0 || p.U >= 1 {
		return fmt.Errorf("lsh: U=%v must be in (0,1)", p.U)
	}
	if p.Family != FamilySRP && p.Family != FamilyL2 {
		return fmt.Errorf("lsh: unknown hash family %d", p.Family)
	}
	if p.Family == FamilyL2 && p.R < 0 {
		return fmt.Errorf("lsh: L2 bucket width R=%v must be non-negative", p.R)
	}
	if p.Probes < 0 {
		return fmt.Errorf("lsh: Probes=%d must be non-negative", p.Probes)
	}
	if p.Probes > 0 && p.Family != FamilySRP {
		return fmt.Errorf("lsh: multi-probe is only supported for the SRP family")
	}
	return nil
}

// MIPSIndex answers approximate maximum-inner-product queries over the
// columns of a weight matrix. It is the data structure at the heart of
// ALSH-approx: the columns of W^k are indexed once before training, the
// incoming activation vector is used as the query, and the union of the
// buckets it lands in across L tables becomes the layer's active node
// set.
type MIPSIndex struct {
	params    Params
	dim       int // original item dimensionality (rows of W)
	nItems    int // number of indexed columns
	transform *Transform
	hashes    []Hasher     // one K-bit function per table, over dim+M
	tables    []*HashTable // one per hash function

	// scratch is the built-in workspace used by the single-threaded
	// Query/insert paths.
	scratch QueryScratch

	rebuilds int
	queries  int
}

// NewMIPSIndex allocates an index for nItems columns of dim-dimensional
// vectors. Build or Rebuild must be called before Query.
func NewMIPSIndex(dim, nItems int, p Params, g *rng.RNG) (*MIPSIndex, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if dim <= 0 || nItems <= 0 {
		return nil, fmt.Errorf("lsh: index needs positive dim (%d) and items (%d)", dim, nItems)
	}
	idx := &MIPSIndex{
		params:    p,
		dim:       dim,
		nItems:    nItems,
		transform: NewTransform(p.M, p.U),
		hashes:    make([]Hasher, p.L),
		tables:    make([]*HashTable, p.L),
		scratch: QueryScratch{
			expanded: make([]float64, dim+p.M),
			seen:     make([]uint32, nItems),
		},
	}
	r := p.R
	if r == 0 { //lint:ignore float-equality zero value marks an unset parameter; exact sentinel, never a computed result
		r = 2
	}
	for i := 0; i < p.L; i++ {
		switch p.Family {
		case FamilyL2:
			idx.hashes[i] = NewL2Hash(p.K, dim+p.M, r, g.Split())
		default:
			idx.hashes[i] = NewSRPHash(p.K, dim+p.M, g.Split())
		}
		idx.tables[i] = NewHashTable(p.K, nItems)
	}
	return idx, nil
}

// Params returns the index configuration.
func (idx *MIPSIndex) Params() Params { return idx.params }

// NumItems returns the number of indexed columns.
func (idx *MIPSIndex) NumItems() int { return idx.nItems }

// Rebuild re-fits the transform scaling to the current column norms of w
// and re-hashes every column into every table. w must be dim x nItems.
func (idx *MIPSIndex) Rebuild(w *tensor.Matrix) {
	defer trace.Active().Begin("lsh", "rebuild").WithArg("cols", int64(idx.nItems)).End()
	idx.checkShape(w)
	idx.transform.Fit(w.ColNorms())
	for _, t := range idx.tables {
		t.Clear()
	}
	col := make([]float64, idx.dim)
	for j := 0; j < idx.nItems; j++ {
		w.Col(j, col)
		idx.insert(j, col)
	}
	idx.rebuilds++
}

// UpdateColumns re-hashes only the given columns, keeping the existing
// transform scaling. This is the cheap maintenance path ALSH-approx runs
// after sparse gradient updates; a periodic Rebuild re-fits the scaling.
func (idx *MIPSIndex) UpdateColumns(w *tensor.Matrix, cols []int) {
	defer trace.Active().Begin("lsh", "rehash").WithArg("cols", int64(len(cols))).End()
	idx.checkShape(w)
	col := make([]float64, idx.dim)
	for _, j := range cols {
		if j < 0 || j >= idx.nItems {
			panic(fmt.Sprintf("lsh: UpdateColumns index %d out of range", j))
		}
		w.Col(j, col)
		idx.insert(j, col)
	}
}

func (idx *MIPSIndex) insert(id int, item []float64) {
	p := idx.transform.P(item, idx.scratch.expanded)
	for i, h := range idx.hashes {
		idx.tables[i].Insert(id, h.Signature(p))
	}
}

func (idx *MIPSIndex) checkShape(w *tensor.Matrix) {
	if w.Rows != idx.dim || w.Cols != idx.nItems {
		panic(fmt.Sprintf("lsh: index built for %dx%d, got %dx%d", idx.dim, idx.nItems, w.Rows, w.Cols))
	}
}

// QueryScratch holds the per-caller workspace of a query. Concurrent
// queries against a quiescent index (no Rebuild/UpdateColumns in flight)
// are safe as long as each goroutine uses its own scratch.
type QueryScratch struct {
	expanded []float64
	seen     []uint32
	stamp    uint32
	probes   []uint32
}

// NewQueryScratch allocates a workspace for this index.
func (idx *MIPSIndex) NewQueryScratch() *QueryScratch {
	return &QueryScratch{
		expanded: make([]float64, idx.dim+idx.params.M),
		seen:     make([]uint32, idx.nItems),
	}
}

// Query returns the ids of the candidate columns for query vector a: the
// union of the buckets Q(a) hashes to across all L tables, deduplicated,
// in ascending order. The result is appended to dst (reset to length 0).
// Query is not safe for concurrent use; concurrent readers should use
// QueryWith with per-goroutine scratches.
func (idx *MIPSIndex) Query(a []float64, dst []int) []int {
	idx.queries++
	sp := trace.Active().Begin("lsh", "query")
	dst = idx.queryInto(&idx.scratch, a, dst)
	sp.WithArg("cands", int64(len(dst))).End()
	return dst
}

// QueryWith is Query using caller-owned workspace, safe to call from
// multiple goroutines simultaneously while the index is not being
// mutated. The query counter is not updated on this path to keep it
// synchronization-free.
func (idx *MIPSIndex) QueryWith(sc *QueryScratch, a []float64, dst []int) []int {
	if len(sc.seen) != idx.nItems || len(sc.expanded) != idx.dim+idx.params.M {
		panic("lsh: scratch does not match index geometry")
	}
	return idx.queryInto(sc, a, dst)
}

func (idx *MIPSIndex) queryInto(sc *QueryScratch, a []float64, dst []int) []int {
	if len(a) != idx.dim {
		panic(fmt.Sprintf("lsh: query dim %d, want %d", len(a), idx.dim))
	}
	sc.stamp++
	if sc.stamp == 0 { // stamp wrapped; reset the array
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.stamp = 1
	}
	q := idx.transform.Q(a, sc.expanded)
	dst = dst[:0]
	for i, h := range idx.hashes {
		if idx.params.Probes > 0 {
			mh := h.(MultiprobeHasher) // guaranteed by Validate: SRP only
			sc.probes = mh.ProbeSequence(q, idx.params.Probes, sc.probes)
			for _, sig := range sc.probes {
				for _, id := range idx.tables[i].Bucket(sig) {
					if sc.seen[id] != sc.stamp {
						sc.seen[id] = sc.stamp
						dst = append(dst, int(id))
					}
				}
			}
			continue
		}
		for _, id := range idx.tables[i].Bucket(h.Signature(q)) {
			if sc.seen[id] != sc.stamp {
				sc.seen[id] = sc.stamp
				dst = append(dst, int(id))
			}
		}
	}
	sort.Ints(dst)
	return dst
}

// Stats returns maintenance counters: total rebuilds and queries served.
func (idx *MIPSIndex) Stats() (rebuilds, queries int) {
	return idx.rebuilds, idx.queries
}

// BucketStats summarizes hash-table occupancy across all L tables. It is
// the §10.3 diagnostic in data-structure form: when a few buckets hold
// most of the items, every query returns the same crowded candidate set
// and the active nodes stop depending on the input — the precondition
// for ALSH-approx's prediction collapse.
type BucketStats struct {
	// Tables is L, BucketsPerTable is 2^K.
	Tables          int `json:"tables"`
	BucketsPerTable int `json:"buckets_per_table"`
	// Items counts stored ids summed over tables (nItems per fully built
	// table), NonEmpty the buckets holding at least one id.
	Items    int `json:"items"`
	NonEmpty int `json:"non_empty"`
	// MaxLoad is the largest single bucket; MeanLoad averages items over
	// non-empty buckets (0 when the index is empty).
	MaxLoad  int     `json:"max_load"`
	MeanLoad float64 `json:"mean_load"`
	// Occupancy[i] counts non-empty buckets whose size has bit length
	// i+1: Occupancy[0] is size 1, Occupancy[i] covers [2^i, 2^(i+1)).
	Occupancy []int `json:"occupancy,omitempty"`
}

// BucketStats scans every table and returns the occupancy summary.
func (idx *MIPSIndex) BucketStats() BucketStats {
	s := BucketStats{Tables: len(idx.tables), BucketsPerTable: 1 << uint(idx.params.K)}
	var occ [32]int
	top := -1
	for _, t := range idx.tables {
		for _, b := range t.buckets {
			n := len(b)
			if n == 0 {
				continue
			}
			s.Items += n
			s.NonEmpty++
			if n > s.MaxLoad {
				s.MaxLoad = n
			}
			i := bits.Len(uint(n)) - 1
			occ[i]++
			if i > top {
				top = i
			}
		}
	}
	if s.NonEmpty > 0 {
		s.MeanLoad = float64(s.Items) / float64(s.NonEmpty)
		s.Occupancy = append([]int(nil), occ[:top+1]...)
	}
	return s
}

// MemoryFootprint estimates the index's resident bytes: bucket headers,
// stored ids, hyperplanes, and scratch. The §9.4 memory experiment reads
// this to reproduce the table-setup cost of ALSH-approx.
func (idx *MIPSIndex) MemoryFootprint() int {
	bytes := len(idx.scratch.seen)*4 + len(idx.scratch.expanded)*8
	for _, t := range idx.tables {
		bytes += len(t.slot) * 4
		bytes += len(t.buckets) * 24 // slice headers
		for _, b := range t.buckets {
			bytes += cap(b) * 4
		}
	}
	for _, h := range idx.hashes {
		bytes += h.Bits() * h.Dim() * 8 // hyperplane storage
	}
	return bytes
}

// BruteForceTopK returns the k columns of w with the largest inner
// product against a, in descending order of inner product. It is the
// exact MIPS oracle used for recall measurement and for the "assume
// active nodes are detected exactly" premise of the §7 analysis.
func BruteForceTopK(w *tensor.Matrix, a []float64, k int) []int {
	if len(a) != w.Rows {
		panic(fmt.Sprintf("lsh: BruteForceTopK query dim %d, want %d", len(a), w.Rows))
	}
	if k > w.Cols {
		k = w.Cols
	}
	if k <= 0 {
		return nil
	}
	prods := make([]float64, w.Cols)
	for i := 0; i < w.Rows; i++ {
		av := a[i]
		if av == 0 { //lint:ignore float-equality structural-zero skip over exact zeros in the sparse activation row
			continue
		}
		row := w.RowView(i)
		tensor.Axpy(av, row, prods)
	}
	idx := make([]int, w.Cols)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return prods[idx[x]] > prods[idx[y]] })
	return idx[:k:k]
}

// Recall returns |candidates ∩ truth| / |truth|, the fraction of the true
// top inner-product columns the index retrieved.
func Recall(candidates, truth []int) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[int]bool, len(candidates))
	for _, c := range candidates {
		in[c] = true
	}
	hit := 0
	for _, t := range truth {
		if in[t] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// QueryTopK answers a MIPS query end to end the way vector databases do
// (§1's Vector-DB connection): retrieve the hash candidates, rerank them
// by exact inner product against w's columns, and return the best k in
// descending inner-product order. When the candidate set is smaller than
// k, all candidates are returned.
func (idx *MIPSIndex) QueryTopK(w *tensor.Matrix, a []float64, k int) []int {
	idx.checkShape(w)
	return idx.rerank(w, a, idx.Query(a, nil), k)
}

// QueryTopKWith is QueryTopK using caller-owned workspace, safe to call
// from multiple goroutines simultaneously against a quiescent index (no
// Rebuild/UpdateColumns in flight) — the serving layer's top-k path,
// where every request carries its own scratch.
func (idx *MIPSIndex) QueryTopKWith(sc *QueryScratch, w *tensor.Matrix, a []float64, k int) []int {
	idx.checkShape(w)
	return idx.rerank(w, a, idx.QueryWith(sc, a, nil), k)
}

// rerank scores the candidate columns by exact inner product against a
// and returns the best k ids in descending inner-product order.
func (idx *MIPSIndex) rerank(w *tensor.Matrix, a []float64, cands []int, k int) []int {
	if k <= 0 || len(cands) == 0 {
		return nil
	}
	type scored struct {
		id int
		ip float64
	}
	col := make([]float64, idx.dim)
	ss := make([]scored, len(cands))
	for i, id := range cands {
		w.Col(id, col)
		ss[i] = scored{id, tensor.Dot(a, col)}
	}
	sort.Slice(ss, func(x, y int) bool { return ss[x].ip > ss[y].ip })
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].id
	}
	return out
}
