package lsh

import (
	"fmt"
	"math"

	"samplednn/internal/rng"
)

// Hasher is a K-bucket hash function over expanded vectors. Two families
// are provided: SRPHash (signed random projections — the Sign-ALSH
// construction) and L2Hash (p-stable projections — the original
// L2-ALSH construction of Shrivastava and Li, which Definition 5.1 is
// stated for). MIPSIndex works with either.
type Hasher interface {
	// Signature hashes x into [0, 2^Bits).
	Signature(x []float64) uint32
	// Bits returns the signature width.
	Bits() int
	// Dim returns the expected input dimensionality.
	Dim() int
}

// L2Hash is a K-component p-stable (Gaussian) LSH function: component i
// is floor((a_i·x + b_i)/r) for a Gaussian direction a_i and uniform
// offset b_i in [0, r). The K integer components are mixed into a bucket
// index. Nearby vectors in l2 distance collide with high probability, so
// composed with the P/Q transform it answers MIPS queries (Eq. 3).
type L2Hash struct {
	bits   int
	r      float64
	planes [][]float64
	offs   []float64
}

// NewL2Hash draws a K-component L2 hash over dim-dimensional inputs with
// bucket width r (a good default is ~2 for unit-scale data).
func NewL2Hash(bits, dim int, r float64, g *rng.RNG) *L2Hash {
	if bits <= 0 || bits > 30 {
		panic(fmt.Sprintf("lsh: L2 bits %d out of range (1..30)", bits))
	}
	if dim <= 0 {
		panic("lsh: L2 dim must be positive")
	}
	if r <= 0 {
		panic(fmt.Sprintf("lsh: L2 bucket width r=%v must be positive", r))
	}
	h := &L2Hash{bits: bits, r: r, planes: make([][]float64, bits), offs: make([]float64, bits)}
	for i := range h.planes {
		p := make([]float64, dim)
		g.GaussianSlice(p, 0, 1)
		h.planes[i] = p
		h.offs[i] = g.Float64() * r
	}
	return h
}

// Bits returns K.
func (h *L2Hash) Bits() int { return h.bits }

// Dim returns the input dimensionality.
func (h *L2Hash) Dim() int { return len(h.planes[0]) }

// Signature hashes x: each component's quantized projection is mixed
// into the bucket index with a Fibonacci multiplier so nearby buckets
// spread across the table.
func (h *L2Hash) Signature(x []float64) uint32 {
	if len(x) != h.Dim() {
		panic(fmt.Sprintf("lsh: Signature input dim %d, want %d", len(x), h.Dim()))
	}
	var sig uint32
	for i, p := range h.planes {
		var dot float64
		for j, v := range x {
			dot += p[j] * v
		}
		q := int64(math.Floor((dot + h.offs[i]) / h.r))
		sig = sig*0x9e3779b1 + uint32(uint64(q)) // mixes negative q fine
	}
	return sig & ((1 << uint(h.bits)) - 1)
}

// L2CollisionProbability returns the per-component collision probability
// of two vectors at l2 distance d under bucket width r (Datar et al.):
// p(d) = 1 − 2Φ(−r/d) − (2d/(√(2π)r))(1 − e^{−r²/(2d²)}).
func L2CollisionProbability(d, r float64) float64 {
	if d <= 0 {
		return 1
	}
	c := r / d
	phi := 0.5 * math.Erfc(c/math.Sqrt2) // Φ(−c)
	return 1 - 2*phi - (2/(math.Sqrt(2*math.Pi)*c))*(1-math.Exp(-c*c/2))
}
