package lsh

import (
	"math"
	"testing"

	"samplednn/internal/rng"
)

func TestSRPDeterministicAndScaleInvariant(t *testing.T) {
	g := rng.New(1)
	h := NewSRPHash(8, 16, g)
	x := make([]float64, 16)
	g.GaussianSlice(x, 0, 1)
	s1 := h.Signature(x)
	if h.Signature(x) != s1 {
		t.Fatal("signature must be deterministic")
	}
	scaled := make([]float64, 16)
	for i, v := range x {
		scaled[i] = 3.7 * v
	}
	if h.Signature(scaled) != s1 {
		t.Fatal("SRP must be invariant to positive scaling")
	}
}

func TestSRPSignatureRange(t *testing.T) {
	g := rng.New(2)
	h := NewSRPHash(5, 8, g)
	if h.Bits() != 5 || h.Dim() != 8 {
		t.Fatal("accessors wrong")
	}
	x := make([]float64, 8)
	for i := 0; i < 200; i++ {
		g.GaussianSlice(x, 0, 1)
		if s := h.Signature(x); s >= 32 {
			t.Fatalf("signature %d exceeds 2^5", s)
		}
	}
}

func TestSRPOppositeVectors(t *testing.T) {
	g := rng.New(3)
	h := NewSRPHash(10, 12, g)
	x := make([]float64, 12)
	g.GaussianSlice(x, 0, 1)
	neg := make([]float64, 12)
	for i, v := range x {
		neg[i] = -v
	}
	// Opposite vectors should (almost surely) disagree on every bit.
	if h.Signature(x) == h.Signature(neg) {
		t.Fatal("antipodal vectors should not collide on all 10 bits")
	}
}

func TestSRPDimMismatchPanics(t *testing.T) {
	g := rng.New(4)
	h := NewSRPHash(4, 8, g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Signature(make([]float64, 7))
}

func TestSRPBadParamsPanic(t *testing.T) {
	g := rng.New(5)
	for _, f := range []func(){
		func() { NewSRPHash(0, 4, g) },
		func() { NewSRPHash(31, 4, g) },
		func() { NewSRPHash(4, 0, g) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCollisionProbabilityAnalytic(t *testing.T) {
	// Parallel vectors collide with probability 1, orthogonal 1/2,
	// antipodal 0.
	a := []float64{1, 0}
	cases := []struct {
		b    []float64
		want float64
	}{
		{[]float64{2, 0}, 1},
		{[]float64{0, 1}, 0.5},
		{[]float64{-1, 0}, 0},
		{[]float64{1, 1}, 0.75},
	}
	for _, c := range cases {
		if got := CollisionProbability(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("CollisionProbability(%v) = %v, want %v", c.b, got, c.want)
		}
	}
	if CollisionProbability(a, []float64{0, 0}) != 0.5 {
		t.Fatal("zero vector should return 0.5")
	}
}

func TestCollisionProbabilityEmpirical(t *testing.T) {
	// Empirical per-bit collision frequency of two vectors at a known
	// angle should match 1 − θ/π.
	g := rng.New(6)
	a := []float64{1, 0, 0}
	b := []float64{1, 1, 0} // 45°: p = 0.75
	const trials = 6000
	collide := 0
	for i := 0; i < trials; i++ {
		h := NewSRPHash(1, 3, g.Split())
		if h.Signature(a) == h.Signature(b) {
			collide++
		}
	}
	got := float64(collide) / trials
	if math.Abs(got-0.75) > 0.03 {
		t.Fatalf("empirical collision %v, want ~0.75", got)
	}
}

func TestRetrievalProbability(t *testing.T) {
	// p=1 must retrieve always, p=0 never; monotone in p and L.
	if RetrievalProbability(1, 6, 5) != 1 {
		t.Fatal("p=1")
	}
	if RetrievalProbability(0, 6, 5) != 0 {
		t.Fatal("p=0")
	}
	if !(RetrievalProbability(0.9, 6, 5) > RetrievalProbability(0.5, 6, 5)) {
		t.Fatal("monotone in p")
	}
	if !(RetrievalProbability(0.8, 6, 10) > RetrievalProbability(0.8, 6, 5)) {
		t.Fatal("monotone in L")
	}
	if !(RetrievalProbability(0.8, 4, 5) > RetrievalProbability(0.8, 8, 5)) {
		t.Fatal("more bits must be more selective")
	}
	// Exact value: 1-(1-p^K)^L.
	want := 1 - math.Pow(1-math.Pow(0.8, 6), 5)
	if math.Abs(RetrievalProbability(0.8, 6, 5)-want) > 1e-12 {
		t.Fatal("formula mismatch")
	}
}
