package lsh

import (
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestProbeSequenceBasics(t *testing.T) {
	g := rng.New(1)
	h := NewSRPHash(6, 12, g)
	x := make([]float64, 12)
	g.GaussianSlice(x, 0, 1)

	seq := h.ProbeSequence(x, 3, nil)
	if len(seq) != 4 {
		t.Fatalf("sequence length %d, want 1 base + 3 probes", len(seq))
	}
	if seq[0] != h.Signature(x) {
		t.Fatal("first element must be the base signature")
	}
	// Each probe differs from the base in exactly one bit, all distinct.
	seen := map[uint32]bool{seq[0]: true}
	for _, sig := range seq[1:] {
		diff := sig ^ seq[0]
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("probe %b differs from base %b in != 1 bit", sig, seq[0])
		}
		if seen[sig] {
			t.Fatal("duplicate probe")
		}
		seen[sig] = true
	}
	// n beyond the bit count clamps.
	if got := h.ProbeSequence(x, 100, nil); len(got) != 7 {
		t.Fatalf("clamped sequence length %d, want 7", len(got))
	}
	// n=0 returns only the base.
	if got := h.ProbeSequence(x, 0, nil); len(got) != 1 {
		t.Fatal("n=0 should return only the base")
	}
}

func TestProbeSequenceFlipsLeastConfidentFirst(t *testing.T) {
	g := rng.New(2)
	h := NewSRPHash(4, 4, g)
	// Construct an input with one projection near zero: perturb along
	// each plane and find which bit the first probe flips.
	x := make([]float64, 4)
	g.GaussianSlice(x, 0, 1)
	seq := h.ProbeSequence(x, 4, nil)
	// The first flipped bit must correspond to the smallest |projection|.
	minAbs, minBit := 1e300, -1
	for i := 0; i < 4; i++ {
		p := tensor.Dot(h.planes.RowView(i), x)
		if a := abs(p); a < minAbs {
			minAbs, minBit = a, i
		}
	}
	if seq[1]^seq[0] != 1<<uint(minBit) {
		t.Fatalf("first probe flips bit %b, least-confident is %d", seq[1]^seq[0], minBit)
	}
}

func TestMultiprobeRaisesRecallAtFixedTables(t *testing.T) {
	g := rng.New(3)
	dim, n := 24, 400
	w := tensor.New(dim, n)
	g.GaussianSlice(w.Data, 0, 1)

	measure := func(probes int) (recall, frac float64) {
		idx, err := NewMIPSIndex(dim, n, Params{K: 6, L: 4, M: 3, U: 0.83, Probes: probes}, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		idx.Rebuild(w)
		a := make([]float64, dim)
		gg := rng.New(5)
		const queries = 40
		for i := 0; i < queries; i++ {
			gg.GaussianSlice(a, 0, 1)
			c := idx.Query(a, nil)
			recall += Recall(c, BruteForceTopK(w, a, 5))
			frac += float64(len(c)) / float64(n)
		}
		return recall / queries, frac / queries
	}

	r0, f0 := measure(0)
	r3, f3 := measure(3)
	if r3 <= r0 {
		t.Fatalf("3 probes should raise recall: %v → %v", r0, r3)
	}
	if f3 <= f0 {
		t.Fatal("probing should enlarge candidate sets")
	}
	// The probe buckets are informative: the recall gain should exceed
	// what the extra candidates alone would explain at random.
	if (r3-r0)/(f3-f0) < 1 {
		t.Fatalf("probe recall gain %v not informative vs candidate growth %v", r3-r0, f3-f0)
	}
}

func TestMultiprobeValidation(t *testing.T) {
	if (Params{K: 4, L: 2, M: 2, U: 0.8, Probes: -1}).Validate() == nil {
		t.Fatal("negative probes must be invalid")
	}
	if (Params{K: 4, L: 2, M: 2, U: 0.8, Family: FamilyL2, Probes: 2}).Validate() == nil {
		t.Fatal("multi-probe with L2 family must be invalid")
	}
	if (Params{K: 4, L: 2, M: 2, U: 0.8, Probes: 2}).Validate() != nil {
		t.Fatal("SRP multi-probe should validate")
	}
}
