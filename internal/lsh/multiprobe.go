package lsh

import (
	"sort"

	"samplednn/internal/tensor"
)

// MultiprobeHasher is implemented by hash families that can enumerate
// additional likely buckets for a query — the multi-probe LSH technique:
// instead of buying recall with more tables (more memory, the §9.4 cost
// of ALSH-approx), the query also probes the buckets it almost landed in.
type MultiprobeHasher interface {
	Hasher
	// ProbeSequence appends to dst the base signature followed by up to
	// n perturbed signatures in decreasing collision likelihood.
	ProbeSequence(x []float64, n int, dst []uint32) []uint32
}

// ProbeSequence for SRP flips the signature bits whose projections are
// closest to zero — the bits most likely to differ for a true near
// neighbor.
func (h *SRPHash) ProbeSequence(x []float64, n int, dst []uint32) []uint32 {
	if len(x) != h.planes.Cols {
		panic("lsh: ProbeSequence input dim mismatch")
	}
	dst = dst[:0]
	projs := make([]float64, h.bits)
	var base uint32
	for i := 0; i < h.bits; i++ {
		p := tensor.Dot(h.planes.RowView(i), x)
		projs[i] = p
		if p >= 0 {
			base |= 1 << uint(i)
		}
	}
	dst = append(dst, base)
	if n <= 0 {
		return dst
	}
	order := make([]int, h.bits)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return abs(projs[order[a]]) < abs(projs[order[b]])
	})
	if n > h.bits {
		n = h.bits
	}
	for i := 0; i < n; i++ {
		dst = append(dst, base^(1<<uint(order[i])))
	}
	return dst
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
