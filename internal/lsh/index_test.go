package lsh

import (
	"math"
	"sync"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestHashTableInsertQueryMove(t *testing.T) {
	ht := NewHashTable(4, 10)
	ht.Insert(3, 7)
	ht.Insert(5, 7)
	if got := ht.Bucket(7); len(got) != 2 {
		t.Fatalf("bucket 7 = %v", got)
	}
	// Moving an item must remove it from its old bucket.
	ht.Insert(3, 9)
	if got := ht.Bucket(7); len(got) != 1 || got[0] != 5 {
		t.Fatalf("after move, bucket 7 = %v", got)
	}
	if got := ht.Bucket(9); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after move, bucket 9 = %v", got)
	}
	if ht.Len() != 2 {
		t.Fatalf("Len = %d", ht.Len())
	}
	ne, ml := ht.Stats()
	if ne != 2 || ml != 1 {
		t.Fatalf("Stats = %d, %d", ne, ml)
	}
	ht.Clear()
	if ht.Len() != 0 || len(ht.Bucket(7)) != 0 {
		t.Fatal("Clear failed")
	}
	// Re-insert after clear works.
	ht.Insert(3, 1)
	if ht.Len() != 1 {
		t.Fatal("insert after clear failed")
	}
}

func TestHashTableBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHashTable(0, 5)
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Params{
		{K: 0, L: 5, M: 3, U: 0.8},
		{K: 31, L: 5, M: 3, U: 0.8},
		{K: 6, L: 0, M: 3, U: 0.8},
		{K: 6, L: 5, M: 0, U: 0.8},
		{K: 6, L: 5, M: 3, U: 0},
		{K: 6, L: 5, M: 3, U: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("case %d should be invalid", i)
		}
	}
}

func TestIndexConstructorErrors(t *testing.T) {
	g := rng.New(1)
	if _, err := NewMIPSIndex(0, 5, DefaultParams(), g); err == nil {
		t.Fatal("dim=0 must error")
	}
	if _, err := NewMIPSIndex(5, 0, DefaultParams(), g); err == nil {
		t.Fatal("items=0 must error")
	}
	if _, err := NewMIPSIndex(5, 5, Params{}, g); err == nil {
		t.Fatal("zero params must error")
	}
}

func buildIndex(t *testing.T, g *rng.RNG, dim, n int, p Params) (*MIPSIndex, *tensor.Matrix) {
	t.Helper()
	w := tensor.New(dim, n)
	g.GaussianSlice(w.Data, 0, 1)
	idx, err := NewMIPSIndex(dim, n, p, g)
	if err != nil {
		t.Fatal(err)
	}
	idx.Rebuild(w)
	return idx, w
}

func TestQueryReturnsSortedUnique(t *testing.T) {
	g := rng.New(2)
	idx, w := buildIndex(t, g, 16, 200, Params{K: 4, L: 6, M: 3, U: 0.83})
	_ = w
	a := make([]float64, 16)
	g.GaussianSlice(a, 0, 1)
	got := idx.Query(a, nil)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("candidates not sorted-unique: %v", got)
		}
	}
	for _, id := range got {
		if id < 0 || id >= 200 {
			t.Fatalf("candidate %d out of range", id)
		}
	}
}

func TestQueryRecallBeatsRandom(t *testing.T) {
	// With generous parameters the index should retrieve the true MIPS
	// winners far more often than a random subset of the same size would.
	g := rng.New(3)
	dim, n := 24, 400
	idx, w := buildIndex(t, g, dim, n, Params{K: 5, L: 12, M: 3, U: 0.83})

	const queries = 40
	const topK = 5
	var recallSum, candFrac float64
	a := make([]float64, dim)
	for qi := 0; qi < queries; qi++ {
		g.GaussianSlice(a, 0, 1)
		cands := idx.Query(a, nil)
		truth := BruteForceTopK(w, a, topK)
		recallSum += Recall(cands, truth)
		candFrac += float64(len(cands)) / float64(n)
	}
	recall := recallSum / queries
	frac := candFrac / queries
	if recall <= frac+0.1 {
		t.Fatalf("LSH recall %v barely beats random baseline %v", recall, frac)
	}
}

func TestQuerySelectivity(t *testing.T) {
	// The paper reports active sets as small as 5%%; with K=6,L=5 on
	// random Gaussian columns the candidate fraction must be well below
	// half the layer.
	g := rng.New(4)
	idx, _ := buildIndex(t, g, 32, 1000, DefaultParams())
	a := make([]float64, 32)
	var frac float64
	const queries = 30
	for i := 0; i < queries; i++ {
		g.GaussianSlice(a, 0, 1)
		frac += float64(len(idx.Query(a, nil))) / 1000
	}
	frac /= queries
	if frac > 0.5 {
		t.Fatalf("candidate fraction %v too large for K=6,L=5", frac)
	}
	if frac == 0 {
		t.Fatal("index never returns candidates")
	}
}

func TestUpdateColumnsMovesItems(t *testing.T) {
	g := rng.New(5)
	idx, w := buildIndex(t, g, 8, 50, Params{K: 3, L: 4, M: 3, U: 0.83})

	// Drastically change column 7 and re-hash only it; queries aligned
	// with the new direction should now find it.
	newCol := make([]float64, 8)
	for i := range newCol {
		newCol[i] = 10
	}
	w.SetCol(7, newCol)
	idx.UpdateColumns(w, []int{7})

	found := false
	for trial := 0; trial < 20 && !found; trial++ {
		q := make([]float64, 8)
		for i := range q {
			q[i] = 1 + 0.01*g.NormFloat64()
		}
		for _, id := range idx.Query(q, nil) {
			if id == 7 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("updated column never retrieved by aligned queries")
	}
}

func TestUpdateColumnsOutOfRangePanics(t *testing.T) {
	g := rng.New(6)
	idx, w := buildIndex(t, g, 4, 10, Params{K: 3, L: 2, M: 2, U: 0.8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.UpdateColumns(w, []int{10})
}

func TestIndexShapeChecks(t *testing.T) {
	g := rng.New(7)
	idx, _ := buildIndex(t, g, 4, 10, Params{K: 3, L: 2, M: 2, U: 0.8})
	t.Run("rebuild", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		idx.Rebuild(tensor.New(5, 10))
	})
	t.Run("query", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		idx.Query(make([]float64, 3), nil)
	})
}

func TestIndexStatsAndMemory(t *testing.T) {
	g := rng.New(8)
	idx, w := buildIndex(t, g, 8, 100, Params{K: 4, L: 3, M: 2, U: 0.8})
	idx.Rebuild(w)
	a := make([]float64, 8)
	idx.Query(a, nil)
	idx.Query(a, nil)
	rebuilds, queries := idx.Stats()
	if rebuilds != 2 || queries != 2 {
		t.Fatalf("Stats = %d, %d", rebuilds, queries)
	}
	if idx.MemoryFootprint() <= 0 {
		t.Fatal("memory footprint should be positive")
	}
	if idx.NumItems() != 100 || idx.Params().K != 4 {
		t.Fatal("accessors wrong")
	}
}

func TestBruteForceTopK(t *testing.T) {
	w := tensor.FromRows([][]float64{
		{1, 0, -1, 2},
		{0, 1, 0, 2},
	})
	a := []float64{1, 1}
	got := BruteForceTopK(w, a, 2)
	// inner products: col0=1, col1=1, col2=-1, col3=4
	if got[0] != 3 {
		t.Fatalf("top-1 should be column 3, got %v", got)
	}
	if got[1] != 0 && got[1] != 1 {
		t.Fatalf("top-2 should be column 0 or 1, got %v", got)
	}
	if len(BruteForceTopK(w, a, 0)) != 0 {
		t.Fatal("k=0 should be empty")
	}
	if len(BruteForceTopK(w, a, 10)) != 4 {
		t.Fatal("k>cols should clamp")
	}
}

func TestRecall(t *testing.T) {
	if Recall([]int{1, 2, 3}, []int{2, 3, 4}) != 2.0/3 {
		t.Fatal("Recall wrong")
	}
	if Recall(nil, nil) != 1 {
		t.Fatal("empty truth should be 1")
	}
	if Recall(nil, []int{1}) != 0 {
		t.Fatal("no candidates should be 0")
	}
}

func TestQueryStampWraparound(t *testing.T) {
	// Force the dedup stamp to wrap and confirm queries stay correct.
	g := rng.New(9)
	idx, _ := buildIndex(t, g, 4, 20, Params{K: 2, L: 2, M: 2, U: 0.8})
	idx.scratch.stamp = math.MaxUint32 - 1
	a := make([]float64, 4)
	g.GaussianSlice(a, 0, 1)
	r1 := append([]int(nil), idx.Query(a, nil)...)
	r2 := append([]int(nil), idx.Query(a, nil)...) // crosses the wrap
	r3 := append([]int(nil), idx.Query(a, nil)...)
	equal := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !equal(r1, r2) || !equal(r2, r3) {
		t.Fatalf("wraparound changed results: %v %v %v", r1, r2, r3)
	}
}

func TestQueryWithConcurrent(t *testing.T) {
	g := rng.New(40)
	idx, _ := buildIndex(t, g, 16, 200, Params{K: 4, L: 5, M: 3, U: 0.83})
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = make([]float64, 16)
		g.GaussianSlice(queries[i], 0, 1)
	}
	// Sequential reference.
	want := make([][]int, len(queries))
	for i, q := range queries {
		want[i] = append([]int(nil), idx.Query(q, nil)...)
	}
	// Concurrent readers with per-goroutine scratch must agree.
	var wg sync.WaitGroup
	errs := make([]string, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := idx.NewQueryScratch()
			for rep := 0; rep < 50; rep++ {
				got := idx.QueryWith(sc, queries[i], nil)
				if len(got) != len(want[i]) {
					errs[i] = "length mismatch"
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						errs[i] = "content mismatch"
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("query %d: %s", i, e)
		}
	}
}

func TestQueryWithScratchValidation(t *testing.T) {
	g := rng.New(41)
	idx, _ := buildIndex(t, g, 8, 50, Params{K: 3, L: 2, M: 2, U: 0.8})
	other, _ := buildIndex(t, g, 8, 60, Params{K: 3, L: 2, M: 2, U: 0.8})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched scratch must panic")
		}
	}()
	idx.QueryWith(other.NewQueryScratch(), make([]float64, 8), nil)
}

func TestBucketStats(t *testing.T) {
	g := rng.New(9)
	idx, _ := buildIndex(t, g, 16, 200, Params{K: 4, L: 6, M: 3, U: 0.83})
	s := idx.BucketStats()
	if s.Tables != 6 || s.BucketsPerTable != 16 {
		t.Fatalf("geometry %+v", s)
	}
	// Every fully built table holds every item once.
	if s.Items != 6*200 {
		t.Fatalf("items = %d, want %d", s.Items, 6*200)
	}
	if s.NonEmpty == 0 || s.NonEmpty > 6*16 {
		t.Fatalf("non-empty = %d", s.NonEmpty)
	}
	if s.MaxLoad < 1 || s.MaxLoad > 200 {
		t.Fatalf("max load = %d", s.MaxLoad)
	}
	if want := float64(s.Items) / float64(s.NonEmpty); math.Abs(s.MeanLoad-want) > 1e-12 {
		t.Fatalf("mean load = %v, want %v", s.MeanLoad, want)
	}
	// The occupancy histogram must account for every non-empty bucket
	// and its top bin must contain the max-load bucket's size class.
	total := 0
	for _, n := range s.Occupancy {
		total += n
	}
	if total != s.NonEmpty {
		t.Fatalf("occupancy sums to %d, want %d", total, s.NonEmpty)
	}
	if s.Occupancy[len(s.Occupancy)-1] == 0 {
		t.Fatal("occupancy histogram has a trailing empty bin")
	}

	// Empty index: all zeros, no NaN mean.
	empty, err := NewMIPSIndex(8, 10, Params{K: 3, L: 2, M: 3, U: 0.83}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	es := empty.BucketStats()
	if es.Items != 0 || es.NonEmpty != 0 || es.MeanLoad != 0 || es.Occupancy != nil {
		t.Fatalf("empty stats %+v", es)
	}
}

func TestQueryTopKWithConcurrent(t *testing.T) {
	g := rng.New(42)
	idx, w := buildIndex(t, g, 16, 200, Params{K: 4, L: 5, M: 3, U: 0.83})
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = make([]float64, 16)
		g.GaussianSlice(queries[i], 0, 1)
	}
	// Sequential reference via the single-threaded path.
	want := make([][]int, len(queries))
	for i, q := range queries {
		want[i] = idx.QueryTopK(w, q, 5)
	}
	var wg sync.WaitGroup
	errs := make([]string, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := idx.NewQueryScratch()
			for rep := 0; rep < 25; rep++ {
				got := idx.QueryTopKWith(sc, w, queries[i], 5)
				if len(got) != len(want[i]) {
					errs[i] = "length mismatch"
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						errs[i] = "content mismatch"
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("top-k query %d: %s", i, e)
		}
	}
}
