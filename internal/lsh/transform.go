package lsh

import (
	"fmt"
	"math"

	"samplednn/internal/tensor"
)

// Transform implements the asymmetric P/Q expansions of Shrivastava and
// Li (Definition 5.1, Eq. 2): data vectors w (columns of a weight matrix)
// are scaled so every norm is at most U < 1 and padded with m terms
// ||w||^2, ||w||^4, …, ||w||^(2^m); queries are normalized to unit length
// and padded with m copies of 1/2. In the expanded space, minimizing
// ||Q(a) − P(w)|| is equivalent to maximizing <a, w> (Eq. 3), so an
// ordinary near-neighbor hash solves MIPS.
type Transform struct {
	// M is the number of padding terms (paper default 3).
	M int
	// U is the norm cap after scaling (must be in (0, 1); default 0.83,
	// the value recommended by Shrivastava and Li).
	U float64
	// scale is U / max_j ||w_j||, fixed by Fit.
	scale float64
}

// NewTransform returns an unfitted transform with the given padding count
// and norm cap.
func NewTransform(m int, u float64) *Transform {
	if m <= 0 {
		panic("lsh: transform needs m > 0 padding terms")
	}
	if u <= 0 || u >= 1 {
		panic(fmt.Sprintf("lsh: transform norm cap U=%v must be in (0,1)", u))
	}
	return &Transform{M: m, U: u, scale: 1}
}

// Fit sets the data scaling from the maximum norm among the given
// vectors' norms. Call it with the column norms of the weight matrix
// before hashing; Fit with all-zero norms leaves scale at 1.
func (t *Transform) Fit(norms []float64) {
	var maxN float64
	for _, n := range norms {
		if n > maxN {
			maxN = n
		}
	}
	if maxN == 0 { //lint:ignore float-equality exact-zero max norm means an all-zero matrix; division-by-zero guard
		t.scale = 1
		return
	}
	t.scale = t.U / maxN
}

// Scale returns the fitted data scaling factor.
func (t *Transform) Scale() float64 { return t.scale }

// ExpandedDim returns the dimensionality of the transformed space for
// dim-dimensional inputs.
func (t *Transform) ExpandedDim(dim int) int { return dim + t.M }

// P writes the data-side expansion of w into dst (len dim+M) and returns
// it: dst = [scale·w ; (scale·||w||)^2 ; (scale·||w||)^4 ; …].
func (t *Transform) P(w []float64, dst []float64) []float64 {
	dst = t.ensure(len(w), dst)
	s := t.scale
	var sq float64
	for i, v := range w {
		sv := s * v
		dst[i] = sv
		sq += sv * sv
	}
	// sq = ||scale·w||²; successive squaring yields norm^(2^i).
	term := sq
	for i := 0; i < t.M; i++ {
		dst[len(w)+i] = term
		term *= term
	}
	return dst
}

// Q writes the query-side expansion of a into dst (len dim+M) and returns
// it: dst = [a/||a|| ; 1/2 ; … ; 1/2]. A zero query is left unnormalized.
func (t *Transform) Q(a []float64, dst []float64) []float64 {
	dst = t.ensure(len(a), dst)
	n := tensor.Norm(a)
	inv := 1.0
	if n > 0 {
		inv = 1 / n
	}
	for i, v := range a {
		dst[i] = inv * v
	}
	for i := 0; i < t.M; i++ {
		dst[len(a)+i] = 0.5
	}
	return dst
}

func (t *Transform) ensure(dim int, dst []float64) []float64 {
	want := dim + t.M
	if dst == nil {
		return make([]float64, want)
	}
	if len(dst) != want {
		panic(fmt.Sprintf("lsh: transform dst len %d, want %d", len(dst), want))
	}
	return dst
}

// DistanceGap returns ||Q(a)||² + ||P(w)||² − 2<Q(a),P(w)>, the squared
// expanded-space distance. Tests use it to verify Eq. 3: the column
// maximizing the inner product minimizes this distance (up to the
// vanishing ||scale·w||^(2^(m+1)) term).
func (t *Transform) DistanceGap(a, w []float64) float64 {
	q := t.Q(a, nil)
	p := t.P(w, nil)
	var d float64
	for i := range q {
		d += (q[i] - p[i]) * (q[i] - p[i])
	}
	return d
}

// TailTerm returns (scale·||w||)^(2^(m+1)), the residual in Eq. 3 that the
// transform drives to zero as m grows.
func (t *Transform) TailTerm(w []float64) float64 {
	n := t.scale * tensor.Norm(w)
	return math.Pow(n, math.Pow(2, float64(t.M+1)))
}
