package lsh

import (
	"math"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestL2HashBasics(t *testing.T) {
	g := rng.New(1)
	h := NewL2Hash(6, 10, 2, g)
	if h.Bits() != 6 || h.Dim() != 10 {
		t.Fatal("accessors wrong")
	}
	x := make([]float64, 10)
	g.GaussianSlice(x, 0, 1)
	s := h.Signature(x)
	if s >= 64 {
		t.Fatalf("signature %d exceeds 2^6", s)
	}
	if h.Signature(x) != s {
		t.Fatal("signature must be deterministic")
	}
	// Nearby points usually collide, far points usually do not.
	near := append([]float64(nil), x...)
	near[0] += 0.01
	far := make([]float64, 10)
	g.GaussianSlice(far, 0, 20)
	collNear, collFar := 0, 0
	for trial := 0; trial < 300; trial++ {
		hh := NewL2Hash(1, 10, 2, g.Split())
		if hh.Signature(x) == hh.Signature(near) {
			collNear++
		}
		if hh.Signature(x) == hh.Signature(far) {
			collFar++
		}
	}
	if collNear <= collFar {
		t.Fatalf("near collisions %d should exceed far %d", collNear, collFar)
	}
}

func TestL2HashPanics(t *testing.T) {
	g := rng.New(2)
	for _, f := range []func(){
		func() { NewL2Hash(0, 4, 2, g) },
		func() { NewL2Hash(4, 0, 2, g) },
		func() { NewL2Hash(4, 4, 0, g) },
		func() { NewL2Hash(4, 4, 2, g).Signature(make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestL2CollisionProbability(t *testing.T) {
	if L2CollisionProbability(0, 2) != 1 {
		t.Fatal("zero distance must collide")
	}
	// Monotone decreasing in distance.
	if !(L2CollisionProbability(0.5, 2) > L2CollisionProbability(2, 2)) {
		t.Fatal("collision probability must fall with distance")
	}
	if !(L2CollisionProbability(2, 2) > L2CollisionProbability(10, 2)) {
		t.Fatal("collision probability must fall with distance")
	}
	// Empirical check at d = r: compare against the formula.
	g := rng.New(3)
	x := []float64{0, 0, 0, 0}
	y := []float64{2, 0, 0, 0} // d = 2 = r
	hits := 0
	const trials = 6000
	for i := 0; i < trials; i++ {
		h := NewL2Hash(1, 4, 2, g.Split())
		// Compare raw quantized projections via 1-bit signature — but a
		// 1-bit signature aliases buckets, inflating collisions. Use the
		// analytic form only as a loose reference.
		if h.Signature(x) == h.Signature(y) {
			hits++
		}
	}
	got := float64(hits) / trials
	want := L2CollisionProbability(2, 2)
	// 1-bit aliasing means got ≥ want; allow generous slack but require
	// the same ballpark.
	if got < want-0.05 || got > want+0.35 {
		t.Fatalf("empirical collision %v vs analytic %v", got, want)
	}
}

func TestL2FamilyIndexWorks(t *testing.T) {
	g := rng.New(4)
	dim, n := 24, 300
	w := tensor.New(dim, n)
	g.GaussianSlice(w.Data, 0, 1)
	idx, err := NewMIPSIndex(dim, n, Params{K: 6, L: 30, M: 3, U: 0.83, Family: FamilyL2, R: 0.5}, g)
	if err != nil {
		t.Fatal(err)
	}
	idx.Rebuild(w)
	var recall, frac float64
	const queries = 30
	a := make([]float64, dim)
	for i := 0; i < queries; i++ {
		g.GaussianSlice(a, 0, 1)
		cands := idx.Query(a, nil)
		truth := BruteForceTopK(w, a, 5)
		recall += Recall(cands, truth)
		frac += float64(len(cands)) / float64(n)
	}
	recall /= queries
	frac /= queries
	// L2-ALSH discriminates MIPS weakly on isotropic data — the
	// documented weakness that motivated the Sign-ALSH follow-up (which
	// FamilySRP implements). Require it to beat the random baseline, but
	// only by the modest margin the construction actually achieves.
	if recall <= frac+0.03 {
		t.Fatalf("L2 family recall %v does not beat random %v", recall, frac)
	}
}

func TestFamilyValidation(t *testing.T) {
	if (Params{K: 4, L: 2, M: 2, U: 0.8, Family: Family(9)}).Validate() == nil {
		t.Fatal("unknown family must be invalid")
	}
	if (Params{K: 4, L: 2, M: 2, U: 0.8, Family: FamilyL2, R: -1}).Validate() == nil {
		t.Fatal("negative R must be invalid")
	}
	if (Params{K: 4, L: 2, M: 2, U: 0.8, Family: FamilyL2}).Validate() != nil {
		t.Fatal("R=0 should default, not fail")
	}
}

func TestQueryTopKRerank(t *testing.T) {
	g := rng.New(5)
	dim, n := 16, 200
	w := tensor.New(dim, n)
	g.GaussianSlice(w.Data, 0, 1)
	idx, err := NewMIPSIndex(dim, n, Params{K: 4, L: 10, M: 3, U: 0.83}, g)
	if err != nil {
		t.Fatal(err)
	}
	idx.Rebuild(w)
	a := make([]float64, dim)
	g.GaussianSlice(a, 0, 1)

	top := idx.QueryTopK(w, a, 5)
	if len(top) == 0 {
		t.Fatal("no results")
	}
	// Results must be in descending exact inner-product order and drawn
	// from the candidate set.
	col := make([]float64, dim)
	var prev = math.Inf(1)
	cands := map[int]bool{}
	for _, c := range idx.Query(a, nil) {
		cands[c] = true
	}
	for _, id := range top {
		if !cands[id] {
			t.Fatalf("result %d not among candidates", id)
		}
		w.Col(id, col)
		ip := tensor.Dot(a, col)
		if ip > prev+1e-12 {
			t.Fatal("results not sorted by inner product")
		}
		prev = ip
	}
	if idx.QueryTopK(w, a, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}
