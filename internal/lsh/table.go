package lsh

import "fmt"

// HashTable is one of the L tables of a MIPS index: 2^K buckets, each
// holding the ids of the items whose signature maps there. It tracks each
// item's current bucket so a changed item can be moved without a full
// rebuild — the mechanism behind the incremental re-hashing ALSH-approx
// performs after weight updates.
type HashTable struct {
	buckets [][]int32
	slot    []int32 // slot[id] = bucket of id, or -1 if absent
}

// NewHashTable returns a table with 2^bits buckets for items 0..nItems-1.
func NewHashTable(bits, nItems int) *HashTable {
	if bits <= 0 || bits > 30 {
		panic(fmt.Sprintf("lsh: table bits %d out of range", bits))
	}
	t := &HashTable{
		buckets: make([][]int32, 1<<uint(bits)),
		slot:    make([]int32, nItems),
	}
	for i := range t.slot {
		t.slot[i] = -1
	}
	return t
}

// Insert places id in the bucket for sig, moving it from any previous
// bucket first.
func (t *HashTable) Insert(id int, sig uint32) {
	if t.slot[id] >= 0 {
		t.remove(id)
	}
	t.buckets[sig] = append(t.buckets[sig], int32(id))
	t.slot[id] = int32(sig)
}

func (t *HashTable) remove(id int) {
	b := t.buckets[t.slot[id]]
	for i, v := range b {
		if v == int32(id) {
			b[i] = b[len(b)-1]
			t.buckets[t.slot[id]] = b[:len(b)-1]
			break
		}
	}
	t.slot[id] = -1
}

// Bucket returns the ids currently hashed to sig. The slice aliases the
// table; callers must not retain it across mutations.
func (t *HashTable) Bucket(sig uint32) []int32 { return t.buckets[sig] }

// Len returns the number of inserted items.
func (t *HashTable) Len() int {
	n := 0
	for _, s := range t.slot {
		if s >= 0 {
			n++
		}
	}
	return n
}

// Clear empties every bucket, retaining allocated capacity.
func (t *HashTable) Clear() {
	for i := range t.buckets {
		t.buckets[i] = t.buckets[i][:0]
	}
	for i := range t.slot {
		t.slot[i] = -1
	}
}

// Stats summarizes bucket occupancy for diagnostics: the number of
// non-empty buckets and the largest bucket size.
func (t *HashTable) Stats() (nonEmpty, maxLen int) {
	for _, b := range t.buckets {
		if len(b) > 0 {
			nonEmpty++
		}
		if len(b) > maxLen {
			maxLen = len(b)
		}
	}
	return nonEmpty, maxLen
}
