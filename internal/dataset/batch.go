package dataset

import (
	"fmt"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Batcher iterates a split in shuffled mini-batches, reusing its buffers
// across batches so an epoch performs a bounded number of allocations.
// Batch size 1 reproduces the paper's "stochastic" setting; the paper's
// mini-batch default is 20 (§8.4).
type Batcher struct {
	split *Split
	size  int
	g     *rng.RNG

	order []int
	pos   int
	bx    *tensor.Matrix
	by    []int
}

// NewBatcher returns a batcher over split with the given batch size.
func NewBatcher(split *Split, size int, g *rng.RNG) *Batcher {
	if size <= 0 {
		panic(fmt.Sprintf("dataset: batch size %d must be positive", size))
	}
	b := &Batcher{split: split, size: size, g: g}
	b.order = make([]int, split.Len())
	for i := range b.order {
		b.order[i] = i
	}
	b.bx = tensor.New(size, split.X.Cols)
	b.by = make([]int, size)
	b.Reset()
	return b
}

// Reset reshuffles and restarts the epoch.
func (b *Batcher) Reset() {
	b.g.Shuffle(b.order)
	b.pos = 0
}

// Order returns a copy of the current permutation. Shuffles are applied
// in place, so the ordering at any epoch depends on the whole shuffle
// history, not just the RNG position — checkpoints must therefore carry
// the permutation alongside the RNG state to resume deterministically.
func (b *Batcher) Order() []int {
	return append([]int(nil), b.order...)
}

// SetOrder replaces the current permutation (checkpoint resume). The
// slice must be a permutation of [0, Len).
func (b *Batcher) SetOrder(order []int) error {
	n := b.split.Len()
	if len(order) != n {
		return fmt.Errorf("dataset: order has %d entries, split has %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, j := range order {
		if j < 0 || j >= n || seen[j] {
			return fmt.Errorf("dataset: order is not a permutation of [0,%d)", n)
		}
		seen[j] = true
	}
	copy(b.order, order)
	b.pos = 0
	return nil
}

// Skip advances past n batches without materializing them — the
// fast-forward a rejoining distributed worker uses to replay an epoch's
// position from a checkpoint's carried permutation. Skipping beyond the
// epoch leaves the batcher exhausted.
func (b *Batcher) Skip(n int) {
	if n < 0 {
		panic(fmt.Sprintf("dataset: skip %d batches", n))
	}
	b.pos += n * b.size
	if b.pos > len(b.order) {
		b.pos = len(b.order)
	}
}

// Next returns the next batch, or (nil, nil) at the end of the epoch.
// The returned matrix and labels are reused by subsequent calls; callers
// that retain them must copy. The final batch of an epoch may be smaller
// than the batch size.
func (b *Batcher) Next() (*tensor.Matrix, []int) {
	if b.pos >= len(b.order) {
		return nil, nil
	}
	n := b.size
	if rem := len(b.order) - b.pos; rem < n {
		n = rem
	}
	x := b.bx
	y := b.by
	if n != b.size {
		x = tensor.New(n, b.split.X.Cols)
		y = make([]int, n)
	}
	for i := 0; i < n; i++ {
		j := b.order[b.pos+i]
		copy(x.RowView(i), b.split.X.RowView(j))
		y[i] = b.split.Y[j]
	}
	b.pos += n
	return x, y
}

// NumBatches returns the number of batches per epoch.
func (b *Batcher) NumBatches() int {
	return (b.split.Len() + b.size - 1) / b.size
}
