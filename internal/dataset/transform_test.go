package dataset

import (
	"math"
	"testing"

	"samplednn/internal/tensor"
)

func TestStandardizerFitApply(t *testing.T) {
	s := &Split{
		X: tensor.FromRows([][]float64{
			{1, 10, 5},
			{3, 10, 7},
			{5, 10, 9},
		}),
		Y: []int{0, 1, 2},
	}
	st, err := FitStandardizer(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean[0] != 3 || st.Mean[1] != 10 || st.Mean[2] != 7 {
		t.Fatalf("means = %v", st.Mean)
	}
	// Zero-variance feature gets Std 1.
	if st.Std[1] != 1 {
		t.Fatalf("constant feature std = %v, want 1", st.Std[1])
	}
	st.Apply(s.X)
	// After standardizing: column means 0, non-constant columns unit std.
	for j := 0; j < 3; j++ {
		var mean float64
		for i := 0; i < 3; i++ {
			mean += s.X.At(i, j)
		}
		if math.Abs(mean/3) > 1e-12 {
			t.Fatalf("column %d not centered", j)
		}
	}
	var varr float64
	for i := 0; i < 3; i++ {
		varr += s.X.At(i, 0) * s.X.At(i, 0)
	}
	if math.Abs(varr/3-1) > 1e-12 {
		t.Fatalf("column 0 variance %v", varr/3)
	}
}

func TestStandardizerErrorsAndPanics(t *testing.T) {
	if _, err := FitStandardizer(nil); err == nil {
		t.Fatal("nil split must error")
	}
	if _, err := FitStandardizer(&Split{X: tensor.New(0, 3)}); err == nil {
		t.Fatal("empty split must error")
	}
	st, _ := FitStandardizer(&Split{X: tensor.FromRows([][]float64{{1, 2}}), Y: []int{0}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on feature mismatch")
		}
	}()
	st.Apply(tensor.New(1, 3))
}

func TestStandardizerApplyDataset(t *testing.T) {
	ds, _ := Generate("mnist", Options{Seed: 1, MaxTrain: 100, MaxTest: 40, MaxVal: 20})
	st, err := FitStandardizer(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Test.X.At(0, 300)
	st.ApplyDataset(ds)
	// Train means ~0 per feature.
	var mean float64
	for i := 0; i < ds.Train.Len(); i++ {
		mean += ds.Train.X.At(i, 300)
	}
	if math.Abs(mean/float64(ds.Train.Len())) > 1e-9 {
		t.Fatalf("train feature not centered: %v", mean)
	}
	if ds.Test.X.At(0, 300) == before {
		t.Fatal("test split not transformed")
	}
}

func TestAugmentShift(t *testing.T) {
	// 3x3 image with a single bright pixel at (0,0); shift by (1,1).
	s := &Split{
		X: tensor.FromRows([][]float64{{1, 0, 0, 0, 0, 0, 0, 0, 0}}),
		Y: []int{1},
	}
	out, err := AugmentShift(s, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Y[0] != 1 || out.Y[1] != 1 {
		t.Fatalf("augmented split %d samples, labels %v", out.Len(), out.Y)
	}
	// Original preserved.
	if out.X.At(0, 0) != 1 {
		t.Fatal("original row changed")
	}
	// Shifted copy has the pixel at (1,1) = flat index 4.
	if out.X.At(1, 4) != 1 || out.X.At(1, 0) != 0 {
		t.Fatalf("shifted row = %v", out.X.RowView(1))
	}
	if _, err := AugmentShift(s, 4, 1, 1); err == nil {
		t.Fatal("wrong side must error")
	}
}
