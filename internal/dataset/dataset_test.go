package dataset

import (
	"math"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestSpecsMatchPaper(t *testing.T) {
	specs := Specs()
	if len(specs) != 6 {
		t.Fatalf("want 6 benchmarks, got %d", len(specs))
	}
	cases := []struct {
		name             string
		dim, classes     int
		train, test, val int
	}{
		{"mnist", 784, 10, 55000, 10000, 5000},
		{"kmnist", 784, 10, 55000, 10000, 5000},
		{"fashion", 784, 10, 55000, 10000, 5000},
		{"emnist", 784, 26, 104800, 20000, 20000},
		{"norb", 9216, 5, 22300, 24300, 2000},
		{"cifar10", 3072, 10, 45000, 10000, 5000},
	}
	for _, c := range cases {
		s, err := SpecByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Dim() != c.dim || s.Classes != c.classes {
			t.Fatalf("%s geometry: dim=%d classes=%d", c.name, s.Dim(), s.Classes)
		}
		if s.Train != c.train || s.Test != c.test || s.Val != c.val {
			t.Fatalf("%s split: %d/%d/%d", c.name, s.Train, s.Test, s.Val)
		}
	}
	if _, err := SpecByName("imagenet"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func smallOpts(seed uint64) Options {
	return Options{Seed: seed, MaxTrain: 300, MaxTest: 120, MaxVal: 60}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	a, err := Generate("mnist", smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Train.Len() != 300 || a.Test.Len() != 120 || a.Val.Len() != 60 {
		t.Fatalf("split sizes %d/%d/%d", a.Train.Len(), a.Test.Len(), a.Val.Len())
	}
	if a.Train.X.Cols != 784 {
		t.Fatal("dim wrong")
	}
	b, _ := Generate("mnist", smallOpts(1))
	if !tensor.Equal(a.Train.X, b.Train.X) {
		t.Fatal("same seed must give identical data")
	}
	c, _ := Generate("mnist", smallOpts(2))
	if tensor.Equal(a.Train.X, c.Train.X) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateDatasetsDiffer(t *testing.T) {
	// Same seed, different benchmarks must not produce identical data.
	a, _ := Generate("mnist", smallOpts(1))
	b, _ := Generate("kmnist", smallOpts(1))
	if tensor.Equal(a.Train.X, b.Train.X) {
		t.Fatal("mnist and kmnist must differ")
	}
}

func TestPixelRangeAndLabels(t *testing.T) {
	ds, _ := Generate("cifar10", smallOpts(3))
	for _, v := range ds.Train.X.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
	for _, y := range ds.Train.Y {
		if y < 0 || y >= 10 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestClassBalance(t *testing.T) {
	ds, _ := Generate("mnist", Options{Seed: 4, MaxTrain: 1000, MaxTest: 10, MaxVal: 10})
	counts := make([]int, 10)
	for _, y := range ds.Train.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n < 60 || n > 140 {
			t.Fatalf("class %d has %d/1000 samples (want ~100)", c, n)
		}
	}
}

// The task must be learnable: classes should be much closer to their own
// class centroid than to other centroids on average.
func TestClassSeparability(t *testing.T) {
	ds, _ := Generate("mnist", Options{Seed: 5, MaxTrain: 600, MaxTest: 10, MaxVal: 10})
	dim := ds.Train.X.Cols
	cent := tensor.New(10, dim)
	counts := make([]float64, 10)
	for i := 0; i < ds.Train.Len(); i++ {
		tensor.Axpy(1, ds.Train.X.RowView(i), cent.RowView(ds.Train.Y[i]))
		counts[ds.Train.Y[i]]++
	}
	for c := 0; c < 10; c++ {
		if counts[c] > 0 {
			tensor.ScaleVec(1/counts[c], cent.RowView(c))
		}
	}
	correct := 0
	for i := 0; i < ds.Train.Len(); i++ {
		row := ds.Train.X.RowView(i)
		best, bc := math.Inf(1), -1
		for c := 0; c < 10; c++ {
			var d float64
			cr := cent.RowView(c)
			for j := range row {
				d += (row[j] - cr[j]) * (row[j] - cr[j])
			}
			if d < best {
				best, bc = d, c
			}
		}
		if bc == ds.Train.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Train.Len())
	if acc < 0.6 {
		t.Fatalf("nearest-centroid accuracy %v — dataset not learnable", acc)
	}
	if acc > 0.999 {
		t.Fatalf("nearest-centroid accuracy %v — dataset trivially separable", acc)
	}
}

func TestDifficultyOrdering(t *testing.T) {
	// CIFAR-10 (hardest per Table 2) should have lower nearest-centroid
	// accuracy than MNIST.
	nc := func(name string) float64 {
		ds, _ := Generate(name, Options{Seed: 6, MaxTrain: 600, MaxTest: 10, MaxVal: 10})
		k := ds.Spec.Classes
		dim := ds.Train.X.Cols
		cent := tensor.New(k, dim)
		counts := make([]float64, k)
		for i := 0; i < ds.Train.Len(); i++ {
			tensor.Axpy(1, ds.Train.X.RowView(i), cent.RowView(ds.Train.Y[i]))
			counts[ds.Train.Y[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				tensor.ScaleVec(1/counts[c], cent.RowView(c))
			}
		}
		correct := 0
		for i := 0; i < ds.Train.Len(); i++ {
			row := ds.Train.X.RowView(i)
			best, bc := math.Inf(1), -1
			for c := 0; c < k; c++ {
				var d float64
				cr := cent.RowView(c)
				for j := range row {
					d += (row[j] - cr[j]) * (row[j] - cr[j])
				}
				if d < best {
					best, bc = d, c
				}
			}
			if bc == ds.Train.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(ds.Train.Len())
	}
	if nc("cifar10") >= nc("mnist") {
		t.Fatal("cifar10 should be harder than mnist")
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Generate("mnist", smallOpts(7))
	sub := ds.Train.Subset([]int{0, 5, 10})
	if sub.Len() != 3 {
		t.Fatal("subset length")
	}
	for i, j := range []int{0, 5, 10} {
		if sub.Y[i] != ds.Train.Y[j] {
			t.Fatal("subset labels wrong")
		}
		for k, v := range sub.X.RowView(i) {
			if v != ds.Train.X.At(j, k) {
				t.Fatal("subset rows wrong")
			}
		}
	}
}

func TestBatcherCoversEpochExactly(t *testing.T) {
	ds, _ := Generate("mnist", Options{Seed: 8, MaxTrain: 103, MaxTest: 10, MaxVal: 10})
	b := NewBatcher(ds.Train, 20, rng.New(1))
	if b.NumBatches() != 6 {
		t.Fatalf("NumBatches = %d", b.NumBatches())
	}
	seen := 0
	batches := 0
	for {
		x, y := b.Next()
		if x == nil {
			break
		}
		if x.Rows != len(y) {
			t.Fatal("batch shape mismatch")
		}
		seen += x.Rows
		batches++
	}
	if seen != 103 || batches != 6 {
		t.Fatalf("epoch covered %d samples in %d batches", seen, batches)
	}
	// After Reset a new epoch runs.
	b.Reset()
	x, _ := b.Next()
	if x == nil || x.Rows != 20 {
		t.Fatal("Reset did not restart epoch")
	}
}

func TestBatcherShufflesBetweenEpochs(t *testing.T) {
	ds, _ := Generate("mnist", Options{Seed: 9, MaxTrain: 64, MaxTest: 10, MaxVal: 10})
	b := NewBatcher(ds.Train, 64, rng.New(2))
	x1, _ := b.Next()
	first := x1.Clone()
	b.Reset()
	x2, _ := b.Next()
	if tensor.Equal(first, x2) {
		t.Fatal("epochs should be differently shuffled")
	}
}

func TestBatcherStochasticSetting(t *testing.T) {
	ds, _ := Generate("mnist", Options{Seed: 10, MaxTrain: 10, MaxTest: 10, MaxVal: 10})
	b := NewBatcher(ds.Train, 1, rng.New(3))
	n := 0
	for {
		x, y := b.Next()
		if x == nil {
			break
		}
		if x.Rows != 1 || len(y) != 1 {
			t.Fatal("batch size 1 violated")
		}
		n++
	}
	if n != 10 {
		t.Fatalf("SGD epoch saw %d samples", n)
	}
}

func TestBatcherPanicsOnBadSize(t *testing.T) {
	ds, _ := Generate("mnist", smallOpts(11))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatcher(ds.Train, 0, rng.New(1))
}
