package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"samplednn/internal/atomicfile"
	"samplednn/internal/tensor"
)

// IDX is the binary format of the original MNIST distribution (and its
// K-MNIST / Fashion-MNIST / EMNIST siblings). This reader/writer lets the
// real benchmark files replace the synthetic generators when present: load
// a (images, labels) pair with LoadIDXPair and slot the result into a
// Dataset.
//
// Layout: a 4-byte magic (0x00000800 | dtype<<8 | ndims... actually
// 0, 0, dtype, ndims), then ndims big-endian uint32 sizes, then the data.
// Only dtype 0x08 (unsigned byte) is supported, matching the MNIST files.

const (
	idxTypeUint8 = 0x08
)

// WriteIDXImages writes n images of h x w bytes (values 0..255) to path,
// atomically (a crash leaves the old file or the new one, never a torn
// dataset). Rows of x are clamped from [0,1] floats to bytes.
func WriteIDXImages(path string, x *tensor.Matrix, h, w int) error {
	if x.Cols != h*w {
		return fmt.Errorf("dataset: matrix has %d cols, want %d", x.Cols, h*w)
	}
	return atomicfile.WriteFile(path, func(out io.Writer) error {
		header := []uint32{uint32(x.Rows), uint32(h), uint32(w)}
		if err := writeIDXHeader(out, 3, header); err != nil {
			return err
		}
		buf := make([]byte, x.Cols)
		for i := 0; i < x.Rows; i++ {
			row := x.RowView(i)
			for j, v := range row {
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				buf[j] = byte(v*255 + 0.5)
			}
			if _, err := out.Write(buf); err != nil {
				return err
			}
		}
		return nil
	})
}

// WriteIDXLabels atomically writes labels (each 0..255) to path.
func WriteIDXLabels(path string, y []int) error {
	return atomicfile.WriteFile(path, func(out io.Writer) error {
		if err := writeIDXHeader(out, 1, []uint32{uint32(len(y))}); err != nil {
			return err
		}
		buf := make([]byte, 0, len(y))
		for _, v := range y {
			if v < 0 || v > 255 {
				return fmt.Errorf("dataset: label %d out of byte range", v)
			}
			buf = append(buf, byte(v))
		}
		_, err := out.Write(buf)
		return err
	})
}

func writeIDXHeader(w io.Writer, ndims int, sizes []uint32) error {
	magic := []byte{0, 0, idxTypeUint8, byte(ndims)}
	if _, err := w.Write(magic); err != nil {
		return err
	}
	for _, s := range sizes {
		if err := binary.Write(w, binary.BigEndian, s); err != nil {
			return err
		}
	}
	return nil
}

// ReadIDXImages reads an image file, returning one row per image with
// pixel values scaled to [0, 1].
func ReadIDXImages(path string) (*tensor.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	sizes, err := readIDXHeader(br, 3)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	n, h, w := int(sizes[0]), int(sizes[1]), int(sizes[2])
	x := tensor.New(n, h*w)
	buf := make([]byte, h*w)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: %s: truncated at image %d: %w", path, i, err)
		}
		row := x.RowView(i)
		for j, b := range buf {
			row[j] = float64(b) / 255
		}
	}
	return x, nil
}

// ReadIDXLabels reads a label file.
func ReadIDXLabels(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	sizes, err := readIDXHeader(br, 1)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	n := int(sizes[0])
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("dataset: %s: truncated labels: %w", path, err)
	}
	y := make([]int, n)
	for i, b := range buf {
		y[i] = int(b)
	}
	return y, nil
}

func readIDXHeader(r io.Reader, wantDims int) ([]uint32, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, fmt.Errorf("bad magic %x", magic)
	}
	if magic[2] != idxTypeUint8 {
		return nil, fmt.Errorf("unsupported dtype 0x%02x (only uint8 supported)", magic[2])
	}
	if int(magic[3]) != wantDims {
		return nil, fmt.Errorf("got %d dims, want %d", magic[3], wantDims)
	}
	sizes := make([]uint32, wantDims)
	for i := range sizes {
		if err := binary.Read(r, binary.BigEndian, &sizes[i]); err != nil {
			return nil, fmt.Errorf("reading size %d: %w", i, err)
		}
	}
	return sizes, nil
}

// LoadIDXPair loads an (images, labels) pair into a Split, validating
// that the counts agree.
func LoadIDXPair(imagesPath, labelsPath string) (*Split, error) {
	x, err := ReadIDXImages(imagesPath)
	if err != nil {
		return nil, err
	}
	y, err := ReadIDXLabels(labelsPath)
	if err != nil {
		return nil, err
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("dataset: %d images but %d labels", x.Rows, len(y))
	}
	return &Split{X: x, Y: y}, nil
}
