package dataset

import (
	"fmt"
	"math"

	"samplednn/internal/tensor"
)

// Standardizer centers and scales features to zero mean and unit
// variance, fit on the training split and applied to all splits — the
// conventional preprocessing for MLP training on raw pixels.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer estimates per-feature mean and standard deviation from
// a split. Features with zero variance get Std 1 so they pass through
// centered.
func FitStandardizer(s *Split) (*Standardizer, error) {
	if s == nil || s.Len() == 0 {
		return nil, fmt.Errorf("dataset: cannot fit standardizer on an empty split")
	}
	d := s.X.Cols
	st := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	n := float64(s.Len())
	for i := 0; i < s.Len(); i++ {
		row := s.X.RowView(i)
		for j, v := range row {
			st.Mean[j] += v
		}
	}
	for j := range st.Mean {
		st.Mean[j] /= n
	}
	for i := 0; i < s.Len(); i++ {
		row := s.X.RowView(i)
		for j, v := range row {
			dlt := v - st.Mean[j]
			st.Std[j] += dlt * dlt
		}
	}
	for j := range st.Std {
		st.Std[j] = math.Sqrt(st.Std[j] / n)
		if st.Std[j] == 0 { //lint:ignore float-equality exact-zero std flags a constant feature; replaced by 1 to avoid division by zero
			st.Std[j] = 1
		}
	}
	return st, nil
}

// Apply standardizes x in place.
func (st *Standardizer) Apply(x *tensor.Matrix) {
	if x.Cols != len(st.Mean) {
		panic(fmt.Sprintf("dataset: standardizer fit on %d features, got %d", len(st.Mean), x.Cols))
	}
	for i := 0; i < x.Rows; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = (row[j] - st.Mean[j]) / st.Std[j]
		}
	}
}

// ApplyDataset standardizes every split of ds in place.
func (st *Standardizer) ApplyDataset(ds *Dataset) {
	for _, s := range []*Split{ds.Train, ds.Test, ds.Val} {
		if s != nil {
			st.Apply(s.X)
		}
	}
}

// AugmentShift returns a copy of the split with each image also present
// shifted by (dx, dy) pixels (zero fill), doubling the sample count —
// the light geometric augmentation image benchmarks conventionally use.
// The split's images must be single-channel side x side.
func AugmentShift(s *Split, side, dx, dy int) (*Split, error) {
	if s.X.Cols != side*side {
		return nil, fmt.Errorf("dataset: augment expects %d features, got %d", side*side, s.X.Cols)
	}
	out := &Split{X: tensor.New(2*s.Len(), s.X.Cols), Y: make([]int, 2*s.Len())}
	for i := 0; i < s.Len(); i++ {
		copy(out.X.RowView(i), s.X.RowView(i))
		out.Y[i] = s.Y[i]

		src := s.X.RowView(i)
		dst := out.X.RowView(s.Len() + i)
		out.Y[s.Len()+i] = s.Y[i]
		for y := 0; y < side; y++ {
			sy := y - dy
			if sy < 0 || sy >= side {
				continue
			}
			for x := 0; x < side; x++ {
				sx := x - dx
				if sx < 0 || sx >= side {
					continue
				}
				dst[y*side+x] = src[sy*side+sx]
			}
		}
	}
	return out, nil
}
