// Package dataset provides the six benchmark datasets of the paper's §8.2
// as seeded synthetic generators, plus an IDX (MNIST-format) reader and
// writer so the real files drop in when available.
//
// The paper evaluates on MNIST, Kuzushiji-MNIST, Fashion-MNIST,
// EMNIST-Letters, NORB, and CIFAR-10 — all external downloads, which this
// offline reproduction replaces with generators that preserve the
// properties the evaluation depends on: identical input dimensionality,
// class counts, and train/test/validation splits; class-conditional
// structure that is learnable but not noise-free; within-class
// multimodality (sub-prototypes) and smooth image-like correlations so
// deeper/nonlinear models have headroom over linear ones. Every dataset
// is deterministic given its seed.
package dataset

import (
	"fmt"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Spec describes a benchmark's geometry and the paper's split sizes.
type Spec struct {
	// Name is the benchmark identifier ("mnist", "cifar10", …).
	Name string
	// Width, Height, Channels give the image geometry; Dim() is their
	// product.
	Width, Height, Channels int
	// Classes is the label count.
	Classes int
	// Train, Test, Val are the paper's split sizes (§8.2).
	Train, Test, Val int
	// Difficulty in (0, 1] scales label noise and overlap; higher is
	// harder. Tuned per dataset so relative accuracies resemble the
	// paper's Table 2 ordering (e.g. CIFAR-10 hardest).
	Difficulty float64
}

// Dim returns the flattened input dimensionality.
func (s Spec) Dim() int { return s.Width * s.Height * s.Channels }

// Specs returns the paper's six benchmarks keyed by name.
func Specs() map[string]Spec {
	return map[string]Spec{
		"mnist":   {Name: "mnist", Width: 28, Height: 28, Channels: 1, Classes: 10, Train: 55000, Test: 10000, Val: 5000, Difficulty: 0.25},
		"kmnist":  {Name: "kmnist", Width: 28, Height: 28, Channels: 1, Classes: 10, Train: 55000, Test: 10000, Val: 5000, Difficulty: 0.45},
		"fashion": {Name: "fashion", Width: 28, Height: 28, Channels: 1, Classes: 10, Train: 55000, Test: 10000, Val: 5000, Difficulty: 0.4},
		"emnist":  {Name: "emnist", Width: 28, Height: 28, Channels: 1, Classes: 26, Train: 104800, Test: 20000, Val: 20000, Difficulty: 0.45},
		"norb":    {Name: "norb", Width: 96, Height: 96, Channels: 1, Classes: 5, Train: 22300, Test: 24300, Val: 2000, Difficulty: 0.35},
		"cifar10": {Name: "cifar10", Width: 32, Height: 32, Channels: 3, Classes: 10, Train: 45000, Test: 10000, Val: 5000, Difficulty: 0.75},
	}
}

// SpecByName looks up one of the paper's benchmarks.
func SpecByName(name string) (Spec, error) {
	s, ok := Specs()[name]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown benchmark %q", name)
	}
	return s, nil
}

// Split is one partition of a dataset: a row-per-sample design matrix and
// aligned integer labels.
type Split struct {
	X *tensor.Matrix
	Y []int
}

// Len returns the number of samples.
func (s *Split) Len() int { return len(s.Y) }

// Subset returns a view-copy of the rows at the given indices.
func (s *Split) Subset(idx []int) *Split {
	out := &Split{X: tensor.New(len(idx), s.X.Cols), Y: make([]int, len(idx))}
	for i, j := range idx {
		copy(out.X.RowView(i), s.X.RowView(j))
		out.Y[i] = s.Y[j]
	}
	return out
}

// Dataset bundles the three partitions of a benchmark.
type Dataset struct {
	Spec  Spec
	Train *Split
	Test  *Split
	Val   *Split
}

// Options scales a benchmark for constrained machines without changing
// its geometry or class structure.
type Options struct {
	// Seed drives every random choice; the same seed reproduces the same
	// dataset bit-for-bit.
	Seed uint64
	// MaxTrain/MaxTest/MaxVal cap the split sizes; zero keeps the
	// paper's sizes.
	MaxTrain, MaxTest, MaxVal int
}

func capSize(paper, max int) int {
	if max > 0 && max < paper {
		return max
	}
	return paper
}

// Generate synthesizes the named benchmark. See the package comment for
// what the generator preserves relative to the real data.
func Generate(name string, opts Options) (*Dataset, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	return GenerateFromSpec(spec, opts), nil
}

// GenerateFromSpec synthesizes a dataset for an arbitrary spec; tests use
// it to create miniature benchmarks.
func GenerateFromSpec(spec Spec, opts Options) *Dataset {
	g := rng.New(opts.Seed ^ hashName(spec.Name))
	gen := newGenerator(spec, g)
	ds := &Dataset{Spec: spec}
	ds.Train = gen.split(capSize(spec.Train, opts.MaxTrain), g.Split())
	ds.Test = gen.split(capSize(spec.Test, opts.MaxTest), g.Split())
	ds.Val = gen.split(capSize(spec.Val, opts.MaxVal), g.Split())
	return ds
}

func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// bump is one Gaussian intensity blob on the image grid.
type bump struct {
	cx, cy, sigma float64
	amp           [3]float64 // per-channel amplitude (index < Channels used)
}

// generator holds the class-conditional structure: per class, a few
// sub-prototypes (modes), each a set of bumps.
type generator struct {
	spec  Spec
	modes [][][]bump // [class][mode][bump]
}

const modesPerClass = 3

func newGenerator(spec Spec, g *rng.RNG) *generator {
	gen := &generator{spec: spec}
	w, h := float64(spec.Width), float64(spec.Height)
	nBumps := 4 + spec.Width/16 // a few more blobs for larger canvases
	gen.modes = make([][][]bump, spec.Classes)
	for c := range gen.modes {
		gen.modes[c] = make([][]bump, modesPerClass)
		for m := range gen.modes[c] {
			bumps := make([]bump, nBumps)
			for bi := range bumps {
				b := bump{
					cx:    (0.15 + 0.7*g.Float64()) * w,
					cy:    (0.15 + 0.7*g.Float64()) * h,
					sigma: (0.06 + 0.1*g.Float64()) * w,
				}
				for ch := 0; ch < spec.Channels; ch++ {
					b.amp[ch] = 0.4 + 0.6*g.Float64()
				}
				bumps[bi] = b
			}
			gen.modes[c][m] = bumps
		}
	}
	return gen
}

// split renders n labelled samples with balanced classes.
func (gen *generator) split(n int, g *rng.RNG) *Split {
	spec := gen.spec
	s := &Split{X: tensor.New(n, spec.Dim()), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		c := i % spec.Classes
		// Occasionally mislabel to emulate Bayes error; heavier for
		// harder datasets.
		label := c
		if g.Float64() < 0.05*spec.Difficulty {
			label = g.IntN(spec.Classes)
		}
		s.Y[i] = label
		gen.render(s.X.RowView(i), c, g)
	}
	// Interleaved classes are already shuffled label-wise, but shuffle
	// rows so batches are not periodic.
	perm := g.Perm(n)
	shuffled := &Split{X: tensor.New(n, spec.Dim()), Y: make([]int, n)}
	for i, j := range perm {
		copy(shuffled.X.RowView(i), s.X.RowView(j))
		shuffled.Y[i] = s.Y[j]
	}
	return shuffled
}

// render draws one sample of class c into dst (len Dim).
func (gen *generator) render(dst []float64, c int, g *rng.RNG) {
	spec := gen.spec
	mode := gen.modes[c][g.IntN(modesPerClass)]
	jx := g.NormFloat64() * spec.Difficulty * float64(spec.Width) * 0.06
	jy := g.NormFloat64() * spec.Difficulty * float64(spec.Height) * 0.06
	scale := 1 + 0.15*spec.Difficulty*g.NormFloat64()
	plane := spec.Width * spec.Height
	for i := range dst {
		dst[i] = 0
	}
	for _, b := range mode {
		cx, cy := b.cx+jx, b.cy+jy
		inv := 1 / (2 * b.sigma * b.sigma)
		// Only render within 3 sigma for speed.
		r := 3 * b.sigma
		x0, x1 := clampInt(int(cx-r), 0, spec.Width-1), clampInt(int(cx+r), 0, spec.Width-1)
		y0, y1 := clampInt(int(cy-r), 0, spec.Height-1), clampInt(int(cy+r), 0, spec.Height-1)
		for y := y0; y <= y1; y++ {
			dy := float64(y) - cy
			for x := x0; x <= x1; x++ {
				dx := float64(x) - cx
				v := expFast(-(dx*dx + dy*dy) * inv)
				for ch := 0; ch < spec.Channels; ch++ {
					dst[ch*plane+y*spec.Width+x] += scale * b.amp[ch] * v
				}
			}
		}
	}
	noise := 0.08 + 0.12*spec.Difficulty
	for i := range dst {
		dst[i] += noise * g.NormFloat64()
		if dst[i] < 0 {
			dst[i] = 0
		} else if dst[i] > 1 {
			dst[i] = 1
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// expFast is exp with the argument clamped to the useful range; rendering
// only evaluates it for x in [-4.5, 0].
func expFast(x float64) float64 {
	if x < -20 {
		return 0
	}
	// 6th-order Taylor around 0 is inaccurate at -4; use a (1+x/n)^n
	// approximation with n=64, accurate to ~1% on [-5, 0] — plenty for
	// rendering intensity blobs.
	v := 1 + x/64
	if v < 0 {
		return 0
	}
	v *= v
	v *= v
	v *= v
	v *= v
	v *= v
	v *= v
	return v
}
