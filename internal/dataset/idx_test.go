package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"samplednn/internal/tensor"
)

func TestIDXRoundtrip(t *testing.T) {
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "images.idx")
	lblPath := filepath.Join(dir, "labels.idx")

	x := tensor.New(5, 4) // 2x2 "images"
	for i := range x.Data {
		x.Data[i] = float64(i%256) / 255
	}
	y := []int{0, 1, 2, 3, 9}

	if err := WriteIDXImages(imgPath, x, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(lblPath, y); err != nil {
		t.Fatal(err)
	}

	split, err := LoadIDXPair(imgPath, lblPath)
	if err != nil {
		t.Fatal(err)
	}
	if split.Len() != 5 || split.X.Cols != 4 {
		t.Fatalf("loaded %dx%d", split.X.Rows, split.X.Cols)
	}
	for i := range y {
		if split.Y[i] != y[i] {
			t.Fatal("labels roundtrip failed")
		}
	}
	// Byte quantization: equal within 1/255.
	if !tensor.EqualApprox(split.X, x, 1.0/255+1e-9) {
		t.Fatal("image roundtrip exceeded quantization error")
	}
}

func TestIDXWriteErrors(t *testing.T) {
	dir := t.TempDir()
	x := tensor.New(2, 4)
	if err := WriteIDXImages(filepath.Join(dir, "x.idx"), x, 3, 3); err == nil {
		t.Fatal("mismatched geometry must error")
	}
	if err := WriteIDXLabels(filepath.Join(dir, "y.idx"), []int{300}); err == nil {
		t.Fatal("out-of-byte-range label must error")
	}
}

func TestIDXReadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadIDXImages(filepath.Join(dir, "missing.idx")); err == nil {
		t.Fatal("missing file must error")
	}

	// Corrupt magic.
	bad := filepath.Join(dir, "bad.idx")
	if err := os.WriteFile(bad, []byte{9, 9, 9, 9, 0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDXImages(bad); err == nil {
		t.Fatal("bad magic must error")
	}

	// Wrong dimension count: labels file read as images.
	lbl := filepath.Join(dir, "labels.idx")
	if err := WriteIDXLabels(lbl, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDXImages(lbl); err == nil {
		t.Fatal("dims mismatch must error")
	}

	// Truncated image payload.
	trunc := filepath.Join(dir, "trunc.idx")
	if err := os.WriteFile(trunc, []byte{0, 0, 0x08, 3, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0, 2, 1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDXImages(trunc); err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestLoadIDXPairCountMismatch(t *testing.T) {
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "x.idx")
	lblPath := filepath.Join(dir, "y.idx")
	x := tensor.New(3, 4)
	if err := WriteIDXImages(imgPath, x, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(lblPath, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDXPair(imgPath, lblPath); err == nil {
		t.Fatal("count mismatch must error")
	}
}

func TestIDXClampsPixels(t *testing.T) {
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "clamp.idx")
	x := tensor.FromRows([][]float64{{-0.5, 0.5, 1.5, 1}})
	if err := WriteIDXImages(imgPath, x, 2, 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDXImages(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 0 || got.At(0, 2) != 1 {
		t.Fatalf("clamping failed: %v", got)
	}
}
