package conv

import (
	"math"
	"testing"

	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestMaxPool2IndexedMatchesPlain(t *testing.T) {
	g := rng.New(1)
	src := make([]float64, 2*6*6)
	g.GaussianSlice(src, 0, 1)
	plain, m1 := MaxPool2(src, 2, 6)
	indexed, m2, idx := MaxPool2Indexed(src, 2, 6)
	if m1 != m2 || len(plain) != len(indexed) {
		t.Fatal("shape mismatch")
	}
	for i := range plain {
		if plain[i] != indexed[i] {
			t.Fatal("values differ")
		}
		if src[idx[i]] != indexed[i] {
			t.Fatalf("index %d does not point at the max", i)
		}
	}
}

func TestMaxPool2BackwardRoutesToArgmax(t *testing.T) {
	src := []float64{
		1, 2,
		3, 4,
	}
	_, _, idx := MaxPool2Indexed(src, 1, 2)
	d := MaxPool2Backward([]float64{7}, idx, 4)
	if d[3] != 7 || d[0] != 0 || d[1] != 0 || d[2] != 0 {
		t.Fatalf("pool backward = %v", d)
	}
}

func buildTinyConvNet(t *testing.T, seed uint64) *ConvNet {
	t.Helper()
	cn, err := NewConvNet(8, 1, []int{3}, []int{8}, 2, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return cn
}

func TestConvNetConstruction(t *testing.T) {
	cn := buildTinyConvNet(t, 1)
	// 8 → conv3 → 6 → pool → 3; features 3*3*3 = 27.
	if cn.Head.Layers[0].FanIn() != 27 {
		t.Fatalf("head fan-in %d", cn.Head.Layers[0].FanIn())
	}
	if cn.NumParams() <= cn.Head.NumParams() {
		t.Fatal("NumParams must include conv blocks")
	}
	if _, err := NewConvNet(4, 1, []int{3, 3, 3}, nil, 2, rng.New(2)); err == nil {
		t.Fatal("too-deep net for tiny image must error")
	}
	if _, err := NewConvNet(8, 1, nil, nil, 2, rng.New(3)); err == nil {
		t.Fatal("no blocks must error")
	}
}

// Full numerical gradient check through conv, ReLU, pooling, and the
// head — the strongest correctness statement for the CNN extension.
func TestConvNetGradientsNumerical(t *testing.T) {
	cn := buildTinyConvNet(t, 4)
	g := rng.New(5)
	x := tensor.New(2, 64)
	g.GaussianSlice(x.Data, 0, 1)
	y := []int{0, 1}

	// Collect analytic gradients via a probe optimizer that records them.
	rec := &recordingOptimizer{}
	cn.Step(x, y, rec)

	const h = 1e-6
	check := func(name string, params []float64, grads []float64) {
		t.Helper()
		for i := range params {
			orig := params[i]
			params[i] = orig + h
			lp := cn.Loss(x, y)
			params[i] = orig - h
			lm := cn.Loss(x, y)
			params[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-grads[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v, numerical %v", name, i, grads[i], num)
			}
		}
	}
	check("convW", cn.Blocks[0].W.Data, rec.byID[0].W.Data)
	check("convB", cn.Blocks[0].B, rec.byID[0].B)
	check("headW0", cn.Head.Layers[0].W.Data, rec.byID[1000].W.Data)
	check("headB0", cn.Head.Layers[0].B, rec.byID[1000].B)
}

// recordingOptimizer captures gradients without changing parameters.
type recordingOptimizer struct {
	byID map[int]nn.Grads
}

func (r *recordingOptimizer) Name() string { return "recording" }
func (r *recordingOptimizer) Step(id int, _ *tensor.Matrix, _ []float64, g nn.Grads) {
	if r.byID == nil {
		r.byID = map[int]nn.Grads{}
	}
	r.byID[id] = nn.Grads{W: g.W.Clone(), B: append([]float64(nil), g.B...)}
}
func (r *recordingOptimizer) StepCols(id int, w *tensor.Matrix, b []float64, g nn.Grads, _ []int) {
	r.Step(id, w, b, g)
}
func (r *recordingOptimizer) Reset() {}

// blobTask builds a two-class spatial task only convolution-like features
// solve robustly: a bright block in opposite corners.
func blobTask(g *rng.RNG, n, side int) (*tensor.Matrix, []int) {
	x := tensor.New(n, side*side)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.1 * g.Float64()
		}
		c := i % 2
		y[i] = c
		off := 0
		if c == 1 {
			off = (side - 3) * (side + 1)
		}
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				row[off+dy*side+dx] = 1
			}
		}
	}
	return x, y
}

func TestConvNetLearnsSpatialTask(t *testing.T) {
	for _, sampleK := range []int{0, 32} {
		cn := buildTinyConvNet(t, 6)
		if sampleK > 0 {
			cn.SetSampleK(sampleK, rng.New(7))
		}
		g := rng.New(8)
		x, y := blobTask(g, 40, 8)
		optim := opt.NewSGD(0.1)
		var loss float64
		for iter := 0; iter < 150; iter++ {
			loss = cn.Step(x, y, optim)
			if math.IsNaN(loss) {
				t.Fatalf("sampleK=%d diverged", sampleK)
			}
		}
		if acc := cn.Accuracy(x, y); acc < 0.95 {
			t.Fatalf("sampleK=%d: accuracy %v", sampleK, acc)
		}
	}
}

func TestConvNetPredictShapes(t *testing.T) {
	cn := buildTinyConvNet(t, 9)
	g := rng.New(10)
	x := tensor.New(5, 64)
	g.GaussianSlice(x.Data, 0, 1)
	p := cn.Predict(x)
	if len(p) != 5 {
		t.Fatalf("predictions %d", len(p))
	}
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("class %d out of range", v)
		}
	}
	if cn.Accuracy(tensor.New(0, 64), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}
