package conv

import (
	"math"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestIm2ColKnownLayout(t *testing.T) {
	// 3x3 single-channel image, 2x2 kernel → 4 patches of 4 taps.
	img := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	p := Im2Col(img, 1, 3, 2, nil)
	if p.Rows != 4 || p.Cols != 4 {
		t.Fatalf("patch shape %dx%d", p.Rows, p.Cols)
	}
	want := [][]float64{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for r := range want {
		for c := range want[r] {
			if p.At(r, c) != want[r][c] {
				t.Fatalf("patch[%d] = %v, want %v", r, p.RowView(r), want[r])
			}
		}
	}
}

func TestIm2ColMultiChannelOrdering(t *testing.T) {
	// Two 2x2 channels, 2x2 kernel → 1 patch: all of ch0 then all of ch1.
	img := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	p := Im2Col(img, 2, 2, 2, nil)
	if p.Rows != 1 || p.Cols != 8 {
		t.Fatalf("shape %dx%d", p.Rows, p.Cols)
	}
	want := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	for i, v := range want {
		if p.At(0, i) != v {
			t.Fatalf("patch = %v", p.RowView(0))
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for random x, y — the defining
	// adjoint property that makes the backward pass correct.
	g := rng.New(1)
	const inCh, n, k = 2, 5, 3
	m := n - k + 1
	x := make([]float64, inCh*n*n)
	g.GaussianSlice(x, 0, 1)
	y := tensor.New(m*m, inCh*k*k)
	g.GaussianSlice(y.Data, 0, 1)

	px := Im2Col(x, inCh, n, k, nil)
	var lhs float64
	for i := range px.Data {
		lhs += px.Data[i] * y.Data[i]
	}
	back := Col2Im(y, inCh, n, k, nil)
	var rhs float64
	for i := range x {
		rhs += x[i] * back[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestTrainableForwardMatchesDirectConv(t *testing.T) {
	// The im2col forward must agree with the direct (frozen) Conv2D
	// forward before its ReLU.
	g := rng.New(2)
	const inCh, outCh, k, n = 2, 3, 3, 6
	tc := NewTrainableConv2D(inCh, outCh, k, g)
	direct := &Conv2D{InChannels: inCh, OutChannels: outCh, KernelSize: k,
		Weights: tc.W.Clone(), Bias: append([]float64(nil), tc.B...)}

	x := tensor.New(2, inCh*n*n)
	g.GaussianSlice(x.Data, 0, 1)
	z := tc.Forward(x, n)

	m := n - k + 1
	for i := 0; i < 2; i++ {
		ref := direct.Forward(x.RowView(i), n) // includes ReLU
		row := z.RowView(i)
		for j, v := range row {
			relu := v
			if relu < 0 {
				relu = 0
			}
			if math.Abs(relu-ref[j]) > 1e-10 {
				t.Fatalf("image %d tap %d: im2col %v (relu %v) vs direct %v", i, j, v, relu, ref[j])
			}
		}
		_ = m
	}
}

// Exhaustive numerical gradient check of the exact backward pass.
func TestTrainableBackwardNumerical(t *testing.T) {
	g := rng.New(3)
	const inCh, outCh, k, n, batch = 1, 2, 2, 4, 2
	c := NewTrainableConv2D(inCh, outCh, k, g)
	x := tensor.New(batch, inCh*n*n)
	g.GaussianSlice(x.Data, 0, 1)

	// Loss = 0.5‖Z‖² so dL/dZ = Z.
	loss := func() float64 {
		z := c.Forward(x, n)
		var s float64
		for _, v := range z.Data {
			s += 0.5 * v * v
		}
		return s
	}
	z := c.Forward(x, n)
	gradW, gradB, dX := c.Backward(z.Clone())

	const h = 1e-6
	for i := range c.W.Data {
		orig := c.W.Data[i]
		c.W.Data[i] = orig + h
		lp := loss()
		c.W.Data[i] = orig - h
		lm := loss()
		c.W.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradW.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("gradW[%d]: analytic %v, numerical %v", i, gradW.Data[i], num)
		}
	}
	for i := range c.B {
		orig := c.B[i]
		c.B[i] = orig + h
		lp := loss()
		c.B[i] = orig - h
		lm := loss()
		c.B[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradB[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("gradB[%d]: analytic %v, numerical %v", i, gradB[i], num)
		}
	}
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dX.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("dX[%d]: analytic %v, numerical %v", i, dX.Data[i], num)
		}
	}
}

// The sampled weight gradient must be unbiased: its mean over many draws
// approaches the exact gradient.
func TestSampledGradWUnbiased(t *testing.T) {
	g := rng.New(4)
	const inCh, outCh, k, n, batch = 1, 2, 2, 5, 3
	c := NewTrainableConv2D(inCh, outCh, k, g)
	c.Rand = rng.New(5)
	x := tensor.New(batch, inCh*n*n)
	g.GaussianSlice(x.Data, 0, 1)
	z := c.Forward(x, n)
	dZ := z.Clone()

	c.SampleK = 0
	exactW, _, _ := c.Backward(dZ)

	c.SampleK = 8 // of batch*16 = 48 patch rows
	mean := tensor.New(exactW.Rows, exactW.Cols)
	const trials = 1500
	for i := 0; i < trials; i++ {
		gw, _, _ := c.Backward(dZ)
		tensor.AddInPlace(mean, gw)
	}
	mean.Scale(1.0 / trials)
	rel := tensor.Sub(mean, exactW).FrobeniusNorm() / exactW.FrobeniusNorm()
	if rel > 0.08 {
		t.Fatalf("sampled conv gradW biased: rel error of mean %v", rel)
	}
}

func TestSampledGradWNeedsRand(t *testing.T) {
	g := rng.New(6)
	c := NewTrainableConv2D(1, 1, 2, g)
	x := tensor.New(1, 9)
	z := c.Forward(x, 3)
	c.SampleK = 2
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rand")
		}
	}()
	c.Backward(z)
}

func TestTrainableConvLearnsFilter(t *testing.T) {
	// Recover a known target filter by gradient descent on the conv
	// layer alone — with and without gradient sampling.
	for _, sampleK := range []int{0, 24} {
		g := rng.New(7)
		const n = 6
		target := NewTrainableConv2D(1, 1, 3, g)
		student := NewTrainableConv2D(1, 1, 3, g.Split())
		student.SampleK = sampleK
		student.Rand = rng.New(8)

		x := tensor.New(8, n*n)
		g.GaussianSlice(x.Data, 0, 1)
		want := target.Forward(x, n)

		for iter := 0; iter < 400; iter++ {
			z := student.Forward(x, n)
			dZ := tensor.Sub(z, want)
			gw, gb, _ := student.Backward(dZ)
			tensor.AxpyInPlace(student.W, -0.002, gw)
			tensor.Axpy(-0.002, gb, student.B)
		}
		diff := tensor.Sub(student.W, target.W).FrobeniusNorm() / target.W.FrobeniusNorm()
		if diff > 0.15 {
			t.Fatalf("sampleK=%d: filter not recovered, rel err %v", sampleK, diff)
		}
	}
}

func TestTrainableShapeChecks(t *testing.T) {
	g := rng.New(9)
	c := NewTrainableConv2D(1, 1, 3, g)
	t.Run("forward", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c.Forward(tensor.New(1, 8), 3)
	})
	t.Run("backward-before-forward", func(t *testing.T) {
		c2 := NewTrainableConv2D(1, 1, 2, g)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c2.Backward(tensor.New(1, 4))
	})
	if c.NumParams() != 9+1 {
		t.Fatalf("NumParams = %d", c.NumParams())
	}
}
