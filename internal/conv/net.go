package conv

import (
	"fmt"

	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// MaxPool2Indexed is MaxPool2 recording, for each pooled value, the flat
// source index it came from, so the pooling operation can be
// backpropagated.
func MaxPool2Indexed(src []float64, channels, n int) (out []float64, m int, idx []int32) {
	if len(src) != channels*n*n {
		panic(fmt.Sprintf("conv: pool input len %d, want %d", len(src), channels*n*n))
	}
	m = n / 2
	out = make([]float64, channels*m*m)
	idx = make([]int32, channels*m*m)
	for c := 0; c < channels; c++ {
		base := c * n * n
		for y := 0; y < m; y++ {
			for x := 0; x < m; x++ {
				best := base + 2*y*n + 2*x
				v := src[best]
				for _, cand := range [3]int{base + 2*y*n + 2*x + 1, base + (2*y+1)*n + 2*x, base + (2*y+1)*n + 2*x + 1} {
					if src[cand] > v {
						v, best = src[cand], cand
					}
				}
				o := c*m*m + y*m + x
				out[o] = v
				idx[o] = int32(best)
			}
		}
	}
	return out, m, idx
}

// MaxPool2Backward routes pooled-space gradients back to the recorded
// argmax positions.
func MaxPool2Backward(dOut []float64, idx []int32, srcLen int) []float64 {
	dSrc := make([]float64, srcLen)
	for i, d := range dOut {
		dSrc[idx[i]] += d
	}
	return dSrc
}

// ConvNet is an end-to-end trainable convolutional classifier: a stack of
// (TrainableConv2D → ReLU → 2x2 max pool) blocks feeding a fully
// connected head. It realizes the CNN extension the paper's §1 defers to
// the technical report: with convolution lowered to matrix products
// (im2col), the same Monte-Carlo row-sampling estimator used by MC-approx
// applies to the convolutional weight gradients — set SampleK on the
// blocks to enable it.
type ConvNet struct {
	InputSide, InputChannels int
	Blocks                   []*TrainableConv2D
	Head                     *nn.Network

	// per-block forward caches
	sides    []int            // input side of each block
	zs       []*tensor.Matrix // pre-activations per block
	poolIdx  [][]int32        // per image-major flattened batch: pooled index maps
	poolDims []int            // pooled side per block
}

// NewConvNet builds a trainable convolutional classifier.
// blockChannels lists each block's output channels (kernel 3); headHidden
// the fully connected hidden widths.
func NewConvNet(side, inCh int, blockChannels, headHidden []int, classes int, g *rng.RNG) (*ConvNet, error) {
	if len(blockChannels) == 0 {
		return nil, fmt.Errorf("conv: ConvNet needs at least one block")
	}
	cn := &ConvNet{InputSide: side, InputChannels: inCh}
	ch, n := inCh, side
	for _, outCh := range blockChannels {
		b := NewTrainableConv2D(ch, outCh, 3, g.Split())
		n = b.OutSide(n) / 2
		if n < 1 {
			return nil, fmt.Errorf("conv: input side %d too small for %d blocks", side, len(blockChannels))
		}
		cn.Blocks = append(cn.Blocks, b)
		ch = outCh
	}
	featDim := ch * n * n
	head, err := nn.NewNetwork(nn.Config{
		Inputs: featDim, Hidden: headHidden, Outputs: classes, Activation: "relu",
	}, g.Split())
	if err != nil {
		return nil, err
	}
	cn.Head = head
	return cn, nil
}

// SetSampleK enables Eq. 7 gradient sampling on every conv block.
func (cn *ConvNet) SetSampleK(k int, g *rng.RNG) {
	for _, b := range cn.Blocks {
		b.SampleK = k
		b.Rand = g.Split()
	}
}

// NumParams returns the total trainable parameter count.
func (cn *ConvNet) NumParams() int {
	total := cn.Head.NumParams()
	for _, b := range cn.Blocks {
		total += b.NumParams()
	}
	return total
}

// Forward maps a batch of flat images to logits, caching everything the
// backward pass needs.
func (cn *ConvNet) Forward(x *tensor.Matrix) *tensor.Matrix {
	batch := x.Rows
	cn.sides = cn.sides[:0]
	cn.zs = cn.zs[:0]
	cn.poolIdx = cn.poolIdx[:0]
	cn.poolDims = cn.poolDims[:0]

	cur := x
	n := cn.InputSide
	for _, b := range cn.Blocks {
		cn.sides = append(cn.sides, n)
		z := b.Forward(cur, n) // batch x outCh*m*m
		cn.zs = append(cn.zs, z)
		m := b.OutSide(n)
		pooledSide := m / 2
		pooled := tensor.New(batch, b.OutChannels*pooledSide*pooledSide)
		idxAll := make([]int32, batch*b.OutChannels*pooledSide*pooledSide)
		for i := 0; i < batch; i++ {
			// ReLU then pool, per image.
			zr := z.RowView(i)
			relu := make([]float64, len(zr))
			for k, v := range zr {
				if v > 0 {
					relu[k] = v
				}
			}
			out, _, idx := MaxPool2Indexed(relu, b.OutChannels, m)
			copy(pooled.RowView(i), out)
			copy(idxAll[i*len(idx):], idx)
		}
		cn.poolIdx = append(cn.poolIdx, idxAll)
		cn.poolDims = append(cn.poolDims, pooledSide)
		cur = pooled
		n = pooledSide
	}
	return cn.Head.Forward(cur)
}

// Loss evaluates mean NLL on a batch.
func (cn *ConvNet) Loss(x *tensor.Matrix, y []int) float64 {
	return cn.Head.Head.Loss(cn.Forward(x), y)
}

// Predict returns argmax classes.
func (cn *ConvNet) Predict(x *tensor.Matrix) []int {
	return cn.Head.Head.Predictions(cn.Forward(x))
}

// Accuracy measures classification accuracy on labelled data.
func (cn *ConvNet) Accuracy(x *tensor.Matrix, y []int) float64 {
	pred := cn.Predict(x)
	hits := 0
	for i, p := range pred {
		if p == y[i] {
			hits++
		}
	}
	if len(y) == 0 {
		return 0
	}
	return float64(hits) / float64(len(y))
}

// Step performs one full forward/backward/update pass using optim for
// every parameter group (head layers get ids 1000+i; blocks get ids i).
func (cn *ConvNet) Step(x *tensor.Matrix, y []int, optim opt.Optimizer) float64 {
	logits := cn.Forward(x)
	loss := cn.Head.Head.Loss(logits, y)

	headGrads, dFeat := cn.Head.BackwardWithInput(logits, y)
	for i, l := range cn.Head.Layers {
		optim.Step(1000+i, l.W, l.B, headGrads[i])
	}

	// Back through the blocks in reverse.
	d := dFeat // batch x (ch*pooledSide²) of the last block
	batch := x.Rows
	for bi := len(cn.Blocks) - 1; bi >= 0; bi-- {
		b := cn.Blocks[bi]
		m := b.OutSide(cn.sides[bi])
		pooledSide := cn.poolDims[bi]
		perImg := b.OutChannels * pooledSide * pooledSide
		srcLen := b.OutChannels * m * m

		// Pool backward then ReLU mask, per image, into dZ.
		dZ := tensor.New(batch, srcLen)
		z := cn.zs[bi]
		for i := 0; i < batch; i++ {
			idx := cn.poolIdx[bi][i*perImg : (i+1)*perImg]
			dSrc := MaxPool2Backward(d.RowView(i), idx, srcLen)
			zr := z.RowView(i)
			out := dZ.RowView(i)
			for k, v := range dSrc {
				if zr[k] > 0 { // ReLU gate
					out[k] = v
				}
			}
		}

		gradW, gradB, dX := b.Backward(dZ)
		optim.Step(bi, b.W, b.B, nn.Grads{W: gradW, B: gradB})
		d = dX
	}
	return loss
}
