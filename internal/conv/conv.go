// Package conv implements the convolutional setting of the paper's §8.4:
// a convolutional feature extractor in front of a fully connected
// classifier, with "the approximation limited to the classifier and the
// convolutional operations kept exact". The paper uses a ResNet-18
// backbone; this substrate provides the same experimental structure — a
// frozen, exactly-evaluated convolutional pipeline producing feature
// vectors that any core.Method then trains on — with a compact
// random-projection convolutional stack in place of pretrained ResNet
// weights (no pretrained weights exist offline; random convolutional
// features are the standard substitute and preserve the property under
// test, namely that only the classifier is approximated).
package conv

import (
	"fmt"
	"math"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Conv2D is a single exact 2-D convolution layer with ReLU: square
// kernels, stride 1, no padding, float64 throughout.
type Conv2D struct {
	// InChannels, OutChannels give the channel geometry.
	InChannels, OutChannels int
	// KernelSize is the square kernel side length.
	KernelSize int
	// Weights holds OutChannels x (InChannels*KernelSize*KernelSize)
	// filters; Bias one value per output channel.
	Weights *tensor.Matrix
	Bias    []float64
}

// NewConv2D draws a He-initialized convolution layer.
func NewConv2D(inCh, outCh, k int, g *rng.RNG) *Conv2D {
	if inCh <= 0 || outCh <= 0 || k <= 0 {
		panic(fmt.Sprintf("conv: bad geometry in=%d out=%d k=%d", inCh, outCh, k))
	}
	c := &Conv2D{
		InChannels: inCh, OutChannels: outCh, KernelSize: k,
		Weights: tensor.New(outCh, inCh*k*k),
		Bias:    make([]float64, outCh),
	}
	g.GaussianSlice(c.Weights.Data, 0, math.Sqrt(2/float64(inCh*k*k)))
	return c
}

// OutSize returns the spatial output size for an input of side n.
func (c *Conv2D) OutSize(n int) int { return n - c.KernelSize + 1 }

// Forward convolves one image (channel-major planes of side n) and
// applies ReLU. src has InChannels*n*n values; the result has
// OutChannels*m*m values with m = OutSize(n).
func (c *Conv2D) Forward(src []float64, n int) []float64 {
	if len(src) != c.InChannels*n*n {
		panic(fmt.Sprintf("conv: input len %d, want %d", len(src), c.InChannels*n*n))
	}
	m := c.OutSize(n)
	if m <= 0 {
		panic(fmt.Sprintf("conv: kernel %d too large for input side %d", c.KernelSize, n))
	}
	out := make([]float64, c.OutChannels*m*m)
	k := c.KernelSize
	for oc := 0; oc < c.OutChannels; oc++ {
		w := c.Weights.RowView(oc)
		for y := 0; y < m; y++ {
			for x := 0; x < m; x++ {
				sum := c.Bias[oc]
				wi := 0
				for ic := 0; ic < c.InChannels; ic++ {
					plane := src[ic*n*n:]
					for ky := 0; ky < k; ky++ {
						row := plane[(y+ky)*n+x:]
						for kx := 0; kx < k; kx++ {
							sum += w[wi] * row[kx]
							wi++
						}
					}
				}
				if sum < 0 {
					sum = 0 // ReLU
				}
				out[oc*m*m+y*m+x] = sum
			}
		}
	}
	return out
}

// MaxPool2 downsamples each channel plane by 2x2 max pooling (stride 2).
// Odd trailing rows/columns are dropped, as in common implementations.
func MaxPool2(src []float64, channels, n int) ([]float64, int) {
	if len(src) != channels*n*n {
		panic(fmt.Sprintf("conv: pool input len %d, want %d", len(src), channels*n*n))
	}
	m := n / 2
	out := make([]float64, channels*m*m)
	for c := 0; c < channels; c++ {
		plane := src[c*n*n:]
		for y := 0; y < m; y++ {
			for x := 0; x < m; x++ {
				v := plane[2*y*n+2*x]
				if w := plane[2*y*n+2*x+1]; w > v {
					v = w
				}
				if w := plane[(2*y+1)*n+2*x]; w > v {
					v = w
				}
				if w := plane[(2*y+1)*n+2*x+1]; w > v {
					v = w
				}
				out[c*m*m+y*m+x] = v
			}
		}
	}
	return out, m
}

// FeatureExtractor is a frozen stack of conv+pool blocks mapping square
// multi-channel images to flat feature vectors. It is evaluated exactly;
// training methods only ever see its output, mirroring §8.4's "keep the
// convolutional operations exact".
type FeatureExtractor struct {
	// InputSide and InputChannels describe the expected images.
	InputSide, InputChannels int
	layers                   []*Conv2D
	outDim                   int
}

// NewFeatureExtractor builds a frozen extractor for side x side images
// with the given channel count. channelsPerBlock lists the output
// channels of each conv block (kernel 3, ReLU, 2x2 max pool).
func NewFeatureExtractor(side, inChannels int, channelsPerBlock []int, g *rng.RNG) (*FeatureExtractor, error) {
	if side <= 0 || inChannels <= 0 {
		return nil, fmt.Errorf("conv: bad input geometry %dx%d ch %d", side, side, inChannels)
	}
	if len(channelsPerBlock) == 0 {
		return nil, fmt.Errorf("conv: need at least one block")
	}
	fe := &FeatureExtractor{InputSide: side, InputChannels: inChannels}
	ch, n := inChannels, side
	for i, outCh := range channelsPerBlock {
		if outCh <= 0 {
			return nil, fmt.Errorf("conv: block %d has %d channels", i, outCh)
		}
		l := NewConv2D(ch, outCh, 3, g.Split())
		n = l.OutSize(n) / 2 // conv then 2x2 pool
		if n < 1 {
			return nil, fmt.Errorf("conv: input side %d too small for %d blocks", side, len(channelsPerBlock))
		}
		fe.layers = append(fe.layers, l)
		ch = outCh
	}
	fe.outDim = ch * n * n
	return fe, nil
}

// OutDim returns the flat feature dimensionality.
func (fe *FeatureExtractor) OutDim() int { return fe.outDim }

// Extract maps one flat image (channel-major) to its feature vector.
func (fe *FeatureExtractor) Extract(img []float64) []float64 {
	cur := img
	n := fe.InputSide
	ch := fe.InputChannels
	for _, l := range fe.layers {
		cur = l.Forward(cur, n)
		cur, n = MaxPool2(cur, l.OutChannels, l.OutSize(n))
		ch = l.OutChannels
	}
	_ = ch
	return cur
}

// ExtractBatch maps every row of x (flat images) to feature rows.
func (fe *FeatureExtractor) ExtractBatch(x *tensor.Matrix) *tensor.Matrix {
	want := fe.InputChannels * fe.InputSide * fe.InputSide
	if x.Cols != want {
		panic(fmt.Sprintf("conv: batch images have %d values, want %d", x.Cols, want))
	}
	out := tensor.New(x.Rows, fe.outDim)
	for i := 0; i < x.Rows; i++ {
		copy(out.RowView(i), fe.Extract(x.RowView(i)))
	}
	return out
}
