package conv

import (
	"fmt"
	"math"

	"samplednn/internal/approxmm"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// TrainableConv2D is a convolution layer with learnable weights,
// implemented by im2col lowering: each image becomes a patch matrix
// (one row per output pixel, one column per kernel tap), so the forward
// pass is a matrix product patches · Wᵀ and both backward products are
// matrix products too. That is exactly the structure the paper's CNN
// extension (the technical report referenced in §1, and the §8.4
// convolutional experiments) relies on: once convolution is a matmul,
// the same row-sampling estimator used by MC-approx applies — here over
// the spatial (output-pixel) dimension of the weight-gradient product.
//
// Linear layer (no built-in activation): compose with nn activations at
// the caller. Stride 1, no padding.
type TrainableConv2D struct {
	InChannels, OutChannels, KernelSize int
	// W is OutChannels x (InChannels*K*K); B one bias per out channel.
	W *tensor.Matrix
	B []float64

	// SampleK, when positive, estimates the weight gradient by sampling
	// ~SampleK of the batch·outPixels patch rows with the Eq. 7
	// probabilities, instead of using all of them.
	SampleK int
	// Rand drives the sampling (required when SampleK > 0).
	Rand *rng.RNG

	// caches from Forward
	patches *tensor.Matrix // (batch*m*m) x (inCh*K*K)
	inSide  int
	batch   int
}

// NewTrainableConv2D allocates a He-initialized trainable convolution.
func NewTrainableConv2D(inCh, outCh, k int, g *rng.RNG) *TrainableConv2D {
	if inCh <= 0 || outCh <= 0 || k <= 0 {
		panic(fmt.Sprintf("conv: bad geometry in=%d out=%d k=%d", inCh, outCh, k))
	}
	c := &TrainableConv2D{
		InChannels: inCh, OutChannels: outCh, KernelSize: k,
		W: tensor.New(outCh, inCh*k*k),
		B: make([]float64, outCh),
	}
	g.GaussianSlice(c.W.Data, 0, math.Sqrt(2/float64(inCh*k*k)))
	return c
}

// OutSide returns the output spatial side for input side n.
func (c *TrainableConv2D) OutSide(n int) int { return n - c.KernelSize + 1 }

// Im2Col lowers one image (channel-major planes of side n) into a patch
// matrix with m*m rows (m = n−k+1) and inCh*k*k columns; row (y*m+x)
// holds the receptive field of output pixel (x, y), ordered channel,
// then kernel row, then kernel column — matching the weight layout.
func Im2Col(src []float64, inCh, n, k int, dst *tensor.Matrix) *tensor.Matrix {
	if len(src) != inCh*n*n {
		panic(fmt.Sprintf("conv: Im2Col input len %d, want %d", len(src), inCh*n*n))
	}
	m := n - k + 1
	if m <= 0 {
		panic(fmt.Sprintf("conv: kernel %d too large for side %d", k, n))
	}
	cols := inCh * k * k
	if dst == nil || dst.Rows != m*m || dst.Cols != cols {
		dst = tensor.New(m*m, cols)
	}
	for y := 0; y < m; y++ {
		for x := 0; x < m; x++ {
			row := dst.RowView(y*m + x)
			wi := 0
			for ic := 0; ic < inCh; ic++ {
				plane := src[ic*n*n:]
				for ky := 0; ky < k; ky++ {
					copy(row[wi:wi+k], plane[(y+ky)*n+x:(y+ky)*n+x+k])
					wi += k
				}
			}
		}
	}
	return dst
}

// Col2Im scatters patch-space gradients back to image space, accumulating
// overlapping taps; the adjoint of Im2Col.
func Col2Im(dPatches *tensor.Matrix, inCh, n, k int, dst []float64) []float64 {
	m := n - k + 1
	if dPatches.Rows != m*m || dPatches.Cols != inCh*k*k {
		panic(fmt.Sprintf("conv: Col2Im got %dx%d, want %dx%d", dPatches.Rows, dPatches.Cols, m*m, inCh*k*k))
	}
	if dst == nil {
		dst = make([]float64, inCh*n*n)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	for y := 0; y < m; y++ {
		for x := 0; x < m; x++ {
			row := dPatches.RowView(y*m + x)
			wi := 0
			for ic := 0; ic < inCh; ic++ {
				plane := dst[ic*n*n:]
				for ky := 0; ky < k; ky++ {
					base := (y+ky)*n + x
					for kx := 0; kx < k; kx++ {
						plane[base+kx] += row[wi]
						wi++
					}
				}
			}
		}
	}
	return dst
}

// Forward convolves a batch of flat images (rows of x, channel-major,
// side n) and returns pre-activations as a (batch) x (outCh*m*m) matrix,
// channel-major per row. Patches are cached for Backward.
func (c *TrainableConv2D) Forward(x *tensor.Matrix, n int) *tensor.Matrix {
	if x.Cols != c.InChannels*n*n {
		panic(fmt.Sprintf("conv: forward input %d values, want %d", x.Cols, c.InChannels*n*n))
	}
	m := c.OutSide(n)
	c.inSide = n
	c.batch = x.Rows
	rowsPer := m * m
	c.patches = tensor.New(x.Rows*rowsPer, c.InChannels*c.KernelSize*c.KernelSize)

	out := tensor.New(x.Rows, c.OutChannels*rowsPer)
	scratch := tensor.New(rowsPer, c.patches.Cols)
	for i := 0; i < x.Rows; i++ {
		Im2Col(x.RowView(i), c.InChannels, n, c.KernelSize, scratch)
		copy(c.patches.Data[i*rowsPer*scratch.Cols:], scratch.Data)
		// z = patches · Wᵀ : rowsPer x outCh
		z := tensor.MatMulTransB(scratch, c.W)
		orow := out.RowView(i)
		for p := 0; p < rowsPer; p++ {
			zr := z.RowView(p)
			for oc := 0; oc < c.OutChannels; oc++ {
				orow[oc*rowsPer+p] = zr[oc] + c.B[oc]
			}
		}
	}
	return out
}

// Backward consumes dL/dZ (same shape as Forward's output) and returns
// the weight gradient, bias gradient, and dL/dX. When SampleK > 0 the
// weight-gradient product is estimated by Eq. 7 sampling over the
// batch·outPixels patch rows.
func (c *TrainableConv2D) Backward(dZ *tensor.Matrix) (gradW *tensor.Matrix, gradB []float64, dX *tensor.Matrix) {
	if c.patches == nil {
		panic("conv: Backward before Forward")
	}
	m := c.OutSide(c.inSide)
	rowsPer := m * m
	if dZ.Rows != c.batch || dZ.Cols != c.OutChannels*rowsPer {
		panic(fmt.Sprintf("conv: dZ is %dx%d, want %dx%d", dZ.Rows, dZ.Cols, c.batch, c.OutChannels*rowsPer))
	}

	// Rearrange dZ to patch-major: (batch*rowsPer) x outCh.
	dzp := tensor.New(c.batch*rowsPer, c.OutChannels)
	for i := 0; i < c.batch; i++ {
		drow := dZ.RowView(i)
		for p := 0; p < rowsPer; p++ {
			out := dzp.RowView(i*rowsPer + p)
			for oc := 0; oc < c.OutChannels; oc++ {
				out[oc] = drow[oc*rowsPer+p]
			}
		}
	}

	// gradW = dzpᵀ · patches, shared dimension = batch·outPixels rows.
	if c.SampleK > 0 {
		gradW = c.sampledGradW(dzp)
	} else {
		gradW = tensor.MatMulTransA(dzp, c.patches)
	}

	gradB = make([]float64, c.OutChannels)
	for r := 0; r < dzp.Rows; r++ {
		row := dzp.RowView(r)
		for oc, v := range row {
			gradB[oc] += v
		}
	}

	// dPatches = dzp · W ; scatter per image via Col2Im.
	dX = tensor.New(c.batch, c.InChannels*c.inSide*c.inSide)
	dPatches := tensor.MatMul(dzp, c.W)
	img := make([]float64, c.InChannels*c.inSide*c.inSide)
	sub := tensor.New(rowsPer, dPatches.Cols)
	for i := 0; i < c.batch; i++ {
		copy(sub.Data, dPatches.Data[i*rowsPer*dPatches.Cols:(i+1)*rowsPer*dPatches.Cols])
		img = Col2Im(sub, c.InChannels, c.inSide, c.KernelSize, img)
		copy(dX.RowView(i), img)
	}
	return gradW, gradB, dX
}

// sampledGradW estimates gradW = dzpᵀ·patches by keeping each patch row
// r with the Eq. 7 probability derived from ‖dzp_r‖·‖patches_r‖ and
// rescaling survivors by 1/p_r — unbiased, with cost proportional to the
// kept rows.
func (c *TrainableConv2D) sampledGradW(dzp *tensor.Matrix) *tensor.Matrix {
	if c.Rand == nil {
		panic("conv: SampleK > 0 requires Rand")
	}
	n := dzp.Rows
	w := make([]float64, n)
	for r := 0; r < n; r++ {
		w[r] = tensor.Norm(dzp.RowView(r)) * tensor.Norm(c.patches.RowView(r))
	}
	p := approxmm.KeepProbabilities(w, c.SampleK)
	gradW := tensor.New(c.OutChannels, c.patches.Cols)
	for r := 0; r < n; r++ {
		pr := p[r]
		if pr <= 0 {
			continue
		}
		if pr < 1 && !c.Rand.Bernoulli(pr) {
			continue
		}
		scale := 1 / pr
		dzr := dzp.RowView(r)
		pat := c.patches.RowView(r)
		for oc, dv := range dzr {
			if dv != 0 { //lint:ignore float-equality structural-zero skip over exact zeros from ReLU/sampling masks
				tensor.Axpy(dv*scale, pat, gradW.RowView(oc))
			}
		}
	}
	return gradW
}

// NumParams returns the trainable parameter count.
func (c *TrainableConv2D) NumParams() int {
	return c.W.Rows*c.W.Cols + len(c.B)
}
