package conv

import (
	"math"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestConv2DKnownValues(t *testing.T) {
	// 1 input channel, 1 output channel, 2x2 kernel of ones, zero bias:
	// each output is the sum of a 2x2 window.
	c := NewConv2D(1, 1, 2, rng.New(1))
	c.Weights.Fill(1)
	c.Bias[0] = 0
	img := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	out := c.Forward(img, 3)
	want := []float64{12, 16, 24, 28} // window sums
	if len(out) != 4 {
		t.Fatalf("out len %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestConv2DReLUClamps(t *testing.T) {
	c := NewConv2D(1, 1, 1, rng.New(3))
	c.Weights.Set(0, 0, 1)
	c.Bias[0] = -5
	out := c.Forward([]float64{3}, 1)
	if out[0] != 0 {
		t.Fatalf("ReLU should clamp 3-5 to 0, got %v", out[0])
	}
	c.Bias[0] = 5
	out = c.Forward([]float64{3}, 1)
	if out[0] != 8 {
		t.Fatalf("bias not applied: %v", out[0])
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// Two input channels with distinct weights; verify the sum across
	// channels.
	c := NewConv2D(2, 1, 1, rng.New(4))
	c.Weights.Set(0, 0, 2) // channel 0 weight
	c.Weights.Set(0, 1, 3) // channel 1 weight
	c.Bias[0] = 0
	out := c.Forward([]float64{1, 10}, 1) // ch0=[1], ch1=[10]
	if out[0] != 2+30 {
		t.Fatalf("multi-channel conv = %v, want 32", out[0])
	}
}

func TestConv2DShapePanics(t *testing.T) {
	c := NewConv2D(1, 1, 3, rng.New(5))
	t.Run("len", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c.Forward(make([]float64, 5), 3)
	})
	t.Run("kernel", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c.Forward(make([]float64, 4), 2) // kernel 3 > side 2
	})
}

func TestMaxPool2(t *testing.T) {
	src := []float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 0,
	}
	out, m := MaxPool2(src, 1, 4)
	if m != 2 {
		t.Fatalf("pooled side %d", m)
	}
	want := []float64{4, 8, 9, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pool = %v, want %v", out, want)
		}
	}
	// Odd side drops the trailing row/column.
	odd := make([]float64, 9)
	for i := range odd {
		odd[i] = float64(i)
	}
	out, m = MaxPool2(odd, 1, 3)
	if m != 1 || out[0] != 4 {
		t.Fatalf("odd pool = %v side %d", out, m)
	}
}

func TestFeatureExtractorGeometry(t *testing.T) {
	g := rng.New(6)
	fe, err := NewFeatureExtractor(32, 3, []int{8, 16}, g)
	if err != nil {
		t.Fatal(err)
	}
	// 32 → conv3 → 30 → pool → 15 → conv3 → 13 → pool → 6; 16 channels.
	if fe.OutDim() != 16*6*6 {
		t.Fatalf("OutDim = %d, want %d", fe.OutDim(), 16*6*6)
	}
	img := make([]float64, 3*32*32)
	g.GaussianSlice(img, 0, 1)
	feat := fe.Extract(img)
	if len(feat) != fe.OutDim() {
		t.Fatalf("feature len %d", len(feat))
	}
	for _, v := range feat {
		if v < 0 || math.IsNaN(v) {
			t.Fatal("ReLU features must be non-negative and finite")
		}
	}
}

func TestFeatureExtractorValidation(t *testing.T) {
	g := rng.New(7)
	if _, err := NewFeatureExtractor(0, 1, []int{4}, g); err == nil {
		t.Fatal("bad side must error")
	}
	if _, err := NewFeatureExtractor(8, 1, nil, g); err == nil {
		t.Fatal("no blocks must error")
	}
	if _, err := NewFeatureExtractor(8, 1, []int{4, 4, 4, 4}, g); err == nil {
		t.Fatal("too many blocks for a tiny image must error")
	}
	if _, err := NewFeatureExtractor(8, 1, []int{0}, g); err == nil {
		t.Fatal("zero channels must error")
	}
}

func TestExtractBatch(t *testing.T) {
	g := rng.New(8)
	fe, err := NewFeatureExtractor(8, 1, []int{4}, g)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 64)
	g.GaussianSlice(x.Data, 0, 1)
	out := fe.ExtractBatch(x)
	if out.Rows != 3 || out.Cols != fe.OutDim() {
		t.Fatalf("batch features %dx%d", out.Rows, out.Cols)
	}
	// Row i of the batch must equal Extract of row i.
	single := fe.Extract(x.RowView(1))
	for j, v := range single {
		if out.At(1, j) != v {
			t.Fatal("batch extraction differs from single")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong image size")
		}
	}()
	fe.ExtractBatch(tensor.New(1, 63))
}

func TestFeatureExtractorDeterministic(t *testing.T) {
	a, _ := NewFeatureExtractor(8, 1, []int{4}, rng.New(9))
	b, _ := NewFeatureExtractor(8, 1, []int{4}, rng.New(9))
	img := make([]float64, 64)
	for i := range img {
		img[i] = float64(i) / 64
	}
	fa, fb := a.Extract(img), b.Extract(img)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed must give same features")
		}
	}
}

// Features must be discriminative enough that a linear probe beats
// chance on a simple two-class image task — the property the §8.4
// convolutional setting relies on.
func TestFeaturesAreDiscriminative(t *testing.T) {
	g := rng.New(10)
	fe, err := NewFeatureExtractor(12, 1, []int{6}, g)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	feats := tensor.New(n, fe.OutDim())
	labels := make([]int, n)
	img := make([]float64, 144)
	for i := 0; i < n; i++ {
		for j := range img {
			img[j] = 0.1 * g.Float64()
		}
		c := i % 2
		labels[i] = c
		// Class 0: bright top-left block; class 1: bright bottom-right.
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if c == 0 {
					img[y*12+x] = 1
				} else {
					img[(y+8)*12+x+8] = 1
				}
			}
		}
		copy(feats.RowView(i), fe.Extract(img))
	}
	// Nearest-centroid probe on features.
	cent := tensor.New(2, fe.OutDim())
	counts := [2]float64{}
	for i := 0; i < n; i++ {
		tensor.Axpy(1, feats.RowView(i), cent.RowView(labels[i]))
		counts[labels[i]]++
	}
	for c := 0; c < 2; c++ {
		tensor.ScaleVec(1/counts[c], cent.RowView(c))
	}
	correct := 0
	for i := 0; i < n; i++ {
		d0, d1 := 0.0, 0.0
		row := feats.RowView(i)
		for j := range row {
			d0 += (row[j] - cent.At(0, j)) * (row[j] - cent.At(0, j))
			d1 += (row[j] - cent.At(1, j)) * (row[j] - cent.At(1, j))
		}
		pred := 0
		if d1 < d0 {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.95 {
		t.Fatalf("linear probe on conv features = %v", acc)
	}
}
