// Package pool provides the shared goroutine worker pool behind every
// parallel kernel in samplednn. The paper's evaluation baseline is
// multi-threaded PyTorch on a single CPU socket; matching that baseline
// requires the dense and sampled kernels here to use every available
// core too, otherwise the speedups the reproduction reports are measured
// against an artificially slow serial GEMM.
//
// The pool is persistent: workers are started once and reused across
// every kernel invocation, so the per-call cost is one atomic counter
// and one channel send per participating worker — small enough that the
// tensor package can invoke it from kernels that take tens of
// microseconds. Work distribution is a caller-runs chunk queue:
//
//   - ParallelRows splits [0, n) into fixed-size chunks and hands them
//     out through an atomic counter, so chunk → worker assignment is
//     dynamic (load balanced) while chunk *boundaries* are static —
//     which is what makes parallel kernels bit-identical to serial ones
//     (each output row is computed by exactly one goroutine, with the
//     same in-row reduction order as the serial loop).
//   - The submitting goroutine always participates, and helper submission
//     is non-blocking: if every resident worker is busy (e.g. nested
//     parallelism, or the ALSH per-sample workers already saturate the
//     machine) the caller simply runs all chunks itself. The pool can
//     therefore never deadlock, and oversubscription degrades to serial
//     execution instead of queueing.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"samplednn/internal/obs"
	"samplednn/internal/obs/trace"
)

// Submission telemetry, registered on the process-wide obs registry.
// The caller-runs fallback was previously invisible: a saturated pool
// silently degrades to serial execution, which looks identical to
// parallel execution from the outside but runs several times slower.
// These counters make the split observable:
//
//   - pool.tasks.submitted counts helper tasks successfully handed to an
//     idle resident worker;
//   - pool.tasks.inline counts helper tasks that could not be handed off
//     (every resident worker busy — nested parallelism or external
//     saturation), whose chunks the calling goroutine ran serially.
var (
	cSubmitted = obs.Default.Counter("pool.tasks.submitted")
	cInline    = obs.Default.Counter("pool.tasks.inline")
)

// Stats returns the process-wide submission counters: helper tasks handed
// to resident workers and helper tasks degraded to inline (caller-run)
// execution.
func Stats() (submitted, inline int64) {
	return cSubmitted.Value(), cInline.Value()
}

// Pool is a fixed-size set of resident worker goroutines. A Pool with
// Workers() == w executes ParallelRows with up to w-way parallelism
// (w-1 resident workers plus the calling goroutine).
type Pool struct {
	workers int
	tasks   chan func()
}

// New returns a pool with the given parallelism. Counts below 1 are
// clamped to 1; a 1-worker pool runs everything on the caller and spawns
// no goroutines.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// Unbuffered: a send succeeds only when a resident worker is
		// actually idle and ready to help, which is exactly the condition
		// under which spawning a helper is useful.
		tasks := make(chan func())
		p.tasks = tasks
		for i := 0; i < workers-1; i++ {
			tid := trace.TIDPoolWorker + i
			go func() {
				for f := range tasks {
					// Span per executed helper task: with tracing enabled
					// the Perfetto timeline shows exactly when each
					// resident worker was busy (the saturation the
					// submitted/inline counters only aggregate). Disabled,
					// this is one atomic load per task.
					if tr := trace.Active(); tr != nil {
						sp := tr.BeginTID("pool", "task", tid)
						f()
						sp.End()
						continue
					}
					f()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's parallelism (including the caller).
func (p *Pool) Workers() int { return p.workers }

// Close shuts the resident workers down. It must only be called when no
// ParallelRows invocation is in flight; kernels submitted afterwards run
// serially on the caller.
func (p *Pool) Close() {
	if p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}

// trySubmit offers f to an idle resident worker without blocking.
func (p *Pool) trySubmit(f func()) bool {
	if p.tasks == nil {
		return false
	}
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

// ParallelRows calls fn over a partition of [0, n): fn(lo, hi) handles
// rows lo..hi-1. Chunks are grain rows each (the last may be shorter)
// and every row belongs to exactly one chunk, so fn invocations never
// overlap. Chunk boundaries depend only on (n, grain) — not on the
// worker count or scheduling — which keeps any kernel whose per-row
// computation is self-contained bit-identical across worker counts.
//
// fn runs on the calling goroutine and up to Workers()-1 resident
// workers; ParallelRows returns only after every chunk has completed.
func (p *Pool) ParallelRows(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	helpers := p.workers - 1
	if chunks-1 < helpers {
		helpers = chunks - 1
	}
	if helpers <= 0 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		if !p.trySubmit(func() { defer wg.Done(); run() }) {
			wg.Done()
			// Pool saturated: the caller picks up the remaining chunks.
			cInline.Add(int64(helpers - i))
			break
		}
		cSubmitted.Inc()
	}
	run()
	wg.Wait()
}

// defaultPool holds the process-wide shared pool, sized by GOMAXPROCS
// unless overridden with SetDefaultWorkers.
var defaultPool atomic.Pointer[Pool]

// Default returns the shared pool, creating it on first use with
// GOMAXPROCS workers.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := New(runtime.GOMAXPROCS(0))
	if defaultPool.CompareAndSwap(nil, p) {
		return p
	}
	p.Close()
	return defaultPool.Load()
}

// SetDefaultWorkers resizes the shared pool (the -threads flag). It is
// meant for startup configuration: callers must ensure no kernel is in
// flight on the old pool, whose workers are shut down.
func SetDefaultWorkers(n int) {
	old := defaultPool.Swap(New(n))
	if old != nil {
		old.Close()
	}
}
