package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// coverage records which rows fn saw and fails on overlap or gaps.
func coverage(t *testing.T, p *Pool, n, grain int) {
	t.Helper()
	var mu sync.Mutex
	seen := make([]int, n)
	p.ParallelRows(n, grain, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
			return
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("n=%d grain=%d: row %d covered %d times", n, grain, i, c)
		}
	}
}

func TestParallelRowsCoversEveryRowExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			for _, grain := range []int{-1, 0, 1, 2, 13, 1000, 5000} {
				coverage(t, p, n, grain)
			}
		}
		p.Close()
	}
}

func TestParallelRowsZeroAndNegativeN(t *testing.T) {
	p := New(4)
	defer p.Close()
	called := false
	p.ParallelRows(0, 1, func(lo, hi int) { called = true })
	p.ParallelRows(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestNestedParallelRowsDoesNotDeadlock(t *testing.T) {
	p := New(4)
	defer p.Close()
	var count atomic.Int64
	p.ParallelRows(16, 1, func(lo, hi int) {
		// Nested use from a worker: submission is non-blocking, so the
		// inner call degrades to caller-runs instead of deadlocking.
		p.ParallelRows(8, 1, func(ilo, ihi int) {
			count.Add(int64(ihi - ilo))
		})
	})
	if got := count.Load(); got != 16*8 {
		t.Fatalf("nested rows processed %d, want %d", got, 16*8)
	}
}

func TestConcurrentCallersShareOnePool(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				p.ParallelRows(100, 7, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*20*100 {
		t.Fatalf("processed %d rows, want %d", got, 8*20*100)
	}
}

func TestWorkersClampAndDefault(t *testing.T) {
	if w := New(0).Workers(); w != 1 {
		t.Fatalf("New(0) workers = %d, want 1", w)
	}
	if w := New(-3).Workers(); w != 1 {
		t.Fatalf("New(-3) workers = %d, want 1", w)
	}
	if Default().Workers() < 1 {
		t.Fatal("default pool must have at least one worker")
	}
	if Default() != Default() {
		t.Fatal("Default must return the shared pool")
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	old := Default().Workers()
	SetDefaultWorkers(3)
	if w := Default().Workers(); w != 3 {
		t.Fatalf("after SetDefaultWorkers(3) default has %d workers", w)
	}
	SetDefaultWorkers(old)
}

func TestCloseThenParallelRowsRunsSerially(t *testing.T) {
	p := New(4)
	p.Close()
	rows := 0
	p.ParallelRows(10, 1, func(lo, hi int) { rows += hi - lo })
	if rows != 10 {
		t.Fatalf("closed pool processed %d rows, want 10", rows)
	}
}

func TestSubmittedCounterIncrements(t *testing.T) {
	p := New(4)
	defer p.Close()
	sub0, _ := Stats()
	// Helper recruitment is a non-blocking handoff that only succeeds when
	// a resident worker is already parked in its channel receive, so give
	// the freshly started workers scheduler time between attempts; with
	// idle residents and 64 chunks the counter must eventually move.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.ParallelRows(64, 1, func(lo, hi int) {})
		if sub, _ := Stats(); sub > sub0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pool.tasks.submitted never incremented with idle workers available")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInlineDegradationCounterUnderSaturation(t *testing.T) {
	p := New(4)
	defer p.Close()
	// Saturate every resident worker with a task that blocks until
	// released, so ParallelRows cannot recruit any helper and must
	// degrade to caller-runs execution.
	release := make(chan struct{})
	var parked sync.WaitGroup
	blocked := 0
	// Submission is a non-blocking handoff to a worker already parked in
	// its receive, so freshly started workers may need a moment to arrive.
	for attempt := 0; blocked < p.Workers()-1 && attempt < 1000; attempt++ {
		parked.Add(1)
		if p.trySubmit(func() { parked.Done(); <-release }) {
			blocked++
		} else {
			parked.Done()
			time.Sleep(time.Millisecond)
		}
	}
	if blocked != p.Workers()-1 {
		close(release)
		t.Fatalf("only parked %d of %d resident workers", blocked, p.Workers()-1)
	}
	parked.Wait() // every resident worker is now provably busy

	_, inline0 := Stats()
	rows := 0
	p.ParallelRows(32, 1, func(lo, hi int) { rows += hi - lo })
	_, inline1 := Stats()
	close(release)

	if rows != 32 {
		t.Fatalf("degraded call processed %d rows, want 32", rows)
	}
	// All desired helpers (workers-1 = 3) were unavailable.
	if got := inline1 - inline0; got != int64(p.Workers()-1) {
		t.Fatalf("pool.tasks.inline grew by %d, want %d", got, p.Workers()-1)
	}
}
