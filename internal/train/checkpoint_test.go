package train

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// buildMethod constructs a method+optimizer pair the same way every time
// it is called — resume determinism depends on reconstruction hitting the
// same RNG draws.
func buildMethod(t *testing.T, method, optName string, ds *dataset.Dataset, seed uint64) core.Method {
	t.Helper()
	net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	optim, err := opt.ByName(optName, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(seed)
	opts.DropoutKeep = 0.5
	opts.MC.K = 4
	m, err := core.New(method, net, optim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sameDeterministicHistory compares the reproducible fields of two
// histories (wall-clock and allocation fields legitimately differ).
func sameDeterministicHistory(t *testing.T, a, b *History) {
	t.Helper()
	if a.Method != b.Method || a.Diverged != b.Diverged || a.EarlyStopped != b.EarlyStopped {
		t.Fatalf("history flags differ: %+v vs %+v", a, b)
	}
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		ea, eb := a.Epochs[i], b.Epochs[i]
		if ea.Epoch != eb.Epoch {
			t.Fatalf("epoch %d: numbers differ: %d vs %d", i, ea.Epoch, eb.Epoch)
		}
		if ea.Batches != eb.Batches {
			t.Fatalf("epoch %d: batch counts differ: %d vs %d", ea.Epoch, ea.Batches, eb.Batches)
		}
		if ea.TrainLoss != eb.TrainLoss {
			t.Fatalf("epoch %d: losses differ: %v vs %v", ea.Epoch, ea.TrainLoss, eb.TrainLoss)
		}
		if ea.TestAccuracy != eb.TestAccuracy {
			t.Fatalf("epoch %d: accuracies differ: %v vs %v", ea.Epoch, ea.TestAccuracy, eb.TestAccuracy)
		}
		if ea.ValAccuracy != eb.ValAccuracy {
			t.Fatalf("epoch %d: val accuracies differ: %v vs %v", ea.Epoch, ea.ValAccuracy, eb.ValAccuracy)
		}
	}
}

func sameWeights(t *testing.T, a, b *nn.Network) {
	t.Helper()
	if len(a.Layers) != len(b.Layers) {
		t.Fatal("layer counts differ")
	}
	for i := range a.Layers {
		if !tensor.EqualApprox(a.Layers[i].W, b.Layers[i].W, 0) {
			t.Fatalf("layer %d weights differ", i)
		}
		for j := range a.Layers[i].B {
			if a.Layers[i].B[j] != b.Layers[i].B[j] {
				t.Fatalf("layer %d bias %d differs", i, j)
			}
		}
	}
}

// TestResumeIsBitDeterministic is the kill-and-resume acceptance test:
// N epochs straight vs. N/2 epochs + checkpoint + fresh process + resume
// must agree bit-for-bit on weights, optimizer state, and History. Three
// method/optimizer pairs cover stateless (sgd), velocity (momentum via
// standard), moment+counter (adam via dropout's RNG-carrying method), and
// row-sampling RNG state (mc + adagrad).
func TestResumeIsBitDeterministic(t *testing.T) {
	cases := []struct{ method, optim string }{
		{"standard", "momentum"},
		{"dropout", "adam"},
		{"mc", "adagrad"},
	}
	for _, tc := range cases {
		t.Run(tc.method+"+"+tc.optim, func(t *testing.T) {
			ds := tinyDataset(t, 60)
			const seed, total, half = 61, 10, 5

			// Reference: one uninterrupted run.
			ref := buildMethod(t, tc.method, tc.optim, ds, seed)
			trRef, err := New(ref, ds, Config{Epochs: total, BatchSize: 10, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			histRef, err := trRef.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted: first half with checkpointing...
			path := filepath.Join(t.TempDir(), "state.snck")
			m1 := buildMethod(t, tc.method, tc.optim, ds, seed)
			tr1, err := New(m1, ds, Config{Epochs: half, BatchSize: 10, Seed: seed, StatePath: path})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tr1.Run(); err != nil {
				t.Fatal(err)
			}

			// ...then a fresh "process": everything reconstructed from
			// scratch, state loaded from the file.
			m2 := buildMethod(t, tc.method, tc.optim, ds, seed)
			tr2, err := New(m2, ds, Config{Epochs: total, BatchSize: 10, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			histRes, err := tr2.Resume(path)
			if err != nil {
				t.Fatal(err)
			}

			sameDeterministicHistory(t, histRef, histRes)
			sameWeights(t, ref.Net(), m2.Net())

			// Optimizer state must agree too: one more identical step on
			// both must keep the weights identical.
			x := ds.Train.X
			y := ds.Train.Y
			sub := tensor.FromSlice(10, x.Cols, append([]float64(nil), x.Data[:10*x.Cols]...))
			ref.Step(sub, y[:10])
			m2.Step(sub, y[:10])
			sameWeights(t, ref.Net(), m2.Net())
		})
	}
}

// TestResumeALSHContinues exercises resume for the hash-based method: the
// indexes are rebuilt from the restored weights, the maintenance counters
// and RNG streams come back, and training continues without error. (ALSH
// bucket ordering after incremental maintenance is not bit-stable across
// a rebuild, so this asserts continuation rather than bit-equality.)
func TestResumeALSHContinues(t *testing.T) {
	ds := tinyDataset(t, 62)
	path := filepath.Join(t.TempDir(), "alsh.snck")
	mkTrainer := func(epochs int) (*Trainer, core.Method) {
		m := tinyMethod(t, "alsh", ds, 63)
		tr, err := New(m, ds, Config{Epochs: epochs, BatchSize: 1, Seed: 64, RebuildPerEpoch: true, StatePath: path})
		if err != nil {
			t.Fatal(err)
		}
		return tr, m
	}
	tr1, _ := mkTrainer(2)
	if _, err := tr1.Run(); err != nil {
		t.Fatal(err)
	}
	tr2, _ := mkTrainer(4)
	hist, err := tr2.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Epochs) != 4 {
		t.Fatalf("resumed run recorded %d epochs, want 4", len(hist.Epochs))
	}
	if hist.Epochs[0].Epoch != 1 || hist.Epochs[3].Epoch != 4 {
		t.Fatalf("epoch numbering broken: %+v", hist.Epochs)
	}
}

// nanMethod wraps a real method and forces NaN losses from a chosen Step
// call onward — the crafted divergence of the rollback tests.
type nanMethod struct {
	core.Method
	calls int
	nanAt int // first call (1-based) that returns NaN
	optim opt.Optimizer
}

func (m *nanMethod) Step(x *tensor.Matrix, y []int) float64 {
	m.calls++
	if m.calls >= m.nanAt {
		return math.NaN()
	}
	return m.Method.Step(x, y)
}

func (m *nanMethod) Optimizer() opt.Optimizer { return m.optim }

func TestDivergenceRollbackDecaysLRThenGivesUp(t *testing.T) {
	ds := tinyDataset(t, 70) // 160 train samples, batch 10 → 16 steps/epoch
	net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes), rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	sgd := opt.NewSGD(0.1)
	inner := core.NewStandard(net, sgd)
	// NaN from call 20 onward: epoch 1 (16 calls) is clean, epoch 2
	// diverges at its 4th batch, and every retry diverges immediately.
	m := &nanMethod{Method: inner, nanAt: 20, optim: sgd}
	tr, err := New(m, ds, Config{Epochs: 6, BatchSize: 10, Seed: 72, MaxRetries: 2, LRDecay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatalf("divergence must be recorded, not returned: %v", err)
	}
	if !hist.Diverged {
		t.Fatal("Diverged flag not set after retry budget exhausted")
	}
	// Epoch 1 completed; epoch 2 was attempted 1 + MaxRetries times and
	// recorded once as the diverged epoch.
	if len(hist.Epochs) != 2 {
		t.Fatalf("history has %d epochs, want 2 (one good + the diverged one)", len(hist.Epochs))
	}
	if hist.Epochs[1].Epoch != 2 {
		t.Fatalf("diverged epoch numbered %d, want 2", hist.Epochs[1].Epoch)
	}
	// Each of the two rollbacks decayed the LR once: 0.1 → 0.025.
	if got := sgd.LearningRate(); math.Abs(got-0.025) > 1e-15 {
		t.Fatalf("learning rate %v after two rollbacks, want 0.025", got)
	}
	// Epoch 1's record must have survived the rollbacks untouched.
	if hist.Epochs[0].Epoch != 1 || math.IsNaN(hist.Epochs[0].TrainLoss) {
		t.Fatalf("good epoch corrupted: %+v", hist.Epochs[0])
	}
}

func TestDivergenceRecoverySucceedsWhenDecayFixesIt(t *testing.T) {
	// The real divergence scenario: a too-hot learning rate on a linear
	// network explodes; halving it a few times tames it. The run must
	// recover and complete all epochs without the Diverged flag.
	ds := tinyDataset(t, 73)
	cfg := nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes)
	cfg.Activation = "identity"
	net, err := nn.NewNetwork(cfg, rng.New(74))
	if err != nil {
		t.Fatal(err)
	}
	sgd := opt.NewSGD(50.0) // hot enough to explode a linear net quickly
	m := core.NewStandard(net, sgd)
	tr, err := New(m, ds, Config{Epochs: 3, BatchSize: 10, Seed: 75, MaxRetries: 8, LRDecay: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Diverged {
		t.Fatalf("run should have recovered (final lr %v)", sgd.LearningRate())
	}
	if len(hist.Epochs) != 3 {
		t.Fatalf("%d epochs recorded, want 3", len(hist.Epochs))
	}
	if sgd.LearningRate() >= 50.0 {
		t.Fatal("recovery never decayed the learning rate")
	}
	for _, e := range hist.Epochs {
		if math.IsNaN(e.TrainLoss) || math.IsInf(e.TrainLoss, 0) {
			t.Fatalf("non-finite loss in recovered history: %+v", e)
		}
	}
}

func TestDivergenceWithoutRetriesKeepsSeedBehavior(t *testing.T) {
	// MaxRetries=0 must reproduce the historical semantics: record the
	// collapse and stop. (TestTrainerRecordsDivergence covers the full
	// assertions; this pins the flag interaction with snapshots on.)
	ds := tinyDataset(t, 76)
	cfg := nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes)
	cfg.Activation = "identity"
	net, _ := nn.NewNetwork(cfg, rng.New(77))
	m := core.NewStandard(net, opt.NewSGD(1e8))
	path := filepath.Join(t.TempDir(), "div.snck")
	tr, _ := New(m, ds, Config{Epochs: 5, BatchSize: 10, Seed: 78, StatePath: path})
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !hist.Diverged {
		t.Fatal("Diverged not recorded")
	}
	// The state file holds the last good epoch, not the exploded one.
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.History.Diverged {
		t.Fatal("persisted snapshot must predate the divergence")
	}
	if ck.Epoch != len(hist.Epochs)-1 {
		t.Fatalf("snapshot at epoch %d, diverged history has %d epochs", ck.Epoch, len(hist.Epochs))
	}
}

// faultyStepper returns an error from TryStep at a chosen call — the
// trainer must surface it from Run, not crash and not record divergence.
type faultyStepper struct {
	core.Method
	calls   int
	errAt   int
	stepErr error
}

func (f *faultyStepper) TryStep(x *tensor.Matrix, y []int) (float64, error) {
	f.calls++
	if f.calls == f.errAt {
		return 0, f.stepErr
	}
	return f.Method.Step(x, y), nil
}

func TestWorkerFaultSurfacesFromRun(t *testing.T) {
	ds := tinyDataset(t, 80)
	inner := tinyMethod(t, "standard", ds, 81)
	boom := errors.New("worker 3 panicked: index out of range")
	m := &faultyStepper{Method: inner, errAt: 20, stepErr: boom}
	path := filepath.Join(t.TempDir(), "fault.snck")
	tr, err := New(m, ds, Config{Epochs: 5, BatchSize: 10, Seed: 82, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("step fault not surfaced: %v", err)
	}
	if hist.Diverged {
		t.Fatal("a worker fault is not a divergence")
	}
	if len(hist.Epochs) != 1 {
		t.Fatalf("%d epochs before the fault, want 1", len(hist.Epochs))
	}
	// Progress up to the fault was checkpointed.
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 1 {
		t.Fatalf("snapshot at epoch %d, want 1", ck.Epoch)
	}
}

func TestCancellationCheckpointsThenExits(t *testing.T) {
	ds := tinyDataset(t, 90)
	ctx, cancel := context.WithCancel(context.Background())
	inner := tinyMethod(t, "standard", ds, 91)
	// Cancel mid-epoch-2 (16 steps per epoch at batch 10).
	m := &cancellingMethod{Method: inner, cancelAt: 24, cancel: cancel}
	path := filepath.Join(t.TempDir(), "cancel.snck")
	tr, err := New(m, ds, Config{Epochs: 5, BatchSize: 10, Seed: 92, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(hist.Epochs) != 1 {
		t.Fatalf("cancelled run kept %d epochs, want 1 (mid-epoch progress is discarded)", len(hist.Epochs))
	}
	// The "kill" left a resumable file; a fresh trainer finishes the job.
	m2 := tinyMethod(t, "standard", ds, 91)
	tr2, err := New(m2, ds, Config{Epochs: 5, BatchSize: 10, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	hist2, err := tr2.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist2.Epochs) != 5 {
		t.Fatalf("resumed run recorded %d epochs, want 5", len(hist2.Epochs))
	}
}

type cancellingMethod struct {
	core.Method
	calls    int
	cancelAt int
	cancel   context.CancelFunc
}

func (c *cancellingMethod) Step(x *tensor.Matrix, y []int) float64 {
	c.calls++
	if c.calls == c.cancelAt {
		c.cancel()
	}
	return c.Method.Step(x, y)
}

func TestCheckpointCorruptionIsRejected(t *testing.T) {
	ds := tinyDataset(t, 100)
	m := tinyMethod(t, "standard", ds, 101)
	path := filepath.Join(t.TempDir(), "state.snck")
	tr, err := New(m, ds, Config{Epochs: 2, BatchSize: 10, Seed: 102, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(good); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, keep := range []int{0, 3, checkpointHeader - 1, checkpointHeader, len(good) / 2, len(good) - 1} {
			_, err := DecodeCheckpoint(good[:keep])
			if err == nil {
				t.Fatalf("truncation to %d bytes accepted", keep)
			}
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("truncation to %d: error not tagged corrupt: %v", keep, err)
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		for _, off := range []int{0, 5, checkpointHeader + 1, len(good) / 2, len(good) - 1} {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x40
			_, err := DecodeCheckpoint(bad)
			if err == nil {
				t.Fatalf("flipped byte at %d accepted", off)
			}
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("flip at %d: error not tagged corrupt: %v", off, err)
			}
		}
	})
	t.Run("resume-from-corrupt", func(t *testing.T) {
		// With the .prev backup removed too, a corrupt primary must still
		// abort resume with a corruption-tagged error.
		bad := append([]byte(nil), good...)
		bad[len(bad)-2] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(CheckpointBackupPath(path)); err != nil {
			t.Fatal(err)
		}
		m2 := tinyMethod(t, "standard", ds, 101)
		tr2, err := New(m2, ds, Config{Epochs: 4, BatchSize: 10, Seed: 102})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr2.Resume(path); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("resume from corrupt file: %v", err)
		}
	})
}

func TestResumeRejectsMismatches(t *testing.T) {
	ds := tinyDataset(t, 110)
	path := filepath.Join(t.TempDir(), "state.snck")
	m := buildMethod(t, "standard", "momentum", ds, 111)
	tr, err := New(m, ds, Config{Epochs: 2, BatchSize: 10, Seed: 112, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	// Wrong method.
	md := buildMethod(t, "dropout", "momentum", ds, 111)
	trd, _ := New(md, ds, Config{Epochs: 4, BatchSize: 10, Seed: 112})
	if _, err := trd.Resume(path); err == nil {
		t.Fatal("method mismatch accepted")
	}
	// Wrong optimizer.
	mo := buildMethod(t, "standard", "adam", ds, 111)
	tro, _ := New(mo, ds, Config{Epochs: 4, BatchSize: 10, Seed: 112})
	if _, err := tro.Resume(path); err == nil {
		t.Fatal("optimizer mismatch accepted")
	}
	// Wrong architecture.
	net, _ := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 12, 2, ds.Spec.Classes), rng.New(113))
	ma := core.NewStandard(net, opt.NewMomentum(0.05, 0.9))
	tra, _ := New(ma, ds, Config{Epochs: 4, BatchSize: 10, Seed: 112})
	if _, err := tra.Resume(path); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	// A checkpoint already past the epoch budget returns immediately.
	m2 := buildMethod(t, "standard", "momentum", ds, 111)
	tr2, _ := New(m2, ds, Config{Epochs: 2, BatchSize: 10, Seed: 112})
	hist, err := tr2.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Epochs) != 2 {
		t.Fatalf("completed checkpoint re-ran epochs: %d", len(hist.Epochs))
	}
}

func TestPeriodicCheckpointCadence(t *testing.T) {
	ds := tinyDataset(t, 120)
	m := tinyMethod(t, "standard", ds, 121)
	path := filepath.Join(t.TempDir(), "state.snck")
	tr, err := New(m, ds, Config{Epochs: 5, BatchSize: 10, Seed: 122, StatePath: path, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	// The final write always lands, so the file must hold epoch 5.
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 5 {
		t.Fatalf("final snapshot at epoch %d, want 5", ck.Epoch)
	}
	if len(ck.History.Epochs) != 5 {
		t.Fatalf("snapshot history has %d epochs", len(ck.History.Epochs))
	}
	if ck.OptimizerName != "sgd" || ck.MethodName != "standard" {
		t.Fatalf("snapshot identity wrong: %q/%q", ck.MethodName, ck.OptimizerName)
	}
}

// TestCheckpointKeepsPrevGeneration pins the last-known-good backup
// contract: every overwrite first preserves the previous generation at
// <path>.prev, and both generations decode cleanly.
func TestCheckpointKeepsPrevGeneration(t *testing.T) {
	ds := tinyDataset(t, 130)
	m := tinyMethod(t, "standard", ds, 131)
	path := filepath.Join(t.TempDir(), "state.snck")
	tr, err := New(m, ds, Config{Epochs: 3, BatchSize: 10, Seed: 132, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	primary, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	prev, err := ReadCheckpointFile(CheckpointBackupPath(path))
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	if primary.Epoch != 3 {
		t.Fatalf("primary at epoch %d, want 3", primary.Epoch)
	}
	// The run writes after epochs 1, 2, 3 and once more at the end (same
	// epoch-3 state), so the backup holds the epoch-3 generation too; the
	// key property is that it is one write behind and valid.
	if prev.Epoch != 2 && prev.Epoch != 3 {
		t.Fatalf("backup at epoch %d, want the previous generation", prev.Epoch)
	}
}

// TestResumeFallsBackToPrev corrupts the primary checkpoint and asserts
// resume recovers from the .prev backup, journals a checkpoint-fallback
// event, and still reaches the configured epoch count.
func TestResumeFallsBackToPrev(t *testing.T) {
	ds := tinyDataset(t, 140)
	m := tinyMethod(t, "standard", ds, 141)
	path := filepath.Join(t.TempDir(), "state.snck")
	tr, err := New(m, ds, Config{Epochs: 3, BatchSize: 10, Seed: 142, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	j := obs.New(&buf)
	m2 := tinyMethod(t, "standard", ds, 141)
	tr2, err := New(m2, ds, Config{Epochs: 6, BatchSize: 10, Seed: 142, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr2.Resume(path)
	if err != nil {
		t.Fatalf("resume did not fall back: %v", err)
	}
	if got := len(hist.Epochs); got != 6 {
		t.Fatalf("resumed run recorded %d epochs, want 6", got)
	}
	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Event() == "checkpoint-fallback" {
			found = true
			if r["reason"] == "" || r["backup"] != CheckpointBackupPath(path) {
				t.Fatalf("checkpoint-fallback fields incomplete: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("no checkpoint-fallback event journaled")
	}
}
