package train

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samplednn/internal/core"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
)

// journalSchema reduces a journal to its schema: one "event: key,key,..."
// line per record. Values are deliberately dropped — timings, paths, and
// counters vary run to run — so the golden file pins the event sequence
// and each event's field set, which is the contract offline tooling
// parses against.
func journalSchema(t *testing.T, buf *bytes.Buffer) string {
	t.Helper()
	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal does not round-trip: %v", err)
	}
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "%s: %s\n", r.Event(), strings.Join(r.Keys(), ","))
	}
	return b.String()
}

func TestJournalGoldenSchema(t *testing.T) {
	ds := tinyDataset(t, 70)
	m := tinyMethod(t, "standard", ds, 71)
	var buf bytes.Buffer
	j := obs.New(&buf)
	tr, err := New(m, ds, Config{
		Epochs: 2, BatchSize: 10, Seed: 72,
		StatePath: filepath.Join(t.TempDir(), "state.snck"),
		Journal:   j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	got := journalSchema(t, &buf)
	goldenPath := filepath.Join("testdata", "journal_schema.golden")
	if os.Getenv("JOURNAL_GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with JOURNAL_GOLDEN_UPDATE=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("journal schema drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestJournalRecordsDivergenceAndRollback(t *testing.T) {
	ds := tinyDataset(t, 73)
	cfg := nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes)
	cfg.Activation = "identity"
	net, err := nn.NewNetwork(cfg, rng.New(74))
	if err != nil {
		t.Fatal(err)
	}
	// An absurd learning rate still diverges after one 0.5x decay, so the
	// run exercises rollback AND terminal divergence.
	m := core.NewStandard(net, opt.NewSGD(1e8))
	var buf bytes.Buffer
	j := obs.New(&buf)
	tr, err := New(m, ds, Config{
		Epochs: 5, BatchSize: 10, Seed: 75,
		MaxRetries: 1, LRDecay: 0.5,
		Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !hist.Diverged {
		t.Fatal("run did not diverge; the journal assertions below are vacuous")
	}
	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, r := range recs {
		count[r.Event()]++
	}
	if count["divergence"] < 2 {
		t.Fatalf("want >= 2 divergence events (initial + post-rollback), got %d", count["divergence"])
	}
	if count["rollback"] != 1 {
		t.Fatalf("want exactly 1 rollback event (MaxRetries=1), got %d", count["rollback"])
	}
	if count["run-end"] != 1 {
		t.Fatalf("want 1 run-end event, got %d", count["run-end"])
	}
	// The rollback event records the decayed learning rate.
	for _, r := range recs {
		if r.Event() == "rollback" {
			if lr, ok := r["lr"].(float64); !ok || lr != 5e7 {
				t.Fatalf("rollback lr = %v, want 5e7", r["lr"])
			}
		}
	}
	// The terminal epoch record is marked diverged with a NaN accuracy
	// sentinel (JSON cannot carry NaN; the journal encodes the string).
	var last obs.Record
	for _, r := range recs {
		if r.Event() == "epoch" {
			last = r
		}
	}
	if last == nil {
		t.Fatal("no epoch events journaled")
	}
	if last["diverged"] != true {
		t.Fatalf("terminal epoch not marked diverged: %v", last)
	}
	if last["test_acc"] != "NaN" {
		t.Fatalf("terminal epoch test_acc = %v, want the NaN sentinel", last["test_acc"])
	}
	for _, r := range recs {
		if r.Event() == "run-end" {
			if r["diverged"] != true || r["status"] != "completed" {
				t.Fatalf("run-end record %v", r)
			}
		}
	}
}

func TestJournalEpochIncludesSamplingDiagnostics(t *testing.T) {
	ds := tinyDataset(t, 76)
	m := tinyMethod(t, "alsh", ds, 77)
	var buf bytes.Buffer
	tr, err := New(m, ds, Config{Epochs: 1, BatchSize: 1, Seed: 78, Journal: obs.New(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Event() != "epoch" {
			continue
		}
		sampling, ok := r["sampling"].(map[string]any)
		if !ok {
			t.Fatalf("alsh epoch record missing sampling diagnostics: %v", r)
		}
		if _, ok := sampling["active_fraction"].(float64); !ok {
			t.Fatalf("sampling snapshot missing active_fraction: %v", sampling)
		}
		sets, ok := sampling["active_sets"].([]any)
		if !ok || len(sets) != 2 {
			t.Fatalf("sampling snapshot active_sets = %v", sampling["active_sets"])
		}
		buckets, ok := sampling["buckets"].([]any)
		if !ok || len(buckets) != 2 {
			t.Fatalf("sampling snapshot buckets = %v", sampling["buckets"])
		}
		return
	}
	t.Fatal("no epoch event journaled")
}
