// Package train drives a core.Method over a dataset and records what the
// paper's experiments report: per-epoch loss and test accuracy, the
// feedforward/backpropagation/maintenance time split of §9.2 and §10.1,
// and the memory-growth figures of §9.4.
package train

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/metrics"
	"samplednn/internal/nn"
	"samplednn/internal/obs"
	"samplednn/internal/obs/trace"
	"samplednn/internal/opt"
	"samplednn/internal/probe"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Config controls a training run.
type Config struct {
	// Epochs is the number of passes over the training split (paper: 50).
	Epochs int
	// BatchSize selects the setting: 1 is the paper's stochastic
	// ("S") variant, >1 the mini-batch ("M") variant (paper default 20).
	BatchSize int
	// Seed drives batch shuffling.
	Seed uint64
	// MaxEvalSamples caps how many test samples each evaluation uses
	// (0 = all). Scaled-down experiments use this to keep evaluation off
	// the critical path.
	MaxEvalSamples int
	// RebuildPerEpoch triggers a full hash rebuild between epochs for
	// ALSH-approx (refits the transform scaling); other methods ignore it.
	RebuildPerEpoch bool
	// TrackMemory samples runtime.MemStats around every epoch. It forces
	// a GC per epoch, so leave it off in time-critical runs.
	TrackMemory bool
	// CheckpointPath, when set, saves the network to this file whenever
	// an epoch achieves a new best test accuracy.
	CheckpointPath string
	// EarlyStopPatience, when positive, stops training after this many
	// consecutive epochs without a new best validation accuracy
	// (evaluated on the dataset's validation split, §8.2). Zero disables
	// early stopping.
	EarlyStopPatience int
	// StatePath, when set, enables full-state checkpointing: every
	// CheckpointEvery epochs the trainer atomically writes a resumable
	// snapshot (weights, optimizer state, RNG streams, method state,
	// History) to this file, and writes it once more when the run ends
	// or is cancelled. Resume continues a run from such a file.
	StatePath string
	// CheckpointEvery is the epoch interval between full-state snapshots
	// (default 1 when StatePath is set).
	CheckpointEvery int
	// MaxRetries bounds divergence recovery: when an epoch produces a
	// non-finite loss, the trainer rolls back to the last good snapshot,
	// multiplies the learning rate by LRDecay, and re-runs the epoch —
	// up to MaxRetries rollbacks before recording Diverged. Zero
	// disables recovery (a non-finite loss immediately records
	// Diverged, the historical behavior).
	MaxRetries int
	// LRDecay is the learning-rate multiplier applied on each divergence
	// rollback (default 0.5). It takes effect when the optimizer
	// implements opt.LRAdjuster; otherwise rollbacks retry at the same
	// rate until the budget runs out.
	LRDecay float64
	// Journal, when set, receives the run's lifecycle as structured JSONL
	// events: run-start, resume, epoch, divergence, rollback, checkpoint,
	// early-stop, cancel, step-fault, probe, run-end. Journal write
	// failures are sticky on the Journal and never interrupt training.
	Journal *obs.Journal
	// Registry receives the run's live gauges (train.epoch, train.loss,
	// train.test_acc, the probe readings) and is snapshotted into the
	// run-end event. Defaults to obs.Default, which the -pprof-addr
	// /metrics endpoint serves.
	Registry *obs.Registry
	// ProbeEvery, when positive, runs the §7 error-compounding probe
	// every that many batches: the method's approximate forward and the
	// exact forward are compared on a fixed minibatch and the per-layer
	// relative errors journaled (event "probe") next to the Theorem 7.2
	// prediction. The probe draws from its own RNG stream, so the
	// trained weights are identical with the probe on or off. Methods
	// without an approximate forward (standard) ignore it.
	ProbeEvery int
	// ProbeSamples sizes the probe minibatch, taken from the head of the
	// training split (default 16).
	ProbeSamples int
	// Stepper, when set, replaces the method's local Step for every
	// batch: the trainer hands each batch (with its position and a
	// state-capture hook) to the stepper and records the loss it
	// returns. Distributed data-parallel training (internal/dist) plugs
	// its coordinator in here; everything else about the run — shuffling,
	// divergence recovery, checkpoints, telemetry — is unchanged.
	Stepper BatchStepper
}

// StepPos identifies one optimizer step within a run.
type StepPos struct {
	// Epoch is the 1-based in-flight epoch.
	Epoch int
	// Step is the 0-based batch index within the epoch.
	Step int
}

// StateFunc captures a full-state checkpoint of the run at the current
// position: weights, optimizer state, RNG stream, and the in-flight
// epoch's batch permutation. A BatchStepper calls it to build the sync
// blob a rejoining worker replays from.
type StateFunc func() (*Checkpoint, error)

// BatchStepper is the trainer's gradient export/import seam. StepBatch
// must leave the method's network updated exactly as a local Step on the
// same batch would (the distributed coordinator guarantees this via its
// fixed-order reduce). The batch matrix and labels are only valid for
// the duration of the call. A non-nil error means the batch was not
// applied and aborts the run.
type BatchStepper interface {
	StepBatch(pos StepPos, x *tensor.Matrix, y []int, state StateFunc) (float64, error)
}

func (c *Config) setDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.StatePath != "" && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.LRDecay <= 0 || c.LRDecay >= 1 {
		c.LRDecay = 0.5
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.ProbeSamples <= 0 {
		c.ProbeSamples = 16
	}
}

// EpochStats records one epoch's outcomes.
type EpochStats struct {
	// Epoch is 1-based.
	Epoch int
	// TrainLoss is the mean per-batch loss the method observed, averaged
	// over Batches batches.
	TrainLoss float64
	// Batches is the number of batches whose loss entered TrainLoss. On
	// a fully processed epoch it equals the dataset's batch count; on a
	// diverged epoch it counts only the pre-divergence batches, so a
	// partial average is distinguishable from a full one.
	Batches int
	// TestAccuracy is exact-forward accuracy on the (possibly capped)
	// test split. On a terminally diverged epoch the weights are
	// non-finite and evaluation is skipped: the value is NaN.
	TestAccuracy float64
	// ValAccuracy is accuracy on the validation split (only populated
	// when early stopping is enabled; NaN on a terminally diverged
	// epoch).
	ValAccuracy float64
	// Timing is this epoch's phase split.
	Timing core.Timing
	// Duration is the wall-clock epoch time including evaluation.
	Duration time.Duration
	// AllocBytes is the heap allocation delta over the epoch
	// (TrackMemory only).
	AllocBytes uint64
	// HeapBytes is the live-heap size after the epoch (TrackMemory only).
	HeapBytes uint64
}

// History is a full run's record.
type History struct {
	Method string
	Epochs []EpochStats
	// Diverged reports that training produced a non-finite loss and was
	// stopped early. The paper's Dropout-S configuration (keep rate 0.05
	// with 1/p rescaling) genuinely explodes on deeper networks; the
	// harness records the collapse instead of failing, mirroring the
	// near-random accuracies Table 2 reports for it.
	Diverged bool
	// EarlyStopped reports that validation-based early stopping ended
	// the run before the configured epoch count.
	EarlyStopped bool
}

// Final returns the last epoch's stats.
func (h *History) Final() EpochStats {
	if len(h.Epochs) == 0 {
		return EpochStats{}
	}
	return h.Epochs[len(h.Epochs)-1]
}

// BestAccuracy returns the highest test accuracy seen.
func (h *History) BestAccuracy() float64 {
	best := 0.0
	for _, e := range h.Epochs {
		if e.TestAccuracy > best {
			best = e.TestAccuracy
		}
	}
	return best
}

// TotalTiming sums the phase splits across epochs.
func (h *History) TotalTiming() core.Timing {
	var t core.Timing
	for _, e := range h.Epochs {
		t.Forward += e.Timing.Forward
		t.Backward += e.Timing.Backward
		t.Maintain += e.Timing.Maintain
	}
	return t
}

// Trainer runs a method over a dataset.
type Trainer struct {
	method core.Method
	data   *dataset.Dataset
	cfg    Config
}

// New builds a trainer. The method's network must match the dataset's
// input dimensionality and class count.
func New(m core.Method, ds *dataset.Dataset, cfg Config) (*Trainer, error) {
	cfg.setDefaults()
	if m == nil || ds == nil {
		return nil, fmt.Errorf("train: method and dataset are required")
	}
	in := m.Net().Layers[0].FanIn()
	if in != ds.Train.X.Cols {
		return nil, fmt.Errorf("train: network expects %d inputs, dataset has %d", in, ds.Train.X.Cols)
	}
	out := m.Net().Layers[len(m.Net().Layers)-1].FanOut()
	if out != ds.Spec.Classes {
		return nil, fmt.Errorf("train: network has %d outputs, dataset has %d classes", out, ds.Spec.Classes)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("train: batch size %d", cfg.BatchSize)
	}
	return &Trainer{method: m, data: ds, cfg: cfg}, nil
}

// runState is the trainer's mutable position in a run — everything
// beyond the weights, optimizer, RNG, and History that a checkpoint must
// carry for the run to continue deterministically.
type runState struct {
	epoch        int // completed epochs
	retries      int // divergence rollbacks consumed
	bestAcc      float64
	bestVal      float64
	sinceBestVal int
}

// Run trains for the configured epochs and returns the history.
func (t *Trainer) Run() (*History, error) {
	return t.RunContext(context.Background())
}

// RunContext is Run with cancellation: when ctx is cancelled the trainer
// stops at the next batch boundary, writes the last good snapshot to
// StatePath (when configured), and returns the history so far together
// with ctx's error. Progress past the last completed epoch is discarded —
// snapshots are only taken at epoch boundaries, so a resumed run replays
// the interrupted epoch from its start.
func (t *Trainer) RunContext(ctx context.Context) (*History, error) {
	return t.run(ctx, nil)
}

// Resume continues a run from a full-state checkpoint written by a
// trainer with the same method, architecture, optimizer, and seed. The
// continuation is byte-for-byte deterministic: training N epochs in one
// process and N epochs across a checkpoint/resume boundary produce
// identical weights, optimizer state, and History.
func (t *Trainer) Resume(path string) (*History, error) {
	return t.ResumeContext(context.Background(), path)
}

// ResumeContext is Resume with cancellation (see RunContext). When the
// primary checkpoint is missing or corrupt, the resume falls back to the
// last-known-good .prev backup and journals a checkpoint-fallback event;
// the run then replays the (at most CheckpointEvery) epochs between the
// two generations.
func (t *Trainer) ResumeContext(ctx context.Context, path string) (*History, error) {
	ck, primaryErr, err := ReadCheckpointFileFallback(path)
	if err != nil {
		return nil, err
	}
	if primaryErr != nil {
		t.emit("checkpoint-fallback", map[string]any{
			"path":   path,
			"backup": CheckpointBackupPath(path),
			"epoch":  ck.Epoch,
			"reason": primaryErr.Error(),
		})
	}
	return t.run(ctx, ck)
}

func (t *Trainer) run(ctx context.Context, start *Checkpoint) (*History, error) {
	g := rng.New(t.cfg.Seed)
	batcher := dataset.NewBatcher(t.data.Train, t.cfg.BatchSize, g)
	hist := &History{Method: t.method.Name()}
	rs := runState{bestAcc: -1, bestVal: -1}
	if start != nil {
		// restoreLR: a resumed run continues at the (possibly decayed)
		// rate the checkpoint recorded.
		if err := t.restore(start, g, batcher, hist, &rs, true); err != nil {
			return nil, err
		}
	}
	t.emitRunStart(start != nil)
	if start != nil {
		t.emit("resume", map[string]any{"epoch": rs.epoch, "retries": rs.retries})
	}

	evalX, evalY := t.evalSet()
	pr := t.buildProbe()
	// Live-run gauges, resolved once so the per-batch updates are plain
	// atomic stores. They mirror the journal into the process registry,
	// which the /metrics endpoint serves while the run is in flight.
	gEpoch := t.cfg.Registry.Gauge("train.epoch")
	gLoss := t.cfg.Registry.Gauge("train.loss")
	gAcc := t.cfg.Registry.Gauge("train.test_acc")
	cBatches := t.cfg.Registry.Counter("train.batches")
	useVal := t.cfg.EarlyStopPatience > 0 && t.data.Val != nil && t.data.Val.Len() > 0
	// Snapshots are needed for divergence rollback and for StatePath
	// persistence; without either, skip the capture work entirely.
	wantSnapshots := t.cfg.MaxRetries > 0 || t.cfg.StatePath != ""
	lastGood := start
	if lastGood == nil && wantSnapshots {
		var err error
		if lastGood, err = t.capture(g, batcher, hist, &rs); err != nil {
			return hist, fmt.Errorf("train: initial snapshot: %w", err)
		}
	}
	// persist writes the last good snapshot; used at the end of the run
	// and on every abnormal exit so progress is never lost.
	persist := func() error {
		if t.cfg.StatePath == "" || lastGood == nil {
			return nil
		}
		sp := trace.Active().Begin("checkpoint", "write")
		err := lastGood.WriteFile(t.cfg.StatePath)
		sp.End()
		if err != nil {
			return err
		}
		t.emit("checkpoint", map[string]any{
			"kind": "state", "path": t.cfg.StatePath, "epoch": lastGood.Epoch,
		})
		return nil
	}

	var ms runtime.MemStats
	epoch := rs.epoch
	for epoch < t.cfg.Epochs {
		epoch++
		gEpoch.Set(float64(epoch))
		var allocBefore uint64
		if t.cfg.TrackMemory {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			allocBefore = ms.TotalAlloc
		}
		t.method.ResetTiming()
		startT := time.Now() //lint:ignore wall-clock epoch-duration telemetry for history and journal; never feeds training state

		batcher.Reset()
		var lossSum float64
		batches := 0
		diverged := false
		for {
			select {
			case <-ctx.Done():
				t.emit("cancel", map[string]any{"epoch": epoch, "batches": batches})
				if perr := persist(); perr != nil {
					t.emitRunEnd(hist, "fault")
					return hist, fmt.Errorf("train: checkpoint on cancel: %w (after %w)", perr, ctx.Err())
				}
				t.emitRunEnd(hist, "cancelled")
				return hist, ctx.Err()
			default:
			}
			x, y := batcher.Next()
			if x == nil {
				break
			}
			loss, err := t.stepAt(StepPos{Epoch: epoch, Step: batches}, x, y, func() (*Checkpoint, error) {
				return t.capture(g, batcher, hist, &rs)
			})
			if err != nil {
				// A contained worker fault: the batch was not applied.
				// Preserve progress, then surface the fault.
				t.emit("step-fault", map[string]any{"epoch": epoch, "batches": batches, "error": err.Error()})
				if perr := persist(); perr != nil {
					t.emitRunEnd(hist, "fault")
					return hist, fmt.Errorf("train: checkpoint after step fault: %w (after %w)", perr, err)
				}
				t.emitRunEnd(hist, "fault")
				return hist, fmt.Errorf("train: epoch %d: %w", epoch, err)
			}
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				diverged = true
				break
			}
			lossSum += loss
			batches++
			gLoss.Set(loss)
			cBatches.Inc()
			if m, ok := pr.Tick(); ok {
				t.emitProbe(epoch, m)
			}
		}
		if t.cfg.RebuildPerEpoch {
			if a, ok := t.method.(*core.ALSHApprox); ok {
				a.RebuildAll()
			}
		}

		if diverged {
			t.emit("divergence", map[string]any{"epoch": epoch, "batches": batches, "retries": rs.retries})
		}
		if diverged && rs.retries < t.cfg.MaxRetries && lastGood != nil {
			// Divergence recovery: roll the run back to the last good
			// epoch boundary, decay the learning rate, and re-run. The
			// learning rate is intentionally NOT restored from the
			// snapshot — the decay is the thing that changes the retry's
			// trajectory.
			// The retry counter survives the rollback: restore() resets
			// rs to the snapshot (whose retry count predates this
			// divergence), so reapply the increment afterwards.
			retries := rs.retries + 1
			if err := t.restore(lastGood, g, batcher, hist, &rs, false); err != nil {
				return hist, fmt.Errorf("train: divergence rollback: %w", err)
			}
			rs.retries = retries
			t.decayLR()
			t.emit("rollback", map[string]any{"to_epoch": rs.epoch, "retry": retries, "lr": t.currentLR()})
			epoch = rs.epoch
			continue
		}

		stats := EpochStats{
			Epoch:    epoch,
			Batches:  batches,
			Timing:   t.method.Timing(),
			Duration: time.Since(startT), //lint:ignore wall-clock epoch-duration telemetry for history and journal; never feeds training state
		}
		if batches > 0 {
			stats.TrainLoss = lossSum / float64(batches)
		} else {
			stats.TrainLoss = math.Inf(1)
		}
		if t.cfg.TrackMemory {
			runtime.ReadMemStats(&ms)
			stats.AllocBytes = ms.TotalAlloc - allocBefore
			stats.HeapBytes = ms.HeapAlloc
		}
		if diverged {
			// Terminal divergence (retry budget exhausted): the weights
			// are non-finite, so a test-set forward pass would only
			// record garbage accuracy. Mark the epoch with NaN instead of
			// evaluating.
			stats.TestAccuracy = math.NaN()
			if useVal {
				stats.ValAccuracy = math.NaN()
			}
			hist.Diverged = true
			hist.Epochs = append(hist.Epochs, stats)
			t.emitEpoch(stats, true, useVal)
			break
		}
		stats.TestAccuracy = metrics.Accuracy(evalY, core.Predict(t.method, evalX))
		gAcc.Set(stats.TestAccuracy)
		if t.cfg.CheckpointPath != "" && stats.TestAccuracy > rs.bestAcc {
			rs.bestAcc = stats.TestAccuracy
			if err := t.method.Net().SaveFile(t.cfg.CheckpointPath); err != nil {
				return hist, fmt.Errorf("train: checkpoint: %w", err)
			}
			t.emit("checkpoint", map[string]any{
				"kind": "best-model", "path": t.cfg.CheckpointPath, "epoch": epoch, "test_acc": stats.TestAccuracy,
			})
		}
		if useVal {
			stats.ValAccuracy = metrics.Accuracy(t.data.Val.Y, core.Predict(t.method, t.data.Val.X))
		}
		hist.Epochs = append(hist.Epochs, stats)
		t.emitEpoch(stats, false, useVal)
		if hist.Diverged {
			// A resumed checkpoint can carry a pre-existing Diverged flag;
			// record the epoch, then stop as the original run would have.
			break
		}
		if useVal {
			if stats.ValAccuracy > rs.bestVal {
				rs.bestVal = stats.ValAccuracy
				rs.sinceBestVal = 0
			} else {
				rs.sinceBestVal++
				if rs.sinceBestVal >= t.cfg.EarlyStopPatience {
					hist.EarlyStopped = true
					t.emit("early-stop", map[string]any{"epoch": epoch, "patience": t.cfg.EarlyStopPatience})
				}
			}
		}
		rs.epoch = epoch
		if wantSnapshots {
			var err error
			if lastGood, err = t.capture(g, batcher, hist, &rs); err != nil {
				return hist, fmt.Errorf("train: snapshot after epoch %d: %w", epoch, err)
			}
			if t.cfg.StatePath != "" && epoch%t.cfg.CheckpointEvery == 0 {
				if err := persist(); err != nil {
					return hist, err
				}
			}
		}
		if hist.EarlyStopped {
			break
		}
	}
	if err := persist(); err != nil {
		t.emitRunEnd(hist, "fault")
		return hist, err
	}
	t.emitRunEnd(hist, "completed")
	return hist, nil
}

// emit journals one event when a journal is configured. Journal errors
// are sticky on the Journal itself; telemetry never interrupts training.
func (t *Trainer) emit(ev string, fields map[string]any) {
	if t.cfg.Journal != nil {
		t.cfg.Journal.Emit(ev, fields)
	}
}

// emitRunStart records the run configuration: method, architecture,
// optimizer, and the knobs that shape the trajectory.
func (t *Trainer) emitRunStart(resumed bool) {
	if t.cfg.Journal == nil {
		return
	}
	net := t.method.Net()
	arch := make([]int, 0, len(net.Layers)+1)
	arch = append(arch, net.Layers[0].FanIn())
	for _, l := range net.Layers {
		arch = append(arch, l.FanOut())
	}
	fields := map[string]any{
		"method":      t.method.Name(),
		"arch":        arch,
		"epochs":      t.cfg.Epochs,
		"batch_size":  t.cfg.BatchSize,
		"seed":        t.cfg.Seed,
		"max_retries": t.cfg.MaxRetries,
		"resumed":     resumed,
	}
	if oh, ok := t.method.(core.OptimizerHolder); ok {
		o := oh.Optimizer()
		fields["optimizer"] = o.Name()
		if adj, ok := o.(opt.LRAdjuster); ok {
			fields["lr"] = adj.LearningRate()
		}
	}
	t.cfg.Journal.Emit("run-start", fields)
}

// emitEpoch records one epoch's stats, including the method's sampling
// diagnostics when it exposes them.
func (t *Trainer) emitEpoch(stats EpochStats, diverged, useVal bool) {
	if t.cfg.Journal == nil {
		return
	}
	fields := map[string]any{
		"epoch":       stats.Epoch,
		"train_loss":  stats.TrainLoss,
		"batches":     stats.Batches,
		"test_acc":    stats.TestAccuracy,
		"diverged":    diverged,
		"forward_ns":  int64(stats.Timing.Forward),
		"backward_ns": int64(stats.Timing.Backward),
		"maintain_ns": int64(stats.Timing.Maintain),
		"duration_ns": int64(stats.Duration),
	}
	if useVal {
		fields["val_acc"] = stats.ValAccuracy
	}
	if t.cfg.TrackMemory {
		fields["alloc_bytes"] = stats.AllocBytes
		fields["heap_bytes"] = stats.HeapBytes
	}
	if sr, ok := t.method.(core.SamplingReporter); ok {
		fields["sampling"] = sr.SamplingSnapshot()
	}
	t.cfg.Journal.Emit("epoch", fields)
}

// emitRunEnd closes the journal lifecycle with the run outcome and a
// snapshot of the process-wide metrics registry (pool submission
// counters and any other instrumented subsystem).
func (t *Trainer) emitRunEnd(hist *History, status string) {
	if t.cfg.Journal == nil {
		return
	}
	fields := map[string]any{
		"status":        status,
		"epochs":        len(hist.Epochs),
		"diverged":      hist.Diverged,
		"early_stopped": hist.EarlyStopped,
		"best_acc":      hist.BestAccuracy(),
	}
	if t.cfg.Registry != nil {
		fields["metrics"] = t.cfg.Registry.Snapshot()
	}
	t.cfg.Journal.Emit("run-end", fields)
}

// buildProbe assembles the error-compounding probe when configured: a
// fixed minibatch from the head of the training split, compared every
// ProbeEvery batches. Returns nil (the no-op probe) when disabled or
// when the method has no approximate forward pass to measure.
func (t *Trainer) buildProbe() *probe.Probe {
	if t.cfg.ProbeEvery <= 0 {
		return nil
	}
	n := t.cfg.ProbeSamples
	if n > t.data.Train.Len() {
		n = t.data.Train.Len()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sub := t.data.Train.Subset(idx)
	// The probe's RNG stream is derived from — but distinct from — the
	// run seed, so probing never consumes the training stream.
	pr := probe.New(t.method, sub.X, t.cfg.ProbeEvery, t.cfg.Seed^0x9e3779b97f4a7c15)
	if pr == nil {
		t.emit("probe-unsupported", map[string]any{"method": t.method.Name()})
	}
	return pr
}

// emitProbe journals one probe measurement and mirrors its headline
// numbers into the registry gauges so /metrics shows the current
// error-compounding state.
func (t *Trainer) emitProbe(epoch int, m *probe.Measurement) {
	reg := t.cfg.Registry
	reg.Gauge("probe.growth").Set(m.Growth)
	reg.Gauge("probe.mean_c").Set(m.MeanC)
	reg.Gauge("probe.output_rel_err").Set(m.RelErr[len(m.RelErr)-1])
	fields := map[string]any{
		"epoch":     epoch,
		"batch":     m.Batch,
		"rel_err":   m.RelErr,
		"err_ratio": m.ErrRatio,
		"mean_c":    m.MeanC,
		"growth":    m.Growth,
	}
	if len(m.Theory) > 0 {
		fields["theory"] = m.Theory
	}
	t.emit("probe", fields)
}

// currentLR reports the optimizer's learning rate, or nil when the
// method does not expose an adjustable optimizer.
func (t *Trainer) currentLR() any {
	if oh, ok := t.method.(core.OptimizerHolder); ok {
		if adj, ok := oh.Optimizer().(opt.LRAdjuster); ok {
			return adj.LearningRate()
		}
	}
	return nil
}

// stepAt trains on one batch: through the configured BatchStepper when
// one is set, otherwise locally — preferring the error-aware path when
// the method provides one.
func (t *Trainer) stepAt(pos StepPos, x *tensor.Matrix, y []int, state StateFunc) (float64, error) {
	if t.cfg.Stepper != nil {
		return t.cfg.Stepper.StepBatch(pos, x, y, state)
	}
	if fs, ok := t.method.(core.FallibleStepper); ok {
		return fs.TryStep(x, y)
	}
	return t.method.Step(x, y), nil
}

// decayLR multiplies the learning rate by the configured decay factor.
// It reports whether the optimizer supported the adjustment.
func (t *Trainer) decayLR() bool {
	oh, ok := t.method.(core.OptimizerHolder)
	if !ok {
		return false
	}
	adj, ok := oh.Optimizer().(opt.LRAdjuster)
	if !ok {
		return false
	}
	adj.SetLearningRate(adj.LearningRate() * t.cfg.LRDecay)
	return true
}

// capture snapshots the complete run state at an epoch boundary.
func (t *Trainer) capture(g *rng.RNG, batcher *dataset.Batcher, hist *History, rs *runState) (*Checkpoint, error) {
	defer trace.Active().Begin("checkpoint", "capture").End()
	var netBuf bytes.Buffer
	if err := t.method.Net().Save(&netBuf); err != nil {
		return nil, fmt.Errorf("serializing network: %w", err)
	}
	ck := &Checkpoint{
		Epoch:        rs.epoch,
		Retries:      rs.retries,
		BestAcc:      rs.bestAcc,
		BestVal:      rs.bestVal,
		SinceBestVal: rs.sinceBestVal,
		History: History{
			Method:       hist.Method,
			Diverged:     hist.Diverged,
			EarlyStopped: hist.EarlyStopped,
			Epochs:       append([]EpochStats(nil), hist.Epochs...),
		},
		RNGState:   g.Save(),
		BatchOrder: batcher.Order(),
		NetBlob:    netBuf.Bytes(),
		MethodName: t.method.Name(),
	}
	if oh, ok := t.method.(core.OptimizerHolder); ok {
		o := oh.Optimizer()
		ck.OptimizerName = o.Name()
		if ss, ok := o.(opt.StateSaver); ok {
			var b bytes.Buffer
			if err := ss.SaveState(&b); err != nil {
				return nil, fmt.Errorf("serializing %s state: %w", o.Name(), err)
			}
			ck.OptimizerState = b.Bytes()
		}
		if adj, ok := o.(opt.LRAdjuster); ok {
			ck.HasLR = true
			ck.LR = adj.LearningRate()
		}
	}
	if rm, ok := t.method.(core.Resumable); ok {
		var b bytes.Buffer
		if err := rm.SaveState(&b); err != nil {
			return nil, fmt.Errorf("serializing method state: %w", err)
		}
		ck.MethodState = b.Bytes()
	}
	return ck, nil
}

// restore re-establishes a snapshot: weights in place (preserving layer
// identity — hash indexes and optimizer state key off them), optimizer
// accumulators, method run-time state, RNG position, history, and run
// counters. restoreLR additionally restores the recorded learning rate;
// divergence rollbacks pass false so their decay sticks.
func (t *Trainer) restore(ck *Checkpoint, g *rng.RNG, batcher *dataset.Batcher, hist *History, rs *runState, restoreLR bool) error {
	if ck.MethodName != "" && ck.MethodName != t.method.Name() {
		return fmt.Errorf("train: checkpoint was taken with method %q, trainer runs %q", ck.MethodName, t.method.Name())
	}
	net, err := nn.Load(bytes.NewReader(ck.NetBlob))
	if err != nil {
		return fmt.Errorf("train: checkpoint network: %w", err)
	}
	cur := t.method.Net()
	if len(net.Layers) != len(cur.Layers) {
		return fmt.Errorf("train: checkpoint has %d layers, network has %d", len(net.Layers), len(cur.Layers))
	}
	for i, l := range net.Layers {
		curL := cur.Layers[i]
		if l.W.Rows != curL.W.Rows || l.W.Cols != curL.W.Cols {
			return fmt.Errorf("train: checkpoint layer %d is %dx%d, network wants %dx%d",
				i, l.W.Rows, l.W.Cols, curL.W.Rows, curL.W.Cols)
		}
		copy(curL.W.Data, l.W.Data)
		copy(curL.B, l.B)
	}
	if oh, ok := t.method.(core.OptimizerHolder); ok {
		o := oh.Optimizer()
		if ck.OptimizerName != "" && o.Name() != ck.OptimizerName {
			return fmt.Errorf("train: checkpoint was taken with optimizer %q, trainer uses %q", ck.OptimizerName, o.Name())
		}
		if ss, ok := o.(opt.StateSaver); ok {
			if err := ss.LoadState(bytes.NewReader(ck.OptimizerState)); err != nil {
				return fmt.Errorf("train: restoring %s state: %w", o.Name(), err)
			}
		} else if len(ck.OptimizerState) > 0 {
			return fmt.Errorf("train: checkpoint carries %s state but the optimizer cannot load it", ck.OptimizerName)
		}
		if restoreLR && ck.HasLR {
			if adj, ok := o.(opt.LRAdjuster); ok {
				adj.SetLearningRate(ck.LR)
			}
		}
	} else if len(ck.OptimizerState) > 0 {
		return fmt.Errorf("train: checkpoint carries optimizer state but method %q does not expose its optimizer", t.method.Name())
	}
	if rm, ok := t.method.(core.Resumable); ok {
		// Weights are restored above, so state loaders that rebuild
		// weight-derived structures (hash indexes) see the right data.
		if err := rm.LoadState(bytes.NewReader(ck.MethodState)); err != nil {
			return fmt.Errorf("train: restoring method state: %w", err)
		}
	} else if len(ck.MethodState) > 0 {
		return fmt.Errorf("train: checkpoint carries method state but %q cannot load it", t.method.Name())
	}
	if err := g.Restore(ck.RNGState); err != nil {
		return fmt.Errorf("train: checkpoint rng: %w", err)
	}
	if err := batcher.SetOrder(ck.BatchOrder); err != nil {
		return fmt.Errorf("train: checkpoint batch order: %w", err)
	}
	hist.Method = ck.History.Method
	hist.Diverged = ck.History.Diverged
	hist.EarlyStopped = ck.History.EarlyStopped
	hist.Epochs = append(hist.Epochs[:0], ck.History.Epochs...)
	rs.epoch = ck.Epoch
	rs.retries = ck.Retries
	rs.bestAcc = ck.BestAcc
	rs.bestVal = ck.BestVal
	rs.sinceBestVal = ck.SinceBestVal
	return nil
}

// evalSet returns the capped test split used for per-epoch accuracy.
func (t *Trainer) evalSet() (*tensor.Matrix, []int) {
	test := t.data.Test
	if t.cfg.MaxEvalSamples > 0 && test.Len() > t.cfg.MaxEvalSamples {
		idx := make([]int, t.cfg.MaxEvalSamples)
		for i := range idx {
			idx[i] = i
		}
		sub := test.Subset(idx)
		return sub.X, sub.Y
	}
	return test.X, test.Y
}

// Confusion evaluates a method's network on a split and returns the full
// confusion matrix (the Figure 3 artifact). maxSamples caps the rows used
// (0 = all).
func Confusion(m core.Method, s *dataset.Split, classes, maxSamples int) *metrics.ConfusionMatrix {
	n := s.Len()
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sub := s.Subset(idx)
	cm := metrics.NewConfusionMatrix(classes)
	cm.AddBatch(sub.Y, core.Predict(m, sub.X))
	return cm
}
