// Package train drives a core.Method over a dataset and records what the
// paper's experiments report: per-epoch loss and test accuracy, the
// feedforward/backpropagation/maintenance time split of §9.2 and §10.1,
// and the memory-growth figures of §9.4.
package train

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/metrics"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Config controls a training run.
type Config struct {
	// Epochs is the number of passes over the training split (paper: 50).
	Epochs int
	// BatchSize selects the setting: 1 is the paper's stochastic
	// ("S") variant, >1 the mini-batch ("M") variant (paper default 20).
	BatchSize int
	// Seed drives batch shuffling.
	Seed uint64
	// MaxEvalSamples caps how many test samples each evaluation uses
	// (0 = all). Scaled-down experiments use this to keep evaluation off
	// the critical path.
	MaxEvalSamples int
	// RebuildPerEpoch triggers a full hash rebuild between epochs for
	// ALSH-approx (refits the transform scaling); other methods ignore it.
	RebuildPerEpoch bool
	// TrackMemory samples runtime.MemStats around every epoch. It forces
	// a GC per epoch, so leave it off in time-critical runs.
	TrackMemory bool
	// CheckpointPath, when set, saves the network to this file whenever
	// an epoch achieves a new best test accuracy.
	CheckpointPath string
	// EarlyStopPatience, when positive, stops training after this many
	// consecutive epochs without a new best validation accuracy
	// (evaluated on the dataset's validation split, §8.2). Zero disables
	// early stopping.
	EarlyStopPatience int
}

func (c *Config) setDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
}

// EpochStats records one epoch's outcomes.
type EpochStats struct {
	// Epoch is 1-based.
	Epoch int
	// TrainLoss is the mean per-batch loss the method observed.
	TrainLoss float64
	// TestAccuracy is exact-forward accuracy on the (possibly capped)
	// test split.
	TestAccuracy float64
	// ValAccuracy is accuracy on the validation split (only populated
	// when early stopping is enabled).
	ValAccuracy float64
	// Timing is this epoch's phase split.
	Timing core.Timing
	// Duration is the wall-clock epoch time including evaluation.
	Duration time.Duration
	// AllocBytes is the heap allocation delta over the epoch
	// (TrackMemory only).
	AllocBytes uint64
	// HeapBytes is the live-heap size after the epoch (TrackMemory only).
	HeapBytes uint64
}

// History is a full run's record.
type History struct {
	Method string
	Epochs []EpochStats
	// Diverged reports that training produced a non-finite loss and was
	// stopped early. The paper's Dropout-S configuration (keep rate 0.05
	// with 1/p rescaling) genuinely explodes on deeper networks; the
	// harness records the collapse instead of failing, mirroring the
	// near-random accuracies Table 2 reports for it.
	Diverged bool
	// EarlyStopped reports that validation-based early stopping ended
	// the run before the configured epoch count.
	EarlyStopped bool
}

// Final returns the last epoch's stats.
func (h *History) Final() EpochStats {
	if len(h.Epochs) == 0 {
		return EpochStats{}
	}
	return h.Epochs[len(h.Epochs)-1]
}

// BestAccuracy returns the highest test accuracy seen.
func (h *History) BestAccuracy() float64 {
	best := 0.0
	for _, e := range h.Epochs {
		if e.TestAccuracy > best {
			best = e.TestAccuracy
		}
	}
	return best
}

// TotalTiming sums the phase splits across epochs.
func (h *History) TotalTiming() core.Timing {
	var t core.Timing
	for _, e := range h.Epochs {
		t.Forward += e.Timing.Forward
		t.Backward += e.Timing.Backward
		t.Maintain += e.Timing.Maintain
	}
	return t
}

// Trainer runs a method over a dataset.
type Trainer struct {
	method core.Method
	data   *dataset.Dataset
	cfg    Config
}

// New builds a trainer. The method's network must match the dataset's
// input dimensionality and class count.
func New(m core.Method, ds *dataset.Dataset, cfg Config) (*Trainer, error) {
	cfg.setDefaults()
	if m == nil || ds == nil {
		return nil, fmt.Errorf("train: method and dataset are required")
	}
	in := m.Net().Layers[0].FanIn()
	if in != ds.Train.X.Cols {
		return nil, fmt.Errorf("train: network expects %d inputs, dataset has %d", in, ds.Train.X.Cols)
	}
	out := m.Net().Layers[len(m.Net().Layers)-1].FanOut()
	if out != ds.Spec.Classes {
		return nil, fmt.Errorf("train: network has %d outputs, dataset has %d classes", out, ds.Spec.Classes)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("train: batch size %d", cfg.BatchSize)
	}
	return &Trainer{method: m, data: ds, cfg: cfg}, nil
}

// Run trains for the configured epochs and returns the history.
func (t *Trainer) Run() (*History, error) {
	g := rng.New(t.cfg.Seed)
	batcher := dataset.NewBatcher(t.data.Train, t.cfg.BatchSize, g)
	hist := &History{Method: t.method.Name()}

	evalX, evalY := t.evalSet()
	bestAcc := -1.0
	bestVal := -1.0
	sinceBestVal := 0
	useVal := t.cfg.EarlyStopPatience > 0 && t.data.Val != nil && t.data.Val.Len() > 0

	var ms runtime.MemStats
	for epoch := 1; epoch <= t.cfg.Epochs; epoch++ {
		var allocBefore uint64
		if t.cfg.TrackMemory {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			allocBefore = ms.TotalAlloc
		}
		t.method.ResetTiming()
		start := time.Now()

		batcher.Reset()
		var lossSum float64
		batches := 0
		for {
			x, y := batcher.Next()
			if x == nil {
				break
			}
			loss := t.method.Step(x, y)
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				hist.Diverged = true
				break
			}
			lossSum += loss
			batches++
		}
		if t.cfg.RebuildPerEpoch {
			if a, ok := t.method.(*core.ALSHApprox); ok {
				a.RebuildAll()
			}
		}

		stats := EpochStats{
			Epoch:        epoch,
			TestAccuracy: metrics.Accuracy(evalY, core.Predict(t.method, evalX)),
			Timing:       t.method.Timing(),
			Duration:     time.Since(start),
		}
		if batches > 0 {
			stats.TrainLoss = lossSum / float64(batches)
		} else {
			stats.TrainLoss = math.Inf(1)
		}
		if t.cfg.TrackMemory {
			runtime.ReadMemStats(&ms)
			stats.AllocBytes = ms.TotalAlloc - allocBefore
			stats.HeapBytes = ms.HeapAlloc
		}
		if t.cfg.CheckpointPath != "" && stats.TestAccuracy > bestAcc {
			bestAcc = stats.TestAccuracy
			if err := t.method.Net().SaveFile(t.cfg.CheckpointPath); err != nil {
				return hist, fmt.Errorf("train: checkpoint: %w", err)
			}
		}
		if useVal {
			stats.ValAccuracy = metrics.Accuracy(t.data.Val.Y, core.Predict(t.method, t.data.Val.X))
		}
		hist.Epochs = append(hist.Epochs, stats)
		if hist.Diverged {
			break
		}
		if useVal {
			if stats.ValAccuracy > bestVal {
				bestVal = stats.ValAccuracy
				sinceBestVal = 0
			} else {
				sinceBestVal++
				if sinceBestVal >= t.cfg.EarlyStopPatience {
					hist.EarlyStopped = true
					break
				}
			}
		}
	}
	return hist, nil
}

// evalSet returns the capped test split used for per-epoch accuracy.
func (t *Trainer) evalSet() (*tensor.Matrix, []int) {
	test := t.data.Test
	if t.cfg.MaxEvalSamples > 0 && test.Len() > t.cfg.MaxEvalSamples {
		idx := make([]int, t.cfg.MaxEvalSamples)
		for i := range idx {
			idx[i] = i
		}
		sub := test.Subset(idx)
		return sub.X, sub.Y
	}
	return test.X, test.Y
}

// Confusion evaluates a method's network on a split and returns the full
// confusion matrix (the Figure 3 artifact). maxSamples caps the rows used
// (0 = all).
func Confusion(m core.Method, s *dataset.Split, classes, maxSamples int) *metrics.ConfusionMatrix {
	n := s.Len()
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sub := s.Subset(idx)
	cm := metrics.NewConfusionMatrix(classes)
	cm.AddBatch(sub.Y, core.Predict(m, sub.X))
	return cm
}
