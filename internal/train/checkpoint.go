package train

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/binio"
)

// Full-state checkpoint format ("SNCK"). Unlike nn.Save — which persists
// only the weights — a checkpoint captures everything a run needs to
// continue byte-for-byte deterministically: weights, optimizer
// accumulators, the trainer's RNG stream position, the method's private
// run-time state, the epoch counter with its best-accuracy/early-stop
// bookkeeping, and the accumulated History.
//
// Layout (all little-endian):
//
//	offset 0   magic "SNCK" (4 bytes)
//	offset 4   format version (uint32, currently 2)
//	offset 8   payload length (uint64)
//	offset 16  CRC-32 (IEEE) of the payload (uint32)
//	offset 20  payload
//
// Version history: v2 added EpochStats.Batches (the per-epoch batch
// count that distinguishes partial diverged epochs from full ones);
// v1 files are rejected with a version error.
//
// The payload is a sequence of length-prefixed sections (run counters,
// History, RNG state, network blob in the nn.Save format, optimizer name
// + state blob, method name + state blob). Readers verify magic, version,
// length, and checksum before touching any section, so a truncated or
// bit-flipped file is rejected with a descriptive error — never a panic,
// and never a half-loaded run. Writes go through internal/atomicfile, so
// a crash mid-save leaves the previous checkpoint intact.
const (
	checkpointMagic   = "SNCK"
	checkpointVersion = 2
	checkpointHeader  = 20 // magic + version + payload length + CRC
)

// ErrCorruptCheckpoint tags every integrity failure (bad magic, length
// mismatch, checksum mismatch, truncated section) so callers can
// distinguish corruption from I/O errors with errors.Is.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

// Checkpoint is a full-state training snapshot, always taken at an epoch
// boundary: Epoch epochs are complete, and resuming continues with
// Epoch+1.
type Checkpoint struct {
	// Epoch is the number of completed epochs.
	Epoch int
	// Retries counts divergence rollbacks consumed so far.
	Retries int
	// LR is the optimizer learning rate at snapshot time — it survives
	// rollbacks (divergence recovery decays it) but is restored on
	// Resume so a resumed run continues with the decayed rate.
	LR float64
	// HasLR records whether the optimizer exposed its learning rate.
	HasLR bool
	// BestAcc / BestVal / SinceBestVal are the checkpoint-best and
	// early-stopping counters.
	BestAcc, BestVal float64
	SinceBestVal     int
	// History is the run record through Epoch.
	History History
	// RNGState is the trainer's shuffling RNG position (rng.RNG.Save).
	RNGState []byte
	// BatchOrder is the batcher's sample permutation at snapshot time.
	// Shuffles are applied in place, so the RNG position alone does not
	// determine the next epoch's ordering.
	BatchOrder []int
	// NetBlob is the network in the nn.Save format.
	NetBlob []byte
	// OptimizerName / OptimizerState identify and capture the optimizer.
	OptimizerName  string
	OptimizerState []byte
	// MethodName / MethodState identify the method and capture its
	// run-time state (empty when the method is stateless).
	MethodName  string
	MethodState []byte
}

func writeEpochStats(w io.Writer, e *EpochStats) error {
	if err := binio.WriteU32(w, uint32(e.Epoch)); err != nil {
		return err
	}
	if err := binio.WriteU32(w, uint32(e.Batches)); err != nil {
		return err
	}
	for _, v := range []float64{e.TrainLoss, e.TestAccuracy, e.ValAccuracy} {
		if err := binio.WriteF64(w, v); err != nil {
			return err
		}
	}
	for _, d := range []time.Duration{e.Timing.Forward, e.Timing.Backward, e.Timing.Maintain, e.Duration} {
		if err := binio.WriteI64(w, int64(d)); err != nil {
			return err
		}
	}
	if err := binio.WriteU64(w, e.AllocBytes); err != nil {
		return err
	}
	return binio.WriteU64(w, e.HeapBytes)
}

func readEpochStats(r io.Reader) (EpochStats, error) {
	var e EpochStats
	epoch, err := binio.ReadU32(r)
	if err != nil {
		return e, err
	}
	e.Epoch = int(epoch)
	batches, err := binio.ReadU32(r)
	if err != nil {
		return e, err
	}
	e.Batches = int(batches)
	for _, dst := range []*float64{&e.TrainLoss, &e.TestAccuracy, &e.ValAccuracy} {
		if *dst, err = binio.ReadF64(r); err != nil {
			return e, err
		}
	}
	for _, dst := range []*time.Duration{&e.Timing.Forward, &e.Timing.Backward, &e.Timing.Maintain, &e.Duration} {
		v, err := binio.ReadI64(r)
		if err != nil {
			return e, err
		}
		*dst = time.Duration(v)
	}
	if e.AllocBytes, err = binio.ReadU64(r); err != nil {
		return e, err
	}
	e.HeapBytes, err = binio.ReadU64(r)
	return e, err
}

func writeHistory(w io.Writer, h *History) error {
	if err := binio.WriteString(w, h.Method); err != nil {
		return err
	}
	if err := binio.WriteBool(w, h.Diverged); err != nil {
		return err
	}
	if err := binio.WriteBool(w, h.EarlyStopped); err != nil {
		return err
	}
	if err := binio.WriteU32(w, uint32(len(h.Epochs))); err != nil {
		return err
	}
	for i := range h.Epochs {
		if err := writeEpochStats(w, &h.Epochs[i]); err != nil {
			return err
		}
	}
	return nil
}

func readHistory(r io.Reader) (History, error) {
	var h History
	var err error
	if h.Method, err = binio.ReadString(r); err != nil {
		return h, err
	}
	if h.Diverged, err = binio.ReadBool(r); err != nil {
		return h, err
	}
	if h.EarlyStopped, err = binio.ReadBool(r); err != nil {
		return h, err
	}
	n, err := binio.ReadU32(r)
	if err != nil {
		return h, err
	}
	if n > 1<<24 {
		return h, fmt.Errorf("implausible epoch count %d", n)
	}
	h.Epochs = make([]EpochStats, 0, n)
	for i := uint32(0); i < n; i++ {
		e, err := readEpochStats(r)
		if err != nil {
			return h, err
		}
		h.Epochs = append(h.Epochs, e)
	}
	return h, nil
}

// Encode serializes the checkpoint with its header and checksum.
func (c *Checkpoint) Encode() ([]byte, error) {
	var payload bytes.Buffer
	w := &payload
	if err := binio.WriteU32(w, uint32(c.Epoch)); err != nil {
		return nil, err
	}
	if err := binio.WriteU32(w, uint32(c.Retries)); err != nil {
		return nil, err
	}
	if err := binio.WriteBool(w, c.HasLR); err != nil {
		return nil, err
	}
	if err := binio.WriteF64(w, c.LR); err != nil {
		return nil, err
	}
	if err := binio.WriteF64(w, c.BestAcc); err != nil {
		return nil, err
	}
	if err := binio.WriteF64(w, c.BestVal); err != nil {
		return nil, err
	}
	if err := binio.WriteU32(w, uint32(c.SinceBestVal)); err != nil {
		return nil, err
	}
	if err := writeHistory(w, &c.History); err != nil {
		return nil, err
	}
	if err := binio.WriteBytes(w, c.RNGState); err != nil {
		return nil, err
	}
	if err := binio.WriteInts(w, c.BatchOrder); err != nil {
		return nil, err
	}
	if err := binio.WriteBytes(w, c.NetBlob); err != nil {
		return nil, err
	}
	if err := binio.WriteString(w, c.OptimizerName); err != nil {
		return nil, err
	}
	if err := binio.WriteBytes(w, c.OptimizerState); err != nil {
		return nil, err
	}
	if err := binio.WriteString(w, c.MethodName); err != nil {
		return nil, err
	}
	if err := binio.WriteBytes(w, c.MethodState); err != nil {
		return nil, err
	}

	out := bytes.NewBuffer(make([]byte, 0, checkpointHeader+payload.Len()))
	out.WriteString(checkpointMagic)
	binio.WriteU32(out, checkpointVersion)
	binio.WriteU64(out, uint64(payload.Len()))
	binio.WriteU32(out, crc32.ChecksumIEEE(payload.Bytes()))
	out.Write(payload.Bytes())
	return out.Bytes(), nil
}

// DecodeCheckpoint parses and integrity-checks an encoded checkpoint.
// Every corruption mode returns an error wrapping ErrCorruptCheckpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	fail := func(format string, args ...any) (*Checkpoint, error) {
		return nil, fmt.Errorf("train: %w: %s", ErrCorruptCheckpoint, fmt.Sprintf(format, args...))
	}
	if len(data) < checkpointHeader {
		return fail("%d bytes is shorter than the %d-byte header (truncated?)", len(data), checkpointHeader)
	}
	if string(data[:4]) != checkpointMagic {
		return fail("bad magic %q, want %q", data[:4], checkpointMagic)
	}
	hdr := bytes.NewReader(data[4:checkpointHeader])
	version, _ := binio.ReadU32(hdr)
	if version != checkpointVersion {
		return fail("format version %d, this build reads %d", version, checkpointVersion)
	}
	payloadLen, _ := binio.ReadU64(hdr)
	sum, _ := binio.ReadU32(hdr)
	payload := data[checkpointHeader:]
	if uint64(len(payload)) != payloadLen {
		return fail("payload is %d bytes, header promises %d (truncated?)", len(payload), payloadLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return fail("checksum %08x does not match header %08x (bit rot or torn write)", got, sum)
	}

	c := &Checkpoint{}
	r := bytes.NewReader(payload)
	var err error
	readSection := func(name string, f func() error) {
		if err != nil {
			return
		}
		if serr := f(); serr != nil {
			err = fmt.Errorf("train: %w: section %s: %v", ErrCorruptCheckpoint, name, serr)
		}
	}
	readSection("counters", func() error {
		epoch, e := binio.ReadU32(r)
		if e != nil {
			return e
		}
		c.Epoch = int(epoch)
		retries, e := binio.ReadU32(r)
		if e != nil {
			return e
		}
		c.Retries = int(retries)
		if c.HasLR, e = binio.ReadBool(r); e != nil {
			return e
		}
		if c.LR, e = binio.ReadF64(r); e != nil {
			return e
		}
		if c.BestAcc, e = binio.ReadF64(r); e != nil {
			return e
		}
		if c.BestVal, e = binio.ReadF64(r); e != nil {
			return e
		}
		since, e := binio.ReadU32(r)
		if e != nil {
			return e
		}
		c.SinceBestVal = int(since)
		return nil
	})
	readSection("history", func() (e error) { c.History, e = readHistory(r); return })
	readSection("rng", func() (e error) { c.RNGState, e = binio.ReadBytes(r); return })
	readSection("batch-order", func() (e error) { c.BatchOrder, e = binio.ReadInts(r); return })
	readSection("network", func() (e error) { c.NetBlob, e = binio.ReadBytes(r); return })
	readSection("optimizer", func() error {
		var e error
		if c.OptimizerName, e = binio.ReadString(r); e != nil {
			return e
		}
		c.OptimizerState, e = binio.ReadBytes(r)
		return e
	})
	readSection("method", func() error {
		var e error
		if c.MethodName, e = binio.ReadString(r); e != nil {
			return e
		}
		c.MethodState, e = binio.ReadBytes(r)
		return e
	})
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return fail("%d trailing bytes after the last section", r.Len())
	}
	return c, nil
}

// CheckpointBackupPath names the last-known-good backup kept beside a
// checkpoint file.
func CheckpointBackupPath(path string) string { return path + ".prev" }

// WriteFile atomically persists the checkpoint to path, first preserving
// the previous generation at CheckpointBackupPath(path). The backup is a
// copy, so a crash at any instant leaves a complete checkpoint at path;
// the backup exists for the failure atomicity cannot prevent — a primary
// that goes bad on disk after the write.
func (c *Checkpoint) WriteFile(path string) error {
	data, err := c.Encode()
	if err != nil {
		return fmt.Errorf("train: encoding checkpoint: %w", err)
	}
	if err := atomicfile.BackupThenReplace(path, CheckpointBackupPath(path), data); err != nil {
		return fmt.Errorf("train: writing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile loads and validates a checkpoint from path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("train: reading checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// ReadCheckpointFileFallback loads the checkpoint at path, falling back
// to the .prev backup when the primary is missing or fails validation.
// On fallback the returned primaryErr records why the primary was
// rejected (callers journal it as a checkpoint-fallback event); when the
// primary loads cleanly primaryErr is nil. err is non-nil only when
// neither generation is usable.
func ReadCheckpointFileFallback(path string) (ck *Checkpoint, primaryErr, err error) {
	ck, perr := ReadCheckpointFile(path)
	if perr == nil {
		return ck, nil, nil
	}
	if !errors.Is(perr, ErrCorruptCheckpoint) && !os.IsNotExist(perr) {
		// An I/O failure (permissions, device error) is not evidence the
		// primary is bad; surface it rather than silently time-travelling
		// to an older state.
		return nil, nil, perr
	}
	ck, berr := ReadCheckpointFile(CheckpointBackupPath(path))
	if berr != nil {
		return nil, nil, fmt.Errorf("train: checkpoint unusable: primary: %w; backup: %w", perr, berr)
	}
	return ck, perr, nil
}
