package train

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"samplednn/internal/core"
	"samplednn/internal/dataset"
	"samplednn/internal/nn"
	"samplednn/internal/opt"
	"samplednn/internal/rng"
)

// tinyDataset builds a miniature MNIST-shaped benchmark.
func tinyDataset(t *testing.T, seed uint64) *dataset.Dataset {
	t.Helper()
	spec := dataset.Spec{
		Name: "tiny", Width: 8, Height: 8, Channels: 1, Classes: 4,
		Train: 160, Test: 60, Val: 20, Difficulty: 0.2,
	}
	return dataset.GenerateFromSpec(spec, dataset.Options{Seed: seed})
}

func tinyMethod(t *testing.T, name string, ds *dataset.Dataset, seed uint64) core.Method {
	t.Helper()
	net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(seed)
	opts.DropoutKeep = 0.5 // tiny layers need a workable keep rate
	opts.ALSH.Params.K = 3
	opts.ALSH.Params.L = 4
	opts.ALSH.Params.M = 3
	opts.ALSH.Params.U = 0.83
	opts.ALSH.MinActive = 6
	m, err := core.New(name, net, opt.NewSGD(0.1), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainerValidation(t *testing.T) {
	ds := tinyDataset(t, 1)
	m := tinyMethod(t, "standard", ds, 2)
	if _, err := New(nil, ds, Config{}); err == nil {
		t.Fatal("nil method must error")
	}
	if _, err := New(m, nil, Config{}); err == nil {
		t.Fatal("nil dataset must error")
	}
	// Input-dim mismatch.
	other := tinyDataset(t, 3)
	other.Train.X = other.Train.X.Clone()
	badNet, _ := nn.NewNetwork(nn.Uniform(10, 8, 1, 4), rng.New(4))
	bad := core.NewStandard(badNet, opt.NewSGD(0.1))
	if _, err := New(bad, ds, Config{}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	// Class mismatch.
	badNet2, _ := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 8, 1, 9), rng.New(5))
	bad2 := core.NewStandard(badNet2, opt.NewSGD(0.1))
	if _, err := New(bad2, ds, Config{}); err == nil {
		t.Fatal("class mismatch must error")
	}
}

func TestTrainerImprovesAccuracy(t *testing.T) {
	ds := tinyDataset(t, 6)
	m := tinyMethod(t, "standard", ds, 7)
	tr, err := New(m, ds, Config{Epochs: 8, BatchSize: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Epochs) != 8 {
		t.Fatalf("%d epochs recorded", len(hist.Epochs))
	}
	first := hist.Epochs[0]
	final := hist.Final()
	if final.TestAccuracy <= 0.25 {
		t.Fatalf("final accuracy %v no better than chance", final.TestAccuracy)
	}
	if final.TrainLoss >= first.TrainLoss {
		t.Fatalf("loss did not decrease: %v → %v", first.TrainLoss, final.TrainLoss)
	}
	if hist.BestAccuracy() < final.TestAccuracy-1e-12 {
		t.Fatal("BestAccuracy below final accuracy")
	}
	if hist.Method != "standard" {
		t.Fatal("history method label wrong")
	}
}

func TestTrainerRecordsTimings(t *testing.T) {
	ds := tinyDataset(t, 9)
	m := tinyMethod(t, "standard", ds, 10)
	tr, _ := New(m, ds, Config{Epochs: 2, BatchSize: 20, Seed: 11})
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hist.Epochs {
		if e.Timing.Forward <= 0 || e.Timing.Backward <= 0 {
			t.Fatalf("epoch %d missing timings: %+v", e.Epoch, e.Timing)
		}
		if e.Duration <= 0 {
			t.Fatal("epoch duration missing")
		}
	}
	total := hist.TotalTiming()
	if total.Forward <= hist.Epochs[0].Timing.Forward {
		t.Fatal("TotalTiming should accumulate across epochs")
	}
}

func TestTrainerTracksMemory(t *testing.T) {
	ds := tinyDataset(t, 12)
	m := tinyMethod(t, "standard", ds, 13)
	tr, _ := New(m, ds, Config{Epochs: 1, BatchSize: 10, Seed: 14, TrackMemory: true})
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().AllocBytes == 0 || hist.Final().HeapBytes == 0 {
		t.Fatalf("memory not tracked: %+v", hist.Final())
	}
}

func TestTrainerEvalCap(t *testing.T) {
	ds := tinyDataset(t, 15)
	m := tinyMethod(t, "standard", ds, 16)
	tr, _ := New(m, ds, Config{Epochs: 1, BatchSize: 10, Seed: 17, MaxEvalSamples: 5})
	x, y := tr.evalSet()
	if x.Rows != 5 || len(y) != 5 {
		t.Fatalf("eval cap not applied: %d rows", x.Rows)
	}
}

func TestTrainerAllMethodsRun(t *testing.T) {
	ds := tinyDataset(t, 18)
	for _, name := range core.MethodNames() {
		m := tinyMethod(t, name, ds, 19)
		batch := 10
		if name == "alsh" {
			batch = 1 // the paper evaluates ALSH stochastically
		}
		tr, err := New(m, ds, Config{Epochs: 1, BatchSize: batch, Seed: 20, RebuildPerEpoch: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hist, err := tr.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hist.Final().TestAccuracy < 0 || hist.Final().TestAccuracy > 1 {
			t.Fatalf("%s: accuracy out of range", name)
		}
	}
}

func TestConfusionArtifact(t *testing.T) {
	ds := tinyDataset(t, 21)
	m := tinyMethod(t, "standard", ds, 22)
	tr, _ := New(m, ds, Config{Epochs: 3, BatchSize: 10, Seed: 23})
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	cm := Confusion(m, ds.Test, ds.Spec.Classes, 30)
	if cm.Total() != 30 {
		t.Fatalf("confusion rows = %d", cm.Total())
	}
	if !strings.Contains(cm.Render(), "true\\pred") {
		t.Fatal("confusion render broken")
	}
	full := Confusion(m, ds.Test, ds.Spec.Classes, 0)
	if full.Total() != ds.Test.Len() {
		t.Fatal("uncapped confusion should use the full split")
	}
}

func TestTrainerRecordsDivergence(t *testing.T) {
	ds := tinyDataset(t, 30)
	// A huge learning rate on a linear network reliably explodes the
	// loss (ReLU nets can instead saturate into a dead state).
	cfg := nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes)
	cfg.Activation = "identity"
	net, err := nn.NewNetwork(cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewStandard(net, opt.NewSGD(1e8))
	tr, err := New(m, ds, Config{Epochs: 5, BatchSize: 10, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatalf("divergence must be recorded, not returned as an error: %v", err)
	}
	if !hist.Diverged {
		t.Fatal("Diverged flag not set")
	}
	if len(hist.Epochs) == 0 || len(hist.Epochs) == 5 {
		t.Fatalf("divergence should stop training early, got %d epochs", len(hist.Epochs))
	}
	// The terminal epoch's weights are non-finite: evaluation is skipped
	// and the accuracies are NaN markers, not garbage numbers.
	final := hist.Final()
	if !math.IsNaN(final.TestAccuracy) {
		t.Fatalf("post-divergence accuracy %v, want NaN", final.TestAccuracy)
	}
	// The partial epoch is distinguishable: it averaged fewer batches
	// than a full epoch (160 samples / batch 10 = 16).
	if final.Batches >= 16 {
		t.Fatalf("diverged epoch recorded %d batches, want < 16", final.Batches)
	}
	// Earlier, healthy epochs record the full batch count.
	if len(hist.Epochs) > 1 && hist.Epochs[0].Batches != 16 {
		t.Fatalf("healthy epoch recorded %d batches, want 16", hist.Epochs[0].Batches)
	}
}

func TestEpochStatsRecordBatchCount(t *testing.T) {
	ds := tinyDataset(t, 33)
	m := tinyMethod(t, "standard", ds, 34)
	tr, err := New(m, ds, Config{Epochs: 2, BatchSize: 10, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hist.Epochs {
		if e.Batches != 16 { // 160 train samples / batch 10
			t.Fatalf("epoch %d recorded %d batches, want 16", e.Epoch, e.Batches)
		}
	}
}

func TestTrainerCheckpoints(t *testing.T) {
	ds := tinyDataset(t, 40)
	m := tinyMethod(t, "standard", ds, 41)
	path := filepath.Join(t.TempDir(), "best.snn")
	tr, err := New(m, ds, Config{Epochs: 4, BatchSize: 10, Seed: 42, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadFile(path)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// The checkpoint holds the best-accuracy weights: its accuracy must
	// equal the run's best accuracy.
	acc := loaded.Accuracy(ds.Test.X, ds.Test.Y)
	if math.Abs(acc-hist.BestAccuracy()) > 1e-12 {
		t.Fatalf("checkpoint accuracy %v vs best %v", acc, hist.BestAccuracy())
	}
}

func TestEarlyStopping(t *testing.T) {
	ds := tinyDataset(t, 50)
	// A tiny learning rate makes validation accuracy plateau immediately,
	// so patience should trigger well before the epoch budget.
	net, err := nn.NewNetwork(nn.Uniform(ds.Spec.Dim(), 24, 2, ds.Spec.Classes), rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewStandard(net, opt.NewSGD(1e-9))
	tr, err := New(m, ds, Config{Epochs: 30, BatchSize: 20, Seed: 52, EarlyStopPatience: 3})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !hist.EarlyStopped {
		t.Fatal("early stopping never triggered on a frozen model")
	}
	if len(hist.Epochs) >= 30 {
		t.Fatalf("ran all %d epochs despite plateau", len(hist.Epochs))
	}
	if len(hist.Epochs) != 4 { // epoch 1 sets the best, then 3 patience epochs
		t.Fatalf("expected 4 epochs (1 + patience 3), got %d", len(hist.Epochs))
	}
	for _, e := range hist.Epochs {
		if e.ValAccuracy < 0 || e.ValAccuracy > 1 {
			t.Fatalf("val accuracy %v", e.ValAccuracy)
		}
	}
}

func TestEarlyStoppingDisabledByDefault(t *testing.T) {
	ds := tinyDataset(t, 53)
	m := tinyMethod(t, "standard", ds, 54)
	tr, _ := New(m, ds, Config{Epochs: 3, BatchSize: 20, Seed: 55})
	hist, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.EarlyStopped || len(hist.Epochs) != 3 {
		t.Fatal("early stopping must be off by default")
	}
	if hist.Final().ValAccuracy != 0 {
		t.Fatal("val accuracy should not be evaluated when early stopping is off")
	}
}
