package train

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"samplednn/internal/obs/trace"
	"samplednn/internal/pool"
)

// traceSchema reduces an exported trace to its span vocabulary: the
// sorted set of unique "cat/name" pairs plus the metadata event names.
// Timings, counts, and span multiplicity vary run to run and machine to
// machine; the vocabulary is the contract trace consumers (Perfetto
// queries, the bench overhead experiment) rely on.
func traceSchema(t *testing.T, doc tracedoc) string {
	t.Helper()
	set := map[string]struct{}{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			set["meta/"+e.Name] = struct{}{}
		case "X":
			set[e.Cat+"/"+e.Name] = struct{}{}
		default:
			t.Errorf("unexpected event phase %q in %+v", e.Ph, e)
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintln(&b, k)
	}
	return b.String()
}

// tracedoc mirrors the Chrome trace_event JSON object format, decoded
// independently of the trace package's own types so the test pins the
// wire format, not the Go structs.
type tracedoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceGoldenSchema runs a short sequential-ALSH training with the
// tracer, probe, and checkpointing all enabled, then pins (a) that the
// output is loadable Chrome trace_event JSON and (b) the span
// vocabulary against a golden file. Regenerate with
// TRACE_GOLDEN_UPDATE=1 go test ./internal/train -run TraceGoldenSchema.
func TestTraceGoldenSchema(t *testing.T) {
	// One pool worker: pool/task spans come from resident helper
	// goroutines, so their presence would depend on GOMAXPROCS.
	pool.SetDefaultWorkers(1)
	defer pool.SetDefaultWorkers(runtime.GOMAXPROCS(0))

	trc := trace.New(0)
	trace.SetActive(trc)
	defer trace.SetActive(nil)

	// Build the method with the tracer already active so the initial
	// lsh/rebuild (index construction) is part of the trace.
	ds := tinyDataset(t, 80)
	m := tinyMethod(t, "alsh", ds, 81)
	tr, err := New(m, ds, Config{
		Epochs: 1, BatchSize: 1, Seed: 82,
		StatePath:  filepath.Join(t.TempDir(), "state.snck"),
		ProbeEvery: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	trace.SetActive(nil)

	if trc.Dropped() != 0 {
		t.Fatalf("ring dropped %d spans; grow the capacity so the schema is complete", trc.Dropped())
	}

	var buf bytes.Buffer
	if _, err := trc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc tracedoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace exported no events")
	}
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.PID != 1 {
			t.Fatalf("malformed event %+v", e)
		}
		if e.Ph == "X" && (e.Cat == "" || e.Dur < 0 || e.TS < 0) {
			t.Fatalf("malformed complete event %+v", e)
		}
	}

	got := traceSchema(t, doc)
	goldenPath := filepath.Join("testdata", "trace_schema.golden")
	if os.Getenv("TRACE_GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with TRACE_GOLDEN_UPDATE=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("trace span vocabulary drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
