// Package obs is samplednn's run-telemetry layer. The source paper is an
// evaluation study: its conclusions rest on per-phase wall-clock
// accounting (§9.2, §10.1) and on sampling diagnostics like the
// active-set collapse behind §10.3 — none of which can be reported if the
// runtime cannot observe itself. obs provides the two pieces every layer
// shares:
//
//   - a Registry of named atomic Counters, Gauges, Timers, and
//     Distributions, cheap enough (one or two atomic ops per update) to
//     sit inside kernels that take tens of microseconds, and
//   - a structured JSONL run Journal (journal.go) that records the
//     lifecycle of a training run — run-start, per-epoch stats,
//     divergence/rollback, checkpoints, early-stop, run-end — for
//     offline analysis.
//
// The package depends only on the standard library, so every internal
// package (pool, tensor, core, train) can import it without cycles.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic last-written float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease), via CAS so
// concurrent adders never lose updates — the in-flight-request count
// the serving layer's drain path watches.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last stored value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates durations.
type Timer struct{ total, count atomic.Int64 }

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.total.Add(int64(d))
	t.count.Add(1)
}

// Start begins a measurement; the returned func stops it and records the
// elapsed time:
//
//	defer timer.Start()()
func (t *Timer) Start() func() {
	t0 := time.Now()
	return func() { t.Observe(time.Since(t0)) }
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.total.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// TimerSnapshot is a Timer's exportable state.
type TimerSnapshot struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// Distribution summarizes a stream of non-negative integer observations
// (active-set sizes, bucket loads): count, sum, min, max, plus a log2
// histogram. All updates are atomic, so concurrent observers need no
// locking; Reset must not race with Observe.
type Distribution struct {
	count, sum atomic.Int64
	min, max   atomic.Int64
	// buckets[i] counts observations whose bit length is i: bucket 0 is
	// v == 0, bucket i >= 1 covers [2^(i-1), 2^i).
	buckets [65]atomic.Int64
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	d := &Distribution{}
	d.min.Store(math.MaxInt64)
	d.max.Store(math.MinInt64)
	return d
}

// Observe records one value. Negative values are clamped to zero.
func (d *Distribution) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	d.count.Add(1)
	d.sum.Add(v)
	for {
		cur := d.min.Load()
		if v >= cur || d.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := d.max.Load()
		if v <= cur || d.max.CompareAndSwap(cur, v) {
			break
		}
	}
	d.buckets[bits.Len64(uint64(v))].Add(1)
}

// TimeMicros begins a latency measurement; the returned func records
// the elapsed time in whole microseconds:
//
//	defer dist.TimeMicros()()
//
// It lives here because obs owns the wall clock: callers in library
// code (the serving layer's per-request latency) get log2-bucketed
// latency percentiles without reading time.Now themselves, which the
// wall-clock lint check forbids outside internal/obs and internal/bench.
func (d *Distribution) TimeMicros() func() {
	t0 := time.Now()
	return func() { d.Observe(time.Since(t0).Microseconds()) }
}

// Reset clears the distribution. It must not race with Observe.
func (d *Distribution) Reset() {
	d.count.Store(0)
	d.sum.Store(0)
	d.min.Store(math.MaxInt64)
	d.max.Store(math.MinInt64)
	for i := range d.buckets {
		d.buckets[i].Store(0)
	}
}

// DistSnapshot is a Distribution's exportable state.
type DistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	// P50, P95, and P99 are approximate quantiles reconstructed from the
	// log2 histogram: the target rank's bucket is found by cumulative
	// count and the value interpolated linearly inside the bucket's
	// [2^(i-1), 2^i) range, then clamped to [Min, Max]. The relative
	// error is therefore bounded by the bucket width (a factor of 2).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Buckets[i] counts observations of bit length i: Buckets[0] is
	// v == 0, Buckets[i] for i >= 1 covers [2^(i-1), 2^i). Trailing zero
	// buckets are trimmed.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot exports the current state. Min and Max are zero when empty.
func (d *Distribution) Snapshot() DistSnapshot {
	s := DistSnapshot{Count: d.count.Load(), Sum: d.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min, s.Max = d.min.Load(), d.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	last := -1
	var buckets [65]int64
	for i := range d.buckets {
		buckets[i] = d.buckets[i].Load()
		if buckets[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), buckets[:last+1]...)
	}
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// quantile reconstructs the q-quantile (q in [0,1]) from the log2
// histogram: walk buckets to the one containing the target rank, then
// interpolate linearly across the bucket's value range by the rank's
// position within the bucket. Clamped to [Min, Max], so single-bucket
// distributions still report sane values.
func (s DistSnapshot) quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(s.Buckets)-1 {
			// Bucket i covers [lo, hi): bucket 0 is exactly 0, bucket
			// i >= 1 is [2^(i-1), 2^i).
			var lo, hi float64
			if i > 0 {
				lo = math.Ldexp(1, i-1)
				hi = math.Ldexp(1, i)
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			v := lo + frac*(hi-lo)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum = next
	}
	return float64(s.Max)
}

// Registry is a concurrency-safe namespace of metrics. Lookup is
// get-or-create, so callers can resolve a metric once at package init and
// update it lock-free afterwards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	dists    map[string]*Distribution
	// remotes holds snapshots attached from other processes (worker
	// registries piggybacked on dist acks); rendered as labeled families
	// by WritePrometheus, never included in Snapshot.
	remotes map[string]remoteSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		dists:    map[string]*Distribution{},
	}
}

// Default is the process-wide registry. Library packages (pool) register
// their metrics here so a single Snapshot covers the whole runtime.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Distribution returns the named distribution, creating it on first use.
func (r *Registry) Distribution(name string) *Distribution {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.dists[name]
	if !ok {
		d = NewDistribution()
		r.dists[name] = d
	}
	return d
}

// Snapshot is a point-in-time export of a registry, JSON-serializable
// for the run journal. Empty sections are omitted.
type Snapshot struct {
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]float64       `json:"gauges,omitempty"`
	Timers   map[string]TimerSnapshot `json:"timers,omitempty"`
	Dists    map[string]DistSnapshot  `json:"dists,omitempty"`
}

// Snapshot exports every registered metric. Metrics updated concurrently
// are read atomically but the snapshot as a whole is not a consistent
// cut — fine for telemetry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerSnapshot, len(r.timers))
		for n, t := range r.timers {
			s.Timers[n] = TimerSnapshot{Count: t.Count(), TotalNS: t.total.Load()}
		}
	}
	if len(r.dists) > 0 {
		s.Dists = make(map[string]DistSnapshot, len(r.dists))
		for n, d := range r.dists {
			s.Dists[n] = d.Snapshot()
		}
	}
	return s
}

// Names returns the sorted names of all registered metrics (all kinds),
// mainly for introspection and tests.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.timers {
		names = append(names, n)
	}
	for n := range r.dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
