package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestCtxWireRoundTrip(t *testing.T) {
	cx := Ctx{Run: 0xdeadbeefcafef00d, Trace: 1, Span: 1 << 63, Clock: 42}
	var buf [CtxWireLen]byte
	cx.PutWire(buf[:])
	got := CtxFromWire(buf[:])
	if got != cx {
		t.Fatalf("wire round trip: got %+v want %+v", got, cx)
	}
	var zero [CtxWireLen]byte
	if got := CtxFromWire(zero[:]); got != (Ctx{}) {
		t.Fatalf("zero wire bytes decoded to %+v, want zero Ctx", got)
	}
}

func TestIDDerivationDeterministic(t *testing.T) {
	if RunID(42) != RunID(42) {
		t.Fatal("RunID not deterministic")
	}
	if RunID(42) == RunID(43) {
		t.Fatal("RunID(42) == RunID(43)")
	}
	if RunID(0) == 0 {
		t.Fatal("RunID(0) must be nonzero")
	}
	run := RunID(42)
	if StepTrace(run, 1, 2) != StepTrace(run, 1, 2) {
		t.Fatal("StepTrace not deterministic")
	}
	// Distinct (epoch, step) positions must not collide, including the
	// pairs a 32-bit shift mixes near each other.
	seen := map[uint64][2]int{}
	for epoch := 0; epoch < 8; epoch++ {
		for step := 0; step < 64; step++ {
			tr := StepTrace(run, epoch, step)
			if prev, dup := seen[tr]; dup {
				t.Fatalf("StepTrace collision: (%d,%d) and (%d,%d)", prev[0], prev[1], epoch, step)
			}
			seen[tr] = [2]int{epoch, step}
		}
	}
	if RequestTrace(run, 1) == RequestTrace(run, 2) {
		t.Fatal("RequestTrace collision for consecutive requests")
	}
}

func TestChildSpansDiffer(t *testing.T) {
	parent := StepCtx(RunID(7), 0, 0)
	c0, c1 := parent.Child(0), parent.Child(1)
	if c0.Run != parent.Run || c0.Trace != parent.Trace {
		t.Fatal("Child changed run/trace")
	}
	if c0.Span == parent.Span || c0.Span == c1.Span {
		t.Fatalf("child spans must be distinct: parent %x c0 %x c1 %x", parent.Span, c0.Span, c1.Span)
	}
	if parent.Child(0) != c0 {
		t.Fatal("Child not deterministic")
	}
}

func TestFormatParseID(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xffffffffffffffff, 0x8000000000000001} {
		s := FormatID(v)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex digits", v, s)
		}
		got, ok := ParseID(s)
		if !ok || got != v {
			t.Fatalf("ParseID(FormatID(%d)) = %d, %v", v, got, ok)
		}
	}
	if v, ok := ParseID("ff"); !ok || v != 0xff {
		t.Fatalf("ParseID should accept short hex: got %d, %v", v, ok)
	}
	for _, bad := range []string{"", "xyz", "12345678901234567", "0x12", "-1", "12 34"} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID(%q) should fail", bad)
		}
	}
}

func TestClockTickAndWitness(t *testing.T) {
	c := NewClock()
	if got := c.Tick(); got != 1 {
		t.Fatalf("first Tick = %d, want 1", got)
	}
	if got := c.Tick(); got != 2 {
		t.Fatalf("second Tick = %d, want 2", got)
	}
	// Witnessing a remote value ahead of us jumps past it.
	if got := c.Witness(100); got != 101 {
		t.Fatalf("Witness(100) = %d, want 101", got)
	}
	// Witnessing a stale remote still advances monotonically.
	if got := c.Witness(5); got != 102 {
		t.Fatalf("Witness(5) = %d, want 102", got)
	}
	if got := c.Now(); got != 102 {
		t.Fatalf("Now = %d, want 102", got)
	}
}

func TestClockNilSafe(t *testing.T) {
	var c *Clock
	if c.Tick() != 0 || c.Witness(9) != 0 || c.Now() != 0 {
		t.Fatal("nil Clock methods must return 0")
	}
}

// TestDisabledCtxPathZeroAlloc pins the acceptance requirement that the
// disabled-context path allocates nothing (the PR-4 tracer precedent):
// nil clock, nil journal, and wire encode/decode into a caller buffer.
func TestDisabledCtxPathZeroAlloc(t *testing.T) {
	var clk *Clock
	var j *Journal
	cx := StepCtx(RunID(3), 1, 2)
	buf := make([]byte, CtxWireLen)
	allocs := testing.AllocsPerRun(1000, func() {
		_ = clk.Tick()
		_ = clk.Witness(7)
		cx.PutWire(buf)
		cx = CtxFromWire(buf)
		_ = cx.Child(1)
		j.EmitCtx(cx, "noop", nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled ctx path allocates %.1f per op, want 0", allocs)
	}
}

func TestEmitCtxStampsIDsAndClock(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	clk := NewClock()
	j.SetLamport(clk)
	cx := StepCtx(RunID(42), 1, 2)
	j.EmitCtx(cx, "dist-sync", map[string]any{"rank": 0})
	j.Emit("epoch", map[string]any{"loss": 0.5})
	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if got := recs[0]["trace"]; got != FormatID(cx.Trace) {
		t.Fatalf("trace = %v, want %s", got, FormatID(cx.Trace))
	}
	if got := recs[0]["run"]; got != FormatID(cx.Run) {
		t.Fatalf("run = %v, want %s", got, FormatID(cx.Run))
	}
	if got := recs[0]["span"]; got != FormatID(cx.Span) {
		t.Fatalf("span = %v, want %s", got, FormatID(cx.Span))
	}
	if lc, _ := recs[0]["lc"].(float64); lc != 1 {
		t.Fatalf("first lc = %v, want 1", recs[0]["lc"])
	}
	// Plain Emit records also tick the attached clock, so in-process
	// events interleave causally with dist events in a merge.
	if lc, _ := recs[1]["lc"].(float64); lc != 2 {
		t.Fatalf("second lc = %v, want 2", recs[1]["lc"])
	}
	if _, has := recs[1]["trace"]; has {
		t.Fatal("plain Emit must not stamp trace")
	}
}

func TestEmitCtxWithoutClockUsesCtxClock(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	j.EmitCtx(Ctx{Run: 1, Trace: 2, Span: 3, Clock: 9}, "ev", nil)
	j.EmitCtx(Ctx{Run: 1, Trace: 2, Span: 3}, "ev2", nil)
	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if lc, _ := recs[0]["lc"].(float64); lc != 9 {
		t.Fatalf("lc = %v, want 9 (from Ctx.Clock)", recs[0]["lc"])
	}
	if _, has := recs[1]["lc"]; has {
		t.Fatal("zero Ctx.Clock with no journal clock must not stamp lc")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pool.tasks").Add(7)
	r.Gauge("train.loss").Set(0.25)
	r.Timer("step").Observe(1500 * time.Nanosecond)
	r.Distribution("rows").Observe(10)
	data, err := EncodeSnapshot(r.Snapshot())
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	data2, err := EncodeSnapshot(r.Snapshot())
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("EncodeSnapshot not deterministic for identical state")
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Counters["pool.tasks"] != 7 {
		t.Fatalf("counter = %d, want 7", got.Counters["pool.tasks"])
	}
	if got.Gauges["train.loss"] != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got.Gauges["train.loss"])
	}
	if got.Timers["step"].Count != 1 || got.Dists["rows"].Count != 1 {
		t.Fatal("timer/dist lost in round trip")
	}
}

func TestSnapshotCodecClampsNonFinite(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("train.loss")
	g.Set(0)
	g.Add(1)
	g.Add(-1)
	s := r.Snapshot()
	s.Gauges["train.loss"] = math.NaN()
	data, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("EncodeSnapshot with NaN gauge: %v", err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Gauges["train.loss"] != 0 {
		t.Fatalf("NaN gauge = %v, want clamped 0", decoded.Gauges["train.loss"])
	}
}
