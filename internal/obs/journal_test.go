package obs

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestJournalEmitAndRead(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	j.SetClock(fixedClock())
	j.Emit("run-start", map[string]any{"method": "standard", "seed": 42})
	j.Emit("epoch", map[string]any{"epoch": 1, "train_loss": 0.5})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Event() != "run-start" || recs[1].Event() != "epoch" {
		t.Fatalf("events %q, %q", recs[0].Event(), recs[1].Event())
	}
	if recs[0]["method"] != "standard" {
		t.Fatalf("fields lost: %v", recs[0])
	}
	if ts, _ := recs[0]["ts"].(string); !strings.HasPrefix(ts, "2026-01-02T03:04:05") {
		t.Fatalf("timestamp %q not from the pinned clock", ts)
	}
}

func TestJournalNonFiniteFloats(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	j.Emit("epoch", map[string]any{
		"nan":    math.NaN(),
		"posinf": math.Inf(1),
		"neginf": math.Inf(-1),
		"nested": map[string]any{"v": math.NaN()},
		"list":   []any{math.Inf(1)},
	})
	if err := j.Err(); err != nil {
		t.Fatalf("non-finite floats must not poison the journal: %v", err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r["nan"] != "NaN" || r["posinf"] != "+Inf" || r["neginf"] != "-Inf" {
		t.Fatalf("sanitization failed: %v", r)
	}
	if r["nested"].(map[string]any)["v"] != "NaN" {
		t.Fatal("nested map not sanitized")
	}
	if r["list"].([]any)[0] != "+Inf" {
		t.Fatal("slice not sanitized")
	}
}

func TestJournalReservedKeys(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	j.SetClock(fixedClock())
	j.Emit("x", map[string]any{"ev": "spoofed", "ts": "spoofed"})
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Event() != "x" {
		t.Fatalf("reserved ev overridden: %v", recs[0])
	}
	if recs[0]["ts"] == "spoofed" {
		t.Fatal("reserved ts overridden")
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	j.Emit("a", nil)
	j.Emit("b", nil)
	torn := buf.String() + `{"ev":"c","half`
	recs, err := Read(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must be dropped, not fatal: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	// A malformed line that is NOT the tail is corruption.
	bad := `{"ev":"a"` + "\n" + `{"ev":"b"}` + "\n"
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-file corruption must error")
	}
}

func TestJournalFileAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit("run-start", map[string]any{"seed": 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening appends instead of truncating.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Emit("run-end", nil)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Event() != "run-start" || recs[1].Event() != "run-end" {
		t.Fatalf("records %v", recs)
	}
}
