package obs

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"pool.tasks.inline": "pool_tasks_inline",
		"train.test_acc":    "train_test_acc",
		"lsh:rebuilds":      "lsh:rebuilds",
		"9lives":            "_9lives",
		"ok_name_42":        "ok_name_42",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusRendersAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("pool.tasks.inline").Add(7)
	r.Gauge("train.loss").Set(0.25)
	r.Timer("io.write").Observe(1500 * time.Millisecond)
	d := r.Distribution("active.sets")
	for v := int64(1); v <= 100; v++ {
		d.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pool_tasks_inline_total counter",
		"pool_tasks_inline_total 7",
		"# TYPE train_loss gauge",
		"train_loss 0.25",
		"# TYPE io_write_seconds summary",
		"io_write_seconds_sum 1.5",
		"io_write_seconds_count 1",
		"# TYPE active_sets summary",
		`active_sets{quantile="0.5"}`,
		`active_sets{quantile="0.95"}`,
		`active_sets{quantile="0.99"}`,
		"active_sets_sum 5050",
		"active_sets_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("train.batches").Add(3)
	r.Gauge("train.epoch").Set(2)

	srv := httptest.NewServer(r)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "train_batches_total 3") || !strings.Contains(body, "train_epoch 2") {
		t.Fatalf("unexpected body:\n%s", body)
	}
}

// TestDistributionQuantiles checks the log2-bucket reconstruction: for a
// uniform stream 1..N the quantiles must land within a factor of two of
// the exact values (the bucket-width bound) and be monotone.
func TestDistributionQuantiles(t *testing.T) {
	d := NewDistribution()
	const n = 1000
	for v := int64(1); v <= n; v++ {
		d.Observe(v)
	}
	s := d.Snapshot()
	check := func(name string, got, exact float64) {
		if got < exact/2 || got > exact*2 {
			t.Errorf("%s = %v, want within 2x of %v", name, got, exact)
		}
	}
	check("p50", s.P50, 0.50*n)
	check("p95", s.P95, 0.95*n)
	check("p99", s.P99, 0.99*n)
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
	if s.P99 > float64(s.Max) || s.P50 < float64(s.Min) {
		t.Errorf("quantiles escape [min,max]: %v %v vs [%d,%d]", s.P50, s.P99, s.Min, s.Max)
	}
}

// TestDistributionQuantilesDegenerate: constant streams report the
// constant for every quantile, empty distributions report zero.
func TestDistributionQuantilesDegenerate(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 50; i++ {
		d.Observe(42)
	}
	s := d.Snapshot()
	if s.P50 != 42 || s.P95 != 42 || s.P99 != 42 {
		t.Errorf("constant stream quantiles %v %v %v, want 42", s.P50, s.P95, s.P99)
	}
	var empty DistSnapshot
	if empty.quantile(0.5) != 0 {
		t.Error("empty distribution quantile must be 0")
	}
	dz := NewDistribution()
	dz.Observe(0)
	sz := dz.Snapshot()
	if sz.P50 != 0 || sz.P99 != 0 {
		t.Errorf("all-zero stream quantiles %v %v, want 0", sz.P50, sz.P99)
	}
}

// TestPrometheusFamilyCollision pins the sanitization dedupe: distinct
// registry names that sanitize to the same Prometheus family ("pool.tasks"
// vs "pool_tasks") must render as distinct families, deterministically,
// because real scrapers reject an exposition with duplicate families.
func TestPrometheusFamilyCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("pool.tasks").Add(1)
	r.Counter("pool_tasks").Add(2)
	r.Gauge("lsh.load").Set(3)
	r.Gauge("lsh_load").Set(4)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	families := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		parts := strings.Fields(line)
		families[parts[2]]++
	}
	for fam, n := range families {
		if n > 1 {
			t.Errorf("family %q declared %d times", fam, n)
		}
	}
	for _, want := range []string{"pool_tasks_total", "pool_tasks_total_2", "lsh_load", "lsh_load_2"} {
		if families[want] != 1 {
			t.Errorf("family %q missing from exposition:\n%s", want, out)
		}
	}
	// Sorted processing order makes the assignment deterministic: the
	// dotted name sorts first and keeps the unsuffixed family.
	if !strings.Contains(out, "pool_tasks_total 1") || !strings.Contains(out, "pool_tasks_total_2 2") {
		t.Errorf("collision suffix not deterministic:\n%s", out)
	}
}

// TestPrometheusRemoteFamilies pins the worker-snapshot rendering: each
// attached snapshot contributes {rank="N"}-labeled samples under
// ns-prefixed families, ordered numerically by rank.
func TestPrometheusRemoteFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("dist.steps").Add(5)
	for _, rank := range []int{10, 2, 0} { // attach out of order on purpose
		w := NewRegistry()
		w.Counter("pool.tasks.inline").Add(int64(rank) + 1)
		w.Gauge("worker.epoch").Set(float64(rank))
		w.Timer("grad.compute").Observe(time.Duration(rank+1) * time.Millisecond)
		w.Distribution("batch.rows").Observe(int64(rank + 1))
		r.AttachSnapshot("worker", "rank", strconv.Itoa(rank), w.Snapshot())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE worker_pool_tasks_inline_total counter",
		`worker_pool_tasks_inline_total{rank="0"} 1`,
		`worker_pool_tasks_inline_total{rank="2"} 3`,
		`worker_pool_tasks_inline_total{rank="10"} 11`,
		"# TYPE worker_worker_epoch gauge",
		`worker_worker_epoch{rank="10"} 10`,
		"# TYPE worker_grad_compute_seconds summary",
		`worker_grad_compute_seconds_sum{rank="0"} 0.001`,
		`worker_grad_compute_seconds_count{rank="0"} 1`,
		"# TYPE worker_batch_rows summary",
		`worker_batch_rows{rank="2",quantile="0.5"}`,
		`worker_batch_rows_count{rank="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Numeric rank order: rank 2 renders before rank 10.
	if strings.Index(out, `{rank="2"} 3`) > strings.Index(out, `{rank="10"} 11`) {
		t.Errorf("ranks not numerically ordered:\n%s", out)
	}
	// Re-attaching the same rank replaces, not duplicates.
	w := NewRegistry()
	w.Counter("pool.tasks.inline").Add(99)
	r.AttachSnapshot("worker", "rank", "2", w.Snapshot())
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `worker_pool_tasks_inline_total{rank="2"} 99`) {
		t.Errorf("re-attach did not replace rank 2 snapshot:\n%s", buf.String())
	}
}

// TestPrometheusRemoteFamilyNoCollision is the property test extending
// TestPrometheusFamilyCollision across process boundaries: a worker
// metric whose prefixed name sanitizes onto an existing coordinator
// family must not produce a duplicate # TYPE declaration.
func TestPrometheusRemoteFamilyNoCollision(t *testing.T) {
	r := NewRegistry()
	// Coordinator registers a metric that already lands on the family
	// name the worker namespace would produce.
	r.Counter("worker.pool.tasks").Add(1)
	w := NewRegistry()
	w.Counter("pool.tasks").Add(2)
	w2 := NewRegistry()
	w2.Counter("pool_tasks").Add(3) // second worker metric colliding post-sanitize
	r.AttachSnapshot("worker", "rank", "0", w.Snapshot())
	r.AttachSnapshot("worker", "rank", "1", w2.Snapshot())

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	families := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		families[strings.Fields(line)[2]]++
	}
	for fam, n := range families {
		if n > 1 {
			t.Errorf("family %q declared %d times:\n%s", fam, n, out)
		}
	}
	// Local family keeps the base name; each remote collider gets the
	// next deterministic suffix ("pool.tasks" sorts before "pool_tasks").
	if !strings.Contains(out, "worker_pool_tasks_total 1") {
		t.Errorf("local family lost its name:\n%s", out)
	}
	if !strings.Contains(out, `worker_pool_tasks_total_2{rank="0"} 2`) {
		t.Errorf("first remote collider not suffixed _2:\n%s", out)
	}
	if !strings.Contains(out, `worker_pool_tasks_total_3{rank="1"} 3`) {
		t.Errorf("second remote collider not suffixed _3:\n%s", out)
	}
}

func TestDistributionTimeMicros(t *testing.T) {
	d := NewDistribution()
	stop := d.TimeMicros()
	stop()
	s := d.Snapshot()
	if s.Count != 1 {
		t.Fatalf("want one observation, got %d", s.Count)
	}
	if s.Min < 0 {
		t.Fatalf("negative latency %d", s.Min)
	}
}
