package obs

import (
	"encoding/json"
	"fmt"
	"math"
)

// Snapshot wire codec: the format worker processes use to piggyback
// their registry state on dist sync/commit acks so the coordinator's
// /metrics endpoint can expose per-rank families (prometheus.go,
// AttachSnapshot). JSON was chosen over a binary layout deliberately:
// Go's encoder sorts map keys, so the same registry state always
// encodes to the same bytes (snapshots may be compared or journaled),
// and the payload is a few hundred bytes on a cadence of whole training
// steps — framing overhead is irrelevant next to gradient blobs.

// EncodeSnapshot renders a snapshot for transport. Non-finite gauge
// values (a NaN training loss mid-divergence) are clamped to keep the
// encoding total: NaN becomes 0, ±Inf the largest finite float.
func EncodeSnapshot(s Snapshot) ([]byte, error) {
	if s.Gauges != nil {
		clean := make(map[string]float64, len(s.Gauges))
		for k, v := range s.Gauges {
			clean[k] = clampFinite(v)
		}
		s.Gauges = clean
	}
	data, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	return data, nil
}

// DecodeSnapshot parses an EncodeSnapshot payload.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	return s, nil
}

func clampFinite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}
