package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so a running training process can be watched with
// nothing but curl — or scraped by an actual Prometheus — through the
// same HTTP mux the -pprof-addr flag already serves. The mapping:
//
//   - Counter      → counter  <name>_total
//   - Gauge        → gauge    <name>
//   - Timer        → summary  <name>_seconds_sum / <name>_seconds_count
//   - Distribution → summary  <name>{quantile="0.5|0.95|0.99"} plus
//     _sum/_count, using the approximate quantiles reconstructed from
//     the log2 histogram (see DistSnapshot).
//
// Metric names are sanitized to the Prometheus charset: every character
// outside [a-zA-Z0-9_:] (the dots in "pool.tasks.inline") becomes '_'.
// Sanitization is lossy — "pool.tasks" and "pool_tasks" both map to
// pool_tasks — so family names are deduplicated per render: the first
// claimant (processing order is fixed: counters, gauges, timers,
// distributions, each sorted by registry name) keeps the sanitized
// name and later colliders get a deterministic "_2", "_3", … suffix.
// Real scrapers reject an exposition with a duplicate family outright,
// which would turn one colliding registration into a dead /metrics.

// sanitizeMetricName rewrites name into the Prometheus identifier
// charset. A leading digit is prefixed with '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a sample value; Prometheus spells non-finite values
// +Inf, -Inf, and NaN (Go's %g matches for all three).
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }

// familyNames allocates unique Prometheus family names for one render.
// The map is keyed by the final family name (after any kind-specific
// suffix like _total), so two registry names whose sanitized forms
// collide come out distinct.
type familyNames map[string]bool

// claim returns the sanitized family name for the registry metric name
// plus kind suffix, appending "_2", "_3", … when a previously rendered
// family already took it.
func (fn familyNames) claim(name, suffix string) string {
	base := sanitizeMetricName(name) + suffix
	n := base
	for i := 2; fn[n]; i++ {
		n = fmt.Sprintf("%s_%d", base, i)
	}
	fn[n] = true
	return n
}

// WritePrometheus renders every registered metric in the text exposition
// format, sorted by name within each kind for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	fams := familyNames{}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		n := fams.claim(name, "_total")
		p("# TYPE %s counter\n", n)
		p("%s %d\n", n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := fams.claim(name, "")
		p("# TYPE %s gauge\n", n)
		p("%s %s\n", n, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Timers) {
		n := fams.claim(name, "_seconds")
		t := s.Timers[name]
		p("# TYPE %s summary\n", n)
		p("%s_sum %s\n", n, promFloat(float64(t.TotalNS)/1e9))
		p("%s_count %d\n", n, t.Count)
	}
	for _, name := range sortedKeys(s.Dists) {
		n := fams.claim(name, "")
		d := s.Dists[name]
		p("# TYPE %s summary\n", n)
		p("%s{quantile=\"0.5\"} %s\n", n, promFloat(d.P50))
		p("%s{quantile=\"0.95\"} %s\n", n, promFloat(d.P95))
		p("%s{quantile=\"0.99\"} %s\n", n, promFloat(d.P99))
		p("%s_sum %d\n", n, d.Sum)
		p("%s_count %d\n", n, d.Count)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ServeHTTP makes the registry an http.Handler serving the /metrics
// scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
