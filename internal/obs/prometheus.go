package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so a running training process can be watched with
// nothing but curl — or scraped by an actual Prometheus — through the
// same HTTP mux the -pprof-addr flag already serves. The mapping:
//
//   - Counter      → counter  <name>_total
//   - Gauge        → gauge    <name>
//   - Timer        → summary  <name>_seconds_sum / <name>_seconds_count
//   - Distribution → summary  <name>{quantile="0.5|0.95|0.99"} plus
//     _sum/_count, using the approximate quantiles reconstructed from
//     the log2 histogram (see DistSnapshot).
//
// Metric names are sanitized to the Prometheus charset: every character
// outside [a-zA-Z0-9_:] (the dots in "pool.tasks.inline") becomes '_'.
// Sanitization is lossy — "pool.tasks" and "pool_tasks" both map to
// pool_tasks — so family names are deduplicated per render: the first
// claimant (processing order is fixed: counters, gauges, timers,
// distributions, each sorted by registry name) keeps the sanitized
// name and later colliders get a deterministic "_2", "_3", … suffix.
// Real scrapers reject an exposition with a duplicate family outright,
// which would turn one colliding registration into a dead /metrics.

// sanitizeMetricName rewrites name into the Prometheus identifier
// charset. A leading digit is prefixed with '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a sample value; Prometheus spells non-finite values
// +Inf, -Inf, and NaN (Go's %g matches for all three).
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }

// familyNames allocates unique Prometheus family names for one render.
// The map is keyed by the final family name (after any kind-specific
// suffix like _total), so two registry names whose sanitized forms
// collide come out distinct.
type familyNames map[string]bool

// claim returns the sanitized family name for the registry metric name
// plus kind suffix, appending "_2", "_3", … when a previously rendered
// family already took it.
func (fn familyNames) claim(name, suffix string) string {
	base := sanitizeMetricName(name) + suffix
	n := base
	for i := 2; fn[n]; i++ {
		n = fmt.Sprintf("%s_%d", base, i)
	}
	fn[n] = true
	return n
}

// remoteSnapshot is one attached remote registry: a namespace prefix
// (e.g. "worker"), an identifying label ("rank"="2"), and the state.
type remoteSnapshot struct {
	ns, label, value string
	snap             Snapshot
}

// AttachSnapshot installs (or replaces) the remote registry snapshot
// identified by (ns, label, value). The dist coordinator attaches each
// worker's piggybacked snapshot as ("worker", "rank", "<r>"), and
// WritePrometheus renders every remote metric as a family named
// ns_<metric> with one {label="value"} sample per attached remote —
// deduplicated against local families, so a worker metric whose
// prefixed name collides with a coordinator family gets the same
// "_2"/"_3" suffix treatment as any other sanitization collision.
func (r *Registry) AttachSnapshot(ns, label, value string, s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.remotes == nil {
		r.remotes = map[string]remoteSnapshot{}
	}
	r.remotes[ns+"\x00"+label+"\x00"+value] = remoteSnapshot{ns: ns, label: label, value: value, snap: s}
}

// remoteList returns the attached snapshots in deterministic render
// order: by namespace, then label, then value (numerically when both
// values are integers, so rank 10 follows rank 2).
func (r *Registry) remoteList() []remoteSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]remoteSnapshot, 0, len(r.remotes))
	for _, rs := range r.remotes {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ns != b.ns {
			return a.ns < b.ns
		}
		if a.label != b.label {
			return a.label < b.label
		}
		return labelValueLess(a.value, b.value)
	})
	return out
}

// labelValueLess orders label values numerically when both parse as
// integers, lexically otherwise.
func labelValueLess(a, b string) bool {
	ai, aerr := strconv.Atoi(a)
	bi, berr := strconv.Atoi(b)
	if aerr == nil && berr == nil {
		return ai < bi
	}
	return a < b
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders every registered metric in the text exposition
// format, sorted by name within each kind for stable output. Local
// families render first, then any attached remote snapshots as labeled
// families; family names are deduplicated across both.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	fams := familyNames{}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		n := fams.claim(name, "_total")
		p("# TYPE %s counter\n", n)
		p("%s %d\n", n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := fams.claim(name, "")
		p("# TYPE %s gauge\n", n)
		p("%s %s\n", n, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Timers) {
		n := fams.claim(name, "_seconds")
		t := s.Timers[name]
		p("# TYPE %s summary\n", n)
		p("%s_sum %s\n", n, promFloat(float64(t.TotalNS)/1e9))
		p("%s_count %d\n", n, t.Count)
	}
	for _, name := range sortedKeys(s.Dists) {
		n := fams.claim(name, "")
		d := s.Dists[name]
		p("# TYPE %s summary\n", n)
		p("%s{quantile=\"0.5\"} %s\n", n, promFloat(d.P50))
		p("%s{quantile=\"0.95\"} %s\n", n, promFloat(d.P95))
		p("%s{quantile=\"0.99\"} %s\n", n, promFloat(d.P99))
		p("%s_sum %d\n", n, d.Sum)
		p("%s_count %d\n", n, d.Count)
	}
	writeRemoteFamilies(p, fams, r.remoteList())
	return err
}

// writeRemoteFamilies renders attached remote snapshots grouped by
// namespace. Within each namespace the union of metric names across all
// remotes forms the family set (one # TYPE line per family), and every
// remote that reports the metric contributes a {label="value"} sample —
// so three workers reporting pool.tasks.inline render as one
// worker_pool_tasks_inline_total family with samples for rank 0, 1, 2.
func writeRemoteFamilies(p func(string, ...any), fams familyNames, remotes []remoteSnapshot) {
	for start := 0; start < len(remotes); {
		end := start
		for end < len(remotes) && remotes[end].ns == remotes[start].ns {
			end++
		}
		group := remotes[start:end]
		ns := group[0].ns
		for _, name := range unionNames(group, func(s Snapshot) []string { return sortedKeys(s.Counters) }) {
			n := fams.claim(ns+"_"+name, "_total")
			p("# TYPE %s counter\n", n)
			for _, rs := range group {
				if v, ok := rs.snap.Counters[name]; ok {
					p("%s{%s=\"%s\"} %d\n", n, rs.label, escapeLabel(rs.value), v)
				}
			}
		}
		for _, name := range unionNames(group, func(s Snapshot) []string { return sortedKeys(s.Gauges) }) {
			n := fams.claim(ns+"_"+name, "")
			p("# TYPE %s gauge\n", n)
			for _, rs := range group {
				if v, ok := rs.snap.Gauges[name]; ok {
					p("%s{%s=\"%s\"} %s\n", n, rs.label, escapeLabel(rs.value), promFloat(v))
				}
			}
		}
		for _, name := range unionNames(group, func(s Snapshot) []string { return sortedKeys(s.Timers) }) {
			n := fams.claim(ns+"_"+name, "_seconds")
			p("# TYPE %s summary\n", n)
			for _, rs := range group {
				if t, ok := rs.snap.Timers[name]; ok {
					lv := escapeLabel(rs.value)
					p("%s_sum{%s=\"%s\"} %s\n", n, rs.label, lv, promFloat(float64(t.TotalNS)/1e9))
					p("%s_count{%s=\"%s\"} %d\n", n, rs.label, lv, t.Count)
				}
			}
		}
		for _, name := range unionNames(group, func(s Snapshot) []string { return sortedKeys(s.Dists) }) {
			n := fams.claim(ns+"_"+name, "")
			p("# TYPE %s summary\n", n)
			for _, rs := range group {
				if d, ok := rs.snap.Dists[name]; ok {
					lv := escapeLabel(rs.value)
					p("%s{%s=\"%s\",quantile=\"0.5\"} %s\n", n, rs.label, lv, promFloat(d.P50))
					p("%s{%s=\"%s\",quantile=\"0.95\"} %s\n", n, rs.label, lv, promFloat(d.P95))
					p("%s{%s=\"%s\",quantile=\"0.99\"} %s\n", n, rs.label, lv, promFloat(d.P99))
					p("%s_sum{%s=\"%s\"} %d\n", n, rs.label, lv, d.Sum)
					p("%s_count{%s=\"%s\"} %d\n", n, rs.label, lv, d.Count)
				}
			}
		}
		start = end
	}
}

// unionNames returns the sorted union of metric names that keysOf
// extracts from each remote in the group.
func unionNames(group []remoteSnapshot, keysOf func(Snapshot) []string) []string {
	seen := map[string]bool{}
	var names []string
	for _, rs := range group {
		for _, k := range keysOf(rs.snap) {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	return names
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ServeHTTP makes the registry an http.Handler serving the /metrics
// scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
