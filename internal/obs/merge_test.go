package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// journalFor builds a JSONL stream by emitting events through a Journal
// sharing clock causality the way real processes do.
func journalLines(t *testing.T, emit func(j *Journal)) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := New(&buf)
	emit(j)
	if err := j.Err(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	return buf.Bytes()
}

func TestMergeJournalsCausalOrder(t *testing.T) {
	// Simulate coordinator and worker: the worker witnesses the
	// coordinator's clock via a frame before emitting, so its events
	// must merge strictly after the coordinator events they observed.
	coord := NewClock()
	var sentLC uint64
	a := journalLines(t, func(j *Journal) {
		j.SetLamport(coord)
		j.Emit("dist-listen", nil)
		j.Emit("dist-step", map[string]any{"step": 0})
		sentLC = coord.Tick() // the frame send
	})
	worker := NewClock()
	worker.Witness(sentLC)
	b := journalLines(t, func(j *Journal) {
		j.SetLamport(worker)
		j.Emit("dist-worker-sync", map[string]any{"rank": 1})
		j.Emit("dist-step-fault", map[string]any{"rank": 1})
	})
	merged, err := MergeJournals(a, b)
	if err != nil {
		t.Fatalf("MergeJournals: %v", err)
	}
	recs, err := Read(bytes.NewReader(merged))
	if err != nil {
		t.Fatalf("Read merged: %v", err)
	}
	var events []string
	for _, r := range recs {
		events = append(events, r.Event())
	}
	want := []string{"dist-listen", "dist-step", "dist-worker-sync", "dist-step-fault"}
	if len(events) != len(want) {
		t.Fatalf("merged %d events, want %d: %v", len(events), len(want), events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("merged order %v, want %v", events, want)
		}
	}
	var prev float64 = -1
	for _, r := range recs {
		lc, _ := r["lc"].(float64)
		if lc < prev {
			t.Fatalf("lc went backwards: %v after %v", lc, prev)
		}
		prev = lc
	}
}

func TestMergeJournalsByteReproducible(t *testing.T) {
	a := []byte(`{"ev":"a","lc":1}` + "\n" + `{"ev":"b","lc":3}` + "\n")
	b := []byte(`{"ev":"c","lc":2}` + "\n" + `{"ev":"d","lc":3}` + "\n")
	m1, err := MergeJournals(a, b)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	// Input order must not matter: the merge is a pure function of the
	// contents (equal-lc ties break on raw bytes).
	m2, err := MergeJournals(b, a)
	if err != nil {
		t.Fatalf("merge swapped: %v", err)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("merge depends on input order:\n%s\nvs\n%s", m1, m2)
	}
	want := `{"ev":"a","lc":1}` + "\n" + `{"ev":"c","lc":2}` + "\n" +
		`{"ev":"b","lc":3}` + "\n" + `{"ev":"d","lc":3}` + "\n"
	if string(m1) != want {
		t.Fatalf("merged:\n%swant:\n%s", m1, want)
	}
}

func TestMergeJournalsVerbatimLines(t *testing.T) {
	// Key order and number formatting must survive the merge untouched.
	in := []byte(`{"z":1,"ev":"x","a":0.10000000000000001,"lc":5}` + "\n")
	out, err := MergeJournals(in)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(bytes.TrimSuffix(out, []byte("\n")), bytes.TrimSpace(in)) {
		t.Fatalf("line rewritten:\n%swant:\n%s", out, in)
	}
}

func TestMergeJournalsNoLCSortsFirst(t *testing.T) {
	a := []byte(`{"ev":"clocked","lc":1}` + "\n")
	b := []byte(`{"ev":"legacy"}` + "\n")
	out, err := MergeJournals(a, b)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	recs, err := Read(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if recs[0].Event() != "legacy" || recs[1].Event() != "clocked" {
		t.Fatalf("legacy (no-lc) record must sort first: %v, %v", recs[0].Event(), recs[1].Event())
	}
}

// TestMergeJournalsTornTail is the satellite acceptance case: one input
// journal ends mid-record (a worker killed while appending). The torn
// line is dropped; every complete record survives.
func TestMergeJournalsTornTail(t *testing.T) {
	whole := []byte(`{"ev":"ok","lc":1}` + "\n" + `{"ev":"ok2","lc":4}` + "\n")
	torn := []byte(`{"ev":"pre","lc":2}` + "\n" + `{"ev":"dist-step-fault","lc":3,"ra`)
	out, err := MergeJournals(whole, torn)
	if err != nil {
		t.Fatalf("merge with torn tail: %v", err)
	}
	recs, err := Read(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var events []string
	for _, r := range recs {
		events = append(events, r.Event())
	}
	want := []string{"ok", "pre", "ok2"}
	if len(events) != 3 {
		t.Fatalf("got events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("got events %v, want %v", events, want)
		}
	}
}

func TestMergeJournalsMalformedMidStream(t *testing.T) {
	bad := []byte(`{"ev":"ok","lc":1}` + "\n" + `not json` + "\n" + `{"ev":"ok2","lc":2}` + "\n")
	if _, err := MergeJournals(bad); err == nil {
		t.Fatal("malformed mid-stream line must be an error, not silently dropped")
	}
}

func TestMergeJournalFiles(t *testing.T) {
	dir := t.TempDir()
	pa := filepath.Join(dir, "a.jsonl")
	pb := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(pa, []byte(`{"ev":"a","lc":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pb, []byte(`{"ev":"b","lc":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := MergeJournalFiles(pa, pb)
	if err != nil {
		t.Fatalf("MergeJournalFiles: %v", err)
	}
	want := `{"ev":"b","lc":1}` + "\n" + `{"ev":"a","lc":2}` + "\n"
	if string(out) != want {
		t.Fatalf("got:\n%swant:\n%s", out, want)
	}
	if _, err := MergeJournalFiles(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file must error")
	}
}
