package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("cat", "name")
	sp.End()
	tr.BeginLayer("cat", "name", 3).End()
	tr.BeginTID("cat", "name", 7).WithArg("k", 1).End()
	tr.NameThread(5, "x")
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reported contents")
	}

	// The disabled hot path — an atomic load plus nil-safe Begin/End —
	// must be allocation-free: it runs inside kernels and per-sample
	// loops whether or not tracing is on.
	SetActive(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		a := Active()
		s := a.Begin("forward", "layer")
		s.End()
		a.BeginLayer("backward", "layer", 2).End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v times per run, want 0", allocs)
	}
}

func TestSpanRecording(t *testing.T) {
	tr := New(16)
	sp := tr.Begin("forward", "layer")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.BeginLayer("backward", "layer", 2).End()
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	events := tr.Export()
	// process_name + main thread_name metadata precede the spans.
	var spans []traceEvent
	for _, e := range events {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	if spans[0].Name != "layer" || spans[0].Cat != "forward" {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[0].Dur < 900 { // slept 1ms; dur is in microseconds
		t.Fatalf("span 0 duration %v us, want >= 900", spans[0].Dur)
	}
	if spans[1].Args["layer"] != int64(2) {
		t.Fatalf("span 1 args = %v", spans[1].Args)
	}
	if spans[1].TS < spans[0].TS {
		t.Fatal("spans not in chronological order")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.BeginLayer("c", "n", i).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	var layers []int64
	for _, e := range tr.Export() {
		if e.Ph == "X" {
			layers = append(layers, e.Args["layer"].(int64))
		}
	}
	want := []int64{6, 7, 8, 9}
	if len(layers) != len(want) {
		t.Fatalf("kept %v", layers)
	}
	for i := range want {
		if layers[i] != want[i] {
			t.Fatalf("kept layers %v, want %v (newest survive the wrap)", layers, want)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.BeginTID("cat", "span", TIDPoolWorker+tid).End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 1024 || tr.Dropped() != 8*200-1024 {
		t.Fatalf("Len=%d Dropped=%d", tr.Len(), tr.Dropped())
	}
}

// TestWriteToIsValidChromeTraceJSON pins the wire format: an object with
// a traceEvents array of complete ("X") and metadata ("M") events whose
// required keys chrome://tracing and Perfetto rely on are all present.
func TestWriteToIsValidChromeTraceJSON(t *testing.T) {
	tr := New(16)
	tr.NameThread(TIDALSHWorker, "alsh-worker-0")
	tr.Begin("forward", "layer").End()
	tr.BeginTID("lsh", "query", TIDALSHWorker).WithArg("cands", 12).End()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	for i, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph != "X" && ph != "M" {
			t.Fatalf("event %d: ph = %v", i, e["ph"])
		}
		if name, _ := e["name"].(string); name == "" {
			t.Fatalf("event %d: missing name", i)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event %d: missing pid", i)
		}
		if _, ok := e["tid"].(float64); !ok {
			t.Fatalf("event %d: missing tid", i)
		}
		if ph == "X" {
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("event %d: missing ts", i)
			}
		}
	}
}

func TestActiveTracerInstallAndRemove(t *testing.T) {
	defer SetActive(nil)
	tr := New(8)
	SetActive(tr)
	Active().Begin("c", "n").End()
	SetActive(nil)
	Active().Begin("c", "n").End() // no-op
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}
