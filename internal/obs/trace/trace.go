// Package trace is samplednn's span tracer: a ring-buffered recorder of
// timed spans that serializes to the Chrome trace_event JSON format, so a
// training run's per-phase structure — forward and backward per layer,
// AMM sampling, LSH hashing and bucket maintenance, checkpoint I/O, pool
// task execution — can be opened in chrome://tracing or Perfetto and read
// as a timeline instead of a single per-epoch number.
//
// The paper's evaluation splits every method's cost into feedforward,
// backpropagation, and index maintenance (§9.2, §10.1); the aggregate
// split already lives in core.Timing. The tracer records the same phases
// at span granularity, which is what reveals *where inside a phase* the
// time goes (one slow layer, a rehash storm, pool saturation).
//
// Design constraints, in order:
//
//  1. The disabled path must cost one pointer check and zero
//     allocations: every hot loop calls Active() (an atomic load) and
//     Begin/End on the result, all of which are nil-safe no-ops. Tests
//     pin this with testing.AllocsPerRun.
//  2. Recording must be bounded: spans land in a fixed-capacity ring
//     buffer and the oldest are overwritten, mirroring the PR 3 profile
//     files that are flushed once on exit rather than streamed.
//  3. Recording must be safe from any goroutine: ALSH sample workers and
//     pool residents trace concurrently with the main loop.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"samplednn/internal/atomicfile"
	"samplednn/internal/obs"
)

// Well-known thread ids, so the Perfetto timeline groups spans by the
// goroutine role that produced them. The main goroutine is TIDMain;
// parallel-ALSH sample workers are TIDALSHWorker+i; pool residents are
// TIDPoolWorker+i.
const (
	TIDMain       = 1
	TIDALSHWorker = 100
	TIDPoolWorker = 200
)

// DefaultCapacity is the ring size used when New is given a
// non-positive capacity: 64Ki spans (~4 MiB resident).
const DefaultCapacity = 1 << 16

// event is one recorded span. Strings are expected to be program
// literals (span names are static), so retaining them never pins large
// buffers.
type event struct {
	name   string
	cat    string
	argKey string
	argVal int64
	argStr string // non-empty wins over argVal (trace IDs are 16-hex strings)
	tid    int32
	ts     int64 // ns since tracer start
	dur    int64 // ns
}

// Tracer records spans into a fixed ring. The zero Tracer is not usable;
// call New. A nil *Tracer is a valid no-op recorder: every method checks
// the receiver, which is what makes call sites branch-free one-liners.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	events  []event
	head    int   // next slot to write
	total   int64 // spans ever recorded (total - len(events) = dropped)
	wrapped bool
	threads map[int32]string
}

// New returns a tracer with the given ring capacity (DefaultCapacity
// when capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		start:   time.Now(),
		events:  make([]event, 0, capacity),
		threads: map[int32]string{TIDMain: "main"},
	}
}

// active is the process-wide tracer hot paths consult. nil means tracing
// is disabled and every span call is a no-op.
var active atomic.Pointer[Tracer]

// Active returns the process-wide tracer, or nil when tracing is
// disabled. The load is a single atomic pointer read, cheap enough for
// kernels and per-sample loops.
func Active() *Tracer { return active.Load() }

// SetActive installs (or, with nil, removes) the process-wide tracer.
func SetActive(t *Tracer) { active.Store(t) }

// Span is an in-flight measurement. It is a value type: beginning and
// ending a span performs no heap allocation, enabled or not. The zero
// Span (from a nil tracer) ends as a no-op.
type Span struct {
	t      *Tracer
	name   string
	cat    string
	argKey string
	argVal int64
	argStr string
	tid    int32
	start  time.Time
}

// Begin starts a span on the main timeline. On a nil tracer it returns
// the zero Span without reading the clock.
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, tid: TIDMain, start: time.Now()}
}

// BeginLayer is Begin with a {"layer": i} argument, the common case for
// per-layer forward/backward spans.
func (t *Tracer) BeginLayer(cat, name string, layer int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, argKey: "layer", argVal: int64(layer), tid: TIDMain, start: time.Now()}
}

// BeginCtx is Begin with the correlation context's trace ID attached as
// a {"trace": "<16 hex>"} argument — the same string the journal stamps
// on records for that trace, so a /predict request's GEMM spans in the
// Perfetto timeline can be looked up by the X-Request-Id the client
// got back. The nil check runs before any formatting, keeping the
// disabled path allocation-free.
func (t *Tracer) BeginCtx(cat, name string, cx obs.Ctx) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, argKey: "trace", argStr: obs.FormatID(cx.Trace), tid: TIDMain, start: time.Now()}
}

// BeginTID is Begin on an explicit thread id (worker goroutines).
func (t *Tracer) BeginTID(cat, name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, tid: int32(tid), start: time.Now()}
}

// WithArg returns the span with a numeric argument attached, for values
// only known mid-span (candidate counts, rehashed columns).
func (s Span) WithArg(key string, v int64) Span {
	s.argKey, s.argVal = key, v
	return s
}

// End records the span. No-op for the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.record(s)
}

// NameThread labels a thread id in the output (Perfetto shows it as the
// track name). Safe to call from any goroutine.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[int32(tid)] = name
	t.mu.Unlock()
}

func (t *Tracer) record(s Span) {
	e := event{
		name:   s.name,
		cat:    s.cat,
		argKey: s.argKey,
		argVal: s.argVal,
		argStr: s.argStr,
		tid:    s.tid,
		ts:     s.start.Sub(t.start).Nanoseconds(),
		dur:    time.Since(s.start).Nanoseconds(),
	}
	t.mu.Lock()
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
	} else {
		t.events[t.head] = e
		t.wrapped = true
	}
	t.head++
	if t.head == cap(t.events) {
		t.head = 0
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of spans currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.events))
}

// traceEvent is the Chrome trace_event wire format of one record
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a complete event ("ph":"X") with microsecond timestamps, or a metadata
// event ("ph":"M") naming a process/thread.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON object format of a trace file. The array format
// (a bare JSON list) also loads, but the object format carries the
// display unit and tolerates future metadata keys.
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Export renders the ring's current contents as trace events in
// chronological order, prefixed with process/thread metadata.
func (t *Tracer) Export() []traceEvent {
	t.mu.Lock()
	events := make([]event, len(t.events))
	if t.wrapped {
		n := copy(events, t.events[t.head:])
		copy(events[n:], t.events[:t.head])
	} else {
		copy(events, t.events)
	}
	threads := make(map[int32]string, len(t.threads))
	for k, v := range t.threads {
		threads[k] = v
	}
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].ts < events[j].ts })

	out := make([]traceEvent, 0, len(events)+len(threads)+1)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: TIDMain,
		Args: map[string]any{"name": "samplednn"},
	})
	tids := make([]int32, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: int(tid),
			Args: map[string]any{"name": threads[tid]},
		})
	}
	for _, e := range events {
		te := traceEvent{
			Name: e.name, Cat: e.cat, Ph: "X",
			TS: float64(e.ts) / 1e3, Dur: float64(e.dur) / 1e3,
			PID: 1, TID: int(e.tid),
		}
		if e.argKey != "" {
			if e.argStr != "" {
				te.Args = map[string]any{e.argKey: e.argStr}
			} else {
				te.Args = map[string]any{e.argKey: e.argVal}
			}
		}
		out = append(out, te)
	}
	return out
}

// WriteTo serializes the trace as Chrome trace_event JSON.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	doc := traceDoc{TraceEvents: t.Export(), DisplayTimeUnit: "ms"}
	data, err := json.Marshal(doc)
	if err != nil {
		return 0, fmt.Errorf("trace: encoding: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	if err != nil {
		return int64(n), fmt.Errorf("trace: writing: %w", err)
	}
	return int64(n), nil
}

// WriteFile writes the trace to path (atomically replacing any previous
// trace), the flush-on-exit path of mlptrain -trace. The flush often
// runs during teardown of a crashed or interrupted process — exactly
// when a torn file would otherwise be most likely.
func (t *Tracer) WriteFile(path string) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := t.WriteTo(w)
		return err
	})
}
