package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	// Get-or-create must return the same instance.
	if r.Counter("x") != c {
		t.Fatal("Counter did not return the registered instance")
	}
}

func TestGaugeAndTimer(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("frac")
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
	tm := r.Timer("phase")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(7 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 10*time.Millisecond {
		t.Fatalf("timer = %v over %d", tm.Total(), tm.Count())
	}
	stop := tm.Start()
	stop()
	if tm.Count() != 3 {
		t.Fatal("Start/stop did not record an observation")
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution()
	if s := d.Snapshot(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	for _, v := range []int64{0, 1, 2, 3, 5, 9, -4} {
		d.Observe(v)
	}
	s := d.Snapshot()
	if s.Count != 7 || s.Min != 0 || s.Max != 9 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Sum != 20 { // -4 clamps to 0
		t.Fatalf("sum = %d, want 20", s.Sum)
	}
	// Log2 buckets: 0→[0], 1→[1], 2..3→[2], 4..7→[3], 8..15→[4].
	want := []int64{2, 1, 2, 1, 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets %v, want %v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, s.Buckets[i], want[i])
		}
	}
	d.Reset()
	if s := d.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("reset left state %+v", s)
	}
}

func TestDistributionConcurrent(t *testing.T) {
	d := NewDistribution()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				d.Observe(base + i)
			}
		}(int64(g) * 100)
	}
	wg.Wait()
	s := d.Snapshot()
	if s.Count != 2000 || s.Min != 0 || s.Max != 799 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Gauge("a").Set(1.5)
	r.Timer("t").Observe(time.Second)
	r.Distribution("d").Observe(4)
	s := r.Snapshot()
	if s.Counters["b"] != 2 || s.Gauges["a"] != 1.5 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Timers["t"].Count != 1 || s.Timers["t"].TotalNS != int64(time.Second) {
		t.Fatalf("timer snapshot %+v", s.Timers["t"])
	}
	if s.Dists["d"].Count != 1 || s.Dists["d"].Max != 4 {
		t.Fatalf("dist snapshot %+v", s.Dists["d"])
	}
	names := r.Names()
	want := []string{"a", "b", "d", "t"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v, want %v", names, want)
		}
	}
}
