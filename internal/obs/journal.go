package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Journal is a structured JSONL run log: one JSON object per line, each
// carrying an RFC 3339 timestamp ("ts"), an event name ("ev"), and the
// event's fields. The trainer journals the full lifecycle of a run —
// run-start (config/seed/arch/method), per-epoch records, divergence and
// rollback, checkpoint writes, resume, early-stop, run-end — so the
// paper's per-method accounting can be reconstructed offline.
//
// Durability follows the spirit of internal/atomicfile, adapted to an
// append-only log where rename-replace does not apply: every record is
// emitted as exactly one Write of one complete line, the file is opened
// in append mode, and Close fsyncs. A crash can therefore tear at most
// the final line, and Read tolerates (and drops) a torn tail — earlier
// records are never damaged by a later crash.
//
// Journal methods are safe for concurrent use. Write failures are sticky
// and reported by Err/Close rather than interrupting training: telemetry
// must never kill the run it observes.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	f     *os.File // non-nil when opened via Open; fsynced on Close
	now   func() time.Time
	clock *Clock // nil = no Lamport stamping
	err   error
}

// Open appends to (creating if needed) the journal at path.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening journal: %w", err)
	}
	j := New(f)
	j.f = f
	return j, nil
}

// New returns a journal writing to w (tests pass a buffer).
func New(w io.Writer) *Journal {
	return &Journal{w: w, now: time.Now}
}

// SetClock replaces the timestamp source (tests pin it for golden files).
func (j *Journal) SetClock(now func() time.Time) {
	j.mu.Lock()
	j.now = now
	j.mu.Unlock()
}

// SetLamport attaches a logical clock. Once attached, every emitted
// record carries an "lc" field (the clock ticked per record), which is
// what lets journals from different processes sharing clock causality
// (via frame exchange) be merged into one causally ordered stream.
func (j *Journal) SetLamport(c *Clock) {
	j.mu.Lock()
	j.clock = c
	j.mu.Unlock()
}

// Lamport returns the attached logical clock (nil when none).
func (j *Journal) Lamport() *Clock {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.clock
}

// Emit appends one event record. The reserved keys "ts" and "ev" (plus
// "lc" when a Lamport clock is attached) are set by the journal;
// same-named entries in fields are ignored. Non-finite floats — which
// JSON cannot represent — are encoded as the strings "NaN", "+Inf",
// and "-Inf" (maps and slices are sanitized recursively; see sanitize).
func (j *Journal) Emit(event string, fields map[string]any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(Ctx{}, false, event, fields)
}

// EmitCtx is Emit with a correlation context: the record additionally
// carries "run", "trace", and "span" as 16-hex-digit strings (see
// FormatID). A nil journal is a valid no-op receiver, so multi-process
// call sites need no nil check and the disabled path allocates nothing.
func (j *Journal) EmitCtx(cx Ctx, event string, fields map[string]any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(cx, true, event, fields)
}

// emitLocked builds, stamps, and writes one record; j.mu must be held.
func (j *Journal) emitLocked(cx Ctx, withCtx bool, event string, fields map[string]any) {
	if j.err != nil {
		return
	}
	rec := make(map[string]any, len(fields)+6)
	for k, v := range fields {
		if k == "ts" || k == "ev" {
			continue
		}
		rec[k] = sanitize(v)
	}
	rec["ts"] = j.now().UTC().Format(time.RFC3339Nano)
	rec["ev"] = event
	if withCtx {
		rec["run"] = FormatID(cx.Run)
		rec["trace"] = FormatID(cx.Trace)
		rec["span"] = FormatID(cx.Span)
	}
	if j.clock != nil {
		// One tick per record: journaling is itself an event in the
		// process's causal history, so later records always sort after
		// earlier ones from the same process.
		rec["lc"] = j.clock.Tick()
	} else if withCtx && cx.Clock != 0 {
		rec["lc"] = cx.Clock
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("obs: encoding %s event: %w", event, err)
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("obs: writing %s event: %w", event, err)
	}
}

// Err returns the first write or encoding error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Sync flushes the journal file to stable storage (no-op for
// writer-backed journals).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the underlying file (when file-backed) and
// returns the first error the journal encountered.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if err := j.f.Sync(); err != nil && j.err == nil {
			j.err = fmt.Errorf("obs: syncing journal: %w", err)
		}
		if err := j.f.Close(); err != nil && j.err == nil {
			j.err = fmt.Errorf("obs: closing journal: %w", err)
		}
		j.f = nil
	}
	return j.err
}

// sanitize rewrites non-finite floats into their string names so the
// record stays JSON-encodable, recursing through generic maps and
// slices. Struct values are passed through unchanged — emitters own
// keeping them finite.
func sanitize(v any) any {
	switch x := v.(type) {
	case float64:
		return sanitizeFloat(x)
	case float32:
		return sanitizeFloat(float64(x))
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, vv := range x {
			out[k] = sanitize(vv)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i, vv := range x {
			out[i] = sanitize(vv)
		}
		return out
	case []float64:
		out := make([]any, len(x))
		for i, vv := range x {
			out[i] = sanitizeFloat(vv)
		}
		return out
	}
	return v
}

func sanitizeFloat(f float64) any {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return f
}

// Record is one parsed journal line.
type Record map[string]any

// Event returns the record's event name ("" when absent).
func (r Record) Event() string {
	ev, _ := r["ev"].(string)
	return ev
}

// Keys returns the record's field names in sorted order.
func (r Record) Keys() []string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Read parses a JSONL journal. A torn final line — the signature of a
// crash mid-append — is dropped silently; a malformed line anywhere else
// is an error.
func Read(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: reading journal: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	var recs []Record
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn tail from a crash mid-write
			}
			return nil, fmt.Errorf("obs: journal line %d: %w", i+1, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// ReadFile reads and parses the journal at path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening journal: %w", err)
	}
	defer f.Close()
	return Read(f)
}
