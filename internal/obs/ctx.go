package obs

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync/atomic"
)

// Cross-process correlation context. The repo's observability substrate
// (registry + journal + tracer) is per-process, but PRs 6-7 made the
// system multi-process: a dist coordinator spawning worker processes,
// and an HTTP serving layer. Ctx is the compact identity that ties
// their telemetry back together:
//
//   - Run: one training or serving run, shared by every process in it.
//   - Trace: one causal exchange — a training step (so a worker's
//     step-fault, the coordinator's retry, and the respawned worker's
//     re-sync all correlate) or one HTTP request.
//   - Span: the operation within the trace that produced the event;
//     children derive their span from the parent's.
//   - Clock: a Lamport logical clock value. Wall clocks are lint-banned
//     in library code and would not order events across machines
//     anyway; the Lamport clock gives a causal order that journal
//     merging (merge.go) can sort by deterministically.
//
// Every identifier is derived deterministically (splitmix64 mixing of
// seeds and positions, below), never from a wall clock or an unseeded
// RNG, so two runs with the same seed carry the same IDs — which is
// what makes merged-journal goldens and byte-reproducible merges
// possible at all.

// Ctx is the correlation context carried in every dist frame header
// and every X-Request-Id'd HTTP request. The zero Ctx means "no
// context" and is valid everywhere.
type Ctx struct {
	Run   uint64
	Trace uint64
	Span  uint64
	Clock uint64
}

// CtxWireLen is the fixed encoded size of a Ctx: four little-endian
// uint64s (run, trace, span, clock).
const CtxWireLen = 32

// PutWire encodes the context into b[:CtxWireLen]. It panics when b is
// shorter, matching encoding/binary's convention.
func (c Ctx) PutWire(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], c.Run)
	binary.LittleEndian.PutUint64(b[8:], c.Trace)
	binary.LittleEndian.PutUint64(b[16:], c.Span)
	binary.LittleEndian.PutUint64(b[24:], c.Clock)
}

// CtxFromWire decodes a context written by PutWire.
func CtxFromWire(b []byte) Ctx {
	return Ctx{
		Run:   binary.LittleEndian.Uint64(b[0:]),
		Trace: binary.LittleEndian.Uint64(b[8:]),
		Span:  binary.LittleEndian.Uint64(b[16:]),
		Clock: binary.LittleEndian.Uint64(b[24:]),
	}
}

// Child derives the seq'th child context: same run and trace, a span
// deterministically derived from the parent span. A worker replying to
// a coordinator frame uses Child so its events parent under the frame
// that caused them.
func (c Ctx) Child(seq uint64) Ctx {
	c.Span = mix64(c.Span ^ (seq + 1))
	return c
}

// WithClock returns the context stamped with a clock value.
func (c Ctx) WithClock(lc uint64) Ctx {
	c.Clock = lc
	return c
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose
// output is well-distributed even for sequential inputs. It is the
// only ingredient in ID derivation — no wall clock, no unseeded
// randomness — so IDs are a pure function of (seed, position).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RunID derives the run identifier every process in a run shares from
// the training (or serving) seed. The constant offset keeps RunID(0)
// nonzero.
func RunID(seed uint64) uint64 {
	return mix64(seed ^ 0x9e3779b97f4a7c15)
}

// RootCtx is the run-scoped context for control-plane events (listen,
// join, shutdown) that belong to no particular step or request.
func RootCtx(run uint64) Ctx {
	return Ctx{Run: run, Trace: mix64(run), Span: mix64(run ^ 1)}
}

// StepTrace derives the trace ID of one training step. It is a pure
// function of (run, epoch, step), so every retry, re-sync, and respawn
// touching the same step — in any process — lands on the same trace.
func StepTrace(run uint64, epoch, step int) uint64 {
	return mix64(run ^ uint64(epoch)<<32 ^ uint64(uint32(step)) ^ 0xa0761d6478bd642f)
}

// StepCtx is the step-scoped context the coordinator stamps on every
// frame of one step's exchange.
func StepCtx(run uint64, epoch, step int) Ctx {
	t := StepTrace(run, epoch, step)
	return Ctx{Run: run, Trace: t, Span: mix64(t)}
}

// RequestTrace derives the trace ID of the n'th locally-originated
// HTTP request of a serving run (used when the client sent no
// X-Request-Id of its own).
func RequestTrace(run, n uint64) uint64 {
	return mix64(run ^ n ^ 0xe7037ed1a0b428db)
}

// RequestCtx is the request-scoped context for one traced HTTP request.
func RequestCtx(run, traceID uint64) Ctx {
	return Ctx{Run: run, Trace: traceID, Span: mix64(traceID)}
}

// FormatID renders an identifier the way journals and X-Request-Id
// headers carry it: 16 lowercase hex digits. IDs are formatted as
// strings because JSON numbers are float64 and would corrupt the high
// bits of a uint64.
func FormatID(v uint64) string {
	return fmt.Sprintf("%016x", v)
}

// ParseID parses a FormatID string (leading zeros optional). ok is
// false for anything that is not 1-16 hex digits.
func ParseID(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Clock is a Lamport logical clock: Tick before every local event and
// send, Witness every received remote value. Methods are nil-safe
// no-ops (returning 0) so disabled-telemetry paths pay one pointer
// check and allocate nothing — the tracer's Active()/nil-span idiom.
type Clock struct {
	v atomic.Uint64
}

// NewClock returns a clock at zero.
func NewClock() *Clock { return &Clock{} }

// Tick advances the clock and returns the new value. The first Tick
// returns 1, so 0 always means "no clock attached".
func (c *Clock) Tick() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Add(1)
}

// Witness merges a remote clock value: the local clock jumps to
// max(local, remote)+1, which is what makes a receive causally later
// than the send it observed. Returns the new local value.
func (c *Clock) Witness(remote uint64) uint64 {
	if c == nil {
		return 0
	}
	for {
		cur := c.v.Load()
		next := cur + 1
		if remote >= cur {
			next = remote + 1
		}
		if c.v.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Now returns the current clock value without advancing it.
func (c *Clock) Now() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}
