package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Journal merging. Each process journals locally (coordinator, every
// worker rank, mlpserve); MergeJournals folds those files into one
// causally ordered stream using the Lamport "lc" field EmitCtx/Emit
// stamp when a clock is attached.
//
// Ordering and reproducibility:
//
//   - Primary key: ascending "lc". Lamport clocks guarantee that a
//     causally-later event carries a larger clock (every receive
//     witnesses the sender's value), so causality is never inverted.
//     Records without an lc (pre-clock journals) sort first.
//   - Tiebreak: concurrent events — equal lc from different processes —
//     have no causal order, so any deterministic tiebreak is correct.
//     We compare the raw line bytes, which makes the merge a pure
//     function of the input *contents*: the same files merge to the
//     same bytes on every run and every host, regardless of input
//     order. journalcat -merge leans on this for byte-reproducible
//     output.
//
// Lines are passed through verbatim (no re-marshal), so merging never
// reorders JSON keys or reformats numbers: the merged stream is exactly
// the union of the input lines, reordered.

// MergeJournals merges raw JSONL journal streams into one causally
// ordered stream. A torn final line in any input — the signature of a
// crash mid-append, e.g. a worker killed while journaling — is dropped,
// matching Read's tolerance; a malformed line anywhere else is an
// error.
func MergeJournals(inputs ...[]byte) ([]byte, error) {
	type line struct {
		lc  float64
		raw []byte
	}
	var lines []line
	for idx, data := range inputs {
		split := bytes.Split(data, []byte("\n"))
		for i, raw := range split {
			raw = bytes.TrimSpace(raw)
			if len(raw) == 0 {
				continue
			}
			var rec struct {
				LC *float64 `json:"lc"`
			}
			if err := json.Unmarshal(raw, &rec); err != nil {
				if i == len(split)-1 {
					break // torn tail from a crash mid-write
				}
				return nil, fmt.Errorf("obs: merge input %d line %d: %w", idx+1, i+1, err)
			}
			l := line{lc: -1, raw: raw}
			if rec.LC != nil {
				l.lc = *rec.LC
			}
			lines = append(lines, l)
		}
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].lc != lines[j].lc { //lint:ignore float-equality lc values are small integers stamped by the journal; exact compare is the deterministic tiebreak contract
			return lines[i].lc < lines[j].lc
		}
		return bytes.Compare(lines[i].raw, lines[j].raw) < 0
	})
	var out bytes.Buffer
	for _, l := range lines {
		out.Write(l.raw)
		out.WriteByte('\n')
	}
	return out.Bytes(), nil
}

// MergeJournalFiles reads and merges the journals at the given paths.
func MergeJournalFiles(paths ...string) ([]byte, error) {
	inputs := make([][]byte, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("obs: merge: %w", err)
		}
		inputs[i] = data
	}
	return MergeJournals(inputs...)
}
