package rng

import (
	"fmt"
	"math"
)

// Alias samples from a fixed categorical distribution in O(1) per draw
// using Walker's alias method. The Drineas et al. estimator (§6.1) draws
// c column-row indices i.i.d. from p_i ∝ ||A_col_i||·||B_row_i||; building
// the table once per product keeps that sampling off the critical path.
type Alias struct {
	prob  []float64
	alias []int
	p     []float64 // normalized input distribution, kept for Prob.
}

// NewAlias builds an alias table from non-negative weights. Weights need
// not be normalized; they must not all be zero.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: empty weight vector")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total == 0 { //lint:ignore float-equality all-zero weights are rejected with an error; exact sentinel
		return nil, fmt.Errorf("rng: all weights are zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
		p:     make([]float64, n),
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		a.p[i] = w / total
		scaled[i] = a.p[i] * float64(n)
	}

	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small { // numeric leftovers
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a, nil
}

// Draw returns one index distributed according to the table's weights.
func (a *Alias) Draw(g *RNG) int {
	i := g.IntN(len(a.prob))
	if g.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// DrawN returns n i.i.d. draws.
func (a *Alias) DrawN(g *RNG, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = a.Draw(g)
	}
	return out
}

// Prob returns the normalized probability of index i, as needed by the
// 1/(c·p_i) scaling of the Drineas estimator.
func (a *Alias) Prob(i int) float64 { return a.p[i] }

// Len returns the number of categories.
func (a *Alias) Len() int { return len(a.prob) }
