// Package rng provides the seeded randomness and discrete-sampling
// primitives the sampling-based training methods depend on: Bernoulli
// masks (Dropout, Adelman's column-row selection), categorical sampling by
// magnitude (the Drineas et al. distribution of Eq. 6, via Walker's alias
// method), sampling without replacement, and Gaussian matrix fills for
// weight initialization and the signed-random-projection hash family.
//
// Every source is explicitly seeded so experiments are reproducible; the
// package never touches the global math/rand state.
package rng

import (
	"fmt"
	"math/rand/v2"
)

// RNG wraps a PCG source with the sampling helpers used across samplednn.
// The source is retained so a stream's exact position can be captured with
// Save and re-established with Restore — the basis of byte-deterministic
// checkpoint/resume in internal/train.
type RNG struct {
	src *rand.PCG
	r   *rand.Rand
}

func fromPCG(src *rand.PCG) *RNG {
	return &RNG{src: src, r: rand.New(src)}
}

// New returns a deterministic generator for the given seed.
func New(seed uint64) *RNG {
	return fromPCG(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}

// Split derives an independent generator from this one. Use it to hand
// each layer or worker its own stream without correlated draws.
func (g *RNG) Split() *RNG {
	return fromPCG(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))
}

// Save returns an opaque snapshot of the stream position. Restoring it
// replays the exact draw sequence that would have followed the snapshot.
func (g *RNG) Save() []byte {
	b, err := g.src.MarshalBinary()
	if err != nil {
		// *rand.PCG's MarshalBinary never fails; keep the invariant loud.
		panic(fmt.Sprintf("rng: save: %v", err))
	}
	return b
}

// Restore re-establishes a stream position captured by Save. It fails on
// snapshots that were not produced by Save (wrong length or prefix).
func (g *RNG) Restore(state []byte) error {
	if err := g.src.UnmarshalBinary(state); err != nil {
		return fmt.Errorf("rng: restore: %w", err)
	}
	return nil
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// BernoulliMask fills dst (allocated if nil, length n) with an indicator
// draw per position: dst[i] = 1 with probability p, else 0.
func (g *RNG) BernoulliMask(n int, p float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, n)
	}
	if len(dst) != n {
		panic(fmt.Sprintf("rng: BernoulliMask dst len %d, want %d", len(dst), n))
	}
	for i := range dst {
		if g.Bernoulli(p) {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
	return dst
}

// Perm returns a uniform permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes idx in place.
func (g *RNG) Shuffle(idx []int) {
	g.r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// SampleWithoutReplacement returns k distinct uniform indices from [0, n)
// in random order. It panics if k > n.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("rng: sample %d from %d without replacement", k, n))
	}
	if k < 0 {
		panic("rng: negative sample size")
	}
	// Partial Fisher-Yates: O(n) space but only k swaps.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + g.r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k:k]
}

// GaussianSlice fills dst with independent N(mean, std²) draws.
func (g *RNG) GaussianSlice(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = mean + std*g.r.NormFloat64()
	}
}
