package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if New(42).Split().Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(1)
	s1 := g.Split()
	s2 := g.Split()
	equal := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split streams look correlated: %d/64 equal draws", equal)
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := New(2)
	for i := 0; i < 50; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) must be false")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) must be true")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := New(3)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", f)
	}
}

func TestBernoulliMask(t *testing.T) {
	g := New(4)
	m := g.BernoulliMask(1000, 0.5, nil)
	if len(m) != 1000 {
		t.Fatal("mask length")
	}
	ones := 0.0
	for _, v := range m {
		if v != 0 && v != 1 {
			t.Fatal("mask must be 0/1")
		}
		ones += v
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("mask density %v suspicious", ones/1000)
	}
	// Reuse path.
	m2 := g.BernoulliMask(1000, 0, m)
	if &m2[0] != &m[0] {
		t.Fatal("mask should reuse dst")
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(5)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := New(6)
	f := func(seed uint64) bool {
		gg := New(seed)
		n := 1 + gg.IntN(60)
		k := gg.IntN(n + 1)
		s := g.SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element of [0,10) should appear in a 5-sample roughly half the
	// time.
	g := New(7)
	counts := make([]int, 10)
	const trials = 4000
	for i := 0; i < trials; i++ {
		for _, v := range g.SampleWithoutReplacement(10, 5) {
			counts[v]++
		}
	}
	for i, c := range counts {
		f := float64(c) / trials
		if math.Abs(f-0.5) > 0.04 {
			t.Fatalf("element %d sampled with freq %v, want ~0.5", i, f)
		}
	}
}

func TestGaussianSliceMoments(t *testing.T) {
	g := New(8)
	x := make([]float64, 50000)
	g.GaussianSlice(x, 2, 3)
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var varr float64
	for _, v := range x {
		varr += (v - mean) * (v - mean)
	}
	varr /= float64(len(x))
	if math.Abs(mean-2) > 0.08 {
		t.Fatalf("mean = %v, want 2", mean)
	}
	if math.Abs(math.Sqrt(varr)-3) > 0.1 {
		t.Fatalf("std = %v, want 3", math.Sqrt(varr))
	}
}

func TestSaveRestoreReplaysStream(t *testing.T) {
	g := New(99)
	for i := 0; i < 37; i++ {
		g.Uint64() // advance to an arbitrary position
	}
	snap := g.Save()
	want := make([]float64, 20)
	for i := range want {
		want[i] = g.Float64()
	}
	// Restoring must replay the exact post-snapshot sequence.
	if err := g.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := g.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore = %v, want %v", i, got, want[i])
		}
	}
	// A restored snapshot works on a generator from a different seed too.
	other := New(1)
	if err := other.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := other.Float64(); got != want[0] {
		t.Fatalf("cross-generator restore drew %v, want %v", got, want[0])
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	g := New(3)
	before := g.Save()
	if err := g.Restore([]byte("definitely-not-a-pcg-state")); err == nil {
		t.Fatal("garbage state must be rejected")
	}
	if err := g.Restore(nil); err == nil {
		t.Fatal("nil state must be rejected")
	}
	// A failed restore must leave the stream usable.
	if err := g.Restore(before); err != nil {
		t.Fatal(err)
	}
	g.Float64()
}

func TestSplitStreamsSurviveRestore(t *testing.T) {
	g := New(7)
	child := g.Split()
	snap := child.Save()
	a, b := child.Uint64(), child.Uint64()
	if err := child.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if child.Uint64() != a || child.Uint64() != b {
		t.Fatal("split stream did not replay after restore")
	}
}
