package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights must error")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights must error")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := NewAlias([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN weight must error")
	}
	if _, err := NewAlias([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Inf weight must error")
	}
}

func TestAliasProbNormalized(t *testing.T) {
	a, err := NewAlias([]float64{2, 6, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.6, 0.2}
	for i, w := range want {
		if math.Abs(a.Prob(i)-w) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want %v", i, a.Prob(i), w)
		}
	}
	if a.Len() != 3 {
		t.Fatal("Len wrong")
	}
}

func TestAliasEmpiricalDistribution(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	g := New(11)
	const n = 60000
	counts := make([]float64, len(weights))
	for _, i := range a.DrawN(g, n) {
		counts[i]++
	}
	for i := range weights {
		got := counts[i] / n
		want := weights[i] / 10
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d frequency %v, want %v", i, got, want)
		}
	}
	if counts[1] != 0 {
		t.Fatal("zero-weight category must never be drawn")
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	g := New(12)
	for i := 0; i < 100; i++ {
		if a.Draw(g) != 0 {
			t.Fatal("single category must always draw 0")
		}
	}
}

// Property: for arbitrary positive weight vectors the alias table is a
// valid sampler — probabilities sum to 1 and every drawn index is in
// range.
func TestAliasProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := New(seed)
		n := 1 + g.IntN(50)
		w := make([]float64, n)
		for i := range w {
			w[i] = g.Float64() * 10
		}
		w[g.IntN(n)] = 5 // guarantee nonzero mass
		a, err := NewAlias(w)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += a.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for _, d := range a.DrawN(g, 200) {
			if d < 0 || d >= n || a.Prob(d) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
