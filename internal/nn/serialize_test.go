package nn

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	net := buildNet(t, Config{Inputs: 5, Hidden: []int{7, 4}, Outputs: 3, Activation: "tanh"}, 1)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != len(net.Layers) {
		t.Fatalf("layer count %d", len(got.Layers))
	}
	for i := range net.Layers {
		if !tensor.Equal(got.Layers[i].W, net.Layers[i].W) {
			t.Fatalf("layer %d weights differ", i)
		}
		if got.Layers[i].Act.Name() != net.Layers[i].Act.Name() {
			t.Fatalf("layer %d activation differs", i)
		}
	}
	// Function equality: identical outputs on random input.
	g := rng.New(2)
	x := tensor.New(4, 5)
	g.GaussianSlice(x.Data, 0, 1)
	if !tensor.Equal(net.Forward(x), got.Forward(x)) {
		t.Fatal("loaded network computes differently")
	}
}

func TestSaveLoadFile(t *testing.T) {
	net := buildNet(t, Uniform(4, 6, 1, 2), 3)
	path := filepath.Join(t.TempDir(), "model.snn")
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != net.NumParams() {
		t.Fatal("param count mismatch after file roundtrip")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.snn")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	net := buildNet(t, Uniform(3, 4, 1, 2), 4)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX\x01\x00\x00\x00"),
		"truncated": full[:len(full)/2],
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}

	// Unknown activation name.
	bad := append([]byte(nil), full...)
	idx := bytes.Index(bad, []byte("relu"))
	if idx < 0 {
		t.Fatal("fixture missing activation name")
	}
	copy(bad[idx:], "rexu")
	if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "activation") {
		t.Fatalf("unknown activation should error, got %v", err)
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	// Hand-craft two layers whose fan-out/fan-in disagree.
	a := buildNet(t, Uniform(3, 4, 1, 2), 5)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rebuild with a mismatched second layer by splicing saves: simpler
	// to corrupt the fanIn field of layer 1. Find it structurally: magic
	// (4) + count (4) + name len (4) + "relu" (4) + fanIn/fanOut (8) +
	// W (3*4*8) + B (4*8) + name len (4) + "identity" (8) → fanIn at
	// that offset.
	data := buf.Bytes()
	off := 4 + 4 + 4 + 4 + 8 + 3*4*8 + 4*8 + 4 + 8
	data[off] = 9 // fanIn 4 → 9
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("mismatched chain should error")
	}
}
