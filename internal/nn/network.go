package nn

import (
	"fmt"

	"samplednn/internal/obs/trace"
	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Config describes an MLP architecture. The paper's default (§8.4) is
// three hidden layers of 1000 ReLU units with a log-softmax output.
type Config struct {
	// Inputs is the input dimensionality m_i.
	Inputs int
	// Hidden lists the hidden-layer widths in order.
	Hidden []int
	// Outputs is the class count m_o.
	Outputs int
	// Activation names the hidden nonlinearity ("relu" by default).
	Activation string
	// Init selects the weight initializer (He by default).
	Init Init
}

// Uniform returns a Config with depth hidden layers of width units —
// the shape the depth-scaling experiments sweep.
func Uniform(inputs, units, depth, outputs int) Config {
	h := make([]int, depth)
	for i := range h {
		h[i] = units
	}
	return Config{Inputs: inputs, Hidden: h, Outputs: outputs}
}

// Network is a feedforward MLP: hidden layers with a shared nonlinearity
// and a linear output layer feeding the LogSoftmaxNLL head.
type Network struct {
	Layers []*Layer
	Head   LogSoftmaxNLL
}

// NewNetwork builds and initializes an MLP from cfg using g for weight
// draws.
func NewNetwork(cfg Config, g *rng.RNG) (*Network, error) {
	if cfg.Inputs <= 0 || cfg.Outputs <= 0 {
		return nil, fmt.Errorf("nn: inputs (%d) and outputs (%d) must be positive", cfg.Inputs, cfg.Outputs)
	}
	actName := cfg.Activation
	if actName == "" {
		actName = "relu"
	}
	act := ActivationByName(actName)
	if act == nil {
		return nil, fmt.Errorf("nn: unknown activation %q", actName)
	}
	dims := append([]int{cfg.Inputs}, cfg.Hidden...)
	dims = append(dims, cfg.Outputs)
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("nn: layer %d width %d must be positive", i, d)
		}
	}
	net := &Network{}
	for i := 0; i+1 < len(dims); i++ {
		a := act
		if i+2 == len(dims) {
			a = Identity{} // linear logits; the head applies log-softmax
		}
		net.Layers = append(net.Layers, NewLayer(dims[i], dims[i+1], a, cfg.Init, g.Split()))
	}
	return net, nil
}

// Depth returns the number of hidden layers.
func (n *Network) Depth() int { return len(n.Layers) - 1 }

// NumParams returns the total trainable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumParams()
	}
	return total
}

// Forward runs the exact feedforward pass (Eq. 1 of §4.1) and returns the
// output logits, caching intermediates in each layer. The caches make
// Forward unsafe for concurrent use on a shared network — training owns
// this path; read-only evaluation goes through InferForward.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	tr := trace.Active()
	a := x
	for i, l := range n.Layers {
		sp := tr.BeginLayer("forward", "layer", i)
		a = l.Forward(a)
		sp.End()
	}
	return a
}

// Backward runs exact backpropagation from the cached forward pass and
// returns per-layer gradients, index-aligned with Layers.
func (n *Network) Backward(logits *tensor.Matrix, labels []int) []Grads {
	grads, _ := n.BackwardWithInput(logits, labels)
	return grads
}

// BackwardWithInput is Backward but additionally returns dL/dX, the
// gradient with respect to the network's input batch — needed when the
// MLP is the classifier head of a larger model (the convolutional
// setting of §8.4).
func (n *Network) BackwardWithInput(logits *tensor.Matrix, labels []int) ([]Grads, *tensor.Matrix) {
	tr := trace.Active()
	grads := make([]Grads, len(n.Layers))
	delta := n.Head.Delta(logits, labels) // dL/dZ of the output layer
	var dInput *tensor.Matrix
	for i := len(n.Layers) - 1; i >= 0; i-- {
		sp := tr.BeginLayer("backward", "layer", i)
		l := n.Layers[i]
		g, prevA := l.Backward(delta)
		grads[i] = g
		if i > 0 {
			below := n.Layers[i-1]
			deriv := below.Act.Derivative(below.Z, below.A)
			tensor.HadamardInPlace(prevA, deriv)
			delta = prevA
		} else {
			dInput = prevA
		}
		sp.End()
	}
	return grads, dInput
}

// Loss evaluates mean NLL on a batch. It uses the read-only inference
// forward, so it neither caches gradients nor perturbs layer state.
func (n *Network) Loss(x *tensor.Matrix, labels []int) float64 {
	return n.Head.Loss(n.InferForward(x), labels)
}

// Predict returns the argmax class per row of x. It runs the read-only
// inference forward, so concurrent Predict calls on a shared network
// are safe while the weights are quiescent.
func (n *Network) Predict(x *tensor.Matrix) []int {
	return n.Head.Predictions(n.InferForward(x))
}

// Accuracy returns the fraction of rows of x predicted as their label.
func (n *Network) Accuracy(x *tensor.Matrix, labels []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := n.Predict(x)
	hits := 0
	for i, p := range pred {
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(labels))
}

// Clone deep-copies the network (weights and biases; caches excluded) so
// experiments can train the same initialization under different methods.
func (n *Network) Clone() *Network {
	c := &Network{Head: n.Head}
	for _, l := range n.Layers {
		c.Layers = append(c.Layers, &Layer{
			W:   l.W.Clone(),
			B:   append([]float64(nil), l.B...),
			Act: l.Act,
		})
	}
	return c
}
