package nn

import (
	"fmt"
	"math"

	"samplednn/internal/tensor"
)

// LogSoftmaxNLL combines the paper's output head (§8.4): a log-softmax
// output activation with negative log-likelihood loss. Fusing them makes
// the output-layer error signal the familiar softmax(z) − onehot(y),
// which is both faster and numerically stable.
type LogSoftmaxNLL struct{}

// LogProbs returns row-wise log-softmax of the logits.
func (LogSoftmaxNLL) LogProbs(logits *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.RowView(i)
		orow := out.RowView(i)
		logSoftmaxRow(row, orow)
	}
	return out
}

func logSoftmaxRow(z, dst []float64) {
	maxV := math.Inf(-1)
	for _, v := range z {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range z {
		sum += math.Exp(v - maxV)
	}
	lse := maxV + math.Log(sum)
	for j, v := range z {
		dst[j] = v - lse
	}
}

// Loss returns the mean negative log-likelihood of the true labels under
// the logits.
func (l LogSoftmaxNLL) Loss(logits *tensor.Matrix, labels []int) float64 {
	checkLabels(logits, labels)
	lp := make([]float64, logits.Cols)
	var total float64
	for i := 0; i < logits.Rows; i++ {
		logSoftmaxRow(logits.RowView(i), lp)
		total -= lp[labels[i]]
	}
	return total / float64(logits.Rows)
}

// Delta returns dL/dz at the output layer: (softmax(z) − onehot(y)) / batch.
func (LogSoftmaxNLL) Delta(logits *tensor.Matrix, labels []int) *tensor.Matrix {
	checkLabels(logits, labels)
	out := tensor.New(logits.Rows, logits.Cols)
	inv := 1 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.RowView(i)
		orow := out.RowView(i)
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] = orow[j] / sum * inv
		}
		orow[labels[i]] -= inv
	}
	return out
}

// Predictions returns the row-wise argmax class of the logits (identical
// under softmax, so it works on raw logits or log-probs).
func (LogSoftmaxNLL) Predictions(logits *tensor.Matrix) []int {
	return logits.ArgMaxRows()
}

func checkLabels(logits *tensor.Matrix, labels []int) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), logits.Rows))
	}
	for i, y := range labels {
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d at row %d out of range [0,%d)", y, i, logits.Cols))
		}
	}
}

// MSE is mean squared error against a dense target, used by the
// regression-style unit tests and the theory experiments.
type MSE struct{}

// Loss returns mean over all elements of (pred − target)².
func (MSE) Loss(pred, target *tensor.Matrix) float64 {
	d := tensor.Sub(pred, target)
	var s float64
	for _, v := range d.Data {
		s += v * v
	}
	return s / float64(len(d.Data))
}

// Delta returns dL/dpred = 2(pred − target)/N.
func (MSE) Delta(pred, target *tensor.Matrix) *tensor.Matrix {
	d := tensor.Sub(pred, target)
	d.Scale(2 / float64(len(d.Data)))
	return d
}
