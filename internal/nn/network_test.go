package nn

import (
	"math"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestNewLayerShapesAndInit(t *testing.T) {
	g := rng.New(1)
	l := NewLayer(100, 50, ReLU{}, InitHe, g)
	if l.FanIn() != 100 || l.FanOut() != 50 {
		t.Fatal("fan accessors wrong")
	}
	if l.NumParams() != 100*50+50 {
		t.Fatal("NumParams wrong")
	}
	// He std should be near sqrt(2/100).
	var varr float64
	for _, v := range l.W.Data {
		varr += v * v
	}
	varr /= float64(len(l.W.Data))
	want := 2.0 / 100
	if math.Abs(varr-want)/want > 0.2 {
		t.Fatalf("He init variance %v, want ~%v", varr, want)
	}
	for _, b := range l.B {
		if b != 0 {
			t.Fatal("biases must start at zero")
		}
	}
}

func TestLayerInitVariants(t *testing.T) {
	g := rng.New(2)
	x := NewLayer(10, 10, Tanh{}, InitXavier, g)
	u := NewLayer(10, 10, Tanh{}, InitUniform, g)
	if x.W.MaxAbs() == 0 || u.W.MaxAbs() == 0 {
		t.Fatal("init produced zero weights")
	}
	lim := 1 / math.Sqrt(10.0)
	if u.W.MaxAbs() > lim {
		t.Fatalf("uniform init out of bounds: %v > %v", u.W.MaxAbs(), lim)
	}
}

func TestLayerConstructorPanics(t *testing.T) {
	g := rng.New(3)
	for name, f := range map[string]func(){
		"dims": func() { NewLayer(0, 5, ReLU{}, InitHe, g) },
		"act":  func() { NewLayer(5, 5, nil, InitHe, g) },
		"init": func() { NewLayer(5, 5, ReLU{}, Init(99), g) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLayerForwardComputesAffine(t *testing.T) {
	g := rng.New(4)
	l := NewLayer(2, 2, Identity{}, InitHe, g)
	l.W = tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	l.B = []float64{10, 20}
	x := tensor.FromRows([][]float64{{1, 1}})
	a := l.Forward(x)
	want := tensor.FromRows([][]float64{{14, 26}})
	if !tensor.Equal(a, want) {
		t.Fatalf("forward = %v, want %v", a, want)
	}
	if l.In != x || l.Z == nil || l.A == nil {
		t.Fatal("caches not populated")
	}
}

func TestLayerBackwardBeforeForwardPanics(t *testing.T) {
	g := rng.New(5)
	l := NewLayer(2, 2, ReLU{}, InitHe, g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Backward(tensor.New(1, 2))
}

func buildNet(t *testing.T, cfg Config, seed uint64) *Network {
	t.Helper()
	net, err := NewNetwork(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkConstruction(t *testing.T) {
	net := buildNet(t, Uniform(8, 16, 3, 4), 1)
	if len(net.Layers) != 4 || net.Depth() != 3 {
		t.Fatalf("layers = %d, depth = %d", len(net.Layers), net.Depth())
	}
	if net.Layers[0].FanIn() != 8 || net.Layers[3].FanOut() != 4 {
		t.Fatal("boundary dims wrong")
	}
	// Output layer must be linear (head applies log-softmax).
	if _, ok := net.Layers[3].Act.(Identity); !ok {
		t.Fatal("output layer must have identity activation")
	}
	want := (8*16 + 16) + 2*(16*16+16) + (16*4 + 4)
	if net.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", net.NumParams(), want)
	}
}

func TestNetworkConfigErrors(t *testing.T) {
	g := rng.New(1)
	if _, err := NewNetwork(Config{Inputs: 0, Outputs: 2}, g); err == nil {
		t.Fatal("inputs=0 must error")
	}
	if _, err := NewNetwork(Config{Inputs: 2, Outputs: 2, Activation: "bogus"}, g); err == nil {
		t.Fatal("bad activation must error")
	}
	if _, err := NewNetwork(Config{Inputs: 2, Hidden: []int{0}, Outputs: 2}, g); err == nil {
		t.Fatal("zero hidden width must error")
	}
	// Zero hidden layers is legal: logistic regression.
	if _, err := NewNetwork(Config{Inputs: 2, Outputs: 2}, g); err != nil {
		t.Fatalf("no-hidden-layer net should build: %v", err)
	}
}

// Full end-to-end gradient check: backprop gradients must match central
// finite differences of the loss for every parameter of a small network.
func TestBackpropMatchesNumericalGradients(t *testing.T) {
	for _, act := range []string{"tanh", "sigmoid", "identity"} {
		net := buildNet(t, Config{Inputs: 3, Hidden: []int{4, 3}, Outputs: 3, Activation: act}, 7)
		g := rng.New(8)
		x := tensor.New(5, 3)
		g.GaussianSlice(x.Data, 0, 1)
		labels := []int{0, 1, 2, 1, 0}

		logits := net.Forward(x)
		grads := net.Backward(logits, labels)

		const h = 1e-6
		for li, l := range net.Layers {
			for idx := range l.W.Data {
				orig := l.W.Data[idx]
				l.W.Data[idx] = orig + h
				lp := net.Loss(x, labels)
				l.W.Data[idx] = orig - h
				lm := net.Loss(x, labels)
				l.W.Data[idx] = orig
				num := (lp - lm) / (2 * h)
				if math.Abs(num-grads[li].W.Data[idx]) > 1e-4 {
					t.Fatalf("%s: layer %d W[%d]: analytic %v, numerical %v",
						act, li, idx, grads[li].W.Data[idx], num)
				}
			}
			for bi := range l.B {
				orig := l.B[bi]
				l.B[bi] = orig + h
				lp := net.Loss(x, labels)
				l.B[bi] = orig - h
				lm := net.Loss(x, labels)
				l.B[bi] = orig
				num := (lp - lm) / (2 * h)
				if math.Abs(num-grads[li].B[bi]) > 1e-4 {
					t.Fatalf("%s: layer %d B[%d]: analytic %v, numerical %v",
						act, li, bi, grads[li].B[bi], num)
				}
			}
		}
	}
}

// ReLU has a kink at 0 so it is excluded from the exhaustive check above;
// verify it on inputs that keep pre-activations away from zero.
func TestBackpropReLUAwayFromKink(t *testing.T) {
	net := buildNet(t, Config{Inputs: 2, Hidden: []int{3}, Outputs: 2, Activation: "relu"}, 9)
	x := tensor.FromRows([][]float64{{1.5, -2.5}})
	labels := []int{1}
	logits := net.Forward(x)
	grads := net.Backward(logits, labels)
	const h = 1e-6
	l := net.Layers[0]
	for idx := range l.W.Data {
		orig := l.W.Data[idx]
		l.W.Data[idx] = orig + h
		lp := net.Loss(x, labels)
		l.W.Data[idx] = orig - h
		lm := net.Loss(x, labels)
		l.W.Data[idx] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grads[0].W.Data[idx]) > 1e-4 {
			t.Fatalf("relu W[%d]: analytic %v, numerical %v", idx, grads[0].W.Data[idx], num)
		}
	}
}

func TestGradientDescentReducesLoss(t *testing.T) {
	net := buildNet(t, Config{Inputs: 4, Hidden: []int{16}, Outputs: 3, Activation: "relu"}, 10)
	g := rng.New(11)
	x := tensor.New(30, 4)
	labels := make([]int, 30)
	for i := 0; i < 30; i++ {
		c := i % 3
		labels[i] = c
		row := x.RowView(i)
		g.GaussianSlice(row, 0, 0.3)
		row[c] += 2 // separable classes
	}
	before := net.Loss(x, labels)
	for iter := 0; iter < 200; iter++ {
		logits := net.Forward(x)
		grads := net.Backward(logits, labels)
		for li, l := range net.Layers {
			tensor.AxpyInPlace(l.W, -0.5, grads[li].W)
			tensor.Axpy(-0.5, grads[li].B, l.B)
		}
	}
	after := net.Loss(x, labels)
	if after >= before/2 {
		t.Fatalf("descent did not learn: %v → %v", before, after)
	}
	if acc := net.Accuracy(x, labels); acc < 0.9 {
		t.Fatalf("accuracy after training = %v", acc)
	}
}

func TestCloneIndependence(t *testing.T) {
	net := buildNet(t, Uniform(4, 8, 2, 3), 12)
	c := net.Clone()
	c.Layers[0].W.Set(0, 0, 99)
	c.Layers[0].B[0] = 42
	if net.Layers[0].W.At(0, 0) == 99 || net.Layers[0].B[0] == 42 {
		t.Fatal("Clone must deep-copy parameters")
	}
	// Identical parameters → identical outputs.
	g := rng.New(13)
	x := tensor.New(3, 4)
	g.GaussianSlice(x.Data, 0, 1)
	c2 := net.Clone()
	if !tensor.Equal(net.Forward(x), c2.Forward(x)) {
		t.Fatal("Clone must preserve function")
	}
}

func TestAccuracyEmptyInput(t *testing.T) {
	net := buildNet(t, Uniform(4, 4, 1, 2), 14)
	if net.Accuracy(tensor.New(0, 4), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := buildNet(t, Uniform(6, 10, 2, 4), 99)
	b := buildNet(t, Uniform(6, 10, 2, 4), 99)
	for i := range a.Layers {
		if !tensor.Equal(a.Layers[i].W, b.Layers[i].W) {
			t.Fatal("same seed must give same weights")
		}
	}
}

func TestUniformHelper(t *testing.T) {
	cfg := Uniform(784, 1000, 3, 10)
	if cfg.Inputs != 784 || cfg.Outputs != 10 || len(cfg.Hidden) != 3 {
		t.Fatalf("Uniform = %+v", cfg)
	}
	for _, h := range cfg.Hidden {
		if h != 1000 {
			t.Fatal("hidden widths wrong")
		}
	}
	if cfg2 := Uniform(5, 9, 0, 2); len(cfg2.Hidden) != 0 {
		t.Fatal("zero-depth Uniform should have no hidden layers")
	}
}

func TestZeroGrads(t *testing.T) {
	l := NewLayer(3, 4, ReLU{}, InitHe, rng.New(30))
	g := l.ZeroGrads()
	if g.W.Rows != 3 || g.W.Cols != 4 || len(g.B) != 4 {
		t.Fatalf("ZeroGrads shapes %dx%d/%d", g.W.Rows, g.W.Cols, len(g.B))
	}
	if g.W.FrobeniusNorm() != 0 {
		t.Fatal("ZeroGrads must be zero")
	}
}
