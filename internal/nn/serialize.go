package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"samplednn/internal/atomicfile"
	"samplednn/internal/tensor"
)

// Network serialization: a compact little-endian binary format so trained
// models survive process restarts (fine-tuning on personal devices — the
// paper's §2 motivation — implies persisting and reloading models).
//
// Layout: magic "SNN1", layer count, then per layer: activation name
// (length-prefixed), fanIn, fanOut, W row-major, B.

const magic = "SNN1"

// Save writes the network to w.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(n.Layers))); err != nil {
		return err
	}
	for i, l := range n.Layers {
		name := l.Act.Name()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(l.FanIn())); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(l.FanOut())); err != nil {
			return err
		}
		if err := writeFloats(bw, l.W.Data); err != nil {
			return fmt.Errorf("nn: layer %d weights: %w", i, err)
		}
		if err := writeFloats(bw, l.B); err != nil {
			return fmt.Errorf("nn: layer %d biases: %w", i, err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the network to a file path. The write is atomic (temp
// file + fsync + rename via internal/atomicfile), so a crash mid-save can
// never corrupt an existing checkpoint at the same path.
func (n *Network) SaveFile(path string) error {
	return atomicfile.WriteFile(path, n.Save)
}

// Load reads a network written by Save.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("nn: bad magic %q", head)
	}
	var layerCount uint32
	if err := binary.Read(br, binary.LittleEndian, &layerCount); err != nil {
		return nil, err
	}
	if layerCount == 0 || layerCount > 1<<16 {
		return nil, fmt.Errorf("nn: implausible layer count %d", layerCount)
	}
	net := &Network{}
	for i := uint32(0); i < layerCount; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 64 {
			return nil, fmt.Errorf("nn: layer %d activation name length %d", i, nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		act := ActivationByName(string(nameBuf))
		if act == nil {
			return nil, fmt.Errorf("nn: layer %d has unknown activation %q", i, nameBuf)
		}
		var fanIn, fanOut uint32
		if err := binary.Read(br, binary.LittleEndian, &fanIn); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &fanOut); err != nil {
			return nil, err
		}
		if fanIn == 0 || fanOut == 0 || uint64(fanIn)*uint64(fanOut) > 1<<32 {
			return nil, fmt.Errorf("nn: layer %d has implausible shape %dx%d", i, fanIn, fanOut)
		}
		l := &Layer{
			W:   tensor.New(int(fanIn), int(fanOut)),
			B:   make([]float64, fanOut),
			Act: act,
		}
		if err := readFloats(br, l.W.Data); err != nil {
			return nil, fmt.Errorf("nn: layer %d weights: %w", i, err)
		}
		if err := readFloats(br, l.B); err != nil {
			return nil, fmt.Errorf("nn: layer %d biases: %w", i, err)
		}
		if len(net.Layers) > 0 {
			prev := net.Layers[len(net.Layers)-1]
			if prev.FanOut() != l.FanIn() {
				return nil, fmt.Errorf("nn: layer %d fan-in %d does not match previous fan-out %d",
					i, l.FanIn(), prev.FanOut())
			}
		}
		net.Layers = append(net.Layers, l)
	}
	return net, nil
}

// LoadFile reads a network from a file path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func writeFloats(w io.Writer, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, dst []float64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}
