package nn

import (
	"math"
	"testing"
	"testing/quick"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestReLU(t *testing.T) {
	z := tensor.FromRows([][]float64{{-1, 0, 2}})
	a := ReLU{}.Forward(z)
	want := tensor.FromRows([][]float64{{0, 0, 2}})
	if !tensor.Equal(a, want) {
		t.Fatalf("ReLU forward = %v", a)
	}
	d := ReLU{}.Derivative(z, a)
	wantD := tensor.FromRows([][]float64{{0, 0, 1}})
	if !tensor.Equal(d, wantD) {
		t.Fatalf("ReLU derivative = %v", d)
	}
}

func TestLeakyReLU(t *testing.T) {
	l := LeakyReLU{Alpha: 0.1}
	z := tensor.FromRows([][]float64{{-2, 3}})
	a := l.Forward(z)
	if a.At(0, 0) != -0.2 || a.At(0, 1) != 3 {
		t.Fatalf("LeakyReLU forward = %v", a)
	}
	d := l.Derivative(z, a)
	if d.At(0, 0) != 0.1 || d.At(0, 1) != 1 {
		t.Fatalf("LeakyReLU derivative = %v", d)
	}
}

func TestSigmoidValuesAndStability(t *testing.T) {
	s := Sigmoid{}
	z := tensor.FromRows([][]float64{{0, 1000, -1000}})
	a := s.Forward(z)
	if a.At(0, 0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if a.At(0, 1) != 1 || a.At(0, 2) != 0 {
		t.Fatalf("sigmoid extremes: %v", a)
	}
	for _, v := range a.Data {
		if math.IsNaN(v) {
			t.Fatal("sigmoid produced NaN")
		}
	}
}

func TestTanhAndIdentity(t *testing.T) {
	z := tensor.FromRows([][]float64{{0.5}})
	a := Tanh{}.Forward(z)
	if math.Abs(a.At(0, 0)-math.Tanh(0.5)) > 1e-15 {
		t.Fatal("tanh value wrong")
	}
	id := Identity{}
	ai := id.Forward(z)
	if !tensor.Equal(ai, z) {
		t.Fatal("identity must copy")
	}
	ai.Set(0, 0, 9)
	if z.At(0, 0) == 9 {
		t.Fatal("identity must not alias input")
	}
	d := id.Derivative(z, ai)
	if d.At(0, 0) != 1 {
		t.Fatal("identity derivative must be 1")
	}
}

// Property: every activation's Derivative matches a central finite
// difference of its Forward.
func TestActivationDerivativesNumerically(t *testing.T) {
	acts := []Activation{ReLU{}, LeakyReLU{Alpha: 0.01}, Sigmoid{}, Tanh{}, Identity{}}
	g := rng.New(1)
	const h = 1e-6
	for _, act := range acts {
		f := func(seed uint64) bool {
			gg := rng.New(seed)
			v := 4 * (gg.Float64() - 0.5)
			if math.Abs(v) < 1e-3 {
				v = 0.5 // avoid the ReLU kink
			}
			z := tensor.FromRows([][]float64{{v}})
			a := act.Forward(z)
			d := act.Derivative(z, a).At(0, 0)
			zp := tensor.FromRows([][]float64{{v + h}})
			zm := tensor.FromRows([][]float64{{v - h}})
			num := (act.Forward(zp).At(0, 0) - act.Forward(zm).At(0, 0)) / (2 * h)
			return math.Abs(d-num) < 1e-4
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", act.Name(), err)
		}
	}
	_ = g
}

func TestActivationByName(t *testing.T) {
	for _, name := range []string{"relu", "leakyrelu", "sigmoid", "tanh", "identity", "linear"} {
		if ActivationByName(name) == nil {
			t.Fatalf("ActivationByName(%q) = nil", name)
		}
	}
	if ActivationByName("nope") != nil {
		t.Fatal("unknown name should return nil")
	}
	if ActivationByName("relu").Name() != "relu" {
		t.Fatal("name roundtrip failed")
	}
}
