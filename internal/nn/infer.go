package nn

import (
	"fmt"

	"samplednn/internal/obs/trace"
	"samplednn/internal/tensor"
)

// Read-only inference forward. Layer.Forward caches In/Z/A on the layer
// for Backward and the sampling-based methods, which makes any two
// concurrent forward passes over a shared network a data race: both
// goroutines write the same cache fields and can read each other's
// half-installed activations. The Infer* family below computes the
// identical feedforward function — bit-for-bit, same kernels, same
// summation order — without writing a single receiver field, so any
// number of goroutines may serve predictions from one network while the
// weights are quiescent (internal/serve swaps whole *Network values
// atomically instead of mutating a live one).
//
// The contract is mechanically enforced: repolint's readonly-forward
// check flags receiver writes inside any method named Infer,
// InferForward, or InferForwardLayers (DESIGN.md §10).

// Infer computes f(x·W + B) without touching the layer's In/Z/A caches.
// Safe for concurrent use while the weights are not being mutated.
func (l *Layer) Infer(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.W.Rows {
		panic(fmt.Sprintf("nn: layer input %dx%d vs weights %dx%d", x.Rows, x.Cols, l.W.Rows, l.W.Cols))
	}
	z := tensor.MatMul(x, l.W)
	z.AddRowVector(l.B)
	return l.Act.Forward(z)
}

// InferForward runs the exact feedforward pass (Eq. 1 of §4.1) and
// returns the output logits without caching any intermediates — the
// read-only twin of Forward. It is the inference path: Predict, Loss,
// Accuracy, the error probe, and the serving layer all route through
// it, so concurrent evaluation of a shared network is race-free.
func (n *Network) InferForward(x *tensor.Matrix) *tensor.Matrix {
	tr := trace.Active()
	a := x
	for i, l := range n.Layers {
		sp := tr.BeginLayer("infer", "layer", i)
		a = l.Infer(a)
		sp.End()
	}
	return a
}

// InferForwardLayers is InferForward returning every layer's activation,
// index-aligned with Layers — the shape the error-compounding probe
// compares against a method's ApproxForward, and the hook the serving
// layer uses to reach the last hidden activation for LSH top-k queries.
func (n *Network) InferForwardLayers(x *tensor.Matrix) []*tensor.Matrix {
	tr := trace.Active()
	acts := make([]*tensor.Matrix, len(n.Layers))
	a := x
	for i, l := range n.Layers {
		sp := tr.BeginLayer("infer", "layer", i)
		a = l.Infer(a)
		acts[i] = a
		sp.End()
	}
	return acts
}
