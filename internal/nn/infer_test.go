package nn

import (
	"sync"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func inferTestNet(t *testing.T, seed uint64) *Network {
	t.Helper()
	net, err := NewNetwork(Uniform(12, 16, 2, 5), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randBatch(g *rng.RNG, rows, cols int) *tensor.Matrix {
	x := tensor.New(rows, cols)
	g.GaussianSlice(x.Data, 0, 1)
	return x
}

// TestInferForwardMatchesForward pins the bit-identity of the read-only
// inference pass against the caching training pass: same kernels, same
// summation order, so the logits must agree exactly.
func TestInferForwardMatchesForward(t *testing.T) {
	net := inferTestNet(t, 91)
	x := randBatch(rng.New(92), 7, 12)
	want := net.Forward(x)
	got := net.InferForward(x)
	if !tensor.Equal(want, got) {
		t.Fatal("InferForward logits differ from Forward")
	}
	acts := net.InferForwardLayers(x)
	if len(acts) != len(net.Layers) {
		t.Fatalf("InferForwardLayers returned %d activations, want %d", len(acts), len(net.Layers))
	}
	if !tensor.Equal(acts[len(acts)-1], want) {
		t.Fatal("InferForwardLayers final activation differs from Forward logits")
	}
}

// TestInferForwardLeavesCachesUntouched is the bugfix pinned directly:
// the inference pass must not write Layer.In/Z/A, which is what made
// concurrent Predict calls over a shared model a data race.
func TestInferForwardLeavesCachesUntouched(t *testing.T) {
	net := inferTestNet(t, 93)
	g := rng.New(94)
	trainX := randBatch(g, 3, 12)
	net.Forward(trainX) // populate caches the way a training step would
	cached := make([]*tensor.Matrix, len(net.Layers))
	for i, l := range net.Layers {
		cached[i] = l.A
	}

	net.InferForward(randBatch(g, 5, 12))
	net.InferForwardLayers(randBatch(g, 2, 12))
	net.Predict(randBatch(g, 4, 12))
	for i, l := range net.Layers {
		if l.In != trainX && i == 0 {
			t.Fatalf("layer 0 In cache was overwritten by inference")
		}
		if l.A != cached[i] {
			t.Fatalf("layer %d A cache was overwritten by inference", i)
		}
	}
}

// TestConcurrentPredictRace is the regression test for the
// stateful-forward data race: many goroutines predicting over one
// shared network must, under -race, produce exactly the predictions a
// serial evaluation of the same inputs yields.
func TestConcurrentPredictRace(t *testing.T) {
	net := inferTestNet(t, 95)
	const goroutines = 8
	const repeats = 20

	inputs := make([]*tensor.Matrix, goroutines)
	want := make([][]int, goroutines)
	for i := range inputs {
		inputs[i] = randBatch(rng.New(uint64(100+i)), 6, 12)
		want[i] = net.Predict(inputs[i]) // serial reference
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < repeats; r++ {
				got := net.Predict(inputs[i])
				for j := range got {
					if got[j] != want[i][j] {
						errs[i] = errMismatch(i, r, j)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type mismatchErr struct{ g, r, j int }

func errMismatch(g, r, j int) error { return mismatchErr{g, r, j} }
func (e mismatchErr) Error() string {
	return "concurrent Predict diverged from serial reference"
}
