package nn

import (
	"fmt"
	"math"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

// Init selects a weight-initialization scheme.
type Init int

// Supported initializers.
const (
	// InitHe draws N(0, 2/fanIn) — the standard pairing with ReLU.
	InitHe Init = iota
	// InitXavier draws N(0, 2/(fanIn+fanOut)).
	InitXavier
	// InitUniform draws U(−1/√fanIn, 1/√fanIn).
	InitUniform
)

// Layer is one fully connected layer: W is fanIn x fanOut (so column j
// holds the weights of node j, matching the paper's "each column
// corresponds to a node" view in Figure 2), B is the bias row vector.
//
// Forward caches the input, pre-activation, and activation so Backward
// and the sampling-based methods can reuse them.
type Layer struct {
	W   *tensor.Matrix
	B   []float64
	Act Activation

	// Caches from the most recent Forward.
	In *tensor.Matrix // input batch (batch x fanIn)
	Z  *tensor.Matrix // pre-activations (batch x fanOut)
	A  *tensor.Matrix // activations (batch x fanOut)
}

// Grads carries one layer's parameter gradients.
type Grads struct {
	W *tensor.Matrix
	B []float64
}

// NewLayer allocates and initializes a fanIn x fanOut layer.
func NewLayer(fanIn, fanOut int, act Activation, init Init, g *rng.RNG) *Layer {
	if fanIn <= 0 || fanOut <= 0 {
		panic(fmt.Sprintf("nn: layer dims %dx%d must be positive", fanIn, fanOut))
	}
	if act == nil {
		panic("nn: layer needs an activation")
	}
	l := &Layer{
		W:   tensor.New(fanIn, fanOut),
		B:   make([]float64, fanOut),
		Act: act,
	}
	switch init {
	case InitHe:
		g.GaussianSlice(l.W.Data, 0, math.Sqrt(2/float64(fanIn)))
	case InitXavier:
		g.GaussianSlice(l.W.Data, 0, math.Sqrt(2/float64(fanIn+fanOut)))
	case InitUniform:
		lim := 1 / math.Sqrt(float64(fanIn))
		for i := range l.W.Data {
			l.W.Data[i] = (2*g.Float64() - 1) * lim
		}
	default:
		panic(fmt.Sprintf("nn: unknown init %d", init))
	}
	return l
}

// FanIn returns the input width.
func (l *Layer) FanIn() int { return l.W.Rows }

// FanOut returns the number of nodes (columns of W).
func (l *Layer) FanOut() int { return l.W.Cols }

// Forward computes Z = x·W + B and A = f(Z), caching all three.
func (l *Layer) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.W.Rows {
		panic(fmt.Sprintf("nn: layer input %dx%d vs weights %dx%d", x.Rows, x.Cols, l.W.Rows, l.W.Cols))
	}
	l.In = x
	l.Z = tensor.MatMul(x, l.W)
	l.Z.AddRowVector(l.B)
	l.A = l.Act.Forward(l.Z)
	return l.A
}

// Backward consumes dL/dZ for this layer and returns the parameter
// gradients and dL/dA of the previous layer (Eq. 1):
//
//	gradW = Inᵀ · delta        gradB = column sums of delta
//	deltaPrevA = delta · Wᵀ
//
// The caller applies the previous layer's activation derivative.
func (l *Layer) Backward(delta *tensor.Matrix) (Grads, *tensor.Matrix) {
	if l.In == nil {
		panic("nn: Backward before Forward")
	}
	if delta.Rows != l.In.Rows || delta.Cols != l.W.Cols {
		panic(fmt.Sprintf("nn: delta %dx%d, want %dx%d", delta.Rows, delta.Cols, l.In.Rows, l.W.Cols))
	}
	gw := tensor.MatMulTransA(l.In, delta)
	gb := make([]float64, l.W.Cols)
	tensor.ColSumsInto(gb, delta)
	prev := tensor.MatMulTransB(delta, l.W)
	return Grads{W: gw, B: gb}, prev
}

// ZeroGrads returns an empty gradient matching the layer's shapes.
func (l *Layer) ZeroGrads() Grads {
	return Grads{W: tensor.New(l.W.Rows, l.W.Cols), B: make([]float64, len(l.B))}
}

// NumParams returns the layer's parameter count.
func (l *Layer) NumParams() int { return l.W.Rows*l.W.Cols + len(l.B) }
