// Package nn implements the multilayer-perceptron substrate of the paper
// (§4.1): fully connected layers in matrix form, the standard activation
// functions, log-softmax with negative log-likelihood loss, and weight
// initialization. The exact feedforward/backpropagation pair here
// (Eq. 1) is the Θ(n²)-per-layer computation all the sampling-based
// methods in internal/core approximate.
package nn

import (
	"math"

	"samplednn/internal/tensor"
)

// Activation is an elementwise nonlinearity with its derivative.
// Derivative may be computed from the pre-activation z or the cached
// activation a, whichever is cheaper for the function.
type Activation interface {
	// Name identifies the function in configs and output.
	Name() string
	// Forward returns f(z) as a new matrix.
	Forward(z *tensor.Matrix) *tensor.Matrix
	// Derivative returns f'(z) as a new matrix, given both the
	// pre-activation z and the activation a = f(z).
	Derivative(z, a *tensor.Matrix) *tensor.Matrix
}

// ReLU is max(0, z) — the paper's default hidden activation (§8.4).
type ReLU struct{}

// Name returns "relu".
func (ReLU) Name() string { return "relu" }

// Forward clamps negatives to zero.
func (ReLU) Forward(z *tensor.Matrix) *tensor.Matrix {
	return z.Map(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Derivative is the step function.
func (ReLU) Derivative(z, _ *tensor.Matrix) *tensor.Matrix {
	return z.Map(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
}

// LeakyReLU is max(alpha·z, z).
type LeakyReLU struct {
	// Alpha is the negative-side slope (e.g. 0.01).
	Alpha float64
}

// Name returns "leakyrelu".
func (LeakyReLU) Name() string { return "leakyrelu" }

// Forward applies the leaky ramp.
func (l LeakyReLU) Forward(z *tensor.Matrix) *tensor.Matrix {
	return z.Map(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return l.Alpha * v
	})
}

// Derivative is 1 on the positive side, Alpha otherwise.
func (l LeakyReLU) Derivative(z, _ *tensor.Matrix) *tensor.Matrix {
	return z.Map(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return l.Alpha
	})
}

// Sigmoid is 1/(1+e^(−z)); Adaptive-Dropout's standout distribution is a
// sigmoid of the same pre-activations.
type Sigmoid struct{}

// Name returns "sigmoid".
func (Sigmoid) Name() string { return "sigmoid" }

// Forward applies the logistic function.
func (Sigmoid) Forward(z *tensor.Matrix) *tensor.Matrix {
	return z.Map(sigmoidScalar)
}

// Derivative uses the cached activation: f'(z) = a(1−a).
func (Sigmoid) Derivative(_, a *tensor.Matrix) *tensor.Matrix {
	return a.Map(func(v float64) float64 { return v * (1 - v) })
}

func sigmoidScalar(v float64) float64 {
	// Branch on sign for numeric stability at large |v|.
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Tanh is the hyperbolic tangent.
type Tanh struct{}

// Name returns "tanh".
func (Tanh) Name() string { return "tanh" }

// Forward applies tanh.
func (Tanh) Forward(z *tensor.Matrix) *tensor.Matrix { return z.Map(math.Tanh) }

// Derivative uses the cached activation: 1 − a².
func (Tanh) Derivative(_, a *tensor.Matrix) *tensor.Matrix {
	return a.Map(func(v float64) float64 { return 1 - v*v })
}

// Identity is f(z) = z, the linear activation of the §7 analysis
// (Lemma 7.1 and Theorem 7.2 assume it).
type Identity struct{}

// Name returns "identity".
func (Identity) Name() string { return "identity" }

// Forward copies z.
func (Identity) Forward(z *tensor.Matrix) *tensor.Matrix { return z.Clone() }

// Derivative is all ones.
func (Identity) Derivative(z, _ *tensor.Matrix) *tensor.Matrix {
	d := tensor.New(z.Rows, z.Cols)
	d.Fill(1)
	return d
}

// ActivationByName resolves a config string to an Activation, defaulting
// LeakyReLU's slope to 0.01. Unknown names return nil.
func ActivationByName(name string) Activation {
	switch name {
	case "relu":
		return ReLU{}
	case "leakyrelu":
		return LeakyReLU{Alpha: 0.01}
	case "sigmoid":
		return Sigmoid{}
	case "tanh":
		return Tanh{}
	case "identity", "linear":
		return Identity{}
	}
	return nil
}
