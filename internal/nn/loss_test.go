package nn

import (
	"math"
	"testing"

	"samplednn/internal/rng"
	"samplednn/internal/tensor"
)

func TestLogProbsNormalized(t *testing.T) {
	head := LogSoftmaxNLL{}
	logits := tensor.FromRows([][]float64{{1, 2, 3}, {-5, 0, 5}})
	lp := head.LogProbs(logits)
	for i := 0; i < lp.Rows; i++ {
		var sum float64
		for _, v := range lp.RowView(i) {
			if v > 0 {
				t.Fatal("log-probs must be non-positive")
			}
			sum += math.Exp(v)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d probs sum to %v", i, sum)
		}
	}
}

func TestLogProbsStability(t *testing.T) {
	head := LogSoftmaxNLL{}
	logits := tensor.FromRows([][]float64{{1e8, 1e8 + 1}})
	lp := head.LogProbs(logits)
	for _, v := range lp.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("log-probs overflowed: %v", lp.Data)
		}
	}
}

func TestNLLLossValues(t *testing.T) {
	head := LogSoftmaxNLL{}
	// Uniform logits over 4 classes: loss = ln 4.
	logits := tensor.New(2, 4)
	got := head.Loss(logits, []int{0, 3})
	if math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform NLL = %v, want ln4", got)
	}
	// Confident correct prediction → loss near 0.
	conf := tensor.FromRows([][]float64{{50, 0, 0, 0}})
	if head.Loss(conf, []int{0}) > 1e-9 {
		t.Fatal("confident correct prediction should have ~0 loss")
	}
	// Confident wrong prediction → large loss.
	if head.Loss(conf, []int{1}) < 10 {
		t.Fatal("confident wrong prediction should have large loss")
	}
}

func TestDeltaRowsSumToZero(t *testing.T) {
	head := LogSoftmaxNLL{}
	g := rng.New(1)
	logits := tensor.New(5, 7)
	g.GaussianSlice(logits.Data, 0, 3)
	labels := []int{0, 1, 2, 3, 4}
	d := head.Delta(logits, labels)
	for i := 0; i < d.Rows; i++ {
		if s := tensor.SumVec(d.RowView(i)); math.Abs(s) > 1e-12 {
			t.Fatalf("delta row %d sums to %v (softmax − onehot must sum to 0)", i, s)
		}
	}
}

func TestDeltaMatchesNumericalGradient(t *testing.T) {
	head := LogSoftmaxNLL{}
	g := rng.New(2)
	logits := tensor.New(3, 5)
	g.GaussianSlice(logits.Data, 0, 1)
	labels := []int{1, 4, 0}
	d := head.Delta(logits, labels)
	const h = 1e-6
	for idx := range logits.Data {
		orig := logits.Data[idx]
		logits.Data[idx] = orig + h
		lp := head.Loss(logits, labels)
		logits.Data[idx] = orig - h
		lm := head.Loss(logits, labels)
		logits.Data[idx] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-d.Data[idx]) > 1e-5 {
			t.Fatalf("delta[%d] = %v, numerical %v", idx, d.Data[idx], num)
		}
	}
}

func TestPredictions(t *testing.T) {
	head := LogSoftmaxNLL{}
	logits := tensor.FromRows([][]float64{{0, 5, 1}, {9, 0, 0}})
	p := head.Predictions(logits)
	if p[0] != 1 || p[1] != 0 {
		t.Fatalf("Predictions = %v", p)
	}
}

func TestLabelValidation(t *testing.T) {
	head := LogSoftmaxNLL{}
	logits := tensor.New(2, 3)
	t.Run("count", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		head.Loss(logits, []int{0})
	})
	t.Run("range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		head.Delta(logits, []int{0, 3})
	})
}

func TestMSE(t *testing.T) {
	pred := tensor.FromRows([][]float64{{1, 2}})
	target := tensor.FromRows([][]float64{{0, 0}})
	mse := MSE{}
	if mse.Loss(pred, target) != 2.5 {
		t.Fatalf("MSE = %v", mse.Loss(pred, target))
	}
	d := mse.Delta(pred, target)
	if d.At(0, 0) != 1 || d.At(0, 1) != 2 {
		t.Fatalf("MSE delta = %v", d)
	}
	// Numerical check.
	const h = 1e-6
	for idx := range pred.Data {
		orig := pred.Data[idx]
		pred.Data[idx] = orig + h
		lp := (MSE{}).Loss(pred, target)
		pred.Data[idx] = orig - h
		lm := (MSE{}).Loss(pred, target)
		pred.Data[idx] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-d.Data[idx]) > 1e-6 {
			t.Fatalf("MSE delta[%d] = %v, numerical %v", idx, d.Data[idx], num)
		}
	}
}
