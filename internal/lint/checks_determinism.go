package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// isPkgSel reports whether sel references one of names from the package
// with import path pkgPath (e.g. time.Now). Resolution goes through the
// type checker, so an alias import ("clk \"time\"") is still caught and
// a local variable named "time" is not.
func isPkgSel(pkg *Package, sel *ast.SelectorExpr, pkgPath string, names ...string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// checkMathRand forbids math/rand (and math/rand/v2) in library code.
// Every random draw must come from internal/rng's seeded PCG streams:
// a single math/rand call in a training path silently breaks
// bit-reproducible resume, the Theorem 7.2 probe comparisons, and the
// serial-vs-parallel kernel identity tests. The import ban is backed by
// the uses-unseeded-rand fact: a helper that draws from math/rand
// taints every transitive caller in scope, so laundering a draw through
// one function no longer escapes the check.
func checkMathRand() *Check {
	const name = "math-rand"
	return &Check{
		Name: name,
		Doc: "forbid math/rand in internal/* library code (directly and " +
			"through transitive callees); all randomness must flow through " +
			"internal/rng's seeded, checkpointable PCG streams",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !mathRandInScope(pkg.ImportPath) {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						out = append(out, diag(pkg, name, imp.Pos(),
							"import of %s in library code: use internal/rng (seeded PCG) so runs stay bit-reproducible", path))
					}
				}
			}
			out = append(out, launderedCalls(prog, pkg, name, FactUnseededRand,
				"draws from unseeded math/rand through its callees: route the draw through internal/rng")...)
			return out
		},
	}
}

// checkWallClock forbids time.Now / time.Since in library code outside
// the clock-owning subsystems. The telemetry registry/journal/tracer
// (internal/obs/...) and the benchmark harness (internal/bench) exist
// to measure wall time and are exempt by design; everywhere else a wall
// clock read is either timing telemetry that must be annotated, or a
// latent nondeterminism bug. The reads-wall-clock fact extends the ban
// through the call graph: a helper that reads the clock (unwaived)
// flags every in-scope call site reaching it, with the chain printed.
func checkWallClock() *Check {
	const name = "wall-clock"
	return &Check{
		Name: name,
		Doc: "forbid time.Now/time.Since in internal/* outside internal/obs " +
			"and internal/bench, directly and through transitive callees; " +
			"training logic must not read the wall clock",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !wallClockInScope(pkg.ImportPath) {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if isPkgSel(pkg, sel, "time", "Now", "Since") {
						out = append(out, diag(pkg, name, sel.Pos(),
							"time.%s in library code: inject a clock or route timing through internal/obs", sel.Sel.Name))
					}
					return true
				})
			}
			out = append(out, launderedCalls(prog, pkg, name, FactReadsWallClock,
				"reads the wall clock through its callees: inject a clock or route timing through internal/obs")...)
			return out
		},
	}
}
