package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// isPkgSel reports whether sel references one of names from the package
// with import path pkgPath (e.g. time.Now). Resolution goes through the
// type checker, so an alias import ("clk \"time\"") is still caught and
// a local variable named "time" is not.
func isPkgSel(pkg *Package, sel *ast.SelectorExpr, pkgPath string, names ...string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// checkMathRand forbids math/rand (and math/rand/v2) in library code.
// Every random draw must come from internal/rng's seeded PCG streams:
// a single math/rand call in a training path silently breaks
// bit-reproducible resume, the Theorem 7.2 probe comparisons, and the
// serial-vs-parallel kernel identity tests.
func checkMathRand() *Check {
	const name = "math-rand"
	return &Check{
		Name: name,
		Doc: "forbid math/rand in internal/* library code; all randomness " +
			"must flow through internal/rng's seeded, checkpointable PCG streams",
		Run: func(pkg *Package) []Diagnostic {
			if !pathHasSeg(pkg.ImportPath, "internal") || pathHasSeg(pkg.ImportPath, "internal/rng") {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						out = append(out, diag(pkg, name, imp.Pos(),
							"import of %s in library code: use internal/rng (seeded PCG) so runs stay bit-reproducible", path))
					}
				}
			}
			return out
		},
	}
}

// checkWallClock forbids time.Now / time.Since in library code outside
// the clock-owning subsystems. The telemetry registry/journal/tracer
// (internal/obs/...) and the benchmark harness (internal/bench) exist
// to measure wall time and are exempt by design; everywhere else a wall
// clock read is either timing telemetry that must be annotated, or a
// latent nondeterminism bug.
func checkWallClock() *Check {
	const name = "wall-clock"
	return &Check{
		Name: name,
		Doc: "forbid time.Now/time.Since in internal/* outside internal/obs " +
			"and internal/bench; training logic must not read the wall clock",
		Run: func(pkg *Package) []Diagnostic {
			ip := pkg.ImportPath
			if !pathHasSeg(ip, "internal") ||
				pathHasSeg(ip, "internal/obs") || pathHasSeg(ip, "internal/bench") {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if isPkgSel(pkg, sel, "time", "Now", "Since") {
						out = append(out, diag(pkg, name, sel.Pos(),
							"time.%s in library code: inject a clock or route timing through internal/obs", sel.Sel.Name))
					}
					return true
				})
			}
			return out
		},
	}
}
