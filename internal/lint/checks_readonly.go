package lint

import (
	"go/ast"
	"go/types"
)

// checkReadonlyForward flags writes to receiver state inside
// ApproxForward methods. The error-compounding probe (internal/probe)
// runs ApproxForward side by side with training and its non-perturbation
// guarantee — twin runs produce byte-identical weights — only holds if
// the replayed forward pass is strictly read-only: no field assignments,
// no writes through receiver-held maps or slices, no deletes.
func checkReadonlyForward() *Check {
	const name = "readonly-forward"
	return &Check{
		Name: name,
		Doc: "flag assignments to receiver state (fields, map/slice elements " +
			"reached through the receiver) inside ApproxForward implementations; " +
			"the probe's non-perturbation guarantee requires a read-only replay",
		Run: func(pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || fd.Name.Name != "ApproxForward" || fd.Body == nil {
						continue
					}
					recv := receiverObjects(pkg, fd)
					if len(recv) == 0 {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						switch s := n.(type) {
						case *ast.AssignStmt:
							for _, lhs := range s.Lhs {
								if receiverRooted(pkg, lhs, recv) {
									out = append(out, diag(pkg, name, lhs.Pos(),
										"ApproxForward must be read-only: assignment to receiver state"))
								}
							}
						case *ast.IncDecStmt:
							if receiverRooted(pkg, s.X, recv) {
								out = append(out, diag(pkg, name, s.X.Pos(),
									"ApproxForward must be read-only: increment/decrement of receiver state"))
							}
						case *ast.CallExpr:
							if id, ok := s.Fun.(*ast.Ident); ok && len(s.Args) > 0 {
								if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
									if receiverRooted(pkg, s.Args[0], recv) {
										out = append(out, diag(pkg, name, s.Pos(),
											"ApproxForward must be read-only: delete from receiver-held map"))
									}
								}
							}
						}
						return true
					})
				}
			}
			return out
		},
	}
}

// receiverObjects returns the set of objects bound to fd's receiver
// names (empty for an unnamed or blank receiver).
func receiverObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	recv := make(map[types.Object]bool)
	for _, field := range fd.Recv.List {
		for _, nm := range field.Names {
			if nm.Name == "_" {
				continue
			}
			if obj := pkg.Info.Defs[nm]; obj != nil {
				recv[obj] = true
			}
		}
	}
	return recv
}

// receiverRooted reports whether expr is a selector/index chain with at
// least one step whose root identifier is the method receiver — i.e. a
// write to it mutates state reachable from the receiver, not a local.
// (A plain rebind of the receiver variable itself is a local and is not
// flagged.)
func receiverRooted(pkg *Package, expr ast.Expr, recv map[types.Object]bool) bool {
	depth := 0
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			depth++
			expr = e.X
		case *ast.IndexExpr:
			depth++
			expr = e.X
		case *ast.Ident:
			return depth > 0 && recv[pkg.Info.Uses[e]]
		default:
			return false
		}
	}
}
