package lint

import (
	"go/ast"
	"go/types"
)

// readonlyMethods are the method names carrying the read-only
// contract: ApproxForward because the probe's non-perturbation
// guarantee (twin runs produce byte-identical weights) requires a
// side-effect-free replay, and the Infer family because the serving
// layer calls them from many goroutines over one shared model — any
// receiver write there is the stateful-forward data race PR 7 fixed.
var readonlyMethods = map[string]bool{
	"ApproxForward":      true,
	"Infer":              true,
	"InferForward":       true,
	"InferForwardLayers": true,
}

// checkReadonlyForward flags writes to receiver state inside the
// read-only method set (readonlyMethods) — directly, and transitively
// through the call graph: a readonly method that calls a
// receiver-rooted helper which (at any depth, interface dispatch
// included) mutates its receiver is flagged at the call site with the
// full offending chain, so a mutation two hops away can no longer hide
// behind a function boundary.
func checkReadonlyForward() *Check {
	const name = "readonly-forward"
	return &Check{
		Name: name,
		Doc: "flag assignments to receiver state (fields, map/slice elements " +
			"reached through the receiver) inside ApproxForward and " +
			"Infer/InferForward/InferForwardLayers implementations, including " +
			"mutations reached transitively through receiver-rooted calls " +
			"(the diagnostic prints the offending call chain); the probe's " +
			"non-perturbation guarantee and the serving layer's concurrent " +
			"prediction path both require a read-only forward",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || !readonlyMethods[fd.Name.Name] || fd.Body == nil {
						continue
					}
					method := fd.Name.Name
					recv := receiverObjects(pkg, fd)
					if len(recv) == 0 {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						switch s := n.(type) {
						case *ast.AssignStmt:
							for _, lhs := range s.Lhs {
								if receiverRootedWrite(pkg, lhs, recv) {
									out = append(out, diag(pkg, name, lhs.Pos(),
										"%s must be read-only: assignment to receiver state", method))
								}
							}
						case *ast.IncDecStmt:
							if receiverRootedWrite(pkg, s.X, recv) {
								out = append(out, diag(pkg, name, s.X.Pos(),
									"%s must be read-only: increment/decrement of receiver state", method))
							}
						case *ast.CallExpr:
							if id, ok := s.Fun.(*ast.Ident); ok && len(s.Args) > 0 {
								if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
									if receiverRootedWrite(pkg, s.Args[0], recv) {
										out = append(out, diag(pkg, name, s.Pos(),
											"%s must be read-only: delete from receiver-held map", method))
									}
								}
							}
						}
						return true
					})
					// Transitive half: any receiver-rooted call edge whose
					// callee reaches a receiver mutation.
					fi := prog.InfoFor(pkg, fd)
					if fi == nil {
						continue
					}
					for _, cs := range fi.Calls {
						if !cs.RecvRooted {
							continue
						}
						for _, callee := range cs.Callees {
							if !callee.Trans.Has(FactMutatesReceiver) {
								continue
							}
							chain := append([]string{method}, prog.Chain(callee, FactMutatesReceiver)...)
							verb := "calls"
							if cs.Dispatch {
								verb = "may dispatch to"
							}
							out = append(out, chainDiag(pkg, name, cs.Pos, chain,
								"%s must be read-only: %s %s, which mutates receiver state",
								method, verb, callee.DisplayName()))
						}
					}
				}
			}
			return out
		},
	}
}
