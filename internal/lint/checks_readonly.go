package lint

import (
	"go/ast"
	"go/types"
)

// readonlyMethods are the method names carrying the read-only
// contract: ApproxForward because the probe's non-perturbation
// guarantee (twin runs produce byte-identical weights) requires a
// side-effect-free replay, and the Infer family because the serving
// layer calls them from many goroutines over one shared model — any
// receiver write there is the stateful-forward data race PR 7 fixed.
var readonlyMethods = map[string]bool{
	"ApproxForward":      true,
	"Infer":              true,
	"InferForward":       true,
	"InferForwardLayers": true,
}

// checkReadonlyForward flags writes to receiver state inside the
// read-only method set (readonlyMethods).
func checkReadonlyForward() *Check {
	const name = "readonly-forward"
	return &Check{
		Name: name,
		Doc: "flag assignments to receiver state (fields, map/slice elements " +
			"reached through the receiver) inside ApproxForward and " +
			"Infer/InferForward/InferForwardLayers implementations; the probe's " +
			"non-perturbation guarantee and the serving layer's concurrent " +
			"prediction path both require a read-only forward",
		Run: func(pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || !readonlyMethods[fd.Name.Name] || fd.Body == nil {
						continue
					}
					method := fd.Name.Name
					recv := receiverObjects(pkg, fd)
					if len(recv) == 0 {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						switch s := n.(type) {
						case *ast.AssignStmt:
							for _, lhs := range s.Lhs {
								if receiverRooted(pkg, lhs, recv) {
									out = append(out, diag(pkg, name, lhs.Pos(),
										"%s must be read-only: assignment to receiver state", method))
								}
							}
						case *ast.IncDecStmt:
							if receiverRooted(pkg, s.X, recv) {
								out = append(out, diag(pkg, name, s.X.Pos(),
									"%s must be read-only: increment/decrement of receiver state", method))
							}
						case *ast.CallExpr:
							if id, ok := s.Fun.(*ast.Ident); ok && len(s.Args) > 0 {
								if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "delete" {
									if receiverRooted(pkg, s.Args[0], recv) {
										out = append(out, diag(pkg, name, s.Pos(),
											"%s must be read-only: delete from receiver-held map", method))
									}
								}
							}
						}
						return true
					})
				}
			}
			return out
		},
	}
}

// receiverObjects returns the set of objects bound to fd's receiver
// names (empty for an unnamed or blank receiver).
func receiverObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	recv := make(map[types.Object]bool)
	for _, field := range fd.Recv.List {
		for _, nm := range field.Names {
			if nm.Name == "_" {
				continue
			}
			if obj := pkg.Info.Defs[nm]; obj != nil {
				recv[obj] = true
			}
		}
	}
	return recv
}

// receiverRooted reports whether expr is a selector/index chain with at
// least one step whose root identifier is the method receiver — i.e. a
// write to it mutates state reachable from the receiver, not a local.
// (A plain rebind of the receiver variable itself is a local and is not
// flagged.)
func receiverRooted(pkg *Package, expr ast.Expr, recv map[types.Object]bool) bool {
	depth := 0
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			depth++
			expr = e.X
		case *ast.IndexExpr:
			depth++
			expr = e.X
		case *ast.Ident:
			return depth > 0 && recv[pkg.Info.Uses[e]]
		default:
			return false
		}
	}
}
