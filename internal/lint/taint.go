package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkMapOrderTaint is the cross-function generalization of
// map-order-float: an intra-procedural dataflow pass that tracks values
// produced under `range` over a map — the loop variables and everything
// derived from them, including slices built by appending in map order —
// and reports them flowing into float accumulation or into calls whose
// call-graph facts say they accumulate floats into persistent state.
// This is the PR 4 ALSH bug class across a call boundary: collecting an
// active set in map order and handing it to a kernel that sums makes
// the reduction order (and therefore the float result) differ
// bit-for-bit between runs.
//
// Sorting launders the taint: passing a tainted value to sort.* /
// slices.Sort* re-establishes a deterministic order, which is exactly
// the sanctioned fix ("extract and sort the keys first").
func checkMapOrderTaint() *Check {
	const name = "map-order-taint"
	return &Check{
		Name: name,
		Doc: "track values produced under range-over-map (loop variables and " +
			"everything derived from them) and flag them flowing into float " +
			"accumulation or into callees whose facts say they accumulate " +
			"floats; sort the values first to re-establish a deterministic order",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, fi := range prog.sorted {
				if fi.Pkg == pkg {
					out = append(out, taintFunc(prog, fi)...)
				}
			}
			return out
		},
	}
}

// taintFunc runs the dataflow pass over one function. The walk is a
// single source-order traversal (flow-insensitive within loop bodies is
// acceptable: derivations appear before uses in idiomatic code, and the
// conservative direction only over-taints).
func taintFunc(prog *Program, fi *FuncInfo) []Diagnostic {
	const name = "map-order-taint"
	pkg := fi.Pkg
	tainted := make(map[types.Object]bool)
	// Spans of map-range bodies: direct accumulation inside them is
	// map-order-float's finding, not repeated here.
	type span struct{ lo, hi token.Pos }
	var mapBodies []span
	inMapBody := func(pos token.Pos) bool {
		for _, s := range mapBodies {
			if pos >= s.lo && pos <= s.hi {
				return true
			}
		}
		return false
	}
	var out []Diagnostic

	taintObj := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			tainted[obj] = true
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			tainted[obj] = true
		}
	}
	refsTainted := func(e ast.Expr) *ast.Ident {
		var hit *ast.Ident
		ast.Inspect(e, func(n ast.Node) bool {
			if hit != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && tainted[obj] {
					hit = id
					return false
				}
			}
			return true
		})
		return hit
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.RangeStmt:
			t := pkg.Info.TypeOf(e.X)
			if t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if e.Body != nil {
						mapBodies = append(mapBodies, span{e.Body.Pos(), e.Body.End()})
					}
					taintObj(identOf(e.Key))
					taintObj(identOf(e.Value))
					return true
				}
			}
			// Ranging over a tainted collection keeps iterating in the
			// order the map produced it; its loop variables are tainted.
			if refsTainted(e.X) != nil {
				taintObj(identOf(e.Key))
				taintObj(identOf(e.Value))
			}
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				var rhs ast.Expr
				if len(e.Rhs) == len(e.Lhs) {
					rhs = e.Rhs[i]
				} else if len(e.Rhs) == 1 {
					rhs = e.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if hit := refsTainted(rhs); hit != nil {
					// Derived value: propagate the taint to the target.
					if id := rootIdent(lhs); id != nil {
						taintObj(id)
					}
					// Accumulating tainted floats outside the map body is
					// the laundered form of map-order-float.
					if isFloatAccum(pkg, e, i) && !inMapBody(e.Pos()) {
						out = append(out, diag(pkg, name, e.Pos(),
							"float accumulation over map-order-tainted %s: the reduction order follows the randomized map iteration; sort first", hit.Name))
					}
				}
			}
		case *ast.CallExpr:
			if sortsTainted(pkg, e, tainted) {
				// sort.Slice(keys, ...) etc: order is deterministic again.
				for _, arg := range e.Args {
					if id := rootIdent(arg); id != nil {
						if obj := pkg.Info.Uses[id]; obj != nil {
							delete(tainted, obj)
						}
					}
				}
				return true
			}
			callees, dispatch, _ := prog.CalleesAt(pkg, e)
			for _, arg := range e.Args {
				hit := refsTainted(arg)
				if hit == nil {
					continue
				}
				for _, callee := range callees {
					if !callee.Trans.Has(FactAccumulatesFloats) {
						continue
					}
					chain := append([]string{fi.DisplayName()}, prog.Chain(callee, FactAccumulatesFloats)...)
					verb := "flows into"
					if dispatch {
						verb = "may flow into"
					}
					out = append(out, chainDiag(pkg, name, e.Pos(), chain,
						"map-order-tainted %s %s %s, which accumulates floats into persistent state; sort before the call",
						hit.Name, verb, callee.DisplayName()))
				}
				break
			}
		}
		return true
	})
	return out
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

// sortsTainted reports whether call is a sort.* / slices.* invocation
// over a tainted argument — the sanctioned way to re-establish a
// deterministic order.
func sortsTainted(pkg *Package, call *ast.CallExpr, tainted map[types.Object]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	if p := pn.Imported().Path(); p != "sort" && p != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if rid := rootIdent(arg); rid != nil {
			if obj := pkg.Info.Uses[rid]; obj != nil && tainted[obj] {
				return true
			}
		}
	}
	return false
}
