package lint

import (
	"go/ast"
	"strings"
)

const (
	ignorePrefix     = "lint:ignore"
	fileIgnorePrefix = "lint:file-ignore"
)

// An ignoreDirective is one parsed //lint:ignore or //lint:file-ignore
// comment.
type ignoreDirective struct {
	Check  string
	Reason string
	Line   int
	File   string
	// FileWide is true for //lint:file-ignore.
	FileWide bool
	// Malformed holds the problem when the directive could not be
	// parsed; malformed directives are themselves reported.
	Malformed string
	// used is set when the directive suppresses at least one
	// diagnostic in a run; a well-formed directive that stays unused
	// is reported as unused-directive so stale waivers cannot rot
	// silently.
	used bool
}

// collectIgnores extracts every lint directive from pkg's comments.
func collectIgnores(pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{Line: pos.Line, File: pos.Filename}
				rest, fileWide := strings.CutPrefix(text, fileIgnorePrefix)
				if fileWide {
					d.FileWide = true
				} else {
					rest, _ = strings.CutPrefix(text, ignorePrefix)
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.Malformed = "missing check name and reason"
				case len(fields) == 1:
					d.Check = fields[0]
					d.Malformed = "missing reason (justification is mandatory)"
				default:
					d.Check = fields[0]
					d.Reason = strings.Join(fields[1:], " ")
					if CheckByName(d.Check) == nil {
						d.Malformed = "unknown check " + d.Check
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// directiveText returns the comment body when c is a lint directive.
func directiveText(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if strings.HasPrefix(text, fileIgnorePrefix) || strings.HasPrefix(text, ignorePrefix) {
		return text, true
	}
	return "", false
}

// suppressor answers "is this diagnostic suppressed, and why" for one
// package.
type suppressor struct {
	// byLine maps file -> line -> directives attached to that line. A
	// line directive suppresses matching diagnostics on its own line
	// (trailing comment) and on the line directly below it (comment on
	// its own line above the offending statement).
	byLine map[string]map[int][]*ignoreDirective
	// byFile maps file -> file-wide directives.
	byFile map[string][]*ignoreDirective
}

// newSuppressor indexes dirs. The directives are referenced in place,
// so usage recorded by match is visible to the caller's slice.
func newSuppressor(dirs []ignoreDirective) *suppressor {
	s := &suppressor{
		byLine: make(map[string]map[int][]*ignoreDirective),
		byFile: make(map[string][]*ignoreDirective),
	}
	for i := range dirs {
		d := &dirs[i]
		if d.Malformed != "" {
			continue
		}
		if d.FileWide {
			s.byFile[d.File] = append(s.byFile[d.File], d)
			continue
		}
		m := s.byLine[d.File]
		if m == nil {
			m = make(map[int][]*ignoreDirective)
			s.byLine[d.File] = m
		}
		m[d.Line] = append(m[d.Line], d)
	}
	return s
}

// lookup returns the first directive covering d: file-wide directives
// win over line directives, so a redundant line directive under a
// file-ignore for the same check stays unused (and is reported as
// such).
func (s *suppressor) lookup(d Diagnostic) *ignoreDirective {
	for _, dir := range s.byFile[d.File] {
		if dir.Check == d.Check {
			return dir
		}
	}
	for _, line := range [2]int{d.Line, d.Line - 1} {
		for _, dir := range s.byLine[d.File][line] {
			if dir.Check == d.Check {
				return dir
			}
		}
	}
	return nil
}

// match returns the suppressing directive's reason, if any, and records
// the directive as used.
func (s *suppressor) match(d Diagnostic) (string, bool) {
	if dir := s.lookup(d); dir != nil {
		dir.used = true
		return dir.Reason, true
	}
	return "", false
}

// peek is match without the usage side effect — the fact extractor uses
// it to drop waived sites from the fact lattice without making a
// directive look used when no diagnostic actually landed on it.
func (s *suppressor) peek(d Diagnostic) (string, bool) {
	if dir := s.lookup(d); dir != nil {
		return dir.Reason, true
	}
	return "", false
}
