package lint

import (
	"go/ast"
	"strings"
)

const (
	ignorePrefix     = "lint:ignore"
	fileIgnorePrefix = "lint:file-ignore"
)

// An ignoreDirective is one parsed //lint:ignore or //lint:file-ignore
// comment.
type ignoreDirective struct {
	Check  string
	Reason string
	Line   int
	File   string
	// FileWide is true for //lint:file-ignore.
	FileWide bool
	// Malformed holds the problem when the directive could not be
	// parsed; malformed directives are themselves reported.
	Malformed string
}

// collectIgnores extracts every lint directive from pkg's comments.
func collectIgnores(pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{Line: pos.Line, File: pos.Filename}
				rest, fileWide := strings.CutPrefix(text, fileIgnorePrefix)
				if fileWide {
					d.FileWide = true
				} else {
					rest, _ = strings.CutPrefix(text, ignorePrefix)
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.Malformed = "missing check name and reason"
				case len(fields) == 1:
					d.Check = fields[0]
					d.Malformed = "missing reason (justification is mandatory)"
				default:
					d.Check = fields[0]
					d.Reason = strings.Join(fields[1:], " ")
					if CheckByName(d.Check) == nil {
						d.Malformed = "unknown check " + d.Check
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// directiveText returns the comment body when c is a lint directive.
func directiveText(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if strings.HasPrefix(text, fileIgnorePrefix) || strings.HasPrefix(text, ignorePrefix) {
		return text, true
	}
	return "", false
}

// suppressor answers "is this diagnostic suppressed, and why" for one
// package.
type suppressor struct {
	// byLine maps file -> line -> directives attached to that line. A
	// line directive suppresses matching diagnostics on its own line
	// (trailing comment) and on the line directly below it (comment on
	// its own line above the offending statement).
	byLine map[string]map[int][]ignoreDirective
	// byFile maps file -> file-wide directives.
	byFile map[string][]ignoreDirective
}

func newSuppressor(dirs []ignoreDirective) *suppressor {
	s := &suppressor{
		byLine: make(map[string]map[int][]ignoreDirective),
		byFile: make(map[string][]ignoreDirective),
	}
	for _, d := range dirs {
		if d.Malformed != "" {
			continue
		}
		if d.FileWide {
			s.byFile[d.File] = append(s.byFile[d.File], d)
			continue
		}
		m := s.byLine[d.File]
		if m == nil {
			m = make(map[int][]ignoreDirective)
			s.byLine[d.File] = m
		}
		m[d.Line] = append(m[d.Line], d)
	}
	return s
}

// match returns the suppressing directive's reason, if any.
func (s *suppressor) match(d Diagnostic) (string, bool) {
	for _, dir := range s.byFile[d.File] {
		if dir.Check == d.Check {
			return dir.Reason, true
		}
	}
	for _, line := range [2]int{d.Line, d.Line - 1} {
		for _, dir := range s.byLine[d.File][line] {
			if dir.Check == d.Check {
				return dir.Reason, true
			}
		}
	}
	return "", false
}
